package bdi

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"doppelganger/internal/memdata"
)

func blockFromU64(vals ...uint64) *memdata.Block {
	b := new(memdata.Block)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], vals[i%len(vals)])
	}
	return b
}

func TestZerosScheme(t *testing.T) {
	c := Compress(new(memdata.Block))
	if c.Scheme != Zeros || c.Size() != 1 {
		t.Fatalf("zero block: %v size %d", c.Scheme, c.Size())
	}
	d, err := Decompress(c)
	if err != nil || *d != (memdata.Block{}) {
		t.Fatalf("roundtrip: %v", err)
	}
}

func TestRepeatScheme(t *testing.T) {
	b := blockFromU64(0xDEADBEEF12345678)
	c := Compress(b)
	if c.Scheme != Repeat || c.Size() != 8 {
		t.Fatalf("repeat block: %v size %d", c.Scheme, c.Size())
	}
	d, err := Decompress(c)
	if err != nil || *d != *b {
		t.Fatalf("roundtrip failed: %v", err)
	}
}

func TestBase8Delta1(t *testing.T) {
	base := uint64(0x1000_0000_0000)
	b := blockFromU64(base, base+1, base+5, base-3, base+100, base-100, base+7, base)
	c := Compress(b)
	if c.Scheme != B8D1 {
		t.Fatalf("scheme = %v", c.Scheme)
	}
	if want := 8 + 1 + 8; c.Size() != want {
		t.Fatalf("size = %d, want %d", c.Size(), want)
	}
	d, err := Decompress(c)
	if err != nil || *d != *b {
		t.Fatalf("roundtrip failed: %v", err)
	}
}

func TestImmediates(t *testing.T) {
	// Words near a large base mixed with words near zero: classic BΔI case
	// (pointers interleaved with small integers).
	base := uint64(0x7FFF_0000_1234_0000)
	b := blockFromU64(base, 3, base+20, 0, base-7, 100, base+1, 50)
	c := Compress(b)
	if c.Scheme != B8D1 {
		t.Fatalf("scheme = %v, want base8-d1 with immediates", c.Scheme)
	}
	d, err := Decompress(c)
	if err != nil || *d != *b {
		t.Fatalf("roundtrip failed: %v", err)
	}
}

func TestBase4Delta1(t *testing.T) {
	// 16 int32 words near a common value: should use the 4-byte base.
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(1_000_000+i*3))
	}
	c := Compress(b)
	if c.Scheme != B4D1 {
		t.Fatalf("scheme = %v, want base4-d1", c.Scheme)
	}
	if want := 4 + 2 + 16; c.Size() != want {
		t.Fatalf("size = %d, want %d", c.Size(), want)
	}
	d, err := Decompress(c)
	if err != nil || *d != *b {
		t.Fatalf("roundtrip failed: %v", err)
	}
}

func TestIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := new(memdata.Block)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	c := Compress(b)
	if c.Scheme != Uncompressed && c.Size() >= memdata.BlockSize {
		t.Fatalf("scheme %v with size %d", c.Scheme, c.Size())
	}
	d, err := Decompress(c)
	if err != nil || *d != *b {
		t.Fatalf("roundtrip failed: %v", err)
	}
}

// TestRoundTripProperty: every block decompresses back to itself — BΔI is
// lossless by construction.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw [64]byte) bool {
		b := memdata.Block(raw)
		c := Compress(&b)
		d, err := Decompress(c)
		return err == nil && *d == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCompressedSizeMatchesCompress: the fast size probe must agree with
// the real encoder.
func TestCompressedSizeMatchesCompress(t *testing.T) {
	f := func(raw [64]byte, mode uint8) bool {
		b := memdata.Block(raw)
		switch mode % 3 {
		case 1: // bias toward compressible: quantize to a small delta range
			for i := 0; i < 64; i += 4 {
				binary.LittleEndian.PutUint32(b[i:], 5000+uint32(b[i])%64)
			}
		case 2:
			for i := range b {
				b[i] = 0
			}
		}
		return CompressedSize(&b) == Compress(&b).Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSizeNeverExceedsBlock(t *testing.T) {
	f := func(raw [64]byte) bool {
		b := memdata.Block(raw)
		return CompressedSize(&b) <= memdata.BlockSize && CompressedSize(&b) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPayloadSizes(t *testing.T) {
	// The canonical BΔI compressed sizes for 64-byte lines (with the
	// immediate mask included).
	want := map[Scheme]int{
		Zeros: 1, Repeat: 8,
		B8D1: 17, B8D2: 25, B8D4: 41,
		B4D1: 22, B4D2: 38,
		B2D1:         38,
		Uncompressed: 64,
	}
	for s, w := range want {
		if got := s.PayloadSize(); got != w {
			t.Errorf("%v payload = %d, want %d", s, got, w)
		}
	}
}

func TestDecompressRejectsCorruptPayloads(t *testing.T) {
	if _, err := Decompress(Compressed{Scheme: Repeat, Payload: []byte{1, 2}}); err == nil {
		t.Error("short repeat payload accepted")
	}
	if _, err := Decompress(Compressed{Scheme: B8D1, Payload: make([]byte, 3)}); err == nil {
		t.Error("short base-delta payload accepted")
	}
	if _, err := Decompress(Compressed{Scheme: Scheme(200), Payload: nil}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestFloatDataCompressesPoorly(t *testing.T) {
	// The paper notes BΔI is less effective on floating-point values: the
	// exponent/mantissa split defeats word deltas.
	rng := rand.New(rand.NewSource(7))
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, 100+50*rng.Float64())
	}
	if sz := CompressedSize(b); sz < memdata.BlockSize/2 {
		t.Errorf("random floats compressed to %d bytes; expected poor compression", sz)
	}
}

// TestFitsMatchesTry locks the allocation-free applicability probe to the
// real encoder, scheme by scheme: schemeFits must say yes exactly when
// tryScheme produces a payload.
func TestFitsMatchesTry(t *testing.T) {
	f := func(raw [64]byte, mode uint8) bool {
		b := memdata.Block(raw)
		switch mode % 4 {
		case 1: // small 4-byte deltas around a large base
			for i := 0; i < 64; i += 4 {
				binary.LittleEndian.PutUint32(b[i:], 0x40000000+uint32(b[i])%128)
			}
		case 2: // mixed immediates and based words (8-byte geometry)
			for i := 0; i < 64; i += 16 {
				binary.LittleEndian.PutUint64(b[i:], uint64(b[i])%100)       // immediate
				binary.LittleEndian.PutUint64(b[i+8:], 1<<40+uint64(b[i+8])) // based
			}
		case 3: // repeated word
			v := binary.LittleEndian.Uint64(b[:8])
			for i := 8; i < 64; i += 8 {
				binary.LittleEndian.PutUint64(b[i:], v)
			}
		}
		for s := Zeros; s < numSchemes; s++ {
			_, ok := tryScheme(&b, s)
			if schemeFits(&b, s) != ok {
				t.Logf("scheme %v: fits=%v try=%v", s, !ok, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCompressedSizeZeroAllocs: the snapshot analyzers call CompressedSize
// for every resident block; the probe must not allocate.
func TestCompressedSizeZeroAllocs(t *testing.T) {
	var b memdata.Block
	for i := 0; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(b[i:], 7000+uint32(i))
	}
	if n := testing.AllocsPerRun(500, func() { _ = CompressedSize(&b) }); n != 0 {
		t.Errorf("CompressedSize allocates %v allocs/op, want 0", n)
	}
}
