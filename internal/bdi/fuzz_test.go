package bdi

import (
	"bytes"
	"testing"

	"doppelganger/internal/memdata"
)

// FuzzRoundTrip drives the encoder/decoder with arbitrary block payloads:
// compression must never lose data and never exceed the block size.
func FuzzRoundTrip(f *testing.F) {
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add(bytes.Repeat([]byte{0xAB}, 64))
	f.Add([]byte("the quick brown fox jumps over the lazy dog, twice over!!padpad."))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		var b memdata.Block
		copy(b[:], raw)
		c := Compress(&b)
		if c.Size() > memdata.BlockSize {
			t.Fatalf("compressed to %d bytes", c.Size())
		}
		if got := CompressedSize(&b); got != c.Size() {
			t.Fatalf("CompressedSize %d != Compress %d", got, c.Size())
		}
		d, err := Decompress(c)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if *d != b {
			t.Fatalf("roundtrip mismatch (scheme %v)", c.Scheme)
		}
	})
}

// FuzzDecompressRobustness feeds arbitrary payloads to the decoder: it may
// reject them but must never panic or return an over-long block.
func FuzzDecompressRobustness(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, scheme uint8, payload []byte) {
		d, err := Decompress(Compressed{Scheme: Scheme(scheme), Payload: payload})
		if err == nil && d == nil {
			t.Fatal("nil block without error")
		}
	})
}
