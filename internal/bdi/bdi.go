// Package bdi implements Base-Delta-Immediate (BΔI) cache compression
// (Pekhimenko et al., PACT 2012), the lossless comparator the Doppelgänger
// paper evaluates against in §5.1/Fig. 8.
//
// A 64-byte block is compressed with the best of: all-zeros, repeated
// 8-byte value, and the six base+delta schemes (8-byte base with 1/2/4-byte
// deltas, 4-byte base with 1/2-byte deltas, 2-byte base with 1-byte deltas).
// Each base+delta scheme carries an "immediate" mask: every word is encoded
// as a narrow delta from either the block's base or from zero, which is what
// the ∆I in BΔI adds over plain base+delta.
package bdi

import (
	"encoding/binary"
	"fmt"

	"doppelganger/internal/memdata"
)

// Scheme identifies one BΔI encoding.
type Scheme uint8

// The BΔI schemes in preference order is not fixed; Compress picks the
// smallest applicable encoding.
const (
	Uncompressed Scheme = iota
	Zeros
	Repeat
	B8D1
	B8D2
	B8D4
	B4D1
	B4D2
	B2D1
	numSchemes
)

// String names the scheme as in the BΔI paper.
func (s Scheme) String() string {
	switch s {
	case Uncompressed:
		return "uncompressed"
	case Zeros:
		return "zeros"
	case Repeat:
		return "rep"
	case B8D1:
		return "base8-d1"
	case B8D2:
		return "base8-d2"
	case B8D4:
		return "base8-d4"
	case B4D1:
		return "base4-d1"
	case B4D2:
		return "base4-d2"
	case B2D1:
		return "base2-d1"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

type geometry struct {
	baseBytes  int
	deltaBytes int
}

func (s Scheme) geom() (geometry, bool) {
	switch s {
	case B8D1:
		return geometry{8, 1}, true
	case B8D2:
		return geometry{8, 2}, true
	case B8D4:
		return geometry{8, 4}, true
	case B4D1:
		return geometry{4, 1}, true
	case B4D2:
		return geometry{4, 2}, true
	case B2D1:
		return geometry{2, 1}, true
	}
	return geometry{}, false
}

// PayloadSize returns the compressed payload size in bytes for the scheme
// (base + immediate mask + deltas; 1 byte for Zeros, 8 for Repeat, 64 for
// Uncompressed). This is the size the storage-savings analysis charges.
func (s Scheme) PayloadSize() int {
	switch s {
	case Uncompressed:
		return memdata.BlockSize
	case Zeros:
		return 1
	case Repeat:
		return 8
	}
	g, _ := s.geom()
	words := memdata.BlockSize / g.baseBytes
	return g.baseBytes + words/8 + words*g.deltaBytes
}

// Compressed is an encoded block.
type Compressed struct {
	Scheme  Scheme
	Payload []byte
}

// Size returns the payload size in bytes.
func (c Compressed) Size() int { return len(c.Payload) }

// Compress encodes the block with the smallest applicable scheme.
func Compress(b *memdata.Block) Compressed {
	best := Compressed{Scheme: Uncompressed, Payload: append([]byte(nil), b[:]...)}
	for s := Zeros; s < numSchemes; s++ {
		if p, ok := tryScheme(b, s); ok && len(p) < best.Size() {
			best = Compressed{Scheme: s, Payload: p}
		}
	}
	return best
}

// CompressedSize returns the best payload size without materializing it.
// This is the hot entry point (the storage-savings analyzers call it for
// every snapshot block), so it probes applicability without building any
// payloads and performs no allocations.
func CompressedSize(b *memdata.Block) int {
	best := memdata.BlockSize
	for s := Zeros; s < numSchemes; s++ {
		if sz := s.PayloadSize(); sz < best && schemeFits(b, s) {
			best = sz
		}
	}
	return best
}

// schemeFits reports whether the scheme can encode the block, mirroring
// tryScheme's applicability decisions without materializing a payload.
func schemeFits(b *memdata.Block, s Scheme) bool {
	switch s {
	case Zeros:
		for _, v := range b {
			if v != 0 {
				return false
			}
		}
		return true
	case Repeat:
		first := binary.LittleEndian.Uint64(b[0:8])
		for i := 8; i < memdata.BlockSize; i += 8 {
			if binary.LittleEndian.Uint64(b[i:]) != first {
				return false
			}
		}
		return true
	}
	g, ok := s.geom()
	if !ok {
		return false
	}
	return fitsBaseDelta(b, g)
}

// fitsBaseDelta reports whether every word of the block encodes as a narrow
// delta from the base or from zero, with the same base selection as
// tryBaseDelta (TestFitsMatchesTry locks the two together).
func fitsBaseDelta(b *memdata.Block, g geometry) bool {
	words := memdata.BlockSize / g.baseBytes
	var vals [memdata.BlockSize / 2]int64 // at most 32 words (2-byte base)
	for i := 0; i < words; i++ {
		vals[i] = readWord(b[i*g.baseBytes:], g.baseBytes)
	}
	base := vals[0]
	for _, v := range vals[:words] {
		if !fitsDelta(v, g.deltaBytes) { // not representable from zero
			base = v
			break
		}
	}
	for _, v := range vals[:words] {
		if !fitsDelta(v-base, g.deltaBytes) && !fitsDelta(v, g.deltaBytes) {
			return false
		}
	}
	return true
}

func tryScheme(b *memdata.Block, s Scheme) ([]byte, bool) {
	switch s {
	case Zeros:
		for _, v := range b {
			if v != 0 {
				return nil, false
			}
		}
		return []byte{0}, true
	case Repeat:
		first := binary.LittleEndian.Uint64(b[0:8])
		for i := 8; i < memdata.BlockSize; i += 8 {
			if binary.LittleEndian.Uint64(b[i:]) != first {
				return nil, false
			}
		}
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, first)
		return p, true
	}
	g, ok := s.geom()
	if !ok {
		return nil, false
	}
	return tryBaseDelta(b, g)
}

// tryBaseDelta attempts a base+delta+immediate encoding. The base is the
// first word that does not itself fit as an immediate (delta from zero); if
// every word is an immediate the base is that first word anyway.
func tryBaseDelta(b *memdata.Block, g geometry) ([]byte, bool) {
	words := memdata.BlockSize / g.baseBytes
	vals := make([]int64, words)
	for i := 0; i < words; i++ {
		vals[i] = readWord(b[i*g.baseBytes:], g.baseBytes)
	}
	base := vals[0]
	for _, v := range vals {
		if !fitsDelta(v, g.deltaBytes) { // not representable from zero
			base = v
			break
		}
	}
	mask := make([]byte, (words+7)/8)
	deltas := make([]int64, words)
	for i, v := range vals {
		switch {
		case fitsDelta(v-base, g.deltaBytes):
			mask[i/8] |= 1 << uint(i%8)
			deltas[i] = v - base
		case fitsDelta(v, g.deltaBytes):
			deltas[i] = v // immediate: delta from zero
		default:
			return nil, false
		}
	}
	p := make([]byte, 0, g.baseBytes+len(mask)+words*g.deltaBytes)
	p = appendWord(p, base, g.baseBytes)
	p = append(p, mask...)
	for _, d := range deltas {
		p = appendWord(p, d, g.deltaBytes)
	}
	return p, true
}

// Decompress reconstructs the original block; BΔI is lossless.
func Decompress(c Compressed) (*memdata.Block, error) {
	b := new(memdata.Block)
	switch c.Scheme {
	case Uncompressed:
		if len(c.Payload) != memdata.BlockSize {
			return nil, fmt.Errorf("bdi: bad uncompressed payload size %d", len(c.Payload))
		}
		copy(b[:], c.Payload)
		return b, nil
	case Zeros:
		return b, nil
	case Repeat:
		if len(c.Payload) != 8 {
			return nil, fmt.Errorf("bdi: bad repeat payload size %d", len(c.Payload))
		}
		v := binary.LittleEndian.Uint64(c.Payload)
		for i := 0; i < memdata.BlockSize; i += 8 {
			binary.LittleEndian.PutUint64(b[i:], v)
		}
		return b, nil
	}
	g, ok := c.Scheme.geom()
	if !ok {
		return nil, fmt.Errorf("bdi: unknown scheme %v", c.Scheme)
	}
	words := memdata.BlockSize / g.baseBytes
	want := g.baseBytes + (words+7)/8 + words*g.deltaBytes
	if len(c.Payload) != want {
		return nil, fmt.Errorf("bdi: scheme %v payload size %d, want %d", c.Scheme, len(c.Payload), want)
	}
	base := readWord(c.Payload, g.baseBytes)
	mask := c.Payload[g.baseBytes : g.baseBytes+(words+7)/8]
	dp := c.Payload[g.baseBytes+len(mask):]
	for i := 0; i < words; i++ {
		d := readSignedWord(dp[i*g.deltaBytes:], g.deltaBytes)
		v := d
		if mask[i/8]&(1<<uint(i%8)) != 0 {
			v = base + d
		}
		writeWord(b[i*g.baseBytes:], v, g.baseBytes)
	}
	return b, nil
}

func fitsDelta(v int64, deltaBytes int) bool {
	shift := uint(deltaBytes*8 - 1)
	lo := -(int64(1) << shift)
	hi := int64(1)<<shift - 1
	return v >= lo && v <= hi
}

// readWord reads an unsigned little-endian word of n bytes as int64 (the
// value domain for base/delta arithmetic; wraparound is handled by the
// signed delta check).
func readWord(p []byte, n int) int64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(p[i]) << uint(8*i)
	}
	// Sign-extend so deltas between nearby negative integers stay small.
	shift := uint(64 - 8*n)
	return int64(v<<shift) >> shift
}

// readSignedWord reads a sign-extended little-endian word of n bytes.
func readSignedWord(p []byte, n int) int64 { return readWord(p, n) }

func appendWord(p []byte, v int64, n int) []byte {
	for i := 0; i < n; i++ {
		p = append(p, byte(uint64(v)>>uint(8*i)))
	}
	return p
}

func writeWord(p []byte, v int64, n int) {
	for i := 0; i < n; i++ {
		p[i] = byte(uint64(v) >> uint(8*i))
	}
}
