package approx

import (
	"math"

	"doppelganger/internal/memdata"
)

// SimilarWithin implements the paper's §2 definition of approximate
// similarity: two blocks are approximately similar under threshold T if each
// and every element of one block is within T of its corresponding element in
// the other, where T is expressed as a fraction of the region's declared
// value range (e.g. T = 0.01 means 1% of Max−Min).
//
// T = 0 degenerates to exact element-wise equality, matching the paper's
// observation that precise representation shows almost no redundancy.
func SimilarWithin(a, b *memdata.Block, r *Region, t float64) bool {
	tol := t * (r.Max - r.Min)
	n := r.Type.PerBlock()
	for i := 0; i < n; i++ {
		va := r.Clamp(sanitize(a.Elem(r.Type, i), r))
		vb := r.Clamp(sanitize(b.Elem(r.Type, i), r))
		if math.Abs(va-vb) > tol {
			return false
		}
	}
	return true
}

// GreedySimilarityGroups partitions blocks into groups of mutually
// approximately similar blocks using a greedy first-fit pass: each block
// joins the first existing group whose representative it is similar to, else
// it founds a new group. The number of groups is the number of data entries
// a threshold-T similarity cache would need, and 1 − groups/blocks is the
// storage savings reported in Fig. 2.
//
// Blocks must all belong to regions with identical Type/Min/Max semantics;
// the caller groups per region class. The return value is the number of
// groups (representatives).
func GreedySimilarityGroups(blocks []*memdata.Block, r *Region, t float64) int {
	var reps []*memdata.Block
outer:
	for _, b := range blocks {
		for _, rep := range reps {
			if SimilarWithin(b, rep, r, t) {
				continue outer
			}
		}
		reps = append(reps, b)
	}
	return len(reps)
}
