package approx

import (
	"math"
	"testing"

	"doppelganger/internal/memdata"
)

// FuzzMapValue feeds arbitrary block payloads (including NaN/Inf bit
// patterns in float regions) through map generation for every hash kind and
// element type: the map must always fit its declared bit budget and never
// panic.
func FuzzMapValue(f *testing.F) {
	f.Add([]byte{0}, uint8(0), uint8(0))
	f.Add([]byte{0xFF, 0x00, 0x7F, 0xC0}, uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, typRaw, hashRaw uint8) {
		var b memdata.Block
		copy(b[:], raw)
		typ := memdata.ElemType(typRaw % 4)
		hash := HashKind(hashRaw % 3)
		for _, m := range []int{8, 12, 14, 21} {
			spec := MapSpec{M: m, Hash: hash}
			r := &Region{Name: "f", Start: 0, End: 1 << 20, Type: typ, Min: -50, Max: 150}
			v := spec.MapValue(&b, r)
			if bits := spec.TotalBits(typ); bits < 32 && v>>uint(bits) != 0 {
				t.Fatalf("map %#x exceeds %d bits (M=%d, %v, %v)", v, bits, m, typ, hash)
			}
			// Determinism.
			if spec.MapValue(&b, r) != v {
				t.Fatal("map generation nondeterministic")
			}
		}
	})
}

// FuzzSimilarityConsistency: exact equality implies similarity at any T, and
// similarity at T implies similarity at any larger T.
func FuzzSimilarityConsistency(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 4}, uint8(10))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, tRaw uint8) {
		var a, b memdata.Block
		copy(a[:], rawA)
		copy(b[:], rawB)
		r := &Region{Name: "f", Start: 0, End: 1 << 20, Type: memdata.U8, Min: 0, Max: 255}
		th := float64(tRaw) / 255
		if !SimilarWithin(&a, &a, r, 0) {
			t.Fatal("block dissimilar to itself at T=0")
		}
		if SimilarWithin(&a, &b, r, th) && !SimilarWithin(&a, &b, r, math.Min(1, th*2)) {
			t.Fatal("similarity not monotone in T")
		}
	})
}
