package approx

import (
	"math"
	"testing"
	"testing/quick"

	"doppelganger/internal/memdata"
)

func region(t memdata.ElemType, min, max float64) *Region {
	return &Region{Name: "r", Start: 0, End: 1 << 20, Type: t, Min: min, Max: max}
}

func blockOf(t memdata.ElemType, vals ...float64) *memdata.Block {
	b := new(memdata.Block)
	n := t.PerBlock()
	for i := 0; i < n; i++ {
		b.SetElem(t, i, vals[i%len(vals)])
	}
	return b
}

func TestAnnotationsValidation(t *testing.T) {
	if _, err := NewAnnotations(Region{Name: "x", Start: 10, End: 64, Type: memdata.F32}); err == nil {
		t.Error("unaligned start accepted")
	}
	if _, err := NewAnnotations(Region{Name: "x", Start: 64, End: 64, Type: memdata.F32}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := NewAnnotations(Region{Name: "x", Start: 64, End: 128, Min: 1, Max: 0}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewAnnotations(
		Region{Name: "a", Start: 0, End: 128},
		Region{Name: "b", Start: 64, End: 192},
	); err == nil {
		t.Error("overlapping regions accepted")
	}
}

func TestAnnotationsLookup(t *testing.T) {
	a := MustAnnotations(
		Region{Name: "lo", Start: 0, End: 128, Type: memdata.F32, Max: 1},
		Region{Name: "hi", Start: 4096, End: 8192, Type: memdata.U8, Max: 255},
	)
	cases := []struct {
		addr memdata.Addr
		want string
	}{
		{0, "lo"}, {127, "lo"}, {128, ""}, {4095, ""}, {4096, "hi"}, {8191, "hi"}, {8192, ""},
	}
	for _, c := range cases {
		r := a.Lookup(c.addr)
		got := ""
		if r != nil {
			got = r.Name
		}
		if got != c.want {
			t.Errorf("Lookup(%v) = %q, want %q", c.addr, got, c.want)
		}
	}
	if a.ApproxBytes() != 128+4096 {
		t.Errorf("ApproxBytes = %d", a.ApproxBytes())
	}
}

func TestNilAnnotationsArePrecise(t *testing.T) {
	var a *Annotations
	if a.Lookup(0) != nil || a.Approximate(0) {
		t.Error("nil annotations must treat everything as precise")
	}
}

func TestMapSpecBits(t *testing.T) {
	s := MapSpec{M: 14}
	// Floats: 14-bit average map + 7-bit range map = 21 bits (Table 3).
	if got := s.TotalBits(memdata.F32); got != 21 {
		t.Errorf("F32 total bits = %d, want 21", got)
	}
	// 8-bit pixels: both hashes capped at the element width.
	if got := s.AvgBits(memdata.U8); got != 8 {
		t.Errorf("U8 avg bits = %d, want 8", got)
	}
	if got := s.RangeBits(memdata.U8); got != 7 {
		t.Errorf("U8 range bits = %d, want 7", got)
	}
	// 13-bit map: ⌈13/2⌉ = 7 range bits.
	if got := (MapSpec{M: 13}).RangeBits(memdata.F32); got != 7 {
		t.Errorf("13-bit range bits = %d, want 7", got)
	}
}

func TestBlockHashes(t *testing.T) {
	r := region(memdata.F32, 0, 100)
	b := blockOf(memdata.F32, 10, 20, 30, 40)
	avg, rng := BlockHashes(b, r)
	if avg != 25 {
		t.Errorf("avg = %v, want 25", avg)
	}
	if rng != 30 {
		t.Errorf("range = %v, want 30", rng)
	}
}

func TestBlockHashesClampToDeclaredRange(t *testing.T) {
	r := region(memdata.F32, 0, 10)
	b := blockOf(memdata.F32, -5, 50) // outside [0,10]: clamp to 0 and 10
	avg, rng := BlockHashes(b, r)
	if avg != 5 || rng != 10 {
		t.Errorf("clamped avg/range = %v/%v, want 5/10", avg, rng)
	}
}

func TestBlockHashesSanitizeNaN(t *testing.T) {
	r := region(memdata.F32, 0, 10)
	b := blockOf(memdata.F32, math.NaN(), 10)
	avg, _ := BlockHashes(b, r)
	if math.IsNaN(avg) {
		t.Error("NaN escaped hashing")
	}
}

func TestMapValueEndpoints(t *testing.T) {
	s := MapSpec{M: 14}
	r := region(memdata.F32, 0, 100)
	// All elements at min: avg map 0, range 0.
	if got := s.MapValue(blockOf(memdata.F32, 0), r); got != 0 {
		t.Errorf("min block map = %#x, want 0", got)
	}
	// All elements at max: avg map = 2^14-1 (last bin), range 0.
	if got := s.MapValue(blockOf(memdata.F32, 100), r); got != (1<<14)-1 {
		t.Errorf("max block map = %#x, want %#x", got, (1<<14)-1)
	}
}

// TestMapValueFigure1 reproduces the paper's Fig. 1 example: blocks 1 and 2
// of the image are approximately similar and must share a map; block 3 must
// not. (The paper quotes average 136 / range 95 for blocks 1 and 2.)
func TestMapValueFigure1(t *testing.T) {
	mk := func(vals ...float64) *memdata.Block {
		b := new(memdata.Block)
		for i, v := range vals {
			b.SetElem(U8i, i, v)
		}
		// Fill the remainder with a repeat of the sample so the hashes stay
		// those of the sample values.
		for i := len(vals); i < 64; i++ {
			b.SetElem(U8i, i, vals[i%len(vals)])
		}
		return b
	}
	r := region(memdata.U8, 0, 255)
	s := MapSpec{M: 14}
	b1 := mk(92, 131, 183, 91, 132, 186)
	b2 := mk(90, 131, 185, 93, 133, 184)
	b3 := mk(35, 31, 29, 43, 38, 37)
	m1, m2, m3 := s.MapValue(b1, r), s.MapValue(b2, r), s.MapValue(b3, r)
	if m1 != m2 {
		t.Errorf("blocks 1 and 2 should share a map: %#x vs %#x", m1, m2)
	}
	if m3 == m1 {
		t.Errorf("block 3 should differ: %#x", m3)
	}
}

// U8i aliases the element type for the Fig. 1 test readability.
const U8i = memdata.U8

// TestSimilarBlocksShareMaps is the core similarity property: two blocks
// whose elements all sit within a *small* threshold of each other usually
// map together, and the required threshold shrinks as M grows.
func TestSimilarBlocksShareMaps(t *testing.T) {
	r := region(memdata.F32, 0, 1)
	s := MapSpec{M: 12}
	base := blockOf(memdata.F32, 0.30001, 0.50001, 0.70001)
	// Perturb by much less than a 12-bit bin (1/4096 ≈ 2.4e-4).
	pert := blockOf(memdata.F32, 0.30003, 0.50003, 0.70003)
	if s.MapValue(base, r) != s.MapValue(pert, r) {
		t.Error("tiny perturbation changed the map")
	}
	// A large perturbation must change it.
	far := blockOf(memdata.F32, 0.9, 0.95, 0.99)
	if s.MapValue(base, r) == s.MapValue(far, r) {
		t.Error("distant block shares the map")
	}
}

// TestSmallerMapSpaceIsCoarser: if two blocks share a map at M bits they
// must also share it at M-2 bits for blocks differing only in average (the
// bins nest for the average map when range bits are equal).
func TestMapMonotoneInM(t *testing.T) {
	r := region(memdata.F32, 0, 1)
	f := func(a, b uint16) bool {
		// Two uniform blocks (range 0) with averages from a 16-bit lattice.
		va := float64(a) / 65535
		vb := float64(b) / 65535
		ba, bb := blockOf(memdata.F32, va), blockOf(memdata.F32, vb)
		if (MapSpec{M: 14}).MapValue(ba, r) == (MapSpec{M: 14}).MapValue(bb, r) {
			return (MapSpec{M: 12}).MapValue(ba, r) == (MapSpec{M: 12}).MapValue(bb, r)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntegralBypass(t *testing.T) {
	// U8 with M=14 > 8: the mapping step is skipped; the map's low 8 bits
	// are the rounded average itself.
	r := region(memdata.U8, 0, 255)
	s := MapSpec{M: 14}
	b := blockOf(memdata.U8, 100)
	m := s.MapValue(b, r)
	if m&0xFF != 100 {
		t.Errorf("avg part = %d, want 100", m&0xFF)
	}
	// Uniform block: range part zero.
	if m>>8 != 0 {
		t.Errorf("range part = %d, want 0", m>>8)
	}
}

func TestSimilarWithin(t *testing.T) {
	r := region(memdata.F32, 0, 100)
	a := blockOf(memdata.F32, 50, 60)
	b := blockOf(memdata.F32, 50.5, 60.5)
	if !SimilarWithin(a, b, r, 0.01) { // 1% of 100 = 1.0 tolerance
		t.Error("blocks within tolerance judged dissimilar")
	}
	if SimilarWithin(a, b, r, 0.001) { // 0.1% = 0.1 tolerance
		t.Error("blocks outside tolerance judged similar")
	}
	if !SimilarWithin(a, a, r, 0) {
		t.Error("identical blocks dissimilar at T=0")
	}
}

// TestSimilarWithinOneBadElement checks the all-elements rule of §2: one
// pair exceeding T makes the whole block dissimilar.
func TestSimilarWithinOneBadElement(t *testing.T) {
	r := region(memdata.F32, 0, 100)
	a, b := new(memdata.Block), new(memdata.Block)
	for i := 0; i < 16; i++ {
		a.SetElem(memdata.F32, i, 50)
		b.SetElem(memdata.F32, i, 50)
	}
	b.SetElem(memdata.F32, 7, 80)
	if SimilarWithin(a, b, r, 0.1) {
		t.Error("block with one far element judged similar")
	}
}

func TestSimilarityIsSymmetric(t *testing.T) {
	r := region(memdata.F32, 0, 1)
	f := func(raw [4]float32, tRaw uint8) bool {
		a := blockOf(memdata.F32, sane(raw[0]), sane(raw[1]))
		b := blockOf(memdata.F32, sane(raw[2]), sane(raw[3]))
		th := float64(tRaw) / 255
		return SimilarWithin(a, b, r, th) == SimilarWithin(b, a, r, th)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sane(v float32) float64 {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return math.Mod(math.Abs(f), 1)
}

func TestGreedySimilarityGroups(t *testing.T) {
	r := region(memdata.F32, 0, 100)
	blocks := []*memdata.Block{
		blockOf(memdata.F32, 10), blockOf(memdata.F32, 10.2),
		blockOf(memdata.F32, 50), blockOf(memdata.F32, 50.3),
		blockOf(memdata.F32, 90),
	}
	if got := GreedySimilarityGroups(blocks, r, 0.01); got != 3 {
		t.Errorf("groups at T=1%% = %d, want 3", got)
	}
	if got := GreedySimilarityGroups(blocks, r, 0); got != 5 {
		t.Errorf("groups at T=0 = %d, want 5", got)
	}
	if got := GreedySimilarityGroups(blocks, r, 1); got != 1 {
		t.Errorf("groups at T=100%% = %d, want 1", got)
	}
	if got := GreedySimilarityGroups(nil, r, 0.5); got != 0 {
		t.Errorf("empty input = %d groups", got)
	}
}

func TestHashKindVariants(t *testing.T) {
	r := region(memdata.F32, 0, 100)
	flat := blockOf(memdata.F32, 50)
	ramp := new(memdata.Block)
	for i := 0; i < 16; i++ {
		ramp.SetElem(memdata.F32, i, 50+float64(i)-7.5) // same mean, wide spread
	}

	avgRange := MapSpec{M: 14, Hash: HashAvgRange}
	avgOnly := MapSpec{M: 14, Hash: HashAvgOnly}
	minMax := MapSpec{M: 14, Hash: HashMinMax}

	// The combined and min/max hashes must separate flat from ramp; the
	// average-only hash cannot.
	if avgRange.MapValue(flat, r) == avgRange.MapValue(ramp, r) {
		t.Error("avg+range merged flat and ramp")
	}
	if minMax.MapValue(flat, r) == minMax.MapValue(ramp, r) {
		t.Error("min+max merged flat and ramp")
	}
	if avgOnly.MapValue(flat, r) != avgOnly.MapValue(ramp, r) {
		t.Error("avg-only separated blocks with identical means")
	}

	// Similar blocks still merge under every hash (avg-only has finer bins
	// because the whole budget goes to one hash, so use a perturbation well
	// under 100/2^21).
	near := blockOf(memdata.F32, 50.00001)
	for _, s := range []MapSpec{avgRange, avgOnly, minMax} {
		if s.MapValue(flat, r) != s.MapValue(near, r) {
			t.Errorf("%v split nearly identical blocks", s.Hash)
		}
	}
}

func TestHashKindString(t *testing.T) {
	if HashAvgRange.String() != "avg+range" || HashAvgOnly.String() != "avg-only" || HashMinMax.String() != "min+max" {
		t.Error("hash names wrong")
	}
}
