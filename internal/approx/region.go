// Package approx implements the programmer-facing approximation contract of
// the Doppelgänger paper: annotated address regions that may be approximated
// (with declared element type and expected value range, §4.1), the
// average/range hash functions and the linear mapping into the M-bit map
// space that together generate Doppelgänger map values (§3.7), and the
// element-wise approximate-similarity predicate used by the paper's
// characterization study (§2).
package approx

import (
	"fmt"
	"sort"

	"doppelganger/internal/memdata"
)

// Region is one programmer annotation: a contiguous range of physical
// addresses holding approximable data of a single element type, together
// with the expected minimum and maximum element values. Runtime values
// outside [Min, Max] are clamped during hashing, as §4.1 prescribes.
type Region struct {
	Name  string
	Start memdata.Addr // inclusive, block aligned
	End   memdata.Addr // exclusive, block aligned
	Type  memdata.ElemType
	Min   float64
	Max   float64
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr memdata.Addr) bool {
	return addr >= r.Start && addr < r.End
}

// Bytes returns the region size in bytes.
func (r *Region) Bytes() int { return int(r.End - r.Start) }

// Clamp restricts v to the declared [Min, Max] range.
func (r *Region) Clamp(v float64) float64 {
	if v < r.Min {
		return r.Min
	}
	if v > r.Max {
		return r.Max
	}
	return v
}

// Annotations is the set of approximate regions declared by a workload. The
// paper assumes this information is sent to the LLC once at program start
// and buffered there (§3.7 footnote, §4.1); Annotations plays that role for
// both simulators.
type Annotations struct {
	regions []Region // sorted by Start, non-overlapping
}

// NewAnnotations builds an annotation set, validating that regions are block
// aligned and non-overlapping (approximate data is steered to the
// Doppelgänger cache at block granularity, so a block cannot be half
// approximate).
func NewAnnotations(regions ...Region) (*Annotations, error) {
	rs := make([]Region, len(regions))
	copy(rs, regions)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	for i := range rs {
		r := &rs[i]
		if r.Start%memdata.BlockSize != 0 || r.End%memdata.BlockSize != 0 {
			return nil, fmt.Errorf("approx: region %q [%v, %v) is not block aligned", r.Name, r.Start, r.End)
		}
		if r.End <= r.Start {
			return nil, fmt.Errorf("approx: region %q is empty or inverted", r.Name)
		}
		if r.Max < r.Min {
			return nil, fmt.Errorf("approx: region %q has Max < Min", r.Name)
		}
		if i > 0 && r.Start < rs[i-1].End {
			return nil, fmt.Errorf("approx: regions %q and %q overlap", rs[i-1].Name, r.Name)
		}
	}
	return &Annotations{regions: rs}, nil
}

// MustAnnotations is NewAnnotations but panics on error; used by workloads
// whose layouts are fixed at compile time.
func MustAnnotations(regions ...Region) *Annotations {
	a, err := NewAnnotations(regions...)
	if err != nil {
		panic(err)
	}
	return a
}

// Lookup returns the region containing addr, or nil if addr is precise.
func (a *Annotations) Lookup(addr memdata.Addr) *Region {
	if a == nil {
		return nil
	}
	i := sort.Search(len(a.regions), func(i int) bool { return a.regions[i].End > addr })
	if i < len(a.regions) && a.regions[i].Contains(addr) {
		return &a.regions[i]
	}
	return nil
}

// Approximate reports whether addr lies in any annotated region.
func (a *Annotations) Approximate(addr memdata.Addr) bool { return a.Lookup(addr) != nil }

// Regions returns the annotated regions in address order.
func (a *Annotations) Regions() []Region {
	if a == nil {
		return nil
	}
	return a.regions
}

// ApproxBytes is the total annotated footprint in bytes.
func (a *Annotations) ApproxBytes() int {
	total := 0
	for i := range a.regions {
		total += a.regions[i].Bytes()
	}
	return total
}
