package approx

import (
	"fmt"
	"math"

	"doppelganger/internal/memdata"
)

// HashKind selects the pair of block hash functions feeding the map. The
// paper implements average+range and leaves other hash functions to future
// work (§3.7); the alternatives here implement that exploration.
type HashKind uint8

// The implemented hash-function pairs.
const (
	// HashAvgRange is the paper's choice: element average (lower map bits)
	// and element range (upper bits).
	HashAvgRange HashKind = iota
	// HashAvgOnly uses only the average, widened to the full map budget.
	// Cheaper hardware, but cannot tell a flat block from a ramp with the
	// same mean (see BenchmarkAblationHash).
	HashAvgOnly
	// HashMinMax hashes the block's minimum and maximum elements — an
	// equivalent-cost alternative that distinguishes one-sided outliers
	// better than average+range.
	HashMinMax
)

// String names the hash pair.
func (h HashKind) String() string {
	switch h {
	case HashAvgRange:
		return "avg+range"
	case HashAvgOnly:
		return "avg-only"
	case HashMinMax:
		return "min+max"
	}
	return fmt.Sprintf("HashKind(%d)", uint8(h))
}

// MapSpec fixes the size of the Doppelgänger map space, the design-time knob
// of §3.7. M is the paper's "M-bit map space" (12, 13 or 14 in the
// evaluation). The full map value concatenates the M-bit primary map with
// the ⌈M/2⌉ high-order bits of the secondary map (§3.7 and its footnote),
// which is why Table 3 lists a 21-bit map field for the 14-bit
// configuration. Hash selects the hash-function pair (zero value: the
// paper's average+range).
type MapSpec struct {
	M    int
	Hash HashKind
}

// AvgBits returns the number of map bits contributed by the average hash
// for elements of type t. Per §3.7, when M exceeds the element width the
// mapping step is skipped and the hash itself is used, so the contribution
// is capped at the element width.
func (s MapSpec) AvgBits(t memdata.ElemType) int {
	return minInt(s.M, t.Bits())
}

// RangeBits returns the number of map bits contributed by the range hash:
// the ⌈M/2⌉ high-order bits of the M-bit range map, again capped at the
// element width.
func (s MapSpec) RangeBits(t memdata.ElemType) int {
	return minInt((s.M+1)/2, t.Bits())
}

// TotalBits returns the width of the concatenated map value for elements of
// type t. For floating-point elements at M=14 this is 21 bits (Table 3).
func (s MapSpec) TotalBits(t memdata.ElemType) int {
	return s.AvgBits(t) + s.RangeBits(t)
}

// MapValue computes the Doppelgänger map for a block interpreted under
// region r: the two-step hash-then-map process of §3.7.
//
// Step 1 (hash): two hash values are computed from the block's elements
// after clamping each into the region's declared [Min, Max] — by default
// the average and the range (max − min).
//
// Step 2 (map): each hash is linearly binned — the primary into 2^AvgBits
// equally spaced bins over its domain, the secondary into 2^RangeBits bins.
// The secondary map forms the upper bits and the primary map the lower bits
// of the returned value.
func (s MapSpec) MapValue(b *memdata.Block, r *Region) uint32 {
	avg, rng, lo, hi := blockStats(b, r)
	avgBits := s.AvgBits(r.Type)
	rngBits := s.RangeBits(r.Type)

	if s.Hash == HashAvgOnly {
		// The whole map budget goes to a finer-grained average map.
		if s.M >= r.Type.Bits() && isIntegral(r.Type) {
			return uint32(math.Round(avg - r.Min))
		}
		return linearMap(avg, r.Min, r.Max, avgBits+rngBits)
	}

	// Select the hash pair and its domains.
	var h1, h2, h1lo, h1hi, h2lo, h2hi float64
	switch s.Hash {
	case HashMinMax:
		h1, h1lo, h1hi = lo, r.Min, r.Max
		h2, h2lo, h2hi = hi, r.Min, r.Max
	default: // HashAvgRange
		h1, h1lo, h1hi = avg, r.Min, r.Max
		h2, h2lo, h2hi = rng, 0, r.Max-r.Min
	}

	var m1, m2 uint32
	if s.M >= r.Type.Bits() && isIntegral(r.Type) {
		// Mapping step omitted: the hash itself (an integral value no wider
		// than the map space) is the map, avoiding always-zero low bits and
		// the resulting set conflicts (§3.7).
		m1 = uint32(math.Round(h1 - h1lo))
	} else {
		m1 = linearMap(h1, h1lo, h1hi, avgBits)
	}
	if (s.M+1)/2 >= r.Type.Bits() && isIntegral(r.Type) {
		m2 = uint32(math.Round(h2 - h2lo))
	} else {
		m2 = linearMap(h2, h2lo, h2hi, rngBits)
	}
	return m2<<uint(avgBits) | m1
}

// BlockHashes computes the paper's two hash-function outputs (§3.7) for a
// block: the average of its elements and their range, with each element
// clamped to the region's declared bounds first.
func BlockHashes(b *memdata.Block, r *Region) (avg, rng float64) {
	avg, rng, _, _ = blockStats(b, r)
	return avg, rng
}

// blockStats computes average, range, min and max of the clamped elements.
func blockStats(b *memdata.Block, r *Region) (avg, rng, lo, hi float64) {
	n := r.Type.PerBlock()
	sum := 0.0
	lo = math.Inf(1)
	hi = math.Inf(-1)
	for i := 0; i < n; i++ {
		v := r.Clamp(sanitize(b.Elem(r.Type, i), r))
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return sum / float64(n), hi - lo, lo, hi
}

// linearMap bins h into 2^bits equally spaced bins over [lo, hi]: lo maps to
// bin 0 and hi to bin 2^bits − 1 (§3.7, Fig. 6b).
func linearMap(h, lo, hi float64, bits int) uint32 {
	if bits <= 0 || hi <= lo {
		return 0
	}
	if bits > 32 {
		bits = 32
	}
	bins := uint64(1) << uint(bits)
	frac := (h - lo) / (hi - lo)
	m := uint64(frac * float64(bins))
	if m >= bins {
		m = bins - 1
	}
	return uint32(m)
}

// sanitize guards the hash computation against NaN/Inf payloads (possible in
// float regions before initialization); they clamp to the region minimum.
func sanitize(v float64, r *Region) float64 {
	if math.IsNaN(v) {
		return r.Min
	}
	if math.IsInf(v, 1) {
		return r.Max
	}
	if math.IsInf(v, -1) {
		return r.Min
	}
	return v
}

func isIntegral(t memdata.ElemType) bool {
	return t == memdata.U8 || t == memdata.I32
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
