package quality

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

func testRegion() *approx.Region {
	return &approx.Region{
		Name: "data", Start: 0, End: 1 << 20,
		Type: memdata.F32, Min: 0, Max: 1,
	}
}

// blockOf fills every F32 element with v, so BlockError between two such
// blocks over a [0,1] region is exactly |a-b|.
func blockOf(v float64) *memdata.Block {
	b := new(memdata.Block)
	for i := 0; i < memdata.F32.PerBlock(); i++ {
		b.SetElem(memdata.F32, i, v)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Budget: 0},
		{Budget: -0.1},
		{Budget: math.NaN()},
		{Budget: 0.05, CanaryRate: -0.1},
		{Budget: 0.05, CanaryRate: 1.5},
		{Budget: 0.05, CanaryRate: math.NaN()},
		{Budget: 0.05, Alpha: -1},
		{Budget: 0.05, Alpha: 2},
		{Budget: 0.05, ReEnterFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	if _, err := New(Config{Budget: 0.05}); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
	// An explicit CanaryRate 0 means "sampling off" and must survive
	// defaulting.
	c := MustNew(Config{Budget: 0.05, CanaryRate: 0})
	if c.cfg.CanaryRate != 0 {
		t.Errorf("explicit zero canary rate was defaulted to %v", c.cfg.CanaryRate)
	}
}

func TestStateTextRoundTrip(t *testing.T) {
	for _, s := range []State{Closed, Open, HalfOpen} {
		b, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got State
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %v -> %q -> %v", s, b, got)
		}
	}
	var s State
	if err := s.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus state accepted")
	}
}

func TestBlockError(t *testing.T) {
	r := testRegion()
	if got := BlockError(r, blockOf(0.3), blockOf(0.3)); got != 0 {
		t.Errorf("identical blocks: %v", got)
	}
	if got := BlockError(r, blockOf(0.2), blockOf(0.7)); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("distance 0.5 scored %v", got)
	}
	// NaN payloads clamp to Min rather than poisoning the estimate.
	if got := BlockError(r, blockOf(math.NaN()), blockOf(0)); got != 0 {
		t.Errorf("NaN vs Min scored %v", got)
	}
	// Degenerate range: 0 iff equal.
	deg := &approx.Region{Name: "deg", Start: 0, End: 1 << 20, Type: memdata.F32, Min: 5, Max: 5}
	if got := BlockError(deg, blockOf(5), blockOf(5)); got != 0 {
		t.Errorf("degenerate equal scored %v", got)
	}
}

// observeErr feeds one canary with exactly error e (region range [0,1]).
func observeErr(c *Controller, r *approx.Region, e float64) {
	c.Observe(r, blockOf(e), blockOf(0))
}

// checkTransitions asserts the structural invariants of a transition log:
// only legal edges, contiguous (each From equals the previous To, starting
// Closed), trips happen above the budget, and re-entries happen at or below
// the hysteresis threshold.
func checkTransitions(t *testing.T, trs []Transition, cfg Config) {
	t.Helper()
	prev := Closed
	for i, tr := range trs {
		if tr.From != prev {
			t.Fatalf("transition %d: from %v, previous state %v", i, tr.From, prev)
		}
		switch {
		case tr.From == Closed && tr.To == Open:
			if !(tr.Estimate > cfg.Budget) {
				t.Fatalf("transition %d: tripped closed->open with estimate %v <= budget %v", i, tr.Estimate, cfg.Budget)
			}
		case tr.From == Open && tr.To == HalfOpen:
			// Cooldown expiry; no estimate condition.
		case tr.From == HalfOpen && tr.To == Closed:
			if !(tr.Estimate <= cfg.ReEnterFrac*cfg.Budget) {
				t.Fatalf("transition %d: re-closed with estimate %v > %v x budget %v", i, tr.Estimate, cfg.ReEnterFrac, cfg.Budget)
			}
		case tr.From == HalfOpen && tr.To == Open:
			// Failed probe; the estimate still reflects the EWMA, not the
			// probe mean, so no threshold condition is asserted.
		default:
			t.Fatalf("transition %d: illegal edge %v -> %v", i, tr.From, tr.To)
		}
		if i > 0 && tr.Op < trs[i-1].Op {
			t.Fatalf("transition %d: op clock went backwards (%d after %d)", i, tr.Op, trs[i-1].Op)
		}
		prev = tr.To
	}
}

// driveOp simulates one approximate operation against the guard the way the
// cache does: consult the breaker, and if allowed, maybe pay for a canary
// with the phase's true error.
func driveOp(c *Controller, r *approx.Region, trueErr float64) {
	if !c.Allow() {
		return
	}
	if c.Sample() {
		observeErr(c, r, trueErr)
	}
}

// TestBreakerProperty is the breaker's liveness/safety property test: under
// seeded random error traces with a persistently-low phase and a
// persistently-high phase, the breaker (a) never stays Open once the true
// error has been under budget for long enough, (b) never stays Closed while
// the true error persistently exceeds the budget, and (c) only ever makes
// legal, threshold-respecting transitions.
func TestBreakerProperty(t *testing.T) {
	r := testRegion()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Seed:         uint64(seed),
			Budget:       0.1,
			CanaryRate:   0.5,
			Cooldown:     50, // small windows so phases converge quickly
			ProbeSamples: 8,
		}
		c := MustNew(cfg)
		full := cfg.withDefaults()

		// Phase 1: low error, well under budget. Must stay (or end) Closed.
		for i := 0; i < 2000; i++ {
			driveOp(c, r, 0.02*rng.Float64())
		}
		if c.State() != Closed {
			t.Logf("seed %d: closed-phase ended %v", seed, c.State())
			return false
		}
		if c.Stats().Trips != 0 {
			t.Logf("seed %d: tripped during low phase", seed)
			return false
		}

		// Phase 2: persistent high error. Must trip, and must not be Closed
		// afterwards — any HalfOpen probe window re-opens on this stream.
		for i := 0; i < 4000; i++ {
			driveOp(c, r, 0.5+0.4*rng.Float64())
		}
		if c.Stats().Trips == 0 {
			t.Logf("seed %d: high phase never tripped", seed)
			return false
		}
		if c.State() == Closed {
			t.Logf("seed %d: closed during persistent overrun", seed)
			return false
		}

		// Phase 3: recovery. Enough low-error ops to drain any cooldown and
		// fill a probe window; the breaker must re-close and stay closed.
		for i := 0; i < 4000; i++ {
			driveOp(c, r, 0.02*rng.Float64())
		}
		if c.State() != Closed {
			t.Logf("seed %d: recovery ended %v", seed, c.State())
			return false
		}
		if c.Stats().Reentries == 0 {
			t.Logf("seed %d: recovered without a re-entry", seed)
			return false
		}
		checkTransitions(t, c.Transitions(), full)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBreakerDeterminism: the same config and the same operation sequence
// produce bit-identical transition logs and stats.
func TestBreakerDeterminism(t *testing.T) {
	r := testRegion()
	run := func() *Controller {
		c := MustNew(Config{Seed: 42, Budget: 0.1, CanaryRate: 0.3, Cooldown: 40, ProbeSamples: 4})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 3000; i++ {
			e := 0.05 * rng.Float64()
			if i/500%2 == 1 { // alternate low and high phases
				e = 0.3 + 0.3*rng.Float64()
			}
			driveOp(c, r, e)
		}
		return c
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Transitions(), b.Transitions()) {
		t.Errorf("transition logs diverged:\n%v\n%v", a.Transitions(), b.Transitions())
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Estimate() != b.Estimate() {
		t.Errorf("estimates diverged: %v vs %v", a.Estimate(), b.Estimate())
	}
}

// TestOpenNeverSamples: while Open (cooldown running), Sample must refuse —
// paying for canaries on bypassed operations would be pure overhead.
func TestOpenNeverSamples(t *testing.T) {
	r := testRegion()
	c := MustNew(Config{Budget: 0.01, CanaryRate: 1, Cooldown: 100})
	driveOp(c, r, 0.9) // first canary trips immediately
	if c.State() != Open {
		t.Fatalf("state %v after overrun, want open", c.State())
	}
	for i := 0; i < 50; i++ {
		if c.Sample() {
			t.Fatal("sampled while open")
		}
	}
}

// TestHalfOpenReanchorsEstimate: a successful probe window must replace the
// EWMA's memory of the bad period, otherwise the next canary re-trips.
func TestHalfOpenReanchorsEstimate(t *testing.T) {
	r := testRegion()
	c := MustNew(Config{Budget: 0.1, CanaryRate: 1, Cooldown: 10, ProbeSamples: 4})
	for i := 0; i < 20 && c.State() == Closed; i++ {
		driveOp(c, r, 0.9)
	}
	if c.State() != Open {
		t.Fatalf("never tripped")
	}
	for i := 0; i < 100 && c.State() != Closed; i++ {
		driveOp(c, r, 0.0)
	}
	if c.State() != Closed {
		t.Fatalf("never re-closed")
	}
	if c.Estimate() > 0.09 {
		t.Errorf("estimate %v still remembers the bad period", c.Estimate())
	}
	// The very next clean canary must not re-trip.
	driveOp(c, r, 0.0)
	if c.State() != Closed {
		t.Error("re-tripped immediately after re-entry")
	}
}

func TestRegionEstimates(t *testing.T) {
	c := MustNew(Config{Budget: 0.5, CanaryRate: 1})
	r1 := testRegion()
	r2 := &approx.Region{Name: "other", Start: 1 << 20, End: 2 << 20, Type: memdata.F32, Min: 0, Max: 1}
	c.Sample()
	observeErr(c, r1, 0.1)
	c.Sample()
	observeErr(c, r2, 0.3)
	re := c.RegionEstimates()
	if math.Abs(re["data"]-0.1) > 1e-6 || math.Abs(re["other"]-0.3) > 1e-6 {
		t.Errorf("region estimates %v", re)
	}
}

// TestNilControllerZeroCost locks down the disabled path: all three hot
// hooks must be allocation-free (and behaviorally inert) on a nil receiver.
func TestNilControllerZeroCost(t *testing.T) {
	var c *Controller
	r := testRegion()
	a, b := blockOf(0.1), blockOf(0.9)
	if got := testing.AllocsPerRun(200, func() {
		if !c.Allow() {
			t.Fatal("nil controller blocked")
		}
		if c.Sample() {
			t.Fatal("nil controller sampled")
		}
		c.Observe(r, a, b)
	}); got != 0 {
		t.Errorf("nil controller allocated %v per op", got)
	}
	if c.State() != Closed || c.Estimate() != 0 || c.Transitions() != nil || (c.Stats() != Stats{}) {
		t.Error("nil controller accessors not inert")
	}
}
