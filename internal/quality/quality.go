// Package quality is an online quality guard for the approximate memory
// hierarchy: it closes the loop the paper leaves open by *enforcing* the
// output-error bargain at run time instead of trusting it.
//
// The guard combines two mechanisms:
//
//   - Canary sampling: a deterministic, seed-derived fraction of approximate
//     substitutions additionally fetches the precise value next to the
//     Doppelgänger representative and folds their normalized distance into
//     an exponentially weighted running error estimate, kept both globally
//     and per annotated region.
//   - A circuit breaker wrapping approximation with the classic
//     closed/open/half-open states. While Closed, approximation proceeds and
//     canaries are sampled at CanaryRate. When the estimate exceeds the
//     configured error Budget the breaker trips Open: the hierarchy degrades
//     gracefully to precise LLC behaviour (approximate loads bypass the map
//     table and are cached under address-derived keys). After Cooldown
//     bypassed operations the breaker goes HalfOpen and probes re-entry:
//     every substitution is sampled until ProbeSamples canaries have been
//     observed, and the breaker re-closes only if their mean error is at
//     most ReEnterFrac x Budget — the hysteresis margin that keeps a
//     marginal workload from flapping between states.
//
// A Controller is wired into a simulation the same way the metrics registry
// and the fault injector are: structures carry a controller pointer
// unconditionally, and a nil controller is the zero-cost disabled path
// (every method no-ops on a nil receiver, locked down by zero-alloc guards).
//
// Determinism: canary decisions are a pure function of the controller's seed
// and the sequence of draws made against it. Each simulation owns one
// controller seeded from (global seed, task key), and every functional run
// performs its accesses serially under the gang scheduler, so the breaker's
// transition log is bit-identical at any worker count.
//
// A Controller is NOT safe for concurrent use; give each simulation its own.
package quality

import (
	"fmt"
	"math"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
)

// State is the circuit breaker's position.
type State uint8

// The breaker states.
const (
	// Closed: approximation active, canaries sampled at CanaryRate.
	Closed State = iota
	// Open: approximation bypassed; the hierarchy behaves precisely.
	Open
	// HalfOpen: approximation active again on probation; every substitution
	// is sampled until the probe window fills.
	HalfOpen
)

// String names the state as used in logs, metrics and sweep tables.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// MarshalText renders the state name into JSON transition logs.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name (checkpoint round-trips).
func (s *State) UnmarshalText(b []byte) error {
	switch string(b) {
	case "closed":
		*s = Closed
	case "open":
		*s = Open
	case "half-open":
		*s = HalfOpen
	default:
		return fmt.Errorf("quality: unknown state %q", b)
	}
	return nil
}

// Config describes one controller.
type Config struct {
	// Seed determines the canary sample sites; derive it from a global seed
	// and a task key (faults.Derive) for independent per-run streams.
	Seed uint64
	// Budget is the error budget the breaker enforces: when the running
	// estimate exceeds it, approximation trips off. Required, in (0, +inf).
	Budget float64
	// CanaryRate is the fraction of substitutions sampled while Closed.
	// 0 disables closed-state sampling (the breaker can then never trip);
	// 1 samples every substitution. Flag-level defaults live in the binaries
	// and the sweep runner, not here, so an explicit 0 stays 0.
	CanaryRate float64
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.1): the weight
	// of each new canary observation in the running estimate.
	Alpha float64
	// Cooldown is how many bypassed approximate operations the breaker stays
	// Open before probing re-entry (default 2000).
	Cooldown uint64
	// ProbeSamples is the half-open probe window: how many canaries are
	// averaged before deciding between re-closing and re-opening (default 16).
	ProbeSamples uint64
	// ReEnterFrac scales the Budget into the re-entry threshold: the probe
	// mean must be at most ReEnterFrac x Budget to re-close (default 0.9).
	// Values below 1 give the breaker a hysteresis band so an estimate
	// hovering at the budget does not flap.
	ReEnterFrac float64
	// Trace, when non-nil, receives an instant event per breaker transition
	// on process lane TracePID (timestamped by approximate-op ordinal).
	Trace    *metrics.TraceWriter
	TracePID int
}

// withDefaults fills the zero-value knobs whose zero is meaningless
// (CanaryRate 0 is meaningful — sampling off — and is left alone).
func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2000
	}
	if c.ProbeSamples == 0 {
		c.ProbeSamples = 16
	}
	if c.ReEnterFrac == 0 {
		c.ReEnterFrac = 0.9
	}
	return c
}

// validate rejects configurations that would disable or destabilize the
// guard in confusing ways. The documented way to disable the guard entirely
// is a nil Controller, not a zero budget — a zero budget is an error.
func (c Config) validate() error {
	if math.IsNaN(c.Budget) || c.Budget <= 0 {
		return fmt.Errorf("quality: budget %v out of range (want a positive error fraction)", c.Budget)
	}
	if math.IsNaN(c.CanaryRate) || c.CanaryRate < 0 || c.CanaryRate > 1 {
		return fmt.Errorf("quality: canary rate %v out of [0,1]", c.CanaryRate)
	}
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("quality: EWMA alpha %v out of (0,1]", c.Alpha)
	}
	if math.IsNaN(c.ReEnterFrac) || c.ReEnterFrac <= 0 || c.ReEnterFrac > 1 {
		return fmt.Errorf("quality: re-enter fraction %v out of (0,1]", c.ReEnterFrac)
	}
	return nil
}

// Transition is one breaker state change, logged for determinism tests and
// exported through the Chrome trace.
type Transition struct {
	// Op is the approximate-operation ordinal (Stats.ApproxOps) at decision
	// time — a deterministic logical clock.
	Op   uint64 `json:"op"`
	From State  `json:"from"`
	To   State  `json:"to"`
	// Estimate is the running error estimate immediately after the
	// transition (re-anchored to the probe mean on re-entry).
	Estimate float64 `json:"estimate"`
}

// Stats counts the guard's work.
type Stats struct {
	// ApproxOps counts breaker consultations (approximate loads/writebacks
	// that would generate a map value).
	ApproxOps uint64
	// Bypassed counts ApproxOps served precisely because the breaker was
	// Open.
	Bypassed uint64
	// CanaryDraws counts substitution events offered to the sampler; Canaries
	// counts the ones actually sampled (the canary overhead numerator).
	CanaryDraws uint64
	Canaries    uint64
	// Trips counts Closed/HalfOpen -> Open transitions; Reentries counts
	// HalfOpen -> Closed.
	Trips     uint64
	Reentries uint64
}

// regionEst is one annotated region's own EWMA.
type regionEst struct {
	est    float64
	n      uint64
	seeded bool
}

// ctlMetrics are the controller's registry instruments; all nil when
// metrics are disabled.
type ctlMetrics struct {
	canaries, trips, reentries, bypassed *metrics.Counter
	state, estimatePPM                   *metrics.Gauge
}

// Controller is the online quality guard. The nil controller is valid:
// every approximate operation is allowed, nothing is sampled, nothing is
// recorded.
type Controller struct {
	cfg          Config
	state        State
	est          float64
	seeded       bool
	rng          uint64 // splitmix64 state
	cooldownLeft uint64
	probeSum     float64
	probeCount   uint64
	stats        Stats
	transitions  []Transition
	regions      map[string]*regionEst
	m            ctlMetrics
}

// New builds a controller, rejecting invalid configurations.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		rng:     mix64(cfg.Seed),
		regions: make(map[string]*regionEst),
	}
	if cfg.Trace != nil {
		cfg.Trace.ThreadName(cfg.TracePID, 0, "quality guard")
	}
	return c, nil
}

// MustNew is New but panics on error (static configurations in tests).
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// mix64 is the splitmix64 finalizer (same stream discipline as the fault
// injector, so seeds whiten identically).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the splitmix64 stream.
func (c *Controller) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	return mix64(c.rng)
}

// u01 draws a uniform float64 in [0, 1) with 53 mantissa bits.
func (c *Controller) u01() float64 {
	return float64(c.next()>>11) * (1.0 / (1 << 53))
}

// transition moves the breaker and records the change.
func (c *Controller) transition(to State) {
	from := c.state
	c.state = to
	c.transitions = append(c.transitions, Transition{
		Op: c.stats.ApproxOps, From: from, To: to, Estimate: c.est,
	})
	c.m.state.Set(int64(to))
	if c.cfg.Trace != nil {
		c.cfg.Trace.Instant(c.cfg.TracePID, 0, "breaker "+from.String()+"->"+to.String(),
			"quality", float64(c.stats.ApproxOps))
	}
}

// Allow reports whether the next approximate operation may approximate.
// False means the breaker is Open and the caller must serve the operation
// precisely (bypassing the map table). Allow also drives the Open-state
// cooldown clock: after Cooldown bypassed operations the breaker goes
// HalfOpen and the operation that observed the expiry approximates again as
// the first probe. Nil controllers always allow.
func (c *Controller) Allow() bool {
	if c == nil {
		return true
	}
	c.stats.ApproxOps++
	if c.state != Open {
		return true
	}
	if c.cooldownLeft > 0 {
		c.cooldownLeft--
	}
	if c.cooldownLeft == 0 {
		c.probeSum, c.probeCount = 0, 0
		c.transition(HalfOpen)
		return true
	}
	c.stats.Bypassed++
	c.m.bypassed.Inc()
	return false
}

// Sample reports whether this substitution event should pay for a canary
// comparison (the caller then materializes both values and calls Observe).
// Closed samples at CanaryRate from the seeded stream; HalfOpen samples
// every substitution (the probe window wants evidence fast); Open never
// samples. Nil controllers never sample.
func (c *Controller) Sample() bool {
	if c == nil {
		return false
	}
	c.stats.CanaryDraws++
	switch c.state {
	case HalfOpen:
		return true
	case Open:
		return false
	}
	if c.cfg.CanaryRate <= 0 {
		return false
	}
	if c.cfg.CanaryRate >= 1 {
		return true
	}
	return c.u01() < c.cfg.CanaryRate
}

// Observe feeds one canary comparison — the approximate value served
// (substituted representative) next to the precise value it replaced — into
// the running estimates and steps the breaker. region supplies the element
// type and declared range that normalize the distance; a nil region (or a
// nil controller) is a no-op.
func (c *Controller) Observe(region *approx.Region, approxVal, precise *memdata.Block) {
	if c == nil || region == nil {
		return
	}
	e := BlockError(region, approxVal, precise)
	c.stats.Canaries++
	c.m.canaries.Inc()
	if !c.seeded {
		c.est, c.seeded = e, true
	} else {
		c.est += c.cfg.Alpha * (e - c.est)
	}
	c.m.estimatePPM.Set(int64(c.est * 1e6))
	re := c.regions[region.Name]
	if re == nil {
		re = &regionEst{}
		c.regions[region.Name] = re
	}
	if !re.seeded {
		re.est, re.seeded = e, true
	} else {
		re.est += c.cfg.Alpha * (e - re.est)
	}
	re.n++

	switch c.state {
	case Closed:
		if c.est > c.cfg.Budget {
			c.stats.Trips++
			c.m.trips.Inc()
			c.cooldownLeft = c.cfg.Cooldown
			c.transition(Open)
		}
	case HalfOpen:
		c.probeSum += e
		c.probeCount++
		if c.probeCount >= c.cfg.ProbeSamples {
			mean := c.probeSum / float64(c.probeCount)
			if mean <= c.cfg.ReEnterFrac*c.cfg.Budget {
				// Re-anchor the estimate to the probe window: the EWMA still
				// remembers the bad period that tripped the breaker, and
				// re-closing on stale memory would re-trip immediately.
				c.est = mean
				c.m.estimatePPM.Set(int64(c.est * 1e6))
				c.stats.Reentries++
				c.m.reentries.Inc()
				c.transition(Closed)
			} else {
				c.stats.Trips++
				c.m.trips.Inc()
				c.cooldownLeft = c.cfg.Cooldown
				c.transition(Open)
			}
		}
	}
}

// BlockError is the canary distance metric: the mean element-wise absolute
// difference between two blocks, normalized by the region's declared value
// range — the same per-element normalization the paper's similarity
// predicate uses, so the estimate is commensurable with the output-error
// budget. Non-finite elements are clamped into the declared range first; a
// degenerate (empty) range scores 0 for equal elements and 1 otherwise.
func BlockError(region *approx.Region, a, b *memdata.Block) float64 {
	n := region.Type.PerBlock()
	span := region.Max - region.Min
	var sum float64
	for i := 0; i < n; i++ {
		av := sanitize(region, a.Elem(region.Type, i))
		bv := sanitize(region, b.Elem(region.Type, i))
		if span <= 0 {
			if av != bv {
				sum++
			}
			continue
		}
		sum += math.Abs(av-bv) / span
	}
	return sum / float64(n)
}

// sanitize clamps v into the region's declared range, mapping NaN to Min
// (mirroring the map-generation hash's guard against hostile payloads).
func sanitize(region *approx.Region, v float64) float64 {
	if math.IsNaN(v) {
		return region.Min
	}
	return region.Clamp(v)
}

// State returns the breaker's position (Closed for nil controllers).
func (c *Controller) State() State {
	if c == nil {
		return Closed
	}
	return c.state
}

// Estimate returns the running global error estimate (0 until the first
// canary lands, and always 0 for nil controllers).
func (c *Controller) Estimate() float64 {
	if c == nil {
		return 0
	}
	return c.est
}

// RegionEstimates returns the per-region running estimates (nil for nil
// controllers or before any canary).
func (c *Controller) RegionEstimates() map[string]float64 {
	if c == nil || len(c.regions) == 0 {
		return nil
	}
	out := make(map[string]float64, len(c.regions))
	for name, re := range c.regions {
		out[name] = re.est
	}
	return out
}

// Transitions returns the breaker's transition log in decision order.
func (c *Controller) Transitions() []Transition {
	if c == nil {
		return nil
	}
	return c.transitions
}

// Stats returns the guard's counters.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return c.stats
}

// Budget returns the configured error budget (0 for nil controllers).
func (c *Controller) Budget() float64 {
	if c == nil {
		return 0
	}
	return c.cfg.Budget
}

// AttachMetrics resolves the controller's instruments in reg under the
// "quality." prefix. A nil registry (or controller) leaves the zero-cost
// disabled path in place.
func (c *Controller) AttachMetrics(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.m = ctlMetrics{
		canaries:    reg.Counter("quality.canaries"),
		trips:       reg.Counter("quality.trips"),
		reentries:   reg.Counter("quality.reentries"),
		bypassed:    reg.Counter("quality.bypassed_ops"),
		state:       reg.Gauge("quality.breaker_state"),
		estimatePPM: reg.Gauge("quality.estimate_ppm"),
	}
	c.m.state.Set(int64(c.state))
}
