package quality

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// TestBreakerTripsOnRepeatedFailures: a healthy breaker survives one failure
// but trips after repeated ones, denies while Open, probes after the
// cooldown, and recovers on successful probes.
func TestBreakerTripsOnRepeatedFailures(t *testing.T) {
	b := MustNewBreaker(BreakerConfig{Budget: 0.5, Alpha: 0.3, Cooldown: 4, ProbeSamples: 2})
	if !b.Allow() {
		t.Fatal("fresh breaker denied")
	}
	b.Observe(1)
	if b.State() != Closed {
		t.Fatalf("one failure tripped the breaker (est %v)", b.Estimate())
	}
	for i := 0; i < 5 && b.State() == Closed; i++ {
		b.Observe(1)
	}
	if b.State() != Open {
		t.Fatalf("repeated failures did not trip: state %v est %v", b.State(), b.Estimate())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	// Open: denied until the cooldown expires, then one probe consult allowed.
	denied := 0
	for b.State() == Open {
		if !b.Allow() {
			denied++
		}
		if denied > 100 {
			t.Fatal("cooldown never expired")
		}
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if denied == 0 {
		t.Fatal("open breaker never denied")
	}
	// Successful probes re-close and re-anchor the estimate.
	b.Observe(0)
	b.Observe(0)
	if b.State() != Closed {
		t.Fatalf("clean probes did not re-close: %v", b.State())
	}
	if b.Estimate() != 0 {
		t.Fatalf("estimate not re-anchored to probe mean: %v", b.Estimate())
	}
	if b.Reentries() != 1 {
		t.Fatalf("reentries = %d, want 1", b.Reentries())
	}
}

// TestBreakerFailedProbeReopens: a failing probe window re-opens instead of
// re-closing.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b := MustNewBreaker(BreakerConfig{Budget: 0.4, Alpha: 0.5, Cooldown: 2, ProbeSamples: 2})
	for b.State() == Closed {
		b.Observe(1)
	}
	for b.State() == Open {
		b.Allow()
	}
	b.Observe(1)
	b.Observe(1)
	if b.State() != Open {
		t.Fatalf("failed probe window left state %v, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

// TestBreakerNil: the nil breaker is the disabled path.
func TestBreakerNil(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied")
	}
	b.Observe(1)
	if b.State() != Closed || b.Estimate() != 0 || b.Trips() != 0 || b.Reentries() != 0 || b.Transitions() != nil {
		t.Fatal("nil breaker accumulated state")
	}
}

// TestBreakerConfigValidation rejects impossible budgets and factors.
func TestBreakerConfigValidation(t *testing.T) {
	bad := []BreakerConfig{
		{Budget: 0},
		{Budget: -1},
		{Budget: 2},
		{Budget: math.NaN()},
		{Budget: 0.5, Alpha: 1.5},
		{Budget: 0.5, ReEnterFrac: 2},
	}
	for _, cfg := range bad {
		if _, err := NewBreaker(cfg); err == nil {
			t.Errorf("NewBreaker(%+v) accepted", cfg)
		}
	}
	if _, err := NewBreaker(BreakerConfig{Budget: 0.5}); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
}

// TestBreakerProperty: under any observation sequence the breaker holds its
// invariants — the estimate stays in [0,1], transitions alternate between
// distinct states, Open always eventually yields to HalfOpen under Allow
// pressure (liveness), and trips >= reentries.
func TestGenericBreakerProperty(t *testing.T) {
	f := func(seed uint64, obs []bool) bool {
		b := MustNewBreaker(BreakerConfig{Budget: 0.3, Alpha: 0.4, Cooldown: 3, ProbeSamples: 2})
		for _, fail := range obs {
			if b.Allow() {
				v := 0.0
				if fail {
					v = 1.0
				}
				b.Observe(v)
			}
			if e := b.Estimate(); e < 0 || e > 1 || math.IsNaN(e) {
				return false
			}
		}
		// Liveness: keep consulting without failures; the breaker must
		// eventually permit work again.
		for i := 0; i < 64; i++ {
			if b.Allow() {
				b.Observe(0)
			}
		}
		if b.State() == Open {
			return false
		}
		tr := b.Transitions()
		for i, x := range tr {
			if x.From == x.To {
				return false
			}
			if i > 0 && tr[i-1].To != x.From {
				return false
			}
		}
		return b.Trips() >= b.Reentries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerConcurrent: hammer one breaker from many goroutines under the
// race detector; counters must stay coherent.
func TestBreakerConcurrent(t *testing.T) {
	b := MustNewBreaker(BreakerConfig{Budget: 0.5, Alpha: 0.2, Cooldown: 8, ProbeSamples: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Observe(float64((g + i) % 2))
				}
			}
		}()
	}
	wg.Wait()
	if e := b.Estimate(); e < 0 || e > 1 {
		t.Fatalf("estimate out of range: %v", e)
	}
	tr := b.Transitions()
	for i := 1; i < len(tr); i++ {
		if tr[i-1].To != tr[i].From {
			t.Fatalf("transition log incoherent at %d: %+v -> %+v", i, tr[i-1], tr[i])
		}
	}
}
