package quality

import (
	"fmt"
	"math"
	"sync"
)

// Breaker is the Controller's closed/open/half-open state machine lifted out
// of the canary-sampling context so other subsystems can guard arbitrary
// operations with the same discipline: an EWMA over scalar failure
// observations (0 = success, 1 = failure, fractions for partial credit), a
// budget that trips the breaker Open, a cooldown counted in Allow consults
// before a HalfOpen probe window, and a hysteresis band on re-entry so a
// marginal dependency does not flap. The sweep server uses one Breaker per
// worker shard to quarantine shards after repeated panics, timeouts or
// corrupt responses.
//
// Unlike Controller (one per serial simulation), a Breaker is safe for
// concurrent use: the server observes outcomes from many dispatcher
// goroutines at once. A nil *Breaker is the disabled path — Allow always
// permits and Observe is a no-op — mirroring the package's nil-controller
// convention.
type Breaker struct {
	mu           sync.Mutex
	cfg          BreakerConfig
	state        State
	est          float64
	cooldownLeft uint64
	probeSum     float64
	probeCount   uint64
	trips        uint64
	reentries    uint64
	transitions  []Transition
	ops          uint64 // Allow consults: the breaker's logical clock
}

// BreakerConfig describes one breaker.
type BreakerConfig struct {
	// Budget is the failure-rate budget in (0, 1]: when the EWMA failure
	// estimate exceeds it the breaker trips Open.
	Budget float64
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.3). The
	// estimate starts at 0 (healthy), so roughly ceil(log(1-Budget)/log(1-
	// Alpha)) consecutive failures are needed for the first trip — "repeated"
	// failures, never a single blip.
	Alpha float64
	// Cooldown is how many Allow consults the breaker stays Open before
	// probing re-entry (default 32).
	Cooldown uint64
	// ProbeSamples is the half-open probe window (default 3).
	ProbeSamples uint64
	// ReEnterFrac scales Budget into the re-entry threshold (default 0.5):
	// the probe mean must be at most ReEnterFrac x Budget to re-close.
	ReEnterFrac float64
}

// withDefaults fills the zero-value knobs.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 32
	}
	if c.ProbeSamples == 0 {
		c.ProbeSamples = 3
	}
	if c.ReEnterFrac == 0 {
		c.ReEnterFrac = 0.5
	}
	return c
}

// validate rejects configurations that could never trip or never re-close.
func (c BreakerConfig) validate() error {
	if math.IsNaN(c.Budget) || c.Budget <= 0 || c.Budget > 1 {
		return fmt.Errorf("quality: breaker budget %v out of (0,1]", c.Budget)
	}
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("quality: breaker alpha %v out of (0,1]", c.Alpha)
	}
	if math.IsNaN(c.ReEnterFrac) || c.ReEnterFrac <= 0 || c.ReEnterFrac > 1 {
		return fmt.Errorf("quality: breaker re-enter fraction %v out of (0,1]", c.ReEnterFrac)
	}
	return nil
}

// NewBreaker builds a breaker, rejecting invalid configurations. The breaker
// starts Closed with a zero (healthy) estimate.
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg}, nil
}

// MustNewBreaker is NewBreaker but panics on error (static test configs).
func MustNewBreaker(cfg BreakerConfig) *Breaker {
	b, err := NewBreaker(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// transitionLocked moves the breaker and records the change; mu held.
func (b *Breaker) transitionLocked(to State) {
	from := b.state
	b.state = to
	b.transitions = append(b.transitions, Transition{
		Op: b.ops, From: from, To: to, Estimate: b.est,
	})
}

// Allow reports whether the guarded operation may proceed. False means the
// breaker is Open and the caller should route around the dependency. Allow
// drives the Open-state cooldown clock exactly like Controller.Allow: after
// Cooldown denied consults the breaker goes HalfOpen and the consult that
// observed the expiry proceeds as the first probe. Nil breakers always
// allow.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ops++
	if b.state != Open {
		return true
	}
	if b.cooldownLeft > 0 {
		b.cooldownLeft--
	}
	if b.cooldownLeft == 0 {
		b.probeSum, b.probeCount = 0, 0
		b.transitionLocked(HalfOpen)
		return true
	}
	return false
}

// Observe feeds one outcome (0 = success, 1 = failure, fractions allowed;
// non-finite values are clamped into [0,1]) into the estimate and steps the
// state machine: Closed trips Open when the EWMA exceeds Budget; HalfOpen
// accumulates the probe window and either re-closes (re-anchoring the
// estimate to the probe mean, the Controller's hysteresis trick) or
// re-opens. Observations made while Open still update the EWMA so recovery
// evidence is not thrown away. Nil breakers ignore observations.
func (b *Breaker) Observe(failure float64) {
	if b == nil {
		return
	}
	if math.IsNaN(failure) || failure < 0 {
		failure = 0
	} else if failure > 1 {
		failure = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.est += b.cfg.Alpha * (failure - b.est)
	switch b.state {
	case Closed:
		if b.est > b.cfg.Budget {
			b.trips++
			b.cooldownLeft = b.cfg.Cooldown
			b.transitionLocked(Open)
		}
	case HalfOpen:
		b.probeSum += failure
		b.probeCount++
		if b.probeCount >= b.cfg.ProbeSamples {
			mean := b.probeSum / float64(b.probeCount)
			if mean <= b.cfg.ReEnterFrac*b.cfg.Budget {
				b.est = mean
				b.reentries++
				b.transitionLocked(Closed)
			} else {
				b.trips++
				b.cooldownLeft = b.cfg.Cooldown
				b.transitionLocked(Open)
			}
		}
	}
}

// State returns the breaker's position (Closed for nil breakers).
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Estimate returns the running failure-rate estimate (0 for nil breakers).
func (b *Breaker) Estimate() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.est
}

// Trips and Reentries count the breaker's Open entries and HalfOpen->Closed
// recoveries.
func (b *Breaker) Trips() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Reentries counts successful recoveries (HalfOpen -> Closed).
func (b *Breaker) Reentries() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reentries
}

// Transitions returns a copy of the state-change log in decision order.
func (b *Breaker) Transitions() []Transition {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Transition, len(b.transitions))
	copy(out, b.transitions)
	return out
}
