package funcsim

import (
	"math/rand"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
)

// TestPreciseValueConsistencyTorture drives random multicore traffic over
// PRECISE data through the full hierarchy (including a split LLC with a
// Doppelgänger side that must never see these addresses) and checks that
// every load observes the globally last-stored value. This validates the
// MSI directory, inclusion, back-invalidation and writeback plumbing.
func TestPreciseValueConsistencyTorture(t *testing.T) {
	const (
		cores  = 4
		blocks = 96
		ops    = 30000
	)
	st := memdata.NewStore()
	regionStart := memdata.Addr(0x0100_0000)
	ann := approx.MustAnnotations(approx.Region{
		Name: "ax", Start: regionStart, End: regionStart + 1<<16,
		Type: memdata.F32, Min: 0, Max: 1,
	})
	split := core.MustNewSplit(
		cache.Config{Name: "precise", SizeBytes: 4 << 10, Ways: 4}, // tiny: force evictions
		core.Config{
			Name:       "dopp",
			TagEntries: 64, TagWays: 4,
			DataEntries: 16, DataWays: 4,
			MapSpec: approx.MapSpec{M: 14},
		},
		st, ann)
	h := New(Config{
		Cores: cores,
		L1:    cache.Config{Name: "L1", SizeBytes: 512, Ways: 2},
		L2:    cache.Config{Name: "L2", SizeBytes: 1 << 10, Ways: 2},
	}, split, st, ann, nil)

	rng := rand.New(rand.NewSource(77))
	expected := make([]int32, blocks) // last value stored per word
	written := make([]bool, blocks)
	for op := 0; op < ops; op++ {
		c := rng.Intn(cores)
		i := rng.Intn(blocks)
		addr := memdata.Addr(0x4000 + i*memdata.BlockSize)
		if rng.Intn(3) == 0 {
			v := int32(rng.Intn(1 << 20))
			h.StoreI32(c, addr, v)
			expected[i] = v
			written[i] = true
		} else if written[i] {
			if got := h.LoadI32(c, addr); got != expected[i] {
				t.Fatalf("op %d: core %d read %d from block %d, want %d",
					op, c, got, i, expected[i])
			}
		}
	}
	// After a flush, memory must hold the final values.
	h.Flush()
	for i, w := range written {
		if !w {
			continue
		}
		addr := memdata.Addr(0x4000 + i*memdata.BlockSize)
		if got := st.ReadI32(addr); got != expected[i] {
			t.Fatalf("after flush: block %d = %d, want %d", i, got, expected[i])
		}
	}
}

// TestMixedTrafficInvariantsTorture mixes approximate and precise traffic
// through the split LLC and checks the Doppelgänger structural invariants
// periodically, plus inclusion (every private block has an LLC tag).
func TestMixedTrafficInvariantsTorture(t *testing.T) {
	st := memdata.NewStore()
	regionStart := memdata.Addr(0x0100_0000)
	ann := approx.MustAnnotations(approx.Region{
		Name: "ax", Start: regionStart, End: regionStart + 1<<18,
		Type: memdata.F32, Min: 0, Max: 100,
	})
	split := core.MustNewSplit(
		cache.Config{Name: "precise", SizeBytes: 4 << 10, Ways: 4},
		core.Config{
			Name:       "dopp",
			TagEntries: 128, TagWays: 4,
			DataEntries: 32, DataWays: 4,
			MapSpec: approx.MapSpec{M: 14},
		},
		st, ann)
	h := New(Config{
		Cores: 2,
		L1:    cache.Config{Name: "L1", SizeBytes: 512, Ways: 2},
		L2:    cache.Config{Name: "L2", SizeBytes: 1 << 10, Ways: 2},
	}, split, st, ann, nil)

	rng := rand.New(rand.NewSource(13))
	for op := 0; op < 20000; op++ {
		c := rng.Intn(2)
		if rng.Intn(2) == 0 {
			addr := regionStart + memdata.Addr(rng.Intn(1024)*memdata.BlockSize)
			if rng.Intn(4) == 0 {
				h.StoreF32(c, addr, rng.Float32()*100)
			} else {
				h.LoadF32(c, addr)
			}
		} else {
			addr := memdata.Addr(0x8000 + rng.Intn(512)*memdata.BlockSize)
			if rng.Intn(4) == 0 {
				h.StoreI32(c, addr, int32(op))
			} else {
				h.LoadI32(c, addr)
			}
		}
		if op%500 == 0 {
			if err := split.Doppel.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := split.Doppel.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Stats.BackInvals == 0 {
		t.Error("torture produced no back-invalidations; caches too large for the test")
	}
}
