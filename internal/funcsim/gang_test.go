package funcsim

import (
	"testing"

	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

func TestGangRunsAllKernels(t *testing.T) {
	h, _ := testHierarchy(4, nil)
	done := make([]bool, 4)
	kernels := make([]func(*CoreCtx), 4)
	for c := 0; c < 4; c++ {
		c := c
		kernels[c] = func(ctx *CoreCtx) {
			if ctx.Core() != c {
				t.Errorf("kernel %d got core %d", c, ctx.Core())
			}
			for i := 0; i < 10+c*3; i++ { // uneven lengths
				ctx.StoreI32(memdata.Addr(0x1000+c*4096+i*64), int32(i))
			}
			done[c] = true
		}
	}
	Run(h, kernels)
	for c, d := range done {
		if !d {
			t.Errorf("kernel %d did not finish", c)
		}
	}
}

func TestGangDeterministicInterleaving(t *testing.T) {
	run := func() []int32 {
		h, st := testHierarchy(2, nil)
		kernels := []func(*CoreCtx){
			func(ctx *CoreCtx) {
				for i := 0; i < 50; i++ {
					v := ctx.LoadI32(0x100)
					ctx.StoreI32(0x100, v+1)
				}
			},
			func(ctx *CoreCtx) {
				for i := 0; i < 50; i++ {
					v := ctx.LoadI32(0x100)
					ctx.StoreI32(0x100, v*2%1000)
				}
			},
		}
		Run(h, kernels)
		h.Flush()
		return []int32{st.ReadI32(0x100)}
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Errorf("nondeterministic: %d vs %d", a[0], b[0])
	}
}

func TestGangBarrier(t *testing.T) {
	h, _ := testHierarchy(4, nil)
	phase := make([]int, 4)
	kernels := make([]func(*CoreCtx), 4)
	for c := 0; c < 4; c++ {
		c := c
		kernels[c] = func(ctx *CoreCtx) {
			// Uneven pre-barrier work.
			for i := 0; i < (c+1)*7; i++ {
				ctx.LoadI32(memdata.Addr(0x1000 + c*4096 + i*64))
			}
			phase[c] = 1
			ctx.Barrier()
			// After the barrier every core must observe every phase[i] == 1.
			for i := 0; i < 4; i++ {
				if phase[i] != 1 {
					t.Errorf("core %d passed barrier before core %d", c, i)
				}
			}
			ctx.LoadI32(memdata.Addr(0x2000 + c*64))
		}
	}
	Run(h, kernels)
}

func TestGangBarrierWithFinishedCores(t *testing.T) {
	// Core 1 finishes without ever reaching a barrier; cores 0 and 2 should
	// still rendezvous.
	h, _ := testHierarchy(3, nil)
	kernels := []func(*CoreCtx){
		func(ctx *CoreCtx) {
			ctx.LoadI32(0x100)
			ctx.Barrier()
			ctx.LoadI32(0x200)
		},
		func(ctx *CoreCtx) {
			ctx.LoadI32(0x300)
			// finishes immediately
		},
		func(ctx *CoreCtx) {
			for i := 0; i < 30; i++ {
				ctx.LoadI32(memdata.Addr(0x1000 + i*64))
			}
			ctx.Barrier()
			ctx.LoadI32(0x400)
		},
	}
	Run(h, kernels) // must not deadlock
}

func TestGangWorkAccounting(t *testing.T) {
	rec := trace.NewRecorder(1)
	h, _ := testHierarchy(1, rec)
	Run(h, []func(*CoreCtx){func(ctx *CoreCtx) {
		ctx.Work(25)
		ctx.LoadI32(0x100)
	}})
	if rec.Cores[0][0].Gap != 25 {
		t.Errorf("gap = %d", rec.Cores[0][0].Gap)
	}
}
