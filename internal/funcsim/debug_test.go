package funcsim

import (
	"fmt"
	"math/rand"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/coherence"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
)

// checkGlobalCoherence verifies the cross-cache invariants:
//  1. every valid private line has its sharer bit set in the directory;
//  2. at most one core holds a dirty copy of a block;
//  3. a dirty private copy implies directory state M owned by that core;
//  4. L1 ⊆ L2 per core;
//  5. every private block is present in the LLC (inclusion).
func checkGlobalCoherence(h *Hierarchy) error {
	dirtyOwner := map[memdata.Addr]int{}
	for c := 0; c < h.cfg.Cores; c++ {
		var err error
		h.l1[c].ForEachValid(func(l *cache.Line) {
			if err != nil {
				return
			}
			if h.l2[c].Probe(l.Addr) == nil {
				err = fmt.Errorf("core %d: L1 block %v not in L2", c, l.Addr)
			}
		})
		if err != nil {
			return err
		}
		check := func(level string, l *cache.Line) {
			if err != nil {
				return
			}
			dl := h.dir.Lookup(l.Addr)
			if dl == nil {
				err = fmt.Errorf("core %d: %s block %v has no directory entry", c, level, l.Addr)
				return
			}
			if !dl.Sharers.Has(c) {
				err = fmt.Errorf("core %d: %s block %v sharer bit missing", c, level, l.Addr)
				return
			}
			if l.Dirty {
				if prev, dup := dirtyOwner[l.Addr]; dup && prev != c {
					err = fmt.Errorf("block %v dirty in cores %d and %d", l.Addr, prev, c)
					return
				}
				dirtyOwner[l.Addr] = c
				if dl.State != coherence.Modified || int(dl.Owner) != c {
					err = fmt.Errorf("core %d: dirty %s block %v but dir state %v owner %d",
						c, level, l.Addr, dl.State, dl.Owner)
					return
				}
			}
			if !h.llc.Contains(l.Addr) {
				err = fmt.Errorf("core %d: %s block %v not in LLC (inclusion)", c, level, l.Addr)
			}
		}
		h.l1[c].ForEachValid(func(l *cache.Line) { check("L1", l) })
		h.l2[c].ForEachValid(func(l *cache.Line) { check("L2", l) })
		if err != nil {
			return err
		}
	}
	return nil
}

// TestCoherenceInvariantTorture reruns the value-consistency workload with
// full invariant checking to localize protocol bugs.
func TestCoherenceInvariantTorture(t *testing.T) {
	const (
		cores  = 4
		blocks = 96
		ops    = 30000
	)
	st := memdata.NewStore()
	h := New(Config{
		Cores: cores,
		L1:    cache.Config{Name: "L1", SizeBytes: 512, Ways: 2},
		L2:    cache.Config{Name: "L2", SizeBytes: 1 << 10, Ways: 2},
	}, core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: 4 << 10, Ways: 4}, st, nil),
		st, (*approx.Annotations)(nil), nil)

	type opRec struct {
		op, core int
		write    bool
		addr     memdata.Addr
	}
	var history []opRec

	rng := rand.New(rand.NewSource(77))
	expected := make([]int32, blocks)
	written := make([]bool, blocks)
	for op := 0; op < ops; op++ {
		c := rng.Intn(cores)
		i := rng.Intn(blocks)
		addr := memdata.Addr(0x4000 + i*memdata.BlockSize)
		if rng.Intn(3) == 0 {
			v := int32(rng.Intn(1 << 20))
			history = append(history, opRec{op, c, true, addr})
			h.StoreI32(c, addr, v)
			expected[i] = v
			written[i] = true
		} else if written[i] {
			history = append(history, opRec{op, c, false, addr})
			if got := h.LoadI32(c, addr); got != expected[i] {
				t.Fatalf("op %d: core %d read %d from block %d, want %d", op, c, got, i, expected[i])
			}
		}
		if err := checkGlobalCoherence(h); err != nil {
			// Dump the recent history of the failing block.
			for _, r := range history {
				if r.op > op-400 {
					t.Logf("op %d core %d write=%v addr=%v", r.op, r.core, r.write, r.addr)
				}
			}
			t.Fatalf("op %d: %v", op, err)
		}
	}
}
