package funcsim

import (
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

func testConfig(cores int) Config {
	return Config{
		Cores: cores,
		L1:    cache.Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2},
		L2:    cache.Config{Name: "L2", SizeBytes: 4 << 10, Ways: 4},
	}
}

func testHierarchy(cores int, rec *trace.Recorder) (*Hierarchy, *memdata.Store) {
	st := memdata.NewStore()
	llc := core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 4}, st, nil)
	h := New(testConfig(cores), llc, st, nil, rec)
	return h, st
}

func TestLoadStoreRoundTrip(t *testing.T) {
	h, _ := testHierarchy(1, nil)
	h.StoreF32(0, 0x1000, 3.25)
	if got := h.LoadF32(0, 0x1000); got != 3.25 {
		t.Errorf("f32 = %v", got)
	}
	h.StoreF64(0, 0x2000, -1.5)
	if got := h.LoadF64(0, 0x2000); got != -1.5 {
		t.Errorf("f64 = %v", got)
	}
	h.StoreI32(0, 0x3000, -44)
	if got := h.LoadI32(0, 0x3000); got != -44 {
		t.Errorf("i32 = %v", got)
	}
	h.StoreU8(0, 0x3004, 201)
	if got := h.LoadU8(0, 0x3004); got != 201 {
		t.Errorf("u8 = %v", got)
	}
}

func TestHitLevels(t *testing.T) {
	h, st := testHierarchy(1, nil)
	st.WriteI32(0x5000, 1)
	h.LoadI32(0, 0x5000)
	if h.Last.Level != 4 {
		t.Errorf("cold load level = %d, want 4 (memory)", h.Last.Level)
	}
	h.LoadI32(0, 0x5000)
	if h.Last.Level != 1 {
		t.Errorf("second load level = %d, want 1 (L1)", h.Last.Level)
	}
	// Evict from L1 (1 KB, 2-way → 8 sets; stride 512 B): two more blocks
	// in the same L1 set.
	h.LoadI32(0, 0x5000+512)
	h.LoadI32(0, 0x5000+1024)
	h.LoadI32(0, 0x5000)
	if h.Last.Level != 2 {
		t.Errorf("after L1 eviction level = %d, want 2 (L2)", h.Last.Level)
	}
}

func TestDirtyDataSurvivesEvictionChain(t *testing.T) {
	h, st := testHierarchy(1, nil)
	h.StoreI32(0, 0x100, 77)
	// Flood enough blocks to push 0x100 out of L1, L2 and the LLC.
	for i := 1; i < 600; i++ {
		h.LoadI32(0, memdata.Addr(i*64))
	}
	if got := st.ReadI32(0x100); got != 77 {
		// It may still be in a cache; force it all the way down.
		h.Flush()
		if got := st.ReadI32(0x100); got != 77 {
			t.Fatalf("dirty data lost: memory = %d", got)
		}
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	h, st := testHierarchy(2, nil)
	for i := 0; i < 50; i++ {
		h.StoreI32(i%2, memdata.Addr(0x1000+i*64), int32(i))
	}
	h.Flush()
	for i := 0; i < 50; i++ {
		if got := st.ReadI32(memdata.Addr(0x1000 + i*64)); got != int32(i) {
			t.Fatalf("block %d lost: %d", i, got)
		}
	}
	if h.LLC().TagEntries() != 0 {
		t.Errorf("LLC not empty after flush: %d", h.LLC().TagEntries())
	}
}

func TestCoherenceWriteInvalidatesSharers(t *testing.T) {
	h, _ := testHierarchy(2, nil)
	h.StoreI32(0, 0x100, 1)
	if got := h.LoadI32(1, 0x100); got != 1 {
		t.Fatalf("core 1 read %d, want 1 (remote M flushed)", got)
	}
	h.StoreI32(1, 0x100, 2)
	if got := h.LoadI32(0, 0x100); got != 2 {
		t.Fatalf("core 0 read %d, want 2", got)
	}
	if h.Stats.RemoteWritebacks == 0 {
		t.Error("no remote writebacks counted")
	}
}

func TestCoherencePingPong(t *testing.T) {
	h, _ := testHierarchy(4, nil)
	for i := 0; i < 40; i++ {
		c := i % 4
		v := h.LoadI32(c, 0x200)
		if v != int32(i) {
			t.Fatalf("iteration %d: read %d", i, v)
		}
		h.StoreI32(c, 0x200, v+1)
	}
}

func TestBackInvalidationOnLLCEviction(t *testing.T) {
	h, _ := testHierarchy(1, nil)
	// LLC: 16 KB 4-way → 64 sets; set stride 64*64 = 4 KB.
	h.StoreI32(0, 0x0, 5)
	for i := 1; i <= 4; i++ {
		h.LoadI32(0, memdata.Addr(i*4096))
	}
	if h.Stats.BackInvals == 0 {
		t.Error("LLC eviction did not back-invalidate")
	}
	// The dirty block's data must have reached memory via the chain.
	if got := h.LoadI32(0, 0x0); got != 5 {
		t.Fatalf("after back-invalidation, read %d, want 5", got)
	}
}

func TestTraceRecording(t *testing.T) {
	rec := trace.NewRecorder(2)
	h, _ := testHierarchy(2, rec)
	ann := approx.MustAnnotations(approx.Region{
		Name: "ax", Start: 0x8000, End: 0x9000, Type: memdata.F32, Min: 0, Max: 1,
	})
	h.ann = ann
	rec.Work(0, 10)
	h.LoadF32(0, 0x8000)
	h.StoreF32(1, 0x100, 2.5)
	if len(rec.Cores[0]) != 1 || len(rec.Cores[1]) != 1 {
		t.Fatalf("records: %d/%d", len(rec.Cores[0]), len(rec.Cores[1]))
	}
	r0 := rec.Cores[0][0]
	if r0.Gap != 10 || r0.Write || !r0.Approx || r0.Addr != 0x8000 {
		t.Errorf("record 0 = %+v", r0)
	}
	r1 := rec.Cores[1][0]
	if !r1.Write || r1.Approx || r1.Size != 4 {
		t.Errorf("record 1 = %+v", r1)
	}
	if rec.Instructions() != 12 {
		t.Errorf("instructions = %d, want 12", rec.Instructions())
	}
}

func TestTotalsAccumulate(t *testing.T) {
	h, _ := testHierarchy(1, nil)
	for i := 0; i < 10; i++ {
		h.LoadI32(0, memdata.Addr(i*64))
	}
	if h.Totals.MemReads != 10 {
		t.Errorf("totals mem reads = %d", h.Totals.MemReads)
	}
	if h.Totals.PTagReads != 10 {
		t.Errorf("totals tag reads = %d", h.Totals.PTagReads)
	}
}

// TestApproximateValuesFlow: with a split LLC, an approximate block that was
// linked to a similar block's data entry returns the representative values
// after its private copies are evicted.
func TestApproximateValuesFlow(t *testing.T) {
	st := memdata.NewStore()
	regionStart := memdata.Addr(0x0010_0000)
	ann := approx.MustAnnotations(approx.Region{
		Name: "ax", Start: regionStart, End: regionStart + 1<<16,
		Type: memdata.F32, Min: 0, Max: 100,
	})
	split := core.MustNewSplit(
		cache.Config{Name: "precise", SizeBytes: 8 << 10, Ways: 4},
		core.Config{
			Name:       "dopp",
			TagEntries: 256, TagWays: 4,
			DataEntries: 64, DataWays: 4,
			MapSpec: approx.MapSpec{M: 14},
		},
		st, ann)
	h := New(testConfig(1), split, st, ann, nil)

	a0, a1 := regionStart, regionStart+64
	for i := 0; i < 16; i++ {
		st.Block(a0).SetElem(memdata.F32, i, 42)
		st.Block(a1).SetElem(memdata.F32, i, 42.001)
	}
	h.LoadF32(0, a0)
	h.LoadF32(0, a1) // links to a0's entry; L1 still has precise 42.001
	if got := h.LoadF32(0, a1); got != 42.001 {
		t.Fatalf("L1-resident value = %v, want the precise 42.001", got)
	}
	// Evict a1 from the private caches (clean), then re-read: the LLC hit
	// must now return the representative 42.
	for i := 1; i < 200; i++ {
		h.LoadI32(0, memdata.Addr(0x4000+i*64))
	}
	if split.Doppel.Contains(a1) {
		if got := h.LoadF32(0, a1); got != 42 {
			t.Fatalf("approximated value = %v, want representative 42", got)
		}
	} else {
		t.Skip("a1's tag was evicted by the flood; nothing to observe")
	}
}
