package funcsim

import (
	"context"

	"doppelganger/internal/trace"
)

// replayPollEvery bounds how many replayed accesses run between context
// polls; cancellation latency stays small without a per-access atomic load.
const replayPollEvery = 4096

// ReplayStreamContext drives the hierarchy through every recorded access in
// the recorder's global order, reproducing the live run's exact functional
// state evolution (including the shared LLC's observed interleaving) without
// executing kernels or gang-scheduling goroutines. The hierarchy must have
// been built over a clone of the recording run's initial memory image and
// with no recorder of its own.
//
// The steady-state loop allocates nothing: cursor construction validates the
// order index once, and each step is a few slice operations plus the
// hierarchy access itself.
func ReplayStreamContext(ctx context.Context, h *Hierarchy, rec *trace.Recorder) error {
	cur, err := rec.Cursor()
	if err != nil {
		return err
	}
	done := ctx.Done()
	for i := 0; ; i++ {
		if done != nil && i%replayPollEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		c, r := cur.Next()
		if c < 0 {
			return nil
		}
		h.Replay(c, *r)
	}
}
