package funcsim

import (
	"context"
	"fmt"

	"doppelganger/internal/trace"
)

// ReplayBatchContext drives K independent hierarchies through one recorded
// access stream in a single pass: the global-order cursor is walked once and
// every record is applied to each hierarchy in turn. This is the
// decode-once/simulate-many inner loop — the front-end work (decode, order
// validation, cursor stepping) is paid once instead of K times, while each
// hierarchy keeps fully private state (its own store clone, LLC, map table,
// directory, fault injector and quality guard), so lane i's functional
// evolution is bit-identical to replaying the stream through it alone.
//
// Every hierarchy must have been built over its own clone of the recording
// run's initial memory image, with no recorder attached. The steady-state
// loop allocates nothing.
func ReplayBatchContext(ctx context.Context, hs []*Hierarchy, rec *trace.Recorder) error {
	cur, err := rec.Cursor()
	if err != nil {
		return err
	}
	return ReplayBatchCursor(ctx, hs, cur)
}

// ReplayBatchCursor is ReplayBatchContext over an already-validated cursor
// (which it consumes from its current position). Callers that fan several
// batches off one decoded capture reset and reuse the cursor between calls.
func ReplayBatchCursor(ctx context.Context, hs []*Hierarchy, cur *trace.Cursor) error {
	for i, h := range hs {
		if h == nil {
			return fmt.Errorf("funcsim: batch lane %d is nil", i)
		}
	}
	done := ctx.Done()
	for i := 0; ; i++ {
		if done != nil && i%replayPollEvery == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		c, r := cur.Next()
		if c < 0 {
			return nil
		}
		rec := *r
		for _, h := range hs {
			h.Replay(c, rec)
		}
	}
}
