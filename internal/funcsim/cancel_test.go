package funcsim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"doppelganger/internal/memdata"
)

// waitForGoroutines polls until the goroutine count drops back to at most
// want (cancellation unwinds kernels asynchronously after Run returns the
// error, but only by a few scheduler ticks).
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: %d > %d\n%s",
		runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
}

// TestGangContextCancelUnblocksKernels proves cooperative cancellation: a
// cancel arriving mid-run makes RunGroupedContext return ctx.Err() promptly
// and unwinds every kernel goroutine, including ones parked at a barrier
// that will never be released.
func TestGangContextCancelUnblocksKernels(t *testing.T) {
	before := runtime.NumGoroutine()
	h, _ := testHierarchy(3, nil)
	ctx, cancel := context.WithCancel(context.Background())
	kernels := []func(*CoreCtx){
		func(c *CoreCtx) { // spins until cancelled
			for i := 0; ; i++ {
				c.LoadI32(memdata.Addr(0x1000 + (i%64)*64))
			}
		},
		func(c *CoreCtx) { // parks at a barrier core 0 never reaches
			c.LoadI32(0x100)
			c.Barrier()
		},
		func(c *CoreCtx) {
			c.LoadI32(0x200)
			c.Barrier()
		},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- RunGroupedContext(ctx, h, kernels, nil) }()
	time.Sleep(20 * time.Millisecond) // let the run get going
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not stop the run")
	}
	waitForGoroutines(t, before)
}

// TestGangContextPreCancelled verifies a run under an already-cancelled
// context returns immediately without leaking the kernel goroutines it
// spawned.
func TestGangContextPreCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	h, _ := testHierarchy(2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunGroupedContext(ctx, h, []func(*CoreCtx){
		func(c *CoreCtx) {
			for i := 0; ; i++ {
				c.LoadI32(memdata.Addr(0x1000 + (i%64)*64))
			}
		},
		func(c *CoreCtx) { c.Barrier() },
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestGangContextBackgroundMatchesRun verifies the context path with a
// non-cancellable context is behaviourally identical to Run: the per-core
// cancel channel stays nil and results match exactly.
func TestGangContextBackgroundMatchesRun(t *testing.T) {
	run := func(useCtx bool) int32 {
		h, st := testHierarchy(2, nil)
		kernels := []func(*CoreCtx){
			func(c *CoreCtx) {
				for i := 0; i < 50; i++ {
					c.StoreI32(0x100, c.LoadI32(0x100)+1)
				}
			},
			func(c *CoreCtx) {
				for i := 0; i < 50; i++ {
					c.StoreI32(0x100, c.LoadI32(0x100)*2%1000)
				}
			},
		}
		if useCtx {
			if err := RunGroupedContext(context.Background(), h, kernels, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			Run(h, kernels)
		}
		h.Flush()
		return st.ReadI32(0x100)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("context path diverged: %d vs %d", a, b)
	}
}

// TestGangKernelPanicBecomesError verifies a crashing kernel fails the run,
// not the process: RunGroupedContext returns an error naming the core and
// carrying the panic stack, the other kernels complete normally (including
// their barriers — the crashed core counts as finished), and no goroutines
// leak.
func TestGangKernelPanicBecomesError(t *testing.T) {
	before := runtime.NumGoroutine()
	h, _ := testHierarchy(3, nil)
	survivors := make([]bool, 3)
	err := RunGroupedContext(context.Background(), h, []func(*CoreCtx){
		func(c *CoreCtx) {
			c.LoadI32(0x100)
			panic("synthetic kernel crash")
		},
		func(c *CoreCtx) {
			for i := 0; i < 20; i++ {
				c.LoadI32(memdata.Addr(0x1000 + i*64))
			}
			c.Barrier()
			survivors[1] = true
		},
		func(c *CoreCtx) {
			c.LoadI32(0x200)
			c.Barrier()
			survivors[2] = true
		},
	}, nil)
	if err == nil {
		t.Fatal("kernel panic was swallowed")
	}
	for _, want := range []string{"kernel 0", "synthetic kernel crash", "cancel_test.go"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if !survivors[1] || !survivors[2] {
		t.Errorf("surviving kernels did not finish: %v", survivors)
	}
	waitForGoroutines(t, before)
}

// TestGangPanicReRaisedWithoutContext verifies the non-context entry point
// re-raises a captured kernel panic on the caller's goroutine, where a
// recover (the sweep memo's shield) can convert it to a task error.
func TestGangPanicReRaisedWithoutContext(t *testing.T) {
	h, _ := testHierarchy(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kernel panic was not re-raised to the caller")
		}
	}()
	Run(h, []func(*CoreCtx){func(c *CoreCtx) {
		c.LoadI32(0x100)
		panic("boom")
	}})
}
