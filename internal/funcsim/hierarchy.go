// Package funcsim is the functional (timing-free) multicore cache
// hierarchy. It plays the role of the paper's Pin-based tool (§4): workload
// kernels execute for real against private L1/L2 caches and a pluggable LLC
// organization, so approximate loads observe the values the Doppelgänger
// cache actually returns and application output error can be measured on
// the final output.
//
// The hierarchy also records per-core traces for the timing simulator and
// takes periodic LLC content snapshots for the storage-savings analyses.
package funcsim

import (
	"math"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/coherence"
	"doppelganger/internal/core"
	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
	"doppelganger/internal/quality"
	"doppelganger/internal/trace"
)

// Config describes the private levels of the hierarchy; the shared LLC is
// passed in as a constructed organization.
type Config struct {
	Cores int
	L1    cache.Config // per core
	L2    cache.Config // per core
}

// Stats counts functional hierarchy events.
type Stats struct {
	Loads, Stores        uint64
	L1Hits, L1Misses     uint64
	L2Hits, L2Misses     uint64
	LLCReads, LLCHits    uint64
	BackInvals           uint64
	DirtyBackInvalWrites uint64
	RemoteWritebacks     uint64 // M copies flushed to LLC for another core
}

// hierMetrics are the hierarchy's registry instruments, resolved once by
// AttachMetrics; the zero value is the disabled no-op path. Each counter
// mirrors one legacy Stats/Totals field at the same increment site, so the
// differential tests can prove the two accountings never drift.
type hierMetrics struct {
	loads, stores        *metrics.Counter
	l1Hits, l1Misses     *metrics.Counter
	l2Hits, l2Misses     *metrics.Counter
	llcReads, llcHits    *metrics.Counter
	dirtyBackinvalWrites *metrics.Counter
	remoteWritebacks     *metrics.Counter
	memReads, memWrites  *metrics.Counter
	mapGens              *metrics.Counter
}

// Hierarchy is the functional model: per-core L1/L2 over one shared LLC,
// with an MSI directory maintained at the LLC level (§3.6).
type Hierarchy struct {
	cfg   Config
	l1    []*cache.Cache
	l2    []*cache.Cache
	llc   core.LLC
	dir   *coherence.Directory
	store *memdata.Store
	ann   *approx.Annotations
	rec   *trace.Recorder
	m     hierMetrics

	// MSI tracks directory state transitions and back-invalidations; always
	// on (plain counters), mirrored into the registry once attached.
	MSI *coherence.Tracker

	// SnapshotEvery triggers SnapshotFn after that many LLC-level fills
	// (0 disables). Analyses sample resident LLC contents this way.
	SnapshotEvery  int
	SnapshotFn     func(llc core.LLC)
	fillsSinceSnap int

	Stats Stats

	// Totals accumulates the structure-level effects of every LLC operation
	// performed during the run; the energy model consumes it.
	Totals core.Effects

	// Last describes the most recent access for the timing model.
	Last Outcome

	// wbScratch stages a dirty L2 victim's payload for the LLC writeback.
	// Passing a stack copy's address through the core.LLC interface makes
	// escape analysis heap-allocate one Block per eviction; the reusable
	// field keeps the replay and live hot loops allocation-free. The LLC
	// never retains the pointer (the Effects contract), so reuse is safe.
	wbScratch memdata.Block
}

// Outcome classifies one access for the cycle-level timing model: which
// level serviced it and how much LLC-side work (evictions, memory traffic)
// it triggered.
type Outcome struct {
	Level        int // 1 = L1 hit, 2 = L2 hit, 3 = LLC hit, 4 = memory
	LLCAccesses  int // LLC operations performed (read + any writebacks)
	LLCEvictions int // LLC tags invalidated (back-invalidations)
	MemReads     int
	MemWrites    int
}

// New builds a hierarchy over the given LLC organization and backing store.
// rec may be nil to skip trace recording.
func New(cfg Config, llc core.LLC, store *memdata.Store, ann *approx.Annotations, rec *trace.Recorder) *Hierarchy {
	h := &Hierarchy{
		cfg:   cfg,
		l1:    make([]*cache.Cache, cfg.Cores),
		l2:    make([]*cache.Cache, cfg.Cores),
		llc:   llc,
		dir:   coherence.NewDirectory(),
		store: store,
		ann:   ann,
		rec:   rec,
		MSI:   coherence.NewTracker(),
	}
	for c := 0; c < cfg.Cores; c++ {
		h.l1[c] = cache.New(cfg.L1)
		h.l2[c] = cache.New(cfg.L2)
	}
	return h
}

// AttachMetrics threads the whole hierarchy through reg: its own counters,
// every private cache array, the MSI tracker, and (when the organization
// supports it) the LLC. A nil registry is a no-op, leaving the zero-cost
// disabled path.
func (h *Hierarchy) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	h.m = hierMetrics{
		loads:                reg.Counter("funcsim.loads"),
		stores:               reg.Counter("funcsim.stores"),
		l1Hits:               reg.Counter("funcsim.l1.hits"),
		l1Misses:             reg.Counter("funcsim.l1.misses"),
		l2Hits:               reg.Counter("funcsim.l2.hits"),
		l2Misses:             reg.Counter("funcsim.l2.misses"),
		llcReads:             reg.Counter("funcsim.llc.reads"),
		llcHits:              reg.Counter("funcsim.llc.hits"),
		dirtyBackinvalWrites: reg.Counter("funcsim.dirty_backinval_writes"),
		remoteWritebacks:     reg.Counter("funcsim.remote_writebacks"),
		memReads:             reg.Counter("funcsim.llc.mem_reads"),
		memWrites:            reg.Counter("funcsim.llc.mem_writes"),
		mapGens:              reg.Counter("funcsim.llc.map_gens"),
	}
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1[c].AttachMetrics(reg)
		h.l2[c].AttachMetrics(reg)
	}
	h.MSI.Attach(reg)
	if a, ok := h.llc.(interface{ AttachMetrics(*metrics.Registry) }); ok {
		a.AttachMetrics(reg)
	}
}

// AttachFaults wires a fault injector into the shared LLC organization.
// Private L1/L2 arrays are not fault targets — the paper's vulnerability
// argument is about the large LLC arrays and DRAM — so only the LLC (and,
// in the timing simulator, DRAM) draws. A nil injector is a no-op.
func (h *Hierarchy) AttachFaults(inj *faults.Injector) {
	if inj == nil {
		return
	}
	if a, ok := h.llc.(interface{ AttachFaults(*faults.Injector) }); ok {
		a.AttachFaults(inj)
	}
}

// AttachQuality wires the online quality guard into the shared LLC
// organization. Only the Doppelgänger variants consult it (the baseline LLC
// never approximates); a nil controller is a no-op.
func (h *Hierarchy) AttachQuality(qc *quality.Controller) {
	if qc == nil {
		return
	}
	if a, ok := h.llc.(interface{ AttachQuality(*quality.Controller) }); ok {
		a.AttachQuality(qc)
	}
}

// setDirState moves a directory entry to a new state, recording the MSI
// transition.
func (h *Hierarchy) setDirState(dl *coherence.Line, to coherence.State) {
	h.MSI.Transition(dl.State, to)
	dl.State = to
}

// LLC returns the LLC organization under simulation.
func (h *Hierarchy) LLC() core.LLC { return h.llc }

// Recorder returns the trace recorder (nil if disabled).
func (h *Hierarchy) Recorder() *trace.Recorder { return h.rec }

// dirLine returns (allocating) the directory entry for a block.
func (h *Hierarchy) dirLine(ba memdata.Addr) *coherence.Line {
	return h.dir.Entry(ba)
}

// access performs one memory operation for a core and returns a pointer to
// the L1-resident block so the caller can read or mutate the addressed
// bytes. This is the single entry point serialized by the gang scheduler.
func (h *Hierarchy) access(c int, addr memdata.Addr, write bool) *memdata.Block {
	if write {
		h.Stats.Stores++
		h.m.stores.Inc()
	} else {
		h.Stats.Loads++
		h.m.loads.Inc()
	}
	h.Last = Outcome{}
	ba := addr.BlockAddr()

	// L1.
	if l := h.l1[c].Lookup(ba); l != nil {
		h.Stats.L1Hits++
		h.m.l1Hits.Inc()
		h.Last.Level = 1
		if !write || l.Coh == coherence.Modified {
			if write {
				l.Dirty = true
			}
			return &l.Data
		}
		// Write upgrade (S -> M): invalidate other sharers via the directory.
		h.upgrade(c, ba)
		l.Coh = coherence.Modified
		l.Dirty = true
		if l2 := h.l2[c].Probe(ba); l2 != nil {
			l2.Coh = coherence.Modified
		}
		return &l.Data
	}
	h.Stats.L1Misses++
	h.m.l1Misses.Inc()

	// L2.
	if l2 := h.l2[c].Lookup(ba); l2 != nil {
		h.Stats.L2Hits++
		h.m.l2Hits.Inc()
		h.Last.Level = 2
		if write && l2.Coh != coherence.Modified {
			h.upgrade(c, ba)
			l2.Coh = coherence.Modified
		}
		st := l2.Coh
		if write {
			st = coherence.Modified
		}
		l1 := h.fillL1(c, ba, &l2.Data, st)
		if write {
			l1.Dirty = true
		}
		return &l1.Data
	}
	h.Stats.L2Misses++
	h.m.l2Misses.Inc()

	// LLC. First resolve coherence: a remote Modified copy is written back
	// to the LLC (using the §3.4 writeback procedure) before the data is
	// served.
	dl := h.dirLine(ba)
	if dl.State == coherence.Modified && int(dl.Owner) != c {
		h.flushRemote(int(dl.Owner), ba)
	}
	if write {
		// Invalidate all other sharers before granting M.
		h.invalidateSharers(ba, c)
	}

	h.Stats.LLCReads++
	h.m.llcReads.Inc()
	data, eff := h.llc.Read(ba)
	if eff.Hit {
		h.Stats.LLCHits++
		h.m.llcHits.Inc()
		h.Last.Level = 3
	} else {
		h.Last.Level = 4
	}
	h.absorb(eff)

	// The LLC-level eviction processing above may, in pathological cases,
	// have invalidated ba itself (a Doppelgänger data eviction triggered by
	// an unrelated writeback). The data we hold is still valid to consume.
	st := coherence.Shared
	if write {
		st = coherence.Modified
	}
	dl = h.dirLine(ba)
	dl.Sharers = dl.Sharers.Add(c)
	h.setDirState(dl, st)
	if write {
		dl.Owner = int8(c)
	}

	l2line := h.fillL2(c, ba, &data, st)
	l1 := h.fillL1(c, ba, &l2line.Data, st)
	if write {
		l1.Dirty = true
	}
	h.maybeSnapshot()
	return &l1.Data
}

// upgrade grants core c exclusive (M) permission for ba by invalidating
// every other private copy; dirty remote copies are first flushed to the
// LLC.
func (h *Hierarchy) upgrade(c int, ba memdata.Addr) {
	dl := h.dirLine(ba)
	if dl.State == coherence.Modified && int(dl.Owner) != c {
		h.flushRemote(int(dl.Owner), ba)
	}
	h.invalidateSharers(ba, c)
	h.setDirState(dl, coherence.Modified)
	dl.Owner = int8(c)
	dl.Sharers = dl.Sharers.Add(c)
}

// invalidateSharers drops every private copy of ba except core keep's.
func (h *Hierarchy) invalidateSharers(ba memdata.Addr, keep int) {
	dl := h.dirLine(ba)
	dl.Sharers.ForEach(h.cfg.Cores, func(other int) {
		if other == keep {
			return
		}
		h.dropPrivate(other, ba, true)
		dl.Sharers = dl.Sharers.Remove(other)
	})
}

// flushRemote writes core owner's modified copy of ba back to the LLC
// (remote copy downgraded to Shared), per §3.6.
func (h *Hierarchy) flushRemote(owner int, ba memdata.Addr) {
	// Downgrade BOTH private levels unconditionally: a clean copy can still
	// hold stale M permission (e.g. an L1 line refilled from a dirty L2 in
	// M state), and leaving it would let the owner write later without a
	// directory upgrade.
	var data *memdata.Block
	l1 := h.l1[owner].Probe(ba)
	l2 := h.l2[owner].Probe(ba)
	if l1 != nil && l1.Dirty {
		data = &l1.Data
		if l2 != nil {
			l2.Data = l1.Data
		}
	} else if l2 != nil && l2.Dirty {
		data = &l2.Data
	}
	if l1 != nil {
		l1.Dirty = false
		l1.Coh = coherence.Shared
	}
	if l2 != nil {
		l2.Dirty = false
		l2.Coh = coherence.Shared
	}
	dl := h.dirLine(ba)
	h.setDirState(dl, coherence.Shared)
	dl.Owner = -1
	if data == nil {
		return // copy already clean or evicted; nothing to flush
	}
	h.Stats.RemoteWritebacks++
	h.m.remoteWritebacks.Inc()
	eff := h.llc.WriteBack(ba, data)
	h.absorb(eff)
}

// dropPrivate invalidates ba from core c's L1 and L2. If flushDirty is set
// and a dirty copy exists while the LLC still holds a tag, the data is
// written back to the LLC; if the LLC tag is already gone (back-
// invalidation) dirty data goes straight to memory.
func (h *Hierarchy) dropPrivate(c int, ba memdata.Addr, flushDirty bool) {
	var dirtyData *memdata.Block
	if old, ok := h.l1[c].Invalidate(ba); ok && old.Dirty {
		d := old.Data
		dirtyData = &d
	}
	if old, ok := h.l2[c].Invalidate(ba); ok && old.Dirty && dirtyData == nil {
		d := old.Data
		dirtyData = &d
	}
	if dirtyData == nil || !flushDirty {
		return
	}
	if h.llc.Contains(ba) {
		eff := h.llc.WriteBack(ba, dirtyData)
		h.absorb(eff)
	} else {
		h.store.WriteBlock(ba, dirtyData)
		h.Stats.DirtyBackInvalWrites++
		h.m.dirtyBackinvalWrites.Inc()
	}
}

// absorb records an LLC operation's effects into the run totals and the
// per-access outcome, then propagates its evictions.
func (h *Hierarchy) absorb(eff *core.Effects) {
	h.Totals.Add(eff)
	h.Last.LLCAccesses++
	h.Last.LLCEvictions += len(eff.Evicted)
	h.Last.MemReads += eff.MemReads
	h.Last.MemWrites += eff.MemWrites
	h.m.memReads.Add(uint64(eff.MemReads))
	h.m.memWrites.Add(uint64(eff.MemWrites))
	h.m.mapGens.Add(uint64(eff.MapGens))
	h.applyEffects(eff)
}

// applyEffects propagates LLC-level evictions: the LLC is inclusive, so
// every evicted tag back-invalidates the private caches; dirty private
// copies go straight to memory since the LLC tag is gone (§3.5).
func (h *Hierarchy) applyEffects(eff *core.Effects) {
	for _, ev := range eff.Evicted {
		h.Stats.BackInvals++
		h.MSI.BackInvalidation()
		for c := 0; c < h.cfg.Cores; c++ {
			var dirtyData *memdata.Block
			if old, ok := h.l1[c].Invalidate(ev.Addr); ok && old.Dirty {
				d := old.Data
				dirtyData = &d
			}
			if old, ok := h.l2[c].Invalidate(ev.Addr); ok && old.Dirty && dirtyData == nil {
				d := old.Data
				dirtyData = &d
			}
			if dirtyData != nil {
				h.store.WriteBlock(ev.Addr, dirtyData)
				h.Stats.DirtyBackInvalWrites++
				h.m.dirtyBackinvalWrites.Inc()
				h.Totals.MemWrites++
				h.Last.MemWrites++
				h.m.memWrites.Inc()
			}
		}
		if dl, ok := h.dir.Remove(ev.Addr); ok {
			h.MSI.Transition(dl.State, coherence.Invalid)
		}
	}
}

// fillL1 installs data into core c's L1, handling the dirty victim (which
// is guaranteed to also be in L2 by inclusion).
func (h *Hierarchy) fillL1(c int, ba memdata.Addr, data *memdata.Block, st coherence.State) *cache.Line {
	d := *data // copy: victim handling below may clobber the source line
	data = &d
	v := h.l1[c].Victim(ba)
	if v.Valid && v.Dirty {
		if l2 := h.l2[c].Probe(v.Addr); l2 != nil {
			l2.Data = v.Data
			l2.Dirty = true
		} else {
			// Inclusion corner: L2 already lost it; push to LLC.
			h.writebackToLLC(v.Addr, &v.Data)
		}
	}
	h.l1[c].Install(v, ba, data)
	l := h.l1[c].Probe(ba)
	l.Coh = st
	return l
}

// fillL2 installs data into core c's L2, evicting (and writing back) the
// victim and enforcing L1 ⊆ L2.
func (h *Hierarchy) fillL2(c int, ba memdata.Addr, data *memdata.Block, st coherence.State) *cache.Line {
	v := h.l2[c].Victim(ba)
	if v.Valid {
		victimAddr := v.Addr
		h.wbScratch = v.Data
		victimDirty := v.Dirty
		// Enforce inclusion: drop the L1 copy, merging its dirty data.
		if l1old, ok := h.l1[c].Invalidate(victimAddr); ok && l1old.Dirty {
			h.wbScratch = l1old.Data
			victimDirty = true
		}
		if dl := h.dir.Lookup(victimAddr); dl != nil {
			dl.Sharers = dl.Sharers.Remove(c)
			if dl.State == coherence.Modified && int(dl.Owner) == c {
				h.setDirState(dl, coherence.Shared)
				dl.Owner = -1
			}
		}
		if victimDirty {
			h.writebackToLLC(victimAddr, &h.wbScratch)
		}
	}
	h.l2[c].Install(v, ba, data)
	l := h.l2[c].Probe(ba)
	l.Coh = st
	return l
}

func (h *Hierarchy) writebackToLLC(ba memdata.Addr, data *memdata.Block) {
	eff := h.llc.WriteBack(ba, data)
	h.absorb(eff)
}

func (h *Hierarchy) maybeSnapshot() {
	if h.SnapshotEvery <= 0 || h.SnapshotFn == nil {
		return
	}
	h.fillsSinceSnap++
	if h.fillsSinceSnap >= h.SnapshotEvery {
		h.fillsSinceSnap = 0
		h.SnapshotFn(h.llc)
	}
}

// Flush drains all private caches into the LLC (used at workload end so
// final outputs are visible in the backing store) and then flushes LLC
// dirty state to memory via eviction.
func (h *Hierarchy) Flush() {
	for c := 0; c < h.cfg.Cores; c++ {
		for _, l := range h.l1[c].Flush() {
			if l2 := h.l2[c].Probe(l.Addr); l2 != nil {
				l2.Data = l.Data
				l2.Dirty = true
			} else {
				h.writebackToLLC(l.Addr, &l.Data)
			}
		}
		for _, l := range h.l2[c].Flush() {
			h.writebackToLLC(l.Addr, &l.Data)
		}
	}
	// Evict every remaining LLC block so dirty data reaches memory.
	for _, sb := range h.llc.Snapshot() {
		eff := h.llc.EvictFor(sb.Addr)
		h.absorb(eff)
	}
	h.dir.Reset()
}

// --- inspection views (used by the coherence property tests) ---

// Cores returns the configured core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

// DirView reports the directory entry for block ba without allocating one:
// its state, owner core (-1 if none), the sharer cores, and whether an entry
// exists at all.
func (h *Hierarchy) DirView(ba memdata.Addr) (st coherence.State, owner int, sharers []int, ok bool) {
	dl := h.dir.Lookup(ba.BlockAddr())
	if dl == nil {
		return coherence.Invalid, -1, nil, false
	}
	dl.Sharers.ForEach(h.cfg.Cores, func(c int) { sharers = append(sharers, c) })
	return dl.State, int(dl.Owner), sharers, true
}

// PrivateLine is core-local cache state for one block, per level.
type PrivateLine struct {
	InL1, InL2       bool
	L1State, L2State coherence.State
	L1Dirty, L2Dirty bool
}

// Holds reports whether the block is present in either private level.
func (p PrivateLine) Holds() bool { return p.InL1 || p.InL2 }

// Modified reports whether either private level holds the block in M.
func (p PrivateLine) Modified() bool {
	return (p.InL1 && p.L1State == coherence.Modified) ||
		(p.InL2 && p.L2State == coherence.Modified)
}

// PrivateView reports core c's private-cache state for block ba. It uses
// Probe, so it never perturbs LRU order or stats.
func (h *Hierarchy) PrivateView(c int, ba memdata.Addr) PrivateLine {
	ba = ba.BlockAddr()
	var pv PrivateLine
	if l := h.l1[c].Probe(ba); l != nil {
		pv.InL1, pv.L1State, pv.L1Dirty = true, l.Coh, l.Dirty
	}
	if l := h.l2[c].Probe(ba); l != nil {
		pv.InL2, pv.L2State, pv.L2Dirty = true, l.Coh, l.Dirty
	}
	return pv
}

// --- typed access API (used by CoreCtx) ---

func (h *Hierarchy) loadBytes(c int, addr memdata.Addr, size int) uint64 {
	b := h.access(c, addr, false)
	off := addr.Offset()
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(b[off+i]) << uint(8*i)
	}
	h.record(c, addr, false, size, 0)
	return v
}

func (h *Hierarchy) storeBytes(c int, addr memdata.Addr, size int, v uint64) {
	b := h.access(c, addr, true)
	off := addr.Offset()
	for i := 0; i < size; i++ {
		b[off+i] = byte(v >> uint(8*i))
	}
	h.record(c, addr, true, size, v)
}

func (h *Hierarchy) record(c int, addr memdata.Addr, write bool, size int, v uint64) {
	if h.rec != nil {
		h.rec.Access(c, addr, write, size, v, h.ann.Approximate(addr))
	}
}

// Replay performs one traced memory operation for core c: loads read
// through the hierarchy (value discarded), stores apply the recorded
// payload. The timing simulator replays recorded traces this way, keeping
// the functional state (and thus Doppelgänger map computations) live.
func (h *Hierarchy) Replay(c int, r trace.Record) {
	if r.Write {
		h.storeBytes(c, r.Addr, int(r.Size), r.Val)
	} else {
		h.loadBytes(c, r.Addr, int(r.Size))
	}
}

// LoadF32 reads a float32 through core c's hierarchy.
func (h *Hierarchy) LoadF32(c int, addr memdata.Addr) float32 {
	return math.Float32frombits(uint32(h.loadBytes(c, addr, 4)))
}

// StoreF32 writes a float32 through core c's hierarchy.
func (h *Hierarchy) StoreF32(c int, addr memdata.Addr, v float32) {
	h.storeBytes(c, addr, 4, uint64(math.Float32bits(v)))
}

// LoadF64 reads a float64.
func (h *Hierarchy) LoadF64(c int, addr memdata.Addr) float64 {
	return math.Float64frombits(h.loadBytes(c, addr, 8))
}

// StoreF64 writes a float64.
func (h *Hierarchy) StoreF64(c int, addr memdata.Addr, v float64) {
	h.storeBytes(c, addr, 8, math.Float64bits(v))
}

// LoadI32 reads an int32.
func (h *Hierarchy) LoadI32(c int, addr memdata.Addr) int32 {
	return int32(uint32(h.loadBytes(c, addr, 4)))
}

// StoreI32 writes an int32.
func (h *Hierarchy) StoreI32(c int, addr memdata.Addr, v int32) {
	h.storeBytes(c, addr, 4, uint64(uint32(v)))
}

// LoadU8 reads a byte.
func (h *Hierarchy) LoadU8(c int, addr memdata.Addr) uint8 {
	return uint8(h.loadBytes(c, addr, 1))
}

// StoreU8 writes a byte.
func (h *Hierarchy) StoreU8(c int, addr memdata.Addr, v uint8) {
	h.storeBytes(c, addr, 1, uint64(v))
}
