package funcsim

import (
	"context"
	"math/rand"
	"testing"

	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

// batchStream builds a deterministic recorded stream over a small working
// set: two cores, mixed reads and writes, enough reuse to exercise fills,
// evictions and writebacks in every lane.
func batchStream(t testing.TB) (*trace.Recorder, *memdata.Store) {
	t.Helper()
	init := memdata.NewStore()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 256; i++ {
		init.WriteU64(memdata.Addr(0x4000+i*64), rng.Uint64())
	}
	rec := trace.NewRecorder(2)
	for i := 0; i < 4000; i++ {
		core := i % 2
		addr := memdata.Addr(0x4000 + uint32(rng.Intn(256))*64)
		if rng.Intn(4) == 0 {
			rec.Access(core, addr, true, 8, rng.Uint64(), false)
		} else {
			rec.Access(core, addr, false, 8, 0, false)
		}
		if rng.Intn(16) == 0 {
			rec.Work(core, rng.Intn(5))
		}
	}
	return rec, init
}

// batchLanes builds k hierarchies with per-lane LLC geometry (so lanes truly
// diverge) over private clones of the initial image.
func batchLanes(init *memdata.Store, k int) ([]*Hierarchy, []*memdata.Store) {
	hs := make([]*Hierarchy, k)
	sts := make([]*memdata.Store, k)
	for i := range hs {
		st := init.Clone()
		llc := core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: 1 << (12 + uint(i%3)), Ways: 4}, st, nil)
		hs[i] = New(testConfig(2), llc, st, nil, nil)
		sts[i] = st
	}
	return hs, sts
}

func storesEqual(t *testing.T, lane int, got, want *memdata.Store) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("lane %d: %d blocks touched, want %d", lane, got.Len(), want.Len())
	}
	want.ForEachBlock(func(a memdata.Addr, blk *memdata.Block) {
		g := got.Peek(a)
		if g == nil {
			t.Fatalf("lane %d: block %#x missing", lane, a)
		}
		if *g != *blk {
			t.Fatalf("lane %d: block %#x diverged", lane, a)
		}
	})
}

// The batched inner loop must be invisible: each lane of one batched pass
// ends in exactly the state a sequential ReplayStreamContext pass leaves.
func TestReplayBatchMatchesSequential(t *testing.T) {
	rec, init := batchStream(t)
	const k = 4

	bhs, bsts := batchLanes(init, k)
	if err := ReplayBatchContext(context.Background(), bhs, rec); err != nil {
		t.Fatal(err)
	}
	shs, ssts := batchLanes(init, k)
	for i, h := range shs {
		if err := ReplayStreamContext(context.Background(), h, rec); err != nil {
			t.Fatalf("lane %d sequential: %v", i, err)
		}
	}
	for i := range bhs {
		bhs[i].Flush()
		shs[i].Flush()
		storesEqual(t, i, bsts[i], ssts[i])
	}
}

func TestReplayBatchCancelled(t *testing.T) {
	rec, init := batchStream(t)
	hs, _ := batchLanes(init, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ReplayBatchContext(ctx, hs, rec); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReplayBatchNilLane(t *testing.T) {
	rec, init := batchStream(t)
	hs, _ := batchLanes(init, 2)
	hs[1] = nil
	if err := ReplayBatchContext(context.Background(), hs, rec); err == nil {
		t.Fatal("nil lane accepted")
	}
}

// Satellite: the steady-state batched-replay inner loop — shared cursor
// fan-out included — allocates nothing, so batching N configs costs N times
// the cache work and zero garbage.
func TestReplayBatchZeroAlloc(t *testing.T) {
	rec, init := batchStream(t)
	// Lanes whose LLC holds the whole working set: L1/L2 evictions and
	// writebacks still fire every pass (the paths that used to allocate),
	// but the LLC's eviction bookkeeping reaches a true steady state, so
	// any allocation left is the batch loop's own.
	hs := make([]*Hierarchy, 4)
	for i := range hs {
		st := init.Clone()
		llc := core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: 64 << 10, Ways: 4 << uint(i%2)}, st, nil)
		hs[i] = New(testConfig(2), llc, st, nil, nil)
	}
	cur, err := rec.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	// Warm passes fault in every store page and cache structure and let the
	// per-organization Effects scratch slices reach their high-water marks.
	for w := 0; w < 3; w++ {
		if err := ReplayBatchCursor(context.Background(), hs, cur); err != nil {
			t.Fatal(err)
		}
		cur.Reset()
	}
	allocs := testing.AllocsPerRun(5, func() {
		cur.Reset()
		if err := ReplayBatchCursor(context.Background(), hs, cur); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched replay inner loop allocates %.1f per pass, want 0", allocs)
	}
}
