package funcsim

import "doppelganger/internal/memdata"

// CoreCtx is the per-core handle a workload kernel uses to touch memory.
// Kernels run as goroutines, but every memory access is serialized through
// the gang scheduler in deterministic round-robin order, so functional
// results (and therefore application error) are reproducible run-to-run.
type CoreCtx struct {
	id           int
	group        int // barrier group (program id in multiprogrammed runs)
	h            *Hierarchy
	grant        chan struct{}
	done         chan struct{}
	barrierEnter chan struct{}
	barrierLeave chan struct{}
}

// Core returns the core id of this context.
func (c *CoreCtx) Core() int { return c.id }

func (c *CoreCtx) turn(fn func()) {
	<-c.grant
	fn()
	c.done <- struct{}{}
}

// Work accounts n non-memory instructions (arithmetic between accesses).
// It only touches this core's trace state, so no scheduler turn is needed.
func (c *CoreCtx) Work(n int) {
	if c.h.rec != nil {
		c.h.rec.Work(c.id, n)
	}
}

// Barrier blocks until every live core in this core's barrier group has
// reached a Barrier call, mirroring the pthread barriers of the paper's
// data-parallel benchmarks. Cores that have already finished do not
// participate; in multiprogrammed runs each program is its own group.
func (c *CoreCtx) Barrier() {
	<-c.grant
	c.barrierEnter <- struct{}{}
	<-c.barrierLeave
}

// LoadF32 reads a float32 through the hierarchy.
func (c *CoreCtx) LoadF32(addr memdata.Addr) float32 {
	var v float32
	c.turn(func() { v = c.h.LoadF32(c.id, addr) })
	return v
}

// StoreF32 writes a float32 through the hierarchy.
func (c *CoreCtx) StoreF32(addr memdata.Addr, v float32) {
	c.turn(func() { c.h.StoreF32(c.id, addr, v) })
}

// LoadF64 reads a float64 through the hierarchy.
func (c *CoreCtx) LoadF64(addr memdata.Addr) float64 {
	var v float64
	c.turn(func() { v = c.h.LoadF64(c.id, addr) })
	return v
}

// StoreF64 writes a float64 through the hierarchy.
func (c *CoreCtx) StoreF64(addr memdata.Addr, v float64) {
	c.turn(func() { c.h.StoreF64(c.id, addr, v) })
}

// LoadI32 reads an int32 through the hierarchy.
func (c *CoreCtx) LoadI32(addr memdata.Addr) int32 {
	var v int32
	c.turn(func() { v = c.h.LoadI32(c.id, addr) })
	return v
}

// StoreI32 writes an int32 through the hierarchy.
func (c *CoreCtx) StoreI32(addr memdata.Addr, v int32) {
	c.turn(func() { c.h.StoreI32(c.id, addr, v) })
}

// LoadU8 reads a byte through the hierarchy.
func (c *CoreCtx) LoadU8(addr memdata.Addr) uint8 {
	var v uint8
	c.turn(func() { v = c.h.LoadU8(c.id, addr) })
	return v
}

// StoreU8 writes a byte through the hierarchy.
func (c *CoreCtx) StoreU8(addr memdata.Addr, v uint8) {
	c.turn(func() { c.h.StoreU8(c.id, addr, v) })
}

// Run executes one kernel per core in lockstep: memory accesses are granted
// round-robin, one per live core per rotation, so the interleaving (and thus
// all cache contents) is deterministic. Run returns when every kernel has
// finished. All cores share one barrier group.
func Run(h *Hierarchy, kernels []func(*CoreCtx)) {
	RunGrouped(h, kernels, nil)
}

// RunGrouped is Run with explicit barrier groups: groups[i] is core i's
// group, and a Barrier call only rendezvouses with live cores of the same
// group. Multiprogrammed runs give each program its own group so one
// program's barriers never wait on another's cores. A nil groups slice puts
// every core in group 0.
func RunGrouped(h *Hierarchy, kernels []func(*CoreCtx), groups []int) {
	n := len(kernels)
	ctxs := make([]*CoreCtx, n)
	finished := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		g := 0
		if groups != nil {
			g = groups[i]
		}
		ctxs[i] = &CoreCtx{
			id: i, group: g, h: h,
			grant:        make(chan struct{}),
			done:         make(chan struct{}),
			barrierEnter: make(chan struct{}),
			barrierLeave: make(chan struct{}),
		}
		finished[i] = make(chan struct{})
		go func(i int) {
			defer close(finished[i])
			kernels[i](ctxs[i])
		}(i)
	}
	live := n
	doneFlags := make([]bool, n)
	atBarrier := make([]bool, n)
	for live > 0 {
		for i := 0; i < n; i++ {
			if doneFlags[i] || atBarrier[i] {
				continue
			}
			select {
			case ctxs[i].grant <- struct{}{}:
				select {
				case <-ctxs[i].done:
				case <-ctxs[i].barrierEnter:
					atBarrier[i] = true
				}
			case <-finished[i]:
				doneFlags[i] = true
				live--
			}
		}
		// Release any group whose live cores have all reached the barrier.
		releaseReadyGroups(ctxs, doneFlags, atBarrier)
	}
}

func releaseReadyGroups(ctxs []*CoreCtx, doneFlags, atBarrier []bool) {
	liveInGroup := map[int]int{}
	waitInGroup := map[int]int{}
	for i, ctx := range ctxs {
		if doneFlags[i] {
			continue
		}
		liveInGroup[ctx.group]++
		if atBarrier[i] {
			waitInGroup[ctx.group]++
		}
	}
	for g, waiting := range waitInGroup {
		if waiting == 0 || waiting != liveInGroup[g] {
			continue
		}
		for i, ctx := range ctxs {
			if atBarrier[i] && ctx.group == g {
				atBarrier[i] = false
				ctx.barrierLeave <- struct{}{}
			}
		}
	}
}
