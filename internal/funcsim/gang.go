package funcsim

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"doppelganger/internal/memdata"
)

// CoreCtx is the per-core handle a workload kernel uses to touch memory.
// Kernels run as goroutines, but every memory access is serialized through
// the gang scheduler in deterministic round-robin order, so functional
// results (and therefore application error) are reproducible run-to-run.
type CoreCtx struct {
	id           int
	group        int // barrier group (program id in multiprogrammed runs)
	h            *Hierarchy
	grant        chan struct{}
	done         chan struct{}
	barrierEnter chan struct{}
	barrierLeave chan struct{}
	// cancel is closed by the scheduler when its context is cancelled; nil
	// for non-context runs, which keep the bare channel receives below.
	cancel chan struct{}
}

// runCanceled is the panic token a kernel goroutine unwinds with when the
// run's context is cancelled; the goroutine wrapper recovers it. Kernels
// block on scheduler channels, so panic-unwind is the only way to free them
// without threading a context through every workload kernel.
type runCanceled struct{}

// Core returns the core id of this context.
func (c *CoreCtx) Core() int { return c.id }

// acquire waits for a scheduler grant, unwinding if the run is cancelled.
func (c *CoreCtx) acquire() {
	if c.cancel == nil {
		<-c.grant
		return
	}
	select {
	case <-c.grant:
	case <-c.cancel:
		panic(runCanceled{})
	}
}

func (c *CoreCtx) turn(fn func()) {
	c.acquire()
	fn()
	// The scheduler that granted the turn is already waiting on done, so
	// this send never blocks across a cancellation.
	c.done <- struct{}{}
}

// Work accounts n non-memory instructions (arithmetic between accesses).
// It only touches this core's trace state, so no scheduler turn is needed.
func (c *CoreCtx) Work(n int) {
	if c.h.rec != nil {
		c.h.rec.Work(c.id, n)
	}
}

// Barrier blocks until every live core in this core's barrier group has
// reached a Barrier call, mirroring the pthread barriers of the paper's
// data-parallel benchmarks. Cores that have already finished do not
// participate; in multiprogrammed runs each program is its own group.
func (c *CoreCtx) Barrier() {
	c.acquire()
	c.barrierEnter <- struct{}{}
	if c.cancel == nil {
		<-c.barrierLeave
		return
	}
	// A core can park here for many rotations while the rest of its group
	// catches up, so the release must also race against cancellation.
	select {
	case <-c.barrierLeave:
	case <-c.cancel:
		panic(runCanceled{})
	}
}

// LoadF32 reads a float32 through the hierarchy.
func (c *CoreCtx) LoadF32(addr memdata.Addr) float32 {
	var v float32
	c.turn(func() { v = c.h.LoadF32(c.id, addr) })
	return v
}

// StoreF32 writes a float32 through the hierarchy.
func (c *CoreCtx) StoreF32(addr memdata.Addr, v float32) {
	c.turn(func() { c.h.StoreF32(c.id, addr, v) })
}

// LoadF64 reads a float64 through the hierarchy.
func (c *CoreCtx) LoadF64(addr memdata.Addr) float64 {
	var v float64
	c.turn(func() { v = c.h.LoadF64(c.id, addr) })
	return v
}

// StoreF64 writes a float64 through the hierarchy.
func (c *CoreCtx) StoreF64(addr memdata.Addr, v float64) {
	c.turn(func() { c.h.StoreF64(c.id, addr, v) })
}

// LoadI32 reads an int32 through the hierarchy.
func (c *CoreCtx) LoadI32(addr memdata.Addr) int32 {
	var v int32
	c.turn(func() { v = c.h.LoadI32(c.id, addr) })
	return v
}

// StoreI32 writes an int32 through the hierarchy.
func (c *CoreCtx) StoreI32(addr memdata.Addr, v int32) {
	c.turn(func() { c.h.StoreI32(c.id, addr, v) })
}

// LoadU8 reads a byte through the hierarchy.
func (c *CoreCtx) LoadU8(addr memdata.Addr) uint8 {
	var v uint8
	c.turn(func() { v = c.h.LoadU8(c.id, addr) })
	return v
}

// StoreU8 writes a byte through the hierarchy.
func (c *CoreCtx) StoreU8(addr memdata.Addr, v uint8) {
	c.turn(func() { c.h.StoreU8(c.id, addr, v) })
}

// Run executes one kernel per core in lockstep: memory accesses are granted
// round-robin, one per live core per rotation, so the interleaving (and thus
// all cache contents) is deterministic. Run returns when every kernel has
// finished. All cores share one barrier group.
func Run(h *Hierarchy, kernels []func(*CoreCtx)) {
	RunGrouped(h, kernels, nil)
}

// RunGrouped is Run with explicit barrier groups: groups[i] is core i's
// group, and a Barrier call only rendezvouses with live cores of the same
// group. Multiprogrammed runs give each program its own group so one
// program's barriers never wait on another's cores. A nil groups slice puts
// every core in group 0.
func RunGrouped(h *Hierarchy, kernels []func(*CoreCtx), groups []int) {
	if err := RunGroupedContext(context.Background(), h, kernels, groups); err != nil {
		// A background context is never cancelled, so the only possible error
		// is a captured kernel panic: re-raise it on the caller's goroutine,
		// where it is recoverable (the sweep memo turns it into a task error).
		panic(err)
	}
}

// RunGroupedContext is RunGrouped with cooperative cancellation and panic
// containment. When ctx is cancelled the scheduler stops granting turns,
// every kernel goroutine unwinds at its next scheduler rendezvous, and
// ctx.Err() is returned; the simulation state is then abandoned mid-flight
// (callers discard it). A kernel that panics is captured on its own
// goroutine and returned as an error carrying the stack — the crash fails
// this run, never the process; the remaining kernels complete normally (a
// crashed core counts as finished, so its barrier group is not stranded).
// With a non-cancellable context the cancellation machinery is inert: the
// per-core cancel channel stays nil and every rendezvous keeps its bare
// channel operation.
func RunGroupedContext(ctx context.Context, h *Hierarchy, kernels []func(*CoreCtx), groups []int) error {
	n := len(kernels)
	ctxDone := ctx.Done()
	var cancelCh chan struct{}
	if ctxDone != nil {
		cancelCh = make(chan struct{})
	}
	var panicMu sync.Mutex
	var panicErr error
	ctxs := make([]*CoreCtx, n)
	finished := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		g := 0
		if groups != nil {
			g = groups[i]
		}
		ctxs[i] = &CoreCtx{
			id: i, group: g, h: h,
			grant:        make(chan struct{}),
			done:         make(chan struct{}),
			barrierEnter: make(chan struct{}),
			barrierLeave: make(chan struct{}),
			cancel:       cancelCh,
		}
		finished[i] = make(chan struct{})
		go func(i int) {
			defer close(finished[i])
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(runCanceled); ok {
						return
					}
					panicMu.Lock()
					if panicErr == nil { // keep the first crash's stack
						panicErr = fmt.Errorf("funcsim: kernel %d panicked: %v\n%s", i, r, debug.Stack())
					}
					panicMu.Unlock()
				}
			}()
			kernels[i](ctxs[i])
		}(i)
	}
	live := n
	doneFlags := make([]bool, n)
	atBarrier := make([]bool, n)
	for live > 0 {
		if ctxDone != nil {
			select {
			case <-ctxDone:
				// Between rotations every live kernel is parked at a grant or
				// barrier-leave rendezvous (or computing towards one), so
				// closing cancel unwinds them all; wait for the unwind so no
				// goroutine outlives the call.
				close(cancelCh)
				for i := 0; i < n; i++ {
					if !doneFlags[i] {
						<-finished[i]
					}
				}
				return ctx.Err()
			default:
			}
		}
		for i := 0; i < n; i++ {
			if doneFlags[i] || atBarrier[i] {
				continue
			}
			select {
			case ctxs[i].grant <- struct{}{}:
				select {
				case <-ctxs[i].done:
				case <-ctxs[i].barrierEnter:
					atBarrier[i] = true
				case <-finished[i]:
					// The kernel panicked inside its turn: done never arrives.
					doneFlags[i] = true
					live--
				}
			case <-finished[i]:
				doneFlags[i] = true
				live--
			}
		}
		// Release any group whose live cores have all reached the barrier.
		releaseReadyGroups(ctxs, doneFlags, atBarrier)
	}
	panicMu.Lock()
	defer panicMu.Unlock()
	return panicErr
}

func releaseReadyGroups(ctxs []*CoreCtx, doneFlags, atBarrier []bool) {
	liveInGroup := map[int]int{}
	waitInGroup := map[int]int{}
	for i, ctx := range ctxs {
		if doneFlags[i] {
			continue
		}
		liveInGroup[ctx.group]++
		if atBarrier[i] {
			waitInGroup[ctx.group]++
		}
	}
	for g, waiting := range waitInGroup {
		if waiting == 0 || waiting != liveInGroup[g] {
			continue
		}
		for i, ctx := range ctxs {
			if atBarrier[i] && ctx.group == g {
				atBarrier[i] = false
				ctx.barrierLeave <- struct{}{}
			}
		}
	}
}
