package funcsim

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"doppelganger/internal/memdata"
)

// The gang serializes memory accesses with a token ring: exactly one core
// goroutine holds the grant token at a time, and after its turn it hands the
// token directly to the next runnable core in rotation order. There is no
// scheduler goroutine in the loop, so each access costs one goroutine switch
// (the old dedicated scheduler cost two: kernel -> scheduler -> next kernel),
// and a phase where a single core is the only runnable one costs none at all.
// The rotation order is identical to the old scheduler's round-robin —
// including barrier release happening exactly at rotation boundaries and a
// finished or crashed core being retired at its own rotation slot — so the
// deterministic interleaving, and therefore every simulated result, is
// bit-identical.
//
// All rotation bookkeeping (doneFlags, atBarrier, live counts) is guarded by
// the token itself: only the holder touches it, and the channel handoff
// publishes it to the next holder.
type gang struct {
	ctxs      []*CoreCtx
	doneFlags []bool
	atBarrier []bool
	live      int
	// Scratch for releaseReadyGroups, indexed by barrier group.
	liveInGroup []int
	waitInGroup []int
	// allDone is closed by the last core to retire; the Run caller parks on
	// it instead of participating in the rotation.
	allDone chan struct{}
}

// nextRunnable returns the index of the core the token should go to after
// from's turn: the next live, non-waiting core in rotation order. Crossing
// the end of the core list is the rotation boundary, where barrier groups
// whose live cores are all waiting get released — exactly where the old
// dedicated scheduler did it between rotations. Returns -1 only if every
// live core is parked at a barrier that can no longer complete (a kernel
// bug: the run hangs, as it always did, but without spinning).
func (g *gang) nextRunnable(from int) int {
	for i := from + 1; i < len(g.ctxs); i++ {
		if !g.doneFlags[i] && !g.atBarrier[i] {
			return i
		}
	}
	g.releaseReadyGroups()
	for i := 0; i < len(g.ctxs); i++ {
		if !g.doneFlags[i] && !g.atBarrier[i] {
			return i
		}
	}
	return -1
}

// releaseReadyGroups releases every barrier group whose live cores have all
// reached the barrier. The barrierLeave channels are buffered, so release
// never blocks — a released core picks the signal up when it parks (or, when
// a lone core released its own group, already holds the token and consumes
// the signal immediately).
func (g *gang) releaseReadyGroups() {
	for i := range g.liveInGroup {
		g.liveInGroup[i], g.waitInGroup[i] = 0, 0
	}
	for i, c := range g.ctxs {
		if g.doneFlags[i] {
			continue
		}
		g.liveInGroup[c.group]++
		if g.atBarrier[i] {
			g.waitInGroup[c.group]++
		}
	}
	for grp, waiting := range g.waitInGroup {
		if waiting == 0 || waiting != g.liveInGroup[grp] {
			continue
		}
		for i, c := range g.ctxs {
			if g.atBarrier[i] && c.group == grp {
				g.atBarrier[i] = false
				c.barrierLeave <- struct{}{}
			}
		}
	}
}

// CoreCtx is the per-core handle a workload kernel uses to touch memory.
// Kernels run as goroutines, but every memory access is serialized through
// the grant token in deterministic round-robin order, so functional results
// (and therefore application error) are reproducible run-to-run.
type CoreCtx struct {
	id    int
	group int // barrier group (program id in multiprogrammed runs)
	h     *Hierarchy
	g     *gang
	grant chan struct{}
	// barrierLeave carries the barrier-release signal; buffered so the
	// releasing token holder never blocks on it.
	barrierLeave chan struct{}
	// granted tracks (on this core's goroutine only) whether the token is
	// currently held; it stays true across turns when this core is the only
	// runnable one, eliding the channel round-trip entirely.
	granted bool
	// cancel is closed by the runner when its context is cancelled; nil for
	// non-context runs, which keep the bare channel operations below.
	cancel chan struct{}
}

// runCanceled is the panic token a kernel goroutine unwinds with when the
// run's context is cancelled; the goroutine wrapper recovers it. Kernels
// block on token rendezvous, so panic-unwind is the only way to free them
// without threading a context through every workload kernel.
type runCanceled struct{}

// Core returns the core id of this context.
func (c *CoreCtx) Core() int { return c.id }

// acquireOK waits for the token, reporting false if the run was cancelled
// instead. A core that kept the token after its last turn returns at once.
func (c *CoreCtx) acquireOK() bool {
	if c.granted {
		return true
	}
	if c.cancel == nil {
		<-c.grant
	} else {
		select {
		case <-c.grant:
		case <-c.cancel:
			return false
		}
	}
	c.granted = true
	return true
}

// acquire waits for the token, unwinding if the run is cancelled.
func (c *CoreCtx) acquire() {
	if !c.acquireOK() {
		panic(runCanceled{})
	}
}

// passOK hands the token to the next runnable core, reporting false if the
// run was cancelled instead. When this core is itself the next runnable one
// it simply keeps the token (polling cancellation so a lone cancellable
// kernel still unwinds between accesses).
func (c *CoreCtx) passOK() bool {
	next := c.g.nextRunnable(c.id)
	if next == c.id {
		if c.cancel != nil {
			select {
			case <-c.cancel:
				return false
			default:
			}
		}
		return true
	}
	c.granted = false
	if next < 0 {
		return true // kernel-level barrier deadlock: drop the token
	}
	nc := c.g.ctxs[next]
	if c.cancel == nil {
		nc.grant <- struct{}{}
		return true
	}
	select {
	case nc.grant <- struct{}{}:
		return true
	case <-c.cancel:
		return false
	}
}

// pass hands the token on, unwinding if the run is cancelled.
func (c *CoreCtx) pass() {
	if !c.passOK() {
		panic(runCanceled{})
	}
}

func (c *CoreCtx) turn(fn func()) {
	c.acquire()
	fn()
	c.pass()
}

// Work accounts n non-memory instructions (arithmetic between accesses).
// It only touches this core's trace state, so no turn is needed.
func (c *CoreCtx) Work(n int) {
	if c.h.rec != nil {
		c.h.rec.Work(c.id, n)
	}
}

// Barrier blocks until every live core in this core's barrier group has
// reached a Barrier call, mirroring the pthread barriers of the paper's
// data-parallel benchmarks. Cores that have already finished do not
// participate; in multiprogrammed runs each program is its own group.
func (c *CoreCtx) Barrier() {
	c.acquire()
	c.g.atBarrier[c.id] = true
	c.pass()
	if c.cancel == nil {
		<-c.barrierLeave
		return
	}
	// A core can park here for many rotations while the rest of its group
	// catches up, so the release must also race against cancellation.
	select {
	case <-c.barrierLeave:
	case <-c.cancel:
		panic(runCanceled{})
	}
}

// LoadF32 reads a float32 through the hierarchy.
func (c *CoreCtx) LoadF32(addr memdata.Addr) float32 {
	var v float32
	c.turn(func() { v = c.h.LoadF32(c.id, addr) })
	return v
}

// StoreF32 writes a float32 through the hierarchy.
func (c *CoreCtx) StoreF32(addr memdata.Addr, v float32) {
	c.turn(func() { c.h.StoreF32(c.id, addr, v) })
}

// LoadF64 reads a float64 through the hierarchy.
func (c *CoreCtx) LoadF64(addr memdata.Addr) float64 {
	var v float64
	c.turn(func() { v = c.h.LoadF64(c.id, addr) })
	return v
}

// StoreF64 writes a float64 through the hierarchy.
func (c *CoreCtx) StoreF64(addr memdata.Addr, v float64) {
	c.turn(func() { c.h.StoreF64(c.id, addr, v) })
}

// LoadI32 reads an int32 through the hierarchy.
func (c *CoreCtx) LoadI32(addr memdata.Addr) int32 {
	var v int32
	c.turn(func() { v = c.h.LoadI32(c.id, addr) })
	return v
}

// StoreI32 writes an int32 through the hierarchy.
func (c *CoreCtx) StoreI32(addr memdata.Addr, v int32) {
	c.turn(func() { c.h.StoreI32(c.id, addr, v) })
}

// LoadU8 reads a byte through the hierarchy.
func (c *CoreCtx) LoadU8(addr memdata.Addr) uint8 {
	var v uint8
	c.turn(func() { v = c.h.LoadU8(c.id, addr) })
	return v
}

// StoreU8 writes a byte through the hierarchy.
func (c *CoreCtx) StoreU8(addr memdata.Addr, v uint8) {
	c.turn(func() { c.h.StoreU8(c.id, addr, v) })
}

// Run executes one kernel per core in lockstep: memory accesses are granted
// round-robin, one per live core per rotation, so the interleaving (and thus
// all cache contents) is deterministic. Run returns when every kernel has
// finished. All cores share one barrier group.
func Run(h *Hierarchy, kernels []func(*CoreCtx)) {
	RunGrouped(h, kernels, nil)
}

// RunGrouped is Run with explicit barrier groups: groups[i] is core i's
// group, and a Barrier call only rendezvouses with live cores of the same
// group. Multiprogrammed runs give each program its own group so one
// program's barriers never wait on another's cores. A nil groups slice puts
// every core in group 0.
func RunGrouped(h *Hierarchy, kernels []func(*CoreCtx), groups []int) {
	if err := RunGroupedContext(context.Background(), h, kernels, groups); err != nil {
		// A background context is never cancelled, so the only possible error
		// is a captured kernel panic: re-raise it on the caller's goroutine,
		// where it is recoverable (the sweep memo turns it into a task error).
		panic(err)
	}
}

// RunGroupedContext is RunGrouped with cooperative cancellation and panic
// containment. When ctx is cancelled the token stops circulating, every
// kernel goroutine unwinds at its next rendezvous, and ctx.Err() is
// returned; the simulation state is then abandoned mid-flight (callers
// discard it). A kernel that panics is captured on its own goroutine and
// returned as an error carrying the stack — the crash fails this run, never
// the process; the remaining kernels complete normally (a crashed core
// counts as finished, so its barrier group is not stranded). With a
// non-cancellable context the cancellation machinery is inert: the per-core
// cancel channel stays nil and every rendezvous keeps its bare channel
// operation.
func RunGroupedContext(ctx context.Context, h *Hierarchy, kernels []func(*CoreCtx), groups []int) error {
	n := len(kernels)
	if n == 0 {
		return nil
	}
	ctxDone := ctx.Done()
	var cancelCh chan struct{}
	if ctxDone != nil {
		cancelCh = make(chan struct{})
	}
	var panicMu sync.Mutex
	var panicErr error
	ctxs := make([]*CoreCtx, n)
	maxGroup := 0
	for i := 0; i < n; i++ {
		grp := 0
		if groups != nil {
			grp = groups[i]
		}
		if grp > maxGroup {
			maxGroup = grp
		}
		ctxs[i] = &CoreCtx{
			id: i, group: grp, h: h,
			grant:        make(chan struct{}),
			barrierLeave: make(chan struct{}, 1),
			cancel:       cancelCh,
		}
	}
	g := &gang{
		ctxs:        ctxs,
		doneFlags:   make([]bool, n),
		atBarrier:   make([]bool, n),
		live:        n,
		liveInGroup: make([]int, maxGroup+1),
		waitInGroup: make([]int, maxGroup+1),
		allDone:     make(chan struct{}),
	}
	finished := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		ctxs[i].g = g
		finished[i] = make(chan struct{})
		go func(i int) {
			c := ctxs[i]
			defer close(finished[i])
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(runCanceled); ok {
						return // cancelled: the runner joins via finished
					}
					panicMu.Lock()
					if panicErr == nil { // keep the first crash's stack
						panicErr = fmt.Errorf("funcsim: kernel %d panicked: %v\n%s", i, r, debug.Stack())
					}
					panicMu.Unlock()
					// A mid-turn crash still holds the token, so the retire
					// handshake below runs at this very rotation slot; an
					// out-of-turn crash waits for its next slot like normal
					// completion.
				}
				if !c.acquireOK() {
					return
				}
				g.doneFlags[c.id] = true
				g.live--
				if g.live == 0 {
					close(g.allDone)
					return
				}
				c.passOK()
			}()
			kernels[i](c)
		}(i)
	}
	// Seed the token: core 0 is live and runnable at the start, matching the
	// old scheduler's first grant.
	if cancelCh == nil {
		ctxs[0].grant <- struct{}{}
		<-g.allDone
	} else {
		select {
		case ctxs[0].grant <- struct{}{}:
		case <-ctxDone:
			close(cancelCh)
			for i := 0; i < n; i++ {
				<-finished[i]
			}
			return ctx.Err()
		}
		select {
		case <-ctxDone:
			// Every live kernel is parked at (or computing towards) a token
			// or barrier rendezvous that also selects on cancel, so closing
			// it unwinds them all; wait for the unwind so no goroutine
			// outlives the call.
			close(cancelCh)
			for i := 0; i < n; i++ {
				<-finished[i]
			}
			return ctx.Err()
		case <-g.allDone:
		}
	}
	for i := 0; i < n; i++ {
		<-finished[i]
	}
	panicMu.Lock()
	defer panicMu.Unlock()
	return panicErr
}
