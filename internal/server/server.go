package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"doppelganger/internal/faults"
	"doppelganger/internal/metrics"
	"doppelganger/internal/quality"
	"doppelganger/internal/singleflight"
	"doppelganger/internal/sweep"
	"doppelganger/internal/trace"
	"doppelganger/internal/workloads"
)

// ErrBadCell wraps cell validation failures (HTTP 400).
var ErrBadCell = errors.New("server: invalid cell")

// ErrDraining is returned once Drain has begun: admission is closed for good
// (HTTP 503); clients should fail over to another instance.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// errNoShard means candidate selection found nowhere to enqueue: every shard
// was dead, breaker-open or full.
var errNoShard = errors.New("server: no shard available (all dead, open or full)")

// OverloadError is a load-shedding refusal (HTTP 429): the token bucket ran
// dry or the queue budget is spent. RetryAfter is the server's own estimate
// of when capacity will exist — the Retry-After header, verbatim.
type OverloadError struct {
	RetryAfter time.Duration
	Reason     string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Config describes one Server. Zero values get the documented defaults.
type Config struct {
	// Scale sizes the workloads (required, positive).
	Scale float64
	// Cores is the CMP size (default 4, Table 1).
	Cores int
	// Only restricts the benchmark suite (figure jobs honor it too).
	Only []string

	// Shards is the number of worker pools (default 2); ShardWorkers the
	// goroutines per pool (default 2); QueueDepth each pool's buffered queue
	// (default 64).
	Shards       int
	ShardWorkers int
	QueueDepth   int
	// MaxQueue is the global shed budget: submissions beyond this many queued
	// jobs are refused with 429 (default Shards x QueueDepth).
	MaxQueue int

	// AdmitRate and AdmitBurst shape the token bucket (default 2000/s, burst
	// 1000). Memo cache hits spend tokens too: admission is the front door.
	AdmitRate  float64
	AdmitBurst float64

	// JobTimeout bounds one job end to end, retries included (default 120s).
	// Retries is how many times a failed dispatch re-runs beyond the first
	// attempt (default 2), sleeping RetryBackoff doubling per attempt
	// (default 50ms, capped at 2s). HedgeAfter, when positive, enqueues a
	// second copy of a silent job on the next ring candidate (first answer
	// wins; default off).
	JobTimeout   time.Duration
	Retries      int
	RetryBackoff time.Duration
	HedgeAfter   time.Duration

	// DrainTimeout bounds how long Drain waits for in-flight jobs before
	// snapshotting the stragglers into the state file (default 30s).
	DrainTimeout time.Duration
	// StatePath, when set, receives the drain state file (pending cells).
	StatePath string

	// Breaker configures each shard's circuit breaker; Budget 0 gets the
	// default (0.5: trip after repeated, not isolated, failures).
	Breaker quality.BreakerConfig

	// Fault/quality knobs, passed straight to every shard runner (results
	// are bit-identical across shards because all seeds derive from
	// (seed, task key), never worker identity).
	FaultRates    []float64
	FaultSeed     uint64
	FaultModel    faults.Model
	QualityBudget float64
	QualitySeed   uint64
	CanaryRate    float64

	// Trace-cache flags (the warm-trace deployment records once, then every
	// sweep replays). TraceVerify selects how hard the startup janitor
	// checks each capture before the server reports ready (default
	// trace.VerifyOff; the sweepd flag defaults to "open"). TraceFS, when
	// non-nil, replaces the filesystem under the trace cache — the chaos
	// tests' fault seam.
	TraceDir     string
	TraceCapture bool
	TraceReplay  bool
	TraceVerify  trace.VerifyMode
	TraceFS      trace.FS

	// DecodedCacheMB, when positive (and TraceDir is set), bounds a single
	// decoded-capture LRU shared by every shard runner: a capture any shard
	// decodes is replayable by the rest without re-reading the file, and
	// cells are ring-routed by capture digest so repeat submissions land on
	// the shard already holding their stream. ReplayBatch, when > 1, lets
	// each shard's engine replay that many identical-stream quality cells
	// in a single pass (sweep.Runner.ReplayBatch).
	DecodedCacheMB int
	ReplayBatch    int

	// Checkpoint, when non-nil, persists every completed result and primes
	// every shard runner from already-loaded records (resume). The caller
	// owns and closes it.
	Checkpoint *sweep.Checkpoint

	// Metrics receives all server and simulation instruments (created if
	// nil). Log, when non-nil, receives progress lines from every shard.
	Metrics *metrics.Registry
	Log     io.Writer
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.ShardWorkers == 0 {
		c.ShardWorkers = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = c.Shards * c.QueueDepth
	}
	if c.AdmitRate == 0 {
		c.AdmitRate = 2000
	}
	if c.AdmitBurst == 0 {
		c.AdmitBurst = 1000
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 120 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Breaker.Budget == 0 {
		c.Breaker.Budget = 0.5
	}
	return c
}

// serverMetrics are the pre-resolved instruments on the submission path.
type serverMetrics struct {
	accepted, completed, failed *metrics.Counter
	cacheHits                   *metrics.Counter
	shedRate, shedQueue         *metrics.Counter
	rejectedDraining            *metrics.Counter
	hedges, retries             *metrics.Counter
	corrupt, panics, timeouts   *metrics.Counter
	breakerDenied, shardKills   *metrics.Counter
}

// Server is the sweep service: ring, shards, admission, result memo, drain
// state. Build with New, serve HTTP with Handler, stop with Drain + Close.
type Server struct {
	cfg   Config
	ring  *ring
	admit *tokenBucket

	shards []*shard

	// results is the content-addressed memo: one compute per content hash,
	// every concurrent submission of the same cell shares it. Failures are
	// forgotten, so a shed or failed job does not poison the key.
	results *singleflight.Memo[*Result]

	reg        *metrics.Registry
	m          serverMetrics
	latency    *metrics.Histogram
	depthGauge *metrics.Gauge

	queueDepth atomic.Int64
	draining   atomic.Bool

	pendingMu sync.Mutex
	pending   map[string]*pendingEntry

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// traceStore holds the opened (locked, scrubbed) trace directory for
	// the server's lifetime; nil without a TraceDir. degradedGauge mirrors
	// the trace.degraded counter so dashboards see degraded mode as a
	// level, not just a rate.
	traceStore    *trace.Store
	degradedGauge *metrics.Gauge

	// decoded is the decoded-capture LRU every shard runner shares (nil
	// unless DecodedCacheMB is set); traceFS is the filesystem captures are
	// probed through (digest routing reads 16-byte preambles on it).
	decoded *trace.DecodedCache
	traceFS trace.FS

	chaos ChaosHooks
}

type pendingEntry struct {
	cell Cell
	n    int
}

// syncWriter serializes a shared log writer across shard runners (each
// runner serializes only its own lines).
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// New builds and starts a server (its shard workers run until Close).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if !(cfg.Scale > 0) {
		return nil, fmt.Errorf("server: scale must be positive, got %v", cfg.Scale)
	}
	if cfg.Shards < 1 || cfg.ShardWorkers < 1 {
		return nil, fmt.Errorf("server: need at least one shard and one worker, got %d x %d", cfg.Shards, cfg.ShardWorkers)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	var log io.Writer
	if cfg.Log != nil {
		log = &syncWriter{w: cfg.Log}
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		ring:    newRing(cfg.Shards, defaultReplicas),
		admit:   newTokenBucket(cfg.AdmitRate, cfg.AdmitBurst),
		results: singleflight.New[*Result](),
		reg:     reg,
		pending: make(map[string]*pendingEntry),
		baseCtx: baseCtx,
		cancel:  cancel,
	}
	s.m = serverMetrics{
		accepted:         reg.Counter("server.jobs.accepted"),
		completed:        reg.Counter("server.jobs.completed"),
		failed:           reg.Counter("server.jobs.failed"),
		cacheHits:        reg.Counter("server.jobs.cache_hits"),
		shedRate:         reg.Counter("server.shed.rate"),
		shedQueue:        reg.Counter("server.shed.queue"),
		rejectedDraining: reg.Counter("server.rejected.draining"),
		hedges:           reg.Counter("server.dispatch.hedges"),
		retries:          reg.Counter("server.dispatch.retries"),
		corrupt:          reg.Counter("server.dispatch.corrupt"),
		panics:           reg.Counter("server.shard.panics"),
		timeouts:         reg.Counter("server.dispatch.timeouts"),
		breakerDenied:    reg.Counter("server.dispatch.breaker_denied"),
		shardKills:       reg.Counter("server.shard.kills"),
	}
	s.latency = reg.Histogram("server.latency_ms", []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000})
	s.depthGauge = reg.Gauge("server.queue_depth")
	s.degradedGauge = reg.Gauge("server.trace.degraded_cells")

	// Open (lock + scrub) the trace store before any shard worker starts
	// and before New returns — /readyz cannot say ready until the directory
	// has been swept of orphaned temp files and condemned captures.
	fsys := cfg.TraceFS
	if fsys == nil {
		fsys = trace.OS
	}
	s.traceFS = fsys
	if cfg.TraceDir != "" && cfg.DecodedCacheMB > 0 {
		s.decoded = trace.NewDecodedCache(int64(cfg.DecodedCacheMB) << 20)
		s.decoded.AttachMetrics(reg)
	}
	if cfg.TraceDir != "" {
		st, err := trace.OpenStore(fsys, cfg.TraceDir, cfg.TraceVerify)
		if err != nil {
			cancel()
			return nil, err
		}
		s.traceStore = st
		rep := st.Report
		if rep.Skipped {
			if log != nil {
				fmt.Fprintf(log, "trace store %s: scrub skipped (directory shared with a live process)\n", cfg.TraceDir)
			}
		} else {
			reg.Counter("trace.scrub.temps_removed").Add(uint64(rep.TempsRemoved))
			reg.Counter("trace.scrub.verified").Add(uint64(rep.Verified))
			reg.Counter("trace.scrub.quarantined").Add(uint64(rep.Quarantined))
			reg.Counter("trace.scrub.unreadable").Add(uint64(rep.Unreadable))
			if log != nil && (rep.TempsRemoved > 0 || rep.Quarantined > 0 || rep.Unreadable > 0) {
				fmt.Fprintf(log, "trace store %s: scrub removed %d temp(s), quarantined %d, %d unreadable (%d verified)\n",
					cfg.TraceDir, rep.TempsRemoved, rep.Quarantined, rep.Unreadable, rep.Verified)
			}
		}
	}

	for i := 0; i < cfg.Shards; i++ {
		r := sweep.NewRunner(cfg.Scale)
		r.Cores = cfg.Cores
		r.Only = cfg.Only
		r.Log = log
		r.Metrics = reg
		r.FaultRates = cfg.FaultRates
		r.FaultSeed = cfg.FaultSeed
		r.FaultModel = cfg.FaultModel
		r.QualityBudget = cfg.QualityBudget
		r.QualitySeed = cfg.QualitySeed
		r.CanaryRate = cfg.CanaryRate
		r.TraceDir = cfg.TraceDir
		r.TraceCapture = cfg.TraceCapture
		r.TraceReplay = cfg.TraceReplay
		r.TraceFS = cfg.TraceFS
		r.DecodedCache = s.decoded
		r.ReplayBatch = cfg.ReplayBatch
		r.Checkpoint = cfg.Checkpoint
		if cfg.Checkpoint != nil {
			r.Resume(cfg.Checkpoint)
		}
		breaker, err := quality.NewBreaker(cfg.Breaker)
		if err != nil {
			cancel()
			return nil, err
		}
		sctx, kill := context.WithCancel(baseCtx)
		sh := &shard{
			id:      i,
			runner:  r,
			breaker: breaker,
			jobs:    make(chan *job, cfg.QueueDepth),
			ctx:     sctx,
			kill:    kill,
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		for w := 0; w < cfg.ShardWorkers; w++ {
			s.wg.Add(1)
			go sh.loop(s)
		}
	}
	return s, nil
}

// SetChaos installs the chaos hooks (tests only; call before serving).
func (s *Server) SetChaos(h ChaosHooks) { s.chaos = h }

// KillShard marks a shard dead and cancels its in-flight simulations — the
// chaos test's shard crash. Dead shards fail queued jobs fast and are
// skipped by dispatch; the shard never comes back.
func (s *Server) KillShard(i int) {
	if i < 0 || i >= len(s.shards) {
		return
	}
	sh := s.shards[i]
	if sh.dead.CompareAndSwap(false, true) {
		sh.kill()
		s.m.shardKills.Inc()
	}
}

// contentHash is the result-memo key: the cell identity plus every knob that
// changes its bytes (scale, cores, seeds, budgets) plus — when a warm trace
// exists — the benchmark's baseline capture digest, so re-recording the
// trace substrate invalidates the memo entry.
func (s *Server) contentHash(c Cell) string {
	budget := s.cfg.QualityBudget
	if budget == 0 {
		budget = sweep.DefaultQualityBudget
	}
	canary := s.cfg.CanaryRate
	if canary == 0 {
		canary = sweep.DefaultCanaryRate
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "sweepd1|%s|scale=%g|cores=%d|fseed=%d|fmodel=%s|qseed=%d|budget=%g|canary=%g",
		c.Key(), s.cfg.Scale, s.cfg.Cores, s.cfg.FaultSeed, s.cfg.FaultModel, s.cfg.QualitySeed, budget, canary)
	if s.cfg.TraceDir != "" && c.Bench != "" {
		ident := workloads.CaptureIdent("base/"+c.Bench, s.cfg.Scale, s.cfg.Cores, "")
		if d, err := trace.FileDigest(workloads.CapturePath(s.cfg.TraceDir, ident)); err == nil {
			fmt.Fprintf(h, "|tdigest=%016x", d)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Submit is the front door: validation, drain refusal, token-bucket
// admission, queue-budget shedding, then the memoized dispatch.
func (s *Server) Submit(ctx context.Context, c Cell) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	if s.draining.Load() {
		s.m.rejectedDraining.Inc()
		return nil, ErrDraining
	}
	if ok, retry := s.admit.admit(); !ok {
		s.m.shedRate.Inc()
		return nil, &OverloadError{RetryAfter: retry, Reason: "admission rate"}
	}
	if depth := s.queueDepth.Load(); depth >= int64(s.cfg.MaxQueue) {
		s.m.shedQueue.Inc()
		return nil, &OverloadError{RetryAfter: 250 * time.Millisecond, Reason: "queue depth"}
	}
	return s.SubmitLocal(ctx, c)
}

// SubmitLocal is Submit without admission control: the resume path (cells
// re-entering from a drain state file) and in-process tests use it. The job
// is tracked as pending from acceptance to response — the drain snapshot is
// exactly this set.
func (s *Server) SubmitLocal(ctx context.Context, c Cell) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCell, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := c.Key()
	s.addPending(key, c)
	defer s.removePending(key)
	s.m.accepted.Inc()
	start := time.Now()
	hash := s.contentHash(c)
	computed := false
	res, err := s.results.Do(hash, func() (*Result, error) {
		computed = true
		// The dispatch context is the server's, not the submitter's: a
		// canceled client must not fail the compute out from under the other
		// singleflight waiters.
		jctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
		defer cancel()
		payload, sum, shardID, err := s.dispatch(jctx, c, key)
		if err != nil {
			return nil, err
		}
		return &Result{Key: key, Hash: hash, Payload: payload, Sum: sum, Shard: shardID}, nil
	})
	if err != nil {
		s.m.failed.Inc()
		return nil, err
	}
	s.m.completed.Inc()
	s.latency.Observe(float64(time.Since(start).Milliseconds()))
	if !computed {
		s.m.cacheHits.Inc()
		out := *res
		out.Cached = true
		return &out, nil
	}
	return res, nil
}

// maxRetryBackoff caps the exponential retry sleep.
const maxRetryBackoff = 2 * time.Second

// dispatch runs the bounded-retry loop around attempt: exponential backoff
// between attempts, each attempt starting one candidate further around the
// ring so a persistently bad primary cannot eat the whole budget.
func (s *Server) dispatch(ctx context.Context, c Cell, key string) ([]byte, uint64, int, error) {
	backoff := s.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if attempt > 0 {
			s.m.retries.Inc()
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				s.m.timeouts.Inc()
				return nil, 0, -1, fmt.Errorf("server: job %s deadline during retry backoff: %w (last error: %v)", key, ctx.Err(), lastErr)
			}
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
		}
		payload, sum, shardID, err := s.attempt(ctx, c, key, attempt)
		if err == nil {
			return payload, sum, shardID, nil
		}
		// A later "no shard available" (breakers now open, queues full) must
		// not mask the failure that opened them.
		if !errors.Is(err, errNoShard) || lastErr == nil {
			lastErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	return nil, 0, -1, fmt.Errorf("server: job %s failed after %d attempt(s): %w", key, s.cfg.Retries+1, lastErr)
}

// routeKey picks the consistent-hash key for a cell. Plain servers route by
// benchmark (Cell.RouteKey), keeping a benchmark's cells — and their memoized
// baseline — on one shard. With a shared decoded-capture cache, cells route
// by the digest of the capture file they replay: every cell replaying one
// stream lands on the shard whose queue already carries its siblings, so the
// quality-batch planner sees whole groups and the LRU isn't duplicated
// across shards. Cells whose capture isn't on disk yet (cold directory) fall
// back to benchmark routing; once recorded, resubmissions route by digest.
func (s *Server) routeKey(c Cell) string {
	if s.decoded == nil || len(s.shards) == 0 {
		return c.RouteKey()
	}
	// Every shard runner is configured identically; shard 0's maps the cell
	// to its capture identity.
	ident, ok := s.shards[0].runner.CellCaptureIdent(c.Kind, c.Bench, c.Org, c.M, c.Frac, c.Rate)
	if !ok {
		return c.RouteKey()
	}
	d, err := trace.FileDigestFS(s.traceFS, workloads.CapturePath(s.cfg.TraceDir, ident))
	if err != nil {
		return c.RouteKey()
	}
	return fmt.Sprintf("digest:%016x", d)
}

// attempt runs one dispatch round: enqueue on the first live, breaker-
// allowed, non-full candidate in ring order; hedge onto the next one if the
// answer is slow; verify the payload checksum on receipt. Corrupt or failed
// outcomes feed the shard's breaker and fall through to the next candidate.
func (s *Server) attempt(ctx context.Context, c Cell, key string, rotation int) ([]byte, uint64, int, error) {
	seq := s.ring.order(s.routeKey(c))
	if len(seq) == 0 {
		return nil, 0, -1, errors.New("server: no shards")
	}
	rot := rotation % len(seq)
	seq = append(append(make([]int, 0, len(seq)), seq[rot:]...), seq[:rot]...)

	done := make(chan outcome, len(seq))
	next, inflight := 0, 0
	var lastErr error
	launch := func() bool {
		for next < len(seq) {
			sh := s.shards[seq[next]]
			next++
			if sh.dead.Load() {
				continue
			}
			if !sh.breaker.Allow() {
				s.m.breakerDenied.Inc()
				continue
			}
			if err := sh.enqueue(s, &job{cell: c, key: key, ctx: ctx, done: done}); err != nil {
				lastErr = err
				continue
			}
			inflight++
			return true
		}
		return false
	}
	if !launch() {
		if lastErr == nil {
			lastErr = errNoShard
		}
		return nil, 0, -1, lastErr
	}
	var hedgeC <-chan time.Time
	if s.cfg.HedgeAfter > 0 {
		hedge := time.NewTimer(s.cfg.HedgeAfter)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	for {
		select {
		case out := <-done:
			inflight--
			if out.err == nil {
				if checksum(out.payload) != out.sum {
					s.m.corrupt.Inc()
					s.shards[out.shard].breaker.Observe(1)
					lastErr = fmt.Errorf("server: shard %d returned a corrupt payload for %s (checksum mismatch)", out.shard, key)
				} else {
					s.shards[out.shard].breaker.Observe(0)
					return out.payload, out.sum, out.shard, nil
				}
			} else {
				lastErr = out.err
				if !errors.Is(out.err, errShardDead) {
					// Dead shards are already quarantined; everything else
					// (panic, timeout, simulation error) counts against the
					// breaker.
					s.shards[out.shard].breaker.Observe(1)
				}
			}
			if inflight == 0 && !launch() {
				return nil, 0, -1, lastErr
			}
		case <-hedgeC:
			if launch() {
				s.m.hedges.Inc()
			}
		case <-ctx.Done():
			s.m.timeouts.Inc()
			return nil, 0, -1, fmt.Errorf("server: job %s deadline exceeded: %w", key, ctx.Err())
		}
	}
}

func (s *Server) addPending(key string, c Cell) {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	e := s.pending[key]
	if e == nil {
		e = &pendingEntry{cell: c}
		s.pending[key] = e
	}
	e.n++
}

func (s *Server) removePending(key string) {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	if e := s.pending[key]; e != nil {
		if e.n--; e.n <= 0 {
			delete(s.pending, key)
		}
	}
}

func (s *Server) pendingCount() int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return len(s.pending)
}

// pendingCells snapshots the accepted-but-unanswered cells, sorted by key
// for a deterministic state file.
func (s *Server) pendingCells() []Cell {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	keys := make([]string, 0, len(s.pending))
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cells := make([]Cell, 0, len(keys))
	for _, k := range keys {
		cells = append(cells, s.pending[k].cell)
	}
	return cells
}

// Draining reports whether Drain has begun (readyz turns 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// Ready reports whether the server can accept work: not draining, and at
// least one shard alive with its breaker not open.
func (s *Server) Ready() bool {
	if s.draining.Load() {
		return false
	}
	for _, sh := range s.shards {
		if !sh.dead.Load() && sh.breaker.State() != quality.Open {
			return true
		}
	}
	return false
}

// StateVersion is the drain state file's schema version.
const StateVersion = 1

// stateFile is the drain snapshot: the cells that were accepted but not
// answered when the drain deadline hit. -resume re-submits them.
type stateFile struct {
	Version int    `json:"version"`
	Pending []Cell `json:"pending"`
}

// WriteState writes the drain snapshot atomically (temp file + rename), so
// a crash mid-write can never leave a torn state file.
func WriteState(path string, cells []Cell) error {
	if cells == nil {
		cells = []Cell{}
	}
	b, err := json.MarshalIndent(stateFile{Version: StateVersion, Pending: cells}, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadState reads a drain snapshot, enforcing the schema version.
func LoadState(path string) ([]Cell, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st stateFile
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("server: state file %s: %v (not a drain state file?)", path, err)
	}
	if st.Version != StateVersion {
		return nil, fmt.Errorf("server: state file %s is version %d, this binary reads %d", path, st.Version, StateVersion)
	}
	return st.Pending, nil
}

// Drain is the SIGTERM path: stop admission for good, wait (up to
// DrainTimeout) for in-flight jobs to finish — every completed one is
// already in the checkpoint — then snapshot whatever is left into the state
// file and cancel the stragglers. Returns the leftover cells. Idempotent:
// later calls return immediately.
func (s *Server) Drain(ctx context.Context) ([]Cell, error) {
	if !s.draining.CompareAndSwap(false, true) {
		return nil, nil
	}
	timeout := time.NewTimer(s.cfg.DrainTimeout)
	defer timeout.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
wait:
	for s.pendingCount() > 0 {
		select {
		case <-tick.C:
		case <-timeout.C:
			break wait
		case <-ctx.Done():
			break wait
		}
	}
	left := s.pendingCells()
	var err error
	if s.cfg.StatePath != "" {
		err = WriteState(s.cfg.StatePath, left)
	}
	// Abort the stragglers so their HTTP handlers return and the listener's
	// Shutdown can complete; their cells are safe in the state file.
	if len(left) > 0 {
		s.cancel()
	}
	return left, err
}

// Close hard-stops the server (workers exit, in-flight jobs abort) and
// releases the trace-store lock. Drain first for a graceful exit.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	if s.traceStore != nil {
		s.traceStore.Close()
	}
}

// Computes reports how many distinct results were actually computed (the
// exactly-once ledger the chaos test audits).
func (s *Server) Computes() int64 { return s.results.Computes() }

// Metrics exposes the server's registry (the /metrics endpoint renders it).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ShardStats is one shard's health snapshot.
type ShardStats struct {
	ID        int     `json:"id"`
	Dead      bool    `json:"dead"`
	State     string  `json:"breaker_state"`
	Estimate  float64 `json:"breaker_estimate"`
	Trips     uint64  `json:"breaker_trips"`
	Reentries uint64  `json:"breaker_reentries"`
	Queue     int     `json:"queue"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Draining   bool   `json:"draining"`
	Ready      bool   `json:"ready"`
	QueueDepth int64  `json:"queue_depth"`
	Pending    int    `json:"pending"`
	Accepted   uint64 `json:"accepted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	CacheHits  uint64 `json:"cache_hits"`
	Computes   int64  `json:"computes"`
	ShedRate   uint64 `json:"shed_rate"`
	ShedQueue  uint64 `json:"shed_queue"`
	Hedges     uint64 `json:"hedges"`
	Retries    uint64 `json:"retries"`
	Corrupt    uint64 `json:"corrupt"`
	Panics     uint64 `json:"panics"`

	// Trace-store health: replayed/recorded captures, captures condemned to
	// quarantine (then transparently re-recorded), and cells that degraded
	// to live execution because the store was unavailable. TraceScrub is
	// what the startup janitor did (nil without a trace dir).
	TraceReplays     uint64             `json:"trace_replays,omitempty"`
	TraceRecords     uint64             `json:"trace_records,omitempty"`
	TraceQuarantined uint64             `json:"trace_quarantined,omitempty"`
	TraceDegraded    uint64             `json:"trace_degraded,omitempty"`
	TraceScrub       *trace.ScrubReport `json:"trace_scrub,omitempty"`

	// DecodedCache snapshots the shared decoded-capture LRU (nil when the
	// cache is off): hit/miss/eviction counts plus current resident bytes.
	DecodedCache *trace.DecodedCacheStats `json:"decoded_cache,omitempty"`

	Shards []ShardStats `json:"shards"`
}

// Stats snapshots the server's health.
func (s *Server) Stats() Stats {
	st := Stats{
		Draining:   s.draining.Load(),
		Ready:      s.Ready(),
		QueueDepth: s.queueDepth.Load(),
		Pending:    s.pendingCount(),
		Accepted:   s.m.accepted.Value(),
		Completed:  s.m.completed.Value(),
		Failed:     s.m.failed.Value(),
		CacheHits:  s.m.cacheHits.Value(),
		Computes:   s.Computes(),
		ShedRate:   s.m.shedRate.Value(),
		ShedQueue:  s.m.shedQueue.Value(),
		Hedges:     s.m.hedges.Value(),
		Retries:    s.m.retries.Value(),
		Corrupt:    s.m.corrupt.Value(),
		Panics:     s.m.panics.Value(),

		TraceReplays: s.reg.CounterValue("trace.replays"),
		TraceRecords: s.reg.CounterValue("trace.records"),
		TraceQuarantined: s.reg.CounterValue("trace.quarantines") +
			s.reg.CounterValue("trace.scrub.quarantined"),
		TraceDegraded: s.reg.CounterValue("trace.degraded"),
	}
	if s.traceStore != nil {
		rep := s.traceStore.Report
		st.TraceScrub = &rep
	}
	if s.decoded != nil {
		dc := s.decoded.Stats()
		st.DecodedCache = &dc
	}
	// Mirror the degraded count onto the gauge so /metrics shows degraded
	// mode as a level alongside the raw counter.
	s.degradedGauge.Set(int64(st.TraceDegraded))
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, ShardStats{
			ID:        sh.id,
			Dead:      sh.dead.Load(),
			State:     sh.breaker.State().String(),
			Estimate:  sh.breaker.Estimate(),
			Trips:     sh.breaker.Trips(),
			Reentries: sh.breaker.Reentries(),
			Queue:     len(sh.jobs),
		})
	}
	return st
}
