package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"doppelganger/internal/sweep"
)

// testConfig is a small, fast server: one benchmark, tiny scale.
func testConfig() Config {
	return Config{
		Scale:        0.02,
		Shards:       2,
		ShardWorkers: 1,
		Only:         []string{"kmeans"},
		JobTimeout:   60 * time.Second,
		DrainTimeout: 50 * time.Millisecond,
	}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestSubmitMemoizesAndMatchesSerial proves the service core: a cell
// computes once, resubmissions are cache hits, and the payload is
// bit-identical to the same cell computed on a plain serial runner.
func TestSubmitMemoizesAndMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := mustServer(t, testConfig())
	cell := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}

	res, err := s.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("first submission reported cached")
	}
	if checksum(res.Payload) != res.Sum {
		t.Fatal("fresh result fails its own checksum")
	}

	again, err := s.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("resubmission was not served from the memo")
	}
	if !bytes.Equal(res.Payload, again.Payload) {
		t.Fatal("cached payload differs from the computed one")
	}
	if n := s.Computes(); n != 1 {
		t.Fatalf("Computes() = %d, want 1", n)
	}

	serial := sweep.NewRunner(0.02)
	serial.Only = []string{"kmeans"}
	want, err := executeCell(context.Background(), serial, cell)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, want) {
		t.Fatalf("server payload differs from serial runner:\n  server: %s\n  serial: %s", res.Payload, want)
	}
}

// TestSubmitValidates maps bad cells to ErrBadCell without touching a shard.
func TestSubmitValidates(t *testing.T) {
	s := mustServer(t, testConfig())
	_, err := s.Submit(context.Background(), Cell{Kind: "split-error", Bench: "nope", M: 14, Frac: 0.25})
	if !errors.Is(err, ErrBadCell) {
		t.Fatalf("err = %v, want ErrBadCell", err)
	}
	if s.m.accepted.Value() != 0 {
		t.Fatal("invalid cell was accepted")
	}
}

// TestAdmissionSheds verifies the token bucket refuses with a positive
// Retry-After once the burst is spent, without consuming shard capacity.
func TestAdmissionSheds(t *testing.T) {
	cfg := testConfig()
	cfg.AdmitRate = 0.0001 // effectively no refill during the test
	cfg.AdmitBurst = 2
	s := mustServer(t, cfg)
	cell := Cell{Kind: "baseline-timing", Bench: "kmeans"}

	// Spend the burst without computing: drain tokens via shed-free
	// cache-miss path is expensive, so spend them on invalid... no —
	// admission runs after validation. Submit the same cell twice
	// concurrently so both draw tokens but share one compute.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), cell); err != nil {
				t.Errorf("burst submission failed: %v", err)
			}
		}()
	}
	wg.Wait()

	_, err := s.Submit(context.Background(), cell)
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if overload.RetryAfter <= 0 {
		t.Fatalf("Retry-After = %v, want positive", overload.RetryAfter)
	}
	if s.m.shedRate.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.m.shedRate.Value())
	}
}

// TestQueueSheds verifies the global queue budget: with the queue full,
// submissions shed with 429 instead of piling up.
func TestQueueSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxQueue = 1
	s := mustServer(t, cfg)
	block := make(chan struct{})
	s.SetChaos(ChaosHooks{BeforeExec: func(int, string) { <-block }})
	defer close(block)

	go s.SubmitLocal(context.Background(), Cell{Kind: "baseline-timing", Bench: "kmeans"})
	// Wait until the job is actually queued/running so depth is visible.
	deadline := time.Now().Add(5 * time.Second)
	for s.queueDepth.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never reached a shard queue")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := s.Submit(context.Background(), Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.5})
	var overload *OverloadError
	if !errors.As(err, &overload) || !strings.Contains(overload.Reason, "queue") {
		t.Fatalf("err = %v, want queue-depth OverloadError", err)
	}
}

// TestKillShardFailsOver kills the primary shard for the benchmark and
// verifies the job still completes — on another shard, bit-identically.
func TestKillShardFailsOver(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := testConfig()
	cfg.Shards = 3
	s := mustServer(t, cfg)
	cell := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}

	primary := s.ring.order(cell.RouteKey())[0]
	s.KillShard(primary)

	res, err := s.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard == primary {
		t.Fatalf("result came from the dead shard %d", primary)
	}

	serial := sweep.NewRunner(0.02)
	serial.Only = []string{"kmeans"}
	want, err := executeCell(context.Background(), serial, cell)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, want) {
		t.Fatal("failover payload differs from serial runner")
	}
	if s.Stats().Shards[primary].Dead != true {
		t.Fatal("stats do not report the dead shard")
	}
}

// TestBreakerQuarantinesShard makes one shard panic on every job and
// verifies repeated failures trip its breaker open, after which dispatch
// stops consulting it (jobs keep succeeding elsewhere).
func TestBreakerQuarantinesShard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := testConfig()
	cfg.Shards = 2
	cfg.Retries = 3
	cfg.Breaker.Budget = 0.5 // est exceeds 0.5 on the second straight failure
	s := mustServer(t, cfg)
	cell := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}
	victim := s.ring.order(cell.RouteKey())[0]
	s.SetChaos(ChaosHooks{BeforeExec: func(shard int, key string) {
		if shard == victim {
			panic("chaos: worker crash")
		}
	}})

	// Distinct cells (same benchmark, same victim primary) so each
	// submission is a fresh compute that first fails on the victim.
	for _, frac := range []float64{0.5, 0.25, 0.125} {
		c := cell
		c.Frac = frac
		if _, err := s.SubmitLocal(context.Background(), c); err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
	}
	st := s.Stats().Shards[victim]
	if st.Trips == 0 || st.State != "open" {
		t.Fatalf("victim shard not quarantined: %+v", st)
	}
	if s.m.panics.Value() < 2 {
		t.Fatalf("panic shield saw %d panics, want >= 2", s.m.panics.Value())
	}
	if s.m.breakerDenied.Value() == 0 {
		t.Fatal("dispatch never skipped the quarantined shard")
	}
}

// TestDrainSnapshotsPending starts a job that outlives the drain window and
// verifies Drain writes its cell to the state file, which LoadState round-
// trips; the straggler is then aborted so the server can exit.
func TestDrainSnapshotsPending(t *testing.T) {
	cfg := testConfig()
	cfg.StatePath = filepath.Join(t.TempDir(), "state.json")
	s := mustServer(t, cfg)
	release := make(chan struct{})
	s.SetChaos(ChaosHooks{BeforeExec: func(int, string) {
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
	}})

	cell := Cell{Kind: "baseline-timing", Bench: "kmeans"}
	errc := make(chan error, 1)
	go func() {
		_, err := s.SubmitLocal(context.Background(), cell)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.pendingCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	left, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || left[0] != cell {
		t.Fatalf("drain left %+v, want the hanging cell", left)
	}
	loaded, err := LoadState(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != cell {
		t.Fatalf("state file round-trip = %+v, want %+v", loaded, cell)
	}
	close(release)
	if err := <-errc; err == nil {
		t.Fatal("aborted straggler reported success")
	}
	// Once draining, new submissions are refused for good.
	if _, err := s.Submit(context.Background(), cell); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}

// TestHTTPEndpoints exercises the wire: submit round-trip, health, metrics,
// stats, and the error mappings (400 bad cell, 429 with Retry-After, 503
// when draining).
func TestHTTPEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := testConfig()
	cfg.AdmitBurst = 2
	cfg.AdmitRate = 0.0001
	s := mustServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(`{"kind":"split-error","bench":"kmeans","m":14,"frac":0.25}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Key != "split/kmeans/14/0.25/error" || checksum(res.Payload) != res.Sum {
		t.Fatalf("bad result envelope: %+v", res)
	}

	if resp = post(`{"kind":"split-error","bench":"nope","m":14,"frac":0.25}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid bench status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	if resp = post(`{"kind":"split-error","bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Burn the remaining token, then expect 429 + Retry-After.
	post(`{"kind":"split-error","bench":"kmeans","m":14,"frac":0.25}`).Body.Close()
	resp = post(`{"kind":"split-error","bench":"kmeans","m":14,"frac":0.25}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()

	for _, path := range []string{"/healthz", "/readyz", "/v1/stats", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, r.StatusCode)
		}
		r.Body.Close()
	}

	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", r.StatusCode)
	}
	r.Body.Close()
	resp = post(`{"kind":"split-error","bench":"kmeans","m":14,"frac":0.25}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}
