package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doppelganger/internal/trace"
)

// TestServerScrubsTraceDirAtStartup proves the server runs the startup
// janitor before accepting work: a damaged capture and an orphaned temp
// planted in the trace directory are gone by the time New returns, the
// scrub's counts surface in /v1/stats, and the directory lock is released
// by Close (a second server can scrub again).
func TestServerScrubsTraceDirAtStartup(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.dgt"), []byte("definitely not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "w.dgt.tmp-9"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.TraceDir = dir
	cfg.TraceVerify = trace.VerifyOpen
	cfg.Log = nil
	s := mustServer(t, cfg)

	st := s.Stats()
	if st.TraceScrub == nil {
		t.Fatal("stats carry no scrub report")
	}
	if st.TraceScrub.Quarantined != 1 || st.TraceScrub.TempsRemoved != 1 {
		t.Fatalf("scrub report %+v, want 1 quarantined / 1 temp removed", *st.TraceScrub)
	}
	if st.TraceQuarantined == 0 {
		t.Error("scrub quarantines not folded into the stats counter")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.dgt")); !os.IsNotExist(err) {
		t.Error("damaged capture still present after startup")
	}
	if _, err := os.Stat(filepath.Join(dir, trace.QuarantineDir, "bad.dgt")); err != nil {
		t.Errorf("damaged capture not quarantined: %v", err)
	}

	// The report also renders over HTTP.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var got Stats
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.TraceScrub == nil || got.TraceScrub.Quarantined != 1 {
		t.Errorf("/v1/stats scrub report = %+v", got.TraceScrub)
	}

	// While the server lives, a second opener must skip the scrub (shared
	// directory); after Close the lock is free again.
	other, err := trace.OpenStore(trace.OS, dir, trace.VerifyOpen)
	if err != nil {
		t.Fatal(err)
	}
	if !other.Report.Skipped {
		t.Error("second opener scrubbed a directory the live server holds")
	}
	other.Close()
}

// TestServerTraceDirUnusable pins the fatal path: a server asked to use a
// trace directory it cannot create must fail loudly at New, naming the
// directory — not limp along silently without the cache it was asked for.
func TestServerTraceDirUnusable(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.TraceDir = filepath.Join(blocker, "traces")
	cfg.Log = nil
	s, err := New(cfg)
	if err == nil {
		s.Close()
		t.Fatal("server started over an uncreatable trace dir")
	}
	if !strings.Contains(err.Error(), "traces") {
		t.Errorf("error does not name the directory: %v", err)
	}
}

// TestServerDecodedCacheAndDigestRouting covers the shared decoded-capture
// layer above the trace store: cells route by benchmark until their capture
// exists, then by its digest; a warm restart replays through the decoded
// cache; and the cache's counters surface in /v1/stats and Stats().
func TestServerDecodedCacheAndDigestRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cell := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}

	cfg := testConfig()
	cfg.TraceDir = dir
	cfg.TraceVerify = trace.VerifyOpen
	cfg.DecodedCacheMB = 64
	cfg.ReplayBatch = 8
	cfg.Log = nil

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cold directory: the capture isn't on disk, so routing falls back to
	// the benchmark key.
	if got := first.routeKey(cell); got != cell.RouteKey() {
		t.Errorf("cold routeKey = %q, want fallback %q", got, cell.RouteKey())
	}
	res1, err := first.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	// Recorded: the cell now routes by its capture's digest, and a cell
	// kind with no single capture keeps the fallback.
	if got := first.routeKey(cell); !strings.HasPrefix(got, "digest:") {
		t.Errorf("warm routeKey = %q, want digest-prefixed", got)
	}
	fig := Cell{Kind: "figure", Figure: "fig9"}
	if got := first.routeKey(fig); got != fig.RouteKey() {
		t.Errorf("figure routeKey = %q, want fallback %q", got, fig.RouteKey())
	}
	first.Close()

	second := mustServer(t, cfg)
	res2, err := second.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if string(res1.Payload) != string(res2.Payload) {
		t.Fatalf("decoded-cache replay diverged:\n%s\nvs\n%s", res1.Payload, res2.Payload)
	}
	st := second.Stats()
	if st.TraceReplays == 0 {
		t.Error("second server replayed nothing")
	}
	if st.DecodedCache == nil {
		t.Fatal("stats carry no decoded-cache snapshot")
	}
	if st.DecodedCache.Entries == 0 || st.DecodedCache.Bytes == 0 {
		t.Errorf("decoded cache empty after a warm replay: %+v", *st.DecodedCache)
	}

	// The snapshot also renders over HTTP, and the cache's counters are on
	// the shared registry for /metrics.
	rec := httptest.NewRecorder()
	second.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var got Stats
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.DecodedCache == nil || got.DecodedCache.Entries == 0 {
		t.Errorf("/v1/stats decoded cache = %+v", got.DecodedCache)
	}
	if second.reg.CounterValue("trace.decoded_cache.misses") == 0 {
		t.Error("decoded-cache counters not attached to the server registry")
	}
}

// TestServerTraceRoundTrip drives one cell through a trace-dir-backed
// server twice across restarts: the second server replays the first's
// capture bit-identically and reports the replay in its stats.
func TestServerTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cell := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}

	cfg := testConfig()
	cfg.TraceDir = dir
	cfg.TraceVerify = trace.VerifyOpen
	cfg.Log = nil

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := first.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if n := first.Stats().TraceRecords; n == 0 {
		t.Error("first server recorded no captures")
	}
	first.Close()

	second := mustServer(t, cfg)
	res2, err := second.Submit(context.Background(), cell)
	if err != nil {
		t.Fatal(err)
	}
	if string(res1.Payload) != string(res2.Payload) {
		t.Fatalf("replayed payload diverged:\n%s\nvs\n%s", res1.Payload, res2.Payload)
	}
	st := second.Stats()
	if st.TraceReplays == 0 {
		t.Error("second server replayed nothing")
	}
	if st.TraceScrub == nil || st.TraceScrub.Verified == 0 {
		t.Errorf("second server's scrub verified nothing: %+v", st.TraceScrub)
	}
}
