package server

import (
	"fmt"
	"testing"
)

// TestRingOrderComplete verifies every key gets a full preference order:
// all shards, each exactly once, deterministically.
func TestRingOrderComplete(t *testing.T) {
	r := newRing(5, 0)
	for _, key := range []string{"kmeans", "jpeg", "figure/fig10", ""} {
		seq := r.order(key)
		if len(seq) != 5 {
			t.Fatalf("order(%q) = %v, want all 5 shards", key, seq)
		}
		seen := map[int]bool{}
		for _, s := range seq {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("order(%q) = %v: out of range or duplicate", key, seq)
			}
			seen[s] = true
		}
		again := r.order(key)
		for i := range seq {
			if seq[i] != again[i] {
				t.Fatalf("order(%q) not deterministic: %v then %v", key, seq, again)
			}
		}
	}
}

// TestRingSpread verifies virtual nodes spread primary ownership across
// shards: over many keys no shard owns everything and none starves to zero.
func TestRingSpread(t *testing.T) {
	const shards, keys = 4, 4096
	r := newRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("bench-%d", i))[0]]++
	}
	for s, n := range counts {
		// Even would be 1024; accept a generous band (consistent hashing
		// with 64 points per shard stays well inside it).
		if n < keys/shards/4 || n > keys*3/shards {
			t.Fatalf("shard %d owns %d of %d keys: spread too skewed (%v)", s, n, keys, counts)
		}
	}
}

// TestRingStability verifies the consistent-hashing property: growing the
// ring by one shard only remaps the keys the new shard takes — every other
// key keeps its primary.
func TestRingStability(t *testing.T) {
	const keys = 2048
	small, big := newRing(4, 0), newRing(5, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("bench-%d", i)
		before, after := small.order(key)[0], big.order(key)[0]
		if before != after {
			if after != 4 {
				t.Fatalf("key %q moved from shard %d to %d, not to the new shard", key, before, after)
			}
			moved++
		}
	}
	// The new shard should take roughly 1/5 of the keys, never the majority.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding a shard moved %d of %d keys", moved, keys)
	}
}

// TestRingEmpty covers the degenerate no-shard ring.
func TestRingEmpty(t *testing.T) {
	if seq := newRing(0, 0).order("x"); len(seq) != 0 {
		t.Fatalf("empty ring returned %v", seq)
	}
}
