package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"doppelganger/internal/quality"
	"doppelganger/internal/sweep"
)

// errShardDead marks outcomes from a killed shard; the dispatcher treats it
// like any other shard failure (observe, retry elsewhere) but the shard is
// additionally skipped by future candidate selection.
var errShardDead = errors.New("server: shard is dead")

// errShardBusy is a non-blocking enqueue refusal: the shard's queue is full.
var errShardBusy = errors.New("server: shard queue full")

// ChaosHooks are the fault-injection points the chaos test uses. Both hooks
// run on the shard's worker goroutine, inside its panic shield.
type ChaosHooks struct {
	// BeforeExec runs before the cell computes; it may sleep (latency
	// injection) or panic (worker crash). The shield converts the panic to a
	// job failure and the shard survives.
	BeforeExec func(shard int, key string)
	// CorruptPayload, when non-nil, may mutate the payload bytes AFTER the
	// checksum was sealed — modeling wire or memory corruption between the
	// shard and the dispatcher. Return the (possibly rewritten) bytes.
	CorruptPayload func(shard int, key string, payload []byte) []byte
}

// shard is one worker pool: a bounded job queue, ShardWorkers goroutines
// draining it into a private sweep.Runner, and a circuit breaker fed by the
// dispatcher. The runner is per-shard on purpose — its memo caches and warm
// baseline artifacts are isolated, so a quarantined or killed shard cannot
// poison results for the others (the shared checkpoint persists only
// verified successes).
type shard struct {
	id      int
	runner  *sweep.Runner
	breaker *quality.Breaker
	jobs    chan *job
	ctx     context.Context // canceled by Kill or server close
	kill    context.CancelFunc
	dead    atomic.Bool
}

// job is one dispatch attempt traveling to a shard. done is buffered for
// every copy the dispatcher may enqueue (primary + hedges), so a worker's
// send never blocks even when the dispatcher has already moved on.
type job struct {
	cell Cell
	key  string
	ctx  context.Context // the job deadline
	done chan outcome
}

// outcome is a shard's reply: sealed payload bytes and their checksum, or an
// error.
type outcome struct {
	shard   int
	payload []byte
	sum     uint64
	err     error
}

// loop drains the shard's queue. A dead shard keeps answering — with
// errShardDead — so queued jobs fail fast to the dispatcher instead of
// hanging; the loop only exits when the server itself shuts down.
func (sh *shard) loop(s *Server) {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-sh.jobs:
			out := sh.exec(s, j)
			s.queueDepth.Add(-1)
			s.depthGauge.Add(-1)
			select {
			case j.done <- out:
			default: // dispatcher already has an answer for this attempt
			}
		}
	}
}

// exec runs one job under the panic shield, the chaos hooks, and a context
// that dies with either the job deadline or the shard (a killed shard
// aborts its in-flight simulations mid-access).
func (sh *shard) exec(s *Server, j *job) (out outcome) {
	out.shard = sh.id
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Inc()
			out = outcome{shard: sh.id, err: fmt.Errorf("server: shard %d panic on %s: %v\n%s", sh.id, j.key, p, debug.Stack())}
		}
	}()
	if sh.dead.Load() {
		out.err = errShardDead
		return out
	}
	if hook := s.chaos.BeforeExec; hook != nil {
		hook(sh.id, j.key)
	}
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	stop := context.AfterFunc(sh.ctx, cancel)
	defer stop()

	payload, err := executeCell(ctx, sh.runner, j.cell)
	if err != nil {
		if sh.dead.Load() {
			// The kill raced the simulation: report the cause, not the symptom.
			err = fmt.Errorf("%w (in-flight job aborted: %v)", errShardDead, err)
		}
		out.err = err
		return out
	}
	out.sum = checksum(payload)
	if hook := s.chaos.CorruptPayload; hook != nil {
		payload = hook(sh.id, j.key, payload)
	}
	out.payload = payload
	return out
}

// enqueue offers a job to the shard without blocking.
func (sh *shard) enqueue(s *Server, j *job) error {
	if sh.dead.Load() {
		return errShardDead
	}
	select {
	case sh.jobs <- j:
		s.queueDepth.Add(1)
		s.depthGauge.Add(1)
		return nil
	default:
		return errShardBusy
	}
}
