package server

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doppelganger/internal/sweep"
)

// TestFigureCell submits whole-figure jobs (the coarse end of the job
// spectrum) through the full pipeline: the static tables are cheap, and the
// payload must carry their JSON renderings.
func TestFigureCell(t *testing.T) {
	cfg := testConfig()
	var logBuf bytes.Buffer
	cfg.Log = &logBuf // exercises the shared syncWriter path
	s := mustServer(t, cfg)
	for _, fig := range []string{"table3", "fig13"} {
		res, err := s.SubmitLocal(context.Background(), Cell{Kind: "figure", Figure: fig})
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		var p struct {
			Kind   string            `json:"kind"`
			Tables []json.RawMessage `json:"tables"`
		}
		if err := json.Unmarshal(res.Payload, &p); err != nil {
			t.Fatalf("figure %s payload: %v", fig, err)
		}
		if p.Kind != "figure" || len(p.Tables) == 0 {
			t.Fatalf("figure %s payload carries no tables: %s", fig, res.Payload)
		}
	}
	if s.Metrics() == nil {
		t.Fatal("Metrics() returned nil")
	}
}

// TestExecuteCellRemainingKinds drives the executeCell arms the other tests
// do not reach (unified timing, guarded and unguarded quality timing) on a
// bare runner, pinning that each produces a timing payload.
func TestExecuteCellRemainingKinds(t *testing.T) {
	r := sweep.NewRunner(0.02)
	r.Only = []string{"kmeans"}
	cells := []Cell{
		{Kind: "uni-timing", Bench: "kmeans", M: 14, Frac: 0.5},
		{Kind: "quality-timing", Bench: "kmeans", Org: "doppel", Rate: 1e-4},
		{Kind: "quality-timing", Bench: "kmeans", Org: "doppel", Rate: 1e-4, Guarded: true},
	}
	for _, c := range cells {
		b, err := executeCell(context.Background(), r, c)
		if err != nil {
			t.Fatalf("%s: %v", c.Key(), err)
		}
		var p struct {
			Timing *sweep.TimingSummary `json:"timing"`
		}
		if err := json.Unmarshal(b, &p); err != nil || p.Timing == nil {
			t.Fatalf("%s: no timing in payload %s (%v)", c.Key(), b, err)
		}
	}
	if _, err := executeCell(context.Background(), r, Cell{Kind: "figure", Figure: "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestStateFileErrors pins the drain state file's failure modes: missing
// file, non-JSON garbage, and a future schema version are all distinct,
// actionable errors.
func TestStateFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadState(filepath.Join(dir, "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v, want ErrNotExist", err)
	}
	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte("not json"), 0o644)
	if _, err := LoadState(garbage); err == nil || !strings.Contains(err.Error(), "state file") {
		t.Fatalf("garbage file: %v", err)
	}
	future := filepath.Join(dir, "future.json")
	os.WriteFile(future, []byte(`{"version":99,"pending":[]}`), 0o644)
	if _, err := LoadState(future); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}

	// Round trip, including the nil-slice normalization.
	path := filepath.Join(dir, "state.json")
	if err := WriteState(path, nil); err != nil {
		t.Fatal(err)
	}
	cells, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("empty state loaded %d cells", len(cells))
	}
}

// TestRetryAfterSeconds pins the header rendering: round up, floor 1.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {time.Millisecond, "1"}, {time.Second, "1"},
		{1100 * time.Millisecond, "2"}, {3 * time.Second, "3"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %s, want %s", tc.d, got, tc.want)
		}
	}
}
