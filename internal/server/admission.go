package server

import (
	"sync"
	"time"
)

// tokenBucket is the admission throttle: submissions draw one token each,
// tokens refill at `rate` per second up to `burst`. When empty, admit
// reports how long until a token will exist — the Retry-After the 429
// response carries, so well-behaved clients back off exactly as long as
// needed instead of guessing.
//
// The clock is injectable so the admission tests are deterministic.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// admit draws one token. On refusal it returns the wait until the bucket
// will next hold a whole token (never less than a millisecond, so the
// Retry-After header is non-zero).
func (b *tokenBucket) admit() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
