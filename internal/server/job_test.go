package server

import (
	"strings"
	"testing"
)

func TestCellValidate(t *testing.T) {
	cases := []struct {
		name string
		cell Cell
		want string // "" = valid; otherwise a required error substring
	}{
		{"split ok", Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}, ""},
		{"uni timing ok", Cell{Kind: "uni-timing", Bench: "jpeg", M: 14, Frac: 0.5}, ""},
		{"fault ok", Cell{Kind: "fault-error", Bench: "kmeans", Org: "doppel", Rate: 1e-4}, ""},
		{"quality ok", Cell{Kind: "quality-error", Bench: "kmeans", Org: "uni", Rate: 1e-4}, ""},
		{"quality timing ok", Cell{Kind: "quality-timing", Bench: "kmeans", Org: "doppel", Rate: 1e-4, Guarded: true}, ""},
		{"baseline ok", Cell{Kind: "baseline-timing", Bench: "inversek2j"}, ""},
		{"figure ok", Cell{Kind: "figure", Figure: "fig10"}, ""},
		{"unknown kind", Cell{Kind: "warp-drive", Bench: "kmeans"}, "kind"},
		{"unknown bench", Cell{Kind: "split-error", Bench: "nope", M: 14, Frac: 0.25}, "bench"},
		{"map bits zero", Cell{Kind: "split-error", Bench: "kmeans", Frac: 0.25}, "m must be"},
		{"map bits huge", Cell{Kind: "uni-error", Bench: "kmeans", M: 48, Frac: 0.25}, "m must be"},
		{"frac zero", Cell{Kind: "split-error", Bench: "kmeans", M: 14}, "frac"},
		{"frac above one", Cell{Kind: "split-timing", Bench: "kmeans", M: 14, Frac: 1.5}, "frac"},
		{"split frac off-geometry", Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.1}, "geometry"},
		{"uni frac off-geometry", Cell{Kind: "uni-timing", Bench: "kmeans", M: 14, Frac: 0.21}, "geometry"},
		{"split frac eighth ok", Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.125}, ""},
		{"bad fault org", Cell{Kind: "fault-error", Bench: "kmeans", Org: "weird", Rate: 1e-4}, "org"},
		{"baseline not guarded", Cell{Kind: "quality-error", Bench: "kmeans", Org: "baseline", Rate: 1e-4}, "org"},
		{"rate above one", Cell{Kind: "fault-error", Bench: "kmeans", Org: "doppel", Rate: 1.5}, "rate"},
		{"unknown figure", Cell{Kind: "figure", Figure: "fig99"}, "figure"},
	}
	for _, tc := range cases {
		err := tc.cell.Validate()
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: accepted", tc.name)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCellKey pins the key grammar to the runner's memo keys plus the
// checkpoint's result-kind suffix — resume and server memoization both
// depend on these exact spellings.
func TestCellKey(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}, "split/kmeans/14/0.25/error"},
		{Cell{Kind: "split-timing", Bench: "kmeans", M: 14, Frac: 0.25}, "split/kmeans/14/0.25/timing"},
		{Cell{Kind: "uni-error", Bench: "jpeg", M: 14, Frac: 0.5}, "uni/jpeg/14/0.5/error"},
		{Cell{Kind: "fault-error", Bench: "kmeans", Org: "doppel", Rate: 1e-4}, "fault/doppel/kmeans/0.0001/error"},
		{Cell{Kind: "quality-error", Bench: "kmeans", Org: "uni", Rate: 1e-4}, "quality/uni/kmeans/0.0001/quality"},
		{Cell{Kind: "quality-timing", Bench: "kmeans", Org: "doppel", Rate: 1e-4}, "quality/doppel/kmeans/0.0001/time-off/timing"},
		{Cell{Kind: "quality-timing", Bench: "kmeans", Org: "doppel", Rate: 1e-4, Guarded: true}, "quality/doppel/kmeans/0.0001/time-on/timing"},
		{Cell{Kind: "baseline-timing", Bench: "sobel"}, "base/sobel/timing"},
		{Cell{Kind: "figure", Figure: "fig10"}, "figure/fig10"},
	}
	for _, tc := range cases {
		if got := tc.cell.Key(); got != tc.want {
			t.Errorf("Key(%+v) = %q, want %q", tc.cell, got, tc.want)
		}
	}
}

// TestCellRouteKey verifies cells route by benchmark (memo locality: a
// benchmark's cells share its warm baseline) and figures by their own name.
func TestCellRouteKey(t *testing.T) {
	a := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}
	b := Cell{Kind: "fault-error", Bench: "kmeans", Org: "doppel", Rate: 1e-4}
	if a.RouteKey() != b.RouteKey() {
		t.Fatalf("cells of one benchmark route apart: %q vs %q", a.RouteKey(), b.RouteKey())
	}
	f := Cell{Kind: "figure", Figure: "fig10"}
	if f.RouteKey() != "figure/fig10" {
		t.Fatalf("figure route key = %q", f.RouteKey())
	}
}

// TestChecksumDetectsMutation is the corruption-detection primitive: any
// byte flip changes the sum.
func TestChecksumDetectsMutation(t *testing.T) {
	payload := []byte(`{"key":"split/kmeans/14/0.25/error","kind":"split-error","bits":4591870180066957722}`)
	sum := checksum(payload)
	for i := range payload {
		mutated := append([]byte(nil), payload...)
		mutated[i] ^= 0x20
		if checksum(mutated) == sum {
			t.Fatalf("flip at byte %d not detected", i)
		}
	}
}

// TestContentHashSeparatesConfigs verifies the memo key covers the knobs
// that change result bytes: different cells, scales and seeds never collide
// (on this small grid), while the same config hashes identically.
func TestContentHashSeparatesConfigs(t *testing.T) {
	mk := func(cfg Config) *Server {
		return &Server{cfg: cfg.withDefaults()}
	}
	a := mk(Config{Scale: 0.02})
	cell := Cell{Kind: "split-error", Bench: "kmeans", M: 14, Frac: 0.25}
	if a.contentHash(cell) != mk(Config{Scale: 0.02}).contentHash(cell) {
		t.Fatal("same config, same cell: hashes differ")
	}
	seen := map[string]string{}
	add := func(label, h string) {
		if prev, dup := seen[h]; dup {
			t.Fatalf("content hash collision: %s and %s", prev, label)
		}
		seen[h] = label
	}
	add("base", a.contentHash(cell))
	add("other cell", a.contentHash(Cell{Kind: "split-error", Bench: "kmeans", M: 13, Frac: 0.25}))
	add("other kind", a.contentHash(Cell{Kind: "split-timing", Bench: "kmeans", M: 14, Frac: 0.25}))
	add("other scale", mk(Config{Scale: 0.05}).contentHash(cell))
	add("other fault seed", mk(Config{Scale: 0.02, FaultSeed: 7}).contentHash(cell))
	add("other quality seed", mk(Config{Scale: 0.02, QualitySeed: 7}).contentHash(cell))
	add("other budget", mk(Config{Scale: 0.02, QualityBudget: 0.1}).contentHash(cell))
}
