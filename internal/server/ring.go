package server

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over shard indices. Each shard owns
// `replicas` virtual points, so load spreads evenly and adding or removing a
// shard only remaps the keys adjacent to its points. The ring gives every
// route key a full preference order — the shard owning the first point at or
// after the key's hash, then the next distinct shard clockwise, and so on —
// which is exactly what hedged dispatch and retry need: the primary placement
// keeps same-benchmark cells together (shared warm baselines), and the
// fallbacks are deterministic rather than random.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas is enough virtual points that a handful of shards spread
// within a few percent of even.
const defaultReplicas = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newRing builds the ring for n shards.
func newRing(n, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, n*replicas), shards: n}
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d-point-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// order returns every shard exactly once, in the key's preference order:
// walk clockwise from the key's hash collecting the first point of each
// distinct shard. The slice is freshly allocated (callers rotate it).
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.shards)
	if len(r.points) == 0 {
		return out
	}
	seen := make([]bool, r.shards)
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
