package server

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"doppelganger/internal/quality"
	"doppelganger/internal/sweep"
)

// chaosCells is the job grid the chaos test pushes through the server: two
// benchmarks, error and timing cells, fault and quality cells — every
// executeCell code path except whole figures.
func chaosCells() []Cell {
	var cells []Cell
	for _, bench := range []string{"kmeans", "inversek2j"} {
		cells = append(cells,
			Cell{Kind: "baseline-timing", Bench: bench},
			Cell{Kind: "split-error", Bench: bench, M: 14, Frac: 0.25},
			Cell{Kind: "split-timing", Bench: bench, M: 14, Frac: 0.25},
			Cell{Kind: "uni-error", Bench: bench, M: 14, Frac: 0.5},
			Cell{Kind: "fault-error", Bench: bench, Org: "doppel", Rate: 1e-4},
			Cell{Kind: "quality-error", Bench: bench, Org: "doppel", Rate: 1e-4},
		)
	}
	return cells
}

// TestChaosExactlyOnceBitIdentical is the tentpole proof. Under shard kill
// mid-job, injected latency, and response corruption, every accepted job
// must (a) receive exactly one response, (b) have been computed exactly once
// at the result layer, and (c) carry bytes identical to a plain serial
// runner computing the same cell — the determinism contract survives every
// failover path.
func TestChaosExactlyOnceBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	const submitsPerCell = 3
	cfg := Config{
		Scale:        0.02,
		Shards:       3,
		ShardWorkers: 2,
		Only:         []string{"kmeans", "inversek2j"},
		Retries:      4,
		RetryBackoff: 10 * time.Millisecond,
		HedgeAfter:   300 * time.Millisecond,
		JobTimeout:   120 * time.Second,
		FaultSeed:    42,
		QualitySeed:  43,
		// A forgiving breaker: the chaos injects bounded failures per shard,
		// and the test must never wedge with every shard quarantined.
		Breaker: quality.BreakerConfig{Budget: 0.8, Cooldown: 4},
	}
	s := mustServer(t, cfg)

	// Deterministic chaos: hash (shard, key) to decide who suffers what.
	// Panics and corruption strike each (shard, key) pair at most once, so
	// the bounded retry/hedge budget always wins eventually; latency is
	// unconditional on its victims to exercise hedging repeatedly.
	chaosHash := func(shard int, key, salt string) uint64 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%s", shard, key, salt)
		return h.Sum64()
	}
	var once sync.Map // (shard|key|kind) -> struck already
	strikeOnce := func(shard int, key, kind string) bool {
		_, loaded := once.LoadOrStore(fmt.Sprintf("%d|%s|%s", shard, key, kind), true)
		return !loaded
	}
	s.SetChaos(ChaosHooks{
		BeforeExec: func(shard int, key string) {
			if chaosHash(shard, key, "latency")%3 == 0 {
				time.Sleep(50 * time.Millisecond)
			}
			if chaosHash(shard, key, "panic")%4 == 0 && strikeOnce(shard, key, "panic") {
				panic("chaos: worker crash mid-job")
			}
		},
		CorruptPayload: func(shard int, key string, payload []byte) []byte {
			if chaosHash(shard, key, "corrupt")%4 == 0 && strikeOnce(shard, key, "corrupt") {
				mutated := append([]byte(nil), payload...)
				mutated[int(chaosHash(shard, key, "byte"))%len(mutated)] ^= 0xff
				return mutated
			}
			return payload
		},
	})

	cells := chaosCells()
	victim := s.ring.order("kmeans")[0]

	type reply struct {
		cell int
		res  *Result
		err  error
	}
	replies := make(chan reply, len(cells)*submitsPerCell)
	var wg sync.WaitGroup
	for i, c := range cells {
		for k := 0; k < submitsPerCell; k++ {
			wg.Add(1)
			go func(i int, c Cell) {
				defer wg.Done()
				res, err := s.SubmitLocal(context.Background(), c)
				replies <- reply{cell: i, res: res, err: err}
			}(i, c)
		}
	}
	// Kill one shard while jobs are in flight: its in-progress simulations
	// abort and its queue fails fast; dispatch must fail everything over.
	time.Sleep(100 * time.Millisecond)
	s.KillShard(victim)
	wg.Wait()
	close(replies)

	// (a) Exactly one response per accepted submission, all successful.
	payloads := make(map[int][][]byte)
	for r := range replies {
		if r.err != nil {
			t.Fatalf("cell %s failed under chaos: %v", cells[r.cell].Key(), r.err)
		}
		if checksum(r.res.Payload) != r.res.Sum {
			t.Fatalf("cell %s: delivered payload fails its checksum", cells[r.cell].Key())
		}
		payloads[r.cell] = append(payloads[r.cell], r.res.Payload)
	}
	total := 0
	for i := range cells {
		got := payloads[i]
		if len(got) != submitsPerCell {
			t.Fatalf("cell %s: %d responses, want %d", cells[i].Key(), len(got), submitsPerCell)
		}
		for _, p := range got[1:] {
			if !bytes.Equal(p, got[0]) {
				t.Fatalf("cell %s: concurrent submissions saw different payloads", cells[i].Key())
			}
		}
		total += len(got)
	}
	if want := len(cells) * submitsPerCell; total != want {
		t.Fatalf("responses = %d, want %d", total, want)
	}

	// (b) Exactly-once at the result layer: one compute per distinct cell,
	// no matter how many submissions, retries, hedges or corruptions.
	if n := s.Computes(); n != int64(len(cells)) {
		t.Fatalf("Computes() = %d, want %d (exactly once per distinct cell)", n, len(cells))
	}
	st := s.Stats()
	if st.Accepted != uint64(len(cells)*submitsPerCell) || st.Completed != st.Accepted {
		t.Fatalf("accounting: accepted %d completed %d, want both %d", st.Accepted, st.Completed, len(cells)*submitsPerCell)
	}
	if !st.Shards[victim].Dead {
		t.Fatal("killed shard not reported dead")
	}

	// The chaos actually happened: panics and corruptions were detected and
	// survived (counts are deterministic given the hash, but asserting >0
	// keeps the test honest about exercising the machinery).
	if st.Panics == 0 {
		t.Fatal("chaos injected no panics — the hooks are dead code")
	}
	if st.Corrupt == 0 {
		t.Fatal("chaos injected no corruption — the checksum path is untested")
	}

	// (c) Bit-identical to a serial run: a fresh runner with the same knobs
	// (same seeds, same scale) must produce the same canonical bytes for
	// every cell.
	serial := sweep.NewRunner(cfg.Scale)
	serial.Only = cfg.Only
	serial.FaultSeed = cfg.FaultSeed
	serial.QualitySeed = cfg.QualitySeed
	for i, c := range cells {
		want, err := executeCell(context.Background(), serial, c)
		if err != nil {
			t.Fatalf("serial %s: %v", c.Key(), err)
		}
		if !bytes.Equal(payloads[i][0], want) {
			t.Fatalf("cell %s: server bytes differ from serial runner\n  server: %s\n  serial: %s",
				c.Key(), payloads[i][0], want)
		}
	}
}
