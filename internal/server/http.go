package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxBodyBytes bounds a job request body; cells are tiny.
const maxBodyBytes = 1 << 20

// errorBody is every non-200 response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs  — submit one cell, respond with its Result envelope
//	GET  /healthz  — liveness (200 while the process runs)
//	GET  /readyz   — readiness (503 once draining or fully quarantined)
//	GET  /v1/stats — health snapshot (shards, breakers, counters)
//	GET  /metrics  — the metrics registry as JSONL
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Ready() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		reason := "no live shard"
		if s.Draining() {
			reason = "draining"
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: reason})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Refresh the degraded-mode gauge from the counters before
		// rendering, so scrapes see the current level.
		s.degradedGauge.Set(int64(s.reg.CounterValue("trace.degraded")))
		w.Header().Set("Content-Type", "application/jsonl")
		s.reg.WriteJSONL(w, "server")
	})
	return mux
}

// handleSubmit decodes one Cell and maps Submit's error taxonomy onto HTTP:
// 400 invalid cell, 429 shed (with Retry-After), 503 draining, 504 job
// deadline, 500 exhausted retries.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var c Cell
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	res, err := s.Submit(r.Context(), c)
	if err == nil {
		writeJSON(w, http.StatusOK, res)
		return
	}
	var overload *OverloadError
	switch {
	case errors.Is(err, ErrBadCell):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.As(err, &overload):
		w.Header().Set("Retry-After", retryAfterSeconds(overload.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}
