package server

import (
	"testing"
	"time"
)

// TestTokenBucket drives the bucket on a fake clock: the burst admits, an
// empty bucket refuses with an accurate Retry-After, and refills restore
// admission without exceeding the burst cap.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(10, 3) // 10 tokens/s, burst 3
	b.now = func() time.Time { return now }
	b.last = now

	for i := 0; i < 3; i++ {
		if ok, _ := b.admit(); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := b.admit()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	// One token at 10/s is 100ms away.
	if retry < 50*time.Millisecond || retry > 150*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~100ms", retry)
	}

	now = now.Add(retry)
	if ok, _ := b.admit(); !ok {
		t.Fatal("refused after waiting the advertised Retry-After")
	}

	// A long idle period must not bank more than the burst.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := b.admit(); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("after idle, admitted %d, want the burst cap 3", admitted)
	}
}

// TestTokenBucketRetryAfterFloor verifies the Retry-After never collapses to
// zero (the header would be meaningless).
func TestTokenBucketRetryAfterFloor(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(1e6, 1)
	b.now = func() time.Time { return now }
	b.last = now
	b.admit()
	if ok, retry := b.admit(); ok || retry < time.Millisecond {
		t.Fatalf("admit = %v, retry %v; want refusal with at least 1ms", ok, retry)
	}
}
