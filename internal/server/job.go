// Package server is the sweep engine as a service: an HTTP/JSON job server
// that accepts sweep-cell submissions, shards them across worker pools with
// a consistent-hash ring, and memoizes results by content hash so the same
// cell is never simulated twice. The robustness layer — token-bucket
// admission with load shedding, per-job deadlines with bounded retries and
// hedged re-dispatch, per-shard circuit breakers, graceful drain to a
// resumable state file — is what the chaos test exercises.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"doppelganger/internal/sweep"
	"doppelganger/internal/workloads"
)

// Cell names one unit of sweep work: a single experiment cell (one memoized
// simulation result) or a whole figure. The JSON form is the POST /v1/jobs
// request body.
type Cell struct {
	// Kind selects the computation:
	//   split-error, split-timing    — split Doppelgänger at (M, Frac)
	//   uni-error, uni-timing        — uniDoppelgänger at (M, Frac)
	//   fault-error                  — Org under injection at Rate
	//   quality-error                — guarded run of Org at Rate
	//   quality-timing               — timing replay of Org at Rate (Guarded?)
	//   baseline-timing              — the precise baseline timing run
	//   figure                       — a whole experiment table (Figure)
	Kind  string  `json:"kind"`
	Bench string  `json:"bench,omitempty"`
	M     int     `json:"m,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	Org   string  `json:"org,omitempty"`
	Rate  float64 `json:"rate,omitempty"`
	// Guarded selects guard-on vs guard-off for quality-timing.
	Guarded bool `json:"guarded,omitempty"`
	// Figure names the table for Kind "figure": table2, fig2, fig7..fig14,
	// table3, extras, faults, quality.
	Figure string `json:"figure,omitempty"`
}

// figureNames are the Kind "figure" jobs the server accepts.
var figureNames = map[string]bool{
	"table2": true, "fig2": true, "fig7": true, "fig8": true, "fig9": true,
	"fig10": true, "fig11": true, "fig12": true, "fig13": true, "fig14": true,
	"table3": true, "extras": true, "faults": true, "quality": true,
}

func inList(s string, list []string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Validate rejects cells the runner could only fail on mid-simulation, with
// a message that names the offending field (the flagcheck discipline applied
// to the wire).
func (c Cell) Validate() error {
	needBench := c.Kind != "figure"
	if needBench {
		if _, err := workloads.ByName(c.Bench); err != nil {
			return fmt.Errorf("cell bench: %v", err)
		}
	}
	switch c.Kind {
	case "split-error", "split-timing", "uni-error", "uni-timing":
		if c.M < 1 || c.M > 32 {
			return fmt.Errorf("cell m must be between 1 and 32 bits, got %d", c.M)
		}
		if !(c.Frac > 0 && c.Frac <= 1) {
			return fmt.Errorf("cell frac must be in (0,1], got %v", c.Frac)
		}
		// The builders would panic on a geometry the data array cannot hold
		// (entries not divisible by ways); refuse it at the front door instead
		// of letting it look like a shard crash and feed the breakers.
		geo := workloads.SplitDoppelConfig(c.M, c.Frac)
		if c.Kind == "uni-error" || c.Kind == "uni-timing" {
			geo = workloads.UnifiedDoppelConfig(c.M, c.Frac)
		}
		if err := geo.Validate(); err != nil {
			return fmt.Errorf("cell m/frac geometry: %v", err)
		}
	case "fault-error":
		if !inList(c.Org, sweep.FaultOrgs) {
			return fmt.Errorf("cell org %q unknown (want one of %v)", c.Org, sweep.FaultOrgs)
		}
		if !(c.Rate >= 0 && c.Rate <= 1) {
			return fmt.Errorf("cell rate must be a probability in [0,1], got %v", c.Rate)
		}
	case "quality-error", "quality-timing":
		if !inList(c.Org, sweep.GuardedOrgs) {
			return fmt.Errorf("cell org %q unknown (want one of %v)", c.Org, sweep.GuardedOrgs)
		}
		if !(c.Rate >= 0 && c.Rate <= 1) {
			return fmt.Errorf("cell rate must be a probability in [0,1], got %v", c.Rate)
		}
	case "baseline-timing":
	case "figure":
		if !figureNames[c.Figure] {
			return fmt.Errorf("cell figure %q unknown", c.Figure)
		}
	default:
		return fmt.Errorf("cell kind %q unknown", c.Kind)
	}
	return nil
}

// Key returns the cell's unique identity, matching the runner's memo keys
// with the checkpoint's result-kind suffix, so server results, checkpoint
// records and runner caches all speak the same names.
func (c Cell) Key() string {
	switch c.Kind {
	case "split-error":
		return fmt.Sprintf("split/%s/%d/%g/error", c.Bench, c.M, c.Frac)
	case "split-timing":
		return fmt.Sprintf("split/%s/%d/%g/timing", c.Bench, c.M, c.Frac)
	case "uni-error":
		return fmt.Sprintf("uni/%s/%d/%g/error", c.Bench, c.M, c.Frac)
	case "uni-timing":
		return fmt.Sprintf("uni/%s/%d/%g/timing", c.Bench, c.M, c.Frac)
	case "fault-error":
		return fmt.Sprintf("fault/%s/%s/%g/error", c.Org, c.Bench, c.Rate)
	case "quality-error":
		return fmt.Sprintf("quality/%s/%s/%g/quality", c.Org, c.Bench, c.Rate)
	case "quality-timing":
		mode := "time-off"
		if c.Guarded {
			mode = "time-on"
		}
		return fmt.Sprintf("quality/%s/%s/%g/%s/timing", c.Org, c.Bench, c.Rate, mode)
	case "baseline-timing":
		return fmt.Sprintf("base/%s/timing", c.Bench)
	case "figure":
		return "figure/" + c.Figure
	}
	return "invalid/" + c.Kind
}

// RouteKey is what the consistent-hash ring routes on: the benchmark name,
// so every cell of one benchmark lands on the shard holding its warm
// baseline artifacts (figures route on their own name — they touch the whole
// suite anyway).
func (c Cell) RouteKey() string {
	if c.Kind == "figure" {
		return "figure/" + c.Figure
	}
	return c.Bench
}

// payload is the deterministic content of a job result: exactly one of the
// value fields is set, per Kind. It deliberately excludes anything volatile
// (which shard computed it, cache hits, latency) — those live on the Result
// envelope — so payload bytes from any shard, any attempt, or a resumed
// server are comparable byte for byte. Error values travel as raw float64
// bits, the checkpoint's round-trip discipline.
type payload struct {
	Key     string                `json:"key"`
	Kind    string                `json:"kind"`
	Bits    uint64                `json:"bits,omitempty"`
	Timing  *sweep.TimingSummary  `json:"timing,omitempty"`
	Quality *sweep.QualityOutcome `json:"quality,omitempty"`
	Tables  []json.RawMessage     `json:"tables,omitempty"`
}

// checksum is the integrity sum carried beside every payload: FNV-64a over
// the canonical payload bytes, computed at result creation on the shard.
// The dispatcher recomputes it on receipt; a mismatch means the bytes were
// corrupted after the shard sealed them, and the job is retried elsewhere.
func floatBits(v float64) uint64 { return math.Float64bits(v) }

func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// executeCell runs one cell on a shard's runner and seals its canonical
// payload. Everything here is deterministic in (cell, runner config): fault
// and canary seeds derive from (seed, task key), never from worker or shard
// identity, so any shard produces bit-identical bytes.
func executeCell(ctx context.Context, r *sweep.Runner, c Cell) ([]byte, error) {
	p := payload{Key: c.Key(), Kind: c.Kind}
	switch c.Kind {
	case "split-error":
		v, err := r.SplitErrorContext(ctx, c.Bench, c.M, c.Frac)
		if err != nil {
			return nil, err
		}
		p.Bits = floatBits(v)
	case "uni-error":
		v, err := r.UnifiedErrorContext(ctx, c.Bench, c.M, c.Frac)
		if err != nil {
			return nil, err
		}
		p.Bits = floatBits(v)
	case "fault-error":
		v, err := r.FaultErrorContext(ctx, c.Bench, c.Org, c.Rate)
		if err != nil {
			return nil, err
		}
		p.Bits = floatBits(v)
	case "split-timing":
		res, err := r.SplitTimingContext(ctx, c.Bench, c.M, c.Frac)
		if err != nil {
			return nil, err
		}
		p.Timing = sweep.Summarize(res)
	case "uni-timing":
		res, err := r.UnifiedTimingContext(ctx, c.Bench, c.M, c.Frac)
		if err != nil {
			return nil, err
		}
		p.Timing = sweep.Summarize(res)
	case "baseline-timing":
		res, err := r.BaselineTimingContext(ctx, c.Bench)
		if err != nil {
			return nil, err
		}
		p.Timing = sweep.Summarize(res)
	case "quality-timing":
		res, err := r.QualityTimingContext(ctx, c.Bench, c.Org, c.Rate, c.Guarded)
		if err != nil {
			return nil, err
		}
		p.Timing = sweep.Summarize(res)
	case "quality-error":
		q, err := r.QualityErrorContext(ctx, c.Bench, c.Org, c.Rate)
		if err != nil {
			return nil, err
		}
		p.Quality = q
	case "figure":
		tables, err := figureTables(r, c.Figure)
		if err != nil {
			return nil, err
		}
		p.Tables = tables
	default:
		return nil, fmt.Errorf("server: cell kind %q unknown", c.Kind)
	}
	return json.Marshal(p)
}

// figureTables renders one whole experiment table set. Figure jobs compute
// their missing cells serially inside the runner (no per-cell cancellation),
// so they are the coarse-grained end of the job spectrum; the drain timeout
// still bounds them.
func figureTables(r *sweep.Runner, name string) ([]json.RawMessage, error) {
	collect := func(tables ...*sweep.Table) []json.RawMessage {
		out := make([]json.RawMessage, len(tables))
		for i, t := range tables {
			out[i] = json.RawMessage(t.FormatJSON())
		}
		return out
	}
	switch name {
	case "table2":
		t, err := r.Table2()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "fig2":
		t, err := r.Fig2()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "fig7":
		t, err := r.Fig7()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "fig8":
		t, err := r.Fig8()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "fig9":
		a, b, err := r.Fig9()
		if err != nil {
			return nil, err
		}
		return collect(a, b), nil
	case "fig10":
		a, b, err := r.Fig10()
		if err != nil {
			return nil, err
		}
		return collect(a, b), nil
	case "fig11":
		a, b, err := r.Fig11()
		if err != nil {
			return nil, err
		}
		return collect(a, b), nil
	case "fig12":
		t, err := r.Fig12()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "fig13":
		return collect(r.Fig13()), nil
	case "fig14":
		a, b, c, err := r.Fig14()
		if err != nil {
			return nil, err
		}
		return collect(a, b, c), nil
	case "table3":
		return collect(r.Table3()), nil
	case "extras":
		t, err := r.Extras()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "faults":
		t, err := r.FaultSweep()
		if err != nil {
			return nil, err
		}
		return collect(t), nil
	case "quality":
		a, b, err := r.QualitySweep()
		if err != nil {
			return nil, err
		}
		return collect(a, b), nil
	}
	return nil, fmt.Errorf("server: figure %q unknown", name)
}

// Result is the envelope a completed job returns: the deterministic payload
// plus its integrity sum, and the volatile bookkeeping (content hash, which
// shard computed it, whether this response was served from the memo). Only
// Payload and Sum are covered by the determinism contract.
type Result struct {
	Key     string          `json:"key"`
	Hash    string          `json:"hash"`
	Payload json.RawMessage `json:"payload"`
	Sum     uint64          `json:"sum"`
	Shard   int             `json:"shard"`
	Cached  bool            `json:"cached,omitempty"`
}
