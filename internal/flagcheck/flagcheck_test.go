package flagcheck

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestScalarChecks(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string // "" = must pass; otherwise a required substring
	}{
		{"scale ok", PositiveScale("-scale", 0.05), ""},
		{"scale zero", PositiveScale("-scale", 0), "-scale"},
		{"scale NaN", PositiveScale("-scale", math.NaN()), "-scale"},
		{"workers unset zero", Workers("-workers", false, 0), ""},
		{"workers explicit zero", Workers("-workers", true, 0), "-workers"},
		{"workers explicit negative", Workers("-workers", true, -2), "-workers"},
		{"atleast ok", AtLeast("-cores", 1, 1), ""},
		{"atleast bad", AtLeast("-cores", 0, 1), "-cores"},
		{"nonneg ok", NonNegative("-retries", 0), ""},
		{"nonneg bad", NonNegative("-retries", -1), "-retries"},
		{"range ok", IntRange("-map", 14, 1, 32, "bits"), ""},
		{"range low", IntRange("-map", 0, 1, 32, "bits"), "-map"},
		{"range high", IntRange("-map", 33, 1, 32, "bits"), "between 1 and 32 bits"},
		{"prob ok", Probability("-canary-rate", 1), ""},
		{"prob high", Probability("-canary-rate", 1.5), "-canary-rate"},
		{"prob NaN", Probability("-canary-rate", math.NaN()), "-canary-rate"},
		{"frac ok", Fraction("-datafrac", "0 = default", 0), ""},
		{"frac bad", Fraction("-datafrac", "0 = default", -0.1), "0 = default"},
		{"posfrac ok", PositiveFraction("-quality-budget", "e.g. 0.05", 0.05), ""},
		{"posfrac zero", PositiveFraction("-quality-budget", "e.g. 0.05", 0), "-quality-budget"},
		{"posfrac inf", PositiveFraction("-quality-budget", "e.g. 0.05", math.Inf(1)), "e.g. 0.05"},
		{"duration ok", PositiveDuration("-hedge-after", time.Second), ""},
		{"duration zero", PositiveDuration("-hedge-after", 0), "-hedge-after"},
		{"trace ok", TraceFlags("dir", true, false), ""},
		{"trace missing dir", TraceFlags("", true, false), "-trace-dir"},
		{"trace both", TraceFlags("dir", true, true), "mutually exclusive"},
	}
	for _, tc := range cases {
		switch {
		case tc.want == "" && tc.err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, tc.err)
		case tc.want != "" && tc.err == nil:
			t.Errorf("%s: accepted", tc.name)
		case tc.want != "" && !strings.Contains(tc.err.Error(), tc.want):
			t.Errorf("%s: error %q does not mention %q", tc.name, tc.err, tc.want)
		}
	}
}

func TestRates(t *testing.T) {
	good, err := Rates("-fault-rate", "1e-6, 1e-4,0.5")
	if err != nil || len(good) != 3 || good[0] != 1e-6 || good[2] != 0.5 {
		t.Fatalf("Rates = %v, %v", good, err)
	}
	for _, s := range []string{"", "abc", "-1e-4", "1.5", "NaN", "1e-4,,1e-6"} {
		if _, err := Rates("-fault-rate", s); err == nil {
			t.Errorf("Rates(%q) accepted", s)
		} else if !strings.Contains(err.Error(), "-fault-rate") {
			t.Errorf("Rates(%q) error does not name the flag: %v", s, err)
		}
	}
}

func TestFirst(t *testing.T) {
	if First(nil, nil) != nil {
		t.Fatal("First(nil, nil) != nil")
	}
	e := NonNegative("-x", -1)
	if First(nil, e, NonNegative("-y", -1)) != e {
		t.Fatal("First did not return the first error")
	}
}
