// Package flagcheck holds the flag-validation primitives the binaries
// (experiments, doppelsim, sweepd) share: every check rejects values that
// would otherwise fail obscurely mid-run — or worse, silently simulate
// something other than what was asked for — with a message that names the
// offending flag and says what a legal value looks like.
//
// The helpers take the flag's spelling as their first argument so each
// binary's error names its own flags; the per-binary validate.go files are
// thin compositions of these checks over their option structs.
package flagcheck

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// PositiveScale rejects non-positive or NaN workload scales.
func PositiveScale(flag string, v float64) error {
	if math.IsNaN(v) || v <= 0 {
		return fmt.Errorf("%s must be a positive number, got %v", flag, v)
	}
	return nil
}

// Workers enforces the -workers sentinel convention: 0 is legal as an unset
// default (one worker per CPU) but an explicitly supplied value must be at
// least 1.
func Workers(flag string, set bool, v int) error {
	if set && v < 1 {
		return fmt.Errorf("%s must be at least 1 (omit the flag for one worker per CPU), got %d", flag, v)
	}
	return nil
}

// AtLeast rejects integers below min.
func AtLeast(flag string, v, min int) error {
	if v < min {
		return fmt.Errorf("%s must be at least %d, got %d", flag, min, v)
	}
	return nil
}

// NonNegative rejects negative integers.
func NonNegative(flag string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be non-negative, got %d", flag, v)
	}
	return nil
}

// IntRange rejects integers outside [lo, hi]; unit labels the message
// ("bits", "shards").
func IntRange(flag string, v, lo, hi int, unit string) error {
	if v < lo || v > hi {
		return fmt.Errorf("%s must be between %d and %d %s, got %d", flag, lo, hi, unit, v)
	}
	return nil
}

// Probability rejects values outside [0,1] (NaN included — ParseFloat
// happily accepts it).
func Probability(flag string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%s must be a probability in [0,1], got %v", flag, v)
	}
	return nil
}

// Fraction rejects values outside [0,1]; hint explains the flag's zero
// convention (e.g. "0 = the organization's default").
func Fraction(flag, hint string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("%s must be a fraction in [0,1] (%s), got %v", flag, hint, v)
	}
	return nil
}

// PositiveFraction rejects non-positive, NaN or infinite error fractions;
// hint suggests a legal spelling (e.g. "e.g. 0.05").
func PositiveFraction(flag, hint string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("%s must be a positive finite error fraction (%s), got %v", flag, hint, v)
	}
	return nil
}

// PositiveDuration rejects non-positive durations for flags whose zero is
// not a sentinel.
func PositiveDuration(flag string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("%s must be a positive duration, got %v", flag, d)
	}
	return nil
}

// TraceFlags checks the trace-cache flag triple shared by every binary:
// capture/replay require a directory and are mutually exclusive.
func TraceFlags(dir string, capture, replay bool) error {
	if (capture || replay) && dir == "" {
		return fmt.Errorf("-trace-capture and -trace-replay require -trace-dir")
	}
	if capture && replay {
		return fmt.Errorf("-trace-capture and -trace-replay are mutually exclusive (capture re-records, replay forbids recording)")
	}
	return nil
}

// TraceVerify rejects unknown -trace-verify spellings; the legal modes are
// off (temp sweep only), open (preamble + whole-file digest) and full
// (complete decode). The empty string is the unset struct zero and stays
// legal — binaries default the flag itself to "open".
func TraceVerify(flag, v string) error {
	switch v {
	case "", "off", "open", "full":
		return nil
	}
	return fmt.Errorf("%s must be off, open or full, got %q", flag, v)
}

// Rates parses a comma-separated probability list (the -fault-rate flag).
// Every entry must be a finite probability in [0,1]; NaN is rejected
// explicitly.
func Rates(flag, s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || math.IsNaN(r) || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad %s entry %q (want a probability in [0,1])", flag, strings.TrimSpace(f))
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// First returns the first non-nil error of a check sequence — the shape
// every validateOptions composition wants.
func First(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
