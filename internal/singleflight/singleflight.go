// Package singleflight holds the mutex-guarded, singleflight-style memo
// cache the sweep runner and the sweep server share. The first caller of Do
// for a key runs the computation; concurrent callers of the same key block
// until it finishes and share its result, so every key is computed exactly
// once even when many workers ask for it at the same time. Distinct keys
// compute concurrently — the lock only guards the entry map, never a
// computation.
//
// Only successes stay cached. A failed computation delivers its error to
// the callers already waiting on the entry, then forgets the key, so a
// retry (an engine's bounded-retry loop, a resumed run, or a re-dispatched
// server job) computes it again instead of replaying a transient failure
// forever.
package singleflight

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Memo is the cache; build one with New.
type Memo[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	computes atomic.Int64
}

type entry[V any] struct {
	ready chan struct{} // closed once val/err are set
	val   V
	err   error
}

// New builds an empty Memo.
func New[V any]() *Memo[V] {
	return &Memo[V]{entries: make(map[string]*entry[V])}
}

// Do returns the value for key, running compute if no caller has before.
// A panic inside compute is converted to an error carrying the panic stack
// (and delivered to every waiter) so a failed computation can never strand
// goroutines blocked on the entry, and a crashing computation is diagnosable
// from the caller's log.
func (m *Memo[V]) Do(key string, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &entry[V]{ready: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	m.computes.Add(1)
	func() {
		defer func() {
			if p := recover(); p != nil {
				e.err = fmt.Errorf("singleflight: computing %s: panic: %v\n%s", key, p, debug.Stack())
			}
			close(e.ready)
		}()
		e.val, e.err = compute()
	}()
	if e.err != nil {
		// Forget failures so a later attempt recomputes. Guarded: a slow
		// failure must not evict a newer entry someone else inserted.
		m.mu.Lock()
		if m.entries[key] == e {
			delete(m.entries, key)
		}
		m.mu.Unlock()
	}
	return e.val, e.err
}

// Prime inserts an already-computed value for key (checkpoint resume),
// unless the key is present. Primed entries do not count as computations.
func (m *Memo[V]) Prime(key string, val V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[key]; ok {
		return
	}
	e := &entry[V]{ready: make(chan struct{}), val: val}
	close(e.ready)
	m.entries[key] = e
}

// Computes reports how many computations actually ran (cache hits,
// singleflight waiters and primed entries do not count); the concurrency
// tests — and the server's exactly-once accounting — use it to prove each
// key is computed once.
func (m *Memo[V]) Computes() int64 { return m.computes.Load() }

// Has reports whether key is present (computed, computing, or primed)
// without blocking on an in-flight computation. Planners use it to skip
// work that is already done or claimed; a false answer is only a hint —
// another caller may insert the key immediately after.
func (m *Memo[V]) Has(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[key]
	return ok
}

// Len reports how many keys are cached.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
