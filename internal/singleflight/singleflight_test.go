package singleflight

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemoSingleflight proves the cache's central guarantee: N goroutines
// requesting the same key observe exactly one computation and all receive
// its value.
func TestMemoSingleflight(t *testing.T) {
	m := New[int]()
	const goroutines = 32
	var computed atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = m.Do("key", func() (int, error) {
				computed.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return 7, nil
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if n := m.Computes(); n != 1 {
		t.Fatalf("Computes() = %d, want 1", n)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != 7 {
			t.Fatalf("goroutine %d got %d, want 7", i, results[i])
		}
	}
}

// TestMemoDistinctKeysConcurrent proves the mutex only guards the entry
// map: two different keys must be able to compute at the same time. Each
// computation waits for the other to start — if one held the lock during
// compute, this would deadlock (and trip the test timeout).
func TestMemoDistinctKeysConcurrent(t *testing.T) {
	m := New[string]()
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.Do("a", func() (string, error) {
			close(aStarted)
			<-bStarted
			return "a", nil
		})
	}()
	go func() {
		defer wg.Done()
		m.Do("b", func() (string, error) {
			close(bStarted)
			<-aStarted
			return "b", nil
		})
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("distinct keys serialized: computations could not overlap")
	}
	if m.Computes() != 2 || m.Len() != 2 {
		t.Fatalf("computes %d, len %d, want 2, 2", m.Computes(), m.Len())
	}
}

// TestMemoErrorForgotten verifies errors are delivered to the caller but
// not cached: a failed key recomputes on the next Do, so a bounded-retry
// loop (and a resumed run) gets a fresh attempt instead of a replayed
// failure.
func TestMemoErrorForgotten(t *testing.T) {
	m := New[int]()
	boom := errors.New("boom")
	var computed atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := m.Do("bad", func() (int, error) {
			computed.Add(1)
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want %v", i, err, boom)
		}
	}
	if computed.Load() != 3 {
		t.Fatalf("failed computation ran %d times, want 3 (failures must be forgotten)", computed.Load())
	}
	if m.Len() != 0 {
		t.Fatalf("failed key stayed cached (len %d)", m.Len())
	}
	// After the failures, a successful compute caches normally.
	v, err := m.Do("bad", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("recovery compute = %d, %v, want 9, nil", v, err)
	}
	if _, err := m.Do("bad", func() (int, error) { t.Fatal("recomputed a cached success"); return 0, nil }); err != nil {
		t.Fatal(err)
	}
}

// TestMemoPanicBecomesError verifies a panicking computation is converted
// to an error carrying the panic stack rather than stranding waiters on the
// entry's ready channel, and that the key is then free to recompute.
func TestMemoPanicBecomesError(t *testing.T) {
	m := New[int]()
	_, err := m.Do("p", func() (int, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
	if !strings.Contains(err.Error(), "singleflight_test.go") {
		t.Fatalf("err = %v, want the panic stack naming the crash site", err)
	}
	// The panicked key is forgotten, so a retry recomputes and succeeds.
	v, err2 := m.Do("p", func() (int, error) { return 1, nil })
	if err2 != nil || v != 1 {
		t.Fatalf("retry after panic = %d, %v, want 1, nil", v, err2)
	}
}

// TestMemoPrime verifies primed entries behave like cached successes (no
// recompute, no compute count) and never clobber an existing entry.
func TestMemoPrime(t *testing.T) {
	m := New[int]()
	m.Prime("k", 5)
	v, err := m.Do("k", func() (int, error) { t.Fatal("recomputed a primed key"); return 0, nil })
	if err != nil || v != 5 {
		t.Fatalf("Do on primed key = %d, %v, want 5, nil", v, err)
	}
	if m.Computes() != 0 {
		t.Fatalf("Computes() = %d after prime, want 0", m.Computes())
	}
	m.Prime("k", 6) // must not replace
	if v, _ := m.Do("k", func() (int, error) { return 0, nil }); v != 5 {
		t.Fatalf("Prime overwrote an existing entry: got %d, want 5", v)
	}
}
