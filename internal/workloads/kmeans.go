package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewKmeans builds the kmeans benchmark from AxBench: iterative Lloyd
// clustering of image pixels. The point features are 8-bit color channels
// (annotated approximate, range 0–255, exercising the §3.7 integral-type
// mapping rule); centroids, assignments and per-core accumulators are
// precise. The merge step has all cores reading each other's accumulators
// and core 0 updating the shared centroids, exercising the MSI directory
// (§3.6).
//
// Error metric: mean relative error of the final centroid coordinates.
func NewKmeans(scale float64) *Benchmark {
	points := scaleInt(49152, scale, 64)
	const (
		dim   = 8
		k     = 16
		iters = 4
	)

	var (
		pts, cents, assign memdata.Addr
		accSum, accCnt     memdata.Addr // per-core precise scratch
		meta               memdata.Addr // precise per-point payload
	)

	return &Benchmark{
		Name: "kmeans",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			pts = l.allocU8(points * dim)
			cents = l.allocF32(k * dim)
			assign = l.allocI32(points)
			accSum = l.allocF32(4 * k * dim) // up to 4 cores
			accCnt = l.allocI32(4 * k)
			meta = l.allocI32(points)

			rng := rand.New(rand.NewSource(7008))
			// Pixels come in spatially coherent runs drawn from the image's
			// dominant colors, with lighting variation across the image.
			centers := make([][]float64, k)
			for c := range centers {
				centers[c] = make([]float64, dim)
				for d := 0; d < dim; d++ {
					centers[c][d] = 40 + 175*rng.Float64()
				}
			}
			for i := 0; i < points; i++ {
				c := centers[(i/16+rng.Intn(2))%k]
				shade := 0.85 + 0.02*float64((i/512)%16) // slow lighting gradient
				for d := 0; d < dim; d++ {
					v := math.Round(c[d]*shade + 10*rng.NormFloat64())
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					st.WriteU8(u8At(pts, i*dim+d), uint8(v))
				}
				st.WriteI32(i32At(meta, i), int32(i))
			}
			// Initial centroids: first k points.
			for c := 0; c < k; c++ {
				for d := 0; d < dim; d++ {
					st.WriteF32(f32At(cents, c*dim+d), float32(st.ReadU8(u8At(pts, c*dim+d))))
				}
			}
			return approx.MustAnnotations(
				approx.Region{Name: "points", Start: pts, End: pts + memdata.Addr(points*dim),
					Type: memdata.U8, Min: 0, Max: 255},
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(points, cores, c)
				core := c
				ks[c] = func(ctx *funcsim.CoreCtx) {
					for it := 0; it < iters; it++ {
						// Load the shared centroids once per iteration.
						var cent [k][dim]float64
						for cc := 0; cc < k; cc++ {
							for d := 0; d < dim; d++ {
								cent[cc][d] = float64(ctx.LoadF32(f32At(cents, cc*dim+d)))
							}
						}
						// Assignment pass, accumulating thread-locally.
						var sums [k][dim]float64
						var cnts [k]int32
						for i := lo; i < hi; i++ {
							var pv [dim]float64
							for d := 0; d < dim; d++ {
								pv[d] = float64(ctx.LoadU8(u8At(pts, i*dim+d)))
							}
							_ = ctx.LoadI32(i32At(meta, i)) // precise payload touch
							best, bestDist := 0, 1e18
							for cc := 0; cc < k; cc++ {
								dist := 0.0
								for d := 0; d < dim; d++ {
									diff := pv[d] - cent[cc][d]
									dist += diff * diff
								}
								if dist < bestDist {
									best, bestDist = cc, dist
								}
							}
							ctx.Work(180) // k×dim distance arithmetic
							ctx.StoreI32(i32At(assign, i), int32(best))
							cnts[best]++
							for d := 0; d < dim; d++ {
								sums[best][d] += pv[d]
							}
						}
						// Publish this core's accumulators.
						for cc := 0; cc < k; cc++ {
							ctx.StoreI32(i32At(accCnt, core*k+cc), cnts[cc])
							for d := 0; d < dim; d++ {
								ctx.StoreF32(f32At(accSum, (core*k+cc)*dim+d), float32(sums[cc][d]))
							}
						}
						ctx.Barrier() // all assignments done before the merge
						// Merge: core 0 reduces all per-core accumulators into
						// the shared centroids (coherence traffic).
						if core == 0 {
							for cc := 0; cc < k; cc++ {
								var total int32
								var merged [dim]float64
								for cr := 0; cr < cores; cr++ {
									total += ctx.LoadI32(i32At(accCnt, cr*k+cc))
									for d := 0; d < dim; d++ {
										merged[d] += float64(ctx.LoadF32(f32At(accSum, (cr*k+cc)*dim+d)))
									}
								}
								if total > 0 {
									for d := 0; d < dim; d++ {
										ctx.StoreF32(f32At(cents, cc*dim+d), float32(merged[d]/float64(total)))
									}
								}
							}
						}
						ctx.Barrier() // merged centroids visible to all
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, k*dim)
			for i := range out {
				out[i] = float64(st.ReadF32(f32At(cents, i)))
			}
			return out
		},
		Error: meanRelError,
	}
}
