package workloads

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"doppelganger/internal/approx"
	"doppelganger/internal/core"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

// CaptureIdent builds the canonical identity string for one functional
// cell's capture: the cell key (benchmark + organization + sweep point),
// the workload scale, the core count, and any extra "|k=v" identity the
// key doesn't carry (seeds, budgets). The "dgtf1|" prefix versions the
// identity scheme itself — changing how identities are composed must bump
// it so old files go stale rather than mismatch silently.
func CaptureIdent(cellKey string, scale float64, cores int, extra string) string {
	return fmt.Sprintf("dgtf1|%s|scale=%g|cores=%d%s", cellKey, scale, cores, extra)
}

// CapturePath maps a capture identity string to its file name in dir. The
// name is a 64-bit FNV-1a of the full identity, so any change to what a
// capture depends on (scale, cores, seeds, organization) lands in a
// different file; the identity itself is stored in the file header and
// verified again by LoadCapture.
func CapturePath(dir, ident string) string {
	h := fnv.New64a()
	h.Write([]byte(ident))
	return filepath.Join(dir, fmt.Sprintf("%016x.dgt", h.Sum64()))
}

// CaptureOf packages a recorded functional run as a persistable capture.
// The run must have been made with RunOptions.Record set.
func CaptureOf(run *RunResult, hdr trace.FileHeader) (*trace.Capture, error) {
	if run.Recorder == nil || run.InitialMem == nil {
		return nil, fmt.Errorf("workloads: run was not recorded (RunOptions.Record)")
	}
	return &trace.Capture{
		Header:      hdr,
		Annotations: run.Annotations,
		InitialMem:  run.InitialMem,
		Recorder:    run.Recorder,
		Output:      run.Output,
	}, nil
}

// LoadCapture reads a capture file and verifies it matches the identity the
// caller is about to consume it under. A mismatch means the capture is
// stale — produced by a different configuration, seed, or code revision —
// and must be re-recorded, never silently replayed.
func LoadCapture(path, configKey string, cores int) (*trace.Capture, error) {
	return loadCapture(trace.ReadCaptureFile, path, configKey, cores)
}

// LoadCaptureOutput is LoadCapture for consumers that only serve the
// capture's output vector: the file is still fully read and
// integrity-checked, but the memory image and trace streams are not
// materialized, so warm output-only cells cost no allocation proportional
// to the recorded run.
func LoadCaptureOutput(path, configKey string, cores int) (*trace.Capture, error) {
	return loadCapture(trace.ReadCaptureOutputFile, path, configKey, cores)
}

func loadCapture(read func(string) (*trace.Capture, error), path, configKey string, cores int) (*trace.Capture, error) {
	c, err := read(path)
	if err != nil {
		return nil, err
	}
	if c.Header.ConfigKey != configKey {
		return nil, fmt.Errorf("%s: %w: recorded for %q, wanted %q", path, trace.ErrStale, c.Header.ConfigKey, configKey)
	}
	if c.Header.Cores != cores {
		return nil, fmt.Errorf("%s: %w: recorded with %d cores, wanted %d", path, trace.ErrStale, c.Header.Cores, cores)
	}
	return c, nil
}

// LoadOutcome classifies what LoadCaptureRecover did, so callers can pick
// the right recovery without re-deriving it from error chains.
type LoadOutcome int

const (
	// LoadOK: the capture decoded, matched its identity, and is returned.
	LoadOK LoadOutcome = iota
	// LoadMiss: no capture exists at the path — the ordinary cold-cache
	// case; record one.
	LoadMiss
	// LoadQuarantined: the file was corrupt or stale; it has been moved to
	// the quarantine and the path is now free to re-record.
	LoadQuarantined
	// LoadUnavailable: the I/O path failed (device error, permissions) —
	// the file was left alone and the caller should fall back to live
	// execution without persisting.
	LoadUnavailable
)

// LoadCaptureRecover is the self-healing load: it reads and identity-checks
// the capture at path, and on failure routes the file to the right remedy —
// corrupt or stale captures are quarantined under traceDir (freeing the
// path for transparent re-recording), missing files report a plain miss,
// and I/O failures report the store unavailable. The returned error
// explains any non-OK outcome; for LoadMiss it is nil.
func LoadCaptureRecover(fsys trace.FS, traceDir, path, configKey string, cores int, outputOnly bool) (*trace.Capture, LoadOutcome, error) {
	read := func(p string) (*trace.Capture, error) { return trace.ReadCaptureFileFS(fsys, p) }
	if outputOnly {
		read = func(p string) (*trace.Capture, error) { return trace.ReadCaptureOutputFileFS(fsys, p) }
	}
	c, err := loadCapture(read, path, configKey, cores)
	if err == nil {
		return c, LoadOK, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		return nil, LoadMiss, nil
	}
	if trace.IsQuarantineable(err) {
		dest, qerr := trace.Quarantine(fsys, traceDir, path, err.Error())
		if qerr != nil {
			return nil, LoadUnavailable, fmt.Errorf("%w (quarantine failed: %v)", err, qerr)
		}
		if dest == "" {
			dest = "(already quarantined by a racing process)"
		}
		return nil, LoadQuarantined, fmt.Errorf("%w (quarantined to %s)", err, dest)
	}
	return nil, LoadUnavailable, err
}

// ReplayFunctionalContext reproduces a recorded functional run against the
// LLC organization built by llcb, without executing any benchmark kernel:
// the hierarchy is rebuilt over a copy-on-write clone of the captured
// initial image and driven through the recorded accesses in their original
// global order, so every cache decision — fills, evictions, map
// computations, approximate read-backs — evolves exactly as it did (or
// would have) live. Snapshots, metrics, faults and quality attachments in
// opt behave as in RunFunctionalContext.
//
// The benchmark instance is Init'd on a throwaway store first: Output
// closures capture the addresses Init assigns, and the resulting
// annotations double as a staleness check against the capture.
func ReplayFunctionalContext(ctx context.Context, b *Benchmark, cap *trace.Capture, llcb LLCBuilder, opt RunOptions) (*RunResult, error) {
	rs, err := ReplayFunctionalBatch(ctx, b, cap, []ReplaySpec{{LLCB: llcb, Opt: opt}})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// ReplaySpec names one lane of a batched replay: the LLC organization to
// build and the per-lane run options (metrics registry, fault injector,
// quality guard, snapshot hooks). Each lane gets fully private state.
type ReplaySpec struct {
	LLCB LLCBuilder
	Opt  RunOptions
}

// ReplayFunctionalBatch replays one recorded capture through len(specs)
// independent cache hierarchies in a single pass over the access stream:
// the trace is decoded and its global order walked once, and every record
// fans out to each lane via funcsim.ReplayBatchContext. Lane i's functional
// evolution — and its RunResult, bit for bit — is identical to calling
// ReplayFunctionalContext with specs[i] alone; only the shared front-end
// cost (benchmark Init, staleness check, cursor stepping) is paid once.
func ReplayFunctionalBatch(ctx context.Context, b *Benchmark, cap *trace.Capture, specs []ReplaySpec) ([]*RunResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("workloads: batch replay for %s with no lanes", b.Name)
	}
	for i := range specs {
		if specs[i].Opt.Cores == 0 {
			specs[i].Opt.Cores = 4
		}
		if cap.Header.Cores != specs[i].Opt.Cores {
			return nil, fmt.Errorf("workloads: stale capture for %s: recorded with %d cores, replaying with %d",
				b.Name, cap.Header.Cores, specs[i].Opt.Cores)
		}
	}
	scratch := memdata.NewStore()
	ann := b.Init(scratch, DefaultBase)
	if !annotationsEqual(ann, cap.Annotations) {
		return nil, fmt.Errorf("workloads: stale capture for %s: annotations differ from the current layout (re-record)", b.Name)
	}
	hs := make([]*funcsim.Hierarchy, len(specs))
	llcs := make([]core.LLC, len(specs))
	sts := make([]*memdata.Store, len(specs))
	for i, sp := range specs {
		st := cap.InitialMem.Clone()
		llc := sp.LLCB(st, ann)
		h := funcsim.New(HierConfig(sp.Opt.Cores), llc, st, ann, nil)
		h.AttachMetrics(sp.Opt.Metrics)
		h.AttachFaults(sp.Opt.Faults)
		h.AttachQuality(sp.Opt.Quality)
		h.SnapshotEvery = sp.Opt.SnapshotEvery
		h.SnapshotFn = sp.Opt.SnapshotFn
		hs[i], llcs[i], sts[i] = h, llc, st
	}
	if err := funcsim.ReplayBatchContext(ctx, hs, cap.Recorder); err != nil {
		return nil, err
	}
	out := make([]*RunResult, len(specs))
	for i, sp := range specs {
		llc, st, h := llcs[i], sts[i], hs[i]
		if sp.Opt.SnapshotFn != nil {
			sp.Opt.SnapshotFn(llc)
		}
		tags, blocks := llc.TagEntries(), llc.DataBlocks()
		res := &RunResult{}
		var dopp *core.Doppelganger
		switch l := llc.(type) {
		case *core.Split:
			dopp = l.Doppel
		case *core.Doppelganger:
			dopp = l
		}
		if dopp != nil {
			stats := dopp.Stats
			res.DoppelStats = &stats
			res.AvgTagsPerData = dopp.AvgTagsPerData()
			res.CompressionRatio = dopp.CompressionRatio()
		}
		h.Flush()
		res.Output = b.Output(st)
		res.Store = st
		res.InitialMem = cap.InitialMem
		res.Annotations = ann
		res.Recorder = cap.Recorder
		res.Hier = h
		res.LLC = llc
		res.TagsAtEnd = tags
		res.DataBlocksAtEnd = blocks
		out[i] = res
	}
	return out, nil
}

// annotationsEqual reports whether two annotation sets declare identical
// regions. Region is a comparable struct, so equality is exact.
func annotationsEqual(a, b *approx.Annotations) bool {
	ra, rb := a.Regions(), b.Regions()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}
