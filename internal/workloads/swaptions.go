package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewSwaptions builds the swaptions benchmark in the style of PARSEC:
// Monte-Carlo pricing of interest-rate swaptions. Only the swaption input
// parameters are annotated approximate (the paper annotates just the input
// set, giving a 1.5% approximate footprint, Table 2); the large precomputed
// random-shock array streamed by the simulation is precise.
//
// The float parameters span wildly different magnitudes (strike rates
// ~0.03, tenors up to 10, notionals up to 100) yet share a single declared
// range per §4.1 — the exact situation the paper blames for swaptions'
// elevated output error (§5.2).
//
// Error metric: mean relative error of the swaption prices.
func NewSwaptions(scale float64) *Benchmark {
	swaptions := scaleInt(512, scale, 16)
	shocks := scaleInt(1048576, scale, 64)
	const (
		trials = 12
		steps  = 48
		passes = 2 // two pricing rounds; the shock stream evicts parameters
	)

	var strike, tenor, rate0, vol, notional, prices, shockArr memdata.Addr

	return &Benchmark{
		Name: "swaptions",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			strike = l.allocF32(swaptions)
			tenor = l.allocF32(swaptions)
			rate0 = l.allocF32(swaptions)
			vol = l.allocF32(swaptions)
			notional = l.allocF32(swaptions)
			prices = l.allocF32(swaptions)
			shockArr = l.allocF32(shocks)

			rng := rand.New(rand.NewSource(7009))
			strikes := []float32{0.02, 0.025, 0.03, 0.035, 0.04, 0.05}
			for i := 0; i < swaptions; i++ {
				st.WriteF32(f32At(strike, i), strikes[(i/16)%len(strikes)])
				st.WriteF32(f32At(tenor, i), float32(1+rng.Intn(10)))
				st.WriteF32(f32At(rate0, i), 0.01+0.05*rng.Float32())
				st.WriteF32(f32At(vol, i), 0.05+0.25*rng.Float32())
				st.WriteF32(f32At(notional, i), 10+90*rng.Float32())
			}
			for i := 0; i < shocks; i++ {
				st.WriteF32(f32At(shockArr, i), float32(rng.NormFloat64()))
			}
			mk := func(name string, base memdata.Addr) approx.Region {
				return approx.Region{
					Name: name, Start: base, End: base + memdata.Addr(4*swaptions),
					Type: memdata.F32, Min: 0, Max: 100,
				}
			}
			return approx.MustAnnotations(
				mk("strike", strike), mk("tenor", tenor), mk("rate0", rate0),
				mk("vol", vol), mk("notional", notional),
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(swaptions, cores, c)
				core := c
				ks[c] = func(ctx *funcsim.CoreCtx) {
					shockPos := core * (shocks / 4)
					for pass := 0; pass < passes; pass++ {
						for i := lo; i < hi; i++ {
							k := float64(ctx.LoadF32(f32At(strike, i)))
							tn := float64(ctx.LoadF32(f32At(tenor, i)))
							r0 := float64(ctx.LoadF32(f32At(rate0, i)))
							sg := float64(ctx.LoadF32(f32At(vol, i)))
							nt := float64(ctx.LoadF32(f32At(notional, i)))
							if tn < 0.25 {
								tn = 0.25
							}
							sum := 0.0
							dt := tn / steps
							for t := 0; t < trials; t++ {
								// Vasicek-style short-rate path driven by the
								// precise precomputed shocks.
								r := r0
								disc := 0.0
								for s := 0; s < steps; s++ {
									xi := float64(ctx.LoadF32(f32At(shockArr, shockPos%shocks)))
									shockPos++
									r += 0.3*(0.04-r)*dt + sg*0.02*math.Sqrt(dt)*xi
									if r < 0 {
										r = 0
									}
									disc += r * dt
								}
								payoff := r - k
								if payoff < 0 {
									payoff = 0
								}
								sum += math.Exp(-disc) * payoff * nt
								ctx.Work(steps * 6)
							}
							ctx.StoreF32(f32At(prices, i), float32(sum/trials))
						}
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, swaptions)
			for i := range out {
				out[i] = float64(st.ReadF32(f32At(prices, i)))
			}
			return out
		},
		Error: meanRelError,
	}
}
