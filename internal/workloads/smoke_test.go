package workloads

import (
	"math"
	"testing"
)

// TestSuiteSmoke runs every benchmark at reduced scale against the baseline
// and split-Doppelgänger LLCs: the precise run must be deterministic, the
// Doppelgänger structures must hold their invariants at the end, and the
// measured output error must be finite and bounded.
func TestSuiteSmoke(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			const scale = 0.05
			base1 := RunFunctional(f.New(scale), BaselineBuilder(2<<20, 16), RunOptions{Cores: 4})
			base2 := RunFunctional(f.New(scale), BaselineBuilder(2<<20, 16), RunOptions{Cores: 4})
			bench := f.New(scale)
			if err := bench.Error(base1.Output, base2.Output); err != 0 {
				t.Fatalf("baseline run is nondeterministic: self-error %g", err)
			}

			split := RunFunctional(f.New(scale), SplitBuilder(14, 0.25), RunOptions{Cores: 4})
			errv := bench.Error(base1.Output, split.Output)
			if math.IsNaN(errv) || math.IsInf(errv, 0) || errv < 0 || errv > 1.0000001 {
				t.Fatalf("error out of range: %g", errv)
			}
			t.Logf("%s: output error %.4f, LLC tags %d, data blocks %d",
				f.Name, errv, split.LLC.TagEntries(), split.LLC.DataBlocks())
		})
	}
}
