package workloads

import "doppelganger/internal/memdata"

// layout is a bump allocator for laying out a benchmark's memory image.
// Allocations are block aligned so annotation regions are too.
type layout struct {
	next memdata.Addr
}

// DefaultBase is where a single program's image starts.
const DefaultBase = memdata.Addr(0x0100_0000)

func newLayoutAt(base memdata.Addr) *layout { return &layout{next: base} }

// alloc reserves n bytes (rounded up to whole blocks) and returns the base.
func (l *layout) alloc(n int) memdata.Addr {
	base := l.next
	blocks := (n + memdata.BlockSize - 1) / memdata.BlockSize
	l.next += memdata.Addr(blocks * memdata.BlockSize)
	return base
}

// allocF32 reserves an n-element float32 array.
func (l *layout) allocF32(n int) memdata.Addr { return l.alloc(4 * n) }

// allocF64 reserves an n-element float64 array.
func (l *layout) allocF64(n int) memdata.Addr { return l.alloc(8 * n) }

// allocI32 reserves an n-element int32 array.
func (l *layout) allocI32(n int) memdata.Addr { return l.alloc(4 * n) }

// allocU8 reserves an n-byte array.
func (l *layout) allocU8(n int) memdata.Addr { return l.alloc(n) }

// f32At / i32At / u8At compute element addresses.
func f32At(base memdata.Addr, i int) memdata.Addr { return base + memdata.Addr(4*i) }
func f64At(base memdata.Addr, i int) memdata.Addr { return base + memdata.Addr(8*i) }
func i32At(base memdata.Addr, i int) memdata.Addr { return base + memdata.Addr(4*i) }
func u8At(base memdata.Addr, i int) memdata.Addr  { return base + memdata.Addr(i) }

// span splits [0, n) into per-core contiguous shares.
func span(n, cores, c int) (lo, hi int) {
	per := (n + cores - 1) / cores
	lo = c * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// meanRelError is the AxBench-style metric: the mean of per-element
// relative errors, each clipped to 100%, with a small floor on the
// denominator to keep near-zero outputs meaningful.
func meanRelError(precise, approximate []float64) float64 {
	if len(precise) == 0 {
		return 0
	}
	sum := 0.0
	for i := range precise {
		p, a := precise[i], approximate[i]
		d := p - a
		if d < 0 {
			d = -d
		}
		den := p
		if den < 0 {
			den = -den
		}
		if den < 1e-3 {
			den = 1e-3
		}
		rel := d / den
		if rel > 1 {
			rel = 1
		}
		sum += rel
	}
	return sum / float64(len(precise))
}
