package workloads

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

// FuzzQuarantineExactlyOnce is the recovery-routing property: any bytes the
// capture decoder rejects — garbage, truncations, torn writes, and also
// valid captures recorded under a different identity — must route to the
// quarantine exactly once. The file leaves the trace directory on the first
// load (so the caller re-records), and a second load is a plain miss: no
// re-quarantine, no loop, no second copy of the evidence.
func FuzzQuarantineExactlyOnce(f *testing.F) {
	// The identity the loader wants; no seed carries it, so even a valid
	// capture is stale on arrival.
	const wantKey = "fuzz/identity/the-capture-never-has"

	seedCapture := func(configKey string) {
		ann, err := approx.NewAnnotations(
			approx.Region{Name: "x", Start: 0x1000, End: 0x2000, Type: memdata.F32, Min: -1, Max: 1})
		if err != nil {
			f.Fatal(err)
		}
		c := &trace.Capture{
			Header:      trace.FileHeader{Benchmark: "b", Scale: 0.5, Cores: 2, Seed: 1, ConfigKey: configKey},
			Annotations: ann,
			InitialMem:  memdata.NewStore(),
			Recorder:    trace.NewRecorder(2),
			Output:      []float64{1, -0.5},
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()*2/3]) // torn write
	}
	seedCapture("some/other/identity") // decodes fine, stale
	f.Add([]byte{})
	f.Add([]byte("DGTC"))
	f.Add([]byte("DGTC\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\xff"))
	f.Add([]byte("not a capture at all"))

	countQuarantined := func(t *testing.T, dir string) int {
		ents, err := os.ReadDir(filepath.Join(dir, trace.QuarantineDir))
		if os.IsNotExist(err) {
			return 0
		}
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".dgt") {
				n++
			}
		}
		return n
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "cell.dgt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, outcome, err := LoadCaptureRecover(trace.OS, dir, path, wantKey, 2, false)
		if outcome == LoadOK {
			// The fuzzer forged a valid capture carrying wantKey: a legitimate
			// hit, nothing to quarantine. (Practically unreachable — the key
			// appears in no seed — but not a property violation.)
			if c == nil {
				t.Fatal("LoadOK with a nil capture")
			}
			return
		}
		if outcome != LoadQuarantined {
			t.Fatalf("rejected bytes routed to %v (err %v), want LoadQuarantined", outcome, err)
		}
		if err == nil {
			t.Fatal("LoadQuarantined with a nil error")
		}
		if _, serr := os.Stat(path); !os.IsNotExist(serr) {
			t.Error("condemned file still present after quarantine")
		}
		if n := countQuarantined(t, dir); n != 1 {
			t.Errorf("first load quarantined %d files, want exactly 1", n)
		}
		// Second load: the slot is simply empty now — the caller re-records.
		// A second quarantine here would be the re-record loop the design
		// forbids.
		c2, outcome2, err2 := LoadCaptureRecover(trace.OS, dir, path, wantKey, 2, false)
		if c2 != nil || outcome2 != LoadMiss || err2 != nil {
			t.Fatalf("second load = (%v, %v, %v), want (nil, LoadMiss, nil)", c2, outcome2, err2)
		}
		if n := countQuarantined(t, dir); n != 1 {
			t.Errorf("second load changed the quarantine to %d files: not exactly-once", n)
		}
	})
}
