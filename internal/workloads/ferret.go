package workloads

import (
	"math/rand"
	"sort"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewFerret builds the ferret benchmark in the style of PARSEC:
// content-based similarity search. The database holds quantized image
// feature vectors — 32 unsigned 8-bit histogram bins per entry, the usual
// representation for CBIR signatures — annotated approximate with the full
// 0–255 range. Per-entry metadata (ids, thumbnails) is precise.
//
// Entries cluster around visual archetypes and arrive in clustered id
// order (crawlers ingest similar pages together), so consecutive feature
// blocks are approximately similar.
//
// Error metric: 1 − recall of the approximate top-K against the precise
// top-K. As the paper notes (§5.2), this metric is pessimistic: it treats
// the precise results as the only acceptable answers even though other
// database images may be equally good matches, so ferret shows the highest
// apparent error of the suite.
func NewFerret(scale float64) *Benchmark {
	db := scaleInt(16384, scale, 64)
	queries := scaleInt(12, scale, 4)
	const (
		dim  = 32 // two vectors per cache block
		topK = 8
	)

	var vecs, meta, queryv, results memdata.Addr

	return &Benchmark{
		Name: "ferret",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			vecs = l.allocU8(db * dim)
			meta = l.alloc(db * 16) // compact precise metadata records
			queryv = l.allocU8(queries * dim)
			results = l.allocI32(queries * topK)

			rng := rand.New(rand.NewSource(7003))
			const archetypes = 256
			arch := make([][]float64, archetypes)
			for a := range arch {
				arch[a] = make([]float64, dim)
				for d := 0; d < dim; d++ {
					arch[a][d] = 30 + 195*rng.Float64()
				}
			}
			writeVec := func(base memdata.Addr, i, a int) {
				for d := 0; d < dim; d++ {
					v := arch[a][d] + 18*rng.NormFloat64()
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					st.WriteU8(u8At(base, i*dim+d), uint8(v))
				}
			}
			for i := 0; i < db; i++ {
				// Clustered ingestion order: runs of entries share a class.
				writeVec(vecs, i, (i/8)%archetypes)
				st.WriteI32(i32At(meta, i*4), int32(i))
			}
			for q := 0; q < queries; q++ {
				writeVec(queryv, q, rng.Intn(archetypes))
			}
			return approx.MustAnnotations(
				approx.Region{Name: "features", Start: vecs, End: vecs + memdata.Addr(db*dim),
					Type: memdata.U8, Min: 0, Max: 255},
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(queries, cores, c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					for q := lo; q < hi; q++ {
						var qv [dim]float64
						for d := 0; d < dim; d++ {
							qv[d] = float64(ctx.LoadU8(u8At(queryv, q*dim+d)))
						}
						type cand struct {
							id   int
							dist float64
						}
						best := make([]cand, 0, topK+1)
						for i := 0; i < db; i++ {
							dist := 0.0
							for d := 0; d < dim; d++ {
								diff := qv[d] - float64(ctx.LoadU8(u8At(vecs, i*dim+d)))
								dist += diff * diff
							}
							ctx.Work(70)
							if len(best) < topK || dist < best[len(best)-1].dist {
								// Touch the candidate's precise metadata, as
								// ferret's ranking stage does.
								id := int(ctx.LoadI32(i32At(meta, i*4)))
								best = append(best, cand{id, dist})
								sort.Slice(best, func(x, y int) bool { return best[x].dist < best[y].dist })
								if len(best) > topK {
									best = best[:topK]
								}
							}
						}
						for k := 0; k < topK; k++ {
							ctx.StoreI32(i32At(results, q*topK+k), int32(best[k].id))
						}
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, queries*topK)
			for i := range out {
				out[i] = float64(st.ReadI32(i32At(results, i)))
			}
			return out
		},
		Error: func(precise, approximate []float64) float64 {
			missed, total := 0, 0
			for q := 0; q < len(precise); q += topK {
				want := make(map[float64]bool, topK)
				for k := 0; k < topK; k++ {
					want[precise[q+k]] = true
				}
				for k := 0; k < topK; k++ {
					total++
					if !want[approximate[q+k]] {
						missed++
					}
				}
			}
			if total == 0 {
				return 0
			}
			return float64(missed) / float64(total)
		},
	}
}
