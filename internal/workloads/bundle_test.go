package workloads

import (
	"bytes"
	"testing"

	"doppelganger/internal/timesim"
)

// TestBundleRoundTrip: a recorded run serializes to a bundle and back;
// replaying the loaded bundle against the split organization produces the
// exact same cycle count and traffic as replaying the original artifacts.
func TestBundleRoundTrip(t *testing.T) {
	f, _ := ByName("inversek2j")
	run := RunFunctional(f.New(0.05), BaselineBuilder(2<<20, 16), RunOptions{Cores: 2, Record: true})
	b, err := BundleOf(run)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := timesim.DefaultConfig()
	cfg.Cores = 2
	direct := timesim.Run(run.Recorder, run.InitialMem, run.Annotations, SplitBuilder(14, 0.25), cfg)
	loaded := timesim.Run(got.Traces, got.InitialMem, got.Annotations, SplitBuilder(14, 0.25), cfg)
	if direct.Cycles != loaded.Cycles {
		t.Errorf("cycles differ: %d vs %d", direct.Cycles, loaded.Cycles)
	}
	if direct.MemTraffic() != loaded.MemTraffic() {
		t.Errorf("traffic differs: %d vs %d", direct.MemTraffic(), loaded.MemTraffic())
	}
}

func TestBundleRequiresRecording(t *testing.T) {
	f, _ := ByName("inversek2j")
	run := RunFunctional(f.New(0.05), BaselineBuilder(2<<20, 16), RunOptions{Cores: 1})
	if _, err := BundleOf(run); err == nil {
		t.Error("unrecorded run accepted")
	}
}

func TestBundleRejectsGarbage(t *testing.T) {
	if _, err := ReadBundle(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBundle(bytes.NewReader([]byte("DPBL\xFF\x00\x00\x00"))); err == nil {
		t.Error("bad version accepted")
	}
}
