package workloads

import (
	"testing"

	"doppelganger/internal/core"
	"doppelganger/internal/stats"
)

// TestProbeFullScale is a development aid (skipped in -short mode): it runs
// selected benchmarks at full scale, printing Table 2 footprints, Fig. 7
// map-space savings and Fig. 9-style output error so the workload shaping
// can be compared against the paper.
func TestProbeFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale probe")
	}
	if raceEnabled {
		t.Skip("full-scale probe exceeds the test timeout under the race detector")
	}
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			an := stats.NewAnalyzer(stats.AnalyzerConfig{
				MapSpaces:   []int{12, 13, 14},
				Comparators: true, CompareM: 14,
			})
			base := RunFunctional(f.New(1), BaselineBuilder(2<<20, 16), RunOptions{
				Cores: 4, SnapshotEvery: 20000, SnapshotFn: an.Observe,
			})
			bench := f.New(1)
			split := RunFunctional(f.New(1), SplitBuilder(14, 0.25), RunOptions{Cores: 4})
			errv := bench.Error(base.Output, split.Output)
			d := split.LLC.(*core.Split).Doppel
			t.Logf("%s: approxFrac=%.3f map12=%.3f map13=%.3f map14=%.3f bdi=%.3f dedup=%.3f err14=%.4f avgTags=%.1f hits=%d/%d",
				f.Name, an.ApproxFraction(), an.MapSavings(12), an.MapSavings(13), an.MapSavings(14),
				an.BDISavings(), an.DedupSavings(), errv,
				float64(d.Stats.TagsAtDataEviction)/float64(max64(d.Stats.DataEvictions, 1)),
				d.Stats.ReadHits, d.Stats.Reads)
		})
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
