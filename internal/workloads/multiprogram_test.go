package workloads

import (
	"testing"
)

// TestMultiprogramPreciseMatchesSolo: under a precise LLC, each program of a
// multiprogrammed pair must produce exactly its solo output — address-space
// relocation and core partitioning change nothing functionally.
func TestMultiprogramPreciseMatchesSolo(t *testing.T) {
	const scale = 0.05
	fj, _ := ByName("jpeg")
	fs, _ := ByName("swaptions")

	soloJ := RunFunctional(fj.New(scale), BaselineBuilder(2<<20, 16), RunOptions{Cores: 2})
	soloS := RunFunctional(fs.New(scale), BaselineBuilder(2<<20, 16), RunOptions{Cores: 2})

	mp := Multiprogram(fj.New(scale), fs.New(scale))
	combined := RunFunctional(mp, BaselineBuilder(2<<20, 16), RunOptions{Cores: 4})

	nj := len(soloJ.Output)
	if len(combined.Output) != nj+len(soloS.Output) {
		t.Fatalf("combined output length %d, want %d", len(combined.Output), nj+len(soloS.Output))
	}
	if e := fj.New(scale).Error(soloJ.Output, combined.Output[:nj]); e != 0 {
		t.Errorf("jpeg output differs in multiprogram: %v", e)
	}
	if e := fs.New(scale).Error(soloS.Output, combined.Output[nj:]); e != 0 {
		t.Errorf("swaptions output differs in multiprogram: %v", e)
	}
}

// TestMultiprogramWithBarriers: a barrier-using program (kmeans) next to a
// barrier-free one must not deadlock or stall (per-program barrier groups).
func TestMultiprogramWithBarriers(t *testing.T) {
	const scale = 0.05
	fk, _ := ByName("kmeans")
	fi, _ := ByName("inversek2j")
	mp := Multiprogram(fk.New(scale), fi.New(scale))
	res := RunFunctional(mp, BaselineBuilder(2<<20, 16), RunOptions{Cores: 4})
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
}

// TestMultiprogramApproximate: the combined workload runs against the split
// Doppelgänger organization; per-program errors stay bounded and the
// annotations from both programs coexist (per-application ranges).
func TestMultiprogramApproximate(t *testing.T) {
	const scale = 0.05
	fj, _ := ByName("jpeg")
	fb, _ := ByName("blackscholes")
	mp := Multiprogram(fj.New(scale), fb.New(scale))
	precise := RunFunctional(mp, BaselineBuilder(2<<20, 16), RunOptions{Cores: 4})
	approxRun := RunFunctional(Multiprogram(fj.New(scale), fb.New(scale)), SplitBuilder(14, 0.25), RunOptions{Cores: 4})
	e := mp.Error(precise.Output, approxRun.Output)
	if e < 0 || e > 1 {
		t.Fatalf("combined error = %v", e)
	}
}
