package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewFluidanimate builds the fluidanimate benchmark in the style of PARSEC:
// a smoothed-particle fluid step over a lattice neighborhood (neighbor
// indices are computed from the grid, as cell lists allow). Only the
// particle density field is annotated approximate — positions and
// velocities stay precise — reproducing the very low approximate footprint
// of Table 2 (3.6%).
//
// Error metric: mean final particle position error relative to the domain.
func NewFluidanimate(scale float64) *Benchmark {
	particles := scaleInt(16384, scale, 64)
	const (
		neighbors = 8
		iters     = 3
		h         = 0.05 // smoothing radius
	)

	var px, py, vx, vy, dens memdata.Addr

	return &Benchmark{
		Name: "fluidanimate",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			px = l.allocF32(particles)
			py = l.allocF32(particles)
			vx = l.allocF32(particles)
			vy = l.allocF32(particles)
			dens = l.allocF32(particles)

			rng := rand.New(rand.NewSource(7004))
			side := int(math.Sqrt(float64(particles)))
			for i := 0; i < particles; i++ {
				// Jittered lattice inside the unit box.
				gx := float64(i%side) / float64(side)
				gy := float64(i/side) / float64(side)
				st.WriteF32(f32At(px, i), float32(gx+0.3*(rng.Float64()-0.5)/float64(side)))
				st.WriteF32(f32At(py, i), float32(gy+0.3*(rng.Float64()-0.5)/float64(side)))
				st.WriteF32(f32At(vx, i), float32(0.1*(rng.Float64()-0.5)))
				st.WriteF32(f32At(vy, i), float32(0.1*(rng.Float64()-0.5)))
			}
			return approx.MustAnnotations(
				approx.Region{Name: "density", Start: dens, End: dens + memdata.Addr(4*particles),
					Type: memdata.F32, Min: 0, Max: 16},
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			side := int(math.Sqrt(float64(particles)))
			neighborOf := func(i, f int) int {
				offs := [neighbors][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}, {-1, -1}, {1, 1}, {-1, 1}, {1, -1}}
				nx := (i%side + offs[f][0] + side) % side
				ny := (i/side + offs[f][1] + side) % side
				return ny*side + nx
			}
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(particles, cores, c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					for it := 0; it < iters; it++ {
						// Density pass: SPH poly6-style kernel over neighbors.
						for i := lo; i < hi; i++ {
							xi := float64(ctx.LoadF32(f32At(px, i)))
							yi := float64(ctx.LoadF32(f32At(py, i)))
							rho := 1.0
							for f := 0; f < neighbors; f++ {
								j := neighborOf(i, f)
								dx := xi - float64(ctx.LoadF32(f32At(px, j)))
								dy := yi - float64(ctx.LoadF32(f32At(py, j)))
								r2 := dx*dx + dy*dy
								if r2 < h*h {
									d := h*h - r2
									rho += 4 / (math.Pi * math.Pow(h, 8)) * d * d * d / 1e6
								}
							}
							ctx.Work(90)
							ctx.StoreF32(f32At(dens, i), float32(rho))
						}
						ctx.Barrier() // densities complete before forces read them
						// Force pass: pressure from density differences.
						for i := lo; i < hi; i++ {
							di := float64(ctx.LoadF32(f32At(dens, i)))
							fx, fy := 0.0, 0.0
							xi := float64(ctx.LoadF32(f32At(px, i)))
							yi := float64(ctx.LoadF32(f32At(py, i)))
							for f := 0; f < neighbors; f++ {
								j := neighborOf(i, f)
								dj := float64(ctx.LoadF32(f32At(dens, j)))
								dx := float64(ctx.LoadF32(f32At(px, j))) - xi
								dy := float64(ctx.LoadF32(f32At(py, j))) - yi
								push := (di + dj - 2) * 1e-3
								fx -= push * dx
								fy -= push * dy
							}
							ctx.Work(70)
							nvx := float64(ctx.LoadF32(f32At(vx, i)))*0.995 + fx
							nvy := float64(ctx.LoadF32(f32At(vy, i)))*0.995 + fy - 1e-4 // gravity
							ctx.StoreF32(f32At(vx, i), float32(nvx))
							ctx.StoreF32(f32At(vy, i), float32(nvy))
							ctx.StoreF32(f32At(px, i), float32(wrap(xi+nvx*0.01)))
							ctx.StoreF32(f32At(py, i), float32(wrap(yi+nvy*0.01)))
						}
						ctx.Barrier() // positions settled before the next iteration
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, 2*particles)
			for i := 0; i < particles; i++ {
				out[2*i] = float64(st.ReadF32(f32At(px, i)))
				out[2*i+1] = float64(st.ReadF32(f32At(py, i)))
			}
			return out
		},
		Error: func(precise, approximate []float64) float64 {
			sum := 0.0
			for i := 0; i < len(precise); i += 2 {
				dx := precise[i] - approximate[i]
				dy := precise[i+1] - approximate[i+1]
				sum += math.Sqrt(dx*dx + dy*dy) // domain is the unit box
			}
			return sum / float64(len(precise)/2)
		},
	}
}

// wrap keeps coordinates in the unit box with periodic boundaries.
func wrap(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v += 1
	}
	return v
}
