package workloads

import (
	"context"
	"math"
	"reflect"
	"testing"

	"doppelganger/internal/faults"
	"doppelganger/internal/quality"
	"doppelganger/internal/trace"
)

// batchSpecs builds the K diverse lanes of the differential test: precise
// baseline, two Doppelgänger geometries, a fault-injected lane, and a
// fault-injected lane with the quality guard attached. Injectors and guards
// are stateful, so each call constructs fresh, identically-seeded ones.
func batchSpecs(t *testing.T) ([]ReplaySpec, []*faults.Injector, []*quality.Controller) {
	t.Helper()
	const rate = 1e-4
	seed := faults.Derive(42, "fault/doppel/kmeans/0.0001")
	injF := faults.New(faults.Config{Seed: seed, Rate: rate})
	injQ := faults.New(faults.Config{Seed: seed, Rate: rate})
	qc, err := quality.New(quality.Config{Seed: faults.Derive(7, "quality/doppel/kmeans/0.0001"), Budget: 0.05, CanaryRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	specs := []ReplaySpec{
		{LLCB: BaselineBuilder(2<<20, 16), Opt: RunOptions{Cores: 4}},
		{LLCB: SplitBuilder(14, 0.25), Opt: RunOptions{Cores: 4}},
		{LLCB: UnifiedBuilder(14, 0.5), Opt: RunOptions{Cores: 4}},
		{LLCB: SplitBuilder(13, 0.25), Opt: RunOptions{Cores: 4, Faults: injF}},
		{LLCB: SplitBuilder(12, 0.5), Opt: RunOptions{Cores: 4, Faults: injQ, Quality: qc}},
	}
	return specs, []*faults.Injector{injF, injQ}, []*quality.Controller{qc}
}

// Satellite: ReplayBatch over K configs must equal K sequential
// ReplayFunctionalContext runs bit for bit — outputs, Doppelgänger stats,
// occupancy, fault sites and the guard's full breaker history included.
func TestReplayBatchMatchesSequentialRuns(t *testing.T) {
	const scale = 0.05
	f, err := ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	live := RunFunctional(f.New(scale), BaselineBuilder(2<<20, 16), RunOptions{Cores: 4, Record: true})
	cap, err := CaptureOf(live, trace.FileHeader{Benchmark: "kmeans", Scale: scale, Cores: 4, ConfigKey: "dgtf1|test|scale=0.05|cores=4"})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	specs, binj, bqc := batchSpecs(t)
	batched, err := ReplayFunctionalBatch(ctx, f.New(scale), cap, specs)
	if err != nil {
		t.Fatal(err)
	}

	seqSpecs, sinj, sqc := batchSpecs(t)
	for i, sp := range seqSpecs {
		seq, err := ReplayFunctionalContext(ctx, f.New(scale), cap, sp.LLCB, sp.Opt)
		if err != nil {
			t.Fatalf("lane %d sequential: %v", i, err)
		}
		b := batched[i]
		if len(b.Output) != len(seq.Output) {
			t.Fatalf("lane %d: output length %d != %d", i, len(b.Output), len(seq.Output))
		}
		for j := range b.Output {
			if math.Float64bits(b.Output[j]) != math.Float64bits(seq.Output[j]) {
				t.Fatalf("lane %d: output[%d] %x != %x", i, j, math.Float64bits(b.Output[j]), math.Float64bits(seq.Output[j]))
			}
		}
		if b.TagsAtEnd != seq.TagsAtEnd || b.DataBlocksAtEnd != seq.DataBlocksAtEnd {
			t.Fatalf("lane %d: occupancy (%d,%d) != (%d,%d)", i, b.TagsAtEnd, b.DataBlocksAtEnd, seq.TagsAtEnd, seq.DataBlocksAtEnd)
		}
		if !reflect.DeepEqual(b.DoppelStats, seq.DoppelStats) {
			t.Fatalf("lane %d: doppel stats %+v != %+v", i, b.DoppelStats, seq.DoppelStats)
		}
		if b.AvgTagsPerData != seq.AvgTagsPerData || b.CompressionRatio != seq.CompressionRatio {
			t.Fatalf("lane %d: tag/data ratios diverged", i)
		}
	}

	// The stateful attachments relived the identical histories: same fault
	// draws and sites, same breaker transitions and final estimate.
	for i := range binj {
		for _, tg := range faults.Targets() {
			if binj[i].Stats(tg) != sinj[i].Stats(tg) {
				t.Fatalf("injector %d target %s: %+v != %+v", i, tg, binj[i].Stats(tg), sinj[i].Stats(tg))
			}
		}
	}
	for i := range bqc {
		if bqc[i].Stats() != sqc[i].Stats() {
			t.Fatalf("guard %d stats %+v != %+v", i, bqc[i].Stats(), sqc[i].Stats())
		}
		if math.Float64bits(bqc[i].Estimate()) != math.Float64bits(sqc[i].Estimate()) {
			t.Fatalf("guard %d estimate diverged", i)
		}
		if !reflect.DeepEqual(bqc[i].Transitions(), sqc[i].Transitions()) {
			t.Fatalf("guard %d transitions %+v != %+v", i, bqc[i].Transitions(), sqc[i].Transitions())
		}
	}
}
