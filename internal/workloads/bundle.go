package workloads

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

// Bundle is a self-contained simulation artifact: the per-core memory
// traces of a run together with the initial memory image and the
// programmer annotations — everything the timing simulator needs to replay
// the workload against any LLC organization, without re-executing the
// kernels.
type Bundle struct {
	Traces      *trace.Recorder
	InitialMem  *memdata.Store
	Annotations *approx.Annotations
}

// BundleOf packages a recorded functional run.
func BundleOf(run *RunResult) (*Bundle, error) {
	if run.Recorder == nil || run.InitialMem == nil {
		return nil, fmt.Errorf("workloads: run was not recorded (RunOptions.Record)")
	}
	return &Bundle{
		Traces:      run.Recorder,
		InitialMem:  run.InitialMem,
		Annotations: run.Annotations,
	}, nil
}

// Bundle format: "DPBL", version, annotation section, memory section, then
// the trace section in trace.WriteTo's format.
const (
	bundleMagic   = "DPBL"
	bundleVersion = 1
)

// WriteTo serializes the bundle.
func (b *Bundle) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	var u32 [4]byte
	var u64 [8]byte
	putU32 := func(v uint32) error { binary.LittleEndian.PutUint32(u32[:], v); return write(u32[:]) }
	putU64 := func(v uint64) error { binary.LittleEndian.PutUint64(u64[:], v); return write(u64[:]) }

	if err := write([]byte(bundleMagic)); err != nil {
		return n, err
	}
	if err := putU32(bundleVersion); err != nil {
		return n, err
	}

	// Annotations.
	regions := b.Annotations.Regions()
	if err := putU32(uint32(len(regions))); err != nil {
		return n, err
	}
	for _, r := range regions {
		if err := putU32(uint32(len(r.Name))); err != nil {
			return n, err
		}
		if err := write([]byte(r.Name)); err != nil {
			return n, err
		}
		if err := putU32(uint32(r.Start)); err != nil {
			return n, err
		}
		if err := putU32(uint32(r.End)); err != nil {
			return n, err
		}
		if err := putU32(uint32(r.Type)); err != nil {
			return n, err
		}
		if err := putU64(math.Float64bits(r.Min)); err != nil {
			return n, err
		}
		if err := putU64(math.Float64bits(r.Max)); err != nil {
			return n, err
		}
	}

	// Memory image: touched blocks in unspecified order.
	blocks := make(map[memdata.Addr]*memdata.Block)
	collectBlocks(b.InitialMem, blocks)
	if err := putU64(uint64(len(blocks))); err != nil {
		return n, err
	}
	for a, blk := range blocks {
		if err := putU32(uint32(a)); err != nil {
			return n, err
		}
		if err := write(blk[:]); err != nil {
			return n, err
		}
	}

	if err := bw.Flush(); err != nil {
		return n, err
	}
	k, err := b.Traces.WriteTo(w)
	return n + k, err
}

// collectBlocks snapshots a store's touched blocks. The store has no
// iterator; clone through a probe of annotated and trace-touched space
// would be lossy, so Store gains an iterator — see memdata.ForEachBlock.
func collectBlocks(st *memdata.Store, out map[memdata.Addr]*memdata.Block) {
	st.ForEachBlock(func(a memdata.Addr, blk *memdata.Block) {
		c := *blk
		out[a] = &c
	})
}

// ReadBundle deserializes a bundle written by WriteTo.
func ReadBundle(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	var u32 [4]byte
	var u64 [8]byte
	getU32 := func() (uint32, error) {
		_, err := io.ReadFull(br, u32[:])
		return binary.LittleEndian.Uint32(u32[:]), err
	}
	getU64 := func() (uint64, error) {
		_, err := io.ReadFull(br, u64[:])
		return binary.LittleEndian.Uint64(u64[:]), err
	}

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workloads: bundle header: %w", err)
	}
	if string(magic[:]) != bundleMagic {
		return nil, fmt.Errorf("workloads: bad bundle magic %q", magic[:])
	}
	if v, err := getU32(); err != nil || v != bundleVersion {
		return nil, fmt.Errorf("workloads: unsupported bundle version (%v)", err)
	}

	nregions, err := getU32()
	if err != nil || nregions > 1<<16 {
		return nil, fmt.Errorf("workloads: bad region count %d (%v)", nregions, err)
	}
	regions := make([]approx.Region, nregions)
	for i := range regions {
		nameLen, err := getU32()
		if err != nil || nameLen > 4096 {
			return nil, fmt.Errorf("workloads: bad region name length (%v)", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		start, err := getU32()
		if err != nil {
			return nil, err
		}
		end, err := getU32()
		if err != nil {
			return nil, err
		}
		typ, err := getU32()
		if err != nil {
			return nil, err
		}
		minBits, err := getU64()
		if err != nil {
			return nil, err
		}
		maxBits, err := getU64()
		if err != nil {
			return nil, err
		}
		regions[i] = approx.Region{
			Name:  string(name),
			Start: memdata.Addr(start),
			End:   memdata.Addr(end),
			Type:  memdata.ElemType(typ),
			Min:   math.Float64frombits(minBits),
			Max:   math.Float64frombits(maxBits),
		}
	}
	ann, err := approx.NewAnnotations(regions...)
	if err != nil {
		return nil, fmt.Errorf("workloads: bundle annotations: %w", err)
	}

	nblocks, err := getU64()
	if err != nil || nblocks > 1<<28 {
		return nil, fmt.Errorf("workloads: bad block count %d (%v)", nblocks, err)
	}
	st := memdata.NewStore()
	for i := uint64(0); i < nblocks; i++ {
		a, err := getU32()
		if err != nil {
			return nil, err
		}
		var blk memdata.Block
		if _, err := io.ReadFull(br, blk[:]); err != nil {
			return nil, err
		}
		st.WriteBlock(memdata.Addr(a), &blk)
	}

	traces, err := trace.ReadFrom(br)
	if err != nil {
		return nil, err
	}
	return &Bundle{Traces: traces, InitialMem: st, Annotations: ann}, nil
}
