package workloads

import (
	"fmt"
	"strings"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// programStride separates the physical address spaces of co-scheduled
// programs (64 MB apiece keeps several programs inside 32-bit addresses).
const programStride = memdata.Addr(0x0400_0000)

// Multiprogram combines several benchmarks into one workload running
// side by side on the CMP: program i's memory image is laid out in its own
// physical-address slice and its threads run on every len(progs)-th core.
// The merged annotations model the paper's per-application range registers
// (§4.1: "Doppelgänger can be used with multiprogrammed workloads by
// storing this information per application").
//
// The combined Output concatenates the programs' outputs; Error averages
// the per-program errors under each program's own metric. At least one core
// per program is required at run time (Cores ≥ len(progs)).
func Multiprogram(progs ...*Benchmark) *Benchmark {
	if len(progs) == 0 {
		panic("workloads: Multiprogram needs at least one program")
	}
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.Name
	}
	outputLens := make([]int, len(progs))

	return &Benchmark{
		Name: strings.Join(names, "+"),
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			var regions []approx.Region
			for i, p := range progs {
				ann := p.Init(st, base+memdata.Addr(i)*programStride)
				regions = append(regions, ann.Regions()...)
			}
			merged, err := approx.NewAnnotations(regions...)
			if err != nil {
				panic(fmt.Sprintf("workloads: multiprogram annotations overlap: %v", err))
			}
			return merged
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			if cores < len(progs) {
				panic(fmt.Sprintf("workloads: %d programs need at least %d cores", len(progs), len(progs)))
			}
			ks := make([]func(*funcsim.CoreCtx), cores)
			for i, p := range progs {
				// Program i runs on cores i, i+len, i+2len, ...
				var mine []int
				for c := i; c < cores; c += len(progs) {
					mine = append(mine, c)
				}
				sub := p.Kernels(len(mine))
				for j, c := range mine {
					ks[c] = sub[j]
				}
			}
			return ks
		},
		Groups: func(cores int) []int {
			groups := make([]int, cores)
			for c := range groups {
				groups[c] = c % len(progs)
			}
			return groups
		},
		Output: func(st *memdata.Store) []float64 {
			var out []float64
			for i, p := range progs {
				o := p.Output(st)
				outputLens[i] = len(o)
				out = append(out, o...)
			}
			return out
		},
		Error: func(precise, approximate []float64) float64 {
			// Per-program metric, averaged. Output lengths were captured by
			// an Output pass of THIS instance (layouts are identical across
			// runs of equal-scale programs).
			total := 0
			for _, n := range outputLens {
				total += n
			}
			if total != len(precise) {
				panic("workloads: Multiprogram.Error needs an Output pass of this instance first")
			}
			sum := 0.0
			off := 0
			for i, p := range progs {
				n := outputLens[i]
				sum += p.Error(precise[off:off+n], approximate[off:off+n])
				off += n
			}
			return sum / float64(len(progs))
		},
	}
}
