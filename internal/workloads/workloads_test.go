package workloads

import (
	"testing"

	"doppelganger/internal/memdata"
)

func TestByName(t *testing.T) {
	f, err := ByName("kmeans")
	if err != nil || f.Name != "kmeans" {
		t.Fatalf("ByName = %v, %v", f.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestAnnotationsCoverOnlyLaidOutMemory: every annotated region must be
// fully inside the touched memory image, block aligned, with a sane range.
func TestAnnotationsWithinImage(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			b := f.New(0.05)
			st := memdata.NewStore()
			ann := b.Init(st, DefaultBase)
			if ann == nil {
				t.Fatal("nil annotations")
			}
			// The layout is a bump allocator, so every region must sit below
			// the image's high-water mark even if it is output-only (not yet
			// written at Init time).
			var maxTouched memdata.Addr
			for a := memdata.Addr(0x0100_0000); a < 0x1000_0000; a += 1 << 20 {
				if st.Peek(a) != nil && a > maxTouched {
					maxTouched = a
				}
			}
			for _, r := range ann.Regions() {
				if r.Start%memdata.BlockSize != 0 || r.End%memdata.BlockSize != 0 {
					t.Errorf("region %q not block aligned", r.Name)
				}
				if r.Max <= r.Min {
					t.Errorf("region %q has empty range [%v,%v]", r.Name, r.Min, r.Max)
				}
				if r.Start > maxTouched+(1<<20) {
					t.Errorf("region %q (%v) lies beyond the image high-water mark (%v)", r.Name, r.Start, maxTouched)
				}
			}
		})
	}
}

// TestErrorMetricIdentity: every benchmark's metric must report zero error
// for identical outputs and a value in [0, 1] for perturbed ones.
func TestErrorMetricIdentity(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			b := f.New(0.05)
			st := memdata.NewStore()
			b.Init(st, DefaultBase)
			// Run single-core for speed; we only need an output vector.
			res := RunFunctional(f.New(0.05), BaselineBuilder(2<<20, 16), RunOptions{Cores: 1})
			if got := b.Error(res.Output, res.Output); got != 0 {
				t.Errorf("self error = %v", got)
			}
			perturbed := make([]float64, len(res.Output))
			copy(perturbed, res.Output)
			for i := range perturbed {
				if i%7 == 0 {
					perturbed[i] = perturbed[i]*1.3 + 1
				}
			}
			e := b.Error(res.Output, perturbed)
			if e <= 0 || e > 1 {
				t.Errorf("perturbed error = %v, want (0,1]", e)
			}
		})
	}
}

// TestCoreCountIndependentOutput: a benchmark's precise output must not
// depend on how many cores execute it (static partitioning + barriers).
func TestCoreCountIndependentOutput(t *testing.T) {
	for _, name := range []string{"blackscholes", "inversek2j", "jmeint", "jpeg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f, _ := ByName(name)
			one := RunFunctional(f.New(0.05), BaselineBuilder(2<<20, 16), RunOptions{Cores: 1})
			four := RunFunctional(f.New(0.05), BaselineBuilder(2<<20, 16), RunOptions{Cores: 4})
			b := f.New(0.05)
			if err := b.Error(one.Output, four.Output); err != 0 {
				t.Errorf("output differs across core counts: error %v", err)
			}
		})
	}
}

// TestApproximateFootprintOrdering: the suite must span very low to very
// high approximate footprints, with the paper's extremes in the right
// order (Table 2: swaptions/fluidanimate lowest, inversek2j/jpeg highest).
func TestApproximateFootprintOrdering(t *testing.T) {
	frac := func(name string) float64 {
		f, _ := ByName(name)
		b := f.New(0.05)
		st := memdata.NewStore()
		ann := b.Init(st, DefaultBase)
		total := st.Len() * memdata.BlockSize
		if total == 0 {
			t.Fatalf("%s touched no memory", name)
		}
		return float64(ann.ApproxBytes()) / float64(total)
	}
	lo1, lo2 := frac("swaptions"), frac("fluidanimate")
	hi1, hi2 := frac("inversek2j"), frac("jpeg")
	for _, v := range []float64{lo1, lo2} {
		if v > 0.35 {
			t.Errorf("low-footprint benchmark has %v approximate", v)
		}
	}
	for _, v := range []float64{hi1, hi2} {
		if v < 0.9 {
			t.Errorf("high-footprint benchmark has only %v approximate", v)
		}
	}
}

// TestScaleChangesFootprint: the Scale knob must actually size the image.
func TestScaleChangesFootprint(t *testing.T) {
	f, _ := ByName("inversek2j")
	small, big := f.New(0.05), f.New(0.5)
	s1, s2 := memdata.NewStore(), memdata.NewStore()
	a1 := small.Init(s1, DefaultBase)
	a2 := big.Init(s2, DefaultBase)
	if a2.ApproxBytes() <= a1.ApproxBytes() {
		t.Errorf("scale had no effect: %d vs %d", a1.ApproxBytes(), a2.ApproxBytes())
	}
}
