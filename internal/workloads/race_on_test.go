//go:build race

package workloads

// raceEnabled reports whether the binary was built with the race detector.
// Full-scale development probes skip under it: the detector's slowdown pushes
// them past the test timeout without adding coverage the reduced-scale tests
// don't already provide.
const raceEnabled = true
