package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewBlackscholes builds the blackscholes benchmark: European option
// pricing with the Black–Scholes closed form, as in PARSEC. The annotated
// approximate data is the input option parameter arrays (spot, strike,
// rate, volatility, time-to-maturity); option types and output prices are
// precise. Interest rates and volatilities are drawn from small sets of
// market-wide values, which is why the paper observes substantial *exact*
// redundancy in this benchmark (§2, §5.1).
//
// Error metric: mean relative error of the option prices.
func NewBlackscholes(scale float64) *Benchmark {
	n := scaleInt(40960, scale, 64)
	const passes = 3

	var (
		spot, strike, rate, vol, otime memdata.Addr
		otype, price                   memdata.Addr
	)

	return &Benchmark{
		Name: "blackscholes",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			spot = l.allocF32(n)
			strike = l.allocF32(n)
			rate = l.allocF32(n)
			vol = l.allocF32(n)
			otime = l.allocF32(n)
			otype = l.allocI32(n)
			price = l.allocF32(n)

			rng := rand.New(rand.NewSource(7001))
			rates := []float32{0.025, 0.0275, 0.03, 0.035, 0.04, 0.045, 0.05, 0.055}
			vols := []float32{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50}
			times := []float32{0.25, 0.5, 1.0, 2.0}
			// Option chains: every underlying lists 256 options sharing its
			// spot price, with strikes on the exchange's standard moneyness
			// ladder — which is why blackscholes parameter blocks show so
			// much exact redundancy (§2).
			ladder := make([]float32, 16)
			for k := range ladder {
				ladder[k] = 0.70 + 0.04*float32(k)
			}
			underlyings := (n + 255) / 256
			uspot := make([]float32, underlyings)
			for u := range uspot {
				uspot[u] = 10 + 90*rng.Float32()
			}
			for i := 0; i < n; i++ {
				u := i / 256
				// Spots carry per-quote bid/ask noise of a few basis points,
				// so parameter blocks are similar rather than identical.
				jitter := float32(1 + 0.003*rng.NormFloat64())
				st.WriteF32(f32At(spot, i), uspot[u]*jitter)
				st.WriteF32(f32At(strike, i), uspot[u]*ladder[i%16])
				grp := u % len(rates)
				st.WriteF32(f32At(rate, i), rates[grp])
				st.WriteF32(f32At(vol, i), vols[u%len(vols)])
				st.WriteF32(f32At(otime, i), times[(i/512)%len(times)])
				st.WriteI32(i32At(otype, i), int32(rng.Intn(2)))
			}

			// A single expected range per float type, as §4.1 prescribes:
			// spots and strikes reach 100, so rates (~0.03) sit in a tiny
			// corner of the range — the same effect the paper describes for
			// swaptions.
			mk := func(name string, base memdata.Addr) approx.Region {
				return approx.Region{
					Name: name, Start: base, End: base + memdata.Addr(4*n),
					Type: memdata.F32, Min: 0, Max: 130,
				}
			}
			return approx.MustAnnotations(
				mk("spot", spot), mk("strike", strike), mk("rate", rate),
				mk("vol", vol), mk("otime", otime),
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(n, cores, c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					for p := 0; p < passes; p++ {
						for i := lo; i < hi; i++ {
							s := float64(ctx.LoadF32(f32At(spot, i)))
							k := float64(ctx.LoadF32(f32At(strike, i)))
							r := float64(ctx.LoadF32(f32At(rate, i)))
							v := float64(ctx.LoadF32(f32At(vol, i)))
							t := float64(ctx.LoadF32(f32At(otime, i)))
							call := ctx.LoadI32(i32At(otype, i)) == 0
							ctx.Work(150) // CNDF evaluation and FP pipeline
							ctx.StoreF32(f32At(price, i), float32(blackScholes(s, k, r, v, t, call)))
						}
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, n)
			for i := 0; i < n; i++ {
				out[i] = float64(st.ReadF32(f32At(price, i)))
			}
			return out
		},
		Error: meanRelError,
	}
}

// blackScholes evaluates the closed-form European option price, guarding
// against degenerate (possibly approximated) parameters.
func blackScholes(s, k, r, v, t float64, call bool) float64 {
	if s < 0.01 {
		s = 0.01
	}
	if k < 0.01 {
		k = 0.01
	}
	if v < 1e-4 {
		v = 1e-4
	}
	if t < 1e-4 {
		t = 1e-4
	}
	sq := v * math.Sqrt(t)
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / sq
	d2 := d1 - sq
	if call {
		return s*cndf(d1) - k*math.Exp(-r*t)*cndf(d2)
	}
	return k*math.Exp(-r*t)*cndf(-d2) - s*cndf(-d1)
}

// cndf is the cumulative normal distribution function (Abramowitz–Stegun
// polynomial approximation, as used by PARSEC's blackscholes).
func cndf(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	kf := 1 / (1 + 0.2316419*x)
	poly := kf * (0.319381530 + kf*(-0.356563782+kf*(1.781477937+kf*(-1.821255978+kf*1.330274429))))
	v := 1 - math.Exp(-x*x/2)/math.Sqrt(2*math.Pi)*poly
	if neg {
		return 1 - v
	}
	return v
}
