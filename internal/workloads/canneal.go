package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewCanneal builds the canneal benchmark in the style of PARSEC: simulated
// annealing of a netlist placement. Cell coordinates are the annotated
// approximate data (32-bit integers on a 0–8191 routing grid); the netlist
// adjacency is precise. The random element picks give canneal the random
// LLC access behaviour the paper calls out as the most miss-sensitive
// workload (§5.2).
//
// Error metric: relative difference of the final total wirelength.
func NewCanneal(scale float64) *Benchmark {
	cells := scaleInt(262144, scale, 64)
	movesPerCore := scaleInt(110000, scale, 1)
	const fanout = 4

	var xs, ys, nets memdata.Addr

	return &Benchmark{
		Name: "canneal",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			xs = l.allocI32(cells)
			ys = l.allocI32(cells)
			nets = l.allocI32(cells * fanout)

			rng := rand.New(rand.NewSource(7002))
			// The placement is row-based and mostly converged (annealing's
			// later phases refine an already-ordered layout): cells sit on a
			// routing-track grid with small residual jitter. Blocks of
			// consecutive cells therefore hold approximately similar
			// coordinates — the same chunk-of-a-row pattern repeats across
			// rows for x, and whole rows share y.
			const rowCells = 512
			const pitch = 16
			for i := 0; i < cells; i++ {
				col, row := i%rowCells, i/rowCells
				st.WriteI32(i32At(xs, i), int32(col*pitch+rng.Intn(2)))
				st.WriteI32(i32At(ys, i), int32((row%rowCells)*pitch+rng.Intn(2)))
				for f := 0; f < fanout; f++ {
					// Mostly local nets with some long-range connections,
					// like real netlists.
					var nb int
					if rng.Intn(4) == 0 {
						nb = rng.Intn(cells)
					} else {
						nb = (i + rng.Intn(512) - 256 + cells) % cells
					}
					st.WriteI32(i32At(nets, i*fanout+f), int32(nb))
				}
			}
			return approx.MustAnnotations(
				approx.Region{Name: "x", Start: xs, End: xs + memdata.Addr(4*cells),
					Type: memdata.I32, Min: 0, Max: 8191},
				approx.Region{Name: "y", Start: ys, End: ys + memdata.Addr(4*cells),
					Type: memdata.I32, Min: 0, Max: 8191},
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				seed := int64(9100 + c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					rng := rand.New(rand.NewSource(seed))
					// Late-phase annealing: low temperature (few accepted
					// uphill moves, so the converged placement structure
					// survives) and region-sweeping move selection with
					// occasional global moves — canneal's characteristic
					// random-access behaviour at a realistic miss rate.
					temperature := 15.0
					window := rng.Intn(cells)
					for m := 0; m < movesPerCore; m++ {
						if m%8192 == 0 {
							window = rng.Intn(cells)
						}
						// Local candidates swap a cell with the one directly
						// above or below it (same column): accepted swaps
						// exchange nearly equal coordinates, so the placement
						// structure (and block similarity) survives.
						// Occasional global proposals model long-range moves,
						// which the low temperature almost always rejects.
						var a, b int
						if rng.Intn(32) != 0 {
							a = (window + rng.Intn(8192)) % cells
							b = (a + (rng.Intn(2)*2-1)*512*(1+rng.Intn(2)) + cells) % cells
						} else {
							a = rng.Intn(cells)
							b = rng.Intn(cells)
						}
						if a == b {
							continue
						}
						ax := ctx.LoadI32(i32At(xs, a))
						ay := ctx.LoadI32(i32At(ys, a))
						bx := ctx.LoadI32(i32At(xs, b))
						by := ctx.LoadI32(i32At(ys, b))
						delta := 0
						for f := 0; f < fanout; f++ {
							na := int(ctx.LoadI32(i32At(nets, a*fanout+f)))
							nx := ctx.LoadI32(i32At(xs, na))
							ny := ctx.LoadI32(i32At(ys, na))
							delta += wire(bx, by, nx, ny) - wire(ax, ay, nx, ny)
							nb := int(ctx.LoadI32(i32At(nets, b*fanout+f)))
							mx := ctx.LoadI32(i32At(xs, nb))
							my := ctx.LoadI32(i32At(ys, nb))
							delta += wire(ax, ay, mx, my) - wire(bx, by, mx, my)
						}
						ctx.Work(60)
						// Annealing acceptance with a deterministic schedule;
						// zero-delta null moves are skipped, as production
						// annealers do.
						if delta < 0 || (delta > 0 && rng.Float64() < math.Exp(-float64(delta)/temperature)) {
							ctx.StoreI32(i32At(xs, a), bx)
							ctx.StoreI32(i32At(ys, a), by)
							ctx.StoreI32(i32At(xs, b), ax)
							ctx.StoreI32(i32At(ys, b), ay)
						}
						temperature *= 0.99998
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			total := 0.0
			for i := 0; i < cells; i++ {
				x := st.ReadI32(i32At(xs, i))
				y := st.ReadI32(i32At(ys, i))
				for f := 0; f < fanout; f++ {
					nb := int(st.ReadI32(i32At(nets, i*fanout+f)))
					total += float64(wire(x, y, st.ReadI32(i32At(xs, nb)), st.ReadI32(i32At(ys, nb))))
				}
			}
			return []float64{total}
		},
		Error: func(precise, approximate []float64) float64 {
			if precise[0] == 0 {
				return 0
			}
			return math.Abs(precise[0]-approximate[0]) / precise[0]
		},
	}
}

// wire is the Manhattan wirelength between two cells.
func wire(ax, ay, bx, by int32) int {
	dx := int(ax - bx)
	if dx < 0 {
		dx = -dx
	}
	dy := int(ay - by)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
