package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewJPEG builds the jpeg benchmark in the style of AxBench: lossy image
// compression over 8×8 blocks — forward DCT, quantization, dequantization
// and inverse DCT — writing the reconstructed image. Both the input and
// output images are annotated approximate (single-channel pixels, range
// 0–255), giving the near-total approximate footprint the paper reports
// (98.4%, Table 2). Pixels exercise the §3.7 rule that skips the mapping
// step when the map space is wider than the element type.
//
// Error metric: mean absolute pixel difference relative to full scale.
func NewJPEG(scale float64) *Benchmark {
	side := scaleInt(768, math.Sqrt(scale), 8)
	n := side * side

	var in, out, checks memdata.Addr

	return &Benchmark{
		Name: "jpeg",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			in = l.allocU8(n)
			out = l.allocU8(n)
			checks = l.allocI32(side) // per-row checksums of the readback pass

			// Synthetic photographic image: smooth large-scale structure
			// (so spatially adjacent blocks are approximately similar, as
			// in the paper's Fig. 1) plus mild texture noise.
			rng := rand.New(rand.NewSource(7007))
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					v := 128 +
						55*math.Sin(float64(x)/41.0) +
						45*math.Cos(float64(y)/59.0) +
						20*math.Sin(float64(x+y)/97.0) +
						4*(rng.Float64()-0.5)
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					st.WriteU8(u8At(in, y*side+x), uint8(v))
				}
			}
			return approx.MustAnnotations(
				approx.Region{Name: "image-in", Start: in, End: in + memdata.Addr(n),
					Type: memdata.U8, Min: 0, Max: 255},
				approx.Region{Name: "image-out", Start: out, End: out + memdata.Addr(n),
					Type: memdata.U8, Min: 0, Max: 255},
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			rows := side / 8
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(rows, cores, c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					var px, coef [64]float64
					for br := lo; br < hi; br++ {
						for bc := 0; bc < side/8; bc++ {
							for y := 0; y < 8; y++ {
								for x := 0; x < 8; x++ {
									px[y*8+x] = float64(ctx.LoadU8(u8At(in, (br*8+y)*side+bc*8+x))) - 128
								}
							}
							fdct(&px, &coef)
							for i := 0; i < 64; i++ {
								q := float64(jpegQuant[i])
								coef[i] = math.Round(coef[i]/q) * q
							}
							idct(&coef, &px)
							ctx.Work(900) // two 8x8 DCT passes + quantization
							for y := 0; y < 8; y++ {
								for x := 0; x < 8; x++ {
									v := math.Round(px[y*8+x] + 128)
									if v < 0 {
										v = 0
									}
									if v > 255 {
										v = 255
									}
									ctx.StoreU8(u8At(out, (br*8+y)*side+bc*8+x), uint8(v))
								}
							}
						}
					}
					ctx.Barrier()
					// Readback pass: the consumer stage (e.g. the encoder's
					// bitstream writer) rescans the reconstructed image,
					// observing whatever the LLC now returns for it.
					rlo, rhi := span(side, cores, c)
					for y := rlo; y < rhi; y++ {
						sum := int32(0)
						for x := 0; x < side; x++ {
							sum += int32(ctx.LoadU8(u8At(out, y*side+x)))
						}
						ctx.Work(side)
						ctx.StoreI32(i32At(checks, y), sum)
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			o := make([]float64, n)
			for i := 0; i < n; i++ {
				o[i] = float64(st.ReadU8(u8At(out, i)))
			}
			return o
		},
		// Image difference: mean absolute pixel error over full scale.
		Error: func(precise, approximate []float64) float64 {
			if len(precise) == 0 {
				return 0
			}
			sum := 0.0
			for i := range precise {
				sum += math.Abs(precise[i]-approximate[i]) / 255
			}
			return sum / float64(len(precise))
		},
	}
}

// jpegQuant is the standard JPEG luminance quantization table (quality 50).
var jpegQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// fdct is the forward 8×8 DCT-II.
func fdct(px, out *[64]float64) {
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			sum := 0.0
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += px[y*8+x] * dctCos[x][v] * dctCos[y][u]
				}
			}
			out[u*8+v] = 0.25 * dctC(u) * dctC(v) * sum
		}
	}
}

// idct is the inverse 8×8 DCT.
func idct(coef, out *[64]float64) {
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			sum := 0.0
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					sum += dctC(u) * dctC(v) * coef[u*8+v] * dctCos[x][v] * dctCos[y][u]
				}
			}
			out[y*8+x] = 0.25 * sum
		}
	}
}

func dctC(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

var dctCos = func() (t [8][8]float64) {
	for x := 0; x < 8; x++ {
		for f := 0; f < 8; f++ {
			t[x][f] = math.Cos((2*float64(x) + 1) * float64(f) * math.Pi / 16)
		}
	}
	return
}()
