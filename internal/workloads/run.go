package workloads

import (
	"context"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/faults"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
	"doppelganger/internal/quality"
	"doppelganger/internal/trace"
)

// HierConfig returns the private-cache configuration of the paper's Table 1:
// 16 KB 4-way L1 and 128 KB 8-way L2, per core.
func HierConfig(cores int) funcsim.Config {
	return funcsim.Config{
		Cores: cores,
		L1:    cache.Config{Name: "L1", SizeBytes: 16 << 10, Ways: 4},
		L2:    cache.Config{Name: "L2", SizeBytes: 128 << 10, Ways: 8},
	}
}

// LLCBuilder constructs an LLC organization over a backing store and the
// workload's annotations.
type LLCBuilder func(st *memdata.Store, ann *approx.Annotations) core.LLC

// RunOptions controls a functional run.
type RunOptions struct {
	Cores         int
	Record        bool // record per-core traces
	SnapshotEvery int  // LLC fills between snapshots (0: off)
	SnapshotFn    func(llc core.LLC)

	// Metrics, when non-nil, attaches the whole hierarchy (private caches,
	// MSI tracker, LLC organization) to the registry for the duration of the
	// run. nil keeps the zero-cost disabled path.
	Metrics *metrics.Registry

	// Faults, when non-nil, injects faults into the LLC organization for the
	// duration of the run. nil keeps the zero-cost disabled path.
	Faults *faults.Injector

	// Quality, when non-nil, attaches the online quality guard to the LLC
	// organization (Doppelgänger variants only). nil keeps the zero-cost
	// disabled path.
	Quality *quality.Controller
}

// RunResult is everything a functional run produces.
type RunResult struct {
	Output      []float64
	Store       *memdata.Store
	InitialMem  *memdata.Store // snapshot before execution, for trace replay
	Annotations *approx.Annotations
	Recorder    *trace.Recorder
	Hier        *funcsim.Hierarchy
	LLC         core.LLC

	// Occupancy captured just before the final flush (the flush empties the
	// LLC so dirty data reaches memory for output extraction).
	TagsAtEnd       int
	DataBlocksAtEnd int

	// Doppelgänger-side counters captured pre-flush (nil for baseline
	// organizations); AvgTagsPerData and CompressionRatio likewise.
	DoppelStats      *core.Stats
	AvgTagsPerData   float64
	CompressionRatio float64
}

// RunFunctional executes the benchmark against the LLC organization built
// by llcb and returns the final output plus all recording artifacts. The
// hierarchy is flushed before the output is read so every dirty block
// (including approximated writebacks) reaches memory.
func RunFunctional(b *Benchmark, llcb LLCBuilder, opt RunOptions) *RunResult {
	res, err := RunFunctionalContext(context.Background(), b, llcb, opt)
	if err != nil {
		// Background contexts are never cancelled.
		panic(err)
	}
	return res
}

// RunFunctionalContext is RunFunctional with cooperative cancellation: when
// ctx is cancelled mid-run the kernels unwind promptly and (nil, ctx.Err())
// is returned. With a non-cancellable context the execution path is
// identical to RunFunctional.
func RunFunctionalContext(ctx context.Context, b *Benchmark, llcb LLCBuilder, opt RunOptions) (*RunResult, error) {
	if opt.Cores == 0 {
		opt.Cores = 4
	}
	st := memdata.NewStore()
	ann := b.Init(st, DefaultBase)
	var initial *memdata.Store
	var rec *trace.Recorder
	if opt.Record {
		initial = st.Clone()
		rec = trace.NewRecorder(opt.Cores)
	}
	llc := llcb(st, ann)
	h := funcsim.New(HierConfig(opt.Cores), llc, st, ann, rec)
	h.AttachMetrics(opt.Metrics)
	h.AttachFaults(opt.Faults)
	h.AttachQuality(opt.Quality)
	h.SnapshotEvery = opt.SnapshotEvery
	h.SnapshotFn = opt.SnapshotFn
	var groups []int
	if b.Groups != nil {
		groups = b.Groups(opt.Cores)
	}
	if err := funcsim.RunGroupedContext(ctx, h, b.Kernels(opt.Cores), groups); err != nil {
		return nil, err
	}
	// Always take a final pre-flush snapshot so cache-resident workloads
	// (too few fills to trigger the periodic sampler) still get analyzed.
	if opt.SnapshotFn != nil {
		opt.SnapshotFn(llc)
	}
	tags, blocks := llc.TagEntries(), llc.DataBlocks()
	res := &RunResult{}
	var dopp *core.Doppelganger
	switch l := llc.(type) {
	case *core.Split:
		dopp = l.Doppel
	case *core.Doppelganger:
		dopp = l
	}
	if dopp != nil {
		stats := dopp.Stats
		res.DoppelStats = &stats
		res.AvgTagsPerData = dopp.AvgTagsPerData()
		res.CompressionRatio = dopp.CompressionRatio()
	}
	h.Flush()
	res.Output = b.Output(st)
	res.Store = st
	res.InitialMem = initial
	res.Annotations = ann
	res.Recorder = rec
	res.Hier = h
	res.LLC = llc
	res.TagsAtEnd = tags
	res.DataBlocksAtEnd = blocks
	return res, nil
}

// BaselineBuilder returns the conventional LLC of the given size (Table 1
// baseline: 2 MB, 16-way).
func BaselineBuilder(sizeBytes, ways int) LLCBuilder {
	return func(st *memdata.Store, ann *approx.Annotations) core.LLC {
		return core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: sizeBytes, Ways: ways}, st, ann)
	}
}

// SplitBuilder returns the split precise+Doppelgänger organization
// (Table 1): a 1 MB precise cache plus a Doppelgänger cache with 16 K tags
// and dataFrac×16 K data entries at the given map size.
func SplitBuilder(m int, dataFrac float64) LLCBuilder {
	return func(st *memdata.Store, ann *approx.Annotations) core.LLC {
		return core.MustNewSplit(
			cache.Config{Name: "precise", SizeBytes: 1 << 20, Ways: 16},
			doppelCfg("doppel", 16<<10, m, dataFrac),
			st, ann)
	}
}

// CustomSplitBuilder returns the split organization with an explicit
// Doppelgänger configuration (used by the extension experiments: hash
// variants, replacement policies, compressed data arrays).
func CustomSplitBuilder(d core.Config) LLCBuilder {
	return func(st *memdata.Store, ann *approx.Annotations) core.LLC {
		return core.MustNewSplit(
			cache.Config{Name: "precise", SizeBytes: 1 << 20, Ways: 16},
			d, st, ann)
	}
}

// UnifiedBuilder returns the uniDoppelgänger organization (Table 1): 32 K
// tags and dataFrac×32 K data entries.
func UnifiedBuilder(m int, dataFrac float64) LLCBuilder {
	return func(st *memdata.Store, ann *approx.Annotations) core.LLC {
		cfg := doppelCfg("unidoppel", 32<<10, m, dataFrac)
		cfg.Unified = true
		return core.MustNew(cfg, st, ann)
	}
}

// SplitDoppelConfig exposes SplitBuilder's Doppelgänger geometry so callers
// (the sweep server's job validation) can reject impossible (m, dataFrac)
// combinations up front instead of panicking mid-simulation.
func SplitDoppelConfig(m int, dataFrac float64) core.Config {
	return doppelCfg("doppel", 16<<10, m, dataFrac)
}

// UnifiedDoppelConfig is SplitDoppelConfig for UnifiedBuilder's geometry.
func UnifiedDoppelConfig(m int, dataFrac float64) core.Config {
	cfg := doppelCfg("unidoppel", 32<<10, m, dataFrac)
	cfg.Unified = true
	return cfg
}

func doppelCfg(name string, tagEntries, m int, dataFrac float64) core.Config {
	dataEntries := int(float64(tagEntries) * dataFrac)
	return core.Config{
		Name:        name,
		TagEntries:  tagEntries,
		TagWays:     16,
		DataEntries: dataEntries,
		DataWays:    16,
		MapSpec:     approx.MapSpec{M: m},
	}
}
