package workloads

import (
	"testing"

	"doppelganger/internal/timesim"
)

// TestProbeTiming is a development aid (skipped in -short mode): per
// benchmark it reports normalized runtime and off-chip traffic of the base
// split configuration versus the baseline LLC, the Fig. 9b/10b/12 shape.
func TestProbeTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale probe")
	}
	if raceEnabled {
		t.Skip("full-scale probe exceeds the test timeout under the race detector")
	}
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			run := RunFunctional(f.New(1), BaselineBuilder(2<<20, 16), RunOptions{Cores: 4, Record: true})
			cfg := timesim.DefaultConfig()
			base := timesim.Run(run.Recorder, run.InitialMem, run.Annotations, BaselineBuilder(2<<20, 16), cfg)
			split := timesim.Run(run.Recorder, run.InitialMem, run.Annotations, SplitBuilder(14, 0.25), cfg)
			t.Logf("%s: runtime=%.3f traffic=%.3f baseMPKI=%.2f splitMPKI=%.2f accesses=%d",
				f.Name,
				float64(split.Cycles)/float64(base.Cycles),
				float64(split.MemTraffic())/float64(base.MemTraffic()),
				base.MPKI(), split.MPKI(), run.Recorder.Len())
		})
	}
}
