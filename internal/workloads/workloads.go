// Package workloads implements the nine annotated approximate-computing
// benchmarks the paper evaluates (§4.1): blackscholes, canneal, ferret,
// fluidanimate and swaptions in the style of PARSEC, and inversek2j,
// jmeint, jpeg and kmeans in the style of AxBench. Each is a from-scratch
// data-parallel kernel with programmer annotations (approximate regions
// with element type and expected value range) and the error metric the
// paper attributes to it, sized so the LLC-resident approximate footprint
// tracks the paper's Table 2.
package workloads

import (
	"fmt"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// Benchmark is one workload: it lays out a memory image with annotations,
// provides per-core kernels, extracts a final output from memory, and
// scores an approximate output against the precise one.
type Benchmark struct {
	// Name is the benchmark's paper name.
	Name string

	// Init populates the backing store with the initial memory image laid
	// out from the given base address and returns the programmer
	// annotations. It must be called on a fresh store before Kernels or
	// Output. Multiprogrammed runs give each program a disjoint base.
	Init func(st *memdata.Store, base memdata.Addr) *approx.Annotations

	// Kernels returns one kernel per core; the kernels partition the work
	// statically as the paper's data-parallel benchmarks do.
	Kernels func(cores int) []func(*funcsim.CoreCtx)

	// Groups optionally assigns each core to a barrier group (nil: all
	// cores share one group). Multiprogrammed workloads give each program
	// its own group so its barriers never wait on another program's cores.
	Groups func(cores int) []int

	// Output extracts the application's final output from the store after
	// the hierarchy has been flushed.
	Output func(st *memdata.Store) []float64

	// Error computes the application output error (a fraction; the paper
	// treats <10% as acceptable) of an approximate output against the
	// precise one, using the benchmark's own metric.
	Error func(precise, approximate []float64) float64
}

// Factory builds a benchmark instance at a given scale. Scale 1 is the
// evaluation size (working sets of a few MB against the 2 MB LLC); tests
// use smaller scales.
type Factory struct {
	Name string
	New  func(scale float64) *Benchmark
}

// All returns the nine-benchmark suite in the paper's presentation order.
func All() []Factory {
	return []Factory{
		{"blackscholes", NewBlackscholes},
		{"canneal", NewCanneal},
		{"ferret", NewFerret},
		{"fluidanimate", NewFluidanimate},
		{"inversek2j", NewInversek2j},
		{"jmeint", NewJmeint},
		{"jpeg", NewJPEG},
		{"kmeans", NewKmeans},
		{"swaptions", NewSwaptions},
	}
}

// ByName returns the named factory.
func ByName(name string) (Factory, error) {
	for _, f := range All() {
		if f.Name == name {
			return f, nil
		}
	}
	return Factory{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// scaleInt scales a base count, keeping it a positive multiple of q.
func scaleInt(base int, scale float64, q int) int {
	n := int(float64(base) * scale)
	if n < q {
		n = q
	}
	return n - n%q
}
