package workloads

import (
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewJmeint builds the jmeint benchmark from AxBench:
// triangle–triangle intersection tests from the jMonkeyEngine, used in
// collision detection. The triangle coordinate data is annotated
// approximate (94.7% of the LLC footprint in Table 2); the boolean results
// are precise.
//
// Scene geometry comes from an indexed mesh pool: the same triangles
// recur across many collision pairs, so whole coordinate blocks repeat —
// which is where the block-granularity map hashes extract similarity even
// though element-wise similarity between *different* triangles is rare, the
// exact contrast the paper draws between Fig. 2 and Fig. 7 for jmeint.
// Each triangle record is padded to one cache block with precomputed edge
// data, as collision meshes commonly are.
//
// Error metric: misclassification rate — the fraction of pairs whose
// intersects/doesn't-intersect decision flips.
func NewJmeint(scale float64) *Benchmark {
	pairs := scaleInt(7168, scale, 64)
	pool := scaleInt(2048, scale, 64)
	const (
		floatsPerTri = 16 // 9 coordinates + 7 precomputed edge values: one block
		passes       = 3  // collision tests repeat across frames
	)

	var tris, res memdata.Addr

	return &Benchmark{
		Name: "jmeint",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			tris = l.allocF32(pairs * 2 * floatsPerTri)
			res = l.allocU8(pairs)

			rng := rand.New(rand.NewSource(7006))
			// Distinct mesh triangles clustered around scene hotspots.
			const hotspots = 64
			poolTri := make([][9]float64, pool)
			for i := range poolTri {
				h := i % hotspots
				hx := float64(h%8)/8 + 0.06
				hy := float64(h/8)/8 + 0.06
				hz := 0.5 + 0.3*(rng.Float64()-0.5)
				for v := 0; v < 3; v++ {
					poolTri[i][v*3+0] = clampf(hx+0.05*rng.NormFloat64(), 0, 1)
					poolTri[i][v*3+1] = clampf(hy+0.05*rng.NormFloat64(), 0, 1)
					poolTri[i][v*3+2] = clampf(hz+0.05*rng.NormFloat64(), 0, 1)
				}
			}
			writeTri := func(slot int, t *[9]float64) {
				// Each placed instance carries a tiny rigid translation
				// (floating-point transform noise), so no two instances are
				// bit-identical — exact deduplication finds nothing here, as
				// the paper observes — while the block-granularity hashes
				// still map instances of the same triangle together.
				jx := 2e-5 * (rng.Float64() - 0.5)
				jy := 2e-5 * (rng.Float64() - 0.5)
				jz := 2e-5 * (rng.Float64() - 0.5)
				base := slot * floatsPerTri
				for v := 0; v < 3; v++ {
					st.WriteF32(f32At(tris, base+v*3+0), float32(t[v*3+0]+jx))
					st.WriteF32(f32At(tris, base+v*3+1), float32(t[v*3+1]+jy))
					st.WriteF32(f32At(tris, base+v*3+2), float32(t[v*3+2]+jz))
				}
				// Precomputed edge lengths and padding derived from the
				// coordinates (so identical triangles stay identical blocks).
				for e := 0; e < 3; e++ {
					a, b := e, (e+1)%3
					dx := t[a*3] - t[b*3]
					dy := t[a*3+1] - t[b*3+1]
					dz := t[a*3+2] - t[b*3+2]
					st.WriteF32(f32At(tris, base+9+e), float32(dx*dx+dy*dy+dz*dz))
				}
				for p := 12; p < floatsPerTri; p++ {
					st.WriteF32(f32At(tris, base+p), float32(t[0]))
				}
			}
			for p := 0; p < pairs; p++ {
				// Collision candidates come from the same hotspot, so the
				// two pool triangles are spatially close.
				a := rng.Intn(pool)
				b := (a + hotspots*(1+rng.Intn(8))) % pool
				writeTri(2*p, &poolTri[a])
				writeTri(2*p+1, &poolTri[b])
			}
			return approx.MustAnnotations(
				approx.Region{Name: "triangles", Start: tris, End: tris + memdata.Addr(4*pairs*2*floatsPerTri),
					Type: memdata.F32, Min: 0, Max: 1},
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(pairs, cores, c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					for pass := 0; pass < passes; pass++ {
						for p := lo; p < hi; p++ {
							var t1, t2 [3][3]float64
							for t := 0; t < 2; t++ {
								base := (2*p + t) * floatsPerTri
								for v := 0; v < 3; v++ {
									for d := 0; d < 3; d++ {
										val := float64(ctx.LoadF32(f32At(tris, base+v*3+d)))
										if t == 0 {
											t1[v][d] = val
										} else {
											t2[v][d] = val
										}
									}
								}
							}
							ctx.Work(260) // interval-overlap intersection test
							hit := uint8(0)
							if triTriIntersect(&t1, &t2) {
								hit = 1
							}
							ctx.StoreU8(u8At(res, p), hit)
						}
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, pairs)
			for i := range out {
				out[i] = float64(st.ReadU8(u8At(res, i)))
			}
			return out
		},
		Error: func(precise, approximate []float64) float64 {
			flips := 0
			for i := range precise {
				if precise[i] != approximate[i] {
					flips++
				}
			}
			return float64(flips) / float64(len(precise))
		},
	}
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// --- Möller-style triangle-triangle intersection ---

func sub3(a, b [3]float64) [3]float64 { return [3]float64{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }

func cross3(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

func dot3(a, b [3]float64) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

// triTriIntersect implements the Möller interval test: each triangle's
// vertices are classified against the other's plane; coplanar and
// same-side cases reject, otherwise the intersection intervals on the
// common line are compared.
func triTriIntersect(t1, t2 *[3][3]float64) bool {
	n2 := cross3(sub3(t2[1], t2[0]), sub3(t2[2], t2[0]))
	d2 := -dot3(n2, t2[0])
	var du [3]float64
	for i := 0; i < 3; i++ {
		du[i] = dot3(n2, t1[i]) + d2
	}
	if (du[0] > 0 && du[1] > 0 && du[2] > 0) || (du[0] < 0 && du[1] < 0 && du[2] < 0) {
		return false
	}

	n1 := cross3(sub3(t1[1], t1[0]), sub3(t1[2], t1[0]))
	d1 := -dot3(n1, t1[0])
	var dv [3]float64
	for i := 0; i < 3; i++ {
		dv[i] = dot3(n1, t2[i]) + d1
	}
	if (dv[0] > 0 && dv[1] > 0 && dv[2] > 0) || (dv[0] < 0 && dv[1] < 0 && dv[2] < 0) {
		return false
	}

	dir := cross3(n1, n2)
	// Project onto the dominant axis of the intersection line.
	axis := 0
	maxc := abs(dir[0])
	if abs(dir[1]) > maxc {
		axis, maxc = 1, abs(dir[1])
	}
	if abs(dir[2]) > maxc {
		axis = 2
	}
	var p1, p2 [3]float64
	for i := 0; i < 3; i++ {
		p1[i] = t1[i][axis]
		p2[i] = t2[i][axis]
	}
	i1lo, i1hi, ok1 := interval(p1, du)
	i2lo, i2hi, ok2 := interval(p2, dv)
	if !ok1 || !ok2 {
		return false // coplanar: treated as non-intersecting, as jmeint does
	}
	return i1lo <= i2hi && i2lo <= i1hi
}

// interval computes the parametric overlap interval of a triangle with the
// intersection line given projections p and signed distances d.
func interval(p, d [3]float64) (lo, hi float64, ok bool) {
	// Find the vertex alone on its side of the plane.
	var a, b, c int
	switch {
	case d[0]*d[1] > 0:
		a, b, c = 2, 0, 1
	case d[0]*d[2] > 0:
		a, b, c = 1, 0, 2
	case d[1]*d[2] > 0 || d[0] != 0:
		a, b, c = 0, 1, 2
	case d[1] != 0:
		a, b, c = 1, 0, 2
	case d[2] != 0:
		a, b, c = 2, 0, 1
	default:
		return 0, 0, false // fully coplanar
	}
	t1 := p[b] + (p[a]-p[b])*safeDiv(d[b], d[b]-d[a])
	t2 := p[c] + (p[a]-p[c])*safeDiv(d[c], d[c]-d[a])
	if t1 > t2 {
		t1, t2 = t2, t1
	}
	return t1, t2, true
}

func safeDiv(n, d float64) float64 {
	if d == 0 {
		return 0
	}
	return n / d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
