package workloads

import (
	"math"
	"math/rand"

	"doppelganger/internal/approx"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// NewInversek2j builds the inversek2j benchmark from AxBench: inverse
// kinematics for a two-joint robotic arm. Both the input coordinates and
// the output joint angles are annotated approximate, which is why the
// paper's Table 2 reports a 99.7% approximate LLC footprint.
//
// Error metric: mean absolute joint-angle error relative to the full ±π
// range (AxBench uses average relative error of the angles).
func NewInversek2j(scale float64) *Benchmark {
	n := scaleInt(262144, scale, 64)
	const (
		len1   = 0.5
		len2   = 0.5
		passes = 1
	)

	var txs, tys, th1, th2 memdata.Addr

	return &Benchmark{
		Name: "inversek2j",
		Init: func(st *memdata.Store, base memdata.Addr) *approx.Annotations {
			l := newLayoutAt(base)
			txs = l.allocF32(n)
			tys = l.allocF32(n)
			th1 = l.allocF32(n)
			th2 = l.allocF32(n)

			rng := rand.New(rand.NewSource(7005))
			for i := 0; i < n; i++ {
				// Reachable targets: radius within [0.1, len1+len2].
				r := 0.1 + 0.88*rng.Float64()
				a := 2 * math.Pi * rng.Float64()
				st.WriteF32(f32At(txs, i), float32(r*math.Cos(a)))
				st.WriteF32(f32At(tys, i), float32(r*math.Sin(a)))
			}
			mk := func(name string, base memdata.Addr) approx.Region {
				return approx.Region{
					Name: name, Start: base, End: base + memdata.Addr(4*n),
					Type: memdata.F32, Min: -math.Pi, Max: math.Pi,
				}
			}
			return approx.MustAnnotations(
				mk("x", txs), mk("y", tys), mk("theta1", th1), mk("theta2", th2),
			)
		},
		Kernels: func(cores int) []func(*funcsim.CoreCtx) {
			ks := make([]func(*funcsim.CoreCtx), cores)
			for c := 0; c < cores; c++ {
				lo, hi := span(n, cores, c)
				ks[c] = func(ctx *funcsim.CoreCtx) {
					for p := 0; p < passes; p++ {
						for i := lo; i < hi; i++ {
							x := float64(ctx.LoadF32(f32At(txs, i)))
							y := float64(ctx.LoadF32(f32At(tys, i)))
							t1, t2 := invKin2j(x, y, len1, len2)
							ctx.Work(110) // trig-heavy kernel
							ctx.StoreF32(f32At(th1, i), float32(t1))
							ctx.StoreF32(f32At(th2, i), float32(t2))
						}
					}
				}
			}
			return ks
		},
		Output: func(st *memdata.Store) []float64 {
			out := make([]float64, 2*n)
			for i := 0; i < n; i++ {
				out[2*i] = float64(st.ReadF32(f32At(th1, i)))
				out[2*i+1] = float64(st.ReadF32(f32At(th2, i)))
			}
			return out
		},
		Error: func(precise, approximate []float64) float64 {
			sum := 0.0
			for i := range precise {
				sum += math.Abs(precise[i]-approximate[i]) / math.Pi
			}
			return sum / float64(len(precise))
		},
	}
}

// invKin2j solves the planar two-joint inverse kinematics, clamping
// unreachable (possibly approximation-perturbed) targets to the workspace
// boundary.
func invKin2j(x, y, l1, l2 float64) (t1, t2 float64) {
	d2 := x*x + y*y
	c2 := (d2 - l1*l1 - l2*l2) / (2 * l1 * l2)
	if c2 > 1 {
		c2 = 1
	}
	if c2 < -1 {
		c2 = -1
	}
	t2 = math.Acos(c2)
	k1 := l1 + l2*math.Cos(t2)
	k2 := l2 * math.Sin(t2)
	t1 = math.Atan2(y, x) - math.Atan2(k2, k1)
	// Normalize into (−π, π].
	for t1 <= -math.Pi {
		t1 += 2 * math.Pi
	}
	for t1 > math.Pi {
		t1 -= 2 * math.Pi
	}
	return t1, t2
}
