// Package faults is a deterministic, seeded fault-injection layer for the
// simulated memory system. It models soft errors in the structures the
// Doppelgänger evaluation cares about — the LLC data and tag arrays, the
// map-generation path, and DRAM rows — as single-bit flips or stuck-at
// faults, drawn per access at a configurable rate.
//
// An Injector is wired into a simulation the same way the metrics registry
// is: structures carry an injector pointer unconditionally, and a nil
// injector is the zero-cost disabled path (every method no-ops on a nil
// receiver, locked down by zero-alloc guards in the consuming packages).
//
// Determinism: an injector's fault sites are a pure function of its seed and
// the sequence of draws made against it. Each simulation owns one injector
// seeded by Derive(globalSeed, taskKey), and every simulation in this
// repository performs its accesses serially, so fault sites never depend on
// worker scheduling — the same seed reproduces the same faults at any
// worker count.
//
// An Injector is NOT safe for concurrent use; give each simulation its own.
package faults

import (
	"fmt"

	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
)

// Model selects how a fault manifests in the target bit.
type Model uint8

// The implemented fault models.
const (
	// BitFlip inverts the chosen bit (a particle-strike soft error).
	BitFlip Model = iota
	// StuckAt0 clears the chosen bit (a hard fault reading as 0).
	StuckAt0
	// StuckAt1 sets the chosen bit.
	StuckAt1
)

// String names the model (the -fault-model flag spelling).
func (m Model) String() string {
	switch m {
	case BitFlip:
		return "flip"
	case StuckAt0:
		return "stuck0"
	case StuckAt1:
		return "stuck1"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// ParseModel parses a -fault-model flag value.
func ParseModel(s string) (Model, error) {
	switch s {
	case "", "flip", "bitflip", "bit-flip":
		return BitFlip, nil
	case "stuck0", "stuck-at-0":
		return StuckAt0, nil
	case "stuck1", "stuck-at-1":
		return StuckAt1, nil
	}
	return 0, fmt.Errorf("faults: unknown model %q (flip, stuck0, stuck1)", s)
}

// Target identifies the hardware structure a fault draw is charged against.
type Target uint8

// The per-structure fault targets.
const (
	// LLCData is a stored payload in an LLC data array (baseline, precise,
	// or the Doppelgänger approximate data array).
	LLCData Target = iota
	// LLCTag is a stored address tag in an LLC tag array.
	LLCTag
	// MapGen is the Doppelgänger map-generation path: a fault perturbs the
	// freshly computed map value before it is stored. (Stored map values are
	// never corrupted in place — the tag→data invariant requires every valid
	// tag's map to resolve — so map faults are injected at generation time.)
	MapGen
	// DRAM covers main memory: fetched blocks (bit corruption) and, in the
	// banked timing model, row upsets that force re-activation.
	DRAM

	numTargets = 4
)

// String names the target as used in stats, metrics and logs.
func (t Target) String() string {
	switch t {
	case LLCData:
		return "llc_data"
	case LLCTag:
		return "llc_tag"
	case MapGen:
		return "map"
	case DRAM:
		return "dram"
	}
	return fmt.Sprintf("Target(%d)", uint8(t))
}

// Targets returns every defined target in order (for stats reporting).
func Targets() []Target { return []Target{LLCData, LLCTag, MapGen, DRAM} }

// Config describes one injector.
type Config struct {
	// Seed determines the fault sites; Derive mixes a global seed with a
	// task key into independent per-simulation seeds.
	Seed uint64
	// Model is the fault manifestation (default BitFlip).
	Model Model
	// Rate is the per-access fault probability applied to every target.
	Rate float64
	// Rates overrides Rate per target (a zero entry disables that target).
	Rates map[Target]float64
	// RecordSites keeps a log of every injected fault (target, access
	// ordinal, bit) for the determinism tests; off by default.
	RecordSites bool
}

// TargetStats counts one target's draw opportunities and injected faults.
type TargetStats struct {
	Accesses uint64
	Faults   uint64
}

// Site is one recorded fault: which target, on that target's Access'th draw
// (1-based), at which bit position.
type Site struct {
	Target Target
	Access uint64
	Bit    uint
}

// targetMetrics are one target's registry instruments; all nil when
// disabled.
type targetMetrics struct {
	accesses, injected *metrics.Counter
}

// Injector draws faults deterministically from a seeded generator. The nil
// injector is valid and never faults.
type Injector struct {
	model  Model
	rates  [numTargets]float64
	state  uint64 // splitmix64 state
	stats  [numTargets]TargetStats
	record bool
	sites  []Site
	m      [numTargets]targetMetrics
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	in := &Injector{model: cfg.Model, state: mix64(cfg.Seed), record: cfg.RecordSites}
	for t := Target(0); t < numTargets; t++ {
		in.rates[t] = cfg.Rate
		if r, ok := cfg.Rates[t]; ok {
			in.rates[t] = r
		}
	}
	return in
}

// Derive mixes a global seed with a task key into an independent
// per-simulation seed, so a task's fault sites depend only on (seed, key) —
// never on which worker ran it or in what order.
func Derive(seed uint64, key string) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return mix64(seed ^ h)
}

// mix64 is the splitmix64 finalizer; it whitens seeds so nearby values
// produce unrelated streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	return mix64(in.state)
}

// draw charges one access against target t and reports whether it faults.
func (in *Injector) draw(t Target) bool {
	s := &in.stats[t]
	s.Accesses++
	in.m[t].accesses.Inc()
	r := in.rates[t]
	if r <= 0 {
		return false
	}
	// 53 uniform bits, the float64 mantissa width.
	if float64(in.next()>>11)*(1.0/(1<<53)) >= r {
		return false
	}
	s.Faults++
	in.m[t].injected.Inc()
	return true
}

// site records an injected fault when RecordSites is on.
func (in *Injector) site(t Target, bit uint) {
	if in.record {
		in.sites = append(in.sites, Site{Target: t, Access: in.stats[t].Accesses, Bit: bit})
	}
}

// CorruptBlock performs one access's fault draw against target t and, on a
// fault, applies the model to one uniformly chosen bit of the 64-byte block
// in place. Reports whether a fault was injected. Nil injectors never fault.
func (in *Injector) CorruptBlock(t Target, b *memdata.Block) bool {
	if in == nil || !in.draw(t) {
		return false
	}
	bit := uint(in.next() % (memdata.BlockSize * 8))
	in.site(t, bit)
	mask := byte(1) << (bit % 8)
	switch in.model {
	case StuckAt0:
		b[bit/8] &^= mask
	case StuckAt1:
		b[bit/8] |= mask
	default:
		b[bit/8] ^= mask
	}
	return true
}

// CorruptBits performs one access's fault draw against target t and, on a
// fault, applies the model to one uniformly chosen bit of v's low width
// bits (a stored address tag, a generated map value). Nil injectors return
// v unchanged.
func (in *Injector) CorruptBits(t Target, v uint32, width int) uint32 {
	if in == nil || !in.draw(t) {
		return v
	}
	if width <= 0 || width > 32 {
		width = 32
	}
	bit := uint(in.next() % uint64(width))
	in.site(t, bit)
	mask := uint32(1) << bit
	switch in.model {
	case StuckAt0:
		return v &^ mask
	case StuckAt1:
		return v | mask
	default:
		return v ^ mask
	}
}

// Upset performs one event-only fault draw against target t (e.g. a DRAM
// row upset that forces re-activation); no payload is corrupted here.
func (in *Injector) Upset(t Target) bool {
	if in == nil || !in.draw(t) {
		return false
	}
	in.site(t, 0)
	return true
}

// Stats returns target t's draw/fault counts (zero for a nil injector).
func (in *Injector) Stats(t Target) TargetStats {
	if in == nil {
		return TargetStats{}
	}
	return in.stats[t]
}

// TotalFaults sums injected faults over every target.
func (in *Injector) TotalFaults() uint64 {
	if in == nil {
		return 0
	}
	var n uint64
	for t := 0; t < numTargets; t++ {
		n += in.stats[t].Faults
	}
	return n
}

// Sites returns the recorded fault log (nil unless RecordSites was set).
func (in *Injector) Sites() []Site {
	if in == nil {
		return nil
	}
	return in.sites
}

// AttachMetrics resolves per-target counters in reg under
// "faults.<target>.{accesses,injected}". A nil registry (or injector)
// leaves the disabled fast path.
func (in *Injector) AttachMetrics(reg *metrics.Registry) {
	if in == nil || reg == nil {
		return
	}
	for _, t := range Targets() {
		prefix := "faults." + t.String() + "."
		in.m[t] = targetMetrics{
			accesses: reg.Counter(prefix + "accesses"),
			injected: reg.Counter(prefix + "injected"),
		}
	}
}
