package faults

import (
	"reflect"
	"testing"

	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
)

// TestDeterministicSites proves the central guarantee: two injectors with
// the same seed, driven through the same access sequence, inject the same
// faults at the same sites; a different seed produces a different stream.
func TestDeterministicSites(t *testing.T) {
	run := func(seed uint64) ([]Site, memdata.Block, uint32) {
		in := New(Config{Seed: seed, Rate: 0.25, RecordSites: true})
		var b memdata.Block
		var v uint32 = 0xdead
		for i := 0; i < 400; i++ {
			in.CorruptBlock(LLCData, &b)
			v = in.CorruptBits(MapGen, v, 14)
			in.Upset(DRAM)
		}
		return in.Sites(), b, v
	}
	s1, b1, v1 := run(42)
	s2, b2, v2 := run(42)
	if len(s1) == 0 {
		t.Fatal("rate 0.25 over 1200 draws injected nothing")
	}
	if !reflect.DeepEqual(s1, s2) || b1 != b2 || v1 != v2 {
		t.Fatal("same seed produced different fault sites")
	}
	s3, _, _ := run(43)
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical fault sites")
	}
}

// TestRateZeroNeverFaults verifies a zero rate counts accesses but never
// injects, for every entry point.
func TestRateZeroNeverFaults(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 0})
	var b, orig memdata.Block
	for i := range orig {
		orig[i] = byte(i)
	}
	b = orig
	for i := 0; i < 1000; i++ {
		if in.CorruptBlock(LLCData, &b) || in.Upset(DRAM) {
			t.Fatal("rate 0 injected a fault")
		}
		if got := in.CorruptBits(LLCTag, 0xabc, 12); got != 0xabc {
			t.Fatalf("rate 0 changed bits: %x", got)
		}
	}
	if b != orig {
		t.Fatal("rate 0 corrupted the block")
	}
	if s := in.Stats(LLCData); s.Accesses != 1000 || s.Faults != 0 {
		t.Fatalf("stats = %+v, want 1000 accesses, 0 faults", s)
	}
}

// TestModels verifies each model's bit manipulation: rate 1 forces a fault
// per draw, so every draw demonstrates the manifestation.
func TestModels(t *testing.T) {
	// Stuck-at-0 can only clear bits; starting from all-ones, bytes only
	// lose bits.
	in := New(Config{Seed: 7, Model: StuckAt0, Rate: 1})
	v := uint32(1<<14 - 1)
	for i := 0; i < 64; i++ {
		nv := in.CorruptBits(MapGen, v, 14)
		if nv&^v != 0 {
			t.Fatalf("stuck0 set a bit: %x -> %x", v, nv)
		}
		v = nv
	}
	if v == 1<<14-1 {
		t.Fatal("stuck0 at rate 1 never cleared a bit in 64 draws")
	}

	// Stuck-at-1 only sets bits.
	in = New(Config{Seed: 7, Model: StuckAt1, Rate: 1})
	v = 0
	for i := 0; i < 64; i++ {
		nv := in.CorruptBits(MapGen, v, 14)
		if v&^nv != 0 {
			t.Fatalf("stuck1 cleared a bit: %x -> %x", v, nv)
		}
		v = nv
	}
	if v == 0 {
		t.Fatal("stuck1 at rate 1 never set a bit in 64 draws")
	}
	if v&^uint32(1<<14-1) != 0 {
		t.Fatalf("stuck1 set a bit beyond width 14: %x", v)
	}

	// A bit flip changes exactly one bit of the block.
	in = New(Config{Seed: 7, Model: BitFlip, Rate: 1})
	var b memdata.Block
	if !in.CorruptBlock(LLCData, &b) {
		t.Fatal("rate 1 did not fault")
	}
	ones := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("bit flip changed %d bits, want 1", ones)
	}
}

// TestPerTargetRates verifies Rates overrides disable or enable individual
// targets independently.
func TestPerTargetRates(t *testing.T) {
	in := New(Config{Seed: 3, Rate: 1, Rates: map[Target]float64{LLCTag: 0}})
	for i := 0; i < 50; i++ {
		if got := in.CorruptBits(LLCTag, 5, 16); got != 5 {
			t.Fatal("zero-rate override still faulted")
		}
		if got := in.CorruptBits(MapGen, 5, 16); got == 5 {
			t.Fatal("rate-1 target did not fault")
		}
	}
	if f := in.Stats(LLCTag).Faults; f != 0 {
		t.Fatalf("LLCTag faults = %d, want 0", f)
	}
	if f := in.Stats(MapGen).Faults; f != 50 {
		t.Fatalf("MapGen faults = %d, want 50", f)
	}
}

// TestDeriveStable locks down Derive's output so checkpointed experiment
// results stay comparable across code changes, and checks key independence.
func TestDeriveStable(t *testing.T) {
	if Derive(1, "fault/doppel/kmeans/1e-05") != Derive(1, "fault/doppel/kmeans/1e-05") {
		t.Fatal("Derive is not a pure function")
	}
	if Derive(1, "a") == Derive(1, "b") {
		t.Fatal("distinct keys collided")
	}
	if Derive(1, "a") == Derive(2, "a") {
		t.Fatal("distinct seeds collided")
	}
}

// TestNilInjector verifies every method is a safe no-op on the nil
// injector — the disabled fast path structures rely on.
func TestNilInjector(t *testing.T) {
	var in *Injector
	var b memdata.Block
	if in.CorruptBlock(LLCData, &b) || in.Upset(DRAM) {
		t.Fatal("nil injector faulted")
	}
	if got := in.CorruptBits(LLCTag, 9, 8); got != 9 {
		t.Fatalf("nil injector changed bits: %d", got)
	}
	if in.Stats(LLCData) != (TargetStats{}) || in.TotalFaults() != 0 || in.Sites() != nil {
		t.Fatal("nil injector reported state")
	}
	in.AttachMetrics(metrics.NewRegistry())
}

// TestMetricsCounters verifies AttachMetrics exposes per-target access and
// injection counts under the faults.* namespace.
func TestMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	in := New(Config{Seed: 9, Rate: 1})
	in.AttachMetrics(reg)
	var b memdata.Block
	for i := 0; i < 10; i++ {
		in.CorruptBlock(LLCData, &b)
	}
	if reg.CounterValue("faults.llc_data.accesses") != 10 || reg.CounterValue("faults.llc_data.injected") != 10 {
		t.Fatalf("counters = %v", reg.Snapshot())
	}
	if in.TotalFaults() != 10 {
		t.Fatalf("TotalFaults = %d, want 10", in.TotalFaults())
	}
}

// TestParseModel covers flag spellings and the round trip through String.
func TestParseModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Model
	}{{"", BitFlip}, {"flip", BitFlip}, {"bit-flip", BitFlip}, {"stuck0", StuckAt0}, {"stuck-at-1", StuckAt1}} {
		m, err := ParseModel(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseModel(%q) = %v, %v", tc.in, m, err)
		}
	}
	if _, err := ParseModel("gamma-ray"); err == nil {
		t.Error("unknown model parsed")
	}
	for _, m := range []Model{BitFlip, StuckAt0, StuckAt1} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v failed: %v, %v", m, got, err)
		}
	}
}
