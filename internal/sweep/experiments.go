package sweep

import (
	"fmt"

	"doppelganger/internal/core"
	"doppelganger/internal/energy"
)

// coreConventional aliases the conventional-layout constructor for brevity.
func coreConventional(name string, size, ways, cores int) core.Layout {
	return core.ConventionalLayout(name, size, ways, cores)
}

// Table2 reproduces the paper's Table 2: the mean percentage of resident
// LLC blocks that are approximate, per benchmark, measured on the baseline
// 2 MB LLC.
func (r *Runner) Table2() (*Table, error) {
	t := &Table{Title: "Table 2: percentage of LLC blocks that are approximate",
		Columns: []string{"benchmark", "approx footprint"}}
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, pct(a.analyzer.ApproxFraction()))
	}
	return t, nil
}

// Fig2 reproduces Fig. 2: approximate-data storage savings under the
// element-wise similarity definition of §2, as the threshold T relaxes.
func (r *Runner) Fig2() (*Table, error) {
	cols := []string{"benchmark"}
	for _, th := range Thresholds {
		cols = append(cols, fmt.Sprintf("T=%g%%", th*100))
	}
	t := &Table{Title: "Fig 2: storage savings vs element-wise similarity threshold", Columns: cols}
	sums := make([]float64, len(Thresholds))
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for i, th := range Thresholds {
			v := a.analyzer.ThresholdSavings(th)
			sums[i] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, pct(s/float64(len(r.Benchmarks()))))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig7 reproduces Fig. 7: approximate data storage savings when blocks with
// equal Doppelgänger maps share one data entry, for 12/13/14-bit map
// spaces. The paper reports 65.2% (12-bit) and 37.9% (14-bit) on average.
func (r *Runner) Fig7() (*Table, error) {
	cols := []string{"benchmark"}
	for _, m := range MapSpaces {
		cols = append(cols, fmt.Sprintf("%d-bit map", m))
	}
	t := &Table{Title: "Fig 7: storage savings vs map space size", Columns: cols}
	sums := make([]float64, len(MapSpaces))
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for i, m := range MapSpaces {
			v := a.analyzer.MapSavings(m)
			sums[i] += v
			row = append(row, pct(v))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, pct(s/float64(len(r.Benchmarks()))))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig8 reproduces Fig. 8: Doppelgänger (14-bit) against BΔI compression,
// exact deduplication, and the Doppelgänger+BΔI combination. The paper
// reports 20.9% / 5.3% / 37.9% / 43.9% on average.
func (r *Runner) Fig8() (*Table, error) {
	t := &Table{Title: "Fig 8: storage savings vs compression and deduplication",
		Columns: []string{"benchmark", "BdI", "exact dedup", "14-bit Dopp", "14-bit Dopp + BdI"}}
	var sums [4]float64
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		vals := [4]float64{
			a.analyzer.BDISavings(),
			a.analyzer.DedupSavings(),
			a.analyzer.MapSavings(14),
			a.analyzer.DoppBDISavings(),
		}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(name, pct(vals[0]), pct(vals[1]), pct(vals[2]), pct(vals[3]))
	}
	n := float64(len(r.Benchmarks()))
	t.AddRow("average", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n), pct(sums[3]/n))
	return t, nil
}

// Fig9 reproduces Fig. 9: application output error (a) and runtime
// normalized to the baseline 2 MB LLC (b) as the map space varies, with the
// base 1/4 data array.
func (r *Runner) Fig9() (errT, runT *Table, err error) {
	return r.errRuntimeSweep(
		"Fig 9a: output error vs map space", "Fig 9b: normalized runtime vs map space",
		MapSpaces, func(m int) (int, float64) { return m, BaseDataFrac },
		func(m int) string { return fmt.Sprintf("%d-bit map", m) })
}

// Fig10 reproduces Fig. 10: error and normalized runtime as the
// approximate data array shrinks (1/2, 1/4, 1/8 of the tag capacity) at the
// base 14-bit map space.
func (r *Runner) Fig10() (errT, runT *Table, err error) {
	fracs := []int{0, 1, 2}
	return r.errRuntimeSweep(
		"Fig 10a: output error vs data array size", "Fig 10b: normalized runtime vs data array size",
		fracs, func(i int) (int, float64) { return BaseMapBits, DataFracs[i] },
		func(i int) string { return fracName(DataFracs[i]) + " data array" })
}

func fracName(f float64) string {
	switch f {
	case 0.5:
		return "1/2"
	case 0.25:
		return "1/4"
	case 0.125:
		return "1/8"
	case 0.75:
		return "3/4"
	}
	return fmt.Sprintf("%g", f)
}

// errRuntimeSweep runs the split organization across a parameter sweep.
func (r *Runner) errRuntimeSweep(errTitle, runTitle string, params []int,
	point func(p int) (m int, frac float64), label func(p int) string) (errT, runT *Table, err error) {

	cols := []string{"benchmark"}
	for _, p := range params {
		cols = append(cols, label(p))
	}
	errT = &Table{Title: errTitle, Columns: cols}
	runT = &Table{Title: runTitle, Columns: cols}
	errSums := make([]float64, len(params))
	runSums := make([]float64, len(params))
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, nil, err
		}
		erow, rrow := []string{name}, []string{name}
		for i, p := range params {
			m, frac := point(p)
			e, err := r.SplitError(name, m, frac)
			if err != nil {
				return nil, nil, err
			}
			st, err := r.SplitTiming(name, m, frac)
			if err != nil {
				return nil, nil, err
			}
			rt := float64(st.Cycles) / float64(a.timing.Cycles)
			errSums[i] += e
			runSums[i] += rt
			erow = append(erow, pct(e))
			rrow = append(rrow, norm(rt))
		}
		errT.AddRow(erow...)
		runT.AddRow(rrow...)
	}
	n := float64(len(r.Benchmarks()))
	eavg, ravg := []string{"average"}, []string{"average"}
	for i := range params {
		eavg = append(eavg, pct(errSums[i]/n))
		ravg = append(ravg, norm(runSums[i]/n))
	}
	errT.AddRow(eavg...)
	runT.AddRow(ravg...)
	return errT, runT, nil
}

// Fig11 reproduces Fig. 11: LLC dynamic (a) and leakage (b) energy
// reduction relative to the baseline, for 1/2, 1/4 and 1/8 data arrays.
// The paper reports 2.55× and 1.41× at 1/4.
func (r *Runner) Fig11() (dynT, leakT *Table, err error) {
	cols := []string{"benchmark"}
	for _, f := range DataFracs {
		cols = append(cols, fracName(f)+" data array")
	}
	dynT = &Table{Title: "Fig 11a: LLC dynamic energy reduction", Columns: cols}
	leakT = &Table{Title: "Fig 11b: LLC leakage energy reduction", Columns: cols}
	baseOrg := energy.BaselineOrg(2<<20, 16, r.Cores)
	dynSums := make([]float64, len(DataFracs))
	leakSums := make([]float64, len(DataFracs))
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, nil, err
		}
		baseDyn := baseOrg.DynamicPJ(a.timing.Totals)
		drow, lrow := []string{name}, []string{name}
		for i, frac := range DataFracs {
			res, err := r.SplitTiming(name, BaseMapBits, frac)
			if err != nil {
				return nil, nil, err
			}
			org := energy.SplitOrg(1<<20, 16, SplitConfig(BaseMapBits, frac), r.Cores)
			dyn := baseDyn / org.DynamicPJ(res.Totals)
			leak := baseOrg.LeakagePJ(a.timing.Cycles) / org.LeakagePJ(res.Cycles)
			dynSums[i] += dyn
			leakSums[i] += leak
			drow = append(drow, ratio(dyn))
			lrow = append(lrow, ratio(leak))
		}
		dynT.AddRow(drow...)
		leakT.AddRow(lrow...)
	}
	n := float64(len(r.Benchmarks()))
	davg, lavg := []string{"average"}, []string{"average"}
	for i := range DataFracs {
		davg = append(davg, ratio(dynSums[i]/n))
		lavg = append(lavg, ratio(leakSums[i]/n))
	}
	dynT.AddRow(davg...)
	leakT.AddRow(lavg...)
	return dynT, leakT, nil
}

// Fig12 reproduces Fig. 12: off-chip memory traffic normalized to the
// baseline. The paper reports +3.4% (1/4) and +1.1% (1/2) on average.
func (r *Runner) Fig12() (*Table, error) {
	cols := []string{"benchmark"}
	for _, f := range DataFracs {
		cols = append(cols, fracName(f)+" data array")
	}
	t := &Table{Title: "Fig 12: normalized off-chip memory traffic", Columns: cols}
	sums := make([]float64, len(DataFracs))
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for i, frac := range DataFracs {
			res, err := r.SplitTiming(name, BaseMapBits, frac)
			if err != nil {
				return nil, err
			}
			v := float64(res.MemTraffic()) / float64(a.timing.MemTraffic())
			sums[i] += v
			row = append(row, norm(v))
		}
		t.AddRow(row...)
	}
	n := float64(len(r.Benchmarks()))
	avg := []string{"average"}
	for i := range DataFracs {
		avg = append(avg, norm(sums[i]/n))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig13 reproduces Fig. 13: LLC area reduction relative to the baseline for
// the split design (1/2, 1/4, 1/8 data arrays) and uniDoppelgänger (3/4,
// 1/2, 1/4). The paper reports 1.36×/1.55×/1.70× and up to 3.15×. This
// experiment is static — no workload runs, so it cannot fail.
func (r *Runner) Fig13() *Table {
	t := &Table{Title: "Fig 13: LLC area reduction",
		Columns: []string{"organization", "data array", "area (mm2)", "reduction"}}
	base := energy.BaselineOrg(2<<20, 16, r.Cores)
	t.AddRow("baseline 2MB", "-", fmt.Sprintf("%.2f", base.AreaMM2()), "1.00x")
	for _, f := range DataFracs {
		org := energy.SplitOrg(1<<20, 16, SplitConfig(BaseMapBits, f), r.Cores)
		t.AddRow("doppelganger", fracName(f),
			fmt.Sprintf("%.2f", org.AreaMM2()), ratio(base.AreaMM2()/org.AreaMM2()))
	}
	for _, f := range UniFracs {
		org := energy.UnifiedOrg(UnifiedConfig(BaseMapBits, f), r.Cores)
		t.AddRow("unidoppelganger", fracName(f),
			fmt.Sprintf("%.2f", org.AreaMM2()), ratio(base.AreaMM2()/org.AreaMM2()))
	}
	return t
}

// Fig14 reproduces Fig. 14: uniDoppelgänger output error (a), normalized
// runtime (b) and LLC dynamic energy reduction (c) for 3/4, 1/2 and 1/4
// data arrays (fractions of the baseline LLC).
func (r *Runner) Fig14() (errT, runT, dynT *Table, err error) {
	cols := []string{"benchmark"}
	for _, f := range UniFracs {
		cols = append(cols, fracName(f)+" data array")
	}
	errT = &Table{Title: "Fig 14a: uniDoppelganger output error", Columns: cols}
	runT = &Table{Title: "Fig 14b: uniDoppelganger normalized runtime", Columns: cols}
	dynT = &Table{Title: "Fig 14c: uniDoppelganger LLC dynamic energy reduction", Columns: cols}
	baseOrg := energy.BaselineOrg(2<<20, 16, r.Cores)
	eS := make([]float64, len(UniFracs))
	rS := make([]float64, len(UniFracs))
	dS := make([]float64, len(UniFracs))
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, nil, nil, err
		}
		baseDyn := baseOrg.DynamicPJ(a.timing.Totals)
		erow, rrow, drow := []string{name}, []string{name}, []string{name}
		for i, f := range UniFracs {
			e, err := r.UnifiedError(name, BaseMapBits, f)
			if err != nil {
				return nil, nil, nil, err
			}
			res, err := r.UnifiedTiming(name, BaseMapBits, f)
			if err != nil {
				return nil, nil, nil, err
			}
			rt := float64(res.Cycles) / float64(a.timing.Cycles)
			org := energy.UnifiedOrg(UnifiedConfig(BaseMapBits, f), r.Cores)
			dyn := baseDyn / org.DynamicPJ(res.Totals)
			eS[i] += e
			rS[i] += rt
			dS[i] += dyn
			erow = append(erow, pct(e))
			rrow = append(rrow, norm(rt))
			drow = append(drow, ratio(dyn))
		}
		errT.AddRow(erow...)
		runT.AddRow(rrow...)
		dynT.AddRow(drow...)
	}
	n := float64(len(r.Benchmarks()))
	eavg, ravg, davg := []string{"average"}, []string{"average"}, []string{"average"}
	for i := range UniFracs {
		eavg = append(eavg, pct(eS[i]/n))
		ravg = append(ravg, norm(rS[i]/n))
		davg = append(davg, ratio(dS[i]/n))
	}
	errT.AddRow(eavg...)
	runT.AddRow(ravg...)
	dynT.AddRow(davg...)
	return errT, runT, dynT, nil
}

// Table3 reproduces the paper's Table 3: per-structure field widths, sizes,
// area, access latency and access energy, for the baseline, the split
// organization's three structures and uniDoppelgänger's two. Static.
func (r *Runner) Table3() *Table {
	t := &Table{Title: "Table 3: hardware cost, access latency and energy",
		Columns: []string{"structure", "entries", "tag-entry bits", "size (KB)",
			"area (mm2)", "lat tag/data (ns)", "energy tag/data (pJ)"},
		Notes: []string{
			"The MTag stores the full map value (the set index is an XOR-fold of the whole map): " +
				"21 bits at M=14 where the paper's Table 3 lists 20 (see DESIGN.md §6).",
		}}

	add := func(s energy.Structure, entries, metaBits int) {
		latData, eData := "-", "-"
		if s.DataKB > 0 {
			latData = fmt.Sprintf("%.2f", s.DataLatencyNS())
			eData = fmt.Sprintf("%.1f", s.DataEnergyPJ())
		}
		t.AddRow(s.Name, fmt.Sprintf("%d", entries), fmt.Sprintf("%d", metaBits),
			fmt.Sprintf("%.0f", s.TotalKB()), fmt.Sprintf("%.2f", s.AreaMM2()),
			fmt.Sprintf("%.2f/%s", s.TagLatencyNS(), latData),
			fmt.Sprintf("%.1f/%s", s.TagEnergyPJ(), eData))
	}

	base := energy.FromLayout(coreConventional("baseline LLC", 2<<20, 16, r.Cores))
	add(base, (2<<20)/64, coreConventional("baseline LLC", 2<<20, 16, r.Cores).MetaBits())
	prec := energy.FromLayout(coreConventional("precise cache", 1<<20, 16, r.Cores))
	add(prec, (1<<20)/64, coreConventional("precise cache", 1<<20, 16, r.Cores).MetaBits())

	dc := SplitConfig(BaseMapBits, BaseDataFrac)
	dtl := dc.TagArrayLayout(r.Cores)
	add(energy.FromLayout(dtl), dtl.Entries, dtl.MetaBits())
	ddl := dc.DataArrayLayout()
	add(energy.FromLayout(ddl), ddl.Entries, ddl.MetaBits())

	uc := UnifiedConfig(BaseMapBits, 0.5)
	utl := uc.TagArrayLayout(r.Cores)
	add(energy.FromLayout(utl), utl.Entries, utl.MetaBits())
	udl := uc.DataArrayLayout()
	add(energy.FromLayout(udl), udl.Entries, udl.MetaBits())
	return t
}
