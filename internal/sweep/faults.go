package sweep

import (
	"context"
	"fmt"

	"doppelganger/internal/faults"
	"doppelganger/internal/workloads"
)

// DefaultFaultRates are the per-access fault probabilities the fault sweep
// evaluates by default: three decades from rare soft errors to heavy
// corruption, enough to show where each organization's degradation knee
// sits.
var DefaultFaultRates = []float64{1e-6, 1e-5, 1e-4}

// FaultOrgs are the LLC organizations the fault sweep compares, in table
// order: the conventional baseline, the paper's split Doppelgänger at the
// base configuration, and uniDoppelgänger at its Table 1 half-capacity
// point.
var FaultOrgs = []string{"baseline", "doppel", "uni"}

// faultBuilder maps an organization name to its LLC builder.
func faultBuilder(org string) (workloads.LLCBuilder, error) {
	switch org {
	case "baseline":
		return workloads.BaselineBuilder(2<<20, 16), nil
	case "doppel":
		return workloads.SplitBuilder(BaseMapBits, BaseDataFrac), nil
	case "uni":
		return workloads.UnifiedBuilder(BaseMapBits, 0.5), nil
	}
	return nil, fmt.Errorf("sweep: unknown fault-sweep organization %q", org)
}

// faultRates returns the sweep's configured rates.
func (r *Runner) faultRates() []float64 {
	if len(r.FaultRates) > 0 {
		return r.FaultRates
	}
	return DefaultFaultRates
}

// FaultError measures application output error for one organization under
// fault injection at the given per-access rate, scored against the fault-
// free precise baseline output. The injector is seeded from (FaultSeed,
// task key) only, and every access in a functional run is serialized by
// the gang scheduler, so the fault sites — and therefore the error — are
// bit-identical at any worker count.
func (r *Runner) FaultError(name, org string, rate float64) (float64, error) {
	return r.FaultErrorContext(context.Background(), name, org, rate)
}

// FaultErrorContext is FaultError under a cancellable context.
func (r *Runner) FaultErrorContext(ctx context.Context, name, org string, rate float64) (float64, error) {
	key := fmt.Sprintf("fault/%s/%s/%g", org, name, rate)
	return r.errDo(key, func() (float64, error) {
		builder, err := faultBuilder(org)
		if err != nil {
			return 0, err
		}
		a, err := r.baselineScore(ctx, name)
		if err != nil {
			return 0, err
		}
		r.logf("[%s] fault functional run (%s, rate %g)", name, org, rate)
		seed := faults.Derive(r.FaultSeed, key)
		inj := faults.New(faults.Config{
			Seed:  seed,
			Model: r.FaultModel,
			Rate:  rate,
		})
		child := r.instrument()
		inj.AttachMetrics(child)
		run, err := r.funcRun(ctx, funcReq{
			key:   key,
			name:  name,
			extra: fmt.Sprintf("|fseed=%d|fmodel=%s", r.FaultSeed, r.FaultModel),
			seed:  seed,
			llcb:  builder,
			opt:   workloads.RunOptions{Cores: r.Cores, Metrics: child, Faults: inj},
			fast:  true,
		})
		if err != nil {
			return 0, err
		}
		r.collect(key+"/func", child)
		return a.bench.Error(a.out, run.Output), nil
	})
}

// FaultSweep renders the output-error-vs-fault-rate table: for every
// benchmark, the output error of each organization at each injection rate,
// plus per-organization average rows — the degradation curves that show how
// gracefully approximate caching absorbs soft errors relative to the
// precise baseline.
func (r *Runner) FaultSweep() (*Table, error) {
	rates := r.faultRates()
	cols := []string{"benchmark", "org"}
	for _, rate := range rates {
		cols = append(cols, fmt.Sprintf("err @%g", rate))
	}
	t := &Table{
		Title:   fmt.Sprintf("Fault sweep: output error vs per-access fault rate (seed %d, %s)", r.FaultSeed, r.FaultModel),
		Columns: cols,
		Notes: []string{
			"faults hit LLC data/tag arrays, map generation and DRAM fetches;",
			"error is measured against the fault-free precise baseline output.",
		},
	}
	sums := make(map[string][]float64, len(FaultOrgs))
	for _, org := range FaultOrgs {
		sums[org] = make([]float64, len(rates))
	}
	for _, name := range r.Benchmarks() {
		for _, org := range FaultOrgs {
			cells := []string{name, org}
			for i, rate := range rates {
				v, err := r.FaultError(name, org, rate)
				if err != nil {
					return nil, err
				}
				sums[org][i] += v
				cells = append(cells, pct(v))
			}
			t.AddRow(cells...)
		}
	}
	n := float64(len(r.Benchmarks()))
	for _, org := range FaultOrgs {
		cells := []string{"average", org}
		for i := range rates {
			cells = append(cells, pct(sums[org][i]/n))
		}
		t.AddRow(cells...)
	}
	return t, nil
}
