package sweep

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:   "Sample",
		Columns: []string{"benchmark", "value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("alpha", "1.0")
	t.AddRow("beta-long-name", "2.5")
	return t
}

func TestTableFormatAligned(t *testing.T) {
	out := sampleTable().Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows... plus note = 6
		if len(lines) != 6 {
			t.Fatalf("lines = %d:\n%s", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "== Sample ==") {
		t.Errorf("title line %q", lines[0])
	}
	// Columns align: "value" starts at the same offset in header and rows.
	hdr := lines[1]
	idx := strings.Index(hdr, "value")
	for _, l := range lines[3:5] {
		if len(l) < idx {
			t.Errorf("short row %q", l)
		}
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
}

func TestTableFormatCSV(t *testing.T) {
	out := sampleTable().FormatCSV()
	r := csv.NewReader(strings.NewReader(out))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][1] != "value" || recs[2][0] != "beta-long-name" {
		t.Errorf("records = %v", recs)
	}
}

func TestTableFormatJSON(t *testing.T) {
	out := sampleTable().FormatJSON()
	var jt struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
		Notes []string            `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &jt); err != nil {
		t.Fatal(err)
	}
	if jt.Title != "Sample" || len(jt.Rows) != 2 {
		t.Errorf("decoded %+v", jt)
	}
	if jt.Rows[0]["benchmark"] != "alpha" || jt.Rows[1]["value"] != "2.5" {
		t.Errorf("rows = %v", jt.Rows)
	}
	if len(jt.Notes) != 1 {
		t.Errorf("notes = %v", jt.Notes)
	}
}

func TestFracName(t *testing.T) {
	for f, want := range map[float64]string{0.5: "1/2", 0.25: "1/4", 0.125: "1/8", 0.75: "3/4", 0.3: "0.3"} {
		if got := fracName(f); got != want {
			t.Errorf("fracName(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestHelpers(t *testing.T) {
	if pct(0.379) != "37.9%" {
		t.Errorf("pct = %q", pct(0.379))
	}
	if ratio(2.55) != "2.55x" {
		t.Errorf("ratio = %q", ratio(2.55))
	}
	if norm(1.0234) != "1.023" {
		t.Errorf("norm = %q", norm(1.0234))
	}
	if mean([]float64{1, 2, 3}) != 2 || mean(nil) != 0 {
		t.Error("mean wrong")
	}
}
