package sweep

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"doppelganger/internal/metrics"
	"doppelganger/internal/trace"
)

// The batched-replay differential suite: a Prewarm with single-pass
// multi-config replay enabled must leave exactly the bits a sequential
// sweep computes — quality outcomes with their full breaker histories
// included — while actually batching identical streams and sharing decoded
// captures across runners.

// TestBatchedQualityMatchesSequential runs the guarded quality cells three
// ways: live-recording cold, batched over the warm directory through the
// engine, and sequentially over the same warm directory through a second
// runner sharing the first's decoded cache. All three must agree bit for
// bit, the batch planner must have actually fused lanes, and the shared
// cache must have served cross-runner hits.
func TestBatchedQualityMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	only := []string{"kmeans"}
	// Rates tiny enough that no fault ever fires: within one organization
	// the recorded streams are byte-identical, so the planner has real
	// groups to fuse (the general case degrades to singletons, which keep
	// the sequential path).
	rates := []float64{1e-9, 1e-10}
	setup := func(r *Runner) *Runner {
		r.FaultSeed = 42
		r.QualitySeed = 7
		r.FaultRates = rates
		return r
	}
	collect := func(r *Runner) map[string]QualityOutcome {
		out := map[string]QualityOutcome{}
		for _, name := range only {
			for _, org := range GuardedOrgs {
				for _, rate := range rates {
					q, err := r.QualityError(name, org, rate)
					if err != nil {
						t.Fatal(err)
					}
					out[fmt.Sprintf("%s/%s/%g", name, org, rate)] = *q
				}
			}
		}
		return out
	}

	// Cold: live runs record the quality captures (and the baseline).
	want := collect(setup(traceRunner(0.02, dir, only...)))

	// Warm batched: the engine's quality-batch task replays fused groups;
	// the per-cell reads below come from the primed memo.
	var log strings.Builder
	b := setup(traceRunner(0.02, dir, only...))
	b.DecodedCache = trace.NewDecodedCache(256 << 20)
	b.ReplayBatch = 8
	b.Metrics = metrics.NewRegistry()
	b.Log = &log
	if err := b.Prewarm(Grid{Quality: true}); err != nil {
		t.Fatal(err)
	}
	got := collect(b)
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s missing from batched sweep", k)
		}
		if !qualityOutcomeEqual(w, g) {
			t.Errorf("%s: batched diverged from live:\nlive %+v\nbatched %+v", k, w, g)
		}
	}
	if !strings.Contains(log.String(), "batched guarded replay") {
		t.Error("batch planner never fused a group (identical streams went sequential)")
	}
	if n := b.Metrics.CounterValue("trace.replays"); n < uint64(len(want)) {
		t.Errorf("batched sweep counted %d replays, want at least %d", n, len(want))
	}

	// Sequential over the shared decoded cache: same bits, and the captures
	// the batched runner decoded are served from memory.
	s := setup(traceRunner(0.02, dir, only...))
	s.DecodedCache = b.DecodedCache
	seq := collect(s)
	for k, w := range want {
		if !qualityOutcomeEqual(w, seq[k]) {
			t.Errorf("%s: shared-cache sequential diverged from live:\nlive %+v\ngot %+v", k, w, seq[k])
		}
	}
	if st := b.DecodedCache.Stats(); st.Hits == 0 {
		t.Errorf("shared decoded cache served no hits across runners: %+v", st)
	}
}

// TestBatchedErrorCellsMatchSequential covers the decoded-cache fast path
// the warm error-only sweep takes (baseline output served from its capture,
// split/uni/fault cells from theirs): bits must match the live values.
func TestBatchedErrorCellsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cells := func(r *Runner) map[string]uint64 {
		r.FaultSeed = 42
		out := map[string]uint64{}
		s, err := r.SplitError("kmeans", BaseMapBits, BaseDataFrac)
		if err != nil {
			t.Fatal(err)
		}
		out["split"] = math.Float64bits(s)
		u, err := r.UnifiedError("kmeans", BaseMapBits, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		out["uni"] = math.Float64bits(u)
		fv, err := r.FaultError("kmeans", "doppel", 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		out["fault"] = math.Float64bits(fv)
		return out
	}
	live := cells(traceRunner(0.02, "", "kmeans"))
	cold := cells(traceRunner(0.02, dir, "kmeans"))
	w := traceRunner(0.02, dir, "kmeans")
	w.DecodedCache = trace.NewDecodedCache(256 << 20)
	w.Metrics = metrics.NewRegistry()
	warm := cells(w)
	for k, v := range live {
		if cold[k] != v {
			t.Errorf("%s: cold %x != live %x", k, cold[k], v)
		}
		if warm[k] != v {
			t.Errorf("%s: decoded-cache warm %x != live %x", k, warm[k], v)
		}
	}
	// The warm pass must not have executed a single kernel: every cell —
	// and the baseline output it scores against — came from captures.
	if n := w.Metrics.CounterValue("trace.records"); n != 0 {
		t.Errorf("warm pass re-recorded %d captures", n)
	}
	if st := w.DecodedCache.Stats(); st.Entries == 0 {
		t.Errorf("decoded cache empty after a warm sweep: %+v", st)
	}
}
