package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Grid names the simulation points of the evaluation. Prewarm expands it
// into one baseline task per benchmark plus one task per functional or
// timing run, with every variant task depending on its benchmark's
// baseline (the traces it replays and the precise output it scores
// against).
type Grid struct {
	// Benchmarks restricts the grid (nil: the Runner's suite).
	Benchmarks []string
	// MapSpaces adds split runs at (m, BaseDataFrac) per map size (Fig 9).
	MapSpaces []int
	// DataFracs adds split runs at (BaseMapBits, frac) per data fraction
	// (Figs 10–12).
	DataFracs []float64
	// UniFracs adds uniDoppelgänger runs at (BaseMapBits, frac) (Fig 14).
	UniFracs []float64
	// Extras adds the extension configurations (alternative hashes,
	// tag-count-aware replacement, compressed data array).
	Extras bool
	// Faults adds fault-injection runs per organization and rate. Like
	// Extras it is explicit-only: FullGrid never enables it, because fault
	// runs triple the functional workload and only the fault-sweep table
	// reads them.
	Faults bool
	// Quality adds guarded fault-injection runs (functional plus two timing
	// replays) per guarded organization and rate, and the unguarded fault
	// runs the quality table's guard-off column reads. Explicit-only, like
	// Faults.
	Quality bool
}

// FullGrid covers every simulation the paper's tables and figures need.
func FullGrid(extras bool) Grid {
	return Grid{MapSpaces: MapSpaces, DataFracs: DataFracs, UniFracs: UniFracs, Extras: extras}
}

// GridFor returns the smallest grid covering the named experiments (table2,
// fig2 … fig14, table3, extras, faults), so a partial run only simulates
// what its tables render. Unknown names conservatively widen to the full
// grid.
func GridFor(names ...string) Grid {
	var g Grid
	for _, n := range names {
		switch n {
		case "table2", "fig2", "fig7", "fig8":
			// Rendered from the baseline artifacts alone.
		case "fig9":
			g.MapSpaces = MapSpaces
		case "fig10", "fig11", "fig12":
			g.DataFracs = DataFracs
		case "fig14":
			g.UniFracs = UniFracs
		case "extras":
			g.Extras = true
		case "faults":
			g.Faults = true
		case "quality":
			g.Quality = true
		case "fig13", "table3":
			// Static hardware-model tables; no simulations.
		default:
			return FullGrid(true)
		}
	}
	return g
}

// task is one node of the engine's dependency graph: a unit of simulation
// work that becomes runnable once every dependency has finished.
type task struct {
	label      string
	run        func(ctx context.Context) error
	waiting    int // unfinished dependencies
	dependents []*task
	skip       bool // a dependency failed; don't run
}

// Prewarm expands the grid into a dependency-aware task graph and executes
// it on a pool of r.Workers goroutines (0: GOMAXPROCS). Every task lands in
// the Runner's singleflight caches, so the table builders afterwards only
// format already-computed results — in the same deterministic benchmark
// order as a serial run, with bit-identical values (each simulation owns
// all its mutable state; scheduling order cannot reach it).
//
// On failure the first errors are returned joined; tasks downstream of a
// failed baseline are skipped.
func (r *Runner) Prewarm(g Grid) error {
	return r.PrewarmContext(context.Background(), g)
}

// PrewarmContext is Prewarm under a cancellable context: cancellation stops
// new tasks from starting, interrupts in-flight simulations at their next
// scheduling point, and returns once every worker has drained.
func (r *Runner) PrewarmContext(ctx context.Context, g Grid) error {
	benchmarks := g.Benchmarks
	if benchmarks == nil {
		benchmarks = r.Benchmarks()
	}
	var tasks []*task
	for _, name := range benchmarks {
		name := name
		base := &task{label: name + "/baseline", run: func(ctx context.Context) error {
			_, err := r.BaselineContext(ctx, name)
			return err
		}}
		tasks = append(tasks, base)

		seen := map[string]bool{}
		variantOn := func(parent *task, label string, run func(ctx context.Context) error) {
			if seen[label] {
				return
			}
			seen[label] = true
			t := &task{label: label, run: run, waiting: 1}
			parent.dependents = append(parent.dependents, t)
			tasks = append(tasks, t)
		}
		variant := func(label string, run func(ctx context.Context) error) {
			variantOn(base, label, run)
		}
		split := func(m int, frac float64) {
			variant(fmt.Sprintf("%s/split/M%d/data%g/error", name, m, frac), func(ctx context.Context) error {
				_, err := r.SplitErrorContext(ctx, name, m, frac)
				return err
			})
			variant(fmt.Sprintf("%s/split/M%d/data%g/timing", name, m, frac), func(ctx context.Context) error {
				_, err := r.SplitTimingContext(ctx, name, m, frac)
				return err
			})
		}
		for _, m := range g.MapSpaces {
			split(m, BaseDataFrac)
		}
		for _, frac := range g.DataFracs {
			split(BaseMapBits, frac)
		}
		for _, frac := range g.UniFracs {
			frac := frac
			variant(fmt.Sprintf("%s/uni/data%g/error", name, frac), func(ctx context.Context) error {
				_, err := r.UnifiedErrorContext(ctx, name, BaseMapBits, frac)
				return err
			})
			variant(fmt.Sprintf("%s/uni/data%g/timing", name, frac), func(ctx context.Context) error {
				_, err := r.UnifiedTimingContext(ctx, name, BaseMapBits, frac)
				return err
			})
		}
		if g.Extras {
			split(BaseMapBits, BaseDataFrac) // the column every extra is compared against
			for _, x := range extrasConfigs() {
				x := x
				if x.timing {
					variant(fmt.Sprintf("%s/custom/%s/timing", name, x.tag), func(ctx context.Context) error {
						_, err := r.customTimingContext(ctx, name, x.cfg, x.tag)
						return err
					})
				} else {
					variant(fmt.Sprintf("%s/custom/%s/error", name, x.tag), func(ctx context.Context) error {
						_, err := r.customErrorContext(ctx, name, x.cfg, x.tag)
						return err
					})
				}
			}
		}
		if g.Faults || g.Quality {
			for _, org := range FaultOrgs {
				org := org
				for _, rate := range r.faultRates() {
					rate := rate
					variant(fmt.Sprintf("%s/fault/%s/%g", name, org, rate), func(ctx context.Context) error {
						_, err := r.FaultErrorContext(ctx, name, org, rate)
						return err
					})
				}
			}
		}
		if g.Quality {
			// With batching on, one planner task replays every group of
			// identical-stream guarded cells in a single pass; the per-cell
			// error tasks run after it and find their outcomes memoized
			// (or compute sequentially whatever the batch could not serve).
			qparent := base
			if r.batchEnabled() {
				bt := &task{label: name + "/quality-batch", waiting: 1, run: func(ctx context.Context) error {
					return r.runQualityBatch(ctx, name)
				}}
				base.dependents = append(base.dependents, bt)
				tasks = append(tasks, bt)
				qparent = bt
			}
			for _, org := range GuardedOrgs {
				org := org
				for _, rate := range r.faultRates() {
					rate := rate
					variantOn(qparent, fmt.Sprintf("%s/quality/%s/%g/error", name, org, rate), func(ctx context.Context) error {
						_, err := r.QualityErrorContext(ctx, name, org, rate)
						return err
					})
					variant(fmt.Sprintf("%s/quality/%s/%g/time-off", name, org, rate), func(ctx context.Context) error {
						_, err := r.QualityTimingContext(ctx, name, org, rate, false)
						return err
					})
					variant(fmt.Sprintf("%s/quality/%s/%g/time-on", name, org, rate), func(ctx context.Context) error {
						_, err := r.QualityTimingContext(ctx, name, org, rate, true)
						return err
					})
				}
			}
		}
	}
	return r.runTasks(ctx, tasks)
}

// runTasks drains a task graph through a bounded worker pool: tasks with no
// unfinished dependencies sit in the ready queue; finishing a task releases
// its dependents. Progress is reported through the Runner's serialized log
// as "[done/total]" lines. Errors do not stop independent work, but a
// cancelled context fails every task not yet started without running it.
func (r *Runner) runTasks(ctx context.Context, tasks []*task) error {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if len(tasks) == 0 {
		return nil
	}

	// Buffered to the graph size so completions never block on the queue
	// while holding the scheduler lock.
	ready := make(chan *task, len(tasks))
	var (
		mu      sync.Mutex
		errs    []error
		pending = len(tasks)
		done    int
		drained bool // ready has been closed
	)
	// completeLocked retires a task (run or skipped) and releases any
	// dependents that become ready; called with mu held.
	var completeLocked func(t *task, failed bool)
	completeLocked = func(t *task, failed bool) {
		done++
		pending--
		for _, d := range t.dependents {
			if failed {
				d.skip = true
			}
			d.waiting--
			if d.waiting == 0 {
				if d.skip {
					r.logf("[%d/%d] skip %s (dependency failed)", done+1, len(tasks), d.label)
					completeLocked(d, true)
				} else {
					ready <- d
				}
			}
		}
		// The skip cascade recurses through completeLocked, so an inner
		// frame may already have drained the graph.
		if pending == 0 && !drained {
			drained = true
			close(ready)
		}
	}

	for _, t := range tasks {
		if t.waiting == 0 {
			ready <- t
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ready {
				start := time.Now()
				err := ctx.Err()
				if err == nil {
					err = r.runTask(ctx, t)
				}
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: %w", t.label, err))
					r.logf("[%d/%d] FAIL %s: %v", done+1, len(tasks), t.label, err)
				} else {
					r.logf("[%d/%d] done %s (%.2fs)", done+1, len(tasks), t.label, time.Since(start).Seconds())
				}
				completeLocked(t, err != nil)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runTask executes one task with the Runner's bounded-retry policy: a
// failure retries up to r.Retries times with exponentially growing backoff
// (RetryBackoff, default 250 ms, doubling per attempt). Retries make sense
// because failed keys are forgotten by the memo caches, so a retry really
// recomputes. Cancellation short-circuits both the retries and the backoff
// sleep.
func (r *Runner) runTask(ctx context.Context, t *task) error {
	backoff := r.RetryBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = r.runOnce(ctx, t)
		if err == nil || attempt >= r.Retries || ctx.Err() != nil {
			return err
		}
		r.logf("[retry %d/%d] %s: %v (backing off %s)", attempt+1, r.Retries, t.label, err, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return err
		}
		backoff *= 2
	}
}

// runOnce is a single attempt: the task runs under the per-task deadline
// (TaskTimeout, when set) and behind a panic shield, so a crashing
// simulation fails its own task with the stack attached instead of killing
// the whole sweep process.
func (r *Runner) runOnce(ctx context.Context, t *task) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	if r.TaskTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.TaskTimeout)
		defer cancel()
	}
	return t.run(ctx)
}
