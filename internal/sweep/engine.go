package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Grid names the simulation points of the evaluation. Prewarm expands it
// into one baseline task per benchmark plus one task per functional or
// timing run, with every variant task depending on its benchmark's
// baseline (the traces it replays and the precise output it scores
// against).
type Grid struct {
	// Benchmarks restricts the grid (nil: the Runner's suite).
	Benchmarks []string
	// MapSpaces adds split runs at (m, BaseDataFrac) per map size (Fig 9).
	MapSpaces []int
	// DataFracs adds split runs at (BaseMapBits, frac) per data fraction
	// (Figs 10–12).
	DataFracs []float64
	// UniFracs adds uniDoppelgänger runs at (BaseMapBits, frac) (Fig 14).
	UniFracs []float64
	// Extras adds the extension configurations (alternative hashes,
	// tag-count-aware replacement, compressed data array).
	Extras bool
}

// FullGrid covers every simulation the paper's tables and figures need.
func FullGrid(extras bool) Grid {
	return Grid{MapSpaces: MapSpaces, DataFracs: DataFracs, UniFracs: UniFracs, Extras: extras}
}

// GridFor returns the smallest grid covering the named experiments (table2,
// fig2 … fig14, table3, extras), so a partial run only simulates what its
// tables render. Unknown names conservatively widen to the full grid.
func GridFor(names ...string) Grid {
	var g Grid
	for _, n := range names {
		switch n {
		case "table2", "fig2", "fig7", "fig8":
			// Rendered from the baseline artifacts alone.
		case "fig9":
			g.MapSpaces = MapSpaces
		case "fig10", "fig11", "fig12":
			g.DataFracs = DataFracs
		case "fig14":
			g.UniFracs = UniFracs
		case "extras":
			g.Extras = true
		case "fig13", "table3":
			// Static hardware-model tables; no simulations.
		default:
			return FullGrid(true)
		}
	}
	return g
}

// task is one node of the engine's dependency graph: a unit of simulation
// work that becomes runnable once every dependency has finished.
type task struct {
	label      string
	run        func() error
	waiting    int // unfinished dependencies
	dependents []*task
	skip       bool // a dependency failed; don't run
}

// Prewarm expands the grid into a dependency-aware task graph and executes
// it on a pool of r.Workers goroutines (0: GOMAXPROCS). Every task lands in
// the Runner's singleflight caches, so the table builders afterwards only
// format already-computed results — in the same deterministic benchmark
// order as a serial run, with bit-identical values (each simulation owns
// all its mutable state; scheduling order cannot reach it).
//
// On failure the first errors are returned joined; tasks downstream of a
// failed baseline are skipped.
func (r *Runner) Prewarm(g Grid) error {
	benchmarks := g.Benchmarks
	if benchmarks == nil {
		benchmarks = r.Benchmarks()
	}
	var tasks []*task
	for _, name := range benchmarks {
		name := name
		base := &task{label: name + "/baseline", run: func() error {
			_, err := r.Baseline(name)
			return err
		}}
		tasks = append(tasks, base)

		seen := map[string]bool{}
		variant := func(label string, run func() error) {
			if seen[label] {
				return
			}
			seen[label] = true
			t := &task{label: label, run: run, waiting: 1}
			base.dependents = append(base.dependents, t)
			tasks = append(tasks, t)
		}
		split := func(m int, frac float64) {
			variant(fmt.Sprintf("%s/split/M%d/data%g/error", name, m, frac), func() error {
				_, err := r.SplitError(name, m, frac)
				return err
			})
			variant(fmt.Sprintf("%s/split/M%d/data%g/timing", name, m, frac), func() error {
				_, err := r.SplitTiming(name, m, frac)
				return err
			})
		}
		for _, m := range g.MapSpaces {
			split(m, BaseDataFrac)
		}
		for _, frac := range g.DataFracs {
			split(BaseMapBits, frac)
		}
		for _, frac := range g.UniFracs {
			frac := frac
			variant(fmt.Sprintf("%s/uni/data%g/error", name, frac), func() error {
				_, err := r.UnifiedError(name, BaseMapBits, frac)
				return err
			})
			variant(fmt.Sprintf("%s/uni/data%g/timing", name, frac), func() error {
				_, err := r.UnifiedTiming(name, BaseMapBits, frac)
				return err
			})
		}
		if g.Extras {
			split(BaseMapBits, BaseDataFrac) // the column every extra is compared against
			for _, x := range extrasConfigs() {
				x := x
				if x.timing {
					variant(fmt.Sprintf("%s/custom/%s/timing", name, x.tag), func() error {
						_, err := r.customTiming(name, x.cfg, x.tag)
						return err
					})
				} else {
					variant(fmt.Sprintf("%s/custom/%s/error", name, x.tag), func() error {
						_, err := r.customError(name, x.cfg, x.tag)
						return err
					})
				}
			}
		}
	}
	return r.runTasks(tasks)
}

// runTasks drains a task graph through a bounded worker pool: tasks with no
// unfinished dependencies sit in the ready queue; finishing a task releases
// its dependents. Progress is reported through the Runner's serialized log
// as "[done/total]" lines. Errors do not stop independent work.
func (r *Runner) runTasks(tasks []*task) error {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if len(tasks) == 0 {
		return nil
	}

	// Buffered to the graph size so completions never block on the queue
	// while holding the scheduler lock.
	ready := make(chan *task, len(tasks))
	var (
		mu      sync.Mutex
		errs    []error
		pending = len(tasks)
		done    int
		drained bool // ready has been closed
	)
	// completeLocked retires a task (run or skipped) and releases any
	// dependents that become ready; called with mu held.
	var completeLocked func(t *task, failed bool)
	completeLocked = func(t *task, failed bool) {
		done++
		pending--
		for _, d := range t.dependents {
			if failed {
				d.skip = true
			}
			d.waiting--
			if d.waiting == 0 {
				if d.skip {
					r.logf("[%d/%d] skip %s (dependency failed)", done+1, len(tasks), d.label)
					completeLocked(d, true)
				} else {
					ready <- d
				}
			}
		}
		// The skip cascade recurses through completeLocked, so an inner
		// frame may already have drained the graph.
		if pending == 0 && !drained {
			drained = true
			close(ready)
		}
	}

	for _, t := range tasks {
		if t.waiting == 0 {
			ready <- t
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ready {
				start := time.Now()
				err := t.run()
				mu.Lock()
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: %w", t.label, err))
					r.logf("[%d/%d] FAIL %s: %v", done+1, len(tasks), t.label, err)
				} else {
					r.logf("[%d/%d] done %s (%.2fs)", done+1, len(tasks), t.label, time.Since(start).Seconds())
				}
				completeLocked(t, err != nil)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
