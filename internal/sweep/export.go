package sweep

import (
	"encoding/csv"
	"encoding/json"
	"strings"
)

// FormatCSV renders the table as RFC-4180 CSV (header row first); notes are
// omitted.
func (t *Table) FormatCSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, r := range t.Rows {
		_ = w.Write(r)
	}
	w.Flush()
	return b.String()
}

// jsonTable is the JSON wire form of a table.
type jsonTable struct {
	Title   string              `json:"title"`
	Columns []string            `json:"columns"`
	Rows    []map[string]string `json:"rows"`
	Notes   []string            `json:"notes,omitempty"`
}

// FormatJSON renders the table as indented JSON with one object per row,
// keyed by column name.
func (t *Table) FormatJSON() string {
	jt := jsonTable{Title: t.Title, Columns: t.Columns, Notes: t.Notes}
	for _, r := range t.Rows {
		row := make(map[string]string, len(r))
		for i, cell := range r {
			if i < len(t.Columns) {
				row[t.Columns[i]] = cell
			}
		}
		jt.Rows = append(jt.Rows, row)
	}
	out, err := json.MarshalIndent(jt, "", "  ")
	if err != nil {
		return `{"error":"marshal failed"}`
	}
	return string(out) + "\n"
}
