package sweep

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemoSingleflight proves the cache's central guarantee: N goroutines
// requesting the same key observe exactly one computation and all receive
// its value.
func TestMemoSingleflight(t *testing.T) {
	m := newMemo[int]()
	const goroutines = 32
	var computed atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = m.Do("key", func() (int, error) {
				computed.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return 7, nil
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if n := m.Computes(); n != 1 {
		t.Fatalf("Computes() = %d, want 1", n)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != 7 {
			t.Fatalf("goroutine %d got %d, want 7", i, results[i])
		}
	}
}

// TestMemoDistinctKeysConcurrent proves the mutex only guards the entry
// map: two different keys must be able to compute at the same time. Each
// computation waits for the other to start — if one held the lock during
// compute, this would deadlock (and trip the test timeout).
func TestMemoDistinctKeysConcurrent(t *testing.T) {
	m := newMemo[string]()
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.Do("a", func() (string, error) {
			close(aStarted)
			<-bStarted
			return "a", nil
		})
	}()
	go func() {
		defer wg.Done()
		m.Do("b", func() (string, error) {
			close(bStarted)
			<-aStarted
			return "b", nil
		})
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("distinct keys serialized: computations could not overlap")
	}
	if m.Computes() != 2 || m.Len() != 2 {
		t.Fatalf("computes %d, len %d, want 2, 2", m.Computes(), m.Len())
	}
}

// TestMemoErrorCached verifies errors are delivered to every caller and
// cached like values: the failed computation does not rerun.
func TestMemoErrorCached(t *testing.T) {
	m := newMemo[int]()
	boom := errors.New("boom")
	var computed atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := m.Do("bad", func() (int, error) {
			computed.Add(1)
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want %v", i, err, boom)
		}
	}
	if computed.Load() != 1 {
		t.Fatalf("failed computation ran %d times, want 1", computed.Load())
	}
}

// TestMemoPanicBecomesError verifies a panicking computation is converted
// to an error rather than stranding waiters on the entry's ready channel.
func TestMemoPanicBecomesError(t *testing.T) {
	m := newMemo[int]()
	_, err := m.Do("p", func() (int, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
	// Waiters that arrive after the panic see the same error.
	if _, err2 := m.Do("p", func() (int, error) { return 1, nil }); err2 == nil {
		t.Fatal("second Do recomputed past a panicked entry")
	}
}

// TestRunnerMemoSingleflight lifts the singleflight guarantee to the
// Runner: concurrent SplitError calls for one key run the baseline once and
// the split simulation once.
func TestRunnerMemoSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r := NewRunner(0.05)
	const goroutines = 8
	var wg sync.WaitGroup
	vals := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.SplitError("inversek2j", 14, 0.25)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if n := r.base.Computes(); n != 1 {
		t.Errorf("baseline computed %d times, want 1", n)
	}
	if n := r.errCache.Computes(); n != 1 {
		t.Errorf("split error computed %d times, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if vals[i] != vals[0] {
			t.Errorf("goroutine %d saw %v, goroutine 0 saw %v", i, vals[i], vals[0])
		}
	}
}
