package sweep

import (
	"sync"
	"testing"
)

// The memo cache itself lives in internal/singleflight (shared with the
// sweep server) and is tested there; this file keeps the Runner-level
// integration proof.

// TestRunnerMemoSingleflight lifts the singleflight guarantee to the
// Runner: concurrent SplitError calls for one key run the baseline once and
// the split simulation once.
func TestRunnerMemoSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r := NewRunner(0.05)
	const goroutines = 8
	var wg sync.WaitGroup
	vals := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := r.SplitError("inversek2j", 14, 0.25)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if n := r.base.Computes(); n != 1 {
		t.Errorf("baseline computed %d times, want 1", n)
	}
	if n := r.errCache.Computes(); n != 1 {
		t.Errorf("split error computed %d times, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if vals[i] != vals[0] {
			t.Errorf("goroutine %d saw %v, goroutine 0 saw %v", i, vals[i], vals[0])
		}
	}
}
