package sweep

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestDynamicExperimentsSubset runs the trace-driven experiments end to end
// at reduced scale on a two-benchmark subset, checking the directional
// claims that do not depend on exact workload sizing:
//   - runtime normalized to baseline stays near 1 (the paper reports +2.3%
//     at the base configuration) and does not improve as the data array
//     shrinks;
//   - dynamic energy reduction is > 1 (the smaller structures cost less per
//     access);
//   - leakage energy reduction is > 1.
func TestDynamicExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r := NewRunner(0.25)
	r.Only = []string{"blackscholes", "jpeg"}

	_, runT, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", runT.Format())
	avg := runT.Rows[len(runT.Rows)-1]
	for i := 1; i < len(avg); i++ {
		v, err := strconv.ParseFloat(avg[i], 64)
		if err != nil {
			t.Fatalf("bad runtime cell %q", avg[i])
		}
		if v < 0.8 || v > 1.6 {
			t.Errorf("normalized runtime %s out of plausible band: %v", runT.Columns[i], v)
		}
	}

	dynT, leakT, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", dynT.Format(), leakT.Format())
	for _, tbl := range []*Table{dynT, leakT} {
		avg := tbl.Rows[len(tbl.Rows)-1]
		for i := 1; i < len(avg); i++ {
			var v float64
			if _, err := fmt.Sscanf(avg[i], "%fx", &v); err != nil {
				t.Fatalf("bad ratio cell %q", avg[i])
			}
			if v <= 1 {
				t.Errorf("%s %s: expected >1x reduction, got %.2fx", tbl.Title, tbl.Columns[i], v)
			}
		}
	}

	f12, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f12.Format())
	last := f12.Rows[len(f12.Rows)-1]
	if !strings.HasPrefix(last[0], "average") {
		t.Fatalf("missing average row")
	}
}
