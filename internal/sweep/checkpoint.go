package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"doppelganger/internal/core"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/timesim"
)

// Checkpoint persists completed sweep results as append-only JSONL so an
// interrupted run can resume without repeating finished simulations. One
// record is appended (and flushed) per completed memo key, so whatever was
// finished when a SIGINT arrives is on disk.
//
// Scalars (output errors) are stored as raw float64 bits, and timing runs
// as the reduced TimingSummary, so a resumed run renders bit-identical
// tables: exactly the fields the tables and the energy model consume are
// round-tripped exactly. Baseline artifacts (traces, analyzers, memory
// images) are deliberately not persisted — they are recomputed on resume,
// which is deterministic and far cheaper than serializing them.
type Checkpoint struct {
	mu     sync.Mutex
	f      *os.File
	saved  map[string]bool
	errs   map[string]float64
	timing map[string]*TimingSummary
}

// TimingSummary is the subset of a timesim.Result the experiment tables and
// the energy model consume; Evicted per-access lists are dropped (nothing
// downstream of the runner reads them).
type TimingSummary struct {
	Cycles        uint64
	PerCoreCycles []uint64
	Instructions  uint64
	Totals        core.Effects
	Hier          funcsim.Stats
}

// summarize reduces a timing result to its persisted form.
func summarize(res *timesim.Result) *TimingSummary {
	totals := res.Totals
	totals.Evicted = nil
	return &TimingSummary{
		Cycles:        res.Cycles,
		PerCoreCycles: res.PerCoreCycles,
		Instructions:  res.Instructions,
		Totals:        totals,
		Hier:          res.Hier,
	}
}

// Result rebuilds the timesim.Result view of the summary (LLC and Metrics
// are gone; no table consumer reads them).
func (s *TimingSummary) Result() *timesim.Result {
	return &timesim.Result{
		Cycles:        s.Cycles,
		PerCoreCycles: s.PerCoreCycles,
		Instructions:  s.Instructions,
		Totals:        s.Totals,
		Hier:          s.Hier,
	}
}

// checkpointRecord is one JSONL line.
type checkpointRecord struct {
	Kind   string         `json:"kind"` // "error" or "timing"
	Key    string         `json:"key"`
	Bits   uint64         `json:"bits,omitempty"` // math.Float64bits of the error value
	Timing *TimingSummary `json:"timing,omitempty"`
}

// OpenCheckpoint opens (or creates) the checkpoint file at path. With
// resume set, existing records are loaded first — feed them to
// Runner.Resume — and new records append after them; without it the file
// is truncated. A partial trailing line (a write cut off by a kill) is
// tolerated and dropped.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	cp := &Checkpoint{
		saved:  make(map[string]bool),
		errs:   make(map[string]float64),
		timing: make(map[string]*TimingSummary),
	}
	flags := os.O_CREATE | os.O_RDWR | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	cp.f = f
	if resume {
		if err := cp.load(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return cp, nil
}

// load parses the existing records (called once, before any writes).
func (cp *Checkpoint) load() error {
	if _, err := cp.f.Seek(0, 0); err != nil {
		return err
	}
	sc := bufio.NewScanner(cp.f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn trailing line from an interrupted write: drop it (the
			// task will simply recompute). Corruption mid-file would also
			// land here, losing later records the same benign way.
			continue
		}
		switch rec.Kind {
		case "error":
			cp.errs[rec.Key] = math.Float64frombits(rec.Bits)
			cp.saved[rec.Key+"/error"] = true
		case "timing":
			if rec.Timing != nil {
				cp.timing[rec.Key] = rec.Timing
				cp.saved[rec.Key+"/timing"] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sweep: reading checkpoint: %w", err)
	}
	_, err := cp.f.Seek(0, 2)
	return err
}

// Errors returns the loaded error records (for Runner.Resume).
func (cp *Checkpoint) Errors() map[string]float64 { return cp.errs }

// Timings returns the loaded timing records (for Runner.Resume).
func (cp *Checkpoint) Timings() map[string]*TimingSummary { return cp.timing }

// Len reports how many records are stored (loaded plus newly saved).
func (cp *Checkpoint) Len() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.saved)
}

// SaveError appends one error record. Duplicate saves of a key (every
// singleflight waiter reports its result) write once.
func (cp *Checkpoint) SaveError(key string, v float64) {
	cp.append(key+"/error", checkpointRecord{Kind: "error", Key: key, Bits: math.Float64bits(v)})
}

// SaveTiming appends one timing record.
func (cp *Checkpoint) SaveTiming(key string, res *timesim.Result) {
	cp.append(key+"/timing", checkpointRecord{Kind: "timing", Key: key, Timing: summarize(res)})
}

func (cp *Checkpoint) append(dedup string, rec checkpointRecord) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil || cp.saved[dedup] {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return // summaries are plain data; cannot happen
	}
	b = append(b, '\n')
	if _, err := cp.f.Write(b); err != nil {
		return // a full disk mustn't kill the sweep; resume just recomputes
	}
	cp.saved[dedup] = true
}

// Close flushes and closes the file.
func (cp *Checkpoint) Close() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return nil
	}
	err := cp.f.Close()
	cp.f = nil
	return err
}

// Resume primes the runner's memo caches from loaded checkpoint records:
// tasks whose results are already on disk are skipped bit-identically, and
// only missing keys simulate. Baselines always recompute (they are not
// checkpointed), which is deterministic, so a resumed run's tables match an
// uninterrupted run byte for byte.
func (r *Runner) Resume(cp *Checkpoint) {
	for key, v := range cp.Errors() {
		r.errCache.Prime(key, v)
	}
	for key, s := range cp.Timings() {
		r.timeCache.Prime(key, s.Result())
	}
}
