package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"doppelganger/internal/core"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/timesim"
)

// CheckpointSchemaVersion is the on-disk format version. The first line of
// every checkpoint file is a header record carrying it; -resume refuses a
// mismatched (or missing) version instead of silently priming caches with
// records whose meaning may have changed.
//
// History: version 1 was the PR 3 format (implicit — no header, "error" and
// "timing" records only); version 2 added the header itself and the
// "quality" record kind.
const CheckpointSchemaVersion = 2

// maxCheckpointWarnings caps the warning log so a corrupt (or hostile) file
// cannot balloon memory; the tail is summarized instead.
const maxCheckpointWarnings = 20

// Checkpoint persists completed sweep results as append-only JSONL so an
// interrupted run can resume without repeating finished simulations. One
// record is appended (and flushed) per completed memo key, so whatever was
// finished when a SIGINT arrives is on disk.
//
// Scalars (output errors) are stored as raw float64 bits, and timing runs
// as the reduced TimingSummary, so a resumed run renders bit-identical
// tables: exactly the fields the tables and the energy model consume are
// round-tripped exactly. Baseline artifacts (traces, analyzers, memory
// images) are deliberately not persisted — they are recomputed on resume,
// which is deterministic and far cheaper than serializing them.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	saved    map[string]bool
	errs     map[string]float64
	timing   map[string]*TimingSummary
	quality  map[string]*QualityOutcome
	warnings []string
}

// TimingSummary is the subset of a timesim.Result the experiment tables and
// the energy model consume; Evicted per-access lists are dropped (nothing
// downstream of the runner reads them).
type TimingSummary struct {
	Cycles        uint64
	PerCoreCycles []uint64
	Instructions  uint64
	Totals        core.Effects
	Hier          funcsim.Stats
}

// Summarize reduces a timing result to the exact fields the tables and the
// energy model consume — the canonical wire/persist form shared by the
// checkpoint file and the sweep server's job responses.
func Summarize(res *timesim.Result) *TimingSummary { return summarize(res) }

// summarize reduces a timing result to its persisted form.
func summarize(res *timesim.Result) *TimingSummary {
	totals := res.Totals
	totals.Evicted = nil
	return &TimingSummary{
		Cycles:        res.Cycles,
		PerCoreCycles: res.PerCoreCycles,
		Instructions:  res.Instructions,
		Totals:        totals,
		Hier:          res.Hier,
	}
}

// Result rebuilds the timesim.Result view of the summary (LLC and Metrics
// are gone; no table consumer reads them).
func (s *TimingSummary) Result() *timesim.Result {
	return &timesim.Result{
		Cycles:        s.Cycles,
		PerCoreCycles: s.PerCoreCycles,
		Instructions:  s.Instructions,
		Totals:        s.Totals,
		Hier:          s.Hier,
	}
}

// checkpointRecord is one JSONL line.
type checkpointRecord struct {
	Kind    string          `json:"kind"` // "header", "error", "timing" or "quality"
	Version int             `json:"version,omitempty"`
	Key     string          `json:"key,omitempty"`
	Bits    uint64          `json:"bits,omitempty"` // math.Float64bits of the error value
	Timing  *TimingSummary  `json:"timing,omitempty"`
	Quality *QualityOutcome `json:"quality,omitempty"`
}

// OpenCheckpoint opens (or creates) the checkpoint file at path. With
// resume set, existing records are loaded first — feed them to
// Runner.Resume — and new records append after them; without it the file is
// truncated and a fresh schema header is written. A partial trailing line
// (a write cut off by a kill) is tolerated and dropped; duplicate keys keep
// the last record, with a warning (see Warnings).
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	cp := &Checkpoint{
		saved:   make(map[string]bool),
		errs:    make(map[string]float64),
		timing:  make(map[string]*TimingSummary),
		quality: make(map[string]*QualityOutcome),
	}
	flags := os.O_CREATE | os.O_RDWR | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	cp.f = f
	if resume {
		if err := cp.load(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
		}
	} else if err := cp.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return cp, nil
}

// writeHeader appends the schema header line.
func (cp *Checkpoint) writeHeader() error {
	b, err := json.Marshal(checkpointRecord{Kind: "header", Version: CheckpointSchemaVersion})
	if err != nil {
		return err
	}
	_, err = cp.f.Write(append(b, '\n'))
	return err
}

// checkpointData is the parsed content of a checkpoint stream, kept apart
// from the Checkpoint's file handling so the parser can be fuzzed directly.
type checkpointData struct {
	errs     map[string]float64
	timing   map[string]*TimingSummary
	quality  map[string]*QualityOutcome
	warnings []string
	empty    bool // no bytes at all (a freshly created file)
}

// warnf records one warning, capped so hostile inputs cannot balloon memory.
func (d *checkpointData) warnf(format string, args ...interface{}) {
	if len(d.warnings) == maxCheckpointWarnings {
		d.warnings = append(d.warnings, "... further checkpoint warnings suppressed")
	}
	if len(d.warnings) > maxCheckpointWarnings {
		return
	}
	d.warnings = append(d.warnings, fmt.Sprintf(format, args...))
}

// parseCheckpoint reads a checkpoint stream: a schema header line first,
// then one record per line. It enforces the schema version, tolerates
// unparseable lines (a torn trailing write — or mid-file corruption, which
// additionally earns a warning), and resolves duplicate keys by keeping the
// last record with a warning.
func parseCheckpoint(r io.Reader) (*checkpointData, error) {
	d := &checkpointData{
		errs:    make(map[string]float64),
		timing:  make(map[string]*TimingSummary),
		quality: make(map[string]*QualityOutcome),
		empty:   true,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	torn := 0
	sawHeader := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		d.empty = false
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if !sawHeader {
				return nil, fmt.Errorf("unreadable schema header: %v (not a checkpoint file? delete it or rerun without -resume)", err)
			}
			// A torn trailing line from an interrupted write, or corruption
			// mid-file: drop it (the task simply recomputes).
			torn++
			continue
		}
		if !sawHeader {
			if rec.Kind != "header" {
				return nil, fmt.Errorf("no schema header (written by an older version?); delete the file or rerun without -resume")
			}
			if rec.Version != CheckpointSchemaVersion {
				return nil, fmt.Errorf("schema version %d, this binary reads %d; delete the file or rerun without -resume",
					rec.Version, CheckpointSchemaVersion)
			}
			sawHeader = true
			continue
		}
		switch rec.Kind {
		case "header":
			d.warnf("unexpected extra header record ignored")
		case "error":
			if _, dup := d.errs[rec.Key]; dup {
				d.warnf("duplicate error record for %q: keeping the last", rec.Key)
			}
			d.errs[rec.Key] = math.Float64frombits(rec.Bits)
		case "timing":
			if rec.Timing == nil {
				d.warnf("timing record for %q has no payload; dropped", rec.Key)
				continue
			}
			if _, dup := d.timing[rec.Key]; dup {
				d.warnf("duplicate timing record for %q: keeping the last", rec.Key)
			}
			d.timing[rec.Key] = rec.Timing
		case "quality":
			if rec.Quality == nil {
				d.warnf("quality record for %q has no payload; dropped", rec.Key)
				continue
			}
			if _, dup := d.quality[rec.Key]; dup {
				d.warnf("duplicate quality record for %q: keeping the last", rec.Key)
			}
			d.quality[rec.Key] = rec.Quality
		default:
			d.warnf("unknown record kind %q ignored", rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading checkpoint: %w", err)
	}
	if torn > 0 {
		d.warnf("skipped %d unparseable line(s) (torn writes or corruption)", torn)
	}
	return d, nil
}

// load parses the existing records (called once, before any writes) and
// leaves the file positioned for appending. An empty file (resuming into a
// path that does not exist yet) gets the schema header written.
func (cp *Checkpoint) load() error {
	if _, err := cp.f.Seek(0, 0); err != nil {
		return err
	}
	d, err := parseCheckpoint(cp.f)
	if err != nil {
		return err
	}
	if _, err := cp.f.Seek(0, 2); err != nil {
		return err
	}
	if d.empty {
		return cp.writeHeader()
	}
	cp.errs, cp.timing, cp.quality, cp.warnings = d.errs, d.timing, d.quality, d.warnings
	for key := range d.errs {
		cp.saved[key+"/error"] = true
	}
	for key := range d.timing {
		cp.saved[key+"/timing"] = true
	}
	for key := range d.quality {
		cp.saved[key+"/quality"] = true
	}
	return nil
}

// Errors returns the loaded error records (for Runner.Resume).
func (cp *Checkpoint) Errors() map[string]float64 { return cp.errs }

// Timings returns the loaded timing records (for Runner.Resume).
func (cp *Checkpoint) Timings() map[string]*TimingSummary { return cp.timing }

// Qualities returns the loaded quality-sweep records (for Runner.Resume).
func (cp *Checkpoint) Qualities() map[string]*QualityOutcome { return cp.quality }

// Warnings returns the non-fatal anomalies the resume load tolerated
// (duplicate keys, unparseable lines), for the caller to surface.
func (cp *Checkpoint) Warnings() []string { return cp.warnings }

// Len reports how many records are stored (loaded plus newly saved).
func (cp *Checkpoint) Len() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.saved)
}

// SaveError appends one error record. Duplicate saves of a key (every
// singleflight waiter reports its result) write once.
func (cp *Checkpoint) SaveError(key string, v float64) {
	cp.append(key+"/error", checkpointRecord{Kind: "error", Key: key, Bits: math.Float64bits(v)})
}

// SaveTiming appends one timing record.
func (cp *Checkpoint) SaveTiming(key string, res *timesim.Result) {
	cp.append(key+"/timing", checkpointRecord{Kind: "timing", Key: key, Timing: summarize(res)})
}

// SaveQuality appends one quality-sweep outcome record.
func (cp *Checkpoint) SaveQuality(key string, q *QualityOutcome) {
	cp.append(key+"/quality", checkpointRecord{Kind: "quality", Key: key, Quality: q})
}

func (cp *Checkpoint) append(dedup string, rec checkpointRecord) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil || cp.saved[dedup] {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return // summaries are plain data; cannot happen
	}
	b = append(b, '\n')
	if _, err := cp.f.Write(b); err != nil {
		return // a full disk mustn't kill the sweep; resume just recomputes
	}
	cp.saved[dedup] = true
}

// Close flushes and closes the file.
func (cp *Checkpoint) Close() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return nil
	}
	err := cp.f.Close()
	cp.f = nil
	return err
}

// Resume primes the runner's memo caches from loaded checkpoint records:
// tasks whose results are already on disk are skipped bit-identically, and
// only missing keys simulate. Baselines always recompute (they are not
// checkpointed), which is deterministic, so a resumed run's tables match an
// uninterrupted run byte for byte.
func (r *Runner) Resume(cp *Checkpoint) {
	for key, v := range cp.Errors() {
		r.errCache.Prime(key, v)
	}
	for key, s := range cp.Timings() {
		r.timeCache.Prime(key, s.Result())
	}
	for key, q := range cp.Qualities() {
		r.qualityCache.Prime(key, q)
	}
}
