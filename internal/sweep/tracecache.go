package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"doppelganger/internal/trace"
	"doppelganger/internal/workloads"
)

// The sweep's trace cache: every functional cell records its own capture the
// first time it runs live, and every later sweep over the same trace
// directory replays the capture instead of executing kernels. Recording
// per cell (rather than only the precise baseline) is what makes replay
// bit-identical: approximate load values propagate through kernel
// arithmetic into store payloads, so an approximate cell's access stream
// differs from the baseline's and must be captured from the cell itself.
//
// Captures are keyed by a full identity string (cell key + scale + cores +
// any seeds or knobs the cell's result depends on). The identity is stored
// in the file header and re-checked on load, so a capture recorded under a
// different configuration is stale and is re-recorded (or, under
// -trace-replay, rejected with an actionable error) rather than silently
// replayed.

// funcReq describes one functional cell to funcRun: its memo key, the
// benchmark, any identity the key doesn't already carry (seeds, budgets),
// the LLC organization, and the run options. fast marks cells that consume
// only the run's output: on a warm cache they are served straight from the
// capture without rebuilding a hierarchy (their attachments see no traffic
// and their metrics snapshots stay empty).
type funcReq struct {
	key   string
	name  string
	extra string // identity beyond key/scale/cores, "|k=v" formatted
	seed  uint64 // recorded in the file header (0 when the cell is unseeded)
	llcb  workloads.LLCBuilder
	opt   workloads.RunOptions
	fast  bool
}

// traceIdent is the full identity a capture must match to be replayed for
// this request. Cells the CLI facade can also run (baseline, split, uni)
// use the same keys, so doppelsim and a sweep share captures in one
// directory.
func (r *Runner) traceIdent(req funcReq) string {
	return workloads.CaptureIdent(req.key, r.Scale, r.Cores, req.extra)
}

// tracePath maps an identity to its file in the trace directory.
func (r *Runner) tracePath(ident string) string {
	return workloads.CapturePath(r.TraceDir, ident)
}

// traceFS is the filesystem the trace cache runs on: the injected seam
// when chaos tests set one, the real OS otherwise.
func (r *Runner) traceFS() trace.FS {
	if r.TraceFS != nil {
		return r.TraceFS
	}
	return trace.OS
}

// CellCaptureIdent maps one sweep cell (the server's wire vocabulary) to
// the identity of the capture its functional work replays, so the sweep
// server can route cells by trace digest: cells that replay the same file
// land on the shard whose decoded cache already holds it. Timing cells
// replay the benchmark's baseline recorder, so they map to the baseline
// capture — co-locating a benchmark's timing cells with its baseline. ok is
// false for cells with no single capture (whole figures, unknown kinds).
func (r *Runner) CellCaptureIdent(kind, bench, org string, m int, frac, rate float64) (string, bool) {
	var key, extra string
	switch kind {
	case "split-error":
		key = fmt.Sprintf("split/%s/%d/%g", bench, m, frac)
	case "uni-error":
		key = fmt.Sprintf("uni/%s/%d/%g", bench, m, frac)
	case "fault-error":
		key = fmt.Sprintf("fault/%s/%s/%g", org, bench, rate)
		extra = fmt.Sprintf("|fseed=%d|fmodel=%s", r.FaultSeed, r.FaultModel)
	case "quality-error":
		key = fmt.Sprintf("quality/%s/%s/%g", org, bench, rate)
		extra = fmt.Sprintf("|fseed=%d|fmodel=%s|qseed=%d|budget=%g|canary=%g",
			r.FaultSeed, r.FaultModel, r.QualitySeed, r.qualityBudget(), r.canaryRate())
	case "split-timing", "uni-timing", "baseline-timing", "quality-timing":
		key = "base/" + bench
	default:
		return "", false
	}
	return workloads.CaptureIdent(key, r.Scale, r.Cores, extra), true
}

// loadDecoded serves the fully decoded capture for ident from the shared
// decoded-capture cache, falling back to — and populating the cache from —
// the on-disk store. The probe costs only the 16-byte digest preamble on a
// hit. Any miss (cold directory, stale or corrupt capture, storage trouble)
// returns nil and leaves recovery to the caller's sequential path; a
// quarantined file is counted and moved here, exactly as funcRun would
// have, so net trace.* counters match a sequential sweep's.
func (r *Runner) loadDecoded(ident string) *trace.Capture {
	if r.DecodedCache == nil || r.TraceDir == "" {
		return nil
	}
	fsys := r.traceFS()
	path := r.tracePath(ident)
	if d, err := trace.FileDigestFS(fsys, path); err == nil {
		if c := r.DecodedCache.Get(d); c != nil && c.Header.ConfigKey == ident && c.Header.Cores == r.Cores {
			return c
		}
	}
	c, outcome, err := workloads.LoadCaptureRecover(fsys, r.TraceDir, path, ident, r.Cores, false)
	switch outcome {
	case workloads.LoadOK:
		r.DecodedCache.Put(c.FileCRC, c)
		return c
	case workloads.LoadQuarantined:
		r.Metrics.Counter("trace.quarantines").Add(1)
		r.logf("capture %s unusable (%v); quarantined for re-recording", filepath.Base(path), err)
	}
	return nil
}

// funcRun is the gateway every functional cell goes through. Without a
// trace directory it is exactly the live path. With one, the first run of a
// cell executes live (recording) and persists a capture; later runs replay
// it: output-only cells are served from the embedded output, and cells that
// need cache-state side effects (baseline snapshots, quality guards) replay
// the stream through a fresh hierarchy, which evolves bit-identically to
// the live run.
//
// Storage faults never fail a cell (outside -trace-replay): a corrupt or
// stale capture is quarantined and transparently re-recorded, and an
// unavailable store — read errors, ENOSPC, unwritable dir — degrades the
// cell to plain live execution, counted in the trace.degraded metric.
// Either way the cell's row is bit-identical to a clean run's. A failure of
// the live run itself still propagates, and both this cache and the cell
// memos forget errors, so a retry re-records instead of replaying a
// poisoned entry.
func (r *Runner) funcRun(ctx context.Context, req funcReq) (*workloads.RunResult, error) {
	f, err := workloads.ByName(req.name)
	if err != nil {
		return nil, err
	}
	if r.TraceDir == "" {
		return workloads.RunFunctionalContext(ctx, f.New(r.Scale), req.llcb, req.opt)
	}
	fsys := r.traceFS()
	ident := r.traceIdent(req)
	path := r.tracePath(ident)
	var live *workloads.RunResult
	capture, err := r.traceCache.Do(ident, func() (*trace.Capture, error) {
		persist := true
		if !r.TraceCapture {
			if r.DecodedCache != nil {
				// Shared decoded-capture cache: another Runner (or an earlier
				// sweep over this Runner's cache) may already have decoded
				// this file — the probe reads only the digest preamble.
				if d, derr := trace.FileDigestFS(fsys, path); derr == nil {
					if c := r.DecodedCache.Get(d); c != nil && c.Header.ConfigKey == ident && c.Header.Cores == r.Cores {
						r.Metrics.Counter("trace.replays").Add(1)
						r.logf("[%s] replaying decoded capture %s (%s)", req.name, filepath.Base(path), req.key)
						return c, nil
					}
				}
			}
			// Output-only cells never rebuild a hierarchy, so skip
			// materializing the memory image and trace streams they would
			// not use (the file is still fully integrity-checked). An
			// ident's fast-ness never varies between requests, so the memo
			// can never hand a lite capture to a hierarchy replay — and
			// with a decoded cache attached every load is full, so the
			// shared cache can serve any consumer.
			lite := req.fast && r.DecodedCache == nil
			c, outcome, lerr := workloads.LoadCaptureRecover(fsys, r.TraceDir, path, ident, r.Cores, lite)
			if r.TraceReplay && outcome != workloads.LoadOK {
				if lerr == nil {
					lerr = os.ErrNotExist
				}
				return nil, fmt.Errorf("sweep: -trace-replay: no usable capture for %s: %w", req.key, lerr)
			}
			switch outcome {
			case workloads.LoadOK:
				r.Metrics.Counter("trace.replays").Add(1)
				r.logf("[%s] replaying capture %s (%s)", req.name, filepath.Base(path), req.key)
				if r.DecodedCache != nil {
					r.DecodedCache.Put(c.FileCRC, c)
				}
				return c, nil
			case workloads.LoadMiss:
				// Cold cache: record below.
			case workloads.LoadQuarantined:
				r.Metrics.Counter("trace.quarantines").Add(1)
				r.logf("[%s] capture %s unusable (%v); re-recording", req.name, filepath.Base(path), lerr)
			case workloads.LoadUnavailable:
				// The bytes may be fine but the I/O path is not: leave the
				// file alone, run live, and don't trust the store with a
				// new write either.
				persist = false
				r.Metrics.Counter("trace.degraded").Add(1)
				r.logf("[%s] trace store unavailable (%v); running %s live unrecorded", req.name, lerr, req.key)
			}
		}
		opt := req.opt
		opt.Record = true
		run, rerr := workloads.RunFunctionalContext(ctx, f.New(r.Scale), req.llcb, opt)
		if rerr != nil {
			return nil, rerr
		}
		c, cerr := workloads.CaptureOf(run, trace.FileHeader{
			Benchmark: req.name,
			Scale:     r.Scale,
			Cores:     r.Cores,
			Seed:      req.seed,
			ConfigKey: ident,
		})
		if cerr != nil {
			return nil, cerr
		}
		live = run
		if persist {
			if perr := persistCapture(fsys, r.TraceDir, path, c); perr != nil {
				// Graceful degradation: the cell's live result is complete
				// and bit-identical to what a recorded run would produce —
				// losing the capture only costs the next sweep a re-record.
				r.Metrics.Counter("trace.degraded").Add(1)
				r.logf("[%s] capture %s not persisted (%v); serving live result", req.name, filepath.Base(path), perr)
			} else {
				r.Metrics.Counter("trace.records").Add(1)
				if r.DecodedCache != nil {
					// WriteFileFS stamped c.FileCRC; the freshly recorded
					// capture is immediately servable to other Runners.
					r.DecodedCache.Put(c.FileCRC, c)
				}
			}
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	if live != nil {
		// This call recorded the capture: its live result already carries
		// every side effect (snapshots, metrics, guard state).
		return live, nil
	}
	if req.fast {
		return &workloads.RunResult{Output: capture.Output}, nil
	}
	return workloads.ReplayFunctionalContext(ctx, f.New(r.Scale), capture, req.llcb, req.opt)
}

// persistCapture commits one freshly recorded capture: ensure the
// directory, then the atomic durable write.
func persistCapture(fsys trace.FS, dir, path string, c *trace.Capture) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("sweep: trace dir: %w", err)
	}
	return c.WriteFileFS(fsys, path)
}
