package sweep

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"doppelganger/internal/approx"
	"doppelganger/internal/core"
	"doppelganger/internal/faults"
	"doppelganger/internal/metrics"
	"doppelganger/internal/singleflight"
	"doppelganger/internal/stats"
	"doppelganger/internal/timesim"
	"doppelganger/internal/trace"
	"doppelganger/internal/workloads"
)

// Runner executes and memoizes the simulations the experiments share: per
// benchmark, one precise baseline run (which also records traces and feeds
// the snapshot analyzer), one baseline timing run, and on-demand
// approximate functional/timing runs per configuration.
//
// A Runner is safe for concurrent use: the memo caches are singleflight, so
// concurrent callers of Baseline / SplitError / SplitTiming / UnifiedError /
// UnifiedTiming each trigger exactly one simulation per key, and log lines
// are serialized. Prewarm fans the whole experiment grid out over a worker
// pool; the table builders then render from warm caches in deterministic
// benchmark order.
type Runner struct {
	// Scale sizes the workloads (1 = the evaluation size; tests use less).
	Scale float64
	// Cores is the CMP size (Table 1: 4).
	Cores int
	// SnapshotEvery controls LLC content sampling (fills per snapshot).
	SnapshotEvery int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Only, when non-empty, restricts the suite to the named benchmarks
	// (tests and quick looks).
	Only []string
	// Workers bounds the engine's concurrent simulations during Prewarm
	// (0 means GOMAXPROCS). Results are identical for every worker count.
	Workers int

	// TaskTimeout, when positive, bounds each engine task attempt with a
	// per-task deadline; a task that exceeds it fails (and may retry).
	TaskTimeout time.Duration
	// Retries is how many times the engine re-runs a failed task beyond the
	// first attempt (0: fail immediately).
	Retries int
	// RetryBackoff is the initial sleep before a retry, doubling per attempt
	// (0: 250ms).
	RetryBackoff time.Duration

	// FaultRates are the per-access fault probabilities the fault-sweep
	// experiment evaluates (nil: DefaultFaultRates).
	FaultRates []float64
	// FaultSeed seeds fault-site generation; every task derives an
	// independent stream from (FaultSeed, task key), so results are
	// identical for every worker count.
	FaultSeed uint64
	// FaultModel selects the fault manifestation (default bit flips).
	FaultModel faults.Model

	// QualityBudget is the error budget the quality-sweep guard enforces
	// (0: DefaultQualityBudget). QualitySeed seeds the canary sample sites
	// per task, and CanaryRate is the closed-state sampling fraction
	// (0: DefaultCanaryRate).
	QualityBudget float64
	QualitySeed   uint64
	CanaryRate    float64

	// Checkpoint, when non-nil, persists every completed error/timing result
	// and skips already-persisted keys after Resume. nil disables.
	Checkpoint *Checkpoint

	// TraceDir, when non-empty, enables the persistent trace cache: every
	// functional cell records a capture file there on its first live run and
	// is replayed from it on later sweeps (see tracecache.go). TraceCapture
	// forces re-recording even when a valid capture exists; TraceReplay
	// forbids kernel execution, failing any cell without a valid capture.
	TraceDir     string
	TraceCapture bool
	TraceReplay  bool
	// TraceFS, when non-nil, replaces the real filesystem under the trace
	// cache — the fault-injection seam chaos tests drive. nil means the OS.
	TraceFS trace.FS

	// DecodedCache, when non-nil, is a bounded in-memory LRU of decoded
	// captures keyed by file digest, layered above the on-disk trace store.
	// Decoded captures are immutable and safe to share, so one cache can
	// serve many Runners (the sweep server hands all its shards the same
	// one): a capture any of them decoded is replayed by the rest without
	// touching the file beyond its 16-byte digest preamble. While a decoded
	// cache is attached, every capture load is a full decode — a cached
	// capture must be able to serve both output-only and hierarchy-replay
	// consumers.
	DecodedCache *trace.DecodedCache
	// ReplayBatch, when > 1, turns on single-pass multi-config replay for
	// quality cells during Prewarm: up to ReplayBatch cells whose captures
	// carry byte-identical access streams are driven through independent
	// hierarchies in one walk of the decoded stream (see batch.go).
	// Requires TraceDir and a DecodedCache.
	ReplayBatch int

	// Metrics, when non-nil, aggregates instrument totals across every
	// simulation the runner performs; each memoized task also leaves a
	// labeled per-task snapshot (see WriteMetricsJSONL). nil disables all
	// metric collection at zero cost.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives Chrome-trace events from every timing
	// run, each on its own process lane labeled with the task key.
	Trace *metrics.TraceWriter

	logMu sync.Mutex

	metricsMu sync.Mutex
	taskSnaps []TaskMetrics
	tracePIDs int

	base         *singleflight.Memo[*baseArtifacts]
	baseOut      *singleflight.Memo[*baseScore]
	errCache     *singleflight.Memo[float64]
	timeCache    *singleflight.Memo[*timesim.Result]
	qualityCache *singleflight.Memo[*QualityOutcome]
	traceCache   *singleflight.Memo[*trace.Capture]
}

// baseScore is the slice of the baseline artifacts every error cell scores
// against: the benchmark instance (for its Error metric) and the precise
// output vector.
type baseScore struct {
	bench *workloads.Benchmark
	out   []float64
}

type baseArtifacts struct {
	bench    *workloads.Benchmark // for the Error metric
	run      *workloads.RunResult
	analyzer *stats.Analyzer
	timing   *timesim.Result
}

// NewRunner builds a Runner at the given workload scale.
func NewRunner(scale float64) *Runner {
	return &Runner{
		Scale:         scale,
		Cores:         4,
		SnapshotEvery: 20000,
		base:          singleflight.New[*baseArtifacts](),
		baseOut:       singleflight.New[*baseScore](),
		errCache:      singleflight.New[float64](),
		timeCache:     singleflight.New[*timesim.Result](),
		qualityCache:  singleflight.New[*QualityOutcome](),
		traceCache:    singleflight.New[*trace.Capture](),
	}
}

// logf emits one whole progress line under the log mutex, so lines from
// concurrent workers never interleave.
func (r *Runner) logf(format string, args ...interface{}) {
	if r.Log == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.Log, format+"\n", args...)
}

// Thresholds are the Fig. 2 similarity thresholds (fractions of the value
// range): 0%, 0.01%, 0.1%, 1%, 10%.
var Thresholds = []float64{0, 0.0001, 0.001, 0.01, 0.1}

// MapSpaces are the Fig. 7/9 map sizes.
var MapSpaces = []int{12, 13, 14}

// DataFracs are the Fig. 10–12 approximate data array sizes relative to the
// tag array.
var DataFracs = []float64{0.5, 0.25, 0.125}

// UniFracs are the Fig. 13/14 uniDoppelgänger data array sizes relative to
// the baseline LLC.
var UniFracs = []float64{0.75, 0.5, 0.25}

// The paper's base configuration: a 14-bit map space and a data array 1/4
// the size of the tag array (Table 1).
const (
	BaseMapBits  = 14
	BaseDataFrac = 0.25
)

// Benchmarks lists the suite names in paper order (restricted by Only).
func (r *Runner) Benchmarks() []string {
	if len(r.Only) > 0 {
		return r.Only
	}
	fs := workloads.All()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// errDo memoizes an output-error computation and, when a checkpoint is
// attached, persists every success so a resumed run skips the key.
func (r *Runner) errDo(key string, compute func() (float64, error)) (float64, error) {
	v, err := r.errCache.Do(key, compute)
	if err == nil && r.Checkpoint != nil {
		r.Checkpoint.SaveError(key, v)
	}
	return v, err
}

// timeDo is errDo for timing results.
func (r *Runner) timeDo(key string, compute func() (*timesim.Result, error)) (*timesim.Result, error) {
	v, err := r.timeCache.Do(key, compute)
	if err == nil && r.Checkpoint != nil {
		r.Checkpoint.SaveTiming(key, v)
	}
	return v, err
}

// Baseline returns (running once) the precise baseline artifacts for a
// benchmark: functional run with traces and snapshot analysis, plus the
// baseline timing result. Unknown benchmark names return an error rather
// than panicking, so a bad -only flag surfaces through the engine.
func (r *Runner) Baseline(name string) (*baseArtifacts, error) {
	return r.BaselineContext(context.Background(), name)
}

// BaselineContext is Baseline under a cancellable context: a cancellation
// or deadline aborts the simulations promptly, the error is delivered to
// every waiter, and the key is forgotten so a retry recomputes it.
func (r *Runner) BaselineContext(ctx context.Context, name string) (*baseArtifacts, error) {
	return r.base.Do(name, func() (*baseArtifacts, error) {
		f, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		r.logf("[%s] baseline functional run (scale %.2f)", name, r.Scale)
		an := stats.NewAnalyzer(stats.AnalyzerConfig{
			Thresholds:         Thresholds,
			ThresholdEvery:     8,
			ThresholdSampleCap: 512,
			MapSpaces:          MapSpaces,
			Comparators:        true,
			CompareM:           14,
		})
		child := r.instrument()
		run, err := r.funcRun(ctx, funcReq{
			key:  "base/" + name,
			name: name,
			llcb: workloads.BaselineBuilder(2<<20, 16),
			opt: workloads.RunOptions{
				Cores:         r.Cores,
				Record:        true,
				SnapshotEvery: r.SnapshotEvery,
				SnapshotFn:    an.Observe,
				Metrics:       child,
			},
		})
		if err != nil {
			return nil, err
		}
		r.collect("base/"+name+"/func", child)
		r.logf("[%s] baseline timing run (%d accesses)", name, run.Recorder.Len())
		tkey := "base/" + name + "/timing"
		tchild := r.instrument()
		timing, err := timesim.RunContext(ctx, run.Recorder, run.InitialMem, run.Annotations,
			workloads.BaselineBuilder(2<<20, 16), r.timesimConfigFor(tkey, tchild))
		if err != nil {
			return nil, err
		}
		r.collect(tkey, tchild)
		return &baseArtifacts{bench: f.New(r.Scale), run: run, analyzer: an, timing: timing}, nil
	})
}

// BaselineTimingContext exposes the benchmark's precise baseline timing run
// (the denominator of every normalized-runtime column) without the rest of
// the baseline artifacts; the sweep server serves it as a job kind.
func (r *Runner) BaselineTimingContext(ctx context.Context, name string) (*timesim.Result, error) {
	a, err := r.BaselineContext(ctx, name)
	if err != nil {
		return nil, err
	}
	return a.timing, nil
}

// baselineScore returns the benchmark instance and precise baseline output
// an error cell scores against. With a decoded cache over a warm trace
// directory it is served from the baseline's own capture — PR 7's goldens
// prove the recorded output is bit-identical to the live run's, so the full
// baseline replay (hierarchy rebuild, snapshot analysis, timing simulation)
// is skipped entirely on sweeps that only read error cells. Any miss —
// cold directory, quarantined or unreadable capture, forced re-record —
// falls back to the complete baseline artifacts.
func (r *Runner) baselineScore(ctx context.Context, name string) (*baseScore, error) {
	if r.DecodedCache == nil || r.TraceDir == "" || r.TraceCapture {
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return nil, err
		}
		return &baseScore{bench: a.bench, out: a.run.Output}, nil
	}
	return r.baseOut.Do(name, func() (*baseScore, error) {
		f, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		// Someone already paid for (or is computing) the full artifacts in
		// this Runner; share them instead of decoding the capture again.
		if !r.base.Has(name) {
			ident := workloads.CaptureIdent("base/"+name, r.Scale, r.Cores, "")
			if c := r.loadDecoded(ident); c != nil {
				return &baseScore{bench: f.New(r.Scale), out: c.Output}, nil
			}
		}
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return nil, err
		}
		return &baseScore{bench: a.bench, out: a.run.Output}, nil
	})
}

func (r *Runner) timesimConfig() timesim.Config {
	cfg := timesim.DefaultConfig()
	cfg.Cores = r.Cores
	return cfg
}

// timesimConfigFor is timesimConfig plus the observability hooks for one
// labeled timing task: its child registry and, when tracing, a fresh process
// lane in the shared Chrome trace.
func (r *Runner) timesimConfigFor(label string, reg *metrics.Registry) timesim.Config {
	cfg := r.timesimConfig()
	cfg.Metrics = reg
	if r.Trace != nil {
		cfg.Trace = r.Trace
		cfg.TracePID = r.nextTracePID()
		cfg.TraceLabel = label
	}
	return cfg
}

// SplitError measures application output error for the split organization
// with map size m and data fraction frac (Figs. 9a, 10a).
func (r *Runner) SplitError(name string, m int, frac float64) (float64, error) {
	return r.SplitErrorContext(context.Background(), name, m, frac)
}

// SplitErrorContext is SplitError under a cancellable context.
func (r *Runner) SplitErrorContext(ctx context.Context, name string, m int, frac float64) (float64, error) {
	key := fmt.Sprintf("split/%s/%d/%g", name, m, frac)
	return r.errDo(key, func() (float64, error) {
		a, err := r.baselineScore(ctx, name)
		if err != nil {
			return 0, err
		}
		r.logf("[%s] split functional run (M=%d, data %g)", name, m, frac)
		child := r.instrument()
		run, err := r.funcRun(ctx, funcReq{
			key:  key,
			name: name,
			llcb: workloads.SplitBuilder(m, frac),
			opt:  workloads.RunOptions{Cores: r.Cores, Metrics: child},
			fast: true,
		})
		if err != nil {
			return 0, err
		}
		r.collect(key+"/func", child)
		return a.bench.Error(a.out, run.Output), nil
	})
}

// UnifiedError is SplitError for the uniDoppelgänger organization
// (Fig. 14a); frac is relative to the baseline LLC capacity.
func (r *Runner) UnifiedError(name string, m int, frac float64) (float64, error) {
	return r.UnifiedErrorContext(context.Background(), name, m, frac)
}

// UnifiedErrorContext is UnifiedError under a cancellable context.
func (r *Runner) UnifiedErrorContext(ctx context.Context, name string, m int, frac float64) (float64, error) {
	key := fmt.Sprintf("uni/%s/%d/%g", name, m, frac)
	return r.errDo(key, func() (float64, error) {
		a, err := r.baselineScore(ctx, name)
		if err != nil {
			return 0, err
		}
		r.logf("[%s] unified functional run (M=%d, data %g)", name, m, frac)
		child := r.instrument()
		run, err := r.funcRun(ctx, funcReq{
			key:  key,
			name: name,
			llcb: workloads.UnifiedBuilder(m, frac),
			opt:  workloads.RunOptions{Cores: r.Cores, Metrics: child},
			fast: true,
		})
		if err != nil {
			return 0, err
		}
		r.collect(key+"/func", child)
		return a.bench.Error(a.out, run.Output), nil
	})
}

// SplitTiming replays the benchmark's traces against the split organization
// (Figs. 9b, 10b, 11, 12).
func (r *Runner) SplitTiming(name string, m int, frac float64) (*timesim.Result, error) {
	return r.SplitTimingContext(context.Background(), name, m, frac)
}

// SplitTimingContext is SplitTiming under a cancellable context.
func (r *Runner) SplitTimingContext(ctx context.Context, name string, m int, frac float64) (*timesim.Result, error) {
	key := fmt.Sprintf("split/%s/%d/%g", name, m, frac)
	return r.timeDo(key, func() (*timesim.Result, error) {
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return nil, err
		}
		r.logf("[%s] split timing run (M=%d, data %g)", name, m, frac)
		child := r.instrument()
		res, err := timesim.RunContext(ctx, a.run.Recorder, a.run.InitialMem, a.run.Annotations,
			workloads.SplitBuilder(m, frac), r.timesimConfigFor(key+"/timing", child))
		if err != nil {
			return nil, err
		}
		r.collect(key+"/timing", child)
		return res, nil
	})
}

// UnifiedTiming replays against uniDoppelgänger (Fig. 14b/c); frac is
// relative to the baseline LLC capacity.
func (r *Runner) UnifiedTiming(name string, m int, frac float64) (*timesim.Result, error) {
	return r.UnifiedTimingContext(context.Background(), name, m, frac)
}

// UnifiedTimingContext is UnifiedTiming under a cancellable context.
func (r *Runner) UnifiedTimingContext(ctx context.Context, name string, m int, frac float64) (*timesim.Result, error) {
	key := fmt.Sprintf("uni/%s/%d/%g", name, m, frac)
	return r.timeDo(key, func() (*timesim.Result, error) {
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return nil, err
		}
		r.logf("[%s] unified timing run (M=%d, data %g)", name, m, frac)
		child := r.instrument()
		res, err := timesim.RunContext(ctx, a.run.Recorder, a.run.InitialMem, a.run.Annotations,
			workloads.UnifiedBuilder(m, frac), r.timesimConfigFor(key+"/timing", child))
		if err != nil {
			return nil, err
		}
		r.collect(key+"/timing", child)
		return res, nil
	})
}

// SplitConfig returns the Doppelgänger core.Config the split organization
// uses for map size m and data fraction frac of the 16 K-entry tag array
// (for the energy model and Table 3).
func SplitConfig(m int, frac float64) core.Config {
	return core.Config{
		Name:        "doppelganger",
		TagEntries:  16 << 10,
		TagWays:     16,
		DataEntries: int(float64(16<<10) * frac),
		DataWays:    16,
		MapSpec:     approx.MapSpec{M: m},
	}
}

// UnifiedConfig returns the uniDoppelgänger core.Config; frac is relative
// to the 2 MB baseline, so the data array holds frac×32 K entries (the
// paper's 1/2 configuration is the Table 1 default: 1 MB).
func UnifiedConfig(m int, frac float64) core.Config {
	return core.Config{
		Name:        "unidoppelganger",
		TagEntries:  32 << 10,
		TagWays:     16,
		DataEntries: int(float64(32<<10) * frac),
		DataWays:    16,
		MapSpec:     approx.MapSpec{M: m},
		Unified:     true,
	}
}
