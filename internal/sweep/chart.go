package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatChart renders the table as grouped horizontal bar charts, one group
// per row (benchmark) and one bar per numeric column — a terminal rendition
// of the paper's figures. Cells are parsed as percentages ("37.9%"),
// reduction factors ("2.55x") or plain numbers; non-numeric cells render as
// text.
func (t *Table) FormatChart() string {
	const barWidth = 44

	// Find the numeric scale across all cells.
	maxVal := 0.0
	vals := make([][]float64, len(t.Rows))
	numeric := make([][]bool, len(t.Rows))
	for i, r := range t.Rows {
		vals[i] = make([]float64, len(r))
		numeric[i] = make([]bool, len(r))
		for j := 1; j < len(r); j++ {
			if v, ok := parseCell(r[j]); ok {
				vals[i][j] = v
				numeric[i][j] = true
				if v > maxVal {
					maxVal = v
				}
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}

	labelWidth := len(t.Columns[0])
	for _, r := range t.Rows {
		if len(r[0]) > labelWidth {
			labelWidth = len(r[0])
		}
	}
	seriesWidth := 0
	for _, c := range t.Columns[1:] {
		if len(c) > seriesWidth {
			seriesWidth = len(c)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	for i, r := range t.Rows {
		for j := 1; j < len(r); j++ {
			label := ""
			if j == 1 {
				label = r[0]
			}
			series := ""
			if j-1 < len(t.Columns[1:]) {
				series = t.Columns[j]
			}
			if !numeric[i][j] {
				fmt.Fprintf(&b, "%-*s  %-*s  %s\n", labelWidth, label, seriesWidth, series, r[j])
				continue
			}
			n := int(vals[i][j] / maxVal * barWidth)
			if n == 0 && vals[i][j] > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "%-*s  %-*s  %s%s %s\n",
				labelWidth, label, seriesWidth, series,
				strings.Repeat("█", n), strings.Repeat("·", barWidth-n), r[j])
		}
		if i < len(t.Rows)-1 {
			b.WriteByte('\n')
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// parseCell extracts a numeric value from "37.9%", "2.55x" or "1.023".
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}
