package sweep

import (
	"context"
	"fmt"
	"math"

	"doppelganger/internal/faults"
	"doppelganger/internal/quality"
	"doppelganger/internal/timesim"
	"doppelganger/internal/workloads"
)

// The quality sweep's default guard knobs: a 5% output-error budget (the
// loose end of the paper's acceptable-quality discussion) and a 5% canary
// sampling rate.
const (
	DefaultQualityBudget = 0.05
	DefaultCanaryRate    = 0.05
)

// GuardedOrgs are the organizations the quality guard can protect: the two
// Doppelgänger variants. The precise baseline never approximates, so its
// guard-on and guard-off runs would be the same simulation.
var GuardedOrgs = []string{"doppel", "uni"}

// QualityOutcome is everything one guarded functional run reports: the true
// output error (paper methodology, against the fault-free precise baseline),
// the guard's own online estimate, and the breaker's full history. Floats
// are carried as raw bits so checkpointed outcomes resume bit-identically.
type QualityOutcome struct {
	TrueErrorBits uint64               `json:"true_error_bits"`
	EstimateBits  uint64               `json:"estimate_bits"`
	FinalState    quality.State        `json:"final_state"`
	Trips         uint64               `json:"trips"`
	Reentries     uint64               `json:"reentries"`
	Canaries      uint64               `json:"canaries"`
	CanaryDraws   uint64               `json:"canary_draws"`
	ApproxOps     uint64               `json:"approx_ops"`
	Bypassed      uint64               `json:"bypassed"`
	Transitions   []quality.Transition `json:"transitions,omitempty"`
}

// TrueError is the paper-methodology output error of the guarded run.
func (q *QualityOutcome) TrueError() float64 { return math.Float64frombits(q.TrueErrorBits) }

// Estimate is the guard's final online error estimate.
func (q *QualityOutcome) Estimate() float64 { return math.Float64frombits(q.EstimateBits) }

// CanaryFraction is the canary overhead: the fraction of substitution
// events that paid for a precise fetch and comparison.
func (q *QualityOutcome) CanaryFraction() float64 {
	if q.CanaryDraws == 0 {
		return 0
	}
	return float64(q.Canaries) / float64(q.CanaryDraws)
}

// BypassFraction is the fraction of approximate operations served precisely
// because the breaker was open.
func (q *QualityOutcome) BypassFraction() float64 {
	if q.ApproxOps == 0 {
		return 0
	}
	return float64(q.Bypassed) / float64(q.ApproxOps)
}

// qualityBudget returns the configured error budget.
func (r *Runner) qualityBudget() float64 {
	if r.QualityBudget > 0 {
		return r.QualityBudget
	}
	return DefaultQualityBudget
}

// canaryRate returns the configured closed-state sampling rate.
func (r *Runner) canaryRate() float64 {
	if r.CanaryRate > 0 {
		return r.CanaryRate
	}
	return DefaultCanaryRate
}

// qualityDo memoizes a guarded-run computation and checkpoints successes.
func (r *Runner) qualityDo(key string, compute func() (*QualityOutcome, error)) (*QualityOutcome, error) {
	v, err := r.qualityCache.Do(key, compute)
	if err == nil && r.Checkpoint != nil {
		r.Checkpoint.SaveQuality(key, v)
	}
	return v, err
}

// newGuard builds one run's quality controller from the Runner's knobs,
// seeded from (QualitySeed, task key) so canary sites — like fault sites —
// are bit-identical at any worker count.
func (r *Runner) newGuard(key string) (*quality.Controller, error) {
	return quality.New(quality.Config{
		Seed:       faults.Derive(r.QualitySeed, key),
		Budget:     r.qualityBudget(),
		CanaryRate: r.canaryRate(),
	})
}

// QualityError runs one benchmark on one guarded organization under fault
// injection and reports the guarded outcome. The injector is seeded from
// the SAME key as the unguarded FaultError run, so until the breaker first
// trips both runs see the identical fault stream — the guard-on and
// guard-off columns differ only by the guard's interventions.
func (r *Runner) QualityError(name, org string, rate float64) (*QualityOutcome, error) {
	return r.QualityErrorContext(context.Background(), name, org, rate)
}

// QualityErrorContext is QualityError under a cancellable context.
func (r *Runner) QualityErrorContext(ctx context.Context, name, org string, rate float64) (*QualityOutcome, error) {
	key := fmt.Sprintf("quality/%s/%s/%g", org, name, rate)
	return r.qualityDo(key, func() (*QualityOutcome, error) {
		builder, err := faultBuilder(org)
		if err != nil {
			return nil, err
		}
		a, err := r.baselineScore(ctx, name)
		if err != nil {
			return nil, err
		}
		r.logf("[%s] guarded functional run (%s, rate %g, budget %g)", name, org, rate, r.qualityBudget())
		seed := faults.Derive(r.FaultSeed, fmt.Sprintf("fault/%s/%s/%g", org, name, rate))
		inj := faults.New(faults.Config{
			Seed:  seed,
			Model: r.FaultModel,
			Rate:  rate,
		})
		qc, err := r.newGuard(key)
		if err != nil {
			return nil, err
		}
		child := r.instrument()
		inj.AttachMetrics(child)
		qc.AttachMetrics(child)
		// Not a fast cell: the outcome needs the guard's breaker history, so
		// a warm cache replays the stream through a fresh hierarchy with this
		// identically-seeded injector and guard attached — both draw per LLC
		// operation, and replay preserves the exact operation sequence, so
		// the guard relives the live run decision for decision.
		run, err := r.funcRun(ctx, funcReq{
			key:  key,
			name: name,
			extra: fmt.Sprintf("|fseed=%d|fmodel=%s|qseed=%d|budget=%g|canary=%g",
				r.FaultSeed, r.FaultModel, r.QualitySeed, r.qualityBudget(), r.canaryRate()),
			seed: seed,
			llcb: builder,
			opt:  workloads.RunOptions{Cores: r.Cores, Metrics: child, Faults: inj, Quality: qc},
		})
		if err != nil {
			return nil, err
		}
		r.collect(key+"/func", child)
		s := qc.Stats()
		return &QualityOutcome{
			TrueErrorBits: math.Float64bits(a.bench.Error(a.out, run.Output)),
			EstimateBits:  math.Float64bits(qc.Estimate()),
			FinalState:    qc.State(),
			Trips:         s.Trips,
			Reentries:     s.Reentries,
			Canaries:      s.Canaries,
			CanaryDraws:   s.CanaryDraws,
			ApproxOps:     s.ApproxOps,
			Bypassed:      s.Bypassed,
			Transitions:   qc.Transitions(),
		}, nil
	})
}

// QualityTiming replays one benchmark's traces against a guarded (or, with
// guarded false, merely faulted) organization, for the runtime cost of
// graceful degradation. Both modes derive the injector from the same key,
// so they replay the identical fault stream.
func (r *Runner) QualityTiming(name, org string, rate float64, guarded bool) (*timesim.Result, error) {
	return r.QualityTimingContext(context.Background(), name, org, rate, guarded)
}

// QualityTimingContext is QualityTiming under a cancellable context.
func (r *Runner) QualityTimingContext(ctx context.Context, name, org string, rate float64, guarded bool) (*timesim.Result, error) {
	mode := "time-off"
	if guarded {
		mode = "time-on"
	}
	key := fmt.Sprintf("quality/%s/%s/%g/%s", org, name, rate, mode)
	return r.timeDo(key, func() (*timesim.Result, error) {
		builder, err := faultBuilder(org)
		if err != nil {
			return nil, err
		}
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return nil, err
		}
		r.logf("[%s] quality timing run (%s, rate %g, guard %v)", name, org, rate, guarded)
		child := r.instrument()
		cfg := r.timesimConfigFor(key+"/timing", child)
		cfg.Faults = faults.New(faults.Config{
			Seed:  faults.Derive(r.FaultSeed, fmt.Sprintf("quality/%s/%s/%g/time", org, name, rate)),
			Model: r.FaultModel,
			Rate:  rate,
		})
		cfg.Faults.AttachMetrics(child)
		if guarded {
			qc, err := r.newGuard(key)
			if err != nil {
				return nil, err
			}
			qc.AttachMetrics(child)
			cfg.Quality = qc
		}
		res, err := timesim.RunContext(ctx, a.run.Recorder, a.run.InitialMem, a.run.Annotations, builder, cfg)
		if err != nil {
			return nil, err
		}
		r.collect(key+"/timing", child)
		return res, nil
	})
}

// QualitySweep renders the quality-guard tables: true output error with the
// guard off and on (plus the guard's own estimate, canary overhead, bypass
// fraction and breaker history) per benchmark x organization x fault rate,
// and normalized runtime with the guard off and on. The unguarded error
// column is the fault sweep's own record, so the two experiments share
// simulations.
func (r *Runner) QualitySweep() (errT, runT *Table, err error) {
	rates := r.faultRates()
	errT = &Table{
		Title: fmt.Sprintf("Quality guard: output error, guard off vs on (budget %g, canary rate %g, seed %d)",
			r.qualityBudget(), r.canaryRate(), r.QualitySeed),
		Columns: []string{"benchmark", "org", "rate", "err off", "err on", "estimate", "canary %", "bypass %", "trips", "state"},
		Notes: []string{
			"err off reproduces the faults experiment; err on runs the same fault stream",
			"with the online guard enabled. estimate is the guard's final EWMA — compare",
			"it to err on to judge canary tracking. The guard detects budget overruns",
			"after a detection latency of O(canaries/alpha) substitutions, so err on can",
			"exceed the budget when corruption outruns sampling within that window.",
		},
	}
	runT = &Table{
		Title:   "Quality guard: normalized runtime, guard off vs on",
		Columns: []string{"benchmark", "org", "rate", "runtime off", "runtime on"},
		Notes: []string{
			"runtime normalized to each benchmark's fault-free baseline replay;",
			"both columns replay the identical fault stream.",
		},
	}
	type avg struct {
		off, on, est float64
		n            int
	}
	errAvg := map[string]*avg{}
	runAvg := map[string]*avg{}
	akey := func(org string, rate float64) string { return fmt.Sprintf("%s@%g", org, rate) }

	for _, name := range r.Benchmarks() {
		for _, org := range FaultOrgs {
			for _, rate := range rates {
				off, err := r.FaultError(name, org, rate)
				if err != nil {
					return nil, nil, err
				}
				ea := errAvg[akey(org, rate)]
				if ea == nil {
					ea = &avg{}
					errAvg[akey(org, rate)] = ea
				}
				ea.off += off
				ea.n++
				if org == "baseline" {
					// The baseline never approximates: the guard has nothing to
					// do, so only the unguarded error is reported.
					errT.AddRow(name, org, fmt.Sprintf("%g", rate), pct(off), "-", "-", "-", "-", "-", "-")
					continue
				}
				q, err := r.QualityError(name, org, rate)
				if err != nil {
					return nil, nil, err
				}
				ea.on += q.TrueError()
				ea.est += q.Estimate()
				errT.AddRow(name, org, fmt.Sprintf("%g", rate),
					pct(off), pct(q.TrueError()), pct(q.Estimate()),
					pct(q.CanaryFraction()), pct(q.BypassFraction()),
					fmt.Sprintf("%d", q.Trips), q.FinalState.String())

				base, err := r.BaselineContext(context.Background(), name)
				if err != nil {
					return nil, nil, err
				}
				toff, err := r.QualityTiming(name, org, rate, false)
				if err != nil {
					return nil, nil, err
				}
				ton, err := r.QualityTiming(name, org, rate, true)
				if err != nil {
					return nil, nil, err
				}
				noff := float64(toff.Cycles) / float64(base.timing.Cycles)
				non := float64(ton.Cycles) / float64(base.timing.Cycles)
				ra := runAvg[akey(org, rate)]
				if ra == nil {
					ra = &avg{}
					runAvg[akey(org, rate)] = ra
				}
				ra.off += noff
				ra.on += non
				ra.n++
				runT.AddRow(name, org, fmt.Sprintf("%g", rate),
					fmt.Sprintf("%.3f", noff), fmt.Sprintf("%.3f", non))
			}
		}
	}
	for _, org := range FaultOrgs {
		for _, rate := range rates {
			ea := errAvg[akey(org, rate)]
			if ea == nil || ea.n == 0 {
				continue
			}
			n := float64(ea.n)
			if org == "baseline" {
				errT.AddRow("average", org, fmt.Sprintf("%g", rate), pct(ea.off/n), "-", "-", "-", "-", "-", "-")
				continue
			}
			errT.AddRow("average", org, fmt.Sprintf("%g", rate),
				pct(ea.off/n), pct(ea.on/n), pct(ea.est/n), "-", "-", "-", "-")
			if ra := runAvg[akey(org, rate)]; ra != nil && ra.n > 0 {
				runT.AddRow("average", org, fmt.Sprintf("%g", rate),
					fmt.Sprintf("%.3f", ra.off/float64(ra.n)), fmt.Sprintf("%.3f", ra.on/float64(ra.n)))
			}
		}
	}
	return errT, runT, nil
}
