package sweep

import (
	"context"
	"errors"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles at or below the
// budget, failing with a stack dump when it does not — the leak detector.
func waitGoroutines(t *testing.T, budget int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= budget {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d alive, budget %d\n%s",
		runtime.NumGoroutine(), budget, buf[:runtime.Stack(buf, true)])
}

// TestTraceCacheConcurrentCancelNoLeak storms one trace-cache entry with a
// mix of canceled and live contexts. Whichever caller ends up the
// singleflight leader, every goroutine must return (no worker or waiter may
// hang), nothing may leak, and a final call with a live context must still
// succeed — a canceled leader's error is forgotten, never cached.
func TestTraceCacheConcurrentCancelNoLeak(t *testing.T) {
	dir := t.TempDir()
	r := traceRunner(0.02, dir, "kmeans")
	before := runtime.NumGoroutine()

	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			if i%2 == 0 {
				cancel() // half the callers arrive already canceled
			} else {
				defer cancel()
			}
			// Errors are expected (canceled leaders fail their waiters); what
			// must never happen is a hang or a wrong value.
			v, err := r.SplitErrorContext(ctx, "kmeans", BaseMapBits, BaseDataFrac)
			if err == nil && v < 0 {
				t.Errorf("caller %d: negative error value %v", i, v)
			}
		}(i)
	}
	wg.Wait()

	// The memo must have forgotten any cancellation failure: a live-context
	// call now records (or replays) the capture normally.
	want, err := traceRunner(0.02, "", "kmeans").SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.SplitErrorContext(context.Background(), "kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatalf("live-context call after cancellation storm: %v", err)
	}
	if got != want {
		t.Fatalf("post-storm value %v diverged from live %v", got, want)
	}
	waitGoroutines(t, before+2)
}

// TestTraceCacheForgottenErrorUnderConcurrency verifies the failure-
// forgetting contract under concurrent replay-mode failures: N concurrent
// callers against an empty directory in strict replay mode must all fail
// (not deadlock, not leak), and flipping replay off must re-record on the
// next call instead of serving a poisoned memo entry.
func TestTraceCacheForgottenErrorUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	r := traceRunner(0.02, dir, "kmeans")
	r.TraceReplay = true
	before := runtime.NumGoroutine()

	const callers = 8
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := r.SplitErrorContext(context.Background(), "kmeans", BaseMapBits, BaseDataFrac)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("strict replay against an empty trace dir succeeded")
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected cancellation error: %v", err)
		}
	}

	// The forgotten error: recording mode must now run live and persist.
	r.TraceReplay = false
	if _, err := r.SplitErrorContext(context.Background(), "kmeans", BaseMapBits, BaseDataFrac); err != nil {
		t.Fatalf("recording call after replay failures: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("recording call persisted no capture")
	}
	waitGoroutines(t, before+2)
}
