package sweep

import (
	"context"
	"fmt"
	"math"

	"doppelganger/internal/faults"
	"doppelganger/internal/metrics"
	"doppelganger/internal/quality"
	"doppelganger/internal/trace"
	"doppelganger/internal/workloads"
)

// Single-pass multi-config replay: the quality sweep's guarded cells are the
// only grid cells that must rebuild a full hierarchy on a warm trace cache
// (their outcome needs the guard's breaker history, not just an output
// vector), so they pay one stream decode and one cursor walk per cell. When
// several cells' captures carry byte-identical access streams — certified by
// the stream digest, which hashes every recorded address, value, size and
// work gap but not the cell's identity header — one walk can drive all of
// them: each record fans out to per-cell hierarchies with private stores,
// LLCs, fault injectors and guards. Lane i evolves bit-identically to
// replaying its own capture alone, so the memoized outcomes are exactly the
// sequential path's.

// batchEnabled reports whether the single-pass multi-config replay path is
// on: it needs a batch width, a warm trace directory to replay from, a
// decoded-capture cache to share streams through, and not to be in forced
// re-record mode.
func (r *Runner) batchEnabled() bool {
	return r.ReplayBatch > 1 && r.TraceDir != "" && r.DecodedCache != nil && !r.TraceCapture
}

// batchCell is one guarded quality cell a batched replay can serve.
type batchCell struct {
	org  string
	rate float64
	key  string
	cap  *trace.Capture
}

// runQualityBatch is the engine's quality-cell planner for one benchmark:
// it collects the guarded cells whose captures are already on disk, groups
// them by stream digest, and replays each group of identical streams in a
// single pass, at most ReplayBatch lanes per walk. Cells it cannot serve —
// cold captures, singleton streams, storage trouble — are simply left for
// their sequential variant tasks; only cancellation propagates as an error.
func (r *Runner) runQualityBatch(ctx context.Context, name string) error {
	var cells []batchCell
	for _, org := range GuardedOrgs {
		for _, rate := range r.faultRates() {
			key := fmt.Sprintf("quality/%s/%s/%g", org, name, rate)
			if r.qualityCache.Has(key) {
				continue
			}
			extra := fmt.Sprintf("|fseed=%d|fmodel=%s|qseed=%d|budget=%g|canary=%g",
				r.FaultSeed, r.FaultModel, r.QualitySeed, r.qualityBudget(), r.canaryRate())
			c := r.loadDecoded(workloads.CaptureIdent(key, r.Scale, r.Cores, extra))
			if c == nil {
				continue
			}
			cells = append(cells, batchCell{org: org, rate: rate, key: key, cap: c})
		}
	}
	// Group by stream digest in grid order; a group's captures differ at
	// most in their identity headers, so one decoded stream serves all of
	// its cells. Singletons gain nothing from batching and keep the plain
	// sequential path.
	var order []uint64
	groups := make(map[uint64][]batchCell)
	for _, c := range cells {
		d := c.cap.StreamDigest
		if _, ok := groups[d]; !ok {
			order = append(order, d)
		}
		groups[d] = append(groups[d], c)
	}
	for _, d := range order {
		g := groups[d]
		if len(g) < 2 {
			continue
		}
		for len(g) > 0 {
			n := len(g)
			if n > r.ReplayBatch {
				n = r.ReplayBatch
			}
			if err := r.replayQualityGroup(ctx, name, d, g[:n]); err != nil {
				return err
			}
			g = g[n:]
		}
	}
	return nil
}

// replayQualityGroup replays one group of identical-stream quality cells in
// a single pass and memoizes each cell's outcome, exactly as its sequential
// QualityErrorContext computation would have: same injector and guard
// seeds, same metric snapshots, same checkpointing. A replay failure other
// than cancellation is absorbed — the cells stay uncomputed and the
// sequential tasks behind this one recover them.
func (r *Runner) replayQualityGroup(ctx context.Context, name string, digest uint64, cells []batchCell) error {
	f, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	a, err := r.baselineScore(ctx, name)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.logf("[%s] batched replay skipped (baseline: %v)", name, err)
		return nil
	}
	r.logf("[%s] batched guarded replay: %d lanes over stream %016x", name, len(cells), digest)
	specs := make([]workloads.ReplaySpec, len(cells))
	children := make([]*metrics.Registry, len(cells))
	guards := make([]*quality.Controller, len(cells))
	for i, c := range cells {
		builder, err := faultBuilder(c.org)
		if err != nil {
			return err
		}
		inj := faults.New(faults.Config{
			Seed:  faults.Derive(r.FaultSeed, fmt.Sprintf("fault/%s/%s/%g", c.org, name, c.rate)),
			Model: r.FaultModel,
			Rate:  c.rate,
		})
		qc, err := r.newGuard(c.key)
		if err != nil {
			return err
		}
		child := r.instrument()
		inj.AttachMetrics(child)
		qc.AttachMetrics(child)
		specs[i] = workloads.ReplaySpec{LLCB: builder, Opt: workloads.RunOptions{
			Cores: r.Cores, Metrics: child, Faults: inj, Quality: qc,
		}}
		children[i] = child
		guards[i] = qc
	}
	runs, err := workloads.ReplayFunctionalBatch(ctx, f.New(r.Scale), cells[0].cap, specs)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.logf("[%s] batched replay failed (%v); cells fall back to sequential runs", name, err)
		return nil
	}
	for i, c := range cells {
		r.Metrics.Counter("trace.replays").Add(1)
		r.collect(c.key+"/func", children[i])
		s := guards[i].Stats()
		outcome := &QualityOutcome{
			TrueErrorBits: math.Float64bits(a.bench.Error(a.out, runs[i].Output)),
			EstimateBits:  math.Float64bits(guards[i].Estimate()),
			FinalState:    guards[i].State(),
			Trips:         s.Trips,
			Reentries:     s.Reentries,
			Canaries:      s.Canaries,
			CanaryDraws:   s.CanaryDraws,
			ApproxOps:     s.ApproxOps,
			Bypassed:      s.Bypassed,
			Transitions:   guards[i].Transitions(),
		}
		if _, err := r.qualityDo(c.key, func() (*QualityOutcome, error) { return outcome, nil }); err != nil {
			return err
		}
	}
	return nil
}
