package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- checkpoint round trip (no simulations) ---

// TestCheckpointRoundTrip verifies records survive a close/reopen bit-
// exactly, duplicates write once, and a torn trailing line (an interrupted
// write) is dropped instead of poisoning the resume.
func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	v := math.Nextafter(0.123, 1) // not exactly representable in decimal
	cp.SaveError("split/kmeans/14/0.25", v)
	cp.SaveError("split/kmeans/14/0.25", 999) // duplicate: ignored
	res := (&TimingSummary{Cycles: 123456, PerCoreCycles: []uint64{1, 2, 3, 4}, Instructions: 42}).Result()
	cp.SaveTiming("split/kmeans/14/0.25", res)
	if cp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cp.Len())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a torn line, as if a kill arrived mid-write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"error","key":"torn`)
	f.Close()

	re, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Errors()["split/kmeans/14/0.25"]; math.Float64bits(got) != math.Float64bits(v) {
		t.Fatalf("error round trip: %x vs %x", math.Float64bits(got), math.Float64bits(v))
	}
	if _, ok := re.Errors()["torn"]; ok {
		t.Fatal("torn record resurrected")
	}
	ts := re.Timings()["split/kmeans/14/0.25"]
	if ts == nil || ts.Cycles != 123456 || ts.Instructions != 42 || len(ts.PerCoreCycles) != 4 {
		t.Fatalf("timing round trip: %+v", ts)
	}
	// A primed runner serves the records without computing.
	r := NewRunner(0.05)
	r.Resume(re)
	got, err := r.errCache.Do("split/kmeans/14/0.25", func() (float64, error) {
		t.Fatal("resumed key recomputed")
		return 0, nil
	})
	if err != nil || math.Float64bits(got) != math.Float64bits(v) {
		t.Fatalf("resume served %x, %v", math.Float64bits(got), err)
	}
}

// TestCheckpointTruncatesWithoutResume verifies a fresh (non-resume) open
// discards stale records.
func TestCheckpointTruncatesWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, _ := OpenCheckpoint(path, false)
	cp.SaveError("old", 1)
	cp.Close()
	cp2, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if len(cp2.Errors()) != 0 || cp2.Len() != 0 {
		t.Fatal("truncating open kept stale records")
	}
}

// --- engine resilience (synthetic tasks, no simulations) ---

// TestEngineTaskPanicIsolated verifies a panicking task fails with the
// panic stack in its error while every other task still runs — the process
// survives a worker crash.
func TestEngineTaskPanicIsolated(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 4
	var ran atomic.Int64
	tasks := []*task{
		{label: "crash", run: func(context.Context) error { panic("injected crash") }},
	}
	for i := 0; i < 6; i++ {
		tasks = append(tasks, &task{label: fmt.Sprintf("ok%d", i), run: func(context.Context) error {
			ran.Add(1)
			return nil
		}})
	}
	err := r.runTasks(context.Background(), tasks)
	if err == nil {
		t.Fatal("panicking task did not fail")
	}
	for _, want := range []string{"crash", "injected crash", "resilience_test.go"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
	if ran.Load() != 6 {
		t.Errorf("%d of 6 healthy tasks ran after the crash", ran.Load())
	}
}

// TestEngineTaskTimeout verifies the per-task deadline: a task that honours
// its context fails with DeadlineExceeded instead of hanging the sweep.
func TestEngineTaskTimeout(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 1
	r.TaskTimeout = 20 * time.Millisecond
	err := r.runTasks(context.Background(), []*task{{label: "slow", run: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestEngineRetrySucceeds verifies the bounded-retry loop: a task failing
// transiently succeeds within its retry budget, each attempt under a fresh
// deadline, and a task exhausting the budget reports its last error.
func TestEngineRetrySucceeds(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 1
	r.Retries = 2
	r.RetryBackoff = time.Millisecond
	var attempts atomic.Int64
	flaky := &task{label: "flaky", run: func(context.Context) error {
		if attempts.Add(1) < 3 {
			return errTest
		}
		return nil
	}}
	if err := r.runTasks(context.Background(), []*task{flaky}); err != nil {
		t.Fatalf("flaky task failed despite retries: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}

	attempts.Store(0)
	hopeless := &task{label: "hopeless", run: func(context.Context) error {
		attempts.Add(1)
		return errTest
	}}
	err := r.runTasks(context.Background(), []*task{hopeless})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err = %v, want the task's last error", err)
	}
	if attempts.Load() != 3 { // 1 + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
}

// TestEngineRetryBackoffCancellable verifies cancellation cuts the backoff
// sleep short instead of serving it out.
func TestEngineRetryBackoffCancellable(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 1
	r.Retries = 1
	r.RetryBackoff = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := r.runTasks(ctx, []*task{{label: "fail", run: func(context.Context) error { return errTest }}})
	if err == nil {
		t.Fatal("want failure")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation did not cut the backoff short (%v)", d)
	}
}

// --- cancellation and resume with real simulations ---

// TestPrewarmCancelPrompt cancels a parallel prewarm mid-flight and checks
// it returns promptly, reports the cancellation, and leaks no goroutines
// (the gang scheduler and timing loops all unwind).
func TestPrewarmCancelPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	before := runtime.NumGoroutine()
	r := diffRunner(0.05, 4)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- r.PrewarmContext(ctx, diffGrid()) }()
	time.Sleep(100 * time.Millisecond) // let simulations start
	cancel()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("err = %v, want a cancellation", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled prewarm did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked after cancel: %d > %d\n%s", n, before, buf[:runtime.Stack(buf, true)])
	}
}

// TestCheckpointResumeBitIdentical simulates an interrupted sweep: a full
// run writes a checkpoint; a second run resumes from a truncated copy (as
// if killed partway), recomputes only what is missing, and must render
// byte-identical tables.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	grid := Grid{Benchmarks: []string{"kmeans"}, MapSpaces: []int{14}}
	render := func(r *Runner) string {
		t2, err := r.Table2()
		if err != nil {
			t.Fatal(err)
		}
		e, err := r.SplitError("kmeans", 14, BaseDataFrac)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.SplitTiming("kmeans", 14, BaseDataFrac)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%s\n%x %d", t2.Format(), math.Float64bits(e), res.Cycles)
	}

	// Full run, checkpointed.
	pathA := filepath.Join(dir, "a.jsonl")
	cpA, err := OpenCheckpoint(pathA, false)
	if err != nil {
		t.Fatal(err)
	}
	a := NewRunner(0.05)
	a.Only = grid.Benchmarks
	a.Workers = 2
	a.Checkpoint = cpA
	if err := a.Prewarm(grid); err != nil {
		t.Fatal(err)
	}
	outA := render(a)
	cpA.Close()

	// Interrupted run: keep the schema header plus the first record, as if
	// SIGINT landed after one task.
	data, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("checkpoint has %d lines, want >= 3 (header plus records)", len(lines))
	}
	pathB := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(pathB, []byte(lines[0]+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	cpB, err := OpenCheckpoint(pathB, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cpB.Close()
	b := NewRunner(0.05)
	b.Only = grid.Benchmarks
	b.Workers = 2
	b.Checkpoint = cpB
	b.Resume(cpB)
	if err := b.Prewarm(grid); err != nil {
		t.Fatal(err)
	}
	outB := render(b)

	if outA != outB {
		t.Fatalf("resumed run diverged:\n--- full ---\n%s\n--- resumed ---\n%s", outA, outB)
	}
	if got := b.errCache.Computes() + b.timeCache.Computes(); got >= a.errCache.Computes()+a.timeCache.Computes() {
		t.Errorf("resume recomputed everything: %d computes vs %d in the full run",
			got, a.errCache.Computes()+a.timeCache.Computes())
	}
}
