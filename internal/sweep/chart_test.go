package sweep

import (
	"strings"
	"testing"
)

func TestFormatChartBars(t *testing.T) {
	tb := &Table{Title: "Chart", Columns: []string{"benchmark", "a", "b"}}
	tb.AddRow("x", "50.0%", "100.0%")
	tb.AddRow("y", "25.0%", "text")
	out := tb.FormatChart()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "== Chart ==") {
		t.Fatalf("title: %q", lines[0])
	}
	full := strings.Count(lines[2], "█") // 100% bar
	half := strings.Count(lines[1], "█") // 50% bar
	qtr := strings.Count(lines[4], "█")  // 25% bar
	if full == 0 || half == 0 || qtr == 0 {
		t.Fatalf("missing bars:\n%s", out)
	}
	if !(qtr < half && half < full) {
		t.Errorf("bar lengths not ordered: %d %d %d\n%s", qtr, half, full, out)
	}
	if !strings.Contains(lines[5], "text") {
		t.Errorf("non-numeric cell lost: %q", lines[5])
	}
}

func TestParseCell(t *testing.T) {
	cases := map[string]struct {
		v  float64
		ok bool
	}{
		"37.9%": {37.9, true},
		"2.55x": {2.55, true},
		"1.023": {1.023, true},
		"-":     {0, false},
		"n/a":   {0, false},
	}
	for s, want := range cases {
		v, ok := parseCell(s)
		if ok != want.ok || (ok && v != want.v) {
			t.Errorf("parseCell(%q) = %v, %v", s, v, ok)
		}
	}
}
