package sweep

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rebless the golden table files in testdata/")

// goldenScale keeps the full regeneration around ten seconds: large enough
// that every structure overflows, small enough for the test suite. The
// sweep is bit-deterministic, so the rendered tables are byte-stable across
// runs, worker counts, and -serial.
const goldenScale = 0.05

// renderFull renders every paper table/figure in the exact order and format
// cmd/experiments emits for "all".
func renderFull(r *Runner) (string, error) {
	var b strings.Builder
	emit := func(ts ...*Table) {
		for _, t := range ts {
			fmt.Fprintln(&b, t.Format())
		}
	}
	t2, err := r.Table2()
	if err != nil {
		return "", err
	}
	emit(t2)
	f2, err := r.Fig2()
	if err != nil {
		return "", err
	}
	emit(f2)
	f7, err := r.Fig7()
	if err != nil {
		return "", err
	}
	emit(f7)
	f8, err := r.Fig8()
	if err != nil {
		return "", err
	}
	emit(f8)
	a9, b9, err := r.Fig9()
	if err != nil {
		return "", err
	}
	emit(a9, b9)
	a10, b10, err := r.Fig10()
	if err != nil {
		return "", err
	}
	emit(a10, b10)
	a11, b11, err := r.Fig11()
	if err != nil {
		return "", err
	}
	emit(a11, b11)
	f12, err := r.Fig12()
	if err != nil {
		return "", err
	}
	emit(f12)
	emit(r.Fig13())
	a14, b14, c14, err := r.Fig14()
	if err != nil {
		return "", err
	}
	emit(a14, b14, c14)
	emit(r.Table3())
	return b.String(), nil
}

func renderExtras(r *Runner) (string, error) {
	var b strings.Builder
	t, err := r.Extras()
	if err != nil {
		return "", err
	}
	fmt.Fprintln(&b, t.Format())
	return b.String(), nil
}

func diffGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("reblessed %s", path)
		return
	}
	wantB, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sweep -run TestGoldenTables -args -update` to bless)", err)
	}
	want := string(wantB)
	if got == want {
		return
	}
	// Report the first differing line so a regression is readable without
	// an external diff tool.
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s: line %d differs\n got: %q\nwant: %q\n(rebless with -args -update if the change is intended)",
				path, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: length differs (got %d lines, want %d)", path, len(gl), len(wl))
}

// TestGoldenTables regenerates every table the experiments binary prints at
// a reduced scale and byte-compares against the blessed goldens. Any change
// to the simulators that shifts a single reported digit fails here; rebless
// with:
//
//	go test ./internal/sweep -run TestGoldenTables -args -update
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full experiment grid (~10s)")
	}
	r := NewRunner(goldenScale)
	if err := r.Prewarm(FullGrid(true)); err != nil {
		t.Fatal(err)
	}
	full, err := renderFull(r)
	if err != nil {
		t.Fatal(err)
	}
	diffGolden(t, filepath.Join("testdata", "golden_scale005_full.txt"), full)
	extras, err := renderExtras(r)
	if err != nil {
		t.Fatal(err)
	}
	diffGolden(t, filepath.Join("testdata", "golden_scale005_extras.txt"), extras)
}

// TestPublishedResultsMatchTestdata byte-compares the repo-root published
// result files against the snapshots in testdata/, so the published tables
// cannot drift from the blessed copies without a visible diff here.
func TestPublishedResultsMatchTestdata(t *testing.T) {
	for _, name := range []string{"results_full.txt", "results_extras.txt"} {
		published, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("published %s: %v", name, err)
		}
		snap, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("snapshot %s: %v", name, err)
		}
		if string(published) != string(snap) {
			t.Errorf("%s differs between repo root and internal/sweep/testdata; update both together", name)
		}
	}
}
