package sweep

import (
	"context"
	"fmt"

	"doppelganger/internal/approx"
	"doppelganger/internal/core"
	"doppelganger/internal/timesim"
	"doppelganger/internal/workloads"
)

// extraConfig is one extension configuration the Extras table evaluates;
// timing selects which simulator (and which memo cache) the run uses.
type extraConfig struct {
	tag    string
	cfg    core.Config
	timing bool
}

// extrasConfigs returns the extension configurations at the base geometry
// (14-bit map, 1/4 data array); shared by Extras and the engine grid.
func extrasConfigs() []extraConfig {
	base := SplitConfig(BaseMapBits, BaseDataFrac)
	minmax := base
	minmax.MapSpec.Hash = approx.HashMinMax
	avgonly := base
	avgonly.MapSpec.Hash = approx.HashAvgOnly
	aware := base
	aware.DataPolicy = core.ReplaceTagCountAware
	compressed := base
	compressed.CompressedData = true
	compressed.CompressBudget = 0.5
	return []extraConfig{
		{tag: "minmax", cfg: minmax},
		{tag: "avgonly", cfg: avgonly},
		{tag: "aware", cfg: aware, timing: true},
		{tag: "compressed", cfg: compressed, timing: true},
	}
}

// Extras evaluates this repository's extensions beyond the paper, all at
// the base configuration (14-bit map, 1/4 data array):
//
//   - alternative similarity hashes (§3.7 future work): min+max and
//     average-only versus the paper's average+range, by output error;
//   - the tag-count-aware data replacement policy (§3.5 future work)
//     versus LRU, by normalized runtime;
//   - the BΔI-compressed data array (§5.1's Doppelgänger+BΔI) at half the
//     SRAM bytes, by normalized runtime.
func (r *Runner) Extras() (*Table, error) {
	t := &Table{
		Title: "Extras: extensions beyond the paper (14-bit map, 1/4 data array)",
		Columns: []string{"benchmark",
			"err avg+range", "err min+max", "err avg-only",
			"rt lru", "rt tag-aware", "rt compressed/2"},
		Notes: []string{
			"rt columns are runtime normalized to the baseline 2MB LLC;",
			"compressed/2 stores BdI-compressed payloads in half the data-array bytes.",
		},
	}

	xs := extrasConfigs()
	byTag := map[string]extraConfig{}
	for _, x := range xs {
		byTag[x.tag] = x
	}

	sums := make([]float64, 6)
	for _, name := range r.Benchmarks() {
		a, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		splitErr, err := r.SplitError(name, BaseMapBits, BaseDataFrac)
		if err != nil {
			return nil, err
		}
		minmaxErr, err := r.customError(name, byTag["minmax"].cfg, "minmax")
		if err != nil {
			return nil, err
		}
		avgonlyErr, err := r.customError(name, byTag["avgonly"].cfg, "avgonly")
		if err != nil {
			return nil, err
		}
		splitTime, err := r.SplitTiming(name, BaseMapBits, BaseDataFrac)
		if err != nil {
			return nil, err
		}
		awareTime, err := r.customTiming(name, byTag["aware"].cfg, "aware")
		if err != nil {
			return nil, err
		}
		compTime, err := r.customTiming(name, byTag["compressed"].cfg, "compressed")
		if err != nil {
			return nil, err
		}
		vals := []float64{
			splitErr, minmaxErr, avgonlyErr,
			float64(splitTime.Cycles) / float64(a.timing.Cycles),
			float64(awareTime.Cycles) / float64(a.timing.Cycles),
			float64(compTime.Cycles) / float64(a.timing.Cycles),
		}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(name, pct(vals[0]), pct(vals[1]), pct(vals[2]),
			norm(vals[3]), norm(vals[4]), norm(vals[5]))
	}
	n := float64(len(r.Benchmarks()))
	t.AddRow("average", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n),
		norm(sums[3]/n), norm(sums[4]/n), norm(sums[5]/n))
	return t, nil
}

// customError runs the split organization with an explicit Doppelgänger
// configuration and measures output error.
func (r *Runner) customError(name string, cfg core.Config, tag string) (float64, error) {
	return r.customErrorContext(context.Background(), name, cfg, tag)
}

func (r *Runner) customErrorContext(ctx context.Context, name string, cfg core.Config, tag string) (float64, error) {
	key := fmt.Sprintf("custom/%s/%s", name, tag)
	return r.errDo(key, func() (float64, error) {
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return 0, err
		}
		r.logf("[%s] custom functional run (%s)", name, tag)
		child := r.instrument()
		run, err := r.funcRun(ctx, funcReq{
			key:  key,
			name: name,
			llcb: workloads.CustomSplitBuilder(cfg),
			opt:  workloads.RunOptions{Cores: r.Cores, Metrics: child},
			fast: true,
		})
		if err != nil {
			return 0, err
		}
		r.collect(key+"/func", child)
		return a.bench.Error(a.run.Output, run.Output), nil
	})
}

// customTiming replays the benchmark's traces against the split
// organization with an explicit Doppelgänger configuration.
func (r *Runner) customTiming(name string, cfg core.Config, tag string) (*timesim.Result, error) {
	return r.customTimingContext(context.Background(), name, cfg, tag)
}

func (r *Runner) customTimingContext(ctx context.Context, name string, cfg core.Config, tag string) (*timesim.Result, error) {
	key := fmt.Sprintf("custom/%s/%s", name, tag)
	return r.timeDo(key, func() (*timesim.Result, error) {
		a, err := r.BaselineContext(ctx, name)
		if err != nil {
			return nil, err
		}
		r.logf("[%s] custom timing run (%s)", name, tag)
		child := r.instrument()
		res, err := timesim.RunContext(ctx, a.run.Recorder, a.run.InitialMem, a.run.Annotations,
			workloads.CustomSplitBuilder(cfg), r.timesimConfigFor(key+"/timing", child))
		if err != nil {
			return nil, err
		}
		r.collect(key+"/timing", child)
		return res, nil
	})
}
