package sweep

import (
	"fmt"

	"doppelganger/internal/approx"
	"doppelganger/internal/core"
	"doppelganger/internal/timesim"
	"doppelganger/internal/workloads"
)

// Extras evaluates this repository's extensions beyond the paper, all at
// the base configuration (14-bit map, 1/4 data array):
//
//   - alternative similarity hashes (§3.7 future work): min+max and
//     average-only versus the paper's average+range, by output error;
//   - the tag-count-aware data replacement policy (§3.5 future work)
//     versus LRU, by normalized runtime;
//   - the BΔI-compressed data array (§5.1's Doppelgänger+BΔI) at half the
//     SRAM bytes, by normalized runtime.
func (r *Runner) Extras() *Table {
	t := &Table{
		Title: "Extras: extensions beyond the paper (14-bit map, 1/4 data array)",
		Columns: []string{"benchmark",
			"err avg+range", "err min+max", "err avg-only",
			"rt lru", "rt tag-aware", "rt compressed/2"},
		Notes: []string{
			"rt columns are runtime normalized to the baseline 2MB LLC;",
			"compressed/2 stores BdI-compressed payloads in half the data-array bytes.",
		},
	}

	base := SplitConfig(14, 0.25)
	minmax := base
	minmax.MapSpec.Hash = approx.HashMinMax
	avgonly := base
	avgonly.MapSpec.Hash = approx.HashAvgOnly
	aware := base
	aware.DataPolicy = core.ReplaceTagCountAware
	compressed := base
	compressed.CompressedData = true
	compressed.CompressBudget = 0.5

	sums := make([]float64, 6)
	for _, name := range r.Benchmarks() {
		a := r.Baseline(name)
		vals := []float64{
			r.SplitError(name, 14, 0.25),
			r.customError(name, minmax, "minmax"),
			r.customError(name, avgonly, "avgonly"),
			float64(r.SplitTiming(name, 14, 0.25).Cycles) / float64(a.timing.Cycles),
			float64(r.customTiming(name, aware, "aware").Cycles) / float64(a.timing.Cycles),
			float64(r.customTiming(name, compressed, "compressed").Cycles) / float64(a.timing.Cycles),
		}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRow(name, pct(vals[0]), pct(vals[1]), pct(vals[2]),
			norm(vals[3]), norm(vals[4]), norm(vals[5]))
	}
	n := float64(len(r.Benchmarks()))
	t.AddRow("average", pct(sums[0]/n), pct(sums[1]/n), pct(sums[2]/n),
		norm(sums[3]/n), norm(sums[4]/n), norm(sums[5]/n))
	return t
}

// customError runs the split organization with an explicit Doppelgänger
// configuration and measures output error.
func (r *Runner) customError(name string, cfg core.Config, tag string) float64 {
	key := fmt.Sprintf("custom/%s/%s", name, tag)
	if v, ok := r.errCache[key]; ok {
		return v
	}
	a := r.Baseline(name)
	f, _ := workloads.ByName(name)
	r.logf("[%s] custom functional run (%s)", name, tag)
	run := workloads.RunFunctional(f.New(r.Scale), workloads.CustomSplitBuilder(cfg),
		workloads.RunOptions{Cores: r.Cores})
	v := a.bench.Error(a.run.Output, run.Output)
	r.errCache[key] = v
	return v
}

// customTiming replays the benchmark's traces against the split
// organization with an explicit Doppelgänger configuration.
func (r *Runner) customTiming(name string, cfg core.Config, tag string) *timesim.Result {
	key := fmt.Sprintf("custom/%s/%s", name, tag)
	if v, ok := r.timeCache[key]; ok {
		return v
	}
	a := r.Baseline(name)
	r.logf("[%s] custom timing run (%s)", name, tag)
	res := timesim.Run(a.run.Recorder, a.run.InitialMem, a.run.Annotations,
		workloads.CustomSplitBuilder(cfg), r.timesimConfig())
	r.timeCache[key] = res
	return res
}
