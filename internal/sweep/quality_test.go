package sweep

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"doppelganger/internal/quality"
)

// --- checkpoint schema enforcement (no simulations) ---

// TestCheckpointRejectsVersionMismatch: a checkpoint written by a different
// schema version must be refused with an actionable message, not silently
// loaded with reinterpreted records.
func TestCheckpointRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	content := `{"kind":"header","version":1}` + "\n" +
		`{"kind":"error","key":"old","bits":1}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCheckpoint(path, true)
	if err == nil {
		t.Fatal("version-1 checkpoint accepted")
	}
	for _, want := range []string{"schema version 1", "delete the file"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

// TestCheckpointRejectsMissingHeader: a file that starts with a record
// instead of the header (a pre-versioning checkpoint) is refused.
func TestCheckpointRejectsMissingHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, []byte(`{"kind":"error","key":"k","bits":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCheckpoint(path, true)
	if err == nil || !strings.Contains(err.Error(), "no schema header") {
		t.Fatalf("pre-versioning checkpoint accepted: %v", err)
	}
}

// TestCheckpointRejectsGarbage: a first line that is not JSON at all (wrong
// file entirely) is refused rather than treated as a torn write.
func TestCheckpointRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, []byte("PK\x03\x04 definitely not jsonl\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenCheckpoint(path, true)
	if err == nil || !strings.Contains(err.Error(), "unreadable schema header") {
		t.Fatalf("garbage file accepted: %v", err)
	}
}

// TestCheckpointEmptyFileResume: resuming into an empty (or not yet created)
// path is a fresh start — the header is written so the next resume works.
func TestCheckpointEmptyFileResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatalf("empty file refused: %v", err)
	}
	cp.SaveError("k", 0.5)
	cp.Close()
	re, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatalf("second resume refused: %v", err)
	}
	defer re.Close()
	if re.Errors()["k"] != 0.5 {
		t.Errorf("record lost across empty-file resume: %v", re.Errors())
	}
	if len(re.Warnings()) != 0 {
		t.Errorf("clean resume produced warnings: %v", re.Warnings())
	}
}

// TestCheckpointDuplicateKeysLastWinWithWarning: duplicate keys (two runs
// appending to one file) keep the last record and surface a warning.
func TestCheckpointDuplicateKeysLastWinWithWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	content := `{"kind":"header","version":2}` + "\n" +
		`{"kind":"error","key":"k","bits":` + "4602678819172646912" + `}` + "\n" + // 0.5
		`{"kind":"error","key":"k","bits":` + "4598175219545276416" + `}` + "\n" // 0.25
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if got := cp.Errors()["k"]; got != 0.25 {
		t.Errorf("duplicate resolution kept %v, want the last (0.25)", got)
	}
	found := false
	for _, w := range cp.Warnings() {
		if strings.Contains(w, "duplicate error record") && strings.Contains(w, `"k"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("no duplicate-key warning: %v", cp.Warnings())
	}
}

// TestCheckpointQualityRoundTrip: a quality outcome — bits, breaker history
// and all — survives close/reopen exactly, and Resume primes the quality
// cache so the task is not recomputed.
func TestCheckpointQualityRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	out := &QualityOutcome{
		TrueErrorBits: math.Float64bits(math.Nextafter(0.043, 1)),
		EstimateBits:  math.Float64bits(0.0371),
		FinalState:    quality.HalfOpen,
		Trips:         2, Reentries: 1, Canaries: 311, CanaryDraws: 6000,
		ApproxOps: 12345, Bypassed: 4001,
		Transitions: []quality.Transition{
			{Op: 100, From: quality.Closed, To: quality.Open, Estimate: 0.061},
			{Op: 2100, From: quality.Open, To: quality.HalfOpen, Estimate: 0.061},
		},
	}
	cp.SaveQuality("quality/doppel/kmeans/0.0001", out)
	cp.SaveQuality("quality/doppel/kmeans/0.0001", &QualityOutcome{}) // duplicate: ignored
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Qualities()["quality/doppel/kmeans/0.0001"]
	if got == nil || !reflect.DeepEqual(got, out) {
		t.Fatalf("quality round trip:\ngot  %+v\nwant %+v", got, out)
	}
	r := NewRunner(0.05)
	r.Resume(re)
	served, err := r.qualityCache.Do("quality/doppel/kmeans/0.0001", func() (*QualityOutcome, error) {
		t.Fatal("resumed quality key recomputed")
		return nil, nil
	})
	if err != nil || !reflect.DeepEqual(served, out) {
		t.Fatalf("resume served %+v, %v", served, err)
	}
}

// FuzzCheckpointParse: the resume parser must never panic, whatever the file
// holds — it either loads, warns, or refuses with an error.
func FuzzCheckpointParse(f *testing.F) {
	f.Add([]byte(`{"kind":"header","version":2}` + "\n" +
		`{"kind":"error","key":"a","bits":42}` + "\n" +
		`{"kind":"timing","key":"b","timing":{"Cycles":7}}` + "\n" +
		`{"kind":"quality","key":"c","quality":{"trips":1,"final_state":"open"}}` + "\n"))
	f.Add([]byte(`{"kind":"header","version":1}` + "\n"))
	f.Add([]byte(`{"kind":"error","key":"no-header","bits":1}` + "\n"))
	f.Add([]byte(`{"kind":"header","version":2}` + "\n" + `{"kind":"error","key":"torn`))
	f.Add([]byte(`{"kind":"header","version":2}` + "\n" +
		`{"kind":"error","key":"dup","bits":1}` + "\n" +
		`{"kind":"error","key":"dup","bits":2}` + "\n" +
		`{"kind":"header","version":2}` + "\n" +
		`{"kind":"mystery","key":"x"}` + "\n" +
		`{"kind":"timing","key":"empty"}` + "\n"))
	f.Add([]byte("\x00\xff garbage"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := parseCheckpoint(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if d.errs == nil || d.timing == nil || d.quality == nil {
			t.Fatal("successful parse returned nil maps")
		}
		if len(d.warnings) > maxCheckpointWarnings+1 {
			t.Fatalf("warning cap breached: %d", len(d.warnings))
		}
	})
}

// --- grid wiring (no simulations) ---

// TestGridForQuality verifies the quality sweep is explicit-only, like the
// fault sweep it extends.
func TestGridForQuality(t *testing.T) {
	if g := GridFor("quality"); !g.Quality {
		t.Error("GridFor(quality) did not enable quality runs")
	}
	if g := GridFor("fig9"); g.Quality {
		t.Error("fig9 grid scheduled quality runs")
	}
	if FullGrid(true).Quality {
		t.Error("FullGrid scheduled quality runs")
	}
}

// --- guarded-run behavior (simulations) ---

// TestQualityGuardHugeBudgetMatchesFaultError is the observation-only
// differential at the sweep layer: with a budget the guard can never exceed,
// the guarded run must report the bit-identical output error of the
// unguarded fault run — canaries observe, they never perturb, and both runs
// derive the fault stream from the same key.
func TestQualityGuardHugeBudgetMatchesFaultError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r := NewRunner(0.05)
	r.Only = []string{"kmeans"}
	r.FaultSeed = 42
	r.QualitySeed = 7
	r.QualityBudget = 100 // unreachable: the guard can only observe
	r.CanaryRate = 1
	off, err := r.FaultError("kmeans", "doppel", 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := r.QualityError("kmeans", "doppel", 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if q.TrueErrorBits != math.Float64bits(off) {
		t.Errorf("guarded error %x, unguarded %x — observation-only guard perturbed the run",
			q.TrueErrorBits, math.Float64bits(off))
	}
	if q.Trips != 0 || q.Bypassed != 0 || q.FinalState != quality.Closed {
		t.Errorf("guard intervened under an unreachable budget: %+v", q)
	}
	if q.Canaries == 0 {
		t.Error("full-rate canary sampling observed nothing")
	}
}

// TestQualityGuardTripsOverTinyBudget: with a budget below the inherent
// approximation error, the breaker must trip and start bypassing — the
// graceful-degradation path engages end to end through a real workload.
func TestQualityGuardTripsOverTinyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r := NewRunner(0.05)
	r.Only = []string{"kmeans"}
	r.FaultSeed = 42
	r.QualityBudget = 1e-9 // below any real substitution error
	r.CanaryRate = 1
	q, err := r.QualityError("kmeans", "doppel", 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Trips == 0 {
		t.Fatalf("guard never tripped over a 1e-9 budget: %+v", q)
	}
	if q.Bypassed == 0 {
		t.Errorf("open breaker bypassed nothing: %+v", q)
	}
	if len(q.Transitions) == 0 || q.Transitions[0].From != quality.Closed || q.Transitions[0].To != quality.Open {
		t.Errorf("first transition is not the trip: %+v", q.Transitions)
	}
}

// TestQualitySweepDeterministic is the quality-layer acceptance check: the
// same seeds must produce bit-identical outcomes — including the breaker
// transition log — and byte-identical tables at any worker count.
func TestQualitySweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	run := func(workers int) (string, map[string]*QualityOutcome) {
		r := NewRunner(0.05)
		r.Only = []string{"kmeans"}
		r.Workers = workers
		r.FaultSeed = 42
		r.QualitySeed = 7
		r.FaultRates = []float64{1e-4}
		if err := r.Prewarm(Grid{Benchmarks: r.Only, Quality: true}); err != nil {
			t.Fatal(err)
		}
		errT, runT, err := r.QualitySweep()
		if err != nil {
			t.Fatal(err)
		}
		raw := map[string]*QualityOutcome{}
		for _, org := range GuardedOrgs {
			q, err := r.QualityError("kmeans", org, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			raw[org] = q
		}
		return errT.Format() + "\n" + runT.Format(), raw
	}
	tbl2, raw2 := run(2)
	tbl4, raw4 := run(4)
	if tbl2 != tbl4 {
		t.Errorf("quality tables differ across worker counts:\n--- workers=2 ---\n%s--- workers=4 ---\n%s", tbl2, tbl4)
	}
	for org, q := range raw2 {
		if !reflect.DeepEqual(q, raw4[org]) {
			t.Errorf("quality outcome for %s differs:\nworkers=2 %+v\nworkers=4 %+v", org, q, raw4[org])
		}
	}
}
