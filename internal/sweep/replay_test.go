package sweep

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doppelganger/internal/metrics"
	"doppelganger/internal/trace"
)

// The replay differential suite: a sweep served from a warm trace directory
// must be indistinguishable — to the last bit of every error value, table
// digit and timing cycle — from one that executes every kernel live. Three
// runner configurations are compared throughout: live (no trace dir), cold
// (trace dir populated during the run), warm (trace dir pre-populated by an
// earlier runner).

// traceRunner builds a runner over the benchmark subset with an optional
// trace directory.
func traceRunner(scale float64, dir string, only ...string) *Runner {
	r := NewRunner(scale)
	r.Only = only
	r.TraceDir = dir
	return r
}

// TestTraceSmoke is the fast end-to-end check `make trace-smoke` runs: one
// benchmark is captured cold and replayed warm, and both agree with the
// live value bit-for-bit.
func TestTraceSmoke(t *testing.T) {
	dir := t.TempDir()
	cell := func(r *Runner) (uint64, uint64) {
		s, err := r.SplitError("kmeans", BaseMapBits, BaseDataFrac)
		if err != nil {
			t.Fatal(err)
		}
		u, err := r.UnifiedError("kmeans", BaseMapBits, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return math.Float64bits(s), math.Float64bits(u)
	}
	liveS, liveU := cell(traceRunner(0.02, "", "kmeans"))
	coldS, coldU := cell(traceRunner(0.02, dir, "kmeans"))
	warmS, warmU := cell(traceRunner(0.02, dir, "kmeans"))
	if coldS != liveS || coldU != liveU {
		t.Errorf("cold capture diverged from live: split %x vs %x, uni %x vs %x", coldS, liveS, coldU, liveU)
	}
	if warmS != liveS || warmU != liveU {
		t.Errorf("warm replay diverged from live: split %x vs %x, uni %x vs %x", warmS, liveS, warmU, liveU)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("cold run persisted no captures")
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".dgt") {
			t.Errorf("unexpected file in trace dir: %s", e.Name())
		}
	}
}

// TestGoldenTablesReplay is the tentpole acceptance test: the full paper
// grid rendered from a cold trace directory and again from a warm one must
// byte-match the blessed goldens that the live path maintains. The warm
// pass must also leave every capture file untouched — replay never
// re-records.
func TestGoldenTablesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full experiment grid twice (~20s)")
	}
	dir := t.TempDir()
	golden := filepath.Join("testdata", "golden_scale005_full.txt")
	render := func(label string) string {
		r := NewRunner(goldenScale)
		r.TraceDir = dir
		if err := r.Prewarm(FullGrid(true)); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		full, err := renderFull(r)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return full
	}

	cold := render("cold")
	diffGolden(t, golden, cold)
	mtimes := map[string]time.Time{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("cold pass persisted no captures")
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		mtimes[e.Name()] = info.ModTime()
	}

	warm := render("warm")
	diffGolden(t, golden, warm)
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(mtimes) {
		t.Errorf("warm pass changed the capture count: %d -> %d", len(mtimes), len(ents))
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if was, ok := mtimes[e.Name()]; !ok {
			t.Errorf("warm pass recorded a new capture %s", e.Name())
		} else if !info.ModTime().Equal(was) {
			t.Errorf("warm pass rewrote capture %s", e.Name())
		}
	}
}

// TestReplayFaultQualityCells extends the differential to the seeded cells:
// fault injection and the quality guard draw pseudo-random decisions per
// LLC operation, so replay only matches if the captured stream reproduces
// the live operation sequence exactly.
func TestReplayFaultQualityCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	const rate = 1e-4
	dir := t.TempDir()
	cells := func(r *Runner) map[string]interface{} {
		r.FaultSeed = 42
		out := map[string]interface{}{}
		for _, name := range r.Only {
			for _, org := range FaultOrgs {
				v, err := r.FaultError(name, org, rate)
				if err != nil {
					t.Fatal(err)
				}
				out["fault/"+name+"/"+org] = math.Float64bits(v)
				q, err := r.QualityError(name, org, rate)
				if err != nil {
					t.Fatal(err)
				}
				// Transitions aside, the outcome is comparable field-by-field;
				// compare the flattened struct including the transition log.
				out["quality/"+name+"/"+org] = *q
			}
		}
		return out
	}
	only := []string{"blackscholes", "kmeans"}
	live := cells(traceRunner(0.02, "", only...))
	cold := cells(traceRunner(0.02, dir, only...))
	warm := cells(traceRunner(0.02, dir, only...))
	for k, v := range live {
		lv, cv, wv := v, cold[k], warm[k]
		if qa, ok := lv.(QualityOutcome); ok {
			qc, qw := cv.(QualityOutcome), wv.(QualityOutcome)
			if !qualityOutcomeEqual(qa, qc) {
				t.Errorf("%s: cold diverged from live:\nlive %+v\ncold %+v", k, qa, qc)
			}
			if !qualityOutcomeEqual(qa, qw) {
				t.Errorf("%s: warm diverged from live:\nlive %+v\nwarm %+v", k, qa, qw)
			}
			continue
		}
		if cv != lv {
			t.Errorf("%s: cold %v != live %v", k, cv, lv)
		}
		if wv != lv {
			t.Errorf("%s: warm %v != live %v", k, wv, lv)
		}
	}
}

func qualityOutcomeEqual(a, b QualityOutcome) bool {
	if a.TrueErrorBits != b.TrueErrorBits || a.EstimateBits != b.EstimateBits ||
		a.FinalState != b.FinalState || a.Trips != b.Trips || a.Reentries != b.Reentries ||
		a.Canaries != b.Canaries || a.CanaryDraws != b.CanaryDraws ||
		a.ApproxOps != b.ApproxOps || a.Bypassed != b.Bypassed ||
		len(a.Transitions) != len(b.Transitions) {
		return false
	}
	for i := range a.Transitions {
		if a.Transitions[i] != b.Transitions[i] {
			return false
		}
	}
	return true
}

// TestReplayResumeDeterministic covers the checkpoint×trace-cache corner: a
// sweep interrupted after half its cells and resumed from the checkpoint
// over the now-warm trace directory must produce the same bits as one cold
// uninterrupted run — resumed keys come from the checkpoint, the rest from
// replay or fresh capture, and no source may drift.
func TestReplayResumeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	type cell struct {
		name string
		m    int
		frac float64
	}
	cells := []cell{
		{"kmeans", 12, 0.25}, {"kmeans", 14, 0.25}, {"kmeans", 14, 0.5},
		{"swaptions", 12, 0.25}, {"swaptions", 14, 0.25}, {"swaptions", 14, 0.5},
	}
	compute := func(r *Runner, cs []cell) map[cell]uint64 {
		out := map[cell]uint64{}
		for _, c := range cs {
			v, err := r.SplitError(c.name, c.m, c.frac)
			if err != nil {
				t.Fatal(err)
			}
			out[c] = math.Float64bits(v)
		}
		return out
	}

	// The uninterrupted reference: every cell live, no traces, no checkpoint.
	want := compute(traceRunner(0.02, "", "kmeans", "swaptions"), cells)

	// First leg: half the cells complete before the "interrupt", landing in
	// both the checkpoint and the trace directory.
	dir := t.TempDir()
	cpPath := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(cpPath, false)
	if err != nil {
		t.Fatal(err)
	}
	r1 := traceRunner(0.02, dir, "kmeans", "swaptions")
	r1.Checkpoint = cp
	compute(r1, cells[:3])
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Second leg: resume over the warm traces and finish everything.
	re, err := OpenCheckpoint(cpPath, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() == 0 {
		t.Fatal("first leg checkpointed nothing")
	}
	r2 := traceRunner(0.02, dir, "kmeans", "swaptions")
	r2.Checkpoint = re
	r2.Resume(re)
	got := compute(r2, cells)
	for c, v := range want {
		if got[c] != v {
			t.Errorf("split/%s/%d/%g: resumed run %x != cold run %x", c.name, c.m, c.frac, got[c], v)
		}
	}
}

// TestTracePersistFailureDegradesLive is the graceful-degradation proof: a
// cell whose capture cannot be persisted (here: the trace dir cannot even
// be created) must NOT fail — it degrades to plain live execution with the
// same bits, counts itself in trace.degraded, and a later runner over a
// healthy directory records normally.
func TestTracePersistFailureDegradesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	want, err := traceRunner(0.02, "", "kmeans").SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := traceRunner(0.02, filepath.Join(blocker, "traces"), "kmeans")
	r.Metrics = metrics.NewRegistry()
	v, err := r.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatalf("cell failed instead of degrading to live execution: %v", err)
	}
	if math.Float64bits(v) != math.Float64bits(want) {
		t.Errorf("degraded cell diverged from live: %x vs %x", math.Float64bits(v), math.Float64bits(want))
	}
	if n := r.Metrics.CounterValue("trace.degraded"); n == 0 {
		t.Error("degraded cells not counted in trace.degraded")
	}
	if n := r.Metrics.CounterValue("trace.records"); n != 0 {
		t.Errorf("unwritable store still claims %d recorded captures", n)
	}
	// A fresh runner over a healthy directory records normally and replays
	// to the same bits.
	dir := t.TempDir()
	h := traceRunner(0.02, dir, "kmeans")
	hv, err := h.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatalf("healthy-dir run failed: %v", err)
	}
	if math.Float64bits(hv) != math.Float64bits(want) {
		t.Errorf("healthy-dir run diverged from live: %x vs %x", math.Float64bits(hv), math.Float64bits(want))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two captures: the split cell and the precise baseline it scores against.
	if len(ents) != 2 {
		t.Fatalf("healthy run persisted %d captures, want 2", len(ents))
	}
	w, err := traceRunner(0.02, dir, "kmeans").SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(w) != math.Float64bits(want) {
		t.Errorf("replay diverged: %x vs %x", math.Float64bits(w), math.Float64bits(want))
	}
}

// TestTraceCorruptQuarantinedAndRerecorded is the self-healing proof: every
// capture in a warm directory is damaged on disk, and the next sweep must
// (1) produce bits identical to the cold run, (2) move each damaged file to
// the quarantine exactly once, and (3) leave behind freshly recorded,
// replayable captures.
func TestTraceCorruptQuarantinedAndRerecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cold, err := traceRunner(0.02, dir, "kmeans").SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".dgt") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("cold run persisted no captures to damage")
	}

	r := traceRunner(0.02, dir, "kmeans")
	r.Metrics = metrics.NewRegistry()
	healed, err := r.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatalf("sweep over a damaged directory failed instead of healing: %v", err)
	}
	if math.Float64bits(healed) != math.Float64bits(cold) {
		t.Errorf("healed run diverged: %x vs %x", math.Float64bits(healed), math.Float64bits(cold))
	}
	if n := r.Metrics.CounterValue("trace.quarantines"); n != uint64(damaged) {
		t.Errorf("quarantined %d captures, damaged %d", n, damaged)
	}
	qents, err := os.ReadDir(filepath.Join(dir, ".quarantine"))
	if err != nil {
		t.Fatalf("no quarantine directory after healing: %v", err)
	}
	qcaptures := 0
	for _, e := range qents {
		if strings.HasSuffix(e.Name(), ".dgt") {
			qcaptures++
		}
	}
	if qcaptures != damaged {
		t.Errorf("quarantine holds %d captures, want %d", qcaptures, damaged)
	}
	// The re-recorded captures replay to the same bits — no quarantine loop.
	w := traceRunner(0.02, dir, "kmeans")
	w.Metrics = metrics.NewRegistry()
	wv, err := w.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(wv) != math.Float64bits(cold) {
		t.Errorf("post-heal replay diverged: %x vs %x", math.Float64bits(wv), math.Float64bits(cold))
	}
	if n := w.Metrics.CounterValue("trace.quarantines"); n != 0 {
		t.Errorf("healed directory quarantined %d more captures: quarantine loop", n)
	}
	if n := w.Metrics.CounterValue("trace.replays"); n == 0 {
		t.Error("post-heal run replayed nothing")
	}
}

// TestTraceUnavailableDegradesLive covers the other error family: when the
// I/O path cannot produce bytes (device errors, not damage), the cell runs
// live with identical bits, nothing is quarantined, and the on-disk capture
// survives for when the disk recovers.
func TestTraceUnavailableDegradesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cold, err := traceRunner(0.02, dir, "kmeans").SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	chaos := trace.NewChaosFS(1)
	chaos.ReadErr = 1 // every read fails: the store is unavailable, not damaged
	r := traceRunner(0.02, dir, "kmeans")
	r.TraceFS = chaos
	r.Metrics = metrics.NewRegistry()
	v, err := r.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatalf("unavailable store failed the cell instead of degrading: %v", err)
	}
	if math.Float64bits(v) != math.Float64bits(cold) {
		t.Errorf("degraded cell diverged: %x vs %x", math.Float64bits(v), math.Float64bits(cold))
	}
	if n := r.Metrics.CounterValue("trace.degraded"); n == 0 {
		t.Error("degraded cells not counted in trace.degraded")
	}
	if n := r.Metrics.CounterValue("trace.quarantines"); n != 0 {
		t.Errorf("device errors quarantined %d healthy captures", n)
	}
	after, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Errorf("degraded run changed the directory: %d -> %d entries", len(before), len(after))
	}
}

// TestTraceReplayRequiresCapture verifies the strict mode: -trace-replay
// over an empty directory fails with an error naming the cell rather than
// silently running live.
func TestTraceReplayRequiresCapture(t *testing.T) {
	r := traceRunner(0.02, t.TempDir(), "kmeans")
	r.TraceReplay = true
	_, err := r.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err == nil {
		t.Fatal("-trace-replay with no captures ran live")
	}
	if !strings.Contains(err.Error(), "kmeans") || !strings.Contains(err.Error(), "-trace-replay") {
		t.Errorf("error does not name the cell and the flag: %v", err)
	}
}

// TestTraceStaleIdentityRecaptures verifies a capture recorded under a
// different configuration (here: scale) is treated as stale — re-recorded
// in the default mode, never replayed.
func TestTraceStaleIdentityRecaptures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	a := traceRunner(0.02, dir, "kmeans")
	va, err := a.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	// A different scale hashes to a different identity, hence a different
	// file: both captures coexist and each replays its own bits.
	b := traceRunner(0.03, dir, "kmeans")
	vb, err := b.SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(va) == math.Float64bits(vb) {
		t.Logf("scales 0.02 and 0.03 coincide on kmeans (fine, but surprising)")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Each scale records its split cell plus the baseline it scores against.
	if len(ents) != 4 {
		t.Fatalf("want 4 captures (split+baseline per scale), got %d", len(ents))
	}
	// Warm replays at each scale still match their own cold run.
	wa, err := traceRunner(0.02, dir, "kmeans").SplitError("kmeans", BaseMapBits, BaseDataFrac)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(wa) != math.Float64bits(va) {
		t.Errorf("scale-0.02 replay diverged: %x vs %x", math.Float64bits(wa), math.Float64bits(va))
	}
}
