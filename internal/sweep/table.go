// Package sweep drives the paper's evaluation: one entry point per table
// and figure (Table 2, Table 3, Figs. 2, 7–14), each running the required
// functional and timing simulations and printing the same rows/series the
// paper reports. A memoizing Runner shares baseline runs and traces across
// experiments.
package sweep

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a formatted experiment result: one row per benchmark (plus an
// average row where the paper reports one), one column per series.
type Table struct {
	Title   string
	Columns []string // first column is the row label
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; the first cell is the label.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	writeRow(dashes(widths))
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// ratio formats a reduction factor.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// norm formats a normalized quantity.
func norm(v float64) string { return fmt.Sprintf("%.3f", v) }

// mean averages a slice.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// sortedKeys returns map keys in order, for deterministic output.
func sortedKeys[K int | float64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
