package sweep

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doppelganger/internal/timesim"
)

// --- pure scheduler tests (no simulations) ---

// TestEngineDependencyOrder verifies the worker pool never starts a task
// before everything it depends on has finished, across worker counts.
func TestEngineDependencyOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		r := NewRunner(1)
		r.Workers = workers
		var baseDone [3]atomic.Bool
		var violations atomic.Int64
		var tasks []*task
		for b := 0; b < 3; b++ {
			b := b
			base := &task{label: "base", run: func(context.Context) error {
				time.Sleep(time.Millisecond)
				baseDone[b].Store(true)
				return nil
			}}
			tasks = append(tasks, base)
			for v := 0; v < 4; v++ {
				dep := &task{label: "variant", waiting: 1, run: func(context.Context) error {
					if !baseDone[b].Load() {
						violations.Add(1)
					}
					return nil
				}}
				base.dependents = append(base.dependents, dep)
				tasks = append(tasks, dep)
			}
		}
		if err := r.runTasks(context.Background(), tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n := violations.Load(); n != 0 {
			t.Errorf("workers=%d: %d variants ran before their baseline", workers, n)
		}
	}
}

// TestEngineSkipsDependentsOnFailure verifies a failed task cancels its
// transitive dependents without running them, and that independent chains
// still complete.
func TestEngineSkipsDependentsOnFailure(t *testing.T) {
	r := NewRunner(1)
	r.Workers = 4
	var ranGood, ranSkipped atomic.Int64
	bad := &task{label: "bad/baseline", run: func(context.Context) error { return errTest }}
	child := &task{label: "bad/variant", waiting: 1, run: func(context.Context) error { ranSkipped.Add(1); return nil }}
	grandchild := &task{label: "bad/variant2", waiting: 1, run: func(context.Context) error { ranSkipped.Add(1); return nil }}
	bad.dependents = []*task{child}
	child.dependents = []*task{grandchild}
	good := &task{label: "good/baseline", run: func(context.Context) error { ranGood.Add(1); return nil }}
	goodChild := &task{label: "good/variant", waiting: 1, run: func(context.Context) error { ranGood.Add(1); return nil }}
	good.dependents = []*task{goodChild}

	err := r.runTasks(context.Background(), []*task{bad, child, grandchild, good, goodChild})
	if err == nil || !strings.Contains(err.Error(), "bad/baseline") {
		t.Fatalf("err = %v, want the failing task's label", err)
	}
	if ranSkipped.Load() != 0 {
		t.Errorf("%d dependents of the failed task ran", ranSkipped.Load())
	}
	if ranGood.Load() != 2 {
		t.Errorf("independent chain ran %d of 2 tasks", ranGood.Load())
	}
}

var errTest = timesimErr{}

type timesimErr struct{}

func (timesimErr) Error() string { return "synthetic failure" }

// TestGridFor checks the experiment-name → grid mapping: partial runs must
// only schedule the simulations their tables render.
func TestGridFor(t *testing.T) {
	if g := GridFor("table2", "fig7"); len(g.MapSpaces)+len(g.DataFracs)+len(g.UniFracs) != 0 || g.Extras {
		t.Errorf("baseline-only experiments got variants: %+v", g)
	}
	if g := GridFor("fig9"); len(g.MapSpaces) == 0 || len(g.DataFracs) != 0 {
		t.Errorf("fig9 grid wrong: %+v", g)
	}
	if g := GridFor("fig10", "fig12"); len(g.DataFracs) == 0 || len(g.MapSpaces) != 0 {
		t.Errorf("fig10+fig12 grid wrong: %+v", g)
	}
	if g := GridFor("fig14"); len(g.UniFracs) == 0 {
		t.Errorf("fig14 grid wrong: %+v", g)
	}
	if g := GridFor("extras"); !g.Extras {
		t.Errorf("extras grid wrong: %+v", g)
	}
	if g := GridFor("fig13", "table3"); g.Extras || len(g.MapSpaces)+len(g.DataFracs)+len(g.UniFracs) != 0 {
		t.Errorf("static experiments got simulations: %+v", g)
	}
	full := FullGrid(true)
	if g := GridFor("mystery"); len(g.MapSpaces) != len(full.MapSpaces) || !g.Extras {
		t.Errorf("unknown name did not widen to the full grid: %+v", g)
	}
}

// --- bad benchmark name (the former runner.go panic) ---

// TestUnknownBenchmarkIsError covers the path that used to panic: an
// unknown name must surface as an error from the runner, the engine, and a
// table builder.
func TestUnknownBenchmarkIsError(t *testing.T) {
	r := NewRunner(0.05)
	if _, err := r.Baseline("no-such-benchmark"); err == nil {
		t.Fatal("Baseline: want error for unknown benchmark")
	}
	if _, err := r.SplitError("no-such-benchmark", 14, 0.25); err == nil {
		t.Fatal("SplitError: want error for unknown benchmark")
	}

	r2 := NewRunner(0.05)
	r2.Only = []string{"no-such-benchmark"}
	r2.Workers = 4
	if err := r2.Prewarm(FullGrid(false)); err == nil {
		t.Fatal("Prewarm: want error for unknown benchmark")
	} else if !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Fatalf("Prewarm error %q does not name the benchmark", err)
	}
	if _, err := r2.Table2(); err == nil {
		t.Fatal("Table2: want error for unknown benchmark")
	}
}

// --- differential and determinism suites ---

// diffGrid is the reduced grid of the differential/determinism tests:
// 2 benchmarks × 2 split configurations × 1 unified configuration.
func diffGrid() Grid {
	return Grid{
		Benchmarks: []string{"blackscholes", "kmeans"},
		MapSpaces:  []int{12, 14}, // split runs at (12, 1/4) and (14, 1/4)
		UniFracs:   []float64{0.5},
	}
}

func diffRunner(scale float64, workers int) *Runner {
	r := NewRunner(scale)
	r.Only = []string{"blackscholes", "kmeans"}
	r.Workers = workers
	return r
}

// gridResults collects every raw value of the reduced grid plus rendered
// table rows, for bitwise comparison across execution strategies.
type gridResults struct {
	errs   map[string]uint64 // float64 bits of each error value
	cycles map[string]uint64
	timing map[string]*timesim.Result
	rows   []string
}

func collect(t *testing.T, r *Runner) *gridResults {
	t.Helper()
	g := &gridResults{
		errs:   map[string]uint64{},
		cycles: map[string]uint64{},
		timing: map[string]*timesim.Result{},
	}
	for _, name := range r.Benchmarks() {
		for _, m := range []int{12, 14} {
			e, err := r.SplitError(name, m, BaseDataFrac)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.SplitTiming(name, m, BaseDataFrac)
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("%s/split/M%d", name, m)
			g.errs[key] = math.Float64bits(e)
			g.cycles[key] = res.Cycles
			g.timing[key] = res
		}
		e, err := r.UnifiedError(name, BaseMapBits, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.UnifiedTiming(name, BaseMapBits, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		g.errs[name+"/uni"] = math.Float64bits(e)
		g.cycles[name+"/uni"] = res.Cycles
		g.timing[name+"/uni"] = res
	}
	// Rendered output: Table 2 plus a map-space sweep over the two split
	// configurations (same shape as Fig 9, restricted to the grid).
	t2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	errT, runT, err := r.errRuntimeSweep("err", "run",
		[]int{12, 14}, func(m int) (int, float64) { return m, BaseDataFrac },
		func(m int) string { return fmt.Sprintf("M%d", m) })
	if err != nil {
		t.Fatal(err)
	}
	g.rows = append(g.rows, t2.Format(), errT.Format(), runT.Format())
	return g
}

func compareGrids(t *testing.T, label string, serial, parallel *gridResults) {
	t.Helper()
	for k, v := range serial.errs {
		if parallel.errs[k] != v {
			t.Errorf("%s: error value %s differs: %x vs %x", label, k, v, parallel.errs[k])
		}
	}
	for k, v := range serial.cycles {
		if parallel.cycles[k] != v {
			t.Errorf("%s: cycles %s differ: %d vs %d", label, k, v, parallel.cycles[k])
		}
	}
	for k, a := range serial.timing {
		b := parallel.timing[k]
		if a.Instructions != b.Instructions ||
			!reflect.DeepEqual(a.PerCoreCycles, b.PerCoreCycles) ||
			!reflect.DeepEqual(a.Totals, b.Totals) ||
			!reflect.DeepEqual(a.Hier, b.Hier) {
			t.Errorf("%s: timing result %s differs beyond cycles", label, k)
		}
	}
	for i := range serial.rows {
		if serial.rows[i] != parallel.rows[i] {
			t.Errorf("%s: rendered table %d differs:\n--- serial ---\n%s--- parallel ---\n%s",
				label, i, serial.rows[i], parallel.rows[i])
		}
	}
}

// TestSerialParallelDifferential runs the reduced grid through the serial
// path (lazy, single-goroutine memoization — the pre-engine behaviour) and
// through the parallel engine, and asserts every error value, timing
// result, and rendered table row is bit-identical.
func TestSerialParallelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	serial := collect(t, diffRunner(0.05, 1)) // no Prewarm: lazy serial path

	par := diffRunner(0.05, 4)
	if err := par.Prewarm(diffGrid()); err != nil {
		t.Fatal(err)
	}
	parallel := collect(t, par)

	compareGrids(t, "serial-vs-parallel", serial, parallel)
}

// TestParallelDeterminism runs the parallel engine twice with different
// worker counts (and under -cpu 1,4 with different GOMAXPROCS) and asserts
// the outputs are identical: scheduling order must not leak into results.
// Every workload RNG is seeded per benchmark instance and every simulation
// owns its state, so any mismatch here is a real ordering leak.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var runs []*gridResults
	for _, workers := range []int{2, 4} {
		r := diffRunner(0.05, workers)
		if err := r.Prewarm(diffGrid()); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, collect(t, r))
	}
	compareGrids(t, "run1-vs-run2", runs[0], runs[1])
}

// TestParallelSpeedup measures the reduced grid's wall-clock under the
// serial path and the parallel engine. It only runs on machines with at
// least 4 CPUs (the acceptance target: ≥2× on ≥4 cores); elsewhere the
// BenchmarkGridSerial/BenchmarkGridParallel pair in the root package
// provides the measurement.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	// Gate on physical CPUs, not GOMAXPROCS: under `go test -cpu 4` on a
	// single-core machine GOMAXPROCS is 4 but no real parallelism exists.
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU=%d < 4; speedup not measurable", runtime.NumCPU())
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4; speedup not measurable", runtime.GOMAXPROCS(0))
	}
	grid := Grid{MapSpaces: MapSpaces, DataFracs: DataFracs, UniFracs: UniFracs}

	mk := func(workers int) *Runner {
		r := NewRunner(0.1)
		r.Only = []string{"blackscholes", "inversek2j", "jpeg", "kmeans"}
		r.Workers = workers
		return r
	}
	start := time.Now()
	if err := mk(1).Prewarm(grid); err != nil {
		t.Fatal(err)
	}
	serialD := time.Since(start)

	start = time.Now()
	if err := mk(4).Prewarm(grid); err != nil {
		t.Fatal(err)
	}
	parallelD := time.Since(start)

	speedup := float64(serialD) / float64(parallelD)
	t.Logf("serial %v, parallel %v, speedup %.2fx on %d CPUs",
		serialD, parallelD, speedup, runtime.GOMAXPROCS(0))
	if speedup < 1.2 {
		t.Errorf("parallel engine slower than expected: %.2fx (want ≥1.2x; target ≥2x)", speedup)
	}
}

// TestLogLinesAtomic verifies concurrent workers cannot interleave progress
// output mid-line: every line written during a parallel prewarm is one of
// the known whole-line forms.
func TestLogLinesAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var buf syncBuffer
	r := diffRunner(0.05, 4)
	r.Log = &buf
	if err := r.Prewarm(diffGrid()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var engineLines int
	for _, l := range lines {
		if l == "" {
			t.Errorf("empty log line (interleaved write?)")
			continue
		}
		if !strings.HasPrefix(l, "[") {
			t.Errorf("malformed log line %q", l)
		}
		if strings.Contains(l, "] done ") || strings.Contains(l, "] skip ") || strings.Contains(l, "] FAIL ") {
			engineLines++
		}
	}
	// The engine reports one "[k/N] done" line per task: 2 baselines + 2×(2
	// split configs × 2 runs + 1 unified config × 2 runs) = 14.
	if engineLines != 14 {
		t.Errorf("engine progress lines = %d, want 14\n%s", engineLines, buf.String())
	}
}

// syncBuffer is a mutex-guarded strings.Builder for capturing concurrent
// log output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
