package sweep

import (
	"io"
	"sort"

	"doppelganger/internal/metrics"
)

// TaskMetrics is one simulation task's counter snapshot, labeled by the
// runner's memo key (e.g. "split/jpeg/14/0.25/timing").
type TaskMetrics struct {
	Task    string
	Samples []metrics.Sample
}

// instrument hands out a fresh child registry for one simulation task, or
// nil (the zero-cost disabled path) when the runner has no metrics sink.
// Each task gets its own registry so per-task snapshots stay isolated even
// while the worker pool runs tasks concurrently; collect folds them into the
// aggregate.
func (r *Runner) instrument() *metrics.Registry {
	if r.Metrics == nil {
		return nil
	}
	return metrics.NewRegistry()
}

// collect merges a completed task's child registry into the runner-wide
// aggregate and records a labeled snapshot. Merging is commutative, so the
// aggregate is identical for every worker count and scheduling order.
func (r *Runner) collect(task string, child *metrics.Registry) {
	if r.Metrics == nil || child == nil {
		return
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	r.Metrics.Merge(child)
	r.taskSnaps = append(r.taskSnaps, TaskMetrics{Task: task, Samples: child.Snapshot()})
}

// nextTracePID allocates a process lane for one timing run in the shared
// Chrome trace.
func (r *Runner) nextTracePID() int {
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	r.tracePIDs++
	return r.tracePIDs
}

// TaskSnapshots returns the per-task snapshots collected so far, sorted by
// task label (collection order depends on worker scheduling; the sorted view
// is deterministic).
func (r *Runner) TaskSnapshots() []TaskMetrics {
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	out := make([]TaskMetrics, len(r.taskSnaps))
	copy(out, r.taskSnaps)
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// WriteMetricsJSONL emits every per-task snapshot (sorted by task label)
// followed by the runner-wide aggregate under the task label "total", one
// JSON object per line. A runner without a metrics sink writes nothing.
func (r *Runner) WriteMetricsJSONL(w io.Writer) error {
	if r.Metrics == nil {
		return nil
	}
	for _, tm := range r.TaskSnapshots() {
		if err := metrics.WriteJSONL(w, tm.Task, tm.Samples); err != nil {
			return err
		}
	}
	return r.Metrics.WriteJSONL(w, "total")
}
