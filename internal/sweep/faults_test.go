package sweep

import (
	"math"
	"strings"
	"testing"
)

// TestFaultErrorUnknownOrg verifies a bad organization surfaces as an error
// before any simulation runs.
func TestFaultErrorUnknownOrg(t *testing.T) {
	r := NewRunner(0.05)
	if _, err := r.FaultError("kmeans", "no-such-org", 1e-4); err == nil {
		t.Fatal("want error for unknown organization")
	}
}

// TestGridForFaults verifies the fault sweep is explicit-only: GridFor
// enables it by name, and the full grid never schedules it.
func TestGridForFaults(t *testing.T) {
	if g := GridFor("faults"); !g.Faults {
		t.Error("GridFor(faults) did not enable fault runs")
	}
	if g := GridFor("fig9"); g.Faults {
		t.Error("fig9 grid scheduled fault runs")
	}
	if FullGrid(true).Faults {
		t.Error("FullGrid scheduled fault runs")
	}
}

// TestFaultSweepDeterministic is the fault-layer acceptance check: the same
// FaultSeed must produce bit-identical fault errors, injection counts and
// rendered tables at any worker count, because every injector stream is
// derived from (seed, task key) alone, never from scheduling.
func TestFaultSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	run := func(workers int) (string, map[string]uint64) {
		r := NewRunner(0.05)
		r.Only = []string{"blackscholes", "kmeans"}
		r.Workers = workers
		r.FaultSeed = 42
		r.FaultRates = []float64{1e-4}
		if err := r.Prewarm(Grid{Benchmarks: r.Only, Faults: true}); err != nil {
			t.Fatal(err)
		}
		tbl, err := r.FaultSweep()
		if err != nil {
			t.Fatal(err)
		}
		raw := map[string]uint64{}
		for _, name := range r.Only {
			for _, org := range FaultOrgs {
				v, err := r.FaultError(name, org, 1e-4)
				if err != nil {
					t.Fatal(err)
				}
				raw[name+"/"+org] = math.Float64bits(v)
			}
		}
		return tbl.Format(), raw
	}
	tbl2, raw2 := run(2)
	tbl4, raw4 := run(4)
	if tbl2 != tbl4 {
		t.Errorf("fault tables differ across worker counts:\n--- workers=2 ---\n%s--- workers=4 ---\n%s", tbl2, tbl4)
	}
	for k, v := range raw2 {
		if raw4[k] != v {
			t.Errorf("fault error %s differs: %x vs %x", k, v, raw4[k])
		}
	}
	// The table lists every benchmark×org row plus per-org averages.
	if rows := strings.Count(tbl2, "\n"); rows < len(FaultOrgs)*3 {
		t.Errorf("fault table suspiciously small:\n%s", tbl2)
	}
}

// TestFaultSeedChangesSites verifies different seeds actually change the
// injected fault stream (guarding against a seed that is silently ignored):
// with a fault rate high enough to guarantee injections, two seeds must
// disagree somewhere across the suite's fault errors.
func TestFaultSeedChangesSites(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	errFor := func(seed uint64) uint64 {
		r := NewRunner(0.05)
		r.Only = []string{"kmeans"}
		r.FaultSeed = seed
		v, err := r.FaultError("kmeans", "baseline", 1e-2)
		if err != nil {
			t.Fatal(err)
		}
		return math.Float64bits(v)
	}
	a, b := errFor(1), errFor(2)
	if a == b {
		t.Skipf("seeds 1 and 2 coincide on kmeans (possible but unlikely); got %x", a)
	}
}
