package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// memo is a mutex-guarded, singleflight-style cache keyed by string. The
// first caller of Do for a key runs the computation; concurrent callers of
// the same key block until it finishes and share its result, so every key
// is computed exactly once even when many engine workers ask for it at the
// same time. Distinct keys compute concurrently — the lock only guards the
// entry map, never a computation.
type memo[V any] struct {
	mu       sync.Mutex
	entries  map[string]*memoEntry[V]
	computes atomic.Int64
}

type memoEntry[V any] struct {
	ready chan struct{} // closed once val/err are set
	val   V
	err   error
}

func newMemo[V any]() *memo[V] {
	return &memo[V]{entries: make(map[string]*memoEntry[V])}
}

// Do returns the value for key, running compute if no caller has before.
// A panic inside compute is converted to an error (and delivered to every
// waiter) so a failed computation can never strand goroutines blocked on
// the entry.
func (m *memo[V]) Do(key string, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &memoEntry[V]{ready: make(chan struct{})}
	m.entries[key] = e
	m.mu.Unlock()

	m.computes.Add(1)
	func() {
		defer func() {
			if p := recover(); p != nil {
				e.err = fmt.Errorf("sweep: computing %s: panic: %v", key, p)
			}
			close(e.ready)
		}()
		e.val, e.err = compute()
	}()
	return e.val, e.err
}

// Computes reports how many computations actually ran (cache hits and
// singleflight waiters do not count); the concurrency tests use it to prove
// each key is computed once.
func (m *memo[V]) Computes() int64 { return m.computes.Load() }

// Len reports how many keys are cached.
func (m *memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
