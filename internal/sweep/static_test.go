package sweep

import (
	"fmt"
	"testing"
)

// TestStaticExperiments prints Table 3 and Fig. 13 and checks the headline
// area claims: the paper reports 1.36×/1.55×/1.70× LLC area reductions for
// 1/2, 1/4, 1/8 data arrays and 3.15× for uniDoppelgänger at 1/4.
func TestStaticExperiments(t *testing.T) {
	r := NewRunner(1)
	t3 := r.Table3()
	t.Logf("\n%s", t3.Format())
	f13 := r.Fig13()
	t.Logf("\n%s", f13.Format())

	// Parse the split 1/4 row's reduction.
	checks := map[string]struct {
		row       int
		paper     float64
		tolerance float64
	}{
		"split 1/2": {1, 1.36, 0.15},
		"split 1/4": {2, 1.55, 0.15},
		"split 1/8": {3, 1.70, 0.17},
		"uni 3/4":   {4, 1.0, 99}, // paper value unreadable from text; sanity only
		"uni 1/4":   {6, 3.15, 0.4},
	}
	for name, c := range checks {
		var got float64
		if _, err := sscanRatio(f13.Rows[c.row][3], &got); err != nil {
			t.Fatalf("%s: bad ratio cell %q", name, f13.Rows[c.row][3])
		}
		if got < c.paper-c.tolerance || got > c.paper+c.tolerance {
			t.Errorf("%s: area reduction %.2fx, paper %.2fx", name, got, c.paper)
		}
	}
}

func sscanRatio(cell string, out *float64) (int, error) {
	return fmt.Sscanf(cell, "%fx", out)
}
