package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

// testCapture builds a small but fully-featured capture: two annotated
// regions, a sparse memory image spanning non-adjacent pages, two cores
// with interleaved accesses, and an output with sign/NaN-adjacent bit
// patterns worth preserving exactly.
func testCapture(t testing.TB) *Capture {
	t.Helper()
	ann, err := approx.NewAnnotations(
		approx.Region{Name: "prices", Start: 0x1000, End: 0x2000, Type: memdata.F32, Min: -1, Max: 1},
		approx.Region{Name: "pixels", Start: 0x0010_0000, End: 0x0010_4000, Type: memdata.U8, Min: 0, Max: 255},
	)
	if err != nil {
		t.Fatal(err)
	}
	st := memdata.NewStore()
	st.WriteF32(0x1000, 0.5)
	st.WriteF32(0x1044, -2.25)
	st.WriteU64(0x0010_0000, 0xDEADBEEFCAFEBABE)
	st.WriteU8(0xFFFF_FFC0, 7) // last block of the address space
	rec := NewRecorder(2)
	rec.Work(0, 5)
	rec.Access(0, 0x1000, false, 4, 0, true)
	rec.Access(1, 0x0010_0000, true, 8, 0xDEADBEEFCAFEBABE, false)
	rec.Work(0, 2)
	rec.Access(0, 0x1044, true, 4, 42, true)
	rec.Access(1, 0xFFFF_FFC0, false, 1, 0, false)
	return &Capture{
		Header: FileHeader{
			Benchmark: "blackscholes",
			Scale:     0.25,
			Cores:     2,
			Seed:      7,
			ConfigKey: "dgtf1|base/blackscholes|scale=0.25|cores=2",
		},
		Annotations: ann,
		InitialMem:  st,
		Recorder:    rec,
		Output:      []float64{1, -2.5, math.Copysign(0, -1), 1e-308},
	}
}

func encodeCapture(t testing.TB, c *Capture) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func storeBlocks(st *memdata.Store) map[memdata.Addr]memdata.Block {
	m := map[memdata.Addr]memdata.Block{}
	st.ForEachBlock(func(a memdata.Addr, b *memdata.Block) { m[a] = *b })
	return m
}

func TestCaptureRoundTrip(t *testing.T) {
	c := testCapture(t)
	got, err := ReadCapture(bytes.NewReader(encodeCapture(t, c)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != c.Header {
		t.Fatalf("header changed: %+v -> %+v", c.Header, got.Header)
	}
	wantR, gotR := c.Annotations.Regions(), got.Annotations.Regions()
	if len(gotR) != len(wantR) {
		t.Fatalf("region count changed: %d -> %d", len(wantR), len(gotR))
	}
	for i := range wantR {
		if gotR[i] != wantR[i] {
			t.Fatalf("region %d changed: %+v -> %+v", i, wantR[i], gotR[i])
		}
	}
	wantM, gotM := storeBlocks(c.InitialMem), storeBlocks(got.InitialMem)
	if len(gotM) != len(wantM) {
		t.Fatalf("block count changed: %d -> %d", len(wantM), len(gotM))
	}
	for a, b := range wantM {
		if gotM[a] != b {
			t.Fatalf("block %v payload changed", a)
		}
	}
	if len(got.Recorder.Cores) != len(c.Recorder.Cores) {
		t.Fatalf("core count changed: %d -> %d", len(c.Recorder.Cores), len(got.Recorder.Cores))
	}
	for i, tr := range c.Recorder.Cores {
		if len(got.Recorder.Cores[i]) != len(tr) {
			t.Fatalf("core %d record count changed", i)
		}
		for j := range tr {
			if got.Recorder.Cores[i][j] != tr[j] {
				t.Fatalf("core %d record %d changed: %+v -> %+v", i, j, tr[j], got.Recorder.Cores[i][j])
			}
		}
	}
	if len(got.Recorder.Order) != len(c.Recorder.Order) {
		t.Fatalf("order length changed: %d -> %d", len(c.Recorder.Order), len(got.Recorder.Order))
	}
	for i := range c.Recorder.Order {
		if got.Recorder.Order[i] != c.Recorder.Order[i] {
			t.Fatalf("order entry %d changed", i)
		}
	}
	if len(got.Output) != len(c.Output) {
		t.Fatalf("output length changed: %d -> %d", len(c.Output), len(got.Output))
	}
	for i := range c.Output {
		if math.Float64bits(got.Output[i]) != math.Float64bits(c.Output[i]) {
			t.Fatalf("output %d changed bits: %x -> %x", i,
				math.Float64bits(c.Output[i]), math.Float64bits(got.Output[i]))
		}
	}
}

// TestCaptureOutputOnly proves the lite decode mode: header, annotations and
// output are materialized and bit-identical to the full decode, memory and
// trace streams are not, and integrity is still enforced end to end — a
// corrupted byte anywhere in the file is rejected even when it lies in a
// section the lite decode skips.
func TestCaptureOutputOnly(t *testing.T) {
	c := testCapture(t)
	data := encodeCapture(t, c)
	got, err := ReadCaptureOutput(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != c.Header {
		t.Fatalf("header changed: %+v -> %+v", c.Header, got.Header)
	}
	if len(got.Annotations.Regions()) != len(c.Annotations.Regions()) {
		t.Fatalf("region count changed")
	}
	if got.InitialMem != nil || got.Recorder != nil {
		t.Fatalf("lite decode materialized skipped sections: mem=%v rec=%v",
			got.InitialMem != nil, got.Recorder != nil)
	}
	if len(got.Output) != len(c.Output) {
		t.Fatalf("output length changed: %d -> %d", len(c.Output), len(got.Output))
	}
	for i := range c.Output {
		if math.Float64bits(got.Output[i]) != math.Float64bits(c.Output[i]) {
			t.Fatalf("output %d changed bits", i)
		}
	}
	// Integrity still covers skipped sections: flip one byte in every
	// position and demand rejection (the digest guards all of them).
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x80
		if _, err := ReadCaptureOutput(bytes.NewReader(bad)); err == nil {
			t.Fatalf("lite decode accepted a corrupt byte at offset %d", i)
		}
	}
	// And the file-path variant agrees.
	path := filepath.Join(t.TempDir(), "lite.dgt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadCaptureOutputFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Header != c.Header || len(fromFile.Output) != len(c.Output) {
		t.Fatalf("file variant disagrees with reader variant")
	}
}

// TestCaptureBytesDeterministic proves the encoding is byte-stable: the same
// capture always serializes to the same bytes (memory blocks are walked in
// address order, never map order), so content digests and warm-cache
// comparisons are meaningful.
func TestCaptureBytesDeterministic(t *testing.T) {
	a := encodeCapture(t, testCapture(t))
	b := encodeCapture(t, testCapture(t))
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of identical captures differ")
	}
	// And a decode→re-encode cycle reproduces the original bytes exactly.
	c, err := ReadCapture(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeCapture(t, c), a) {
		t.Fatal("re-encode after decode changed the bytes")
	}
}

// TestCaptureRejections feeds the decoder a catalogue of hostile or damaged
// inputs. Every one must fail with an error that names the problem — never
// a panic, never a silent success.
func TestCaptureRejections(t *testing.T) {
	good := encodeCapture(t, testCapture(t))
	flip := func(i int) []byte {
		b := append([]byte(nil), good...)
		b[i] ^= 0x40
		return b
	}
	cases := []struct {
		name string
		data []byte
		want string // substring the error must contain
	}{
		{"empty", nil, "preamble"},
		{"short preamble", good[:10], "preamble"},
		{"bad magic", flip(0), "magic"},
		{"bad version", flip(4), "version"},
		{"bad digest", flip(8), ""}, // surfaces as section CRC or digest mismatch
		{"section id flipped", flip(16), "out of order"},
		{"payload corrupted", flip(20), "crc mismatch"},
		{"truncated mid-section", good[:len(good)/2], ""},
		{"truncated before crc", good[:len(good)-3], ""},
		{"trailing bytes", append(append([]byte(nil), good...), 0), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCapture(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCaptureHostileLengths claims absurd section and record counts: the
// decoder must fail at the real EOF without allocating proportionally to
// the lie.
func TestCaptureHostileLengths(t *testing.T) {
	// A section claiming ~2 GB of payload backed by 4 real bytes.
	var b bytes.Buffer
	b.WriteString(captureMagic)
	b.Write([]byte{1, 0, 0, 0}) // version 1, flags 0
	b.Write(make([]byte, 8))    // digest (never reached)
	b.WriteByte(secHeader)
	b.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x07}) // uvarint ≈ 2^31-1
	b.WriteString("lies")
	if _, err := ReadCapture(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("2GB claimed length accepted")
	}

	// Beyond the sanity bound entirely.
	b.Reset()
	b.WriteString(captureMagic)
	b.Write([]byte{1, 0, 0, 0})
	b.Write(make([]byte, 8))
	b.WriteByte(secHeader)
	b.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // uvarint 2^64-1
	if _, err := ReadCapture(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("2^64 claimed length accepted")
	}
}

// TestWriteFileAtomic checks the persist path: a successful WriteFile is
// readable back, a failed one (missing directory) leaves nothing behind,
// and no temp files linger either way.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	c := testCapture(t)
	path := filepath.Join(dir, "cap.dgt")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != c.Header {
		t.Fatalf("header changed through the file: %+v", got.Header)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "cap.dgt" {
		t.Fatalf("unexpected directory contents after write: %v", ents)
	}
	if err := c.WriteFile(filepath.Join(dir, "missing", "cap.dgt")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	// An unencodable capture must fail before touching the target file.
	bad := &Capture{Header: c.Header, Annotations: c.Annotations, InitialMem: c.InitialMem,
		Recorder: &Recorder{Cores: make([]Trace, 1), Order: []uint16{0}}} // order/stream mismatch
	if err := bad.WriteFile(path); err == nil {
		t.Fatal("inconsistent capture persisted")
	}
	if got2, err := ReadCaptureFile(path); err != nil || got2.Header != c.Header {
		t.Fatalf("failed write damaged the existing file: %v", err)
	}
}

// TestCursorOrder proves the cursor yields exactly the recorded global
// interleaving, and that validation rejects inconsistent order indexes.
func TestCursorOrder(t *testing.T) {
	rec := testCapture(t).Recorder
	cur, err := rec.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != rec.Len() {
		t.Fatalf("cursor length %d, recorder has %d", cur.Len(), rec.Len())
	}
	for pass := 0; pass < 2; pass++ {
		pos := make([]int, len(rec.Cores))
		for i := 0; ; i++ {
			c, r := cur.Next()
			if c < 0 {
				if i != rec.Len() {
					t.Fatalf("pass %d: cursor ended after %d of %d", pass, i, rec.Len())
				}
				break
			}
			if uint16(c) != rec.Order[i] {
				t.Fatalf("pass %d access %d: core %d, order says %d", pass, i, c, rec.Order[i])
			}
			if *r != rec.Cores[c][pos[c]] {
				t.Fatalf("pass %d access %d: wrong record", pass, i)
			}
			pos[c]++
		}
		cur.Reset()
	}

	if _, err := NewRecorder(2).Cursor(); err != nil {
		t.Fatalf("empty recorder must cursor cleanly: %v", err)
	}
	legacy := NewRecorder(1)
	legacy.Cores[0] = Trace{{Addr: 64}} // stream without an order index
	if _, err := legacy.Cursor(); err == nil {
		t.Fatal("order-less recorder accepted")
	}
	bad := NewRecorder(1)
	bad.Access(0, 64, false, 4, 0, false)
	bad.Order[0] = 3 // names a core that doesn't exist
	if _, err := bad.Cursor(); err == nil {
		t.Fatal("out-of-range order entry accepted")
	}
}

// TestCursorZeroAlloc pins the steady-state replay read path at zero
// allocations per full walk: functional replay's per-access cost is a few
// slice operations, nothing for the garbage collector.
func TestCursorZeroAlloc(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 4096; i++ {
		rec.Work(i%4, 3)
		rec.Access(i%4, memdata.Addr(i*64), i%3 == 0, 4, uint64(i), i%2 == 0)
	}
	cur, err := rec.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		cur.Reset()
		for {
			c, r := cur.Next()
			if c < 0 {
				break
			}
			_ = r.Addr
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state replay read path allocates %.0f per walk, want 0", allocs)
	}
}

// --- semantic corruption: valid checksums, hostile content ---

type rawSection struct {
	id      byte
	payload []byte
}

// sectionsOf splits an encoded capture into its framed sections.
func sectionsOf(t *testing.T, data []byte) []rawSection {
	t.Helper()
	rest := data[16:]
	var secs []rawSection
	for len(rest) > 0 {
		id := rest[0]
		n, k := binary.Uvarint(rest[1:])
		if k <= 0 || 1+k+int(n)+4 > len(rest) {
			t.Fatal("bad section frame in a freshly encoded capture")
		}
		secs = append(secs, rawSection{id, append([]byte(nil), rest[1+k:1+k+int(n)]...)})
		rest = rest[1+k+int(n)+4:]
	}
	return secs
}

// rebuild assembles a full capture file — valid section CRCs and a valid
// digest — from raw sections, so the decoder's semantic checks, not the
// checksums, are what reject the content.
func rebuild(secs []rawSection) []byte {
	var body bytes.Buffer
	for _, s := range secs {
		appendSection(&body, s.id, s.payload)
	}
	out := make([]byte, 0, 16+body.Len())
	out = append(out, captureMagic...)
	out = binary.LittleEndian.AppendUint16(out, CaptureVersion)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(body.Bytes(), crcTable))
	return append(out, body.Bytes()...)
}

// TestCaptureSemanticRejections replaces one well-formed section payload at
// a time with hostile content that passes every checksum: lied-about
// counts, out-of-range values, inconsistent cross-section state. Each must
// fail with an error naming the problem, before any allocation
// proportional to the lie.
func TestCaptureSemanticRejections(t *testing.T) {
	good := sectionsOf(t, encodeCapture(t, testCapture(t)))
	idx := map[byte]int{}
	for i, s := range good {
		idx[s.id] = i
	}
	mutate := func(id byte, build func(w *sectionWriter)) []byte {
		secs := append([]rawSection(nil), good...)
		var w sectionWriter
		build(&w)
		secs[idx[id]] = rawSection{id, append([]byte(nil), w.buf.Bytes()...)}
		return rebuild(secs)
	}
	region := func(w *sectionWriter, name string, start, end uint64, typ byte) {
		w.str(name)
		w.uvarint(start)
		w.uvarint(end)
		w.buf.WriteByte(typ)
		w.u64(math.Float64bits(0))
		w.u64(math.Float64bits(1))
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"header name length lie", mutate(secHeader, func(w *sectionWriter) {
			w.uvarint(1 << 40)
		}), "benchmark name length"},
		{"header trailing garbage", mutate(secHeader, func(w *sectionWriter) {
			w.str("b")
			w.u64(0)
			w.uvarint(2)
			w.u64(0)
			w.str("k")
			w.buf.WriteString("junk")
		}), "trailing bytes"},
		{"region count beyond cap", mutate(secAnnotations, func(w *sectionWriter) {
			w.uvarint(1 << 40)
		}), "implausible region count"},
		{"region count beyond payload", mutate(secAnnotations, func(w *sectionWriter) {
			w.uvarint(1000)
		}), "exceeds payload"},
		{"region unknown element type", mutate(secAnnotations, func(w *sectionWriter) {
			w.uvarint(1)
			region(w, "r", 0x40, 0x80, 0xEE)
		}), "unknown element type"},
		{"region inverted bounds", mutate(secAnnotations, func(w *sectionWriter) {
			w.uvarint(1)
			region(w, "r", 0x80, 0x40, 0)
		}), "annotations invalid"},
		{"region beyond address space", mutate(secAnnotations, func(w *sectionWriter) {
			w.uvarint(1)
			region(w, "r", 0x40, 1<<40, 0)
		}), "32-bit address space"},
		{"memory count lie", mutate(secMemory, func(w *sectionWriter) {
			w.uvarint(1 << 40)
		}), "exceeds payload"},
		{"memory zero gap", mutate(secMemory, func(w *sectionWriter) {
			w.uvarint(2)
			w.uvarint(5)
			w.buf.Write(make([]byte, memdata.BlockSize))
			w.uvarint(0)
			w.buf.Write(make([]byte, memdata.BlockSize))
		}), "zero gap"},
		{"memory block beyond address space", mutate(secMemory, func(w *sectionWriter) {
			w.uvarint(1)
			w.uvarint(1 << 60)
			w.buf.Write(make([]byte, memdata.BlockSize))
		}), "beyond the 32-bit space"},
		{"trace core count beyond cap", mutate(secTraces, func(w *sectionWriter) {
			w.uvarint(4096)
		}), "implausible core count"},
		{"trace record count lie", mutate(secTraces, func(w *sectionWriter) {
			w.uvarint(1)
			w.uvarint(1 << 40)
		}), "exceeds payload"},
		{"trace record size overflow", mutate(secTraces, func(w *sectionWriter) {
			w.uvarint(1)
			w.uvarint(1)
			w.uvarint(0x100 << 2) // flags: size 256
			w.varint(0)
			w.uvarint(0)
		}), "exceeds a byte"},
		{"trace negative address", mutate(secTraces, func(w *sectionWriter) {
			w.uvarint(1)
			w.uvarint(1)
			w.uvarint(0)
			w.varint(-5)
			w.uvarint(0)
		}), "leaves the 32-bit space"},
		{"order count mismatch", mutate(secOrder, func(w *sectionWriter) {
			w.uvarint(0)
		}), "does not match"},
		{"order core out of range", mutate(secOrder, func(w *sectionWriter) {
			w.uvarint(4)
			w.uvarint(0)
			w.uvarint(1)
			w.uvarint(0)
			w.uvarint(7)
		}), "names core"},
		{"output count lie", mutate(secOutput, func(w *sectionWriter) {
			w.uvarint(1 << 40)
		}), "exceeds payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCapture(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("semantically hostile input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Sanity: the unmutated rebuild is accepted, so the rejections above
	// come from the mutations and not from the test's framing.
	if _, err := ReadCapture(bytes.NewReader(rebuild(good))); err != nil {
		t.Fatalf("rebuild of unmutated sections rejected: %v", err)
	}
}
