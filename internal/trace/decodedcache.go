package trace

import (
	"container/list"
	"sync"

	"doppelganger/internal/metrics"
)

// DecodedCache is a bounded LRU cache of fully decoded captures, keyed by
// whole-file digest (Capture.FileCRC — the value FileDigest reads from a
// file's 16-byte preamble). It sits above the on-disk store: a consumer
// probes the preamble, asks the cache, and only on a miss pays the full
// read + CRC + decode + memory-image reconstruction, after which the decoded
// capture is shared by every later cell that replays the same file.
//
// Cached captures are immutable by convention: replay clones InitialMem
// (page-granular COW) and only reads Recorder/Annotations/Output, so one
// decoded capture can be handed to any number of concurrent replays. The
// cache itself is safe for concurrent use and may be shared across runners
// (the sweep server attaches one cache to every shard).
//
// Eviction charges each entry its SizeBytes estimate against the byte
// budget, evicting least-recently-used entries once the budget is exceeded —
// except that the single most recent entry is always allowed to stay, even
// alone over budget, so a capture larger than the whole budget doesn't turn
// the cache into a thrash loop.
type DecodedCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // of *decodedEntry; front = most recently used
	entries map[uint64]*list.Element

	hits, misses, evictions uint64

	mHits, mMisses, mEvictions *metrics.Counter
	mBytes                     *metrics.Gauge
}

type decodedEntry struct {
	digest uint64
	c      *Capture
	size   int64
}

// DecodedCacheStats is a point-in-time snapshot of the cache's counters.
type DecodedCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Bytes     int64  `json:"bytes"`
	Entries   int    `json:"entries"`
}

// NewDecodedCache builds a cache bounded to roughly budgetBytes of decoded
// captures (estimated by Capture.SizeBytes). A budget <= 0 still caches the
// single most recent capture.
func NewDecodedCache(budgetBytes int64) *DecodedCache {
	return &DecodedCache{
		budget:  budgetBytes,
		lru:     list.New(),
		entries: make(map[uint64]*list.Element),
	}
}

// AttachMetrics mirrors the cache's counters into reg as
// trace.decoded_cache.{hits,misses,evictions} counters and a
// trace.decoded_cache.bytes gauge. nil detaches.
func (dc *DecodedCache) AttachMetrics(reg *metrics.Registry) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if reg == nil {
		dc.mHits, dc.mMisses, dc.mEvictions, dc.mBytes = nil, nil, nil, nil
		return
	}
	dc.mHits = reg.Counter("trace.decoded_cache.hits")
	dc.mMisses = reg.Counter("trace.decoded_cache.misses")
	dc.mEvictions = reg.Counter("trace.decoded_cache.evictions")
	dc.mBytes = reg.Gauge("trace.decoded_cache.bytes")
	dc.mBytes.Set(dc.bytes)
}

// Get returns the decoded capture with the given file digest, or nil. A hit
// marks the entry most recently used.
func (dc *DecodedCache) Get(digest uint64) *Capture {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	e, ok := dc.entries[digest]
	if !ok {
		dc.misses++
		if dc.mMisses != nil {
			dc.mMisses.Inc()
		}
		return nil
	}
	dc.hits++
	if dc.mHits != nil {
		dc.mHits.Inc()
	}
	dc.lru.MoveToFront(e)
	return e.Value.(*decodedEntry).c
}

// Put inserts a decoded capture under its file digest and evicts LRU entries
// until the budget holds again. Re-putting a resident digest only refreshes
// its recency: a digest names exact file bytes, so the capture cannot have
// changed.
func (dc *DecodedCache) Put(digest uint64, c *Capture) {
	if c == nil {
		return
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if e, ok := dc.entries[digest]; ok {
		dc.lru.MoveToFront(e)
		return
	}
	ent := &decodedEntry{digest: digest, c: c, size: c.SizeBytes()}
	dc.entries[digest] = dc.lru.PushFront(ent)
	dc.bytes += ent.size
	for dc.bytes > dc.budget && dc.lru.Len() > 1 {
		back := dc.lru.Back()
		victim := back.Value.(*decodedEntry)
		dc.lru.Remove(back)
		delete(dc.entries, victim.digest)
		dc.bytes -= victim.size
		dc.evictions++
		if dc.mEvictions != nil {
			dc.mEvictions.Inc()
		}
	}
	if dc.mBytes != nil {
		dc.mBytes.Set(dc.bytes)
	}
}

// Stats snapshots the cache's counters and occupancy.
func (dc *DecodedCache) Stats() DecodedCacheStats {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return DecodedCacheStats{
		Hits:      dc.hits,
		Misses:    dc.misses,
		Evictions: dc.evictions,
		Bytes:     dc.bytes,
		Entries:   dc.lru.Len(),
	}
}
