// Package trace defines the per-core memory access traces recorded by the
// functional simulator and replayed by the cycle-level timing simulator,
// mirroring the paper's methodology split (§4): application error is
// measured functionally, performance by simulating the same access stream
// against each LLC organization.
//
// Traces persist in two on-disk forms: the legacy per-core record stream
// (serialize.go, "DPTR", kept for trace bundles) and the capture file
// (file.go, "DGTC"): a versioned, CRC-guarded container holding everything
// a replay needs — header, annotations, initial memory image, per-core
// streams, the global interleaving order, and the run's output.
package trace

import (
	"fmt"

	"doppelganger/internal/memdata"
)

// Record is one dynamic memory operation by a core. Gap counts the
// non-memory instructions executed since the previous record, which the
// timing model converts into dispatch cycles. Store payloads (up to 8
// bytes) ride along so the timing simulator can maintain a functional image
// for Doppelgänger map computation.
type Record struct {
	Addr   memdata.Addr
	Val    uint64
	Gap    uint32
	Size   uint8
	Write  bool
	Approx bool
}

// Trace is the access stream of one core.
type Trace []Record

// Recorder accumulates per-core traces during functional simulation.
//
// Order records the global interleaving: one entry per Access, in the order
// the hierarchy performed them. The gang scheduler serializes every access,
// so appending here is race-free, and the recorded order IS the order in
// which the shared LLC observed the stream — replaying Cores[...] in Order
// reproduces the exact functional state evolution of the live run. (The
// timing simulator ignores Order: it re-schedules the per-core streams by
// its own ready times.)
type Recorder struct {
	Cores   []Trace
	Order   []uint16 // core id per access, in global access order
	pending []uint32 // non-memory instructions awaiting the next record
}

// NewRecorder creates a recorder for n cores.
func NewRecorder(n int) *Recorder {
	return &Recorder{Cores: make([]Trace, n), pending: make([]uint32, n)}
}

// Work accounts n non-memory instructions on a core.
func (r *Recorder) Work(core int, n int) {
	if r == nil {
		return
	}
	r.pending[core] += uint32(n)
}

// Access appends a memory operation for a core, consuming the pending gap.
func (r *Recorder) Access(core int, addr memdata.Addr, write bool, size int, val uint64, approxFlag bool) {
	if r == nil {
		return
	}
	r.Cores[core] = append(r.Cores[core], Record{
		Addr:   addr,
		Val:    val,
		Gap:    r.pending[core],
		Size:   uint8(size),
		Write:  write,
		Approx: approxFlag,
	})
	r.Order = append(r.Order, uint16(core))
	r.pending[core] = 0
}

// Len returns the total number of records across cores.
func (r *Recorder) Len() int {
	total := 0
	for _, t := range r.Cores {
		total += len(t)
	}
	return total
}

// Instructions returns the total instruction count implied by the traces
// (memory operations plus gaps), used to normalize MPKI-style metrics.
func (r *Recorder) Instructions() uint64 {
	var total uint64
	for _, t := range r.Cores {
		for i := range t {
			total += uint64(t[i].Gap) + 1
		}
	}
	return total
}

// Cursor iterates a recorder's accesses in the recorded global order — the
// steady-state read path of functional replay. Construction validates the
// order index once so Next can be a handful of slice operations with no
// allocation and no per-step bounds reasoning.
type Cursor struct {
	cores []Trace
	order []uint16
	pos   []int
	i     int
}

// Cursor returns a global-order iterator over the recorded accesses. It
// fails if the recorder carries no order index (e.g. a legacy "DPTR"
// stream) or if the index is inconsistent with the per-core streams.
func (r *Recorder) Cursor() (*Cursor, error) {
	if len(r.Order) != r.Len() {
		return nil, fmt.Errorf("trace: order index has %d entries for %d records (recorded before global-order capture, or corrupt)",
			len(r.Order), r.Len())
	}
	counts := make([]int, len(r.Cores))
	for _, c := range r.Order {
		if int(c) >= len(r.Cores) {
			return nil, fmt.Errorf("trace: order index names core %d of %d", c, len(r.Cores))
		}
		counts[c]++
	}
	for c, n := range counts {
		if n != len(r.Cores[c]) {
			return nil, fmt.Errorf("trace: order index has %d accesses for core %d, stream has %d", n, c, len(r.Cores[c]))
		}
	}
	return &Cursor{cores: r.Cores, order: r.Order, pos: make([]int, len(r.Cores))}, nil
}

// Len returns the total number of accesses the cursor walks.
func (c *Cursor) Len() int { return len(c.order) }

// Next returns the next access in global order: the issuing core and a
// pointer into the recorded stream. It returns (-1, nil) once exhausted.
func (c *Cursor) Next() (core int, rec *Record) {
	if c.i >= len(c.order) {
		return -1, nil
	}
	cr := c.order[c.i]
	c.i++
	p := c.pos[cr]
	c.pos[cr] = p + 1
	return int(cr), &c.cores[cr][p]
}

// Reset rewinds the cursor to the first access without allocating.
func (c *Cursor) Reset() {
	c.i = 0
	for i := range c.pos {
		c.pos[i] = 0
	}
}
