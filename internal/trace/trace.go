// Package trace defines the per-core memory access traces recorded by the
// functional simulator and replayed by the cycle-level timing simulator,
// mirroring the paper's methodology split (§4): application error is
// measured functionally, performance by simulating the same access stream
// against each LLC organization.
package trace

import "doppelganger/internal/memdata"

// Record is one dynamic memory operation by a core. Gap counts the
// non-memory instructions executed since the previous record, which the
// timing model converts into dispatch cycles. Store payloads (up to 8
// bytes) ride along so the timing simulator can maintain a functional image
// for Doppelgänger map computation.
type Record struct {
	Addr   memdata.Addr
	Val    uint64
	Gap    uint32
	Size   uint8
	Write  bool
	Approx bool
}

// Trace is the access stream of one core.
type Trace []Record

// Recorder accumulates per-core traces during functional simulation.
type Recorder struct {
	Cores   []Trace
	pending []uint32 // non-memory instructions awaiting the next record
}

// NewRecorder creates a recorder for n cores.
func NewRecorder(n int) *Recorder {
	return &Recorder{Cores: make([]Trace, n), pending: make([]uint32, n)}
}

// Work accounts n non-memory instructions on a core.
func (r *Recorder) Work(core int, n int) {
	if r == nil {
		return
	}
	r.pending[core] += uint32(n)
}

// Access appends a memory operation for a core, consuming the pending gap.
func (r *Recorder) Access(core int, addr memdata.Addr, write bool, size int, val uint64, approxFlag bool) {
	if r == nil {
		return
	}
	r.Cores[core] = append(r.Cores[core], Record{
		Addr:   addr,
		Val:    val,
		Gap:    r.pending[core],
		Size:   uint8(size),
		Write:  write,
		Approx: approxFlag,
	})
	r.pending[core] = 0
}

// Len returns the total number of records across cores.
func (r *Recorder) Len() int {
	total := 0
	for _, t := range r.Cores {
		total += len(t)
	}
	return total
}

// Instructions returns the total instruction count implied by the traces
// (memory operations plus gaps), used to normalize MPKI-style metrics.
func (r *Recorder) Instructions() uint64 {
	var total uint64
	for _, t := range r.Cores {
		for i := range t {
			total += uint64(t[i].Gap) + 1
		}
	}
	return total
}
