package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// QuarantineDir is the subdirectory of a trace dir that holds condemned
// capture files. Scrub and the janitor never descend into it, so a
// quarantined file can never be replayed, re-verified, or re-quarantined —
// the one-way door that makes "quarantine exactly once" a structural
// property rather than a bookkeeping one.
const QuarantineDir = ".quarantine"

// maxQuarantineSuffix bounds the collision suffixes Quarantine tries before
// overwriting the oldest duplicate; a single identity being condemned this
// many times means the recorder itself is broken, and keeping every copy
// would turn a bug into a disk leak.
const maxQuarantineSuffix = 16

// Quarantine moves a condemned capture file into <traceDir>/.quarantine/
// and drops a "<name>.reason" file beside it explaining why. It returns the
// destination path. The move is a rename, so it is atomic and cannot
// half-copy the evidence; if the file is already gone (another process
// raced the same corruption and won) the quarantine is considered done and
// ("", nil) is returned. The reason file is best effort — failing to write
// it never fails the quarantine, because the quarantine's job is to unblock
// re-recording, not to archive forensics.
func Quarantine(fsys FS, traceDir, path, reason string) (string, error) {
	qdir := filepath.Join(traceDir, QuarantineDir)
	if err := fsys.MkdirAll(qdir); err != nil {
		return "", fmt.Errorf("trace: quarantine dir: %w", err)
	}
	base := filepath.Base(path)
	dest := filepath.Join(qdir, base)
	for i := 2; i <= maxQuarantineSuffix; i++ {
		if _, err := fsys.Stat(dest); errors.Is(err, os.ErrNotExist) {
			break
		}
		dest = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := fsys.Rename(path, dest); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", nil
		}
		return "", fmt.Errorf("trace: quarantine %s: %w", path, err)
	}
	writeReason(fsys, qdir, dest+".reason", reason)
	return dest, nil
}

// writeReason persists the condemnation reason atomically and best-effort.
func writeReason(fsys FS, qdir, path, reason string) {
	tmp, err := fsys.CreateTemp(qdir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return
	}
	if _, err := io.WriteString(tmp, strings.TrimSpace(reason)+"\n"); err != nil {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
	}
}
