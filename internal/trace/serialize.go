package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"doppelganger/internal/memdata"
)

// Binary trace format: a fixed header followed by per-core sections of
// packed records. Everything is little-endian.
//
//	magic   [4]byte  "DPTR"
//	version uint32   (1)
//	cores   uint32
//	per core: count uint64, then count × record
//	record: addr uint32, val uint64, gap uint32, size uint8, flags uint8
//	        (flags bit0 = write, bit1 = approx)
const (
	traceMagic   = "DPTR"
	traceVersion = 1
)

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// WriteTo serializes the recorder's traces. It returns the byte count.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(traceMagic)); err != nil {
		return n, err
	}
	var scratch [12]byte
	binary.LittleEndian.PutUint32(scratch[0:], traceVersion)
	binary.LittleEndian.PutUint32(scratch[4:], uint32(len(r.Cores)))
	if err := count(bw.Write(scratch[:8])); err != nil {
		return n, err
	}
	for _, t := range r.Cores {
		binary.LittleEndian.PutUint64(scratch[0:], uint64(len(t)))
		if err := count(bw.Write(scratch[:8])); err != nil {
			return n, err
		}
		var rec [18]byte
		for i := range t {
			e := &t[i]
			binary.LittleEndian.PutUint32(rec[0:], uint32(e.Addr))
			binary.LittleEndian.PutUint64(rec[4:], e.Val)
			binary.LittleEndian.PutUint32(rec[12:], e.Gap)
			rec[16] = e.Size
			rec[17] = 0
			if e.Write {
				rec[17] |= 1
			}
			if e.Approx {
				rec[17] |= 2
			}
			if err := count(bw.Write(rec[:])); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes traces previously written with WriteTo, replacing
// the recorder's contents.
func ReadFrom(rd io.Reader) (*Recorder, error) {
	br := bufio.NewReader(rd)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	cores := binary.LittleEndian.Uint32(hdr[8:])
	if cores > 1024 {
		return nil, fmt.Errorf("trace: implausible core count %d", cores)
	}
	r := NewRecorder(int(cores))
	for c := 0; c < int(cores); c++ {
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, fmt.Errorf("trace: core %d count: %w", c, err)
		}
		count := binary.LittleEndian.Uint64(cnt[:])
		if count > 1<<32 {
			return nil, fmt.Errorf("trace: implausible record count %d", count)
		}
		// Grow by appending with a capped initial capacity rather than
		// allocating count records up front: a corrupt or hostile count
		// field must not commit gigabytes before the short read surfaces.
		const capCap = 1 << 16
		t := make(Trace, 0, min64(count, capCap))
		var rec [18]byte
		for i := uint64(0); i < count; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: core %d record %d: %w", c, i, err)
			}
			t = append(t, Record{
				Addr:   memdata.Addr(binary.LittleEndian.Uint32(rec[0:])),
				Val:    binary.LittleEndian.Uint64(rec[4:]),
				Gap:    binary.LittleEndian.Uint32(rec[12:]),
				Size:   rec[16],
				Write:  rec[17]&1 != 0,
				Approx: rec[17]&2 != 0,
			})
		}
		r.Cores[c] = t
	}
	return r, nil
}
