package trace

import (
	"io"
	"os"
)

// FS is the narrow filesystem seam the trace store runs on. Production code
// uses OS (the real filesystem); tests inject fault-carrying
// implementations (see ChaosFS) to prove the store degrades gracefully
// under ENOSPC, short writes, torn renames and read errors.
//
// The seam covers exactly the operations the store performs — nothing
// process-wide (working directory, umask) leaks through it. Advisory
// locking (DirLock) intentionally stays on the real OS even when a fake FS
// is injected: flock coordinates real processes, and a simulated lock
// would only prove things about the simulation.
type FS interface {
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp)
	// opened for writing.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists dir, sorted by filename.
	ReadDir(dir string) ([]os.DirEntry, error)
	// Stat describes the named file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory itself, making a preceding rename
	// durable. Filesystems that cannot sync a directory may no-op.
	SyncDir(dir string) error
}

// File is the handle FS hands out: readable, writable, closable, syncable,
// and able to name itself (temp files are renamed into place by name).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Name returns the path the file was opened or created under.
	Name() string
}

// OS is the real filesystem: every FS method maps 1:1 onto the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)              { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error                   { return os.MkdirAll(dir, 0o755) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) Stat(name string) (os.FileInfo, error)       { return os.Stat(name) }

// SyncDir opens the directory and fsyncs it. This is the second half of the
// atomic-write commit protocol: rename makes the new name visible, the
// directory fsync makes it durable — without it a crash after rename can
// roll the directory entry back and silently lose a "committed" capture.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
