package trace

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"
)

// ChaosFS wraps another FS (the real one by default) and injects faults:
// probabilistic open/read/write/rename errors, short writes, per-operation
// latency, and bounded ENOSPC windows in which every mutating operation
// fails with syscall.ENOSPC. All randomness comes from one seeded source
// under a mutex, so a soak round is reproducible from its seed.
//
// Injected errors are real errno values (ENOSPC, EIO) wrapped with an
// "injected" marker, so production classification code sees exactly what a
// failing disk would produce while tests can still tell injected faults
// from genuine ones.
type ChaosFS struct {
	Inner FS // defaults to OS when nil

	// Fault probabilities in [0,1], applied per operation.
	OpenErr    float64 // Open fails with EIO
	ReadErr    float64 // a File.Read fails with EIO
	WriteErr   float64 // a File.Write fails with EIO
	RenameErr  float64 // Rename fails with EIO after removing the source ("torn rename")
	ShortWrite float64 // a File.Write persists only half its bytes then fails

	// Latency sleeps before every operation when non-zero.
	Latency time.Duration

	mu     sync.Mutex
	rng    *rand.Rand
	enospc int // mutating ops remaining that fail with ENOSPC
	counts FaultCounts
}

// FaultCounts tallies the faults a ChaosFS actually injected.
type FaultCounts struct {
	OpenErrs    int `json:"open_errs"`
	ReadErrs    int `json:"read_errs"`
	WriteErrs   int `json:"write_errs"`
	RenameErrs  int `json:"rename_errs"`
	ShortWrites int `json:"short_writes"`
	ENOSPC      int `json:"enospc"`
}

// Total is every injected fault across all kinds.
func (c FaultCounts) Total() int {
	return c.OpenErrs + c.ReadErrs + c.WriteErrs + c.RenameErrs + c.ShortWrites + c.ENOSPC
}

// NewChaosFS builds a chaos filesystem over the real one with the given
// seed and no faults armed; set the probability fields before use.
func NewChaosFS(seed int64) *ChaosFS {
	return &ChaosFS{Inner: OS, rng: rand.New(rand.NewSource(seed))}
}

// ENOSPCWindow arms a window in which the next n mutating operations
// (writes, syncs, renames, temp creation, mkdir) fail with ENOSPC, then the
// disk "recovers". Windows do not stack; the larger remainder wins.
func (c *ChaosFS) ENOSPCWindow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.enospc {
		c.enospc = n
	}
}

// Counts returns a snapshot of the injected-fault tallies.
func (c *ChaosFS) Counts() FaultCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

func (c *ChaosFS) inner() FS {
	if c.Inner != nil {
		return c.Inner
	}
	return OS
}

// roll decides one probabilistic fault under the lock.
func (c *ChaosFS) roll(p float64, count *int) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= p {
		return false
	}
	*count++
	return true
}

// spendENOSPC consumes one op from an armed ENOSPC window.
func (c *ChaosFS) spendENOSPC() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.enospc <= 0 {
		return false
	}
	c.enospc--
	c.counts.ENOSPC++
	return true
}

func (c *ChaosFS) sleep() {
	if c.Latency > 0 {
		time.Sleep(c.Latency)
	}
}

func injected(op string, errno error) error {
	return fmt.Errorf("chaosfs: injected %s: %w", op, errno)
}

func (c *ChaosFS) Open(name string) (File, error) {
	c.sleep()
	if c.roll(c.OpenErr, &c.counts.OpenErrs) {
		return nil, injected("open "+name, syscall.EIO)
	}
	f, err := c.inner().Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

func (c *ChaosFS) CreateTemp(dir, pattern string) (File, error) {
	c.sleep()
	if c.spendENOSPC() {
		return nil, injected("create "+dir, syscall.ENOSPC)
	}
	f, err := c.inner().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

// Rename injects two distinct failures: ENOSPC (metadata has nowhere to
// go, source survives) and the torn rename — the source is consumed but
// the destination never appears, exactly what a crash between a rename's
// unlink and link phases leaves behind on non-atomic filesystems.
func (c *ChaosFS) Rename(oldpath, newpath string) error {
	c.sleep()
	if c.spendENOSPC() {
		return injected("rename "+oldpath, syscall.ENOSPC)
	}
	if c.roll(c.RenameErr, &c.counts.RenameErrs) {
		c.inner().Remove(oldpath)
		return injected("rename "+oldpath, syscall.EIO)
	}
	return c.inner().Rename(oldpath, newpath)
}

func (c *ChaosFS) Remove(name string) error {
	c.sleep()
	return c.inner().Remove(name)
}

func (c *ChaosFS) MkdirAll(dir string) error {
	c.sleep()
	if c.spendENOSPC() {
		return injected("mkdir "+dir, syscall.ENOSPC)
	}
	return c.inner().MkdirAll(dir)
}

func (c *ChaosFS) ReadDir(dir string) ([]os.DirEntry, error) {
	c.sleep()
	return c.inner().ReadDir(dir)
}

func (c *ChaosFS) Stat(name string) (os.FileInfo, error) {
	c.sleep()
	return c.inner().Stat(name)
}

func (c *ChaosFS) SyncDir(dir string) error {
	c.sleep()
	if c.spendENOSPC() {
		return injected("syncdir "+dir, syscall.ENOSPC)
	}
	return c.inner().SyncDir(dir)
}

// chaosFile threads per-call read/write faults through a real file handle.
type chaosFile struct {
	fs *ChaosFS
	f  File
}

func (cf *chaosFile) Read(p []byte) (int, error) {
	cf.fs.sleep()
	if cf.fs.roll(cf.fs.ReadErr, &cf.fs.counts.ReadErrs) {
		return 0, injected("read "+cf.f.Name(), syscall.EIO)
	}
	return cf.f.Read(p)
}

func (cf *chaosFile) Write(p []byte) (int, error) {
	cf.fs.sleep()
	if cf.fs.spendENOSPC() {
		return 0, injected("write "+cf.f.Name(), syscall.ENOSPC)
	}
	if cf.fs.roll(cf.fs.ShortWrite, &cf.fs.counts.ShortWrites) {
		n, _ := cf.f.Write(p[:len(p)/2])
		return n, injected("short write "+cf.f.Name(), syscall.EIO)
	}
	if cf.fs.roll(cf.fs.WriteErr, &cf.fs.counts.WriteErrs) {
		return 0, injected("write "+cf.f.Name(), syscall.EIO)
	}
	return cf.f.Write(p)
}

func (cf *chaosFile) Close() error { return cf.f.Close() }

func (cf *chaosFile) Sync() error {
	cf.fs.sleep()
	if cf.fs.spendENOSPC() {
		return injected("sync "+cf.f.Name(), syscall.ENOSPC)
	}
	return cf.f.Sync()
}

func (cf *chaosFile) Name() string { return cf.f.Name() }
