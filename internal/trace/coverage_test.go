package trace

import (
	"encoding/binary"
	"hash/crc64"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestVerifyModeSpellings pins the flag vocabulary: every mode round-trips
// through its String spelling, unknown spellings are rejected with a
// message that lists the legal ones, and an out-of-range mode renders a
// debuggable placeholder instead of lying.
func TestVerifyModeSpellings(t *testing.T) {
	for _, m := range []VerifyMode{VerifyOff, VerifyOpen, VerifyFull} {
		got, err := ParseVerifyMode(m.String())
		if err != nil {
			t.Fatalf("ParseVerifyMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseVerifyMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := ParseVerifyMode("paranoid"); err == nil || !strings.Contains(err.Error(), "off, open or full") {
		t.Errorf("bad spelling error = %v, want the legal spellings listed", err)
	}
	if s := VerifyMode(9).String(); s != "VerifyMode(9)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// TestFileDigestIdentity proves the cheap preamble-only digest is exactly
// the CRC64 of the body the writer computed — the identity the sweep
// server keys its result cache on — and that damaged or unreadable
// preambles classify the same way the full reader would.
func TestFileDigestIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dgt")
	if err := testCapture(t).WriteFileFS(OS, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := crc64.Checksum(raw[16:], crcTable)
	got, err := FileDigest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("FileDigest = %016x, want body CRC64 %016x", got, want)
	}
	if got != binary.LittleEndian.Uint64(raw[8:16]) {
		t.Error("digest does not come from the preamble bytes")
	}

	// Damage classification: every preamble corruption is quarantineable;
	// an I/O-path failure is not.
	corrupt := func(name string, mutate func(b []byte)) string {
		b := append([]byte(nil), raw...)
		mutate(b)
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	badMagic := corrupt("magic.dgt", func(b []byte) { b[0] = 'X' })
	badVersion := corrupt("version.dgt", func(b []byte) { binary.LittleEndian.PutUint16(b[4:], CaptureVersion+1) })
	badFlags := corrupt("flags.dgt", func(b []byte) { binary.LittleEndian.PutUint16(b[6:], 0x8000) })
	tiny := filepath.Join(dir, "tiny.dgt")
	if err := os.WriteFile(tiny, raw[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{badMagic, badVersion, badFlags, tiny} {
		if _, err := FileDigest(p); !IsQuarantineable(err) {
			t.Errorf("FileDigest(%s) err = %v, want quarantineable", filepath.Base(p), err)
		}
		// The open-mode verifier must reach the same verdict via
		// checkPreamble.
		if err := VerifyFile(OS, p, VerifyOpen); !IsQuarantineable(err) {
			t.Errorf("VerifyFile(%s, open) err = %v, want quarantineable", filepath.Base(p), err)
		}
	}
	unavailable := NewChaosFS(11)
	unavailable.OpenErr = 1
	if _, err := FileDigestFS(unavailable, path); err == nil || IsQuarantineable(err) {
		t.Errorf("open failure classified as corruption: %v", err)
	}
}

// TestReadCaptureOutputOnly proves the output-only reader verifies the
// whole file but materializes just the sections cheap consumers need.
func TestReadCaptureOutputOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dgt")
	want := testCapture(t)
	if err := want.WriteFileFS(OS, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCaptureOutputFileFS(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Errorf("output-only read output = %v, want %v", got.Output, want.Output)
	}
	if got.Header.ConfigKey != want.Header.ConfigKey {
		t.Errorf("output-only read header key = %q, want %q", got.Header.ConfigKey, want.Header.ConfigKey)
	}
}

// TestChaosFSPassThrough pins the boring half of the chaos filesystem: with
// every fault probability at zero it must behave exactly like the real OS —
// including the directory operations the store's janitor leans on — and
// inject nothing, so a soak's fault counts are attributable entirely to the
// armed probabilities. Latency is set non-zero to exercise the delay path.
func TestChaosFSPassThrough(t *testing.T) {
	fsys := NewChaosFS(1)
	fsys.Latency = 100 * time.Microsecond
	sub := filepath.Join(t.TempDir(), "a", "b")
	if err := fsys.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "c.dgt")
	if err := testCapture(t).WriteFileFS(fsys, path); err != nil {
		t.Fatal(err)
	}
	if fi, err := fsys.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("Stat = %v, %v", fi, err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %d entries, %v; want the capture alone", len(ents), err)
	}
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(fsys, path, VerifyFull); err != nil {
		t.Fatalf("capture written through quiet chaos fs does not verify: %v", err)
	}
	if err := fsys.Remove(path); err != nil {
		t.Fatal(err)
	}
	if n := fsys.Counts().Total(); n != 0 {
		t.Errorf("quiet chaos fs injected %d faults", n)
	}
}

// TestOpenStoreDirUncreatable pins OpenStore's first failure mode: if the
// directory itself cannot come into existence there is no store, and the
// error names the directory.
func TestOpenStoreDirUncreatable(t *testing.T) {
	fsys := NewChaosFS(2)
	fsys.ENOSPCWindow(1)
	dir := filepath.Join(t.TempDir(), "traces")
	if _, err := OpenStore(fsys, dir, VerifyOpen); err == nil || !strings.Contains(err.Error(), dir) {
		t.Fatalf("OpenStore over full disk = %v, want error naming %s", err, dir)
	}
}

// TestStoreNilClose: Close on a nil store is a harmless no-op, so callers
// can defer it before checking OpenStore's error.
func TestStoreNilClose(t *testing.T) {
	var s *Store
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineReasonBestEffort proves the forensics are sacrificial: when
// the disk refuses the reason file's bytes, the quarantine itself still
// succeeds (the condemned capture is out of the replay path, which is the
// part correctness depends on) and no temp debris is left behind.
func TestQuarantineReasonBestEffort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.dgt")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewChaosFS(3)
	fsys.WriteErr = 1
	dest, err := Quarantine(fsys, dir, path, "digest mismatch")
	if err != nil || dest == "" {
		t.Fatalf("Quarantine = %q, %v", dest, err)
	}
	if _, err := os.Stat(dest); err != nil {
		t.Errorf("condemned file not moved: %v", err)
	}
	if _, err := os.Stat(dest + ".reason"); !os.IsNotExist(err) {
		t.Errorf("reason file exists despite write faults: %v", err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris in quarantine: %s", e.Name())
		}
	}

	// If even the quarantine directory cannot be created, Quarantine fails
	// loudly — the caller counts the file unreadable and degrades.
	blocked := NewChaosFS(4)
	blocked.ENOSPCWindow(1)
	src2 := filepath.Join(dir, "bad2.dgt")
	if err := os.WriteFile(src2, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Quarantine(blocked, dir, src2, "x"); err == nil || !strings.Contains(err.Error(), "quarantine dir") {
		t.Errorf("Quarantine with uncreatable dir = %v", err)
	}
}
