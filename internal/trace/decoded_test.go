package trace

import (
	"bytes"
	"testing"

	"doppelganger/internal/metrics"
)

// The digest metadata is what keys the decoded cache and groups batched
// replays: WriteTo and both decode modes must agree on it, the preamble
// probe must match it, and header-only differences must change FileCRC but
// not StreamDigest.
func TestDecodedDigestFields(t *testing.T) {
	c := testCapture(t)
	raw := encodeCapture(t, c)
	if c.FileCRC == 0 || c.StreamDigest == 0 {
		t.Fatalf("WriteTo left digests unset: file %016x stream %016x", c.FileCRC, c.StreamDigest)
	}

	full, err := ReadCapture(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if full.FileCRC != c.FileCRC || full.StreamDigest != c.StreamDigest {
		t.Fatalf("decode digests (file %016x stream %016x) differ from encode (file %016x stream %016x)",
			full.FileCRC, full.StreamDigest, c.FileCRC, c.StreamDigest)
	}
	lite, err := ReadCaptureOutput(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if lite.FileCRC != c.FileCRC || lite.StreamDigest != c.StreamDigest {
		t.Fatalf("output-only decode digests (file %016x stream %016x) differ from full (file %016x stream %016x)",
			lite.FileCRC, lite.StreamDigest, c.FileCRC, c.StreamDigest)
	}

	// The cheap preamble probe and the full decode must name the same file.
	var pre [16]byte
	copy(pre[:], raw[:16])
	if got := preambleDigest(pre); got != full.FileCRC {
		t.Fatalf("preamble digest %016x != decoded FileCRC %016x", got, full.FileCRC)
	}

	// A header-only change (different cell identity) keeps the stream digest
	// but moves the file digest.
	c2 := testCapture(t)
	c2.Header.ConfigKey = "dgtf1|other/blackscholes|scale=0.25|cores=2"
	c2.Header.Seed = 99
	encodeCapture(t, c2)
	if c2.StreamDigest != c.StreamDigest {
		t.Fatalf("header-only change moved the stream digest: %016x != %016x", c2.StreamDigest, c.StreamDigest)
	}
	if c2.FileCRC == c.FileCRC {
		t.Fatalf("header change did not move the file digest (%016x)", c2.FileCRC)
	}

	// A content change moves both.
	c3 := testCapture(t)
	c3.Output = append(c3.Output, 3.5)
	encodeCapture(t, c3)
	if c3.StreamDigest == c.StreamDigest {
		t.Fatalf("output change did not move the stream digest (%016x)", c3.StreamDigest)
	}
}

func TestDecodedCacheHitMissLRU(t *testing.T) {
	c := testCapture(t)
	dc := NewDecodedCache(1 << 20)

	if got := dc.Get(1); got != nil {
		t.Fatal("hit on an empty cache")
	}
	dc.Put(1, c)
	dc.Put(2, c)
	dc.Put(3, c)
	if got := dc.Get(2); got != c {
		t.Fatal("miss on a resident digest")
	}
	st := dc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 3 entries, 0 evictions", st)
	}
	if st.Bytes != 3*c.SizeBytes() {
		t.Fatalf("bytes = %d, want 3 x %d", st.Bytes, c.SizeBytes())
	}

	// Shrink-to-budget eviction is LRU: after touching 2, a flood of new
	// entries under a budget of ~2 captures must evict 1 and 3 before 2.
	small := NewDecodedCache(2*c.SizeBytes() + 1)
	small.Put(1, c)
	small.Put(2, c)
	small.Get(1)    // 1 is now more recent than 2
	small.Put(3, c) // over budget: evicts 2 (LRU)
	if small.Get(2) != nil {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if small.Get(1) == nil || small.Get(3) == nil {
		t.Fatal("recently used entries were evicted before the LRU one")
	}
}

// Satellite: eviction under memory pressure. A stream of decoded captures
// larger than the budget must keep the cache's byte estimate at or under
// budget (while more than one entry is resident), evict in LRU order, and
// count every eviction.
func TestDecodedCacheEvictionUnderMemoryPressure(t *testing.T) {
	c := testCapture(t)
	per := c.SizeBytes()
	const keep = 3
	dc := NewDecodedCache(keep * per)
	reg := metrics.NewRegistry()
	dc.AttachMetrics(reg)

	const n = 32
	for i := uint64(1); i <= n; i++ {
		dc.Put(i, c)
		if st := dc.Stats(); st.Bytes > keep*per {
			t.Fatalf("after put %d: %d bytes resident exceeds the %d budget", i, st.Bytes, keep*per)
		}
	}
	st := dc.Stats()
	if st.Entries != keep {
		t.Fatalf("entries = %d, want %d", st.Entries, keep)
	}
	if st.Evictions != n-keep {
		t.Fatalf("evictions = %d, want %d", st.Evictions, n-keep)
	}
	// The survivors are exactly the most recent puts.
	for i := uint64(1); i <= n-keep; i++ {
		if dc.Get(i) != nil {
			t.Fatalf("evicted digest %d still resident", i)
		}
	}
	for i := uint64(n - keep + 1); i <= n; i++ {
		if dc.Get(i) == nil {
			t.Fatalf("recent digest %d was evicted", i)
		}
	}

	// Metrics mirror the internal counters under the satellite's names.
	if got := reg.CounterValue("trace.decoded_cache.evictions"); got != st.Evictions {
		t.Fatalf("evictions metric = %d, want %d", got, st.Evictions)
	}
	if got := reg.CounterValue("trace.decoded_cache.hits"); got != keep {
		t.Fatalf("hits metric = %d, want %d", got, keep)
	}
	if got := reg.CounterValue("trace.decoded_cache.misses"); got != n-keep {
		t.Fatalf("misses metric = %d, want %d", got, n-keep)
	}
	if got := reg.GaugeValue("trace.decoded_cache.bytes"); got != dc.Stats().Bytes {
		t.Fatalf("bytes gauge = %d, want %d", got, dc.Stats().Bytes)
	}
}

// A capture bigger than the whole budget must still be cacheable alone —
// evicting the only entry would make every oversized trace thrash.
func TestDecodedCacheOversizedEntryStays(t *testing.T) {
	c := testCapture(t)
	dc := NewDecodedCache(1) // budget smaller than any capture
	dc.Put(7, c)
	if dc.Get(7) != c {
		t.Fatal("sole over-budget entry was evicted")
	}
	dc.Put(8, c) // a second over-budget entry evicts the first
	st := dc.Stats()
	if st.Entries != 1 || dc.Get(8) != c {
		t.Fatalf("entries = %d after second oversized put, want just the newest", st.Entries)
	}
	if dc.Get(7) != nil {
		t.Fatal("older oversized entry survived")
	}

	// Re-putting a resident digest refreshes recency instead of double
	// charging the budget.
	dc.Put(8, c)
	if got := dc.Stats().Bytes; got != c.SizeBytes() {
		t.Fatalf("re-put double charged: %d bytes for one entry of %d", got, c.SizeBytes())
	}
}
