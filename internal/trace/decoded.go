package trace

import "doppelganger/internal/memdata"

// Per-component cost estimates for SizeBytes. Exact accounting of a decoded
// capture is impossible from outside the runtime (map internals, allocator
// slack), so these only need to be stable and roughly proportional: the
// decoded-capture cache's byte budget then bounds real memory within a small
// constant factor.
const (
	sizeRecord = 24                     // trace.Record, padded
	sizeBlock  = memdata.BlockSize + 16 // block data plus page-directory share
	sizeRegion = 96                     // approx.Region plus name string
	sizeFixed  = 4096                   // struct headers, slices, slack
)

// SizeBytes estimates the capture's decoded in-memory footprint: the
// reconstructed memory image, the per-core record streams, the global order
// index, the output vector and the annotation set. The decoded-capture
// cache charges entries by this estimate against its byte budget.
func (c *Capture) SizeBytes() int64 {
	n := int64(sizeFixed)
	n += int64(len(c.Header.Benchmark) + len(c.Header.ConfigKey))
	if c.InitialMem != nil {
		n += int64(c.InitialMem.Len()) * sizeBlock
	}
	if c.Annotations != nil {
		n += int64(len(c.Annotations.Regions())) * sizeRegion
	}
	if c.Recorder != nil {
		n += int64(c.Recorder.Len()) * sizeRecord
		n += int64(len(c.Recorder.Order)) * 2
	}
	n += int64(len(c.Output)) * 8
	return n
}
