//go:build unix

package trace

import (
	"errors"
	"os"
	"syscall"
)

// flockTryExclusive attempts LOCK_EX non-blocking; held-elsewhere reports
// (false, nil) rather than an error.
func flockTryExclusive(f *os.File) (bool, error) {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return false, nil
	}
	return false, err
}

// flockShared takes LOCK_SH, blocking; on the fd that holds LOCK_EX this is
// the atomic downgrade.
func flockShared(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_SH)
}

func flockUnlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
