package trace

import "errors"

// ErrCorrupt marks a capture file whose bytes are wrong: bad magic,
// truncation, CRC or digest mismatch, or a semantically invalid section.
// The file can never become readable again on its own — the remedy is to
// quarantine it and re-record.
var ErrCorrupt = errors.New("corrupt capture")

// ErrStale marks a capture file that decoded cleanly but was recorded under
// a different identity (configuration, seed, core count, code revision).
// Like corruption, staleness is a property of the file, not the I/O path:
// quarantine and re-record.
var ErrStale = errors.New("stale capture")

// IsQuarantineable reports whether err condemns the file itself (corrupt or
// stale — move it to quarantine and re-record) as opposed to the I/O path
// (device error, permission, ENOSPC — leave the file alone and fall back to
// live execution: the bytes may be fine once the disk recovers).
func IsQuarantineable(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrStale)
}
