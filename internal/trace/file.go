package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"
	"math"
	"path/filepath"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

// Capture file format "DGTC" (DoppelGänger Trace Capture), version 1.
//
//	preamble (16 bytes, little-endian):
//	  magic   [4]byte  "DGTC"
//	  version uint16   (1)
//	  flags   uint16   (reserved, 0)
//	  digest  uint64   CRC64-ECMA over every byte after the preamble
//	sections, each:
//	  id      uint8
//	  length  uvarint  (payload bytes)
//	  payload [length]byte
//	  crc     uint32   CRC32-IEEE over payload
//	section order is fixed: header, annotations, memory, traces, order,
//	output, end. The end section has an empty payload and terminates the
//	file; trailing bytes after it are rejected.
//
// Payloads (all integers uvarint unless sized, floats as IEEE-754 bits):
//
//	header:      benchLen+bytes, scaleBits u64, cores, seed u64,
//	             keyLen+bytes (ConfigKey: the full cell identity string)
//	annotations: count, then per region: nameLen+bytes, start, end,
//	             type u8, minBits u64, maxBits u64
//	memory:      count, then per block (ascending block number): first
//	             block number absolute, later ones as gap from the
//	             previous (>= 1), then 64 raw bytes
//	traces:      cores, then per core: count, then per record:
//	             flags u8 (bit0 write, bit1 approx, bits 2.. size),
//	             addr zigzag-delta from the previous record's addr,
//	             gap, and (writes only) val
//	order:       count (== total records), then one core id per access
//	output:      count, then count × u64 float bits
//
// The decoder never trusts a length or count from the file: payloads are
// read in bounded chunks so a hostile length fails at the true EOF, and
// every in-payload count is checked against the bytes actually present
// before anything proportional to it is allocated.
const (
	captureMagic   = "DGTC"
	CaptureVersion = 1
)

// Section ids, in required file order.
const (
	secHeader = iota + 1
	secAnnotations
	secMemory
	secTraces
	secOrder
	secOutput
	secEnd = 0xFF
)

// Decoder hardening caps (initial allocation bounds, not format limits).
const (
	maxNameLen   = 4096
	maxRegions   = 1 << 16
	maxCores     = 1024
	capCapRec    = 1 << 16 // initial record-slice capacity
	readChunk    = 64 << 10
	maxSectionSz = 1 << 31 // sanity bound on a claimed section length
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// FileHeader identifies what a capture file holds and which configuration
// produced it. ConfigKey is the full cell identity (benchmark, scale,
// cores, organization, seeds, ...): a reader that derives a different
// identity for the same file must treat the capture as stale.
type FileHeader struct {
	Benchmark string
	Scale     float64
	Cores     int
	Seed      uint64
	ConfigKey string
}

// Capture is everything one recorded functional run persists: enough to
// replay the run bit-identically (initial image + annotations + globally
// ordered access stream) and to serve its output without replaying.
type Capture struct {
	Header      FileHeader
	Annotations *approx.Annotations
	InitialMem  *memdata.Store
	Recorder    *Recorder
	Output      []float64

	// FileCRC and StreamDigest are in-memory identity metadata, populated by
	// the decoder and by WriteTo — they are derived from the serialized bytes,
	// never stored in them. FileCRC is the preamble's whole-file CRC64-ECMA
	// (the same value FileDigest reads from the first 16 bytes, so a cheap
	// preamble probe can be matched against an already-decoded capture).
	// StreamDigest is a CRC64-ECMA over the body bytes of every section
	// EXCEPT the header: two captures whose replayable content (annotations,
	// memory image, access streams, global order, output) is byte-identical
	// share a StreamDigest even when their headers (cell identity, seed)
	// differ — the grouping key batched replay uses to drive many cells from
	// one decode.
	FileCRC      uint64
	StreamDigest uint64
}

// --- encoding ---

type sectionWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *sectionWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *sectionWriter) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *sectionWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], v)
	w.buf.Write(w.tmp[:8])
}

func (w *sectionWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

// appendSection frames one section (id, length, payload, crc) onto out.
func appendSection(out *bytes.Buffer, id byte, payload []byte) {
	out.WriteByte(id)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(payload)))
	out.Write(tmp[:n])
	out.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out.Write(crc[:])
}

// encode renders the capture's section stream (everything after the
// preamble). The byte stream is deterministic: memory blocks are emitted in
// ascending address order and every other collection is already ordered.
func (c *Capture) encode() ([]byte, error) {
	if c.Recorder == nil || c.InitialMem == nil || c.Annotations == nil {
		return nil, fmt.Errorf("trace: capture is missing recorder, memory image or annotations")
	}
	if len(c.Recorder.Order) != c.Recorder.Len() {
		return nil, fmt.Errorf("trace: capture recorder has no global-order index (%d entries for %d records)",
			len(c.Recorder.Order), c.Recorder.Len())
	}
	if len(c.Recorder.Cores) > maxCores {
		return nil, fmt.Errorf("trace: capture has %d cores (max %d)", len(c.Recorder.Cores), maxCores)
	}
	var out bytes.Buffer
	var w sectionWriter
	// Every non-header section's payload also folds into the stream digest
	// (see Capture.StreamDigest); computing it during encode means a freshly
	// recorded capture is batch-groupable without re-reading its own file.
	stream := uint64(0)

	w.str(c.Header.Benchmark)
	w.u64(math.Float64bits(c.Header.Scale))
	w.uvarint(uint64(c.Header.Cores))
	w.u64(c.Header.Seed)
	w.str(c.Header.ConfigKey)
	appendSection(&out, secHeader, w.buf.Bytes())
	w.buf.Reset()

	regions := c.Annotations.Regions()
	w.uvarint(uint64(len(regions)))
	for _, rg := range regions {
		w.str(rg.Name)
		w.uvarint(uint64(rg.Start))
		w.uvarint(uint64(rg.End))
		w.buf.WriteByte(byte(rg.Type))
		w.u64(math.Float64bits(rg.Min))
		w.u64(math.Float64bits(rg.Max))
	}
	stream = crc64.Update(stream, crcTable, w.buf.Bytes())
	appendSection(&out, secAnnotations, w.buf.Bytes())
	w.buf.Reset()

	// Memory image in ascending block order: ForEachBlock iterates the
	// arena's page directory sorted, so identical stores yield identical
	// bytes (unlike the legacy bundle's map-order walk).
	nblocks := 0
	c.InitialMem.ForEachBlock(func(memdata.Addr, *memdata.Block) { nblocks++ })
	w.uvarint(uint64(nblocks))
	prevPN := uint64(0)
	first := true
	c.InitialMem.ForEachBlock(func(a memdata.Addr, blk *memdata.Block) {
		pn := uint64(a) >> memdata.OffsetBits
		if first {
			w.uvarint(pn)
			first = false
		} else {
			w.uvarint(pn - prevPN)
		}
		prevPN = pn
		w.buf.Write(blk[:])
	})
	stream = crc64.Update(stream, crcTable, w.buf.Bytes())
	appendSection(&out, secMemory, w.buf.Bytes())
	w.buf.Reset()

	w.uvarint(uint64(len(c.Recorder.Cores)))
	for _, t := range c.Recorder.Cores {
		w.uvarint(uint64(len(t)))
		prev := uint64(0)
		for i := range t {
			rec := &t[i]
			flags := uint64(rec.Size) << 2
			if rec.Write {
				flags |= 1
			}
			if rec.Approx {
				flags |= 2
			}
			w.uvarint(flags)
			w.varint(int64(uint64(rec.Addr)) - int64(prev))
			prev = uint64(rec.Addr)
			w.uvarint(uint64(rec.Gap))
			if rec.Write {
				w.uvarint(rec.Val)
			}
		}
	}
	stream = crc64.Update(stream, crcTable, w.buf.Bytes())
	appendSection(&out, secTraces, w.buf.Bytes())
	w.buf.Reset()

	w.uvarint(uint64(len(c.Recorder.Order)))
	for _, core := range c.Recorder.Order {
		w.uvarint(uint64(core))
	}
	stream = crc64.Update(stream, crcTable, w.buf.Bytes())
	appendSection(&out, secOrder, w.buf.Bytes())
	w.buf.Reset()

	w.uvarint(uint64(len(c.Output)))
	for _, v := range c.Output {
		w.u64(math.Float64bits(v))
	}
	stream = crc64.Update(stream, crcTable, w.buf.Bytes())
	appendSection(&out, secOutput, w.buf.Bytes())
	w.buf.Reset()

	appendSection(&out, secEnd, nil)
	c.StreamDigest = stream
	return out.Bytes(), nil
}

// WriteTo serializes the capture. The whole section stream is buffered
// first so the preamble can carry its content digest.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	body, err := c.encode()
	if err != nil {
		return 0, err
	}
	var pre [16]byte
	copy(pre[:4], captureMagic)
	binary.LittleEndian.PutUint16(pre[4:], CaptureVersion)
	binary.LittleEndian.PutUint16(pre[6:], 0)
	c.FileCRC = crc64.Checksum(body, crcTable)
	binary.LittleEndian.PutUint64(pre[8:], c.FileCRC)
	n, err := w.Write(pre[:])
	if err != nil {
		return int64(n), err
	}
	m, err := w.Write(body)
	return int64(n + m), err
}

// WriteFile persists the capture atomically on the real filesystem; see
// WriteFileFS for the commit protocol.
func (c *Capture) WriteFile(path string) error {
	return c.WriteFileFS(OS, path)
}

// WriteFileFS persists the capture atomically and durably: the bytes land
// in a temp file in the destination directory, are fsynced, and only then
// renamed into place — so a crash or failure mid-write can never leave a
// torn file where a consumer expects a capture. After the rename the parent
// directory is fsynced too: rename makes the capture visible, the directory
// sync makes it durable, and only after both is the capture committed (a
// crash between them may lose the file, never corrupt it).
func (c *Capture) WriteFileFS(fsys FS, path string) error {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: capture %s: %w", path, err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		fsys.Remove(tmp.Name())
		return fmt.Errorf("trace: capture %s: %w", path, err)
	}
	if _, err := c.WriteTo(tmp); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmp.Name())
		return fmt.Errorf("trace: capture %s: %w", path, err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return fmt.Errorf("trace: capture %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("trace: capture %s: dir sync: %w", path, err)
	}
	return nil
}

// --- decoding ---

// hashReader counts and digests every byte it passes through.
type hashReader struct {
	r   io.Reader
	sum uint64
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	h.sum = crc64.Update(h.sum, crcTable, p[:n])
	return n, err
}

func (h *hashReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(h, b[:])
	return b[0], err
}

// readCapped reads exactly n claimed bytes, growing in bounded chunks so a
// hostile length allocates at most one chunk beyond the bytes actually
// present before the short read surfaces.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	if n > maxSectionSz {
		return nil, fmt.Errorf("implausible section length %d", n)
	}
	buf := make([]byte, 0, min64(n, readChunk))
	var chunk [readChunk]byte
	for uint64(len(buf)) < n {
		want := n - uint64(len(buf))
		if want > readChunk {
			want = readChunk
		}
		k, err := io.ReadFull(r, chunk[:want])
		buf = append(buf, chunk[:k]...)
		if err != nil {
			return nil, fmt.Errorf("section truncated at byte %d of claimed %d: %w", len(buf), n, err)
		}
	}
	return buf, nil
}

// payload is a bounds-checked cursor over one section's bytes.
type payload struct {
	b   []byte
	off int
}

func (p *payload) remaining() int { return len(p.b) - p.off }

func (p *payload) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payload) varint() (int64, error) {
	v, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payload) u64() (uint64, error) {
	if p.remaining() < 8 {
		return 0, fmt.Errorf("truncated u64 at offset %d", p.off)
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v, nil
}

func (p *payload) byte() (byte, error) {
	if p.remaining() < 1 {
		return 0, fmt.Errorf("truncated byte at offset %d", p.off)
	}
	b := p.b[p.off]
	p.off++
	return b, nil
}

func (p *payload) bytes(n uint64) ([]byte, error) {
	if uint64(p.remaining()) < n {
		return nil, fmt.Errorf("claimed %d bytes with %d remaining", n, p.remaining())
	}
	b := p.b[p.off : p.off+int(n)]
	p.off += int(n)
	return b, nil
}

func (p *payload) str(cap uint64, what string) (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > cap {
		return "", fmt.Errorf("%s length %d exceeds cap %d", what, n, cap)
	}
	b, err := p.bytes(n)
	if err != nil {
		return "", fmt.Errorf("%s: %w", what, err)
	}
	return string(b), nil
}

func (p *payload) done() error {
	if p.off != len(p.b) {
		return fmt.Errorf("%d trailing bytes", len(p.b)-p.off)
	}
	return nil
}

// ReadCapture decodes a capture stream written by WriteTo, verifying the
// per-section CRCs and the whole-file digest. Every failure names what was
// wrong and where; no input makes it panic or allocate unboundedly.
func ReadCapture(r io.Reader) (*Capture, error) {
	return readCapture(r, false)
}

// ReadCaptureOutput decodes only a capture's header, annotations and output
// vector. The memory, trace and order sections are still fully read and
// verified (section CRCs and the whole-file digest), but nothing
// proportional to their contents is materialized — the cheap path for
// consumers that serve a capture's result without replaying it. The
// cross-section order/stream consistency check is necessarily skipped.
func ReadCaptureOutput(r io.Reader) (*Capture, error) {
	return readCapture(r, true)
}

func readCapture(r io.Reader, outputOnly bool) (*Capture, error) {
	var pre [16]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("trace: capture preamble: %w", err)
	}
	if string(pre[:4]) != captureMagic {
		return nil, fmt.Errorf("trace: bad capture magic %q (want %q)", pre[:4], captureMagic)
	}
	if v := binary.LittleEndian.Uint16(pre[4:]); v != CaptureVersion {
		return nil, fmt.Errorf("trace: unsupported capture version %d (this reader handles %d)", v, CaptureVersion)
	}
	if fl := binary.LittleEndian.Uint16(pre[6:]); fl != 0 {
		return nil, fmt.Errorf("trace: unknown capture flags %#x (reserved, must be zero)", fl)
	}
	wantDigest := binary.LittleEndian.Uint64(pre[8:])

	hr := &hashReader{r: r}
	c := &Capture{}
	stream := uint64(0)
	want := []byte{secHeader, secAnnotations, secMemory, secTraces, secOrder, secOutput, secEnd}
	for _, wantID := range want {
		id, err := hr.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: capture truncated before section %d: %w", wantID, err)
		}
		if id != wantID {
			return nil, fmt.Errorf("trace: capture section %d out of order (want %d)", id, wantID)
		}
		length, err := binary.ReadUvarint(hr)
		if err != nil {
			return nil, fmt.Errorf("trace: capture section %d length: %w", id, err)
		}
		body, err := readCapped(hr, length)
		if err != nil {
			return nil, fmt.Errorf("trace: capture section %d: %w", id, err)
		}
		var crcb [4]byte
		if _, err := io.ReadFull(hr, crcb[:]); err != nil {
			return nil, fmt.Errorf("trace: capture section %d crc: %w", id, err)
		}
		if got, wantCRC := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcb[:]); got != wantCRC {
			return nil, fmt.Errorf("trace: capture section %d crc mismatch (got %08x, want %08x)", id, got, wantCRC)
		}
		if id != secHeader {
			// The stream digest (Capture.StreamDigest) spans every section but
			// the header, so header-only differences (cell identity, seed)
			// don't split otherwise-identical replay streams. Computed in both
			// full and output-only modes: the batch planner groups captures it
			// loaded either way.
			stream = crc64.Update(stream, crcTable, body)
		}
		p := &payload{b: body}
		skipped := false
		switch id {
		case secHeader:
			err = decodeHeader(p, &c.Header)
		case secAnnotations:
			c.Annotations, err = decodeAnnotations(p)
		case secMemory:
			if skipped = outputOnly; !skipped {
				c.InitialMem, err = decodeMemory(p)
			}
		case secTraces:
			if skipped = outputOnly; !skipped {
				c.Recorder, err = decodeTraces(p)
			}
		case secOrder:
			if skipped = outputOnly; !skipped {
				err = decodeOrder(p, c.Recorder)
			}
		case secOutput:
			c.Output, err = decodeOutput(p)
		case secEnd:
			if length != 0 {
				err = fmt.Errorf("non-empty end section")
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace: capture section %d: %w", id, err)
		}
		if id != secEnd && !skipped {
			if err := p.done(); err != nil {
				return nil, fmt.Errorf("trace: capture section %d: %w", id, err)
			}
		}
	}
	if hr.sum != wantDigest {
		return nil, fmt.Errorf("trace: capture digest mismatch (got %016x, want %016x): file corrupt or tampered", hr.sum, wantDigest)
	}
	var extra [1]byte
	if n, _ := io.ReadFull(hr, extra[:]); n != 0 {
		return nil, fmt.Errorf("trace: trailing bytes after capture end section")
	}
	if !outputOnly {
		// The cursor validation doubles as the cross-section consistency
		// check: order entries must name real cores and match every
		// stream's length.
		if _, err := c.Recorder.Cursor(); err != nil {
			return nil, fmt.Errorf("trace: capture order index: %w", err)
		}
	}
	c.FileCRC = wantDigest // == hr.sum, verified above
	c.StreamDigest = stream
	return c, nil
}

// ReadCaptureFile opens and decodes one capture file.
func ReadCaptureFile(path string) (*Capture, error) {
	return readCaptureFile(OS, path, false)
}

// ReadCaptureOutputFile is ReadCaptureFile via ReadCaptureOutput: fully
// verified, but only header, annotations and output are materialized.
func ReadCaptureOutputFile(path string) (*Capture, error) {
	return readCaptureFile(OS, path, true)
}

// ReadCaptureFileFS is ReadCaptureFile on an injected filesystem.
func ReadCaptureFileFS(fsys FS, path string) (*Capture, error) {
	return readCaptureFile(fsys, path, false)
}

// ReadCaptureOutputFileFS is ReadCaptureOutputFile on an injected
// filesystem.
func ReadCaptureOutputFileFS(fsys FS, path string) (*Capture, error) {
	return readCaptureFile(fsys, path, true)
}

// FileDigest reads just a capture file's 16-byte preamble and returns its
// whole-file CRC64-ECMA digest. The magic, version and reserved flags are
// verified, but the sections are not read — this is the cheap identity the
// sweep server folds into its content-addressed result keys, so a re-recorded
// (changed) capture lands under a different result-cache key without the
// server decoding megabytes of trace. It does NOT verify the digest matches
// the body; consumers that replay the capture still go through ReadCapture's
// full verification.
func FileDigest(path string) (uint64, error) {
	return FileDigestFS(OS, path)
}

// FileDigestFS is FileDigest on an injected filesystem. Decode failures
// (bad magic, version, flags, short preamble) wrap ErrCorrupt; failures of
// the I/O path itself (open, device read errors) do not.
func FileDigestFS(fsys FS, path string) (uint64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr := &trackReader{r: f}
	var pre [16]byte
	if _, err := io.ReadFull(tr, pre[:]); err != nil {
		if tr.err != nil {
			return 0, fmt.Errorf("%s: trace: capture preamble: %w", path, tr.err)
		}
		return 0, fmt.Errorf("%s: trace: %w: capture preamble: %v", path, ErrCorrupt, err)
	}
	if string(pre[:4]) != captureMagic {
		return 0, fmt.Errorf("%s: trace: %w: bad capture magic %q (want %q)", path, ErrCorrupt, pre[:4], captureMagic)
	}
	if v := binary.LittleEndian.Uint16(pre[4:]); v != CaptureVersion {
		return 0, fmt.Errorf("%s: trace: %w: unsupported capture version %d (this reader handles %d)", path, ErrCorrupt, v, CaptureVersion)
	}
	if fl := binary.LittleEndian.Uint16(pre[6:]); fl != 0 {
		return 0, fmt.Errorf("%s: trace: %w: unknown capture flags %#x (reserved, must be zero)", path, ErrCorrupt, fl)
	}
	return binary.LittleEndian.Uint64(pre[8:]), nil
}

// checkPreamble validates a preamble's magic, version and reserved flags.
func checkPreamble(pre [16]byte) error {
	if string(pre[:4]) != captureMagic {
		return fmt.Errorf("bad capture magic %q (want %q)", pre[:4], captureMagic)
	}
	if v := binary.LittleEndian.Uint16(pre[4:]); v != CaptureVersion {
		return fmt.Errorf("unsupported capture version %d (this reader handles %d)", v, CaptureVersion)
	}
	if fl := binary.LittleEndian.Uint16(pre[6:]); fl != 0 {
		return fmt.Errorf("unknown capture flags %#x (reserved, must be zero)", fl)
	}
	return nil
}

// preambleDigest extracts the whole-file CRC64 the preamble claims.
func preambleDigest(pre [16]byte) uint64 { return binary.LittleEndian.Uint64(pre[8:]) }

// trackReader remembers the last non-EOF error the underlying reader
// returned. The decoder cannot tell a truncated file (reads hit EOF early —
// the bytes on disk are wrong: corrupt) from a failing device (reads error
// out — the bytes may be fine: unavailable); the tracked error makes the
// distinction at the file level.
type trackReader struct {
	r   io.Reader
	err error
}

func (t *trackReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		t.err = err
	}
	return n, err
}

func readCaptureFile(fsys FS, path string, outputOnly bool) (*Capture, error) {
	f, err := fsys.Open(path)
	if err != nil {
		// Open errors pass through unclassified: os.ErrNotExist is a cache
		// miss, anything else is the I/O path failing, not the file.
		return nil, err
	}
	defer f.Close()
	tr := &trackReader{r: f}
	c, err := readCapture(tr, outputOnly)
	if err != nil {
		if tr.err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		// Every byte came off the disk successfully and the decoder still
		// rejected them: the file itself is damaged.
		return nil, fmt.Errorf("%s: %w: %w", path, ErrCorrupt, err)
	}
	return c, nil
}

func decodeHeader(p *payload, h *FileHeader) error {
	var err error
	if h.Benchmark, err = p.str(maxNameLen, "benchmark name"); err != nil {
		return err
	}
	bits, err := p.u64()
	if err != nil {
		return err
	}
	h.Scale = math.Float64frombits(bits)
	cores, err := p.uvarint()
	if err != nil {
		return err
	}
	if cores > maxCores {
		return fmt.Errorf("implausible core count %d", cores)
	}
	h.Cores = int(cores)
	if h.Seed, err = p.u64(); err != nil {
		return err
	}
	h.ConfigKey, err = p.str(maxNameLen, "config key")
	return err
}

func decodeAnnotations(p *payload) (*approx.Annotations, error) {
	count, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxRegions {
		return nil, fmt.Errorf("implausible region count %d", count)
	}
	// Each region needs at least name-len + start + end + type + 16 float
	// bytes; checking against the payload stops a hostile count before the
	// slice is committed.
	if count*20 > uint64(p.remaining()) {
		return nil, fmt.Errorf("region count %d exceeds payload (%d bytes)", count, p.remaining())
	}
	regions := make([]approx.Region, count)
	for i := range regions {
		name, err := p.str(maxNameLen, "region name")
		if err != nil {
			return nil, err
		}
		start, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		end, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if start > math.MaxUint32 || end > math.MaxUint32 {
			return nil, fmt.Errorf("region %q bounds exceed the 32-bit address space", name)
		}
		typ, err := p.byte()
		if err != nil {
			return nil, err
		}
		if memdata.ElemType(typ) > memdata.F64 {
			return nil, fmt.Errorf("region %q has unknown element type %d", name, typ)
		}
		minBits, err := p.u64()
		if err != nil {
			return nil, err
		}
		maxBits, err := p.u64()
		if err != nil {
			return nil, err
		}
		regions[i] = approx.Region{
			Name:  name,
			Start: memdata.Addr(start),
			End:   memdata.Addr(end),
			Type:  memdata.ElemType(typ),
			Min:   math.Float64frombits(minBits),
			Max:   math.Float64frombits(maxBits),
		}
	}
	ann, err := approx.NewAnnotations(regions...)
	if err != nil {
		return nil, fmt.Errorf("annotations invalid: %w", err)
	}
	return ann, nil
}

func decodeMemory(p *payload) (*memdata.Store, error) {
	count, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	// A block costs at least 65 payload bytes, so the count is verifiable
	// up front without trusting it.
	if count > uint64(p.remaining())/(memdata.BlockSize+1)+1 {
		return nil, fmt.Errorf("block count %d exceeds payload (%d bytes)", count, p.remaining())
	}
	st := memdata.NewStore()
	pn := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, err := p.uvarint()
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		if i == 0 {
			pn = d
		} else {
			if d == 0 {
				return nil, fmt.Errorf("block %d: zero gap (blocks must ascend)", i)
			}
			pn += d
		}
		if pn > math.MaxUint32>>memdata.OffsetBits {
			return nil, fmt.Errorf("block %d: address beyond the 32-bit space", i)
		}
		raw, err := p.bytes(memdata.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		var blk memdata.Block
		copy(blk[:], raw)
		st.WriteBlock(memdata.Addr(pn<<memdata.OffsetBits), &blk)
	}
	return st, nil
}

func decodeTraces(p *payload) (*Recorder, error) {
	cores, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if cores > maxCores {
		return nil, fmt.Errorf("implausible core count %d", cores)
	}
	rec := NewRecorder(int(cores))
	for c := 0; c < int(cores); c++ {
		count, err := p.uvarint()
		if err != nil {
			return nil, fmt.Errorf("core %d count: %w", c, err)
		}
		// A record is at least 3 bytes (flags + addr delta + gap).
		if count > uint64(p.remaining())/3+1 {
			return nil, fmt.Errorf("core %d: record count %d exceeds payload (%d bytes)", c, count, p.remaining())
		}
		t := make(Trace, 0, min64(count, capCapRec))
		prev := uint64(0)
		for i := uint64(0); i < count; i++ {
			flags, err := p.uvarint()
			if err != nil {
				return nil, fmt.Errorf("core %d record %d: %w", c, i, err)
			}
			if flags>>2 > 0xFF {
				return nil, fmt.Errorf("core %d record %d: size %d exceeds a byte", c, i, flags>>2)
			}
			delta, err := p.varint()
			if err != nil {
				return nil, fmt.Errorf("core %d record %d: %w", c, i, err)
			}
			addr := int64(prev) + delta
			if addr < 0 || addr > math.MaxUint32 {
				return nil, fmt.Errorf("core %d record %d: address delta leaves the 32-bit space", c, i)
			}
			prev = uint64(addr)
			gap, err := p.uvarint()
			if err != nil {
				return nil, fmt.Errorf("core %d record %d: %w", c, i, err)
			}
			if gap > math.MaxUint32 {
				return nil, fmt.Errorf("core %d record %d: gap %d exceeds 32 bits", c, i, gap)
			}
			r := Record{
				Addr:   memdata.Addr(addr),
				Gap:    uint32(gap),
				Size:   uint8(flags >> 2),
				Write:  flags&1 != 0,
				Approx: flags&2 != 0,
			}
			if r.Write {
				if r.Val, err = p.uvarint(); err != nil {
					return nil, fmt.Errorf("core %d record %d: %w", c, i, err)
				}
			}
			t = append(t, r)
		}
		rec.Cores[c] = t
	}
	return rec, nil
}

func decodeOrder(p *payload, rec *Recorder) error {
	count, err := p.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(p.remaining())+1 {
		return fmt.Errorf("order count %d exceeds payload (%d bytes)", count, p.remaining())
	}
	if rec == nil {
		return fmt.Errorf("order section before traces")
	}
	if count != uint64(rec.Len()) {
		return fmt.Errorf("order count %d does not match %d recorded accesses", count, rec.Len())
	}
	order := make([]uint16, 0, min64(count, capCapRec))
	for i := uint64(0); i < count; i++ {
		core, err := p.uvarint()
		if err != nil {
			return fmt.Errorf("order entry %d: %w", i, err)
		}
		if core >= uint64(len(rec.Cores)) {
			return fmt.Errorf("order entry %d names core %d of %d", i, core, len(rec.Cores))
		}
		order = append(order, uint16(core))
	}
	rec.Order = order
	return nil
}

func decodeOutput(p *payload) ([]float64, error) {
	count, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if count*8 > uint64(p.remaining()) {
		return nil, fmt.Errorf("output count %d exceeds payload (%d bytes)", count, p.remaining())
	}
	out := make([]float64, count)
	for i := range out {
		bits, err := p.u64()
		if err != nil {
			return nil, err
		}
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}
