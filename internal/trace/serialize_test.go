package trace

import (
	"doppelganger/internal/memdata"

	"bytes"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	r := NewRecorder(3)
	r.Work(0, 17)
	r.Access(0, 0x1234, false, 4, 0, true)
	r.Access(1, 0xFFFFFFC0, true, 8, 0xDEADBEEFCAFEBABE, false)
	// Core 2 intentionally empty.

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cores) != 3 || len(got.Cores[0]) != 1 || len(got.Cores[1]) != 1 || len(got.Cores[2]) != 0 {
		t.Fatalf("shape = %v", got.Cores)
	}
	if got.Cores[0][0] != r.Cores[0][0] || got.Cores[1][0] != r.Cores[1][0] {
		t.Errorf("records differ: %+v vs %+v", got.Cores, r.Cores)
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, vals []uint64, flags []uint8) bool {
		r := NewRecorder(2)
		for i, a := range addrs {
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			var fl uint8
			if i < len(flags) {
				fl = flags[i]
			}
			r.Work(i%2, i%7)
			r.Access(i%2, memdata.Addr(a), fl&1 != 0, int(1+fl%8), v, fl&2 != 0)
		}
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		for c := range r.Cores {
			if len(got.Cores[c]) != len(r.Cores[c]) {
				return false
			}
			for i := range r.Cores[c] {
				if got.Cores[c][i] != r.Cores[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("short input accepted")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte("XXXX\x01\x00\x00\x00\x01\x00\x00\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte("DPTR\x09\x00\x00\x00\x01\x00\x00\x00"))); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated records.
	r := NewRecorder(1)
	r.Access(0, 0x40, false, 4, 0, false)
	var buf bytes.Buffer
	r.WriteTo(&buf)
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Error("truncated trace accepted")
	}
}
