package trace

import "testing"

func TestRecorderGapAccounting(t *testing.T) {
	r := NewRecorder(2)
	r.Work(0, 5)
	r.Work(0, 7)
	r.Access(0, 0x100, false, 4, 0, false)
	r.Access(0, 0x200, true, 8, 42, true)
	if len(r.Cores[0]) != 2 {
		t.Fatalf("records = %d", len(r.Cores[0]))
	}
	if r.Cores[0][0].Gap != 12 {
		t.Errorf("gap 0 = %d, want 12 (accumulated work)", r.Cores[0][0].Gap)
	}
	if r.Cores[0][1].Gap != 0 {
		t.Errorf("gap 1 = %d, want 0 (consumed)", r.Cores[0][1].Gap)
	}
	rec := r.Cores[0][1]
	if !rec.Write || rec.Size != 8 || rec.Val != 42 || !rec.Approx {
		t.Errorf("record = %+v", rec)
	}
}

func TestRecorderPerCoreIsolation(t *testing.T) {
	r := NewRecorder(2)
	r.Work(0, 3)
	r.Access(1, 0x100, false, 4, 0, false)
	if r.Cores[1][0].Gap != 0 {
		t.Error("core 1 absorbed core 0's work")
	}
	r.Access(0, 0x200, false, 4, 0, false)
	if r.Cores[0][0].Gap != 3 {
		t.Error("core 0 lost its work")
	}
}

func TestLenAndInstructions(t *testing.T) {
	r := NewRecorder(2)
	r.Work(0, 9)
	r.Access(0, 0x100, false, 4, 0, false)
	r.Access(1, 0x200, false, 4, 0, false)
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	if r.Instructions() != 11 { // 9+1 on core 0, 1 on core 1
		t.Errorf("instructions = %d", r.Instructions())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Work(0, 5)                           // must not panic
	r.Access(0, 0x100, false, 4, 0, false) // must not panic
}
