package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceRoundTrip drives ReadFrom with arbitrary bytes. Decoding must
// never panic or over-allocate, and any input it accepts must survive a
// re-encode/re-decode cycle unchanged (decode ∘ encode ≡ id on the image
// of decode).
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed with a couple of real encodings plus the rejection corpus.
	seed := func(build func(r *Recorder)) {
		r := NewRecorder(2)
		build(r)
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(r *Recorder) {})
	seed(func(r *Recorder) {
		r.Work(0, 3)
		r.Access(0, 0x1240, false, 4, 7, true)
		r.Access(1, 0xFFFFFFC0, true, 8, 0xDEADBEEFCAFEBABE, false)
	})
	f.Add([]byte("DPTR"))
	f.Add([]byte("DPTR\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("DPTR\x01\x00\x00\x00\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		r2, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if len(r2.Cores) != len(r.Cores) {
			t.Fatalf("core count changed: %d -> %d", len(r.Cores), len(r2.Cores))
		}
		for c := range r.Cores {
			if len(r2.Cores[c]) != len(r.Cores[c]) {
				t.Fatalf("core %d record count changed: %d -> %d",
					c, len(r.Cores[c]), len(r2.Cores[c]))
			}
			for i := range r.Cores[c] {
				if r2.Cores[c][i] != r.Cores[c][i] {
					t.Fatalf("core %d record %d changed: %+v -> %+v",
						c, i, r.Cores[c][i], r2.Cores[c][i])
				}
			}
		}
	})
}
