package trace

import (
	"bytes"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

// FuzzTraceRoundTrip drives ReadFrom with arbitrary bytes. Decoding must
// never panic or over-allocate, and any input it accepts must survive a
// re-encode/re-decode cycle unchanged (decode ∘ encode ≡ id on the image
// of decode).
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed with a couple of real encodings plus the rejection corpus.
	seed := func(build func(r *Recorder)) {
		r := NewRecorder(2)
		build(r)
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(r *Recorder) {})
	seed(func(r *Recorder) {
		r.Work(0, 3)
		r.Access(0, 0x1240, false, 4, 7, true)
		r.Access(1, 0xFFFFFFC0, true, 8, 0xDEADBEEFCAFEBABE, false)
	})
	f.Add([]byte("DPTR"))
	f.Add([]byte("DPTR\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("DPTR\x01\x00\x00\x00\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		r2, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if len(r2.Cores) != len(r.Cores) {
			t.Fatalf("core count changed: %d -> %d", len(r.Cores), len(r2.Cores))
		}
		for c := range r.Cores {
			if len(r2.Cores[c]) != len(r.Cores[c]) {
				t.Fatalf("core %d record count changed: %d -> %d",
					c, len(r.Cores[c]), len(r2.Cores[c]))
			}
			for i := range r.Cores[c] {
				if r2.Cores[c][i] != r.Cores[c][i] {
					t.Fatalf("core %d record %d changed: %+v -> %+v",
						c, i, r.Cores[c][i], r2.Cores[c][i])
				}
			}
		}
	})
}

// FuzzTraceFileDecode drives the DGTC capture decoder with arbitrary bytes.
// Hostile headers, truncated or torn files, corrupt CRCs and oversized
// counts must all produce errors — never a panic and never an allocation
// proportional to a lied-about length — and any input the decoder accepts
// must survive a re-encode/re-decode cycle byte-identically.
func FuzzTraceFileDecode(f *testing.F) {
	// Seed with real captures of increasing richness plus the rejection
	// corpus (wrong magic, bare preamble, truncated section).
	seed := func(build func(c *Capture)) {
		ann, err := approx.NewAnnotations(
			approx.Region{Name: "x", Start: 0x1000, End: 0x2000, Type: memdata.F32, Min: -1, Max: 1})
		if err != nil {
			f.Fatal(err)
		}
		c := &Capture{
			Header:      FileHeader{Benchmark: "b", Scale: 0.5, Cores: 2, Seed: 1, ConfigKey: "k"},
			Annotations: ann,
			InitialMem:  memdata.NewStore(),
			Recorder:    NewRecorder(2),
		}
		build(c)
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(func(c *Capture) {})
	seed(func(c *Capture) {
		c.InitialMem.WriteF32(0x1000, 2.5)
		c.InitialMem.WriteU8(0xFFFFFFC0, 9)
		c.Recorder.Work(0, 3)
		c.Recorder.Access(0, 0x1000, false, 4, 0, true)
		c.Recorder.Access(1, 0xFFFFFFC0, true, 1, 9, false)
		c.Output = []float64{1, -0.5}
	})
	f.Add([]byte("DPTR\x01\x00\x00\x00"))
	f.Add([]byte("DGTC"))
	f.Add([]byte("DGTC\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCapture(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of accepted capture failed: %v", err)
		}
		c2, err := ReadCapture(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded capture failed: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := c2.WriteTo(&buf2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("accepted capture is not byte-stable through decode∘encode")
		}
	})
}
