package trace

import (
	"fmt"
	"hash/crc64"
	"io"
	"strings"
)

// VerifyMode selects how hard OpenStore's startup janitor looks at each
// capture file before trusting the directory.
type VerifyMode int

const (
	// VerifyOff only sweeps orphaned temp files; capture files are taken at
	// their word until a consumer decodes them.
	VerifyOff VerifyMode = iota
	// VerifyOpen additionally streams every capture through its whole-file
	// CRC64 digest (preamble validity + content integrity, no decoding) —
	// cheap enough for startup, strong enough to catch bit rot and torn
	// writes.
	VerifyOpen
	// VerifyFull fully decodes every capture: every section CRC, every
	// semantic bound, the cross-section consistency check. The paranoid
	// (and slow) setting for post-incident scrubs and chaos harnesses.
	VerifyFull
)

// ParseVerifyMode maps the -trace-verify flag spellings onto modes.
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch s {
	case "off":
		return VerifyOff, nil
	case "open":
		return VerifyOpen, nil
	case "full":
		return VerifyFull, nil
	}
	return 0, fmt.Errorf("unknown trace verify mode %q (want off, open or full)", s)
}

func (m VerifyMode) String() string {
	switch m {
	case VerifyOff:
		return "off"
	case VerifyOpen:
		return "open"
	case VerifyFull:
		return "full"
	}
	return fmt.Sprintf("VerifyMode(%d)", int(m))
}

// ScrubReport is what one startup janitor pass did to a trace directory.
type ScrubReport struct {
	// Skipped: another process already held the directory (shared lock), so
	// the janitor stood down — that process scrubbed at its own startup.
	Skipped bool `json:"skipped,omitempty"`
	// TempsRemoved counts orphaned atomic-write temp files swept away.
	TempsRemoved int `json:"temps_removed"`
	// Verified counts capture files that passed the configured check.
	Verified int `json:"verified"`
	// Quarantined counts capture files condemned and moved aside.
	Quarantined int `json:"quarantined"`
	// Unreadable counts capture files the I/O path could not produce bytes
	// for (device errors). They are left in place: the disk may recover,
	// and consumers degrade to live execution meanwhile.
	Unreadable int `json:"unreadable"`
}

// Store is an opened, locked, scrubbed trace directory. Hold it for the
// life of the process (the shared lock tells other processes' janitors the
// directory is live) and Close it on the way out.
type Store struct {
	Dir    string
	Report ScrubReport
	lock   *DirLock
}

// OpenStore prepares a trace directory for use: creates it if missing,
// takes the advisory directory lock, and — if this process is the only one
// in the directory — runs the janitor (sweep orphaned temp files, verify
// captures per mode, quarantine the condemned) before downgrading to the
// long-lived shared lock. If other processes already share the directory
// the scrub is skipped (Report.Skipped) and the store is usable
// immediately.
func OpenStore(fsys FS, dir string, mode VerifyMode) (*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("trace: store %s: %w", dir, err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{Dir: dir, lock: lock}
	got, err := lock.TryExclusive()
	if err != nil {
		lock.Release()
		return nil, fmt.Errorf("trace: store %s: %w", dir, err)
	}
	if got {
		s.Report, err = scrub(fsys, dir, mode)
		if err != nil {
			lock.Release()
			return nil, err
		}
	} else {
		s.Report.Skipped = true
	}
	if err := lock.Shared(); err != nil {
		lock.Release()
		return nil, fmt.Errorf("trace: store %s: %w", dir, err)
	}
	return s, nil
}

// Close releases the directory lock.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	return s.lock.Release()
}

// scrub is the janitor body; the caller holds the exclusive lock. Per-file
// failures never abort the pass — a janitor that dies on the first bad file
// would leave the rest of the directory unswept.
func scrub(fsys FS, dir string, mode VerifyMode) (ScrubReport, error) {
	var rep ScrubReport
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return rep, fmt.Errorf("trace: scrub %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == LockName {
			continue
		}
		full := dir + "/" + name
		if strings.Contains(name, ".tmp-") {
			// An orphaned atomic-write temp: its writer died before the
			// rename, so nothing references it and nothing ever will.
			if fsys.Remove(full) == nil {
				rep.TempsRemoved++
			}
			continue
		}
		if !strings.HasSuffix(name, ".dgt") || mode == VerifyOff {
			continue
		}
		switch err := VerifyFile(fsys, full, mode); {
		case err == nil:
			rep.Verified++
		case IsQuarantineable(err):
			if _, qerr := Quarantine(fsys, dir, full, err.Error()); qerr == nil {
				rep.Quarantined++
			} else {
				rep.Unreadable++
			}
		default:
			rep.Unreadable++
		}
	}
	return rep, nil
}

// VerifyFile checks one capture file at the given strictness. VerifyOff
// accepts everything; VerifyOpen validates the preamble and the whole-file
// CRC64 digest without decoding; VerifyFull fully decodes. Damage to the
// file wraps ErrCorrupt (or ErrStale); I/O-path failures do not.
func VerifyFile(fsys FS, path string, mode VerifyMode) error {
	switch mode {
	case VerifyOff:
		return nil
	case VerifyFull:
		_, err := ReadCaptureFileFS(fsys, path)
		return err
	}
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := &trackReader{r: f}
	var pre [16]byte
	if _, err := io.ReadFull(tr, pre[:]); err != nil {
		if tr.err != nil {
			return fmt.Errorf("%s: trace: capture preamble: %w", path, tr.err)
		}
		return fmt.Errorf("%s: trace: %w: capture preamble: %v", path, ErrCorrupt, err)
	}
	if err := checkPreamble(pre); err != nil {
		return fmt.Errorf("%s: trace: %w: %v", path, ErrCorrupt, err)
	}
	want := preambleDigest(pre)
	h := crc64.New(crcTable)
	if _, err := io.Copy(h, tr); err != nil {
		if tr.err != nil {
			return fmt.Errorf("%s: trace: capture body: %w", path, tr.err)
		}
		return fmt.Errorf("%s: trace: %w: capture body: %v", path, ErrCorrupt, err)
	}
	if got := h.Sum64(); got != want {
		return fmt.Errorf("%s: trace: %w: digest mismatch (got %016x, want %016x)", path, ErrCorrupt, got, want)
	}
	return nil
}
