//go:build !unix

package trace

import "os"

// Platforms without flock get no cross-process exclusion: the scrub always
// proceeds (reporting the lock as acquired) and shared/unlock are no-ops.
// Per-file atomic rename still protects concurrent processes' data.

func flockTryExclusive(*os.File) (bool, error) { return true, nil }
func flockShared(*os.File) error               { return nil }
func flockUnlock(*os.File) error               { return nil }
