package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// LockName is the advisory lock file a trace directory's cooperating
// processes flock. The file carries no data; only its lock state matters.
const LockName = ".lock"

// DirLock is a held advisory lock on a trace directory. The protocol:
//
//   - Every process that opens a trace dir holds the lock SHARED for as
//     long as it uses the directory. Readers, writers and re-recorders all
//     coexist under shared locks — per-file atomic rename keeps them safe.
//   - The startup janitor (scrub) needs the directory quiescent, so it
//     upgrades to EXCLUSIVE, non-blocking, first: if any other process is
//     already working in the directory the scrub is skipped (that process
//     scrubbed at its own startup), and the opener degrades to a plain
//     shared lock.
//
// Locks are advisory flock(2): they coordinate cooperating doppelgänger
// processes, not arbitrary tools. On platforms without flock the lock is a
// no-op and scrubbing is always attempted.
type DirLock struct {
	f *os.File
}

// lockDir opens (creating if needed) the lock file and returns it unlocked.
// The lock file always lives on the real filesystem even when an FS seam is
// injected: flock coordinates real processes, and injected fault
// filesystems must not be able to break cross-process mutual exclusion.
func lockDir(dir string) (*DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: lock %s: %w", dir, err)
	}
	return &DirLock{f: f}, nil
}

// TryExclusive attempts a non-blocking upgrade to the exclusive lock,
// reporting whether it was acquired.
func (l *DirLock) TryExclusive() (bool, error) {
	if l == nil || l.f == nil {
		return false, nil
	}
	return flockTryExclusive(l.f)
}

// Shared takes (or downgrades to) the shared lock, blocking until any
// exclusive holder — another process's startup scrub — finishes.
func (l *DirLock) Shared() error {
	if l == nil || l.f == nil {
		return nil
	}
	return flockShared(l.f)
}

// Release drops the lock and closes the file.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := flockUnlock(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
