package trace

import (
	"encoding/binary"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The crash-consistency suite: the atomic-write commit protocol, the
// corrupt-vs-unavailable error taxonomy, quarantine's one-way door, and the
// startup janitor — each proven against the injectable filesystem seam.

// spyFS records the order of mutating filesystem operations so tests can
// assert the commit protocol, delegating the work to the real OS.
type spyFS struct {
	FS
	ops []string
}

func (s *spyFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := s.FS.CreateTemp(dir, pattern)
	s.ops = append(s.ops, "create-temp")
	if err != nil {
		return nil, err
	}
	return &spyFile{File: f, fs: s}, nil
}

func (s *spyFS) Rename(oldpath, newpath string) error {
	s.ops = append(s.ops, "rename->"+filepath.Base(newpath))
	return s.FS.Rename(oldpath, newpath)
}

func (s *spyFS) SyncDir(dir string) error {
	s.ops = append(s.ops, "sync-dir")
	return s.FS.SyncDir(dir)
}

type spyFile struct {
	File
	fs *spyFS
}

func (f *spyFile) Sync() error {
	f.fs.ops = append(f.fs.ops, "fsync")
	return f.File.Sync()
}

func (f *spyFile) Close() error {
	f.fs.ops = append(f.fs.ops, "close")
	return f.File.Close()
}

// TestWriteFileCommitProtocol pins the durability order of the atomic write:
// the temp file is fsynced and closed before the rename makes it visible,
// and the parent directory is fsynced after — the step that makes the rename
// itself durable. Any other order has a crash window that loses or tears a
// "committed" capture.
func TestWriteFileCommitProtocol(t *testing.T) {
	spy := &spyFS{FS: OS}
	path := filepath.Join(t.TempDir(), "c.dgt")
	if err := testCapture(t).WriteFileFS(spy, path); err != nil {
		t.Fatal(err)
	}
	want := []string{"create-temp", "fsync", "close", "rename->c.dgt", "sync-dir"}
	if len(spy.ops) != len(want) {
		t.Fatalf("op sequence %v, want %v", spy.ops, want)
	}
	for i := range want {
		if spy.ops[i] != want[i] {
			t.Fatalf("op %d = %q, want %q (full sequence %v)", i, spy.ops[i], want[i], spy.ops)
		}
	}
	if _, err := ReadCaptureFile(path); err != nil {
		t.Fatalf("committed capture does not read back: %v", err)
	}
}

// TestWriteFileFailureLeavesNoDebris drives every write-path fault the
// chaos filesystem can inject at full probability and checks the two
// invariants that make failure safe: no temp file survives, and a valid
// capture already at the destination is untouched.
func TestWriteFileFailureLeavesNoDebris(t *testing.T) {
	c := testCapture(t)
	cases := []struct {
		name string
		prep func(*ChaosFS)
	}{
		{"enospc", func(f *ChaosFS) { f.ENOSPCWindow(100) }},
		{"write-error", func(f *ChaosFS) { f.WriteErr = 1 }},
		{"short-write", func(f *ChaosFS) { f.ShortWrite = 1 }},
		{"torn-rename", func(f *ChaosFS) { f.RenameErr = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "c.dgt")
			if err := c.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			chaos := NewChaosFS(1)
			tc.prep(chaos)
			if err := c.WriteFileFS(chaos, path); err == nil {
				t.Fatal("injected fault did not surface")
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Errorf("failed write left temp %s", e.Name())
				}
			}
			if _, err := ReadCaptureFile(path); err != nil {
				t.Errorf("failed write damaged the existing capture: %v", err)
			}
		})
	}
}

// TestReadErrorClassification separates the two failure families consumers
// must treat differently: damaged bytes (quarantine and re-record) wrap
// ErrCorrupt; an I/O path that cannot produce bytes (degrade to live, the
// file may be fine) does not.
func TestReadErrorClassification(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.dgt")
	if err := testCapture(t).WriteFile(path); err != nil {
		t.Fatal(err)
	}

	chaos := NewChaosFS(1)
	chaos.ReadErr = 1
	if _, err := ReadCaptureFileFS(chaos, path); err == nil {
		t.Fatal("read errors did not surface")
	} else if IsQuarantineable(err) {
		t.Errorf("device read error classified as quarantineable: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"bitflip":  func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncate": func(b []byte) []byte { return b[:len(b)*2/3] },
		"empty":    func(b []byte) []byte { return nil },
	} {
		bad := filepath.Join(dir, name+".dgt")
		if err := os.WriteFile(bad, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCaptureFileFS(OS, bad); err == nil {
			t.Errorf("%s: damaged capture accepted", name)
		} else if !IsQuarantineable(err) {
			t.Errorf("%s: damage not classified quarantineable: %v", name, err)
		}
	}
}

// TestQuarantineOneWayDoor checks the quarantine mechanics: the condemned
// file moves (never copies) into .quarantine with a reason alongside,
// repeats get collision suffixes, and a file that is already gone — another
// process won the race — counts as done.
func TestQuarantineOneWayDoor(t *testing.T) {
	dir := t.TempDir()
	plant := func() string {
		path := filepath.Join(dir, "bad.dgt")
		if err := os.WriteFile(path, []byte("not a capture"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	dest, err := Quarantine(OS, dir, plant(), "because tests")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(dest) != filepath.Join(dir, QuarantineDir) {
		t.Fatalf("quarantined to %s, want inside %s", dest, QuarantineDir)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.dgt")); !os.IsNotExist(err) {
		t.Error("condemned file still present in the trace dir")
	}
	reason, err := os.ReadFile(dest + ".reason")
	if err != nil {
		t.Fatalf("no reason file: %v", err)
	}
	if strings.TrimSpace(string(reason)) != "because tests" {
		t.Errorf("reason = %q", reason)
	}

	dest2, err := Quarantine(OS, dir, plant(), "again")
	if err != nil {
		t.Fatal(err)
	}
	if dest2 == dest || !strings.HasSuffix(dest2, ".2") {
		t.Errorf("second quarantine of the same name went to %s", dest2)
	}

	gone, err := Quarantine(OS, dir, filepath.Join(dir, "missing.dgt"), "race")
	if err != nil {
		t.Fatalf("quarantining an already-moved file must be benign, got %v", err)
	}
	if gone != "" {
		t.Errorf("racing quarantine reported destination %q, want \"\"", gone)
	}
}

// TestOpenStoreScrub exercises one janitor pass over a mixed directory:
// valid captures verify, damaged ones quarantine, orphaned temps vanish,
// foreign files and the quarantine subdirectory are left alone.
func TestOpenStoreScrub(t *testing.T) {
	dir := t.TempDir()
	c := testCapture(t)
	if err := c.WriteFile(filepath.Join(dir, "good.dgt")); err != nil {
		t.Fatal(err)
	}
	data := encodeCapture(t, c)
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(filepath.Join(dir, "bad.dgt"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "orphan.dgt.tmp-42"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, QuarantineDir, "old.dgt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := OpenStore(OS, dir, VerifyOpen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep := s.Report
	if rep.Skipped {
		t.Fatal("scrub skipped with no other process in the directory")
	}
	if rep.Verified != 1 || rep.Quarantined != 1 || rep.TempsRemoved != 1 || rep.Unreadable != 0 {
		t.Fatalf("report %+v, want 1 verified / 1 quarantined / 1 temp / 0 unreadable", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.dgt")); !os.IsNotExist(err) {
		t.Error("damaged capture still in the trace dir")
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "bad.dgt")); err != nil {
		t.Errorf("damaged capture not in quarantine: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "orphan.dgt.tmp-42")); !os.IsNotExist(err) {
		t.Error("orphan temp survived the janitor")
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Errorf("foreign file was touched: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "old.dgt")); err != nil {
		t.Errorf("janitor descended into the quarantine: %v", err)
	}
	if _, err := ReadCaptureFile(filepath.Join(dir, "good.dgt")); err != nil {
		t.Errorf("valid capture damaged by the scrub: %v", err)
	}
}

// TestOpenStoreSharedSkipsScrub proves the lock protocol: while one store
// holds the directory's shared lock, a second opener cannot take the
// exclusive lock, so it skips the scrub (the live process' files must not
// be swept from under it) and still becomes usable. Once the first store
// closes, the next opener scrubs normally.
func TestOpenStoreSharedSkipsScrub(t *testing.T) {
	dir := t.TempDir()
	first, err := OpenStore(OS, dir, VerifyOpen)
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "w.dgt.tmp-7")
	if err := os.WriteFile(orphan, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := OpenStore(OS, dir, VerifyOpen)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Report.Skipped {
		t.Error("second opener scrubbed a directory another store holds")
	}
	if _, err := os.Stat(orphan); err != nil {
		t.Errorf("live temp swept by a sharing opener: %v", err)
	}
	second.Close()
	first.Close()

	third, err := OpenStore(OS, dir, VerifyOpen)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if third.Report.Skipped {
		t.Error("scrub still skipped after every holder closed")
	}
	if third.Report.TempsRemoved != 1 {
		t.Errorf("post-release scrub removed %d temps, want 1", third.Report.TempsRemoved)
	}
}

// TestVerifyFileModes separates the three strictness levels: off accepts
// anything, open catches any changed byte via the whole-file digest, and
// full catches a file whose preamble digest was forged to match damaged
// contents — only a complete decode sees the section CRCs fail.
func TestVerifyFileModes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.dgt")
	if err := testCapture(t).WriteFile(good); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []VerifyMode{VerifyOff, VerifyOpen, VerifyFull} {
		if err := VerifyFile(OS, good, mode); err != nil {
			t.Errorf("%v rejects a valid capture: %v", mode, err)
		}
	}

	data := encodeCapture(t, testCapture(t))
	data[len(data)-4] ^= 0x01
	flipped := filepath.Join(dir, "flipped.dgt")
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(OS, flipped, VerifyOff); err != nil {
		t.Errorf("off mode inspected the file: %v", err)
	}
	for _, mode := range []VerifyMode{VerifyOpen, VerifyFull} {
		if err := VerifyFile(OS, flipped, mode); !IsQuarantineable(err) {
			t.Errorf("%v on a flipped byte: %v, want quarantineable", mode, err)
		}
	}

	// Forge a file that passes the open check — valid preamble, digest
	// computed over the damaged body — but cannot decode. Only full catches
	// it.
	body := append([]byte(nil), encodeCapture(t, testCapture(t))[16:]...)
	body[len(body)/2] ^= 0x80
	forged := make([]byte, 16+len(body))
	copy(forged, captureMagic)
	binary.LittleEndian.PutUint16(forged[4:], CaptureVersion)
	binary.LittleEndian.PutUint64(forged[8:], crc64.Checksum(body, crcTable))
	copy(forged[16:], body)
	forgedPath := filepath.Join(dir, "forged.dgt")
	if err := os.WriteFile(forgedPath, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(OS, forgedPath, VerifyOpen); err != nil {
		t.Errorf("open mode rejected the forged-digest file (digest is valid): %v", err)
	}
	if err := VerifyFile(OS, forgedPath, VerifyFull); !IsQuarantineable(err) {
		t.Errorf("full mode on a forged digest: %v, want quarantineable", err)
	}
}

// TestChaosFSDeterministic pins the chaos filesystem's seeding contract:
// the same seed injects the same fault schedule, so a failing soak round
// can be replayed exactly.
func TestChaosFSDeterministic(t *testing.T) {
	run := func(seed int64) FaultCounts {
		chaos := NewChaosFS(seed)
		chaos.OpenErr, chaos.ReadErr, chaos.WriteErr = 0.3, 0.3, 0.3
		dir := t.TempDir()
		c := testCapture(t)
		for i := 0; i < 20; i++ {
			c.WriteFileFS(chaos, filepath.Join(dir, "c.dgt"))
			ReadCaptureFileFS(chaos, filepath.Join(dir, "c.dgt"))
		}
		return chaos.Counts()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed, different fault schedule: %+v vs %+v", a, b)
	}
	if a.Total() == 0 {
		t.Error("no faults injected at 30% rates over 40 operations")
	}
}
