package dram

import (
	"testing"

	"doppelganger/internal/memdata"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Banks = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 banks accepted")
	}
	bad = DefaultConfig()
	bad.RowBits = 2
	if err := bad.Validate(); err == nil {
		t.Error("tiny rows accepted")
	}
}

func TestRowBufferHitIsCheaper(t *testing.T) {
	m := MustNew(DefaultConfig())
	first := m.Access(0x1000, 0)      // closed row: activate + cas
	second := m.Access(0x1040, first) // same row: cas only
	if d := second - first; d >= first {
		t.Errorf("row hit (%v cycles) not cheaper than activation (%v)", d, first)
	}
	if m.RowHits != 1 || m.RowMisses != 1 {
		t.Errorf("stats: %d hits, %d misses", m.RowHits, m.RowMisses)
	}
}

func TestRowConflictIsDearest(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNew(cfg)
	t0 := m.Access(0x0000, 0) // bank 0, row 0 — activation
	// Same bank, different row: conflict (precharge + activate + cas).
	stride := memdata.Addr(1) << uint(cfg.RowBits+3) // skip all banks back to bank 0
	t1 := m.Access(stride, t0)
	cost := t1 - t0
	want := cfg.TRp + cfg.TRcd + cfg.TCas + cfg.TTransfer
	if cost != want {
		t.Errorf("conflict cost = %v, want %v", cost, want)
	}
	if m.Conflicts != 1 {
		t.Errorf("conflicts = %d", m.Conflicts)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNew(cfg)
	// Two accesses to different banks at the same instant overlap their
	// activations; only the channel bursts serialize.
	a := m.Access(0, 0)
	b := m.Access(memdata.Addr(1)<<uint(cfg.RowBits), 0) // next bank
	serialized := 2 * (cfg.TRcd + cfg.TCas + cfg.TTransfer)
	if b >= serialized {
		t.Errorf("banks did not overlap: second done at %v (serial bound %v)", b, serialized)
	}
	if b < a {
		t.Errorf("channel did not serialize bursts: %v < %v", b, a)
	}
}

func TestChannelSerializesBursts(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNew(cfg)
	first := m.Access(0, 0)
	// A same-bank row hit issued "in the past" still queues behind the
	// bank's previous access and then pays CAS + transfer.
	done := m.Access(0x40, 0)
	if want := first + cfg.TCas + cfg.TTransfer; done != want {
		t.Errorf("burst done at %v, want %v", done, want)
	}
}

func TestStreamingIsMostlyRowHits(t *testing.T) {
	m := MustNew(DefaultConfig())
	now := 0.0
	for i := 0; i < 1024; i++ {
		now = m.Access(memdata.Addr(i*64), now)
	}
	if r := m.RowHitRate(); r < 0.9 {
		t.Errorf("sequential stream row-hit rate = %v, want >0.9", r)
	}
}

func TestRandomAccessesMostlyMiss(t *testing.T) {
	m := MustNew(DefaultConfig())
	now := 0.0
	addr := memdata.Addr(12345)
	for i := 0; i < 1024; i++ {
		addr = addr*2654435761 + 97
		now = m.Access(addr&0x0FFFFFC0, now)
	}
	if r := m.RowHitRate(); r > 0.3 {
		t.Errorf("random row-hit rate = %v, want low", r)
	}
}
