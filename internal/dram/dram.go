// Package dram models a banked DRAM with open-row (row-buffer) policy — an
// optional refinement of the paper's fixed-160-cycle main memory (Table 1).
// The timing simulator can plug it in to study how Doppelgänger's extra
// writeback bursts interact with bank conflicts; by default the simulators
// keep the paper's fixed-latency model.
//
// The model is deliberately simple but captures the three first-order
// effects: row-buffer hits vs. conflicts, per-bank serialization, and
// channel transfer occupancy.
package dram

import (
	"fmt"

	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
)

// Config describes the DRAM geometry and timing (in core cycles).
type Config struct {
	Banks   int // power of two
	RowBits int // log2 of the row size in bytes (e.g. 13 = 8 KB rows)

	TCas      float64 // column access (row already open)
	TRcd      float64 // row activate
	TRp       float64 // precharge (closing a conflicting row)
	TTransfer float64 // channel occupancy per 64-byte burst
}

// DefaultConfig roughly matches a DDR3-1600 part at a 1 GHz core clock,
// scaled so a row hit plus transfer is far cheaper than the paper's flat
// 160-cycle latency and a bank conflict approaches it.
func DefaultConfig() Config {
	return Config{
		Banks:   8,
		RowBits: 13,
		TCas:    40, TRcd: 40, TRp: 40,
		TTransfer: 4,
	}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: bank count %d must be a power of two", c.Banks)
	}
	if c.RowBits < memdata.OffsetBits || c.RowBits > 24 {
		return fmt.Errorf("dram: row bits %d out of range", c.RowBits)
	}
	return nil
}

// Memory is the DRAM state: one open row and one busy-until time per bank,
// plus the shared channel.
type Memory struct {
	cfg      Config
	openRow  []int64 // -1 = closed
	bankFree []float64
	chanFree float64

	// Stats.
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64 // closed-row activations
	Conflicts uint64 // open-row conflicts (precharge needed)
	RowUpsets uint64 // injected row upsets (fault injection)

	m   dramMetrics
	inj *faults.Injector
}

// dramMetrics are the registry instruments, resolved once by AttachMetrics.
// The zero value (all nil) is the disabled fast path.
type dramMetrics struct {
	accesses  *metrics.Counter
	rowHits   *metrics.Counter
	rowMisses *metrics.Counter
	conflicts *metrics.Counter
	queueWait *metrics.Histogram // cycles a request waited for its bank
}

// queueWaitBounds bucket the bank queueing delay in core cycles; the top
// bucket edge sits past a full conflict turnaround so pathological pile-ups
// land in the overflow bucket.
var queueWaitBounds = []float64{0, 4, 16, 64, 256, 1024}

// AttachMetrics resolves the DRAM instruments in reg under "dram.*". The
// queue-wait histogram observes, per access, how long the request stalled
// behind earlier work on its bank — the queue-depth proxy in a model that
// tracks busy-until times rather than explicit request queues. A nil
// registry leaves the disabled fast path.
func (m *Memory) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	m.m = dramMetrics{
		accesses:  reg.Counter("dram.accesses"),
		rowHits:   reg.Counter("dram.row_hits"),
		rowMisses: reg.Counter("dram.row_misses"),
		conflicts: reg.Counter("dram.row_conflicts"),
		queueWait: reg.Histogram("dram.queue_wait_cycles", queueWaitBounds),
	}
}

// AttachFaults wires a fault injector into the timing model: each access
// draws against the DRAM target, and a fault is modelled as a row upset —
// the bank's open row is forced closed, so the access (and the next to that
// bank) pays a re-activation. Data corruption of fetched blocks happens in
// the functional LLC models; this is the timing-side effect. A nil injector
// leaves the disabled fast path.
func (m *Memory) AttachFaults(inj *faults.Injector) { m.inj = inj }

// New builds a DRAM model.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{
		cfg:      cfg,
		openRow:  make([]int64, cfg.Banks),
		bankFree: make([]float64, cfg.Banks),
	}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// bankOf interleaves banks on row-sized granularity so sequential rows hit
// different banks.
func (m *Memory) bankOf(addr memdata.Addr) int {
	return int(uint32(addr)>>uint(m.cfg.RowBits)) & (m.cfg.Banks - 1)
}

func (m *Memory) rowOf(addr memdata.Addr) int64 {
	return int64(uint32(addr) >> uint(m.cfg.RowBits) >> uint(logBanks(m.cfg.Banks)))
}

func logBanks(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Access issues one 64-byte transfer for addr at time now and returns its
// completion time. Reads and writes share the same bank/channel path.
func (m *Memory) Access(addr memdata.Addr, now float64) float64 {
	m.Accesses++
	m.m.accesses.Inc()
	bank := m.bankOf(addr)
	row := m.rowOf(addr)
	if m.inj != nil && m.inj.Upset(faults.DRAM) {
		m.RowUpsets++
		m.openRow[bank] = -1
	}

	start := now
	if m.bankFree[bank] > start {
		start = m.bankFree[bank]
	}
	m.m.queueWait.Observe(start - now)

	var access float64
	rowHit := false
	switch {
	case m.openRow[bank] == row:
		m.RowHits++
		m.m.rowHits.Inc()
		rowHit = true
		access = m.cfg.TCas
	case m.openRow[bank] == -1:
		m.RowMisses++
		m.m.rowMisses.Inc()
		access = m.cfg.TRcd + m.cfg.TCas
	default:
		m.Conflicts++
		m.m.conflicts.Inc()
		access = m.cfg.TRp + m.cfg.TRcd + m.cfg.TCas
	}
	m.openRow[bank] = row

	ready := start + access
	// The data burst serializes on the shared channel.
	if m.chanFree > ready {
		ready = m.chanFree
	}
	done := ready + m.cfg.TTransfer
	m.chanFree = done
	if rowHit {
		// Column commands to an open row pipeline: the next one can issue a
		// burst-slot after this one issued, so streaming row hits proceed at
		// channel rate with CAS as pipeline latency (as on real DDR).
		m.bankFree[bank] = start + m.cfg.TTransfer
	} else {
		m.bankFree[bank] = done
	}
	return done
}

// RowHitRate reports the fraction of accesses that hit an open row.
func (m *Memory) RowHitRate() float64 {
	if m.Accesses == 0 {
		return 0
	}
	return float64(m.RowHits) / float64(m.Accesses)
}
