package cache

import (
	"testing"

	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
)

// TestDisabledFaultsZeroAllocs locks down the nil-injector fast path: with
// no injector attached the Lookup hot path must not allocate (or fault) at
// all — the guarantee that lets every cache carry the injector pointer
// unconditionally, mirroring TestDisabledMetricsZeroAllocs.
func TestDisabledFaultsZeroAllocs(t *testing.T) {
	c := testCache()
	c.AttachFaults(nil, faults.LLCTag, faults.LLCData)
	addr := memdata.Addr(0x1240)
	c.Install(c.Victim(addr), addr, nil)
	n := testing.AllocsPerRun(1000, func() {
		if c.Lookup(addr) == nil {
			t.Fatal("expected hit")
		}
	})
	if n != 0 {
		t.Fatalf("disabled-faults hot path allocates %v allocs/op, want 0", n)
	}
}

// TestAttachedInjectorCorruptsHits verifies a rate-1 injector perturbs hit
// data, and that the line's tag stays within its field width.
func TestAttachedInjectorCorruptsHits(t *testing.T) {
	c := testCache()
	inj := faults.New(faults.Config{Seed: 11, Rate: 1})
	c.AttachFaults(inj, faults.LLCTag, faults.LLCData)
	addr := memdata.Addr(0x1240)
	var data memdata.Block
	c.Install(c.Victim(addr), addr, &data)
	// A rate-1 tag fault may hide the line from later lookups (a real
	// consequence of tag corruption), so the lookup outcome itself is not
	// asserted — only that the injector drew and faulted.
	c.Lookup(addr)
	c.Lookup(addr)
	if inj.Stats(faults.LLCData).Accesses == 0 && inj.Stats(faults.LLCTag).Accesses == 0 {
		t.Fatal("attached injector never drew on the hit path")
	}
	if inj.TotalFaults() == 0 {
		t.Fatal("rate-1 injector never faulted")
	}
}
