package cache

import (
	"testing"

	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
)

func testCache() *Cache {
	return New(Config{Name: "L1", SizeBytes: 32 << 10, Ways: 4})
}

// TestDisabledMetricsZeroAllocs locks down the nil-sink fast path: with no
// registry attached, the Lookup/Install hot path must not allocate at all.
// This is the guarantee that lets every array carry instruments
// unconditionally.
func TestDisabledMetricsZeroAllocs(t *testing.T) {
	c := testCache()
	// Pre-fault every set so steady-state Install never grows anything.
	for a := memdata.Addr(0); a < 64<<10; a += memdata.BlockSize {
		c.Install(c.Victim(a), a, nil)
	}
	addr := memdata.Addr(0x1240)
	c.Install(c.Victim(addr), addr, nil)
	n := testing.AllocsPerRun(1000, func() {
		if c.Lookup(addr) == nil { // hit path
			t.Fatal("expected hit")
		}
		c.Lookup(addr + 1<<20)                     // miss path
		miss := addr + memdata.Addr(c.tick%64)<<20 // rotate evictions
		c.Install(c.Victim(miss), miss, nil)       // eviction path
		c.Install(c.Victim(addr), addr, nil)       // restore the hit line
	})
	if n != 0 {
		t.Fatalf("disabled-metrics hot path allocates %v allocs/op, want 0", n)
	}
}

// TestEnabledMetricsCountsMatchStats checks the instruments mirror the
// legacy Stats struct exactly.
func TestEnabledMetricsCountsMatchStats(t *testing.T) {
	c := testCache()
	reg := metrics.NewRegistry()
	c.AttachMetrics(reg)
	for a := memdata.Addr(0); a < 128<<10; a += memdata.BlockSize {
		c.Install(c.Victim(a), a, nil)
		c.Lookup(a)
		c.Lookup(a + 1<<24)
	}
	checks := []struct {
		name string
		want uint64
	}{
		{"cache.l1.hits", c.Stats.Hits},
		{"cache.l1.misses", c.Stats.Misses},
		{"cache.l1.evictions", c.Stats.Evictions},
		{"cache.l1.dirty_evictions", c.Stats.Dirty},
	}
	for _, ck := range checks {
		if got := reg.CounterValue(ck.name); got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, got, ck.want)
		}
	}
}

// BenchmarkLookupDisabled / BenchmarkLookupEnabled make the overhead of the
// metrics layer visible: disabled must be allocation-free, enabled costs
// one atomic add per event.
func BenchmarkLookupDisabled(b *testing.B) {
	c := testCache()
	addr := memdata.Addr(0x1240)
	c.Install(c.Victim(addr), addr, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addr)
	}
}

func BenchmarkLookupEnabled(b *testing.B) {
	c := testCache()
	c.AttachMetrics(metrics.NewRegistry())
	addr := memdata.Addr(0x1240)
	c.Install(c.Victim(addr), addr, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(addr)
	}
}
