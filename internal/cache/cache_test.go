package cache

import (
	"testing"
	"testing/quick"

	"doppelganger/internal/memdata"
)

func tiny() *Cache {
	// 4 sets × 2 ways × 64 B = 512 B.
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "g", SizeBytes: 1 << 20, Ways: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 4},
		{Name: "indivisible", SizeBytes: 1000, Ways: 4},
		{Name: "nonpow2", SizeBytes: 3 * 64 * 4, Ways: 4}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := New(Config{Name: "g", SizeBytes: 2 << 20, Ways: 16})
	if c.Config().Sets() != 2048 {
		t.Errorf("sets = %d", c.Config().Sets())
	}
	if c.SetIndexBits() != 11 {
		t.Errorf("index bits = %d", c.SetIndexBits())
	}
	if c.TagBits() != 15 { // Table 3 baseline: 15 tag bits
		t.Errorf("tag bits = %d, want 15", c.TagBits())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := tiny()
	if c.Lookup(0x1000) != nil {
		t.Fatal("hit in empty cache")
	}
	v := c.Victim(0x1000)
	c.Install(v, 0x1000, nil)
	if l := c.Lookup(0x1000); l == nil {
		t.Fatal("miss after install")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestSameSetDifferentTags(t *testing.T) {
	c := tiny() // 4 sets: addresses 0x0, 0x100 (256), 0x200 share set 0
	c.Install(c.Victim(0x000), 0x000, nil)
	c.Install(c.Victim(0x100), 0x100, nil)
	if c.Probe(0x000) == nil || c.Probe(0x100) == nil {
		t.Fatal("two ways of the same set should coexist")
	}
	// Third block in set 0 evicts LRU (0x000).
	c.Install(c.Victim(0x200), 0x200, nil)
	if c.Probe(0x000) != nil {
		t.Error("LRU line not evicted")
	}
	if c.Probe(0x100) == nil || c.Probe(0x200) == nil {
		t.Error("wrong victim chosen")
	}
}

func TestLRUTouchOnLookup(t *testing.T) {
	c := tiny()
	c.Install(c.Victim(0x000), 0x000, nil)
	c.Install(c.Victim(0x100), 0x100, nil)
	c.Lookup(0x000) // 0x000 now MRU; 0x100 is LRU
	c.Install(c.Victim(0x200), 0x200, nil)
	if c.Probe(0x000) == nil {
		t.Error("recently used line evicted")
	}
	if c.Probe(0x100) != nil {
		t.Error("LRU line survived")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := tiny()
	c.Install(c.Victim(0x000), 0x000, nil)
	v := c.Victim(0x100)
	if v.Valid {
		t.Error("victim should be the invalid way")
	}
}

func TestInstallCopiesData(t *testing.T) {
	c := tiny()
	var b memdata.Block
	b[0] = 0xAB
	c.Install(c.Victim(0x40), 0x40, &b)
	b[0] = 0xCD // mutate source after install
	if got := c.Probe(0x40).Data[0]; got != 0xAB {
		t.Errorf("data aliased: %#x", got)
	}
	if c.Probe(0x40).Addr != 0x40 {
		t.Errorf("addr = %v", c.Probe(0x40).Addr)
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Install(c.Victim(0x40), 0x40, nil)
	c.Probe(0x40).Dirty = true
	old, ok := c.Invalidate(0x40)
	if !ok || !old.Dirty {
		t.Fatalf("invalidate = %+v, %v", old, ok)
	}
	if c.Probe(0x40) != nil {
		t.Error("line still present")
	}
	if _, ok := c.Invalidate(0x40); ok {
		t.Error("double invalidate reported a line")
	}
}

func TestFlushReturnsDirty(t *testing.T) {
	c := tiny()
	c.Install(c.Victim(0x000), 0x000, nil)
	c.Install(c.Victim(0x040), 0x040, nil)
	c.Probe(0x040).Dirty = true
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0].Addr != 0x040 {
		t.Fatalf("flush dirty = %+v", dirty)
	}
	if c.ValidCount() != 0 {
		t.Error("cache not empty after flush")
	}
}

// TestInclusionNeverExceedsWays: property test — after arbitrary installs,
// each set holds at most Ways valid lines and every resident block is
// findable at its own address.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := tiny()
		for _, a := range addrs {
			ba := memdata.Addr(a).BlockAddr()
			if c.Probe(ba) == nil {
				c.Install(c.Victim(ba), ba, nil)
			}
			if c.Probe(ba) == nil {
				return false // just-installed block must be present
			}
		}
		return c.ValidCount() <= 8 // 4 sets × 2 ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachValidAndEvictionStats(t *testing.T) {
	c := tiny()
	for i := 0; i < 16; i++ {
		ba := memdata.Addr(i * 64)
		v := c.Victim(ba)
		if v.Valid {
			v.Dirty = true // force a dirty eviction count
		}
		c.Install(v, ba, nil)
	}
	if c.Stats.Evictions != 8 {
		t.Errorf("evictions = %d, want 8", c.Stats.Evictions)
	}
	if c.Stats.Dirty != 8 {
		t.Errorf("dirty evictions = %d, want 8", c.Stats.Dirty)
	}
	n := 0
	c.ForEachValid(func(l *Line) { n++ })
	if n != 8 {
		t.Errorf("valid = %d", n)
	}
}
