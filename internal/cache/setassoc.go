// Package cache implements a generic set-associative cache array with true
// LRU replacement. It is the building block for the private L1/L2 caches,
// the baseline and precise LLCs, and (via decoupled instantiation) the tag
// and data arrays of the Doppelgänger cache.
//
// The arrays are functional: they track tags, data payloads, dirty bits and
// per-line coherence metadata, but carry no timing. The timing simulator
// attaches latencies and event counters on top.
package cache

import (
	"fmt"
	"math/bits"
	"strings"

	"doppelganger/internal/coherence"
	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
)

// Config describes one set-associative array.
type Config struct {
	Name      string
	SizeBytes int // total data capacity; must be Ways*Sets*BlockSize
	Ways      int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	return c.SizeBytes / (memdata.BlockSize * c.Ways)
}

// Blocks returns the number of block frames.
func (c Config) Blocks() int { return c.SizeBytes / memdata.BlockSize }

// Validate checks that the geometry is a power-of-two set count.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(memdata.BlockSize*c.Ways) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible into %d ways of %dB blocks", c.Name, c.SizeBytes, c.Ways, memdata.BlockSize)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, s)
	}
	return nil
}

// Line is one cache frame. Coh/Sharers/Owner are used where the array acts
// as (or feeds) a directory; private caches use Coh only.
type Line struct {
	Valid bool
	Dirty bool
	Tag   uint32
	Addr  memdata.Addr // full block address (redundant with Tag+set, kept for convenience)
	Data  memdata.Block
	Coh   coherence.State
	Dir   coherence.Line // directory info when this array is an inclusive LLC
	lru   uint64
}

// Stats counts functional events on the array.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Dirty     uint64 // dirty evictions (writebacks)
}

// cacheMetrics are the array's registry instruments, resolved once by
// AttachMetrics. The zero value (all nil) is the disabled fast path: each
// event costs one nil check and zero allocations (locked down by
// TestDisabledMetricsZeroAllocs).
type cacheMetrics struct {
	hits, misses, evictions, dirty *metrics.Counter
}

// Cache is a set-associative array with LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]Line
	setShift uint
	setMask  uint32
	tick     uint64
	Stats    Stats
	m        cacheMetrics

	// Fault injection (nil = disabled fast path, like the metrics sinks).
	inj             *faults.Injector
	injTag, injData faults.Target
}

// New builds an array from cfg, panicking on invalid geometry (all
// configurations in this repository are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]Line, nsets),
		setShift: memdata.OffsetBits,
		setMask:  uint32(nsets - 1),
	}
	backing := make([]Line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c
}

// Config returns the array geometry.
func (c *Cache) Config() Config { return c.cfg }

// AttachMetrics resolves the array's counters in reg under
// "cache.<name>.*". Per-core arrays share a config name, so their counters
// aggregate — matching the hierarchy-level legacy totals the differential
// tests compare against. A nil registry leaves the disabled fast path.
func (c *Cache) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	prefix := "cache." + strings.ToLower(c.cfg.Name) + "."
	c.m = cacheMetrics{
		hits:      reg.Counter(prefix + "hits"),
		misses:    reg.Counter(prefix + "misses"),
		evictions: reg.Counter(prefix + "evictions"),
		dirty:     reg.Counter(prefix + "dirty_evictions"),
	}
}

// AttachFaults wires a fault injector into the array's hit path, charging
// draws against the given tag/data targets. A nil injector leaves the
// disabled fast path (one nil check per hit, zero allocations).
func (c *Cache) AttachFaults(inj *faults.Injector, tag, data faults.Target) {
	c.inj, c.injTag, c.injData = inj, tag, data
}

// SetIndexBits returns log2(number of sets).
func (c *Cache) SetIndexBits() int { return bits.TrailingZeros32(c.setMask + 1) }

// TagBits returns the tag width for a 32-bit physical address.
func (c *Cache) TagBits() int { return 32 - memdata.OffsetBits - c.SetIndexBits() }

func (c *Cache) setIndex(addr memdata.Addr) uint32 {
	return (uint32(addr) >> c.setShift) & c.setMask
}

func (c *Cache) tagOf(addr memdata.Addr) uint32 {
	return uint32(addr) >> (c.setShift + uint(c.SetIndexBits()))
}

// Lookup finds the line holding addr's block, updating LRU on a hit.
// It returns nil on a miss. Stats are updated.
func (c *Cache) Lookup(addr memdata.Addr) *Line {
	if l := c.Probe(addr); l != nil {
		c.touch(l)
		c.Stats.Hits++
		c.m.hits.Inc()
		if c.inj != nil {
			c.injectHit(l)
		}
		return l
	}
	c.Stats.Misses++
	c.m.misses.Inc()
	return nil
}

// injectHit draws faults against the line being returned from a hit: one
// data-array draw that may corrupt the stored payload in place, and one
// tag-array draw that may flip a stored tag bit. The Addr field is the
// simulator's ground truth for writebacks and back-invalidations and is
// deliberately left intact — a corrupted tag makes the line stop answering
// for its true address (and possibly answer for another), which the
// hierarchy's inclusivity corners already absorb.
func (c *Cache) injectHit(l *Line) {
	c.inj.CorruptBlock(c.injData, &l.Data)
	l.Tag = c.inj.CorruptBits(c.injTag, l.Tag, c.TagBits())
}

// Probe finds the line holding addr's block without updating LRU or stats.
func (c *Cache) Probe(addr memdata.Addr) *Line {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// touch marks l most recently used.
func (c *Cache) touch(l *Line) {
	c.tick++
	l.lru = c.tick
}

// Touch promotes the line to MRU; exported for callers that Probe first.
func (c *Cache) Touch(l *Line) { c.touch(l) }

// Victim selects the fill victim for addr's set: an invalid way if one
// exists, otherwise the LRU line. The returned line is still live; callers
// inspect it (for writebacks / back-invalidations) before overwriting.
func (c *Cache) Victim(addr memdata.Addr) *Line {
	set := c.sets[c.setIndex(addr)]
	victim := &set[0]
	for i := range set {
		if !set[i].Valid {
			return &set[i]
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Install fills addr's block into l (which must come from Victim(addr)),
// resetting metadata and promoting it to MRU. Eviction bookkeeping is the
// caller's responsibility; Install records eviction stats if l was valid.
func (c *Cache) Install(l *Line, addr memdata.Addr, data *memdata.Block) {
	if l.Valid {
		c.Stats.Evictions++
		c.m.evictions.Inc()
		if l.Dirty {
			c.Stats.Dirty++
			c.m.dirty.Inc()
		}
	}
	*l = Line{
		Valid: true,
		Tag:   c.tagOf(addr),
		Addr:  addr.BlockAddr(),
	}
	if data != nil {
		l.Data = *data
	}
	c.touch(l)
}

// Invalidate drops addr's block if present, returning the stale line value
// (for writeback decisions) and whether it was present.
func (c *Cache) Invalidate(addr memdata.Addr) (Line, bool) {
	if l := c.Probe(addr); l != nil {
		old := *l
		*l = Line{}
		return old, true
	}
	return Line{}, false
}

// ForEachValid visits every valid line; used by the snapshot analyzers.
func (c *Cache) ForEachValid(fn func(l *Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				fn(&c.sets[s][w])
			}
		}
	}
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	c.ForEachValid(func(*Line) { n++ })
	return n
}

// Flush invalidates the entire array, returning dirty lines to the caller
// in unspecified order so writebacks can be performed.
func (c *Cache) Flush() []Line {
	var dirty []Line
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.Valid && l.Dirty {
				dirty = append(dirty, *l)
			}
			*l = Line{}
		}
	}
	return dirty
}
