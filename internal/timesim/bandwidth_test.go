package timesim

import (
	"testing"

	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

// TestMemOccupancySerializesFills: with a busy memory channel, overlapping
// misses queue behind each other; runtime grows versus the unlimited-
// bandwidth Table 1 model.
func TestMemOccupancySerializesFills(t *testing.T) {
	blocks := make([]int, 128)
	for i := range blocks {
		blocks[i] = i
	}
	rec := mkTrace(0, blocks...)
	free := DefaultConfig()
	busy := DefaultConfig()
	busy.MemOccupancy = 30
	a := run1(rec, free)
	b := run1(rec, busy)
	if b.Cycles <= a.Cycles {
		t.Errorf("memory occupancy had no effect: %d vs %d", b.Cycles, a.Cycles)
	}
	// With 30-cycle occupancy, 128 fills cannot finish faster than
	// 128×30 cycles of channel time.
	if b.Cycles < 128*30 {
		t.Errorf("cycles = %d, below channel bound %d", b.Cycles, 128*30)
	}
}

// TestWritebackBufferStalls: a stream of dirty evictions with a tiny
// writeback buffer must run slower than with an unbounded one.
func TestWritebackBufferStalls(t *testing.T) {
	rec := trace.NewRecorder(1)
	// Write a long stream of distinct blocks through a tiny LLC: every fill
	// evicts a dirty victim, generating a writeback.
	for i := 0; i < 400; i++ {
		rec.Access(0, memdata.Addr(0x10000+i*64), true, 4, uint64(i), false)
	}
	loose := DefaultConfig()
	tight := DefaultConfig()
	tight.WBEntries = 1
	tight.MemOccupancy = 50
	a := Run(rec, memdata.NewStore(), nil, baselineBuilder(2<<10), loose)
	b := Run(rec, memdata.NewStore(), nil, baselineBuilder(2<<10), tight)
	if b.Cycles <= a.Cycles {
		t.Errorf("writeback buffer had no effect: %d vs %d", b.Cycles, a.Cycles)
	}
}

// TestDefaultsPreserveTable1Model: zero MemOccupancy/WBEntries must leave
// results identical to the pre-extension model.
func TestDefaultsPreserveTable1Model(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MemOccupancy != 0 || cfg.WBEntries != 0 {
		t.Fatal("bandwidth extensions must default off (Table 1 fixed-latency model)")
	}
}
