package timesim

import "fmt"

// CrossCheck verifies that the metrics registry and the legacy Result
// counters — two accountings maintained independently at the same event
// sites — agree exactly. It returns nil when metrics were disabled.
//
// The check is only meaningful when the registry was dedicated to this run:
// a registry shared across runs accumulates events from all of them.
func (r *Result) CrossCheck() error {
	reg := r.Metrics
	if reg == nil {
		return nil
	}
	checks := []struct {
		name string
		want uint64
	}{
		// Hierarchy events vs funcsim.Stats.
		{"funcsim.loads", r.Hier.Loads},
		{"funcsim.stores", r.Hier.Stores},
		{"funcsim.l1.hits", r.Hier.L1Hits},
		{"funcsim.l1.misses", r.Hier.L1Misses},
		{"funcsim.l2.hits", r.Hier.L2Hits},
		{"funcsim.l2.misses", r.Hier.L2Misses},
		{"funcsim.llc.reads", r.Hier.LLCReads},
		{"funcsim.llc.hits", r.Hier.LLCHits},
		{"funcsim.dirty_backinval_writes", r.Hier.DirtyBackInvalWrites},
		{"funcsim.remote_writebacks", r.Hier.RemoteWritebacks},
		{"coherence.back_invalidations", r.Hier.BackInvals},
		// LLC structure effects vs core.Effects totals.
		{"funcsim.llc.mem_reads", uint64(r.Totals.MemReads)},
		{"funcsim.llc.mem_writes", uint64(r.Totals.MemWrites)},
		{"funcsim.llc.map_gens", uint64(r.Totals.MapGens)},
		// Private array events counted a second time inside internal/cache.
		// L1/L2 Lookup is called exactly once per hierarchy probe, so the
		// array-level and hierarchy-level counts must coincide.
		{"cache.l1.hits", r.Hier.L1Hits},
		{"cache.l1.misses", r.Hier.L1Misses},
		{"cache.l2.hits", r.Hier.L2Hits},
		{"cache.l2.misses", r.Hier.L2Misses},
		// Core model.
		{"timesim.instructions", r.Instructions},
	}
	for _, c := range checks {
		if got := reg.CounterValue(c.name); got != c.want {
			return fmt.Errorf("timesim: metric %s = %d, legacy counter = %d", c.name, got, c.want)
		}
	}
	return nil
}
