package timesim

import (
	"container/list"
	"math/rand"
	"testing"
)

// TestRobRingDifferential drives the ring through a random push/pop sequence
// against a doubly-linked-list reference, forcing growth mid-stream and
// wraparound across the power-of-two boundary many times.
func TestRobRingDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var r robRing
	ref := list.New()
	next := uint64(0)
	for op := 0; op < 50000; op++ {
		if r.n != ref.Len() {
			t.Fatalf("op %d: n = %d, ref %d", op, r.n, ref.Len())
		}
		if ref.Len() > 0 && rng.Intn(2) == 0 {
			want := ref.Remove(ref.Front()).(robEntry)
			if got := *r.at(0); got != want {
				t.Fatalf("op %d: front = %+v, want %+v", op, got, want)
			}
			r.popFront()
		} else {
			e := robEntry{instr: next, complete: float64(rng.Intn(1000))}
			next++
			r.push(e)
			ref.PushBack(e)
		}
		// Spot-check a random interior index.
		if ref.Len() > 0 {
			i := rng.Intn(ref.Len())
			el := ref.Front()
			for k := 0; k < i; k++ {
				el = el.Next()
			}
			if got, want := *r.at(i), el.Value.(robEntry); got != want {
				t.Fatalf("op %d: at(%d) = %+v, want %+v", op, i, got, want)
			}
		}
	}
}

// TestRobRingSteadyStateZeroAllocs: once grown to the working-set size, the
// ring never allocates again — the property the slice re-slicing lacked.
func TestRobRingSteadyStateZeroAllocs(t *testing.T) {
	var r robRing
	for i := 0; i < 100; i++ {
		r.push(robEntry{instr: uint64(i)})
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.push(robEntry{instr: 1})
		r.popFront()
	}); n != 0 {
		t.Errorf("steady-state push/pop allocates %v allocs/op, want 0", n)
	}
}
