package timesim

import (
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
	"doppelganger/internal/trace"
)

func baselineBuilder(size int) func(st *memdata.Store, ann *approx.Annotations) core.LLC {
	return func(st *memdata.Store, ann *approx.Annotations) core.LLC {
		return core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: size, Ways: 4}, st, ann)
	}
}

// mkTrace builds a single-core trace of loads at the given block indices
// with a fixed instruction gap.
func mkTrace(gap uint32, blocks ...int) *trace.Recorder {
	rec := trace.NewRecorder(1)
	for _, b := range blocks {
		rec.Work(0, int(gap))
		rec.Access(0, memdata.Addr(0x1000+b*64), false, 4, 0, false)
	}
	return rec
}

func run1(rec *trace.Recorder, cfg Config) *Result {
	cfg.Cores = 1
	return Run(rec, memdata.NewStore(), nil, baselineBuilder(16<<10), cfg)
}

func TestComputeBoundRuntime(t *testing.T) {
	// One L1-resident block touched repeatedly with big gaps: runtime is
	// dominated by dispatch (gap/width), not memory.
	blocks := make([]int, 100)
	rec := mkTrace(400, blocks...)
	res := run1(rec, DefaultConfig())
	wantMin := uint64(100 * 400 / 4)
	if res.Cycles < wantMin || res.Cycles > wantMin+uint64(float64(wantMin)*0.2) {
		t.Errorf("cycles = %d, want ≈%d", res.Cycles, wantMin)
	}
	if res.Instructions != 100*401 {
		t.Errorf("instructions = %d", res.Instructions)
	}
}

func TestMemoryBoundRuntime(t *testing.T) {
	// Distinct blocks with zero gap: every access misses to memory; with
	// MSHRs=1 they fully serialize at ≥ MemLat each.
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	blocks := make([]int, 50)
	for i := range blocks {
		blocks[i] = i
	}
	res := run1(mkTrace(0, blocks...), cfg)
	if res.Cycles < 50*160 {
		t.Errorf("cycles = %d, want ≥ %d (serialized misses)", res.Cycles, 50*160)
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// With 8 MSHRs the same misses overlap: runtime must be far below the
	// serialized bound but at least one memory latency.
	cfg := DefaultConfig()
	blocks := make([]int, 64)
	for i := range blocks {
		blocks[i] = i
	}
	res := run1(mkTrace(0, blocks...), cfg)
	serial := uint64(64 * 160)
	if res.Cycles >= serial/3 {
		t.Errorf("cycles = %d; MSHR overlap should beat %d by ≥3x", res.Cycles, serial)
	}
	if res.Cycles < 160 {
		t.Errorf("cycles = %d < one memory latency", res.Cycles)
	}
}

func TestROBLimitsOverlap(t *testing.T) {
	// With a huge gap between misses the ROB fills with non-mem
	// instructions, serializing the misses even with many MSHRs.
	cfgWide := DefaultConfig()
	cfgWide.ROB = 10000
	cfgNarrow := DefaultConfig()
	cfgNarrow.ROB = 16
	blocks := make([]int, 64)
	for i := range blocks {
		blocks[i] = i
	}
	wide := run1(mkTrace(64, blocks...), cfgWide)
	narrow := run1(mkTrace(64, blocks...), cfgNarrow)
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("narrow ROB (%d cycles) should be slower than wide (%d)", narrow.Cycles, wide.Cycles)
	}
}

func TestCacheHitsAreCheap(t *testing.T) {
	// Second sweep over a small set of blocks hits in L1/L2; runtime should
	// barely grow.
	blocks := make([]int, 0, 32)
	for i := 0; i < 8; i++ {
		blocks = append(blocks, i)
	}
	once := run1(mkTrace(0, blocks...), DefaultConfig())
	blocks = append(blocks, blocks...)
	blocks = append(blocks, blocks...) // 4 sweeps
	fourx := run1(mkTrace(0, blocks...), DefaultConfig())
	if fourx.Cycles > once.Cycles*2 {
		t.Errorf("4 sweeps took %d vs %d for one; hits should be cheap", fourx.Cycles, once.Cycles)
	}
}

func TestMultiCoreFinishesAllTraces(t *testing.T) {
	rec := trace.NewRecorder(4)
	for c := 0; c < 4; c++ {
		for i := 0; i < 20+10*c; i++ {
			rec.Access(c, memdata.Addr(0x1000+c*0x10000+i*64), i%3 == 0, 4, 7, false)
		}
	}
	cfg := DefaultConfig()
	res := Run(rec, memdata.NewStore(), nil, baselineBuilder(16<<10), cfg)
	if res.Instructions != uint64(rec.Instructions()) {
		t.Errorf("instructions = %d, want %d", res.Instructions, rec.Instructions())
	}
	for c, cy := range res.PerCoreCycles {
		if cy == 0 && len(rec.Cores[c]) > 0 {
			t.Errorf("core %d reported 0 cycles", c)
		}
		if cy > res.Cycles {
			t.Errorf("core %d beyond total", c)
		}
	}
}

func TestStoresApplyValues(t *testing.T) {
	rec := trace.NewRecorder(1)
	rec.Access(0, 0x1000, true, 4, 1234, false)
	st := memdata.NewStore()
	cfg := DefaultConfig()
	cfg.Cores = 1
	var built core.LLC
	res := Run(rec, st, nil, func(s *memdata.Store, ann *approx.Annotations) core.LLC {
		built = core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: 16 << 10, Ways: 4}, s, ann)
		return built
	}, cfg)
	_ = res
	// The value lives in the replay hierarchy's caches; the LLC's snapshot
	// store is a clone, so check via the built LLC's backing after eviction
	// is unnecessary — instead verify traffic happened.
	if res.Totals.MemReads != 1 {
		t.Errorf("write-allocate should read memory once: %d", res.Totals.MemReads)
	}
}

func TestDeterministicReplay(t *testing.T) {
	rec := trace.NewRecorder(2)
	for i := 0; i < 200; i++ {
		rec.Access(i%2, memdata.Addr(0x1000+(i*37%64)*64), i%5 == 0, 4, uint64(i), false)
	}
	cfg := DefaultConfig()
	cfg.Cores = 2
	a := Run(rec, memdata.NewStore(), nil, baselineBuilder(8<<10), cfg)
	b := Run(rec, memdata.NewStore(), nil, baselineBuilder(8<<10), cfg)
	if a.Cycles != b.Cycles || a.Totals.MemReads != b.Totals.MemReads ||
		a.Totals.MemWrites != b.Totals.MemWrites || a.Totals.PTagReads != b.Totals.PTagReads {
		t.Error("replay nondeterministic")
	}
}

func TestLLCPortContention(t *testing.T) {
	// Four cores all missing to the LLC: with a single bank, high port
	// occupancy must increase runtime versus free ports.
	rec := trace.NewRecorder(4)
	for c := 0; c < 4; c++ {
		for i := 0; i < 100; i++ {
			rec.Access(c, memdata.Addr(0x100000*(c+1)+i*64), false, 4, 0, false)
		}
	}
	free := DefaultConfig()
	free.LLCPort = 0
	congested := DefaultConfig()
	congested.LLCPort = 20
	a := Run(rec, memdata.NewStore(), nil, baselineBuilder(4<<10), free)
	b := Run(rec, memdata.NewStore(), nil, baselineBuilder(4<<10), congested)
	if b.Cycles <= a.Cycles {
		t.Errorf("port contention had no effect: %d vs %d", b.Cycles, a.Cycles)
	}
}

func TestMPKIAndTraffic(t *testing.T) {
	blocks := make([]int, 100)
	for i := range blocks {
		blocks[i] = i
	}
	res := run1(mkTrace(9, blocks...), DefaultConfig())
	if res.MemTraffic() != 100 {
		t.Errorf("traffic = %d, want 100 cold misses", res.MemTraffic())
	}
	if mpki := res.MPKI(); mpki < 99 || mpki > 101 { // 100 misses / 1000 instr
		t.Errorf("MPKI = %v", mpki)
	}
}
