package timesim

import (
	"testing"

	"doppelganger/internal/dram"
)

// TestDRAMBackend: a sequential fill stream enjoys row-buffer hits under
// the banked model and finishes faster than the flat 160-cycle latency; a
// random stream does not.
func TestDRAMBackend(t *testing.T) {
	seq := make([]int, 256)
	for i := range seq {
		seq[i] = i
	}
	rnd := make([]int, 256)
	for i := range rnd {
		rnd[i] = (i * 2654435761) % 100000
	}

	flat := DefaultConfig()
	banked := DefaultConfig()
	dcfg := dram.DefaultConfig()
	banked.DRAM = &dcfg

	flatSeq := run1(mkTrace(0, seq...), flat)
	bankSeq := run1(mkTrace(0, seq...), banked)
	if bankSeq.Cycles >= flatSeq.Cycles {
		t.Errorf("sequential: banked (%d) not faster than flat (%d)", bankSeq.Cycles, flatSeq.Cycles)
	}

	bankRnd := run1(mkTrace(0, rnd...), banked)
	if bankRnd.Cycles <= bankSeq.Cycles {
		t.Errorf("random (%d) not slower than sequential (%d) under banked DRAM", bankRnd.Cycles, bankSeq.Cycles)
	}
}
