// Package timesim is the cycle-level timing simulator, standing in for the
// paper's FeS2 full-system simulator (§4). It replays the per-core memory
// traces recorded by the functional simulator against a live cache
// hierarchy (so hits, misses, Doppelgänger map computations and
// back-invalidations all happen for real) under a 4-wide, 80-entry-ROB
// out-of-order core model with MSHR-limited miss overlap, a single-banked
// LLC port, and a fixed-latency DRAM (Table 1).
package timesim

import (
	"container/heap"
	"context"
	"fmt"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/dram"
	"doppelganger/internal/faults"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
	"doppelganger/internal/metrics"
	"doppelganger/internal/quality"
	"doppelganger/internal/trace"
)

// Config is the timing model configuration; DefaultConfig reproduces the
// paper's Table 1.
type Config struct {
	Cores int
	Width int // dispatch width (instructions per cycle)
	ROB   int // reorder buffer entries
	MSHRs int // outstanding misses per core

	L1Lat  float64
	L2Lat  float64
	LLCLat float64
	MemLat float64

	// LLCPort is the bank occupancy per LLC operation; the Table 1 LLC is
	// single-banked, so concurrent requests serialize.
	LLCPort float64
	// EvictPenalty is the bank occupancy per invalidated tag / queued
	// writeback when a replacement triggers mass evictions (§3.5).
	EvictPenalty float64

	// MemOccupancy optionally serializes the memory channel: each off-chip
	// transfer occupies it for this many cycles (0, the Table 1 model,
	// means fixed latency with unlimited bandwidth).
	MemOccupancy float64
	// WBEntries optionally bounds the LLC writeback buffer: when this many
	// writebacks are in flight, further LLC operations stall until one
	// drains (0 means unbounded, the default).
	WBEntries int

	// DRAM optionally replaces the fixed MemLat with the banked open-row
	// model of internal/dram (nil keeps the Table 1 fixed-latency memory).
	DRAM *dram.Config

	// Faults optionally injects faults into the replayed LLC organization
	// and (when the DRAM model is enabled) the DRAM banks. nil keeps the
	// zero-cost disabled path.
	Faults *faults.Injector

	// Quality optionally attaches the online quality guard to the replayed
	// LLC organization, so guarded timing runs pay (and measure) the same
	// bypass behaviour as guarded functional runs. nil disables.
	Quality *quality.Controller

	// Metrics optionally threads the whole run — private caches, MSI
	// tracker, LLC organization, DRAM and the core model itself — through a
	// registry. nil keeps the zero-cost disabled path.
	Metrics *metrics.Registry
	// Trace optionally streams Chrome-trace events (LLC/memory-level
	// operations as duration events, back-invalidation bursts as instants)
	// with ts in simulated cycles. nil disables.
	Trace *metrics.TraceWriter
	// TracePID is this run's process lane in a shared trace; TraceLabel, if
	// non-empty, names the lane in the viewer.
	TracePID   int
	TraceLabel string
}

// DefaultConfig returns the paper's system configuration.
func DefaultConfig() Config {
	return Config{
		Cores: 4, Width: 4, ROB: 80, MSHRs: 8,
		L1Lat: 1, L2Lat: 3, LLCLat: 6, MemLat: 160,
		LLCPort: 1, EvictPenalty: 1,
	}
}

// Result summarizes a timing run.
type Result struct {
	Cycles        uint64   // wall-clock cycles (max over cores)
	PerCoreCycles []uint64 // per-core completion cycle
	Instructions  uint64   // total instructions retired
	Totals        core.Effects
	Hier          funcsim.Stats
	LLC           core.LLC

	// Metrics is the registry the run was attached to (nil when disabled).
	// The legacy counter fields above are then a second, independently
	// maintained view of the same events; CrossCheck proves they agree.
	Metrics *metrics.Registry
}

// MemTraffic is the total off-chip traffic in blocks (Fig. 12's metric).
func (r *Result) MemTraffic() uint64 {
	return uint64(r.Totals.MemReads) + uint64(r.Totals.MemWrites)
}

// MPKI is LLC misses per thousand instructions.
func (r *Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Hier.LLCReads-r.Hier.LLCHits) / float64(r.Instructions) * 1000
}

// coreState tracks one core's progress through its trace.
type coreState struct {
	t        trace.Trace
	pos      int
	instr    uint64  // instructions dispatched so far
	dispatch float64 // cycle at which the next instruction may dispatch
	finish   float64 // completion time of the latest memory op

	// rob holds in-flight memory ops as (instruction index, completion
	// cycle) with monotone completion (in-order retirement).
	rob robRing

	// Stall accounting: cycles the next op's issue was pushed back waiting
	// for ROB retirement / a free MSHR. Dumped into the registry at run end.
	robStall  float64
	mshrStall float64
}

type robEntry struct {
	instr    uint64
	complete float64
}

// robRing is a growable ring buffer of in-flight memory ops. Retirement
// used to re-slice a plain slice (rob = rob[1:]), which pinned every
// retired entry for the rest of the run and forced append to grow a fresh
// backing array over and over; the ring reuses one power-of-two array and
// reaches steady state after at most one growth past the ROB depth.
type robRing struct {
	buf  []robEntry // power-of-two length
	head int
	n    int
}

func (r *robRing) at(i int) *robEntry { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *robRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *robRing) push(e robEntry) {
	if r.n == len(r.buf) {
		grown := make([]robEntry, max(2*len(r.buf), 128))
		for i := 0; i < r.n; i++ {
			grown[i] = *r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

// ready computes the cycle at which this core's next memory op can issue,
// honoring dispatch width, ROB occupancy and MSHR limits. It does not touch
// shared state, so the scheduler can order cores by it.
func (cs *coreState) ready(cfg Config) float64 {
	r := cs.t[cs.pos]
	t := cs.dispatch + float64(r.Gap)/float64(cfg.Width)
	nextInstr := cs.instr + uint64(r.Gap) + 1

	// ROB: this instruction cannot dispatch until instruction
	// nextInstr-ROB has retired. Retirement is in order, so the retire time
	// is the completion of the newest memory op at or before it.
	base := t
	for cs.rob.n > 0 && cs.rob.at(0).instr+uint64(cfg.ROB) <= nextInstr {
		if c := cs.rob.at(0).complete; c > t {
			t = c
		}
		cs.rob.popFront()
	}
	cs.robStall += t - base
	// MSHRs: at most MSHRs memory ops in flight.
	base = t
	for inflight(&cs.rob, t) >= cfg.MSHRs {
		t = earliestAfter(&cs.rob, t)
	}
	cs.mshrStall += t - base
	return t
}

func inflight(rob *robRing, t float64) int {
	n := 0
	for i := rob.n - 1; i >= 0; i-- {
		if rob.at(i).complete > t {
			n++
		} else {
			break // completions are monotone
		}
	}
	return n
}

func earliestAfter(rob *robRing, t float64) float64 {
	for i := 0; i < rob.n; i++ {
		if c := rob.at(i).complete; c > t {
			return c
		}
	}
	return t
}

// coreQueue is a priority queue of cores by next-issue time.
type coreQueue struct {
	ids   []int
	times []float64
}

func (q *coreQueue) Len() int           { return len(q.ids) }
func (q *coreQueue) Less(i, j int) bool { return q.times[i] < q.times[j] }
func (q *coreQueue) Swap(i, j int) {
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
	q.times[i], q.times[j] = q.times[j], q.times[i]
}
func (q *coreQueue) Push(x interface{}) { panic("fixed-size queue") }
func (q *coreQueue) Pop() interface{}   { panic("fixed-size queue") }

// Run replays the traces against a fresh hierarchy whose LLC organization
// is built by llcb over a clone of the initial memory image.
func Run(tr *trace.Recorder, initial *memdata.Store, ann *approx.Annotations,
	llcb func(st *memdata.Store, ann *approx.Annotations) core.LLC, cfg Config) *Result {
	res, err := RunContext(context.Background(), tr, initial, ann, llcb, cfg)
	if err != nil {
		// Background contexts are never cancelled.
		panic(err)
	}
	return res
}

// RunContext is Run with cooperative cancellation: the event loop polls ctx
// every few thousand replayed accesses and returns (nil, ctx.Err()) when it
// is cancelled. With a non-cancellable context the run is identical to Run.
func RunContext(ctx context.Context, tr *trace.Recorder, initial *memdata.Store, ann *approx.Annotations,
	llcb func(st *memdata.Store, ann *approx.Annotations) core.LLC, cfg Config) (*Result, error) {

	st := initial.Clone()
	llc := llcb(st, ann)
	hcfg := funcsim.Config{Cores: cfg.Cores, L1: l1Config(), L2: l2Config()}
	h := funcsim.New(hcfg, llc, st, ann, nil)
	h.AttachMetrics(cfg.Metrics)
	h.AttachFaults(cfg.Faults)
	h.AttachQuality(cfg.Quality)

	// Core-model instruments; all remain nil (free no-ops) when metrics are
	// disabled, and the occupancy observations are skipped outright.
	var tm struct {
		instructions        *metrics.Counter
		robStall, mshrStall *metrics.Counter
		robOcc, mshrOcc     *metrics.Histogram
	}
	if cfg.Metrics != nil {
		tm.instructions = cfg.Metrics.Counter("timesim.instructions")
		tm.robStall = cfg.Metrics.Counter("timesim.rob_stall_cycles")
		tm.mshrStall = cfg.Metrics.Counter("timesim.mshr_stall_cycles")
		tm.robOcc = cfg.Metrics.Histogram("timesim.rob_occupancy", []float64{4, 8, 16, 32, 48, 64, 80})
		tm.mshrOcc = cfg.Metrics.Histogram("timesim.mshr_occupancy", []float64{1, 2, 4, 6, 8})
	}
	if cfg.Trace != nil {
		if cfg.TraceLabel != "" {
			cfg.Trace.ProcessName(cfg.TracePID, cfg.TraceLabel)
		}
		for c := 0; c < cfg.Cores; c++ {
			cfg.Trace.ThreadName(cfg.TracePID, c, fmt.Sprintf("core %d", c))
		}
	}

	cores := make([]*coreState, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		var t trace.Trace
		if c < len(tr.Cores) {
			t = tr.Cores[c]
		}
		cores[c] = &coreState{t: t}
	}

	// Schedule cores by next issue time so shared-LLC state is touched in
	// timestamp order.
	q := &coreQueue{}
	for c, cs := range cores {
		if cs.pos < len(cs.t) {
			q.ids = append(q.ids, c)
			q.times = append(q.times, cs.ready(cfg))
		}
	}
	heap.Init(q)

	var llcFree, memFree float64
	var wbDrain []float64 // in-flight writeback completion times (sorted)
	var instructions uint64
	var mem *dram.Memory
	if cfg.DRAM != nil {
		mem = dram.MustNew(*cfg.DRAM)
		mem.AttachMetrics(cfg.Metrics)
		mem.AttachFaults(cfg.Faults)
	}
	ctxDone := ctx.Done()
	var iter uint
	for q.Len() > 0 {
		if ctxDone != nil {
			// Poll cheaply: one counter increment per event, one channel check
			// every 4096 events.
			if iter&4095 == 0 {
				select {
				case <-ctxDone:
					return nil, ctx.Err()
				default:
				}
			}
			iter++
		}
		c := q.ids[0]
		cs := cores[c]
		t := q.times[0]
		r := cs.t[cs.pos]

		h.Replay(c, r)
		out := h.Last

		var lat float64
		switch out.Level {
		case 1:
			lat = cfg.L1Lat
		case 2:
			lat = cfg.L1Lat + cfg.L2Lat
		case 3:
			lat = cfg.L1Lat + cfg.L2Lat + cfg.LLCLat
		default:
			lat = cfg.L1Lat + cfg.L2Lat + cfg.LLCLat + cfg.MemLat
			if mem != nil {
				arrive := t + cfg.L1Lat + cfg.L2Lat + cfg.LLCLat
				lat = mem.Access(r.Addr, arrive) - t
			} else if cfg.MemOccupancy > 0 {
				// Serialize the off-chip channel: the fill transfer waits
				// for earlier transfers.
				arrive := t + cfg.L1Lat + cfg.L2Lat + cfg.LLCLat
				if memFree > arrive {
					lat += memFree - arrive
					arrive = memFree
				}
				memFree = arrive + cfg.MemOccupancy*float64(out.MemReads)
			}
		}
		complete := t + lat
		if cfg.WBEntries > 0 && out.MemWrites > 0 {
			// Drain completed writebacks, then stall if the buffer is full.
			for len(wbDrain) > 0 && wbDrain[0] <= t {
				wbDrain = wbDrain[1:]
			}
			for w := 0; w < out.MemWrites; w++ {
				if len(wbDrain) >= cfg.WBEntries {
					stallUntil := wbDrain[0]
					if stallUntil > complete {
						complete = stallUntil
					}
					wbDrain = wbDrain[1:]
				}
				drainAt := complete + cfg.MemLat
				if cfg.MemOccupancy > 0 {
					if memFree > complete {
						drainAt = memFree + cfg.MemOccupancy
					}
					memFree = drainAt
				}
				wbDrain = append(wbDrain, drainAt)
			}
		}
		if out.LLCAccesses > 0 {
			// Serialize on the single LLC bank and charge replacement work:
			// each invalidated tag and each queued writeback occupies the
			// bank (§3.5 multi-eviction handling).
			start := t + cfg.L1Lat + cfg.L2Lat
			if llcFree > start {
				complete += llcFree - start
				start = llcFree
			}
			occupancy := cfg.LLCPort*float64(out.LLCAccesses) +
				cfg.EvictPenalty*float64(out.LLCEvictions+out.MemWrites)
			llcFree = start + occupancy
		}

		if cfg.Trace != nil {
			if out.Level >= 3 {
				name, cat := "llc", "llc"
				if out.Level == 4 {
					name, cat = "mem", "mem"
				}
				cfg.Trace.Complete(cfg.TracePID, c, name, cat, t, lat)
			}
			if out.LLCEvictions > 0 {
				cfg.Trace.Instant(cfg.TracePID, c, "back-inval", "llc", t)
			}
		}

		// Account dispatch.
		cs.instr += uint64(r.Gap) + 1
		instructions += uint64(r.Gap) + 1
		cs.dispatch = t + 1/float64(cfg.Width)
		if cs.rob.n > 0 && cs.rob.at(cs.rob.n-1).complete > complete {
			complete = cs.rob.at(cs.rob.n - 1).complete // in-order retire
		}
		cs.rob.push(robEntry{instr: cs.instr, complete: complete})
		if tm.robOcc != nil {
			tm.robOcc.Observe(float64(cs.rob.n))
			tm.mshrOcc.Observe(float64(inflight(&cs.rob, t)))
		}
		if complete > cs.finish {
			cs.finish = complete
		}
		cs.pos++

		if cs.pos < len(cs.t) {
			q.times[0] = cs.ready(cfg)
			heap.Fix(q, 0)
		} else {
			last := q.Len() - 1
			q.Swap(0, last)
			q.ids = q.ids[:last]
			q.times = q.times[:last]
			if last > 0 {
				heap.Fix(q, 0)
			}
		}
	}

	if cfg.Metrics != nil {
		tm.instructions.Add(instructions)
		var rs, ms float64
		for _, cs := range cores {
			rs += cs.robStall
			ms += cs.mshrStall
		}
		tm.robStall.Add(uint64(rs))
		tm.mshrStall.Add(uint64(ms))
	}

	res := &Result{
		PerCoreCycles: make([]uint64, cfg.Cores),
		Instructions:  instructions,
		Totals:        h.Totals,
		Hier:          h.Stats,
		LLC:           llc,
		Metrics:       cfg.Metrics,
	}
	for c, cs := range cores {
		end := cs.finish
		if cs.dispatch > end {
			end = cs.dispatch
		}
		res.PerCoreCycles[c] = uint64(end)
		if uint64(end) > res.Cycles {
			res.Cycles = uint64(end)
		}
	}
	return res, nil
}

// The private-cache geometries of Table 1.
func l1Config() cache.Config { return cache.Config{Name: "L1", SizeBytes: 16 << 10, Ways: 4} }
func l2Config() cache.Config { return cache.Config{Name: "L2", SizeBytes: 128 << 10, Ways: 8} }
