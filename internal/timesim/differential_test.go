// Differential tests: the metrics registry and the legacy counters are two
// independent accountings of the same events, and they must agree exactly
// for real workloads on every LLC organization. The file lives in an
// external test package so it can drive whole benchmarks through
// internal/workloads.
package timesim_test

import (
	"fmt"
	"sync"
	"testing"

	"doppelganger/internal/core"
	"doppelganger/internal/metrics"
	"doppelganger/internal/timesim"
	"doppelganger/internal/workloads"
)

// diffScale keeps each benchmark run to a few milliseconds while still
// overflowing the private caches.
const diffScale = 0.02

var diffBenchmarks = []string{"blackscholes", "jpeg", "kmeans"}

// checkFunctional compares a functional run's registry against every legacy
// counter the hierarchy and the LLC organization maintain.
func checkFunctional(reg *metrics.Registry, run *workloads.RunResult) error {
	s := run.Hier.Stats
	tot := run.Hier.Totals
	checks := []struct {
		name string
		want uint64
	}{
		{"funcsim.loads", s.Loads},
		{"funcsim.stores", s.Stores},
		{"funcsim.l1.hits", s.L1Hits},
		{"funcsim.l1.misses", s.L1Misses},
		{"funcsim.l2.hits", s.L2Hits},
		{"funcsim.l2.misses", s.L2Misses},
		{"funcsim.llc.reads", s.LLCReads},
		{"funcsim.llc.hits", s.LLCHits},
		{"funcsim.dirty_backinval_writes", s.DirtyBackInvalWrites},
		{"funcsim.remote_writebacks", s.RemoteWritebacks},
		{"coherence.back_invalidations", s.BackInvals},
		{"funcsim.llc.mem_reads", uint64(tot.MemReads)},
		{"funcsim.llc.mem_writes", uint64(tot.MemWrites)},
		{"funcsim.llc.map_gens", uint64(tot.MapGens)},
		{"cache.l1.hits", s.L1Hits},
		{"cache.l1.misses", s.L1Misses},
		{"cache.l2.hits", s.L2Hits},
		{"cache.l2.misses", s.L2Misses},
	}

	// Doppelgänger-side counters (post-flush, i.e. the live Stats, not the
	// pre-flush snapshot RunResult keeps for the tables).
	var dopp *core.Doppelganger
	switch l := run.LLC.(type) {
	case *core.Split:
		dopp = l.Doppel
	case *core.Doppelganger:
		dopp = l
	}
	if dopp != nil {
		ds := dopp.Stats
		pre := "core." + dopp.Config().Name + "."
		checks = append(checks, []struct {
			name string
			want uint64
		}{
			{pre + "reads", ds.Reads},
			{pre + "read_hits", ds.ReadHits},
			{pre + "writebacks", ds.WriteBacks},
			{pre + "silent_writes", ds.SilentWrites},
			{pre + "remaps", ds.Remaps},
			{pre + "write_allocs", ds.WriteAllocs},
			{pre + "writeback_misses", ds.WritebackMisses},
			{pre + "inserts", ds.Inserts},
			{pre + "reuse_links", ds.ReuseLinks},
			{pre + "new_data_blocks", ds.NewDataBlocks},
			{pre + "tag_evictions", ds.TagEvictions},
			{pre + "dirty_tag_evictions", ds.DirtyTagEvictions},
			{pre + "data_evictions", ds.DataEvictions},
			{pre + "map_gens", ds.MapGens},
			{pre + "approx_substitutions", ds.ReuseLinks + ds.Remaps},
		}...)
		// Occupancy gauges must have tracked every insert/evict down to the
		// post-flush state.
		if got, want := reg.GaugeValue(pre+"tags_occupied"), int64(dopp.TagEntries()); got != want {
			return fmt.Errorf("gauge %stags_occupied = %d, live occupancy = %d", pre, got, want)
		}
		if got, want := reg.GaugeValue(pre+"data_occupied"), int64(dopp.DataBlocks()); got != want {
			return fmt.Errorf("gauge %sdata_occupied = %d, live occupancy = %d", pre, got, want)
		}
	}
	for _, c := range checks {
		if got := reg.CounterValue(c.name); got != c.want {
			return fmt.Errorf("metric %s = %d, legacy counter = %d", c.name, got, c.want)
		}
	}
	return nil
}

func diffBuilders() map[string]workloads.LLCBuilder {
	return map[string]workloads.LLCBuilder{
		"baseline": workloads.BaselineBuilder(2<<20, 16),
		"split":    workloads.SplitBuilder(14, 0.25),
		"unified":  workloads.UnifiedBuilder(14, 0.5),
	}
}

// TestDifferentialFunctional runs each benchmark functionally against each
// LLC organization with a dedicated registry and proves the registry equals
// the legacy counters exactly. Subtests run in parallel, so `go test -race
// -cpu 1,4` also exercises the instrument atomics under contention.
func TestDifferentialFunctional(t *testing.T) {
	if testing.Short() {
		t.Skip("full-benchmark differential check")
	}
	for llcName, builder := range diffBuilders() {
		for _, bench := range diffBenchmarks {
			t.Run(llcName+"/"+bench, func(t *testing.T) {
				t.Parallel()
				f, err := workloads.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				reg := metrics.NewRegistry()
				run := workloads.RunFunctional(f.New(diffScale), builder,
					workloads.RunOptions{Cores: 4, Metrics: reg})
				if err := checkFunctional(reg, run); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestDifferentialTiming records each benchmark once and replays it against
// each organization with a dedicated registry; Result.CrossCheck proves the
// timing-side accounting (including the core model) matches.
func TestDifferentialTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("full-benchmark differential check")
	}
	for _, bench := range diffBenchmarks {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			f, err := workloads.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			rec := workloads.RunFunctional(f.New(diffScale), workloads.BaselineBuilder(2<<20, 16),
				workloads.RunOptions{Cores: 4, Record: true})
			for llcName, builder := range diffBuilders() {
				reg := metrics.NewRegistry()
				cfg := timesim.DefaultConfig()
				cfg.Cores = 4
				cfg.Metrics = reg
				res := timesim.Run(rec.Recorder, rec.InitialMem, rec.Annotations, builder, cfg)
				if err := res.CrossCheck(); err != nil {
					t.Errorf("%s: %v", llcName, err)
				}
				if got := reg.CounterValue("timesim.instructions"); got != res.Instructions {
					t.Errorf("%s: instructions metric %d != result %d", llcName, got, res.Instructions)
				}
			}
		})
	}
}

// TestSharedRegistryAggregates attaches several concurrent runs to ONE
// registry and checks the aggregate equals the sum of the per-run legacy
// counters — the property the sweep runner's per-task merge relies on.
func TestSharedRegistryAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full-benchmark differential check")
	}
	shared := metrics.NewRegistry()
	var mu sync.Mutex
	var wantLoads, wantInstr uint64
	var wg sync.WaitGroup
	for _, bench := range diffBenchmarks {
		wg.Add(1)
		go func(bench string) {
			defer wg.Done()
			f, err := workloads.ByName(bench)
			if err != nil {
				t.Error(err)
				return
			}
			run := workloads.RunFunctional(f.New(diffScale), workloads.BaselineBuilder(2<<20, 16),
				workloads.RunOptions{Cores: 4, Record: true, Metrics: shared})
			cfg := timesim.DefaultConfig()
			cfg.Cores = 4
			cfg.Metrics = shared
			res := timesim.Run(run.Recorder, run.InitialMem, run.Annotations,
				workloads.SplitBuilder(14, 0.25), cfg)
			mu.Lock()
			wantLoads += run.Hier.Stats.Loads + res.Hier.Loads
			wantInstr += res.Instructions
			mu.Unlock()
		}(bench)
	}
	wg.Wait()
	if got := shared.CounterValue("funcsim.loads"); got != wantLoads {
		t.Errorf("aggregate funcsim.loads = %d, sum of runs = %d", got, wantLoads)
	}
	if got := shared.CounterValue("timesim.instructions"); got != wantInstr {
		t.Errorf("aggregate timesim.instructions = %d, sum of runs = %d", got, wantInstr)
	}
}
