// Package stats implements the storage-savings characterizations of the
// paper's §2 and §5.1: given periodic snapshots of the blocks resident in a
// 2 MB LLC, it measures (a) element-wise approximate similarity under a
// threshold T (Fig. 2), (b) map-space similarity for various map sizes
// (Fig. 7), and (c) the BΔI, exact-deduplication and Doppelgänger+BΔI
// comparators (Fig. 8), plus the approximate footprint fraction (Table 2).
package stats

import (
	"math/rand"
	"sort"

	"doppelganger/internal/approx"
	"doppelganger/internal/bdi"
	"doppelganger/internal/core"
	"doppelganger/internal/dedup"
	"doppelganger/internal/memdata"
)

// classKey groups blocks whose annotations share element semantics; the
// similarity analyses only compare blocks within a class (comparing pixel
// blocks against float blocks would be meaningless).
type classKey struct {
	Type     memdata.ElemType
	Min, Max float64
}

// AnalyzerConfig selects which analyses run per snapshot.
type AnalyzerConfig struct {
	// Thresholds enables the Fig. 2 element-wise analysis at the given
	// fractions of the value range (e.g. 0, 0.0001, 0.001, 0.01, 0.1).
	Thresholds []float64
	// ThresholdSampleCap bounds the per-snapshot block sample for the
	// quadratic Fig. 2 grouping (0 means 1024).
	ThresholdSampleCap int
	// ThresholdEvery runs the (expensive) threshold analysis only on every
	// Nth snapshot (0 means every snapshot); the cheaper map/comparator
	// analyses still run on all of them.
	ThresholdEvery int
	// MapSpaces enables the Fig. 7 analysis for the given map sizes M.
	MapSpaces []int
	// Comparators enables the Fig. 8 BΔI / dedup / Dopp+BΔI analysis; the
	// Doppelgänger column uses CompareM as its map size.
	Comparators bool
	CompareM    int
}

// Analyzer accumulates snapshot statistics. Observe may be wired to a
// hierarchy's SnapshotFn.
type Analyzer struct {
	cfg AnalyzerConfig
	rng *rand.Rand

	Samples int

	approxBlocks uint64
	totalBlocks  uint64

	thresholdSamples int
	thresholdSavings map[float64]float64 // sum over sampled snapshots
	mapSavings       map[int]float64
	bdiSavings       float64
	dedupSavings     float64
	doppBDISavings   float64
}

// NewAnalyzer builds an analyzer.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	if cfg.ThresholdSampleCap == 0 {
		cfg.ThresholdSampleCap = 1024
	}
	if cfg.CompareM == 0 {
		cfg.CompareM = 14
	}
	a := &Analyzer{
		cfg:              cfg,
		rng:              rand.New(rand.NewSource(42)),
		thresholdSavings: make(map[float64]float64),
		mapSavings:       make(map[int]float64),
	}
	return a
}

// Observe processes one LLC snapshot.
func (a *Analyzer) Observe(llc core.LLC) {
	snap := llc.Snapshot()
	a.Samples++
	a.totalBlocks += uint64(len(snap))

	classes := make(map[classKey][]core.SnapshotBlock)
	nApprox := 0
	for _, sb := range snap {
		if sb.Region == nil {
			continue
		}
		nApprox++
		k := classKey{sb.Region.Type, sb.Region.Min, sb.Region.Max}
		classes[k] = append(classes[k], sb)
	}
	a.approxBlocks += uint64(nApprox)
	if nApprox == 0 {
		return
	}

	if every := a.cfg.ThresholdEvery; every <= 1 || a.Samples%every == 1 {
		a.thresholdSamples++
		for _, t := range a.cfg.Thresholds {
			a.thresholdSavings[t] += a.thresholdSavingsOnce(classes, nApprox, t)
		}
	}
	for _, m := range a.cfg.MapSpaces {
		a.mapSavings[m] += mapSavingsOnce(classes, nApprox, m)
	}
	if a.cfg.Comparators {
		blocks := make([]*memdata.Block, 0, nApprox)
		for _, cls := range classes {
			for i := range cls {
				b := cls[i].Data
				blocks = append(blocks, &b)
			}
		}
		a.bdiSavings += bdiSavingsOnce(blocks)
		a.dedupSavings += dedup.Savings(blocks)
		a.doppBDISavings += doppBDISavingsOnce(classes, nApprox, a.cfg.CompareM)
	}
}

// thresholdSavingsOnce is the Fig. 2 measurement for one snapshot: the
// fraction of approximate blocks removable when threshold-T-similar blocks
// share one data entry, via greedy grouping per class. Classes larger than
// the sample cap are down-sampled (the savings fraction is scale free).
func (a *Analyzer) thresholdSavingsOnce(classes map[classKey][]core.SnapshotBlock, nApprox int, t float64) float64 {
	var weighted float64
	for _, cls := range classes {
		sample := cls
		if len(sample) > a.cfg.ThresholdSampleCap {
			idx := a.rng.Perm(len(sample))[:a.cfg.ThresholdSampleCap]
			sort.Ints(idx)
			picked := make([]core.SnapshotBlock, len(idx))
			for i, j := range idx {
				picked[i] = sample[j]
			}
			sample = picked
		}
		blocks := make([]*memdata.Block, len(sample))
		for i := range sample {
			b := sample[i].Data
			blocks[i] = &b
		}
		groups := approx.GreedySimilarityGroups(blocks, sample[0].Region, t)
		savings := 1 - float64(groups)/float64(len(blocks))
		weighted += savings * float64(len(cls))
	}
	return weighted / float64(nApprox)
}

// mapSavingsOnce is the Fig. 7 measurement: blocks with equal map values
// share a data entry, so savings = 1 − uniqueMaps/approxBlocks.
func mapSavingsOnce(classes map[classKey][]core.SnapshotBlock, nApprox, m int) float64 {
	spec := approx.MapSpec{M: m}
	unique := 0
	for _, cls := range classes {
		seen := make(map[uint32]struct{}, len(cls))
		for i := range cls {
			b := cls[i].Data
			seen[spec.MapValue(&b, cls[i].Region)] = struct{}{}
		}
		unique += len(seen)
	}
	return 1 - float64(unique)/float64(nApprox)
}

// bdiSavingsOnce measures BΔI compression savings over the approximate
// blocks: 1 − Σ compressed / Σ raw.
func bdiSavingsOnce(blocks []*memdata.Block) float64 {
	var compressed int
	for _, b := range blocks {
		compressed += bdi.CompressedSize(b)
	}
	return 1 - float64(compressed)/float64(len(blocks)*memdata.BlockSize)
}

// doppBDISavingsOnce combines the two: one representative per map value,
// each BΔI-compressed (§5.1 reports 43.9% for this combination).
func doppBDISavingsOnce(classes map[classKey][]core.SnapshotBlock, nApprox, m int) float64 {
	spec := approx.MapSpec{M: m}
	var compressed int
	for _, cls := range classes {
		reps := make(map[uint32]struct{}, len(cls))
		for i := range cls {
			b := cls[i].Data
			mv := spec.MapValue(&b, cls[i].Region)
			if _, ok := reps[mv]; ok {
				continue
			}
			reps[mv] = struct{}{}
			compressed += bdi.CompressedSize(&b)
		}
	}
	return 1 - float64(compressed)/float64(nApprox*memdata.BlockSize)
}

// --- results ---

// ApproxFraction is Table 2: the mean fraction of resident LLC blocks that
// are approximate.
func (a *Analyzer) ApproxFraction() float64 {
	if a.totalBlocks == 0 {
		return 0
	}
	return float64(a.approxBlocks) / float64(a.totalBlocks)
}

// ThresholdSavings returns the mean Fig. 2 savings for threshold t.
func (a *Analyzer) ThresholdSavings(t float64) float64 {
	if a.thresholdSamples == 0 {
		return 0
	}
	return a.thresholdSavings[t] / float64(a.thresholdSamples)
}

// MapSavings returns the mean Fig. 7 savings for map size m.
func (a *Analyzer) MapSavings(m int) float64 { return a.mean(a.mapSavings[m]) }

// BDISavings returns the mean Fig. 8 BΔI savings.
func (a *Analyzer) BDISavings() float64 { return a.mean(a.bdiSavings) }

// DedupSavings returns the mean Fig. 8 exact-deduplication savings.
func (a *Analyzer) DedupSavings() float64 { return a.mean(a.dedupSavings) }

// DoppBDISavings returns the mean Fig. 8 Doppelgänger+BΔI savings.
func (a *Analyzer) DoppBDISavings() float64 { return a.mean(a.doppBDISavings) }

func (a *Analyzer) mean(sum float64) float64 {
	if a.Samples == 0 {
		return 0
	}
	return sum / float64(a.Samples)
}
