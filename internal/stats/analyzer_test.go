package stats

import (
	"math"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/core"
	"doppelganger/internal/memdata"
)

// fakeLLC implements core.LLC just enough to feed Observe with controlled
// snapshots.
type fakeLLC struct {
	snap []core.SnapshotBlock
}

func (f *fakeLLC) Read(memdata.Addr) (memdata.Block, *core.Effects) { panic("unused") }
func (f *fakeLLC) WriteBack(memdata.Addr, *memdata.Block) *core.Effects {
	panic("unused")
}
func (f *fakeLLC) EvictFor(memdata.Addr) *core.Effects { panic("unused") }
func (f *fakeLLC) Contains(memdata.Addr) bool          { return false }
func (f *fakeLLC) Snapshot() []core.SnapshotBlock      { return f.snap }
func (f *fakeLLC) TagEntries() int                     { return len(f.snap) }
func (f *fakeLLC) DataBlocks() int                     { return len(f.snap) }

var _ core.LLC = (*fakeLLC)(nil)

var testRegion = approx.Region{
	Name: "r", Start: 0, End: 1 << 20, Type: memdata.F32, Min: 0, Max: 100,
}

func uniformBlock(v float64) memdata.Block {
	var b memdata.Block
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, v)
	}
	return b
}

func snapshotOf(vals []float64, precise int) *fakeLLC {
	f := &fakeLLC{}
	for i, v := range vals {
		f.snap = append(f.snap, core.SnapshotBlock{
			Addr:   memdata.Addr(i * 64),
			Data:   uniformBlock(v),
			Region: &testRegion,
		})
	}
	for i := 0; i < precise; i++ {
		f.snap = append(f.snap, core.SnapshotBlock{
			Addr: memdata.Addr((len(vals) + i) * 64),
			Data: uniformBlock(float64(i)),
		})
	}
	return f
}

func TestApproxFraction(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{})
	a.Observe(snapshotOf([]float64{1, 2, 3}, 1))
	if got := a.ApproxFraction(); got != 0.75 {
		t.Errorf("approx fraction = %v, want 0.75", got)
	}
	// Second snapshot averages in.
	a.Observe(snapshotOf([]float64{1}, 3))
	if got := a.ApproxFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("approx fraction = %v, want 0.5", got)
	}
}

func TestThresholdSavings(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{Thresholds: []float64{0, 0.01}})
	// Four blocks: two identical pairs offset by 0.5 (0.5% of range 100).
	a.Observe(snapshotOf([]float64{10, 10.5, 50, 50.5}, 0))
	if got := a.ThresholdSavings(0); got != 0 {
		t.Errorf("T=0 savings = %v, want 0 (no exact duplicates)", got)
	}
	if got := a.ThresholdSavings(0.01); got != 0.5 {
		t.Errorf("T=1%% savings = %v, want 0.5 (two groups of two)", got)
	}
}

func TestMapSavings(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{MapSpaces: []int{14}})
	// Three blocks share a map (tiny perturbations); one is far away.
	a.Observe(snapshotOf([]float64{40, 40.0001, 40.0002, 90}, 0))
	if got := a.MapSavings(14); got != 0.5 {
		t.Errorf("map savings = %v, want 0.5 (2 unique of 4)", got)
	}
}

func TestComparators(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{Comparators: true, CompareM: 14})
	// Two identical blocks + two distinct: dedup saves 25%; uniform blocks
	// BΔI-compress to the repeat scheme (~8/64 each).
	a.Observe(snapshotOf([]float64{10, 10, 20, 30}, 0))
	if got := a.DedupSavings(); got != 0.25 {
		t.Errorf("dedup savings = %v, want 0.25", got)
	}
	if got := a.BDISavings(); got < 0.8 {
		t.Errorf("bdi savings = %v; uniform blocks should compress well", got)
	}
	if got := a.DoppBDISavings(); got < a.MapSavings(14) && a.MapSavings(14) > 0 {
		t.Errorf("dopp+bdi (%v) should beat dopp alone (%v)", got, a.MapSavings(14))
	}
}

func TestEmptySnapshotsAreSafe(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{Thresholds: []float64{0.01}, MapSpaces: []int{14}, Comparators: true})
	a.Observe(&fakeLLC{})
	a.Observe(snapshotOf(nil, 5)) // precise-only
	if a.ApproxFraction() != 0 || a.MapSavings(14) != 0 || a.BDISavings() != 0 {
		t.Error("empty/precise snapshots produced nonzero savings")
	}
}

func TestSamplingCapKeepsSavingsScaleFree(t *testing.T) {
	a := NewAnalyzer(AnalyzerConfig{Thresholds: []float64{0.01}, ThresholdSampleCap: 16})
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i%4) * 25 // four tight groups
	}
	a.Observe(snapshotOf(vals, 0))
	got := a.ThresholdSavings(0.01)
	if got < 0.6 || got > 0.99 {
		t.Errorf("sampled savings = %v, want near 0.75+", got)
	}
}

// TestObserveRealLLC wires the analyzer to an actual baseline LLC to cover
// the integration path.
func TestObserveRealLLC(t *testing.T) {
	st := memdata.NewStore()
	ann := approx.MustAnnotations(testRegion)
	llc := core.NewBaseline(cache.Config{Name: "llc", SizeBytes: 8 << 10, Ways: 4}, st, ann)
	for i := 0; i < 32; i++ {
		b := st.Block(memdata.Addr(i * 64))
		for e := 0; e < 16; e++ {
			b.SetElem(memdata.F32, e, float64(i%4))
		}
		llc.Read(memdata.Addr(i * 64))
	}
	a := NewAnalyzer(AnalyzerConfig{MapSpaces: []int{14}, Comparators: true})
	a.Observe(llc)
	if a.Samples != 1 {
		t.Fatalf("samples = %d", a.Samples)
	}
	if got := a.MapSavings(14); got < 0.8 {
		t.Errorf("map savings = %v; 4 distinct values over 32 blocks should dedup heavily", got)
	}
	if got := a.DedupSavings(); got < 0.8 {
		t.Errorf("dedup savings = %v", got)
	}
}
