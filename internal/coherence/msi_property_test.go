// Package coherence_test holds the MSI protocol property test. It lives in
// an external test package so it can drive the full funcsim hierarchy
// (which imports coherence) without an import cycle.
package coherence_test

import (
	"fmt"
	"math/rand"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/coherence"
	"doppelganger/internal/core"
	"doppelganger/internal/funcsim"
	"doppelganger/internal/memdata"
)

// The test drives a deliberately tiny hierarchy (so every structure
// overflows and evicts constantly) with randomized load/store
// interleavings, and re-checks the protocol invariants after every single
// access:
//
//  1. at most one core holds a block in Modified;
//  2. a Modified copy excludes every other private copy;
//  3. the directory's sharer set equals exactly the set of cores holding
//     the block in their L2;
//  4. inclusion: an L1 copy implies an L2 copy, and (baseline LLC only)
//     a private copy implies a valid LLC tag;
//  5. directory state Modified implies the owner actually holds an M copy,
//     and no private M copy exists without directory state M.
//
// Failures shrink greedily to a minimal reproducing op sequence before
// reporting, and every sequence is derived from a printed seed.
const (
	msiCores     = 4
	msiPoolSide  = 24 // blocks per pool (precise / approximate)
	msiPrecise   = memdata.Addr(0x4000)
	msiApproxLow = memdata.Addr(0x100000)
)

type msiOp struct {
	Core  int
	Block int // < msiPoolSide: precise pool; otherwise approximate pool
	Write bool
	Val   float64
}

func msiAddr(block int) memdata.Addr {
	if block < msiPoolSide {
		return msiPrecise + memdata.Addr(block*memdata.BlockSize)
	}
	return msiApproxLow + memdata.Addr((block-msiPoolSide)*memdata.BlockSize)
}

// msiHierarchy builds the tiny hierarchy over the chosen LLC organization.
func msiHierarchy(llc string) *funcsim.Hierarchy {
	st := memdata.NewStore()
	ann := approx.MustAnnotations(approx.Region{
		Name:  "ax",
		Start: msiApproxLow,
		End:   msiApproxLow + memdata.Addr(msiPoolSide*memdata.BlockSize),
		Type:  memdata.F32, Min: 0, Max: 100,
	})
	var l core.LLC
	switch llc {
	case "baseline":
		l = core.NewBaseline(cache.Config{Name: "LLC", SizeBytes: 2 << 10, Ways: 4}, st, ann)
	case "split":
		l = core.MustNewSplit(
			cache.Config{Name: "precise", SizeBytes: 2 << 10, Ways: 4},
			core.Config{
				Name:       "doppel",
				TagEntries: 64, TagWays: 4,
				DataEntries: 16, DataWays: 4,
				MapSpec: approx.MapSpec{M: 14},
			},
			st, ann)
	default:
		panic("unknown llc kind " + llc)
	}
	return funcsim.New(funcsim.Config{
		Cores: msiCores,
		L1:    cache.Config{Name: "L1", SizeBytes: 1 << 10, Ways: 2},
		L2:    cache.Config{Name: "L2", SizeBytes: 2 << 10, Ways: 4},
	}, l, st, ann, nil)
}

func msiApply(h *funcsim.Hierarchy, op msiOp) {
	addr := msiAddr(op.Block)
	if op.Block >= msiPoolSide {
		if op.Write {
			h.StoreF32(op.Core, addr, float32(op.Val))
		} else {
			h.LoadF32(op.Core, addr)
		}
		return
	}
	if op.Write {
		h.StoreI32(op.Core, addr, int32(op.Val))
	} else {
		h.LoadI32(op.Core, addr)
	}
}

// msiCheck verifies the invariants over the whole block pool. strictLLC
// additionally requires inclusion at the LLC level; it holds for the
// baseline organization but not for Doppelgänger data-eviction corners.
func msiCheck(h *funcsim.Hierarchy, strictLLC bool) error {
	for i := 0; i < 2*msiPoolSide; i++ {
		ba := msiAddr(i).BlockAddr()
		var holders, l2holders, modified []int
		for c := 0; c < h.Cores(); c++ {
			pv := h.PrivateView(c, ba)
			if pv.InL1 && !pv.InL2 {
				return fmt.Errorf("block %#x: core %d holds in L1 but not L2 (inclusion)", ba, c)
			}
			if pv.Holds() {
				holders = append(holders, c)
			}
			if pv.InL2 {
				l2holders = append(l2holders, c)
			}
			if pv.Modified() {
				modified = append(modified, c)
			}
		}
		if len(modified) > 1 {
			return fmt.Errorf("block %#x: %d cores hold Modified copies %v", ba, len(modified), modified)
		}
		if len(modified) == 1 && len(holders) > 1 {
			return fmt.Errorf("block %#x: Modified copy on core %d coexists with holders %v",
				ba, modified[0], holders)
		}
		st, owner, sharers, ok := h.DirView(ba)
		if !ok {
			if len(holders) > 0 {
				return fmt.Errorf("block %#x: no directory entry but held by %v", ba, holders)
			}
			continue
		}
		if !equalInts(sharers, l2holders) {
			return fmt.Errorf("block %#x: directory sharers %v != L2 holders %v", ba, sharers, l2holders)
		}
		if st == coherence.Modified {
			if owner < 0 || owner >= h.Cores() || !h.PrivateView(owner, ba).Modified() {
				return fmt.Errorf("block %#x: directory M with owner %d but no private M copy", ba, owner)
			}
		} else if len(modified) > 0 {
			return fmt.Errorf("block %#x: private M copy on core %d without directory M (dir %v)",
				ba, modified[0], st)
		}
		if strictLLC {
			for _, c := range holders {
				if !h.LLC().Contains(ba) {
					return fmt.Errorf("block %#x: core %d holds privately but LLC has no tag (inclusion)", ba, c)
				}
			}
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// msiFails replays ops from scratch, reporting whether any prefix violates
// the invariants (used by the shrinker).
func msiFails(llc string, strictLLC bool, ops []msiOp) bool {
	h := msiHierarchy(llc)
	for _, op := range ops {
		msiApply(h, op)
		if msiCheck(h, strictLLC) != nil {
			return true
		}
	}
	return false
}

// msiShrink greedily removes chunks (halving the chunk size down to single
// ops) while the sequence still fails, yielding a near-minimal reproducer.
func msiShrink(llc string, strictLLC bool, ops []msiOp) []msiOp {
	for again := true; again; {
		again = false
		for n := len(ops) / 2; n >= 1; n /= 2 {
			for i := 0; i+n <= len(ops); i += n {
				cand := make([]msiOp, 0, len(ops)-n)
				cand = append(cand, ops[:i]...)
				cand = append(cand, ops[i+n:]...)
				if msiFails(llc, strictLLC, cand) {
					ops = cand
					again = true
				}
			}
		}
	}
	return ops
}

func TestMSIPropertyRandomized(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	nops := 500
	if testing.Short() {
		seeds, nops = seeds[:2], 150
	}
	for _, llc := range []string{"baseline", "split"} {
		strictLLC := llc == "baseline"
		for _, seed := range seeds {
			rng := rand.New(rand.NewSource(seed))
			h := msiHierarchy(llc)
			ops := make([]msiOp, 0, nops)
			for len(ops) < nops {
				op := msiOp{
					Core:  rng.Intn(msiCores),
					Block: rng.Intn(2 * msiPoolSide),
					Write: rng.Intn(3) == 0,
					Val:   rng.Float64() * 100,
				}
				ops = append(ops, op)
				msiApply(h, op)
				if err := msiCheck(h, strictLLC); err != nil {
					min := msiShrink(llc, strictLLC, ops)
					t.Fatalf("llc=%s seed=%d op %d: %v\nminimal reproducer (%d ops): %+v",
						llc, seed, len(ops), err, len(min), min)
				}
			}
		}
	}
}

// TestMSISingleWriterDirected pins the textbook scenarios the randomized
// test covers statistically: read sharing, write upgrade, write steal, and
// remote flush on a read of a Modified block.
func TestMSISingleWriterDirected(t *testing.T) {
	h := msiHierarchy("baseline")
	addr := msiAddr(0)
	ba := addr.BlockAddr()

	// All cores read: everyone shares.
	for c := 0; c < msiCores; c++ {
		h.LoadI32(c, addr)
	}
	st, _, sharers, ok := h.DirView(ba)
	if !ok || st != coherence.Shared || len(sharers) != msiCores {
		t.Fatalf("after read sharing: dir %v sharers %v ok %v", st, sharers, ok)
	}

	// Core 1 writes: upgrade must invalidate everyone else.
	h.StoreI32(1, addr, 7)
	st, owner, sharers, _ := h.DirView(ba)
	if st != coherence.Modified || owner != 1 || !equalInts(sharers, []int{1}) {
		t.Fatalf("after upgrade: dir %v owner %d sharers %v", st, owner, sharers)
	}
	for c := 0; c < msiCores; c++ {
		if c != 1 && h.PrivateView(c, ba).Holds() {
			t.Fatalf("core %d still holds after core 1's upgrade", c)
		}
	}

	// Core 2 writes: ownership moves.
	h.StoreI32(2, addr, 8)
	if _, owner, _, _ := h.DirView(ba); owner != 2 {
		t.Fatalf("after steal: owner %d", owner)
	}
	if h.PrivateView(1, ba).Holds() {
		t.Fatal("core 1 still holds after core 2's write steal")
	}

	// Core 3 reads: core 2's dirty copy is flushed, both end Shared.
	if got := h.LoadI32(3, addr); got != 8 {
		t.Fatalf("core 3 read %d, want 8", got)
	}
	st, _, _, _ = h.DirView(ba)
	if st != coherence.Shared {
		t.Fatalf("after read of M block: dir state %v", st)
	}
	if h.PrivateView(2, ba).Modified() {
		t.Fatal("core 2 still Modified after remote read")
	}
	if err := msiCheck(h, true); err != nil {
		t.Fatal(err)
	}
}
