package coherence

import (
	"math/bits"

	"doppelganger/internal/memdata"
)

// Directory geometry, mirroring the memdata arena: 64 lines per slab (one
// slab covers the same 4 KiB address span as one arena page) reached
// through a two-level radix index over the slab number, with a presence
// bitmap standing in for map membership.
const (
	slabLineBits = 6
	slabLines    = 1 << slabLineBits
	slabShift    = memdata.OffsetBits + slabLineBits // address bits per slab
	slabLineMask = slabLines - 1

	dirRadixBits = 10
	dirRadixSize = 1 << dirRadixBits
	dirRadixMask = dirRadixSize - 1
)

// dirSlab holds the directory lines of one 4 KiB address span inline — no
// per-line heap object — plus the bitmap of which lines currently exist.
type dirSlab struct {
	present uint64
	lines   [slabLines]Line
}

type dirLeaf struct {
	slabs [dirRadixSize]*dirSlab
}

// Directory is the LLC-level MSI directory: full-map sharer vectors per
// block (Table 3), stored in paged slabs indexed by block address. Lookups
// and steady-state Entry calls are two array indexings and a bitmap test
// with zero allocations; entries come and go (back-invalidations delete
// them) without creating garbage.
//
// A Directory is not safe for concurrent use; the hierarchy serializes
// access like it does the backing store.
type Directory struct {
	root [dirRadixSize]*dirLeaf
	n    int
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{} }

func (d *Directory) index(ba memdata.Addr) (sn, li uint32) {
	a := uint32(ba)
	return a >> slabShift, (a >> memdata.OffsetBits) & slabLineMask
}

// Lookup returns the entry for block ba, or nil when none exists. It never
// allocates.
func (d *Directory) Lookup(ba memdata.Addr) *Line {
	sn, li := d.index(ba)
	lf := d.root[sn>>dirRadixBits]
	if lf == nil {
		return nil
	}
	sl := lf.slabs[sn&dirRadixMask]
	if sl == nil || sl.present&(1<<li) == 0 {
		return nil
	}
	return &sl.lines[li]
}

// Entry returns the entry for block ba, creating it in the Invalid state
// with no sharers and no owner if it does not exist. Steady-state calls on
// an existing entry perform no allocations.
func (d *Directory) Entry(ba memdata.Addr) *Line {
	sn, li := d.index(ba)
	lf := d.root[sn>>dirRadixBits]
	if lf == nil {
		lf = new(dirLeaf)
		d.root[sn>>dirRadixBits] = lf
	}
	sl := lf.slabs[sn&dirRadixMask]
	if sl == nil {
		sl = new(dirSlab)
		lf.slabs[sn&dirRadixMask] = sl
	}
	if sl.present&(1<<li) == 0 {
		sl.present |= 1 << li
		sl.lines[li] = Line{Owner: -1}
		d.n++
	}
	return &sl.lines[li]
}

// Remove deletes block ba's entry, returning its final value and whether it
// existed.
func (d *Directory) Remove(ba memdata.Addr) (Line, bool) {
	sn, li := d.index(ba)
	lf := d.root[sn>>dirRadixBits]
	if lf == nil {
		return Line{}, false
	}
	sl := lf.slabs[sn&dirRadixMask]
	if sl == nil || sl.present&(1<<li) == 0 {
		return Line{}, false
	}
	old := sl.lines[li]
	sl.lines[li] = Line{}
	sl.present &^= 1 << li
	d.n--
	return old, true
}

// Len reports how many entries exist.
func (d *Directory) Len() int { return d.n }

// Reset drops every entry, releasing the slabs.
func (d *Directory) Reset() {
	d.root = [dirRadixSize]*dirLeaf{}
	d.n = 0
}

// ForEach visits every entry in ascending block-address order.
func (d *Directory) ForEach(fn func(ba memdata.Addr, l *Line)) {
	for li, lf := range d.root {
		if lf == nil {
			continue
		}
		for si, sl := range lf.slabs {
			if sl == nil || sl.present == 0 {
				continue
			}
			base := memdata.Addr(uint32(li)<<(dirRadixBits+slabShift) | uint32(si)<<slabShift)
			for t := sl.present; t != 0; t &= t - 1 {
				i := bits.TrailingZeros64(t)
				fn(base+memdata.Addr(i<<memdata.OffsetBits), &sl.lines[i])
			}
		}
	}
}
