package coherence

import (
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}

func TestSharerSetBasics(t *testing.T) {
	var s SharerSet
	if !s.Empty() {
		t.Error("zero set not empty")
	}
	s = s.Add(2)
	if !s.Has(2) || s.Has(1) {
		t.Error("Add/Has wrong")
	}
	if !s.Only(2) {
		t.Error("Only wrong")
	}
	s = s.Add(0)
	if s.Only(2) || s.Count() != 2 {
		t.Error("Count/Only after second add wrong")
	}
	s = s.Remove(2)
	if s.Has(2) || !s.Has(0) {
		t.Error("Remove wrong")
	}
	s = s.Remove(2) // idempotent
	if s.Count() != 1 {
		t.Error("double remove changed set")
	}
}

func TestSharerSetForEachOrder(t *testing.T) {
	s := SharerSet(0).Add(3).Add(0).Add(1)
	var got []int
	s.ForEach(4, func(c int) { got = append(got, c) })
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestSharerSetProperties(t *testing.T) {
	f := func(raw uint16, core uint8) bool {
		s := SharerSet(raw)
		c := int(core % 16)
		added := s.Add(c)
		removed := added.Remove(c)
		return added.Has(c) && !removed.Has(c) &&
			added.Count() >= s.Count() &&
			s.Remove(c).Add(c) == added
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesForEach(t *testing.T) {
	f := func(raw uint16) bool {
		s := SharerSet(raw)
		n := 0
		s.ForEach(16, func(int) { n++ })
		return n == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
