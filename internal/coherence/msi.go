// Package coherence defines the MSI protocol vocabulary shared by the
// functional and timing simulators. The paper's system keeps a directory at
// the LLC with full-map sharer vectors and maintains coherence state on a
// per-tag basis in the Doppelgänger cache (§3.6); this package provides the
// state machine types, while the simulators drive the transitions.
package coherence

import "fmt"

// State is an MSI coherence state.
type State uint8

// The three MSI states.
const (
	Invalid State = iota
	Shared
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// SharerSet is a full-map bit vector of private caches holding a block, as
// in the paper's Table 3 ("full-map vector", 4 bits for the 4-core CMP).
type SharerSet uint16

// Add marks core as a sharer.
func (s SharerSet) Add(core int) SharerSet { return s | 1<<uint(core) }

// Remove clears core from the set.
func (s SharerSet) Remove(core int) SharerSet { return s &^ (1 << uint(core)) }

// Has reports whether core is a sharer.
func (s SharerSet) Has(core int) bool { return s&(1<<uint(core)) != 0 }

// Count returns the number of sharers.
func (s SharerSet) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Only reports whether core is the single sharer.
func (s SharerSet) Only(core int) bool { return s == 1<<uint(core) }

// Empty reports whether no private cache holds the block.
func (s SharerSet) Empty() bool { return s == 0 }

// ForEach invokes fn for every sharer, lowest core id first.
func (s SharerSet) ForEach(n int, fn func(core int)) {
	for c := 0; c < n; c++ {
		if s.Has(c) {
			fn(c)
		}
	}
}

// Line is the directory view of one cached block: its MSI state and which
// private caches hold it. Owner is meaningful only in Modified state.
type Line struct {
	State   State
	Sharers SharerSet
	Owner   int8
}
