package coherence

import (
	"fmt"

	"doppelganger/internal/metrics"
)

// Tracker counts MSI directory transitions and back-invalidations. The
// functional hierarchy drives one Tracker per run; the counts are always
// maintained (plain array increments, no allocation) and additionally
// mirrored into a metrics registry once attached, so the observability layer
// and the in-memory view can be differentially cross-checked.
//
// A nil *Tracker is safe: every method no-ops.
type Tracker struct {
	counts [3][3]uint64
	m      [3][3]*metrics.Counter

	backInvals uint64
	backC      *metrics.Counter
}

// NewTracker returns an enabled tracker with no registry attached.
func NewTracker() *Tracker { return &Tracker{} }

// Attach resolves per-transition counters in reg under
// "coherence.msi.<from>_to_<to>" plus "coherence.back_invalidations".
// Self-transitions are not counted, so only the six state-changing cells get
// counters. A nil registry is a no-op.
func (t *Tracker) Attach(reg *metrics.Registry) {
	if t == nil || reg == nil {
		return
	}
	for from := Invalid; from <= Modified; from++ {
		for to := Invalid; to <= Modified; to++ {
			if from == to {
				continue
			}
			t.m[from][to] = reg.Counter(fmt.Sprintf("coherence.msi.%s_to_%s", from, to))
		}
	}
	t.backC = reg.Counter("coherence.back_invalidations")
}

// Transition records a directory state change; same-state "transitions" are
// ignored (stable state, not a protocol event).
func (t *Tracker) Transition(from, to State) {
	if t == nil || from == to || from > Modified || to > Modified {
		return
	}
	t.counts[from][to]++
	t.m[from][to].Inc()
}

// BackInvalidation records one LLC-eviction-driven back-invalidation of the
// private caches.
func (t *Tracker) BackInvalidation() {
	if t == nil {
		return
	}
	t.backInvals++
	t.backC.Inc()
}

// Count returns the number of recorded from→to transitions.
func (t *Tracker) Count(from, to State) uint64 {
	if t == nil || from > Modified || to > Modified {
		return 0
	}
	return t.counts[from][to]
}

// Total returns the number of state-changing transitions recorded.
func (t *Tracker) Total() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for from := range t.counts {
		for to := range t.counts[from] {
			n += t.counts[from][to]
		}
	}
	return n
}

// BackInvalidations returns the recorded back-invalidation count.
func (t *Tracker) BackInvalidations() uint64 {
	if t == nil {
		return 0
	}
	return t.backInvals
}
