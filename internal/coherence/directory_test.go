package coherence

import (
	"math/rand"
	"testing"

	"doppelganger/internal/memdata"
)

// TestDirectoryDifferential drives the slab directory and the obvious
// map-backed reference through the same random Entry/Lookup/Remove sequence
// and requires them to stay indistinguishable, including the full contents
// enumerated by ForEach.
func TestDirectoryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDirectory()
	ref := map[memdata.Addr]*Line{}

	randLine := func() Line {
		return Line{
			State:   State(rng.Intn(3)),
			Sharers: SharerSet(rng.Intn(16)),
			Owner:   int8(rng.Intn(5) - 1),
		}
	}
	for op := 0; op < 20000; op++ {
		// Confine to 512 blocks across several slabs and both radix levels.
		ba := memdata.Addr(rng.Intn(512)*memdata.BlockSize) + memdata.Addr(rng.Intn(2))<<22
		ba = ba.BlockAddr()
		switch rng.Intn(5) {
		case 0, 1: // Entry: create-or-get, then mutate through the pointer
			dl := d.Entry(ba)
			rl := ref[ba]
			if rl == nil {
				want := Line{Owner: -1}
				if *dl != want {
					t.Fatalf("op %d: fresh Entry(%v) = %+v, want %+v", op, ba, *dl, want)
				}
				rl = &Line{Owner: -1}
				ref[ba] = rl
			} else if *dl != *rl {
				t.Fatalf("op %d: Entry(%v) = %+v, ref %+v", op, ba, *dl, *rl)
			}
			nl := randLine()
			*dl, *rl = nl, nl
		case 2: // Lookup
			dl := d.Lookup(ba)
			rl := ref[ba]
			if (dl == nil) != (rl == nil) {
				t.Fatalf("op %d: Lookup(%v) existence mismatch", op, ba)
			}
			if dl != nil && *dl != *rl {
				t.Fatalf("op %d: Lookup(%v) = %+v, ref %+v", op, ba, *dl, *rl)
			}
		case 3: // Remove
			got, ok := d.Remove(ba)
			rl := ref[ba]
			if ok != (rl != nil) {
				t.Fatalf("op %d: Remove(%v) ok = %v, ref %v", op, ba, ok, rl != nil)
			}
			if ok {
				if got != *rl {
					t.Fatalf("op %d: Remove(%v) = %+v, ref %+v", op, ba, got, *rl)
				}
				delete(ref, ba)
			}
		case 4: // occasional full reset
			if rng.Intn(50) == 0 {
				d.Reset()
				ref = map[memdata.Addr]*Line{}
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, ref %d", op, d.Len(), len(ref))
		}
	}

	visited := 0
	last := memdata.Addr(0)
	d.ForEach(func(ba memdata.Addr, l *Line) {
		if visited > 0 && ba <= last {
			t.Fatalf("ForEach out of order: %v after %v", ba, last)
		}
		last = ba
		visited++
		rl := ref[ba]
		if rl == nil {
			t.Fatalf("ForEach visited unknown entry %v", ba)
		}
		if *l != *rl {
			t.Fatalf("ForEach entry %v = %+v, ref %+v", ba, *l, *rl)
		}
	})
	if visited != len(ref) {
		t.Fatalf("ForEach visited %d entries, ref has %d", visited, len(ref))
	}
}

// TestDirectorySteadyStateZeroAllocs locks down the directory's promise:
// Lookup never allocates, and Entry on an existing slab allocates nothing.
func TestDirectorySteadyStateZeroAllocs(t *testing.T) {
	d := NewDirectory()
	d.Entry(0x1000)
	d.Remove(0x2000) // absent
	if n := testing.AllocsPerRun(1000, func() {
		_ = d.Lookup(0x1000)
		_ = d.Lookup(0x9000)       // absent, same leaf
		_ = d.Entry(0x1000 + 0x40) // new line in the existing slab
		d.Remove(0x1000 + 0x40)
	}); n != 0 {
		t.Errorf("steady-state directory ops allocate %v allocs/op, want 0", n)
	}
}
