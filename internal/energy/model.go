// Package energy is the CACTI surrogate: an analytical SRAM-array model for
// area, access latency, access energy and leakage at 32 nm, with constants
// fitted to the six structures the paper reports in Table 3 (which were
// produced with CACTI 5.1 [35]). All of the paper's energy/area results are
// ratios between structures evaluated by the same tool, so a surrogate
// calibrated on the paper's own anchor points preserves those ratios; see
// DESIGN.md §1 for the substitution rationale.
//
// The package also performs the energy accounting of §5.3/§5.6: dynamic LLC
// energy from per-structure access counts (plus 168 pJ per map generation),
// and leakage proportional to structure size integrated over runtime.
package energy

import (
	"math"

	"doppelganger/internal/core"
)

// Fitted model constants (see package comment). Tag-only arrays and
// data-bearing arrays follow different density curves in CACTI; both are
// fitted separately against Table 3.
const (
	// Area (mm²) = coefficient × KB^exponent.
	tagAreaCoeff  = 1.03e-3
	tagAreaExp    = 1.036
	dataAreaCoeff = 8.1e-4
	dataAreaExp   = 1.11

	// Access latency (ns) = base + slope × sqrt(KB).
	tagLatBase   = 0.2185
	tagLatSlope  = 0.0291
	dataLatBase  = 0.342
	dataLatSlope = 0.0205

	// Access energy (pJ) = base + slope × KB.
	tagEnergyBase   = 2.78
	tagEnergySlope  = 0.185
	dataEnergyBase  = -3.6
	dataEnergySlope = 0.3276

	// Leakage power (mW) per KB of SRAM at 32 nm. Only ratios enter the
	// paper's results; the absolute scale is a representative constant.
	leakageMWPerKB = 0.045

	// MapGenPJ is the energy per map generation: 21 FP multiply-add
	// operations at 8 pJ each (§5.6).
	MapGenPJ = 168.0

	// FPUAreaMM2 is the area of the eight multiply-add units used for map
	// generation (§4: 0.01 mm² each).
	FPUAreaMM2 = 8 * 0.01
)

// Structure is one SRAM array, split into its metadata (tag-side) and data
// capacities in KB.
type Structure struct {
	Name   string
	MetaKB float64
	DataKB float64
}

// FromLayout derives the Structure from a bit-level layout.
func FromLayout(l core.Layout) Structure {
	return Structure{
		Name:   l.Name,
		MetaKB: float64(l.Entries*l.MetaBits()) / 8 / 1024,
		DataKB: float64(l.Entries*l.DataBits) / 8 / 1024,
	}
}

// TotalKB is the structure's total size.
func (s Structure) TotalKB() float64 { return s.MetaKB + s.DataKB }

// AreaMM2 models the silicon area.
func (s Structure) AreaMM2() float64 {
	if s.DataKB == 0 {
		return tagAreaCoeff * math.Pow(s.MetaKB, tagAreaExp)
	}
	return dataAreaCoeff * math.Pow(s.TotalKB(), dataAreaExp)
}

// TagLatencyNS models the metadata (tag/MTag) lookup latency.
func (s Structure) TagLatencyNS() float64 {
	return tagLatBase + tagLatSlope*math.Sqrt(s.MetaKB)
}

// DataLatencyNS models the data sub-array access latency (0 for tag-only
// structures).
func (s Structure) DataLatencyNS() float64 {
	if s.DataKB == 0 {
		return 0
	}
	return dataLatBase + dataLatSlope*math.Sqrt(s.DataKB)
}

// TagEnergyPJ models the energy of one metadata access.
func (s Structure) TagEnergyPJ() float64 {
	return tagEnergyBase + tagEnergySlope*s.MetaKB
}

// DataEnergyPJ models the energy of one data access.
func (s Structure) DataEnergyPJ() float64 {
	if s.DataKB == 0 {
		return 0
	}
	e := dataEnergyBase + dataEnergySlope*s.DataKB
	if e < 1 {
		e = 1
	}
	return e
}

// LeakageMW models static power.
func (s Structure) LeakageMW() float64 { return leakageMWPerKB * s.TotalKB() }

// --- LLC organizations ---

// Org aggregates the structures of one LLC organization and knows how to
// convert event counts into energy.
type Org struct {
	Name       string
	Precise    *Structure // baseline LLC or the precise half (nil for unified)
	DoppelTag  *Structure // Doppelgänger tag array (nil for baseline)
	DoppelData *Structure // approximate data array incl. MTag (nil for baseline)
	HasFPUs    bool
}

// BaselineOrg is the conventional LLC of the given size (Table 1 baseline).
func BaselineOrg(sizeBytes, ways, cores int) Org {
	l := core.ConventionalLayout("baseline LLC", sizeBytes, ways, cores)
	s := FromLayout(l)
	return Org{Name: "baseline", Precise: &s}
}

// SplitOrg is the precise+Doppelgänger organization.
func SplitOrg(preciseBytes, preciseWays int, d core.Config, cores int) Org {
	p := FromLayout(core.ConventionalLayout("precise cache", preciseBytes, preciseWays, cores))
	t := FromLayout(d.TagArrayLayout(cores))
	da := FromLayout(d.DataArrayLayout())
	return Org{Name: "doppelganger", Precise: &p, DoppelTag: &t, DoppelData: &da, HasFPUs: true}
}

// UnifiedOrg is the uniDoppelgänger organization.
func UnifiedOrg(d core.Config, cores int) Org {
	t := FromLayout(d.TagArrayLayout(cores))
	da := FromLayout(d.DataArrayLayout())
	return Org{Name: "unidoppelganger", DoppelTag: &t, DoppelData: &da, HasFPUs: true}
}

// AreaMM2 is the total LLC area of the organization, including the map
// generation FPUs where present (Fig. 13).
func (o Org) AreaMM2() float64 {
	a := 0.0
	if o.Precise != nil {
		a += o.Precise.AreaMM2()
	}
	if o.DoppelTag != nil {
		a += o.DoppelTag.AreaMM2()
	}
	if o.DoppelData != nil {
		a += o.DoppelData.AreaMM2()
	}
	if o.HasFPUs {
		a += FPUAreaMM2
	}
	return a
}

// LeakageMW is the organization's total static power.
func (o Org) LeakageMW() float64 {
	p := 0.0
	if o.Precise != nil {
		p += o.Precise.LeakageMW()
	}
	if o.DoppelTag != nil {
		p += o.DoppelTag.LeakageMW()
	}
	if o.DoppelData != nil {
		p += o.DoppelData.LeakageMW()
	}
	return p
}

// DynamicPJ converts the run's structure access counts into dynamic LLC
// energy in picojoules (§5.3): every tag/MTag probe and data access costs
// its structure's per-access energy, plus 168 pJ per map generation.
func (o Org) DynamicPJ(eff core.Effects) float64 {
	e := 0.0
	if o.Precise != nil {
		e += float64(eff.PTagReads+eff.PTagWrites) * o.Precise.TagEnergyPJ()
		e += float64(eff.PDataReads+eff.PDataWrites) * o.Precise.DataEnergyPJ()
	}
	if o.DoppelTag != nil {
		e += float64(eff.DTagReads+eff.DTagWrites) * o.DoppelTag.TagEnergyPJ()
	}
	if o.DoppelData != nil {
		e += float64(eff.MTagReads+eff.MTagWrites) * o.DoppelData.TagEnergyPJ()
		e += float64(eff.DDataReads+eff.DDataWrites) * o.DoppelData.DataEnergyPJ()
	}
	e += float64(eff.MapGens) * MapGenPJ
	return e
}

// LeakagePJ integrates static power over a runtime in cycles at the paper's
// 1 GHz clock: mW × ns = pJ.
func (o Org) LeakagePJ(cycles uint64) float64 {
	return o.LeakageMW() * float64(cycles) // 1 cycle = 1 ns at 1 GHz
}
