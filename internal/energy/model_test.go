package energy

import (
	"math"
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/core"
)

func paperDoppelCfg() core.Config {
	return core.Config{
		Name:       "doppelganger",
		TagEntries: 16 << 10, TagWays: 16,
		DataEntries: 4 << 10, DataWays: 16,
		MapSpec: approx.MapSpec{M: 14},
	}
}

// within checks v against a Table 3 anchor with relative tolerance.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.3f, paper %.3f (tolerance %.0f%%)", name, got, want, 100*tol)
	}
}

// TestCalibrationAgainstTable3 checks the surrogate against the paper's six
// CACTI anchor points (area, latency, energy), allowing modest fitting
// error — the surrogate is a smooth fit through CACTI's noisy outputs.
func TestCalibrationAgainstTable3(t *testing.T) {
	base := FromLayout(core.ConventionalLayout("baseline", 2<<20, 16, 4))
	within(t, "baseline area", base.AreaMM2(), 4.12, 0.05)
	within(t, "baseline data latency", base.DataLatencyNS(), 1.27, 0.05)
	within(t, "baseline data energy", base.DataEnergyPJ(), 667.4, 0.05)
	within(t, "baseline tag energy", base.TagEnergyPJ(), 24.8, 0.12)

	precise := FromLayout(core.ConventionalLayout("precise", 1<<20, 16, 4))
	within(t, "precise area", precise.AreaMM2(), 1.91, 0.05)
	within(t, "precise data energy", precise.DataEnergyPJ(), 322.7, 0.05)

	dc := paperDoppelCfg()
	tag := FromLayout(dc.TagArrayLayout(4))
	within(t, "doppel tag area", tag.AreaMM2(), 0.19, 0.10)
	within(t, "doppel tag energy", tag.TagEnergyPJ(), 30.8, 0.10)

	data := FromLayout(dc.DataArrayLayout())
	within(t, "doppel data area", data.AreaMM2(), 0.47, 0.15)
	within(t, "doppel data latency", data.DataLatencyNS(), 0.67, 0.05)
	within(t, "doppel data energy", data.DataEnergyPJ(), 80.3, 0.08)
}

// TestDoppelDataAccessFasterThanBaseline verifies the §5.6 claim: the
// combined MTag + data access of the small approximate data array is about
// 1.31× faster than the baseline's data access.
func TestDoppelDataAccessFasterThanBaseline(t *testing.T) {
	base := FromLayout(core.ConventionalLayout("baseline", 2<<20, 16, 4))
	data := FromLayout(paperDoppelCfg().DataArrayLayout())
	speedup := base.DataLatencyNS() / (data.TagLatencyNS() + data.DataLatencyNS())
	if speedup < 1.15 || speedup > 1.5 {
		t.Errorf("MTag+data speedup = %.2fx, paper reports 1.31x", speedup)
	}
}

// TestAreaReductions verifies the Fig. 13 headline numbers.
func TestAreaReductions(t *testing.T) {
	base := BaselineOrg(2<<20, 16, 4)
	mk := func(frac float64) Org {
		cfg := paperDoppelCfg()
		cfg.DataEntries = int(float64(16<<10) * frac)
		return SplitOrg(1<<20, 16, cfg, 4)
	}
	within(t, "area reduction 1/2", base.AreaMM2()/mk(0.5).AreaMM2(), 1.36, 0.05)
	within(t, "area reduction 1/4", base.AreaMM2()/mk(0.25).AreaMM2(), 1.55, 0.05)
	within(t, "area reduction 1/8", base.AreaMM2()/mk(0.125).AreaMM2(), 1.70, 0.05)
}

// TestLeakageRatioMatchesPaper: leakage power scales with structure size;
// the split organization at 1/4 should leak about 1.43× less, which after
// the ~2% runtime increase gives the paper's 1.41× leakage energy claim.
func TestLeakageRatioMatchesPaper(t *testing.T) {
	base := BaselineOrg(2<<20, 16, 4)
	split := SplitOrg(1<<20, 16, paperDoppelCfg(), 4)
	within(t, "leakage power ratio", base.LeakageMW()/split.LeakageMW(), 1.43, 0.05)
	// Energy ratio over runtimes 1.0 vs 1.023:
	red := base.LeakagePJ(1000) / split.LeakagePJ(1023)
	within(t, "leakage energy reduction", red, 1.41, 0.05)
}

// TestDynamicEnergyAccounting: hand-computed event mix.
func TestDynamicEnergyAccounting(t *testing.T) {
	org := SplitOrg(1<<20, 16, paperDoppelCfg(), 4)
	eff := core.Effects{
		PTagReads: 10, PDataReads: 10,
		DTagReads: 5, MTagReads: 5, DDataReads: 5,
		MapGens: 2,
	}
	want := 10*org.Precise.TagEnergyPJ() + 10*org.Precise.DataEnergyPJ() +
		5*org.DoppelTag.TagEnergyPJ() + 5*org.DoppelData.TagEnergyPJ() +
		5*org.DoppelData.DataEnergyPJ() + 2*MapGenPJ
	got := org.DynamicPJ(eff)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("dynamic = %v, want %v", got, want)
	}
}

// TestPerAccessEnergyAdvantage: an approximate access through the
// Doppelgänger structures costs several times less than a baseline access —
// the root of the paper's 2.55× dynamic energy reduction.
func TestPerAccessEnergyAdvantage(t *testing.T) {
	base := BaselineOrg(2<<20, 16, 4)
	split := SplitOrg(1<<20, 16, paperDoppelCfg(), 4)
	baseAccess := base.Precise.TagEnergyPJ() + base.Precise.DataEnergyPJ()
	doppAccess := split.DoppelTag.TagEnergyPJ() + split.DoppelData.TagEnergyPJ() + split.DoppelData.DataEnergyPJ()
	if ratio := baseAccess / doppAccess; ratio < 4 {
		t.Errorf("per-access advantage = %.2fx, expected >4x", ratio)
	}
}

// TestMonotonicity: bigger arrays must cost more in every dimension.
func TestMonotonicity(t *testing.T) {
	small := Structure{MetaKB: 10, DataKB: 64}
	big := Structure{MetaKB: 100, DataKB: 1024}
	if small.AreaMM2() >= big.AreaMM2() ||
		small.TagLatencyNS() >= big.TagLatencyNS() ||
		small.DataLatencyNS() >= big.DataLatencyNS() ||
		small.TagEnergyPJ() >= big.TagEnergyPJ() ||
		small.DataEnergyPJ() >= big.DataEnergyPJ() ||
		small.LeakageMW() >= big.LeakageMW() {
		t.Error("cost model not monotone in size")
	}
}

func TestUnifiedOrgCoversStructures(t *testing.T) {
	uc := core.Config{
		Name:       "uni",
		TagEntries: 32 << 10, TagWays: 16,
		DataEntries: 16 << 10, DataWays: 16,
		MapSpec: approx.MapSpec{M: 14},
		Unified: true,
	}
	org := UnifiedOrg(uc, 4)
	if org.Precise != nil {
		t.Error("unified org has a precise structure")
	}
	if org.DoppelTag == nil || org.DoppelData == nil {
		t.Fatal("unified org missing structures")
	}
	if org.AreaMM2() <= 0 || org.LeakageMW() <= 0 {
		t.Error("degenerate costs")
	}
}
