package memdata

import (
	"encoding/binary"
	"math"
)

// Store is the sparse backing store that stands in for main memory. It maps
// block addresses to block payloads and allocates zero-filled blocks on
// first touch, so workloads can lay out multi-megabyte footprints without
// reserving real memory for untouched regions.
//
// A Store is not safe for concurrent use; the simulators serialize access.
type Store struct {
	blocks map[Addr]*Block
}

// NewStore returns an empty backing store.
func NewStore() *Store {
	return &Store{blocks: make(map[Addr]*Block)}
}

// Block returns the block containing addr, allocating it on first touch.
func (s *Store) Block(addr Addr) *Block {
	ba := addr.BlockAddr()
	b, ok := s.blocks[ba]
	if !ok {
		b = new(Block)
		s.blocks[ba] = b
	}
	return b
}

// Peek returns the block containing addr or nil if it was never touched.
func (s *Store) Peek(addr Addr) *Block {
	return s.blocks[addr.BlockAddr()]
}

// WriteBlock replaces the payload of the block containing addr.
func (s *Store) WriteBlock(addr Addr, b *Block) {
	*s.Block(addr) = *b
}

// Len reports how many blocks have been touched.
func (s *Store) Len() int { return len(s.blocks) }

// ForEachBlock visits every touched block in unspecified order.
func (s *Store) ForEachBlock(fn func(addr Addr, b *Block)) {
	for a, b := range s.blocks {
		fn(a, b)
	}
}

// Clone deep-copies the store, used to snapshot the initial memory image so
// the timing simulator can replay traces from the same starting state.
func (s *Store) Clone() *Store {
	c := NewStore()
	for a, b := range s.blocks {
		nb := *b
		c.blocks[a] = &nb
	}
	return c
}

// Typed accessors used by workloads to initialize memory images and by the
// functional simulator's fill path. Addresses must be naturally aligned for
// the access width.

// ReadU8 reads one byte.
func (s *Store) ReadU8(addr Addr) uint8 { return s.Block(addr)[addr.Offset()] }

// WriteU8 writes one byte.
func (s *Store) WriteU8(addr Addr, v uint8) { s.Block(addr)[addr.Offset()] = v }

// ReadU32 reads a 32-bit word.
func (s *Store) ReadU32(addr Addr) uint32 {
	return binary.LittleEndian.Uint32(s.Block(addr)[addr.Offset():])
}

// WriteU32 writes a 32-bit word.
func (s *Store) WriteU32(addr Addr, v uint32) {
	binary.LittleEndian.PutUint32(s.Block(addr)[addr.Offset():], v)
}

// ReadU64 reads a 64-bit word.
func (s *Store) ReadU64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(s.Block(addr)[addr.Offset():])
}

// WriteU64 writes a 64-bit word.
func (s *Store) WriteU64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(s.Block(addr)[addr.Offset():], v)
}

// ReadF32 reads a float32.
func (s *Store) ReadF32(addr Addr) float32 { return math.Float32frombits(s.ReadU32(addr)) }

// WriteF32 writes a float32.
func (s *Store) WriteF32(addr Addr, v float32) { s.WriteU32(addr, math.Float32bits(v)) }

// ReadF64 reads a float64.
func (s *Store) ReadF64(addr Addr) float64 { return math.Float64frombits(s.ReadU64(addr)) }

// WriteF64 writes a float64.
func (s *Store) WriteF64(addr Addr, v float64) { s.WriteU64(addr, math.Float64bits(v)) }

// ReadI32 reads a signed 32-bit integer.
func (s *Store) ReadI32(addr Addr) int32 { return int32(s.ReadU32(addr)) }

// WriteI32 writes a signed 32-bit integer.
func (s *Store) WriteI32(addr Addr, v int32) { s.WriteU32(addr, uint32(v)) }
