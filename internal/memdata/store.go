package memdata

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sync/atomic"
)

// Arena geometry. Blocks are grouped into fixed pages of 64 contiguous
// blocks (4 KiB of payload) allocated in one shot, and pages are reached
// through a two-level radix index over the 20-bit page number of the 32-bit
// physical address space: 10 bits select a leaf, 10 bits select the page
// within it. A steady-state Block lookup is therefore two array indexings
// and no hashing, no per-block heap object, and no pointer chase through
// map buckets.
const (
	pageBlockBits = 6
	// PageBlocks is the number of cache blocks per arena page.
	PageBlocks = 1 << pageBlockBits
	pageShift  = OffsetBits + pageBlockBits // address bits covered by one page
	blockMask  = PageBlocks - 1

	radixBits = 10
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
)

// page is one arena page: PageBlocks contiguous blocks, a bitmap of which
// of them have been touched (so first-touch zero-fill semantics and Len stay
// block-granular), and a copy-on-write flag.
//
// Clone marks every page of the cloned store shared instead of deep-copying
// it. From then on the page may be referenced by several Stores, none of
// which may mutate it in place; the first Block call through any of them
// swaps in a private copy of just that page. The flag is accessed
// atomically because the sweep's timing-replay tasks clone one quiescent
// initial image from several goroutines concurrently; the payload itself
// needs no synchronization since a shared page is never written.
type page struct {
	touched uint64
	shared  uint32
	blocks  [PageBlocks]Block
}

// leaf is the second radix level. Leaves are always store-private (Clone
// copies them), so installing a new or copied page never races with other
// stores sharing the same pages.
type leaf struct {
	pages [radixSize]*page
}

// Store is the sparse backing store that stands in for main memory. It maps
// block addresses to dense arena pages of contiguous block storage and
// allocates zero-filled pages on first touch, so workloads can lay out
// multi-megabyte footprints without reserving real memory for untouched
// regions.
//
// A Store is not safe for concurrent mutation; the simulators serialize
// access. Concurrent Clone calls on a quiescent store are safe, and each
// clone may then be used from its own goroutine: clones share pages
// copy-on-write and never write through a shared page.
type Store struct {
	root    [radixSize]*leaf
	touched int
}

// NewStore returns an empty backing store.
func NewStore() *Store {
	return &Store{}
}

// Block returns the block containing addr, allocating its page on first
// touch. The returned pointer stays valid until the next Block or
// WriteBlock call on this store (a copy-on-write fault may relocate the
// page). Steady-state hits on an owned page perform no allocations.
func (s *Store) Block(addr Addr) *Block {
	pn := uint32(addr) >> pageShift
	lf := s.root[pn>>radixBits]
	if lf == nil {
		lf = new(leaf)
		s.root[pn>>radixBits] = lf
	}
	p := lf.pages[pn&radixMask]
	if p == nil {
		p = new(page)
		lf.pages[pn&radixMask] = p
	} else if atomic.LoadUint32(&p.shared) != 0 {
		// Copy-on-write fault: replace the shared page with a private copy.
		// Every Block call may be used to mutate the returned payload, so
		// even first-touch reads of a shared page pay the copy.
		np := new(page)
		np.touched = p.touched
		np.blocks = p.blocks
		p = np
		lf.pages[pn&radixMask] = np
	}
	bi := (uint32(addr) >> OffsetBits) & blockMask
	if p.touched&(1<<bi) == 0 {
		p.touched |= 1 << bi
		s.touched++
	}
	return &p.blocks[bi]
}

// Peek returns the block containing addr or nil if it was never touched.
// The returned block must be treated as read-only: it may live on a page
// shared copy-on-write with other stores.
func (s *Store) Peek(addr Addr) *Block {
	pn := uint32(addr) >> pageShift
	lf := s.root[pn>>radixBits]
	if lf == nil {
		return nil
	}
	p := lf.pages[pn&radixMask]
	if p == nil {
		return nil
	}
	bi := (uint32(addr) >> OffsetBits) & blockMask
	if p.touched&(1<<bi) == 0 {
		return nil
	}
	return &p.blocks[bi]
}

// WriteBlock replaces the payload of the block containing addr.
func (s *Store) WriteBlock(addr Addr, b *Block) {
	*s.Block(addr) = *b
}

// Len reports how many blocks have been touched.
func (s *Store) Len() int { return s.touched }

// ForEachBlock visits every touched block in ascending address order. The
// visited blocks must be treated as read-only: they may live on pages
// shared copy-on-write with other stores.
func (s *Store) ForEachBlock(fn func(addr Addr, b *Block)) {
	for li, lf := range s.root {
		if lf == nil {
			continue
		}
		for pi, p := range lf.pages {
			if p == nil || p.touched == 0 {
				continue
			}
			base := Addr(uint32(li)<<(radixBits+pageShift) | uint32(pi)<<pageShift)
			for t := p.touched; t != 0; t &= t - 1 {
				bi := bits.TrailingZeros64(t)
				fn(base+Addr(bi<<OffsetBits), &p.blocks[bi])
			}
		}
	}
}

// Clone snapshots the store copy-on-write, used to capture the initial
// memory image the timing simulator replays traces from. Only the radix
// index is copied; both stores keep referencing the same pages, every one
// of which is marked shared, and whichever store mutates a page first (the
// parent included) pays for a private copy of just that page. Cloning the
// same quiescent store from several goroutines concurrently is safe.
func (s *Store) Clone() *Store {
	c := &Store{touched: s.touched}
	for li, lf := range s.root {
		if lf == nil {
			continue
		}
		nl := new(leaf)
		*nl = *lf
		c.root[li] = nl
		for _, p := range lf.pages {
			if p != nil {
				atomic.StoreUint32(&p.shared, 1)
			}
		}
	}
	return c
}

// Typed accessors used by workloads to initialize memory images and by the
// functional simulator's fill path. Addresses must be naturally aligned for
// the access width.

// ReadU8 reads one byte.
func (s *Store) ReadU8(addr Addr) uint8 { return s.Block(addr)[addr.Offset()] }

// WriteU8 writes one byte.
func (s *Store) WriteU8(addr Addr, v uint8) { s.Block(addr)[addr.Offset()] = v }

// ReadU32 reads a 32-bit word.
func (s *Store) ReadU32(addr Addr) uint32 {
	return binary.LittleEndian.Uint32(s.Block(addr)[addr.Offset():])
}

// WriteU32 writes a 32-bit word.
func (s *Store) WriteU32(addr Addr, v uint32) {
	binary.LittleEndian.PutUint32(s.Block(addr)[addr.Offset():], v)
}

// ReadU64 reads a 64-bit word.
func (s *Store) ReadU64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(s.Block(addr)[addr.Offset():])
}

// WriteU64 writes a 64-bit word.
func (s *Store) WriteU64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(s.Block(addr)[addr.Offset():], v)
}

// ReadF32 reads a float32.
func (s *Store) ReadF32(addr Addr) float32 { return math.Float32frombits(s.ReadU32(addr)) }

// WriteF32 writes a float32.
func (s *Store) WriteF32(addr Addr, v float32) { s.WriteU32(addr, math.Float32bits(v)) }

// ReadF64 reads a float64.
func (s *Store) ReadF64(addr Addr) float64 { return math.Float64frombits(s.ReadU64(addr)) }

// WriteF64 writes a float64.
func (s *Store) WriteF64(addr Addr, v float64) { s.WriteU64(addr, math.Float64bits(v)) }

// ReadI32 reads a signed 32-bit integer.
func (s *Store) ReadI32(addr Addr) int32 { return int32(s.ReadU32(addr)) }

// WriteI32 writes a signed 32-bit integer.
func (s *Store) WriteI32(addr Addr, v int32) { s.WriteU32(addr, uint32(v)) }
