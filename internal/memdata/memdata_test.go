package memdata

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddrBlockAndOffset(t *testing.T) {
	cases := []struct {
		addr   Addr
		block  Addr
		offset int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 64, 0},
		{0x12345, 0x12340, 5},
		{0xFFFFFFFF, 0xFFFFFFC0, 63},
	}
	for _, c := range cases {
		if got := c.addr.BlockAddr(); got != c.block {
			t.Errorf("%v.BlockAddr() = %v, want %v", c.addr, got, c.block)
		}
		if got := c.addr.Offset(); got != c.offset {
			t.Errorf("%v.Offset() = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestAddrBlockAlignedProperty(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		ba := addr.BlockAddr()
		return ba%BlockSize == 0 && ba <= addr && addr-ba < BlockSize &&
			int(addr-ba) == addr.Offset()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemTypeGeometry(t *testing.T) {
	for _, c := range []struct {
		t        ElemType
		size     int
		perBlock int
	}{
		{U8, 1, 64}, {I32, 4, 16}, {F32, 4, 16}, {F64, 8, 8},
	} {
		if c.t.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.t, c.t.Size(), c.size)
		}
		if c.t.PerBlock() != c.perBlock {
			t.Errorf("%v.PerBlock() = %d, want %d", c.t, c.t.PerBlock(), c.perBlock)
		}
		if c.t.Bits() != 8*c.size {
			t.Errorf("%v.Bits() = %d, want %d", c.t, c.t.Bits(), 8*c.size)
		}
	}
}

func TestElemRoundTripF32(t *testing.T) {
	f := func(vals [16]float32, idx uint8) bool {
		var b Block
		i := int(idx) % 16
		b.SetElem(F32, i, float64(vals[i]))
		got := b.Elem(F32, i)
		want := float64(vals[i])
		return (math.IsNaN(got) && math.IsNaN(want)) || got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemRoundTripF64(t *testing.T) {
	f := func(v float64, idx uint8) bool {
		var b Block
		i := int(idx) % 8
		b.SetElem(F64, i, v)
		got := b.Elem(F64, i)
		return (math.IsNaN(got) && math.IsNaN(v)) || got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemRoundTripU8ClampsAndRounds(t *testing.T) {
	var b Block
	b.SetElem(U8, 0, -5)
	if got := b.Elem(U8, 0); got != 0 {
		t.Errorf("negative clamps to 0, got %v", got)
	}
	b.SetElem(U8, 1, 300)
	if got := b.Elem(U8, 1); got != 255 {
		t.Errorf("overflow clamps to 255, got %v", got)
	}
	b.SetElem(U8, 2, 127.6)
	if got := b.Elem(U8, 2); got != 128 {
		t.Errorf("rounds to nearest, got %v", got)
	}
}

func TestElemRoundTripI32(t *testing.T) {
	f := func(v int32, idx uint8) bool {
		var b Block
		i := int(idx) % 16
		b.SetElem(I32, i, float64(v))
		return b.Elem(I32, i) == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElemsDecodesWholeBlock(t *testing.T) {
	var b Block
	for i := 0; i < 16; i++ {
		b.SetElem(I32, i, float64(i*3))
	}
	es := b.Elems(I32)
	if len(es) != 16 {
		t.Fatalf("len = %d", len(es))
	}
	for i, v := range es {
		if v != float64(i*3) {
			t.Errorf("elem %d = %v", i, v)
		}
	}
}

func TestStoreZeroFill(t *testing.T) {
	s := NewStore()
	if got := s.ReadU32(0x1000); got != 0 {
		t.Errorf("untouched memory reads %d, want 0", got)
	}
	if s.Len() != 1 {
		t.Errorf("read allocated %d blocks, want 1", s.Len())
	}
	if s.Peek(0x2000) != nil {
		t.Error("Peek allocated a block")
	}
}

func TestStoreTypedAccessors(t *testing.T) {
	s := NewStore()
	s.WriteF32(0x100, 3.5)
	if got := s.ReadF32(0x100); got != 3.5 {
		t.Errorf("f32 = %v", got)
	}
	s.WriteF64(0x200, -2.25)
	if got := s.ReadF64(0x200); got != -2.25 {
		t.Errorf("f64 = %v", got)
	}
	s.WriteI32(0x300, -7)
	if got := s.ReadI32(0x300); got != -7 {
		t.Errorf("i32 = %v", got)
	}
	s.WriteU8(0x304, 200)
	if got := s.ReadU8(0x304); got != 200 {
		t.Errorf("u8 = %v", got)
	}
	s.WriteU64(0x400, 0xDEADBEEFCAFEBABE)
	if got := s.ReadU64(0x400); got != 0xDEADBEEFCAFEBABE {
		t.Errorf("u64 = %#x", got)
	}
}

func TestStoreWriteStraddlesNothing(t *testing.T) {
	// Accessors assume natural alignment within a block; writing the last
	// word of a block must not touch the next block.
	s := NewStore()
	s.WriteU64(0x1038, ^uint64(0)) // last 8 bytes of block 0x1000
	if s.Peek(0x1040) != nil {
		t.Error("write leaked into next block")
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.WriteI32(0x500, 42)
	c := s.Clone()
	s.WriteI32(0x500, 99)
	if got := c.ReadI32(0x500); got != 42 {
		t.Errorf("clone sees %d, want 42", got)
	}
	c.WriteI32(0x504, 7)
	if got := s.ReadI32(0x504); got != 0 {
		t.Errorf("original sees clone write: %d", got)
	}
}

func TestWriteBlockReplacesPayload(t *testing.T) {
	s := NewStore()
	var b Block
	for i := range b {
		b[i] = byte(i)
	}
	s.WriteBlock(0x1000, &b)
	if got := s.ReadU8(0x103F); got != 63 {
		t.Errorf("last byte = %d", got)
	}
}
