// Package memdata provides the basic data-plane types of the simulated
// memory system: physical addresses, fixed-size cache blocks, typed element
// views over blocks, and a sparse backing store that stands in for DRAM.
//
// Everything in the simulator moves data at the granularity of a 64-byte
// block, matching the configuration used in the Doppelgänger paper (Table 1).
package memdata

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BlockSize is the cache block size in bytes used throughout the simulator.
const BlockSize = 64

// OffsetBits is the number of address bits covered by a block offset.
const OffsetBits = 6

// Addr is a 32-bit physical address, as assumed by the paper (§5.6).
type Addr uint32

// BlockAddr returns the address of the block containing a.
func (a Addr) BlockAddr() Addr { return a &^ (BlockSize - 1) }

// Offset returns the byte offset of a within its block.
func (a Addr) Offset() int { return int(a & (BlockSize - 1)) }

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%08x", uint32(a)) }

// Block is the payload of one cache line.
type Block [BlockSize]byte

// ElemType identifies the programmer-declared type of the elements held in
// an approximate region (§3.7: the data type is passed with each memory
// instruction).
type ElemType uint8

// Element types supported by the workloads in this repository.
const (
	U8  ElemType = iota // unsigned 8-bit (e.g. single-channel pixels)
	I32                 // signed 32-bit integers
	F32                 // IEEE-754 single precision
	F64                 // IEEE-754 double precision
)

// Size returns the element size in bytes.
func (t ElemType) Size() int {
	switch t {
	case U8:
		return 1
	case I32, F32:
		return 4
	case F64:
		return 8
	}
	panic(fmt.Sprintf("memdata: unknown element type %d", t))
}

// Bits returns the element width in bits.
func (t ElemType) Bits() int { return t.Size() * 8 }

// PerBlock returns how many elements of this type fit in one block.
func (t ElemType) PerBlock() int { return BlockSize / t.Size() }

// String names the element type.
func (t ElemType) String() string {
	switch t {
	case U8:
		return "u8"
	case I32:
		return "i32"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("ElemType(%d)", uint8(t))
}

// Elem reads element i of type t from the block as a float64, the common
// numeric domain used for hashing and similarity checks.
func (b *Block) Elem(t ElemType, i int) float64 {
	switch t {
	case U8:
		return float64(b[i])
	case I32:
		return float64(int32(binary.LittleEndian.Uint32(b[i*4:])))
	case F32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
	case F64:
		return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	panic("memdata: unknown element type")
}

// SetElem writes element i of type t into the block from a float64,
// truncating or rounding as the concrete type requires.
func (b *Block) SetElem(t ElemType, i int, v float64) {
	switch t {
	case U8:
		b[i] = byte(clamp(math.Round(v), 0, 255))
	case I32:
		binary.LittleEndian.PutUint32(b[i*4:], uint32(int32(clamp(math.Round(v), math.MinInt32, math.MaxInt32))))
	case F32:
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(float32(v)))
	case F64:
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	default:
		panic("memdata: unknown element type")
	}
}

// Elems decodes every element of type t in the block.
func (b *Block) Elems(t ElemType) []float64 {
	n := t.PerBlock()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = b.Elem(t, i)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
