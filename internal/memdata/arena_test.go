package memdata

import (
	"math/rand"
	"sync"
	"testing"
)

// storeModel is the obvious map-backed reference implementation the paged
// arena must be indistinguishable from (block-granular first-touch zero-fill
// included). The differential tests below drive a Store and a storeModel
// with the same operation sequence and compare exhaustively.
type storeModel map[Addr]*Block

func (m storeModel) block(addr Addr) *Block {
	ba := addr.BlockAddr()
	b := m[ba]
	if b == nil {
		b = new(Block)
		m[ba] = b
	}
	return b
}

func (m storeModel) clone() storeModel {
	c := make(storeModel, len(m))
	for a, b := range m {
		nb := *b
		c[a] = &nb
	}
	return c
}

// pair is one store under test plus its reference model.
type pair struct {
	s *Store
	m storeModel
}

// step applies one random operation to p, checking read results against the
// model as it goes.
func (p *pair) step(t *testing.T, rng *rand.Rand) {
	t.Helper()
	// Confine the address space so clones collide on shared pages often.
	addr := Addr(rng.Intn(64*PageBlocks)) * BlockSize
	switch rng.Intn(4) {
	case 0: // whole-block write
		var b Block
		rng.Read(b[:])
		p.s.WriteBlock(addr, &b)
		*p.m.block(addr) = b
	case 1: // word write
		off := Addr(rng.Intn(BlockSize/8)) * 8
		v := rng.Uint64()
		p.s.WriteU64(addr+off, v)
		mb := p.m.block(addr)
		for i := 0; i < 8; i++ {
			mb[int(off)+i] = byte(v >> uint(8*i))
		}
	case 2: // word read (zero-fills on first touch)
		off := Addr(rng.Intn(BlockSize/8)) * 8
		got := p.s.ReadU64(addr + off)
		mb := p.m.block(addr)
		var want uint64
		for i := 0; i < 8; i++ {
			want |= uint64(mb[int(off)+i]) << uint(8*i)
		}
		if got != want {
			t.Fatalf("ReadU64(%v) = %#x, want %#x", addr+off, got, want)
		}
	case 3: // byte poke through the raw block pointer
		b := p.s.Block(addr)
		i := rng.Intn(BlockSize)
		b[i] ^= 0xA5
		p.m.block(addr)[i] ^= 0xA5
	}
}

// verify checks that p.s and p.m agree exactly: same touched set, same
// payloads, and ForEachBlock visits each touched block once in ascending
// address order.
func (p *pair) verify(t *testing.T, label string) {
	t.Helper()
	if p.s.Len() != len(p.m) {
		t.Fatalf("%s: Len() = %d, model has %d blocks", label, p.s.Len(), len(p.m))
	}
	for a, want := range p.m {
		got := p.s.Peek(a)
		if got == nil {
			t.Fatalf("%s: block %v missing", label, a)
		}
		if *got != *want {
			t.Fatalf("%s: block %v payload mismatch", label, a)
		}
	}
	visited := 0
	last := Addr(0)
	p.s.ForEachBlock(func(a Addr, b *Block) {
		if visited > 0 && a <= last {
			t.Fatalf("%s: ForEachBlock out of order: %v after %v", label, a, last)
		}
		last = a
		visited++
		want := p.m[a]
		if want == nil {
			t.Fatalf("%s: ForEachBlock visited unknown block %v", label, a)
		}
		if *b != *want {
			t.Fatalf("%s: ForEachBlock block %v payload mismatch", label, a)
		}
	})
	if visited != len(p.m) {
		t.Fatalf("%s: ForEachBlock visited %d blocks, model has %d", label, visited, len(p.m))
	}
}

// TestStoreDifferential drives the paged store and the map model through the
// same random operation sequence and requires them to stay indistinguishable.
func TestStoreDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := &pair{s: NewStore(), m: storeModel{}}
	for i := 0; i < 4000; i++ {
		p.step(t, rng)
	}
	p.verify(t, "store")
}

// TestCloneAliasingProperty is the copy-on-write soundness test: after
// cloning, mutations through any store in the family (parent included) are
// never observable through any other member. Each store carries its own
// reference model, forked at clone time, so any page-sharing leak shows up
// as a divergence from the model.
func TestCloneAliasingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parent := &pair{s: NewStore(), m: storeModel{}}
	for i := 0; i < 600; i++ {
		parent.step(t, rng)
	}

	family := []*pair{parent}
	for c := 0; c < 3; c++ {
		family = append(family, &pair{s: parent.s.Clone(), m: parent.m.clone()})
	}

	// Interleave mutations across the whole family, including the parent,
	// cloning one more grandchild mid-stream to exercise re-sharing of
	// already-privatized pages.
	for i := 0; i < 3000; i++ {
		family[rng.Intn(len(family))].step(t, rng)
		if i == 1500 {
			src := family[rng.Intn(len(family))]
			family = append(family, &pair{s: src.s.Clone(), m: src.m.clone()})
		}
	}
	for i, p := range family {
		p.verify(t, map[bool]string{true: "parent", false: "clone"}[i == 0])
	}
}

// TestConcurrentCloneThenMutate mirrors the sweep's real usage: many
// goroutines concurrently clone one quiescent store, then each mutates its
// private clone. Run under -race this proves the atomic shared-flag protocol.
func TestConcurrentCloneThenMutate(t *testing.T) {
	src := NewStore()
	for i := 0; i < 256; i++ {
		src.WriteU64(Addr(i)*BlockSize, uint64(i)+1)
	}
	const clones = 8
	var wg sync.WaitGroup
	errs := make(chan string, clones)
	for g := 0; g < clones; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := src.Clone()
			for i := 0; i < 256; i++ {
				a := Addr(i) * BlockSize
				if got := c.ReadU64(a); got != uint64(i)+1 {
					errs <- "clone saw wrong initial value"
					return
				}
				c.WriteU64(a, uint64(g)<<32|uint64(i))
			}
			for i := 0; i < 256; i++ {
				if got := c.ReadU64(Addr(i) * BlockSize); got != uint64(g)<<32|uint64(i) {
					errs <- "clone lost its own write"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	for i := 0; i < 256; i++ {
		if got := src.ReadU64(Addr(i) * BlockSize); got != uint64(i)+1 {
			t.Fatalf("parent block %d clobbered by a clone: %#x", i, got)
		}
	}
}

// TestStoreBlockSteadyStateZeroAllocs locks down the arena's core promise:
// once a page is owned, Block lookups allocate nothing.
func TestStoreBlockSteadyStateZeroAllocs(t *testing.T) {
	s := NewStore()
	s.WriteU64(0x1000, 1)
	s.WriteU64(0x80000, 2) // second leaf path too
	if n := testing.AllocsPerRun(1000, func() {
		_ = s.Block(0x1000)
		_ = s.Block(0x80000)
	}); n != 0 {
		t.Errorf("steady-state Block allocates %v allocs/op, want 0", n)
	}
}

// TestCloneFaultCostIsOnePage: the first write through a clone pays exactly
// one page copy; subsequent accesses to that page are free again.
func TestCloneFaultCostIsOnePage(t *testing.T) {
	s := NewStore()
	s.WriteU64(0x1000, 1)
	c := s.Clone()
	c.WriteU64(0x1000, 2) // COW fault: privatize the page
	if n := testing.AllocsPerRun(1000, func() { _ = c.Block(0x1000) }); n != 0 {
		t.Errorf("post-fault Block allocates %v allocs/op, want 0", n)
	}
	if got := s.ReadU64(0x1000); got != 1 {
		t.Fatalf("parent sees clone write: %#x", got)
	}
}
