package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

// testRegionBase is where the test annotation region starts.
const testRegionBase = 0x0010_0000

// testSetup builds a small Doppelgänger over a fresh store with one F32
// region of the given byte size.
func testSetup(t *testing.T, cfg Config, regionBytes int) (*Doppelganger, *memdata.Store, *approx.Region) {
	t.Helper()
	st := memdata.NewStore()
	ann := approx.MustAnnotations(approx.Region{
		Name:  "data",
		Start: testRegionBase,
		End:   testRegionBase + memdata.Addr(regionBytes),
		Type:  memdata.F32,
		Min:   0,
		Max:   100,
	})
	d, err := New(cfg, st, ann)
	if err != nil {
		t.Fatal(err)
	}
	return d, st, ann.Lookup(testRegionBase)
}

func smallCfg() Config {
	return Config{
		Name:       "test",
		TagEntries: 64, TagWays: 4, // 16 sets
		DataEntries: 16, DataWays: 4, // 4 sets
		MapSpec: approx.MapSpec{M: 14},
	}
}

// fillUniform writes a uniform-valued block (every element = v) at addr.
func fillUniform(st *memdata.Store, addr memdata.Addr, v float64) {
	b := st.Block(addr)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, v)
	}
}

func addrN(i int) memdata.Addr { return testRegionBase + memdata.Addr(i*memdata.BlockSize) }

func check(t *testing.T, d *Doppelganger) {
	t.Helper()
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestReadMissInsertsAndForwardsMemoryData(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 42)
	data, eff := d.Read(addrN(0))
	if eff.Hit {
		t.Fatal("first read hit")
	}
	if eff.MemReads != 1 {
		t.Errorf("mem reads = %d", eff.MemReads)
	}
	if got := data.Elem(memdata.F32, 3); got != 42 {
		t.Errorf("forwarded data = %v, want precise memory data 42", got)
	}
	if d.TagEntries() != 1 || d.DataBlocks() != 1 {
		t.Errorf("occupancy = %d tags / %d data", d.TagEntries(), d.DataBlocks())
	}
	if eff.MapGens != 1 {
		t.Errorf("map gens = %d", eff.MapGens)
	}
	check(t, d)
}

func TestReadHitReturnsRepresentative(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 42)
	fillUniform(st, addrN(1), 42.001) // same map: tiny difference
	d.Read(addrN(0))
	d.Read(addrN(1)) // links to block 0's data entry
	if d.Stats.ReuseLinks != 1 {
		t.Fatalf("reuse links = %d", d.Stats.ReuseLinks)
	}
	if d.DataBlocks() != 1 || d.TagEntries() != 2 {
		t.Fatalf("occupancy = %d tags / %d data", d.TagEntries(), d.DataBlocks())
	}
	// A re-read of block 1 now hits and returns block 0's values.
	data, eff := d.Read(addrN(1))
	if !eff.Hit {
		t.Fatal("expected hit")
	}
	if got := data.Elem(memdata.F32, 0); got != 42 {
		t.Errorf("hit returned %v, want representative 42", got)
	}
	check(t, d)
}

func TestDissimilarBlocksGetOwnEntries(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 10)
	fillUniform(st, addrN(1), 90)
	d.Read(addrN(0))
	d.Read(addrN(1))
	if d.DataBlocks() != 2 {
		t.Errorf("data blocks = %d, want 2", d.DataBlocks())
	}
	if d.Stats.ReuseLinks != 0 {
		t.Errorf("reuse links = %d", d.Stats.ReuseLinks)
	}
	check(t, d)
}

func TestTagEvictionKeepsSharedData(t *testing.T) {
	cfg := smallCfg()
	d, st, _ := testSetup(t, cfg, 1<<20)
	// Fill one tag set (16 sets → addresses i*16 blocks apart share a set)
	// with similar blocks sharing one data entry.
	setStride := 16                     // blocks
	for i := 0; i <= cfg.TagWays; i++ { // one more than the ways
		fillUniform(st, addrN(i*setStride), 42)
		d.Read(addrN(i * setStride))
		check(t, d)
	}
	if d.Stats.TagEvictions != 1 {
		t.Fatalf("tag evictions = %d, want 1", d.Stats.TagEvictions)
	}
	// The data entry must survive: other tags still point at it.
	if d.DataBlocks() != 1 {
		t.Errorf("data blocks = %d, want 1", d.DataBlocks())
	}
	if d.Contains(addrN(0)) {
		t.Error("LRU victim still present")
	}
}

func TestSoleTagEvictionFreesData(t *testing.T) {
	cfg := smallCfg()
	d, st, _ := testSetup(t, cfg, 1<<20)
	setStride := 16
	for i := 0; i <= cfg.TagWays; i++ {
		fillUniform(st, addrN(i*setStride), float64(i*10)) // all dissimilar
		d.Read(addrN(i * setStride))
		check(t, d)
	}
	if d.DataBlocks() != cfg.TagWays {
		t.Errorf("data blocks = %d, want %d (victim's entry freed)", d.DataBlocks(), cfg.TagWays)
	}
}

func TestDataEvictionInvalidatesWholeTagList(t *testing.T) {
	cfg := smallCfg() // data: 4 sets × 4 ways
	d, st, _ := testSetup(t, cfg, 1<<20)
	// Two tags share a data entry.
	fillUniform(st, addrN(0), 42)
	fillUniform(st, addrN(1), 42.0001)
	d.Read(addrN(0))
	d.Read(addrN(1))
	// Now flood the data array with dissimilar blocks until the shared
	// entry is evicted.
	evicted := false
	for i := 2; i < 200 && !evicted; i++ {
		fillUniform(st, addrN(i), float64(i%97)+0.5)
		_, eff := d.Read(addrN(i))
		check(t, d)
		for _, ev := range eff.Evicted {
			if ev.Addr == addrN(0).BlockAddr() || ev.Addr == addrN(1).BlockAddr() {
				evicted = true
			}
		}
		if evicted {
			// Both must go together (§3.5: evicting data evicts all tags).
			if d.Contains(addrN(0)) || d.Contains(addrN(1)) {
				t.Fatal("data eviction left a stale tag")
			}
		}
	}
	if !evicted {
		t.Skip("flood did not reach the shared entry (set mapping)")
	}
}

func TestDirtyTagEvictionWritesRepresentativeBack(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<20)
	fillUniform(st, addrN(0), 42)
	d.Read(addrN(0))
	// Dirty the tag via a writeback whose map stays the same (silent).
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, 42.00001)
	}
	eff := d.WriteBack(addrN(0), b)
	if !eff.Hit || d.Stats.SilentWrites != 1 {
		t.Fatalf("expected silent write: %+v", d.Stats)
	}
	check(t, d)
	// Evict the tag: the *representative* data (42s) goes to memory.
	st.WriteBlock(addrN(0), new(memdata.Block)) // clobber memory to observe the writeback
	eff = d.EvictFor(addrN(0))
	if len(eff.Evicted) != 1 || !eff.Evicted[0].Dirty {
		t.Fatalf("eviction effects: %+v", eff)
	}
	if eff.MemWrites != 1 {
		t.Errorf("mem writes = %d", eff.MemWrites)
	}
	if got := st.Block(addrN(0)).Elem(memdata.F32, 5); got != 42 {
		t.Errorf("memory now holds %v, want representative 42", got)
	}
	check(t, d)
}

func TestWriteBackSilent(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 50)
	d.Read(addrN(0))
	b := st.Block(addrN(0))
	eff := d.WriteBack(addrN(0), b)
	if !eff.Hit {
		t.Fatal("writeback missed")
	}
	if d.Stats.SilentWrites != 1 || d.Stats.Remaps != 0 || d.Stats.WriteAllocs != 0 {
		t.Errorf("stats = %+v", d.Stats)
	}
	check(t, d)
}

func TestWriteBackRemapOntoExistingEntry(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 10)
	fillUniform(st, addrN(1), 90)
	d.Read(addrN(0))
	d.Read(addrN(1))
	// Rewrite block 0 with values similar to block 1: its tag must migrate
	// to block 1's entry and the written values must be DISCARDED (§3.4).
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, 90.0001)
	}
	d.WriteBack(addrN(0), b)
	if d.Stats.Remaps != 1 {
		t.Fatalf("remaps = %d; stats %+v", d.Stats.Remaps, d.Stats)
	}
	if d.DataBlocks() != 1 {
		t.Errorf("data blocks = %d, want 1 (old entry freed, tag joined new)", d.DataBlocks())
	}
	data, eff := d.Read(addrN(0))
	if !eff.Hit {
		t.Fatal("read after remap missed")
	}
	if got := data.Elem(memdata.F32, 0); got != 90 {
		t.Errorf("read %v, want 90 (written 90.0001 discarded)", got)
	}
	check(t, d)
}

func TestWriteBackAllocatesNewEntry(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 10)
	d.Read(addrN(0))
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, 77)
	}
	d.WriteBack(addrN(0), b)
	if d.Stats.WriteAllocs != 1 {
		t.Fatalf("write allocs = %d", d.Stats.WriteAllocs)
	}
	data, eff := d.Read(addrN(0))
	if !eff.Hit || data.Elem(memdata.F32, 2) != 77 {
		t.Errorf("new entry holds %v, want 77", data.Elem(memdata.F32, 2))
	}
	check(t, d)
}

func TestWriteBackMissInsertsDirty(t *testing.T) {
	d, _, _ := testSetup(t, smallCfg(), 1<<16)
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, 33)
	}
	eff := d.WriteBack(addrN(0), b)
	if eff.Hit {
		t.Fatal("writeback to absent tag reported hit")
	}
	if d.Stats.WritebackMisses != 1 {
		t.Errorf("writeback misses = %d", d.Stats.WritebackMisses)
	}
	if !d.Contains(addrN(0)) {
		t.Error("block not inserted")
	}
	check(t, d)
}

func TestEvictForAbsentIsNoop(t *testing.T) {
	d, _, _ := testSetup(t, smallCfg(), 1<<16)
	eff := d.EvictFor(addrN(5))
	if len(eff.Evicted) != 0 {
		t.Errorf("evicted %v", eff.Evicted)
	}
	check(t, d)
}

func TestSnapshotReportsRepresentativeData(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 42)
	fillUniform(st, addrN(1), 42.0001)
	d.Read(addrN(0))
	d.Read(addrN(1))
	snap := d.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for _, sb := range snap {
		if sb.Region == nil {
			t.Fatal("snapshot lost region")
		}
		if got := sb.Data.Elem(memdata.F32, 0); got != 42 {
			t.Errorf("snapshot of %v holds %v, want representative 42", sb.Addr, got)
		}
	}
	if got := d.AvgTagsPerData(); got != 2 {
		t.Errorf("avg tags per data = %v, want 2", got)
	}
}

func TestPreciseAddressPanicsWhenNotUnified(t *testing.T) {
	d, _, _ := testSetup(t, smallCfg(), 1<<16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for precise address on non-unified Doppelgänger")
		}
	}()
	d.Read(0xF000_0000) // outside the annotated region
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "zero", TagEntries: 0, TagWays: 1, DataEntries: 4, DataWays: 1, MapSpec: approx.MapSpec{M: 14}},
		{Name: "ways", TagEntries: 10, TagWays: 3, DataEntries: 4, DataWays: 1, MapSpec: approx.MapSpec{M: 14}},
		{Name: "tagsets", TagEntries: 48, TagWays: 4, DataEntries: 4, DataWays: 1, MapSpec: approx.MapSpec{M: 14}},
		{Name: "mapm", TagEntries: 64, TagWays: 4, DataEntries: 16, DataWays: 4, MapSpec: approx.MapSpec{M: 0}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
	// Non-power-of-two data sets are allowed (3/4 uniDoppelgänger).
	ok := Config{Name: "3/4", TagEntries: 64, TagWays: 4, DataEntries: 48, DataWays: 4, MapSpec: approx.MapSpec{M: 14}}
	if err := ok.Validate(); err != nil {
		t.Errorf("3/4 data array rejected: %v", err)
	}
}

// TestRandomOperationInvariants drives a random mix of reads, writebacks
// and evictions and checks the structural invariants after every step.
func TestRandomOperationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallCfg()
		st := memdata.NewStore()
		ann := approx.MustAnnotations(approx.Region{
			Name: "data", Start: testRegionBase, End: testRegionBase + 1<<20,
			Type: memdata.F32, Min: 0, Max: 100,
		})
		d := MustNew(cfg, st, ann)
		for op := 0; op < 400; op++ {
			addr := addrN(rng.Intn(512))
			switch rng.Intn(4) {
			case 0, 1:
				d.Read(addr)
			case 2:
				b := new(memdata.Block)
				v := 100 * rng.Float64()
				for i := 0; i < 16; i++ {
					b.SetElem(memdata.F32, i, v+rng.Float64())
				}
				d.WriteBack(addr, b)
			case 3:
				d.EvictFor(addr)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestStatsConsistency: reads = hits + inserts (every miss inserts), and
// inserts = reuse links + new data blocks.
func TestStatsConsistency(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<20)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 1000; op++ {
		a := addrN(rng.Intn(256))
		fillUniform(st, a, float64(rng.Intn(20)*5))
		d.Read(a)
	}
	s := d.Stats
	if s.Reads != s.ReadHits+s.Inserts {
		t.Errorf("reads %d != hits %d + inserts %d", s.Reads, s.ReadHits, s.Inserts)
	}
	if s.Inserts != s.ReuseLinks+s.NewDataBlocks {
		t.Errorf("inserts %d != reuse %d + new %d", s.Inserts, s.ReuseLinks, s.NewDataBlocks)
	}
	check(t, d)
}
