package core

import "fmt"

// CheckInvariants verifies the structural invariants of the decoupled
// arrays; it is exercised heavily by the unit and property tests and is
// cheap enough to call between operations.
//
// Invariants (from §3.1–§3.5):
//  1. Every valid tag's (map, precise) key resolves to exactly one valid
//     data entry.
//  2. Every valid data entry's tag list is a consistent doubly-linked list
//     headed by its head pointer; every member's key matches the entry.
//  3. Every valid tag appears in exactly one list; every invalid tag is in
//     none.
//  4. No two valid data entries share a (key, precise) pair within reach of
//     the same set index.
//  5. Precise entries (uniDoppelgänger) have exactly one tag, with null
//     prev/next pointers.
func (d *Doppelganger) CheckInvariants() error {
	seen := make(map[int32]int32) // tag -> data entry that listed it
	for de := range d.data {
		e := &d.data[de]
		if !e.valid {
			if e.head != nilTag && e.head != 0 {
				return fmt.Errorf("invalid data entry %d has head %d", de, e.head)
			}
			continue
		}
		if e.head == nilTag {
			return fmt.Errorf("valid data entry %d (key %#x) has empty tag list", de, e.key)
		}
		count := int32(0)
		prev := nilTag
		for t := e.head; t != nilTag; t = d.tags[t].next {
			te := &d.tags[t]
			if !te.valid {
				return fmt.Errorf("data entry %d lists invalid tag %d", de, t)
			}
			if owner, dup := seen[t]; dup {
				return fmt.Errorf("tag %d appears in lists of data entries %d and %d", t, owner, de)
			}
			seen[t] = int32(de)
			if te.prev != prev {
				return fmt.Errorf("tag %d prev pointer is %d, want %d", t, te.prev, prev)
			}
			if te.mapv != e.key || te.precise != e.precise {
				return fmt.Errorf("tag %d key (%#x, precise=%v) mismatches data entry %d (%#x, precise=%v)",
					t, te.mapv, te.precise, de, e.key, e.precise)
			}
			prev = t
			count++
			if count > int32(len(d.tags)) {
				return fmt.Errorf("data entry %d tag list does not terminate", de)
			}
		}
		if count != e.count {
			return fmt.Errorf("data entry %d count %d, list length %d", de, e.count, count)
		}
		if e.precise && count != 1 {
			return fmt.Errorf("precise data entry %d has %d tags", de, count)
		}
	}

	for t := range d.tags {
		te := &d.tags[t]
		if te.valid {
			if _, ok := seen[int32(t)]; !ok {
				return fmt.Errorf("valid tag %d (%v) is in no data entry's list", t, te.addr)
			}
			if de := d.probeData(te.mapv, te.precise); de < 0 {
				return fmt.Errorf("valid tag %d (%v) has no data entry for key %#x", t, te.addr, te.mapv)
			}
			if te.precise && (te.prev != nilTag || te.next != nilTag) {
				return fmt.Errorf("precise tag %d has non-null list pointers", t)
			}
		} else if _, ok := seen[int32(t)]; ok {
			return fmt.Errorf("invalid tag %d is listed by data entry %d", t, seen[int32(t)])
		}
	}

	// Compressed mode: per-set byte accounting must match the stored
	// payloads and respect the budget.
	if d.cfg.CompressedData {
		budget := d.compressedSetBudget()
		sets := len(d.data) / d.cfg.DataWays
		for set := 0; set < sets; set++ {
			sum := 0
			for w := 0; w < d.cfg.DataWays; w++ {
				e := &d.data[set*d.cfg.DataWays+w]
				if e.valid {
					sum += len(e.comp)
				} else if len(e.comp) != 0 {
					return fmt.Errorf("invalid data entry %d retains compressed payload", set*d.cfg.DataWays+w)
				}
			}
			if sum != d.setUsage[set] {
				return fmt.Errorf("set %d usage %d, stored %d", set, d.setUsage[set], sum)
			}
			if sum > budget {
				return fmt.Errorf("set %d usage %d exceeds budget %d", set, sum, budget)
			}
		}
	}

	// Unique keys per array (within each set; keys in different sets cannot
	// collide because the set index is part of the key).
	keys := make(map[[2]uint64]int)
	for de := range d.data {
		e := &d.data[de]
		if !e.valid {
			continue
		}
		k := [2]uint64{uint64(e.key), 0}
		if e.precise {
			k[1] = 1
		}
		if other, dup := keys[k]; dup {
			return fmt.Errorf("data entries %d and %d share key %#x", other, de, e.key)
		}
		keys[k] = de
	}
	return nil
}
