package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

func compressedCfg() Config {
	c := smallCfg()
	c.Name = "compressed-test"
	c.CompressedData = true
	c.CompressBudget = 0.5
	return c
}

func TestCompressedRoundTrip(t *testing.T) {
	d, st, _ := testSetup(t, compressedCfg(), 1<<16)
	fillUniform(st, addrN(0), 42) // uniform: compresses to the repeat scheme
	data, eff := d.Read(addrN(0))
	if eff.Hit {
		t.Fatal("first read hit")
	}
	if got := data.Elem(memdata.F32, 5); got != 42 {
		t.Errorf("forwarded %v", got)
	}
	data, eff = d.Read(addrN(0))
	if !eff.Hit || data.Elem(memdata.F32, 5) != 42 {
		t.Errorf("hit returned %v (decompression)", data.Elem(memdata.F32, 5))
	}
	if d.CompressionRatio() < 2 {
		t.Errorf("uniform block compression ratio = %v", d.CompressionRatio())
	}
	check(t, d)
}

func TestCompressedSharingStillWorks(t *testing.T) {
	d, st, _ := testSetup(t, compressedCfg(), 1<<16)
	fillUniform(st, addrN(0), 42)
	fillUniform(st, addrN(1), 42.0001)
	d.Read(addrN(0))
	d.Read(addrN(1))
	if d.DataBlocks() != 1 || d.Stats.ReuseLinks != 1 {
		t.Errorf("occupancy %d, reuse %d", d.DataBlocks(), d.Stats.ReuseLinks)
	}
	check(t, d)
}

// TestCompressedBudgetEviction: filling a set with incompressible blocks
// must hold fewer entries than the way count, evicting tag lists to stay
// within the byte budget.
func TestCompressedBudgetEviction(t *testing.T) {
	cfg := compressedCfg() // 4 ways/set, budget 2 × 64 B
	d, st, _ := testSetup(t, cfg, 1<<20)
	rng := rand.New(rand.NewSource(3))
	// Incompressible float noise: each block ~64 B compressed.
	for i := 0; i < 64; i++ {
		blk := st.Block(addrN(i))
		for e := 0; e < 16; e++ {
			blk.SetElem(memdata.F32, e, rng.Float64()*100)
		}
		d.Read(addrN(i))
		check(t, d)
	}
	// With a 128 B budget and ~64 B payloads, at most 2 valid entries per
	// set; 4 sets → at most 8 data blocks.
	if got := d.DataBlocks(); got > 8 {
		t.Errorf("data blocks = %d, want ≤ 8 under the byte budget", got)
	}
	if d.Stats.DataEvictions == 0 {
		t.Error("no budget evictions happened")
	}
}

// TestCompressedHoldsMoreCompressibleBlocks: compressible payloads fit more
// entries than incompressible ones in the same budget.
func TestCompressedHoldsMoreCompressibleBlocks(t *testing.T) {
	run := func(compressible bool) int {
		d, st, _ := testSetup(t, compressedCfg(), 1<<20)
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 64; i++ {
			blk := st.Block(addrN(i))
			for e := 0; e < 16; e++ {
				if compressible {
					blk.SetElem(memdata.F32, e, float64(i)) // uniform per block
				} else {
					blk.SetElem(memdata.F32, e, rng.Float64()*100)
				}
			}
			d.Read(addrN(i))
		}
		return d.DataBlocks()
	}
	c, inc := run(true), run(false)
	if c <= inc {
		t.Errorf("compressible blocks resident %d ≤ incompressible %d", c, inc)
	}
}

func TestCompressedPreciseWriteGrowth(t *testing.T) {
	cfg := compressedCfg()
	cfg.Unified = true
	d, st, _ := testSetup(t, cfg, 1<<16)
	// Insert a compressible precise block, then overwrite with noise: the
	// entry grows and the budget must still hold.
	st.WriteF32(preciseAddr(0), 7)
	d.Read(preciseAddr(0))
	rng := rand.New(rand.NewSource(5))
	b := new(memdata.Block)
	for e := 0; e < 16; e++ {
		b.SetElem(memdata.F32, e, rng.Float64()*1000)
	}
	d.WriteBack(preciseAddr(0), b)
	check(t, d)
	data, eff := d.Read(preciseAddr(0))
	if !eff.Hit || data.Elem(memdata.F32, 3) != b.Elem(memdata.F32, 3) {
		t.Error("precise compressed write lost data")
	}
}

// TestCompressedRandomInvariants: random traffic with mixed compressibility
// keeps all structural and budget invariants.
func TestCompressedRandomInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := memdata.NewStore()
		ann := approx.MustAnnotations(approx.Region{
			Name: "data", Start: testRegionBase, End: testRegionBase + 1<<20,
			Type: memdata.F32, Min: 0, Max: 100,
		})
		cfg := compressedCfg()
		cfg.Unified = true
		d := MustNew(cfg, st, ann)
		for op := 0; op < 300; op++ {
			var addr memdata.Addr
			if rng.Intn(2) == 0 {
				addr = addrN(rng.Intn(128))
			} else {
				addr = preciseAddr(rng.Intn(128))
			}
			switch rng.Intn(4) {
			case 0, 1:
				blk := st.Block(addr)
				if rng.Intn(2) == 0 {
					v := 100 * rng.Float64()
					for e := 0; e < 16; e++ {
						blk.SetElem(memdata.F32, e, v)
					}
				} else {
					for e := 0; e < 16; e++ {
						blk.SetElem(memdata.F32, e, 100*rng.Float64())
					}
				}
				d.Read(addr)
			case 2:
				b := new(memdata.Block)
				for e := 0; e < 16; e++ {
					b.SetElem(memdata.F32, e, 100*rng.Float64())
				}
				d.WriteBack(addr, b)
			case 3:
				d.EvictFor(addr)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCompressedLayoutShrinks(t *testing.T) {
	plain := paperDoppelCfg()
	comp := paperDoppelCfg()
	comp.CompressedData = true
	if comp.DataArrayLayout().KBytes() >= plain.DataArrayLayout().KBytes() {
		t.Error("compressed data array not smaller")
	}
}

func TestCompressedConfigValidation(t *testing.T) {
	bad := compressedCfg()
	bad.CompressBudget = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("budget > 1 accepted")
	}
	bad.CompressBudget = 0.1 // 4 ways × 64 × 0.1 = 25 B < one block
	if err := bad.Validate(); err == nil {
		t.Error("sub-block budget accepted")
	}
}
