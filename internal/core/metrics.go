package core

import (
	"strings"

	"doppelganger/internal/metrics"
)

// coreMetrics are the Doppelgänger cache's registry instruments, resolved
// once by AttachMetrics. The zero value (all nil) is the disabled fast path:
// each event costs one nil check and zero allocations.
//
// Counters mirror the legacy Stats fields exactly (the differential tests
// compare the two), plus approx_substitutions — the number of times a block's
// payload was substituted by similar data already resident in the data array
// (reuse links on insert + remaps on writeback), the defining approximation
// event of the design. The two gauges track live occupancy of the decoupled
// tag and data arrays (map-table occupancy), with high-water marks.
type coreMetrics struct {
	reads, readHits   *metrics.Counter
	writeBacks        *metrics.Counter
	silentWrites      *metrics.Counter
	remaps            *metrics.Counter
	writeAllocs       *metrics.Counter
	writebackMisses   *metrics.Counter
	inserts           *metrics.Counter
	reuseLinks        *metrics.Counter
	newDataBlocks     *metrics.Counter
	tagEvictions      *metrics.Counter
	dirtyTagEvictions *metrics.Counter
	dataEvictions     *metrics.Counter
	mapGens           *metrics.Counter
	approxSubs        *metrics.Counter
	qualityBypasses   *metrics.Counter

	tagsOccupied *metrics.Gauge
	dataOccupied *metrics.Gauge
}

// metricName lowercases a config name for use as a metric path segment.
func metricName(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "_")
}

// AttachMetrics resolves the cache's instruments in reg under
// "core.<name>.*". A nil registry leaves the disabled fast path. The
// occupancy gauges are seeded from the current array state so attaching
// mid-run stays consistent.
func (d *Doppelganger) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	prefix := "core." + metricName(d.cfg.Name) + "."
	d.m = coreMetrics{
		reads:             reg.Counter(prefix + "reads"),
		readHits:          reg.Counter(prefix + "read_hits"),
		writeBacks:        reg.Counter(prefix + "writebacks"),
		silentWrites:      reg.Counter(prefix + "silent_writes"),
		remaps:            reg.Counter(prefix + "remaps"),
		writeAllocs:       reg.Counter(prefix + "write_allocs"),
		writebackMisses:   reg.Counter(prefix + "writeback_misses"),
		inserts:           reg.Counter(prefix + "inserts"),
		reuseLinks:        reg.Counter(prefix + "reuse_links"),
		newDataBlocks:     reg.Counter(prefix + "new_data_blocks"),
		tagEvictions:      reg.Counter(prefix + "tag_evictions"),
		dirtyTagEvictions: reg.Counter(prefix + "dirty_tag_evictions"),
		dataEvictions:     reg.Counter(prefix + "data_evictions"),
		mapGens:           reg.Counter(prefix + "map_gens"),
		approxSubs:        reg.Counter(prefix + "approx_substitutions"),
		qualityBypasses:   reg.Counter(prefix + "quality_bypasses"),
		tagsOccupied:      reg.Gauge(prefix + "tags_occupied"),
		dataOccupied:      reg.Gauge(prefix + "data_occupied"),
	}
	d.m.tagsOccupied.Set(int64(d.TagEntries()))
	d.m.dataOccupied.Set(int64(d.DataBlocks()))
}

// AttachMetrics resolves the baseline LLC's instruments: it simply delegates
// to the underlying set-associative array ("cache.<name>.*").
func (b *Baseline) AttachMetrics(reg *metrics.Registry) {
	b.arr.AttachMetrics(reg)
}

// AttachMetrics attaches both halves of the split organization.
func (s *Split) AttachMetrics(reg *metrics.Registry) {
	s.Precise.AttachMetrics(reg)
	s.Doppel.AttachMetrics(reg)
}
