package core

import (
	"doppelganger/internal/bdi"
	"doppelganger/internal/memdata"
)

// This file implements the Doppelgänger+BΔI combination the paper evaluates
// analytically in §5.1 (43.9% storage savings) and describes as orthogonal:
// "compression can be used in conjunction with Doppelgänger to further save
// space in the data array." With Config.CompressedData set, data array
// entries hold BΔI-compressed payloads and each data set has a byte budget
// smaller than its uncompressed capacity; inserting a block that would
// overflow the budget evicts entries (and their tag lists) until it fits,
// like segmented compressed caches do.

// compressedSetBudget is the per-set byte budget.
func (d *Doppelganger) compressedSetBudget() int {
	frac := d.cfg.CompressBudget
	return int(float64(d.cfg.DataWays*memdata.BlockSize) * frac)
}

// payloadOf returns entry de's block data, decompressing when the array is
// compressed. The returned copy is safe to retain.
func (d *Doppelganger) payloadOf(de int32) memdata.Block {
	e := &d.data[de]
	if !d.cfg.CompressedData {
		return e.data
	}
	blk, err := bdi.Decompress(bdi.Compressed{Scheme: e.scheme, Payload: e.comp})
	if err != nil {
		panic("core: corrupt compressed data entry: " + err.Error())
	}
	return *blk
}

// setPayload stores payload into entry de, compressing when enabled and
// keeping the set's byte usage current. The caller must have ensured the
// budget accommodates the new size (allocData does).
func (d *Doppelganger) setPayload(de int32, payload *memdata.Block) {
	e := &d.data[de]
	if !d.cfg.CompressedData {
		e.data = *payload
		return
	}
	set := int(de) / d.cfg.DataWays
	d.setUsage[set] -= len(e.comp)
	c := bdi.Compress(payload)
	e.scheme = c.Scheme
	e.comp = c.Payload
	d.setUsage[set] += len(e.comp)
	d.Stats.CompressedBytes += uint64(len(e.comp))
	d.Stats.UncompressedBytes += memdata.BlockSize
}

// clearPayload releases entry de's storage accounting.
func (d *Doppelganger) clearPayload(de int32) {
	if !d.cfg.CompressedData {
		return
	}
	e := &d.data[de]
	set := int(de) / d.cfg.DataWays
	d.setUsage[set] -= len(e.comp)
	e.comp = nil
	e.scheme = bdi.Uncompressed
}

// ensureBudget evicts valid entries from key's set (per the data
// replacement policy) until `need` bytes fit within the set budget,
// skipping entry `keep` (or pass -1). Used before growing an entry or
// installing a new one.
func (d *Doppelganger) ensureBudget(key uint32, need int, keep int32, eff *Effects) {
	if !d.cfg.CompressedData {
		return
	}
	set := int(d.dataSetOf(key))
	budget := d.compressedSetBudget()
	for d.setUsage[set]+need > budget {
		victim := d.budgetVictim(set, keep)
		if victim < 0 {
			panic("core: compressed set budget too small for a single block")
		}
		d.evictData(victim, eff)
	}
}

// budgetVictim picks a valid entry in the set to evict (policy-aware),
// skipping `keep`.
func (d *Doppelganger) budgetVictim(set int, keep int32) int32 {
	base := set * d.cfg.DataWays
	victim := int32(-1)
	for w := 0; w < d.cfg.DataWays; w++ {
		idx := int32(base + w)
		e := &d.data[idx]
		if !e.valid || idx == keep {
			continue
		}
		if victim < 0 {
			victim = idx
			continue
		}
		v := &d.data[victim]
		switch d.cfg.DataPolicy {
		case ReplaceTagCountAware:
			if e.count < v.count || (e.count == v.count && e.lru < v.lru) {
				victim = idx
			}
		default:
			if e.lru < v.lru {
				victim = idx
			}
		}
	}
	return victim
}

// CompressionRatio reports the achieved compression over all stored
// payloads (1.0 = incompressible; higher is better). Zero if the array is
// uncompressed or nothing was stored yet.
func (d *Doppelganger) CompressionRatio() float64 {
	if d.Stats.CompressedBytes == 0 {
		return 0
	}
	return float64(d.Stats.UncompressedBytes) / float64(d.Stats.CompressedBytes)
}
