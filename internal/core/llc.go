// Package core implements the paper's primary contribution: the
// Doppelgänger cache (§3) — a last-level cache with decoupled tag and
// approximate data arrays in which the tags of approximately similar blocks
// (blocks hashing to the same map value) share a single data array entry —
// and its unified variant uniDoppelgänger (§3.8). The package also provides
// the conventional baseline LLC and the split precise+Doppelgänger LLC
// organization used in the evaluation, all behind one LLC interface so the
// functional and timing simulators can drive any organization.
package core

import (
	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

// Eviction describes one block whose LLC tag was invalidated. Because the
// LLC is inclusive, the hierarchy must back-invalidate any private-cache
// copies of the address (§3.5).
type Eviction struct {
	Addr  memdata.Addr
	Dirty bool // a writeback to memory was generated for this tag
}

// Effects reports everything an LLC operation did besides returning data:
// evictions the hierarchy must propagate, and per-structure event counts the
// timing simulator turns into cycles and the energy model into picojoules.
type Effects struct {
	Hit bool

	// Evicted lists LLC tags invalidated by this operation (capacity
	// victims, and the whole tag list when a Doppelgänger data block is
	// replaced).
	Evicted []Eviction

	// Structure access counts. "P" prefixes the precise/baseline side,
	// "D" the Doppelgänger tag array, "MTag"/"DData" the approximate data
	// array halves.
	PTagReads, PTagWrites   int
	PDataReads, PDataWrites int
	DTagReads, DTagWrites   int
	MTagReads, MTagWrites   int
	DDataReads, DDataWrites int

	// MapGens counts map generations (average+range hash plus mapping,
	// charged at 168 pJ each per §5.6).
	MapGens int

	// Off-chip traffic.
	MemReads, MemWrites int
}

// Add accumulates o into e; the simulators use it to aggregate per-access
// effects into run totals for the energy model.
func (e *Effects) Add(o *Effects) { e.add(o) }

// reset clears e for reuse as an organization's scratch effects, keeping the
// Evicted backing array so steady-state operations allocate nothing.
func (e *Effects) reset() {
	ev := e.Evicted[:0]
	*e = Effects{Evicted: ev}
}

// add accumulates o into e (used by the split organization to merge the
// effects of routing plus the chosen side).
func (e *Effects) add(o *Effects) {
	e.Evicted = append(e.Evicted, o.Evicted...)
	e.PTagReads += o.PTagReads
	e.PTagWrites += o.PTagWrites
	e.PDataReads += o.PDataReads
	e.PDataWrites += o.PDataWrites
	e.DTagReads += o.DTagReads
	e.DTagWrites += o.DTagWrites
	e.MTagReads += o.MTagReads
	e.MTagWrites += o.MTagWrites
	e.DDataReads += o.DDataReads
	e.DDataWrites += o.DDataWrites
	e.MapGens += o.MapGens
	e.MemReads += o.MemReads
	e.MemWrites += o.MemWrites
}

// SnapshotBlock is one resident LLC block as seen by the storage-savings
// analyzers (§2, §5.1): its address, current payload, and the annotation
// region it belongs to (nil for precise blocks).
type SnapshotBlock struct {
	Addr   memdata.Addr
	Data   memdata.Block
	Region *approx.Region
}

// LLC is the last-level cache seen by the hierarchy: the baseline 2 MB
// cache, the split precise+Doppelgänger organization, or uniDoppelgänger.
//
// All organizations fetch from and write back to the backing store they
// were constructed with. Reads return the block payload forwarded to L2 —
// on a Doppelgänger hit this is the representative (approximate) data.
//
// The *Effects returned by Read, WriteBack, and EvictFor is owned by the
// organization and valid only until the next operation on it: callers must
// consume (or copy, e.g. via Add) the effects before issuing another
// operation. The hierarchy's absorb path honors this.
type LLC interface {
	// Read services an L2 read miss for addr's block.
	Read(addr memdata.Addr) (memdata.Block, *Effects)

	// WriteBack accepts a dirty block evicted from (or written back by) a
	// private L2.
	WriteBack(addr memdata.Addr, data *memdata.Block) *Effects

	// EvictFor invalidates addr's block from the LLC if present (used by
	// tests and by flush paths); evictions are reported like any other.
	EvictFor(addr memdata.Addr) *Effects

	// Contains reports whether addr's block currently has a valid LLC tag
	// (the inclusivity invariant checked by the hierarchy).
	Contains(addr memdata.Addr) bool

	// Snapshot returns all resident blocks for the §5.1 analyses. For
	// Doppelgänger organizations each tag contributes one block whose
	// payload is its representative data entry.
	Snapshot() []SnapshotBlock

	// TagEntries and DataBlocks describe occupancy: total valid tags and
	// valid data entries (equal for conventional caches).
	TagEntries() int
	DataBlocks() int
}
