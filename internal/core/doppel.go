package core

import (
	"fmt"
	"math/bits"

	"doppelganger/internal/approx"
	"doppelganger/internal/bdi"
	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
	"doppelganger/internal/quality"
)

// DataReplacement selects the approximate data array's replacement policy.
// The paper uses LRU in both arrays and explicitly leaves tag-count-aware
// policies as future work (§3.5); TagCountAware implements that extension:
// it preferentially evicts entries serving the fewest tags (tie-broken by
// LRU), since evicting a heavily shared entry invalidates its whole tag
// list and triggers a burst of back-invalidations.
type DataReplacement uint8

// The implemented data-array replacement policies.
const (
	ReplaceLRU DataReplacement = iota
	ReplaceTagCountAware
)

// String names the policy.
func (p DataReplacement) String() string {
	switch p {
	case ReplaceLRU:
		return "lru"
	case ReplaceTagCountAware:
		return "tag-count-aware"
	}
	return fmt.Sprintf("DataReplacement(%d)", uint8(p))
}

// Config describes a Doppelgänger cache instance (§3.1, Table 1). The tag
// array has TagEntries entries of TagWays associativity; the decoupled
// approximate data array has DataEntries block frames of DataWays
// associativity, indexed by map values rather than addresses. Unified
// selects the uniDoppelgänger variant (§3.8) in which precise blocks share
// the same arrays, using their physical block address as the map.
type Config struct {
	Name        string
	TagEntries  int
	TagWays     int
	DataEntries int
	DataWays    int
	MapSpec     approx.MapSpec
	Unified     bool
	// DataPolicy selects the data array replacement policy; the zero value
	// is the paper's LRU.
	DataPolicy DataReplacement
	// CompressedData stores BΔI-compressed payloads in the data array (the
	// paper's §5.1 Doppelgänger+BΔI combination); each data set then has a
	// byte budget of CompressBudget × DataWays × 64.
	CompressedData bool
	// CompressBudget is that budget as a fraction of the uncompressed set
	// capacity (0 means 0.5).
	CompressBudget float64
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.TagEntries <= 0 || c.TagWays <= 0 || c.DataEntries <= 0 || c.DataWays <= 0 {
		return fmt.Errorf("core: %q has non-positive geometry", c.Name)
	}
	if c.TagEntries%c.TagWays != 0 || c.DataEntries%c.DataWays != 0 {
		return fmt.Errorf("core: %q entries not divisible by ways", c.Name)
	}
	// Tag sets must be a power of two (address-indexed); the map-indexed
	// data array may have any set count (e.g. the 3/4-capacity
	// uniDoppelgänger configuration) since maps index by modulo.
	if ts := c.TagEntries / c.TagWays; ts&(ts-1) != 0 {
		return fmt.Errorf("core: %q tag set count %d must be a power of two", c.Name, ts)
	}
	if c.MapSpec.M <= 0 || c.MapSpec.M > 32 {
		return fmt.Errorf("core: %q map space M=%d out of range", c.Name, c.MapSpec.M)
	}
	if c.CompressedData {
		frac := c.CompressBudget
		if frac == 0 {
			frac = 0.5
		}
		if frac <= 0 || frac > 1 {
			return fmt.Errorf("core: %q compress budget %v out of (0,1]", c.Name, c.CompressBudget)
		}
		if int(frac*float64(c.DataWays*memdata.BlockSize)) < memdata.BlockSize {
			return fmt.Errorf("core: %q compressed set budget below one block", c.Name)
		}
	}
	return nil
}

// Stats counts Doppelgänger events; the paper's §3.5/§5 discussion quotes
// several of these (average tags per evicted data entry, fraction of dirty
// evictions).
type Stats struct {
	Reads    uint64
	ReadHits uint64

	WriteBacks      uint64 // writebacks arriving from L2
	SilentWrites    uint64 // map unchanged: dirty bit only (§3.4)
	Remaps          uint64 // map changed onto an existing data entry
	WriteAllocs     uint64 // map changed, new data entry allocated
	WritebackMisses uint64 // writeback found no tag (inclusivity corner)

	Inserts       uint64 // blocks inserted after a miss
	ReuseLinks    uint64 // insert found a similar block and linked to it
	NewDataBlocks uint64 // insert allocated a fresh data entry

	TagEvictions       uint64
	DirtyTagEvictions  uint64
	DataEvictions      uint64 // capacity evictions of data entries
	TagsAtDataEviction uint64 // sum of tag-list lengths when data evicted
	MapGens            uint64

	// QualityBypasses counts approximate operations served precisely because
	// the quality guard's breaker was open (graceful degradation).
	QualityBypasses uint64

	// Compression accounting (CompressedData mode).
	CompressedBytes   uint64
	UncompressedBytes uint64
}

const nilTag = int32(-1)

// tagEntry is one entry of the decoupled tag array (Fig. 4): address tag,
// line state, prev/next tag pointers forming the doubly-linked list of tags
// sharing a data entry, and the map value indexing the data array.
type tagEntry struct {
	valid   bool
	dirty   bool
	precise bool // uniDoppelgänger only
	tag     uint32
	addr    memdata.Addr
	mapv    uint32 // map value (approx) — precise tags use addr-derived keys
	region  *approx.Region
	prev    int32
	next    int32
	lru     uint64
}

// dataEntry is one entry of the approximate data array plus its MTag-array
// metadata (Fig. 4): the map tag (kept here as the full key), a pointer to
// the head of the tag list, and the data block itself.
type dataEntry struct {
	valid   bool
	precise bool
	key     uint32 // full map value, or block number for precise entries
	head    int32
	count   int32 // tags currently linked (simulation bookkeeping)
	data    memdata.Block
	lru     uint64

	// Compressed-mode storage (CompressedData): the payload lives here
	// instead of data.
	comp   []byte
	scheme bdi.Scheme
}

// Doppelganger is the functional model of the Doppelgänger cache. It
// fetches from and writes back to the backing store it is constructed with.
type Doppelganger struct {
	cfg        Config
	tagSetBits uint
	tags       []tagEntry
	data       []dataEntry
	setUsage   []int // per-set byte usage (CompressedData mode)
	store      *memdata.Store
	ann        *approx.Annotations
	tick       uint64
	Stats      Stats
	m          coreMetrics
	inj        *faults.Injector
	qc         *quality.Controller
	eff        Effects // scratch, returned by operations (valid until the next op)
}

// New builds a Doppelgänger cache. ann must cover every approximate address
// the cache will see; for the non-unified variant every access must be to an
// annotated address (the split organization guarantees this by routing).
func New(cfg Config, store *memdata.Store, ann *approx.Annotations) (*Doppelganger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CompressedData && cfg.CompressBudget == 0 {
		cfg.CompressBudget = 0.5
	}
	d := &Doppelganger{
		cfg:        cfg,
		tagSetBits: uint(bits.TrailingZeros32(uint32(cfg.TagEntries / cfg.TagWays))),
		tags:       make([]tagEntry, cfg.TagEntries),
		data:       make([]dataEntry, cfg.DataEntries),
		store:      store,
		ann:        ann,
	}
	if cfg.CompressedData {
		d.setUsage = make([]int, cfg.DataEntries/cfg.DataWays)
	}
	return d, nil
}

// MustNew is New but panics on error (static configurations).
func MustNew(cfg Config, store *memdata.Store, ann *approx.Annotations) *Doppelganger {
	d, err := New(cfg, store, ann)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the cache geometry.
func (d *Doppelganger) Config() Config { return d.cfg }

func (d *Doppelganger) touch() uint64 {
	d.tick++
	return d.tick
}

// --- tag array geometry ---

func (d *Doppelganger) tagSetOf(addr memdata.Addr) uint32 {
	return (uint32(addr) >> memdata.OffsetBits) & (uint32(len(d.tags)/d.cfg.TagWays) - 1)
}

func (d *Doppelganger) tagTagOf(addr memdata.Addr) uint32 {
	return uint32(addr) >> (memdata.OffsetBits + d.tagSetBits)
}

// probeTag returns the tag entry index holding addr, or nilTag.
func (d *Doppelganger) probeTag(addr memdata.Addr) int32 {
	base := int(d.tagSetOf(addr)) * d.cfg.TagWays
	tag := d.tagTagOf(addr)
	for w := 0; w < d.cfg.TagWays; w++ {
		t := &d.tags[base+w]
		if t.valid && t.tag == tag {
			return int32(base + w)
		}
	}
	return nilTag
}

// victimTag selects a fill victim in addr's tag set: invalid first, else LRU.
func (d *Doppelganger) victimTag(addr memdata.Addr) int32 {
	base := int(d.tagSetOf(addr)) * d.cfg.TagWays
	victim := int32(base)
	for w := 0; w < d.cfg.TagWays; w++ {
		t := &d.tags[base+w]
		if !t.valid {
			return int32(base + w)
		}
		if t.lru < d.tags[victim].lru {
			victim = int32(base + w)
		}
	}
	return victim
}

// --- data array geometry ---

// dataSetOf spreads a map key over the data array's sets. The paper indexes
// by the low map bits directly (§3.2); because real map values concentrate
// (e.g. pixel averages cluster around an image's dominant intensities, the
// §3.7 set-conflict discussion), we XOR-fold the upper key bits into the
// index — standard set-index hashing that only changes placement, never
// which keys match.
func (d *Doppelganger) dataSetOf(key uint32) uint32 {
	sets := uint32(len(d.data) / d.cfg.DataWays)
	folded := key
	for _, shift := range []uint{7, 13, 21} {
		folded ^= key >> shift
	}
	if sets&(sets-1) == 0 {
		return folded & (sets - 1)
	}
	return folded % sets
}

// probeData returns the data entry index for (key, precise), or -1. The low
// bits of the key index the MTag array and the rest is compared against the
// map tags of all ways in parallel (§3.2, step 2).
func (d *Doppelganger) probeData(key uint32, precise bool) int32 {
	base := int(d.dataSetOf(key)) * d.cfg.DataWays
	for w := 0; w < d.cfg.DataWays; w++ {
		e := &d.data[base+w]
		if e.valid && e.precise == precise && e.key == key {
			return int32(base + w)
		}
	}
	return -1
}

// victimData selects a fill victim in key's data set: invalid first, then
// per the configured policy — plain LRU (the paper's choice), or the
// tag-count-aware extension that spares heavily shared entries.
func (d *Doppelganger) victimData(key uint32) int32 {
	base := int(d.dataSetOf(key)) * d.cfg.DataWays
	victim := int32(base)
	for w := 0; w < d.cfg.DataWays; w++ {
		e := &d.data[base+w]
		if !e.valid {
			return int32(base + w)
		}
		v := &d.data[victim]
		switch d.cfg.DataPolicy {
		case ReplaceTagCountAware:
			if e.count < v.count || (e.count == v.count && e.lru < v.lru) {
				victim = int32(base + w)
			}
		default:
			if e.lru < v.lru {
				victim = int32(base + w)
			}
		}
	}
	return victim
}

// dataOf returns the data entry index a valid tag points to. The invariant
// that every valid tag has a backing data entry makes this a guaranteed hit
// ("One of the tags is guaranteed to match", §3.2).
func (d *Doppelganger) dataOf(t int32) int32 {
	te := &d.tags[t]
	de := d.probeData(te.mapv, te.precise)
	if de < 0 {
		panic(fmt.Sprintf("core: tag %d (%v) has no data entry for key %#x", t, te.addr, te.mapv))
	}
	return de
}

// --- linked-list maintenance (Fig. 5) ---

// linkHead inserts tag t at the head of data entry de's tag list.
func (d *Doppelganger) linkHead(de, t int32) {
	e := &d.data[de]
	te := &d.tags[t]
	te.prev = nilTag
	te.next = e.head
	if e.head != nilTag {
		d.tags[e.head].prev = t
	}
	e.head = t
	e.count++
}

// unlink removes tag t from its data entry's list. If t was the sole member
// the data entry is freed and true is returned (§3.5: "If a tag is evicted,
// the data is also evicted if there is only one tag associated").
func (d *Doppelganger) unlink(t int32) (freedData bool) {
	de := d.dataOf(t)
	e := &d.data[de]
	te := &d.tags[t]
	if te.prev == nilTag && te.next == nilTag {
		// Sole member: release the data entry.
		d.clearPayload(de)
		e.valid = false
		e.head = nilTag
		e.count = 0
		d.m.dataOccupied.Add(-1)
		return true
	}
	if te.prev != nilTag {
		d.tags[te.prev].next = te.next
	} else {
		e.head = te.next
	}
	if te.next != nilTag {
		d.tags[te.next].prev = te.prev
	}
	te.prev, te.next = nilTag, nilTag
	e.count--
	return false
}

// --- operations ---

// Read implements the lookup flow of §3.2 plus the insertion flow of §3.3
// on a miss. The returned payload is what gets forwarded to L2: the
// representative data on a hit, the freshly fetched memory data on a miss
// (the paper forwards memory data to L2 immediately; map generation and
// linking happen off the critical path).
func (d *Doppelganger) Read(addr memdata.Addr) (memdata.Block, *Effects) {
	d.Stats.Reads++
	d.m.reads.Inc()
	eff := &d.eff
	eff.reset()
	eff.DTagReads = 1
	if t := d.probeTag(addr); t != nilTag {
		d.Stats.ReadHits++
		d.m.readHits.Inc()
		eff.Hit = true
		de := d.dataOf(t)
		eff.MTagReads, eff.DDataReads = 1, 1
		d.tags[t].lru = d.touch()
		d.data[de].lru = d.tick
		if d.inj != nil {
			d.injectHit(t, de)
		}
		if te := &d.tags[t]; !te.precise && !te.dirty && d.qc.Sample() {
			// Load canary: the representative being served is compared
			// against the precise store copy. Dirty tags are skipped — their
			// store copy predates the writeback, so the comparison would
			// measure staleness, not approximation. The payload copy stays
			// inside this branch so the guard-off hit path keeps zero allocs.
			payload := d.payloadOf(de)
			d.qc.Observe(te.region, &payload, d.store.Block(addr))
			return payload, eff
		}
		return d.payloadOf(de), eff
	}
	data := *d.store.Block(addr)
	if d.inj != nil {
		d.inj.CorruptBlock(faults.DRAM, &data)
	}
	eff.MemReads = 1
	d.insert(addr, &data, false, eff)
	return data, eff
}

// insert allocates a tag for addr and links it to a data entry holding
// (approximately) its payload, per §3.3.
func (d *Doppelganger) insert(addr memdata.Addr, payload *memdata.Block, dirty bool, eff *Effects) {
	d.Stats.Inserts++
	d.m.inserts.Inc()
	region := d.ann.Lookup(addr)
	if region == nil && !d.cfg.Unified {
		panic(fmt.Sprintf("core: precise address %v routed to non-unified Doppelgänger", addr))
	}

	// Allocate the tag entry first so a victim eviction cannot race with the
	// data entry we are about to link.
	t := d.victimTag(addr)
	if d.tags[t].valid {
		d.evictTag(t, eff)
	}
	eff.DTagWrites++

	var key uint32
	precise := region == nil
	if !precise && !d.qc.Allow() {
		// The quality breaker is open: degrade gracefully by caching the
		// block precisely under its address-derived key, bypassing map
		// generation (and therefore all approximate sharing) entirely.
		precise = true
		d.Stats.QualityBypasses++
		d.m.qualityBypasses.Inc()
	}
	if precise {
		key = uint32(addr.BlockAddr()) >> memdata.OffsetBits
	} else {
		key = d.cfg.MapSpec.MapValue(payload, region)
		if d.inj != nil {
			key = d.inj.CorruptBits(faults.MapGen, key, d.cfg.MapSpec.M)
		}
		d.Stats.MapGens++
		d.m.mapGens.Inc()
		eff.MapGens++
	}

	de := d.probeData(key, precise)
	eff.MTagReads++
	if de >= 0 && !precise {
		// A similar block already resides in the data array: reuse it and
		// discard the incoming payload (§3.3 "Similar Data Block Exists").
		d.Stats.ReuseLinks++
		d.m.reuseLinks.Inc()
		d.m.approxSubs.Inc()
		eff.MTagWrites++ // head-pointer update
		if d.qc.Sample() {
			// Substitution canary: the resident representative replaces the
			// incoming payload, and both are in hand right here.
			rep := d.payloadOf(de)
			d.qc.Observe(region, &rep, payload)
		}
	} else {
		if de >= 0 {
			// A precise data entry for this address should never survive its
			// tag; treat as stale and replace.
			d.freeData(de, eff)
		}
		de = d.allocData(key, precise, payload, eff)
		d.Stats.NewDataBlocks++
		d.m.newDataBlocks.Inc()
	}

	d.tags[t] = tagEntry{
		valid:   true,
		dirty:   dirty,
		precise: precise,
		tag:     d.tagTagOf(addr),
		addr:    addr.BlockAddr(),
		mapv:    key,
		region:  region,
		prev:    nilTag,
		next:    nilTag,
		lru:     d.touch(),
	}
	d.m.tagsOccupied.Add(1)
	d.linkHead(de, t)
	d.data[de].lru = d.tick
}

// allocData finds a victim frame for key, evicting its current occupant
// (and that occupant's entire tag list, §3.5), then installs payload.
func (d *Doppelganger) allocData(key uint32, precise bool, payload *memdata.Block, eff *Effects) int32 {
	de := d.victimData(key)
	if d.data[de].valid {
		d.evictData(de, eff)
	}
	if d.cfg.CompressedData {
		d.ensureBudget(key, bdi.CompressedSize(payload), -1, eff)
	}
	d.data[de] = dataEntry{
		valid:   true,
		precise: precise,
		key:     key,
		head:    nilTag,
		lru:     d.touch(),
	}
	d.setPayload(de, payload)
	d.m.dataOccupied.Add(1)
	eff.MTagWrites++
	eff.DDataWrites++
	return de
}

// evictData evicts a data entry for capacity: every tag in its list is
// invalidated, dirty tags queue writebacks of the representative data to
// their own addresses, and the hierarchy is told to back-invalidate each
// (§3.5).
func (d *Doppelganger) evictData(de int32, eff *Effects) {
	e := &d.data[de]
	d.Stats.DataEvictions++
	d.m.dataEvictions.Inc()
	d.Stats.TagsAtDataEviction += uint64(e.count)
	rep := d.payloadOf(de)
	for t := e.head; t != nilTag; {
		te := &d.tags[t]
		next := te.next
		if te.dirty {
			d.store.WriteBlock(te.addr, &rep)
			eff.MemWrites++
			d.Stats.DirtyTagEvictions++
			d.m.dirtyTagEvictions.Inc()
		}
		eff.Evicted = append(eff.Evicted, Eviction{Addr: te.addr, Dirty: te.dirty})
		d.Stats.TagEvictions++
		d.m.tagEvictions.Inc()
		d.m.tagsOccupied.Add(-1)
		*te = tagEntry{prev: nilTag, next: nilTag}
		t = next
	}
	d.freeData(de, eff)
}

func (d *Doppelganger) freeData(de int32, eff *Effects) {
	d.clearPayload(de)
	d.data[de] = dataEntry{head: nilTag}
	d.m.dataOccupied.Add(-1)
	eff.MTagWrites++
}

// evictTag evicts a single tag (capacity victim or explicit invalidation):
// it is unlinked (freeing the data entry if it was the sole member), a
// writeback of the representative data is generated if dirty, and the
// hierarchy back-invalidates the address.
func (d *Doppelganger) evictTag(t int32, eff *Effects) {
	te := &d.tags[t]
	de := d.dataOf(t)
	if te.dirty {
		rep := d.payloadOf(de)
		d.store.WriteBlock(te.addr, &rep)
		eff.MemWrites++
		d.Stats.DirtyTagEvictions++
		d.m.dirtyTagEvictions.Inc()
	}
	eff.Evicted = append(eff.Evicted, Eviction{Addr: te.addr, Dirty: te.dirty})
	d.Stats.TagEvictions++
	d.m.tagEvictions.Inc()
	d.m.tagsOccupied.Add(-1)
	d.unlink(t)
	eff.MTagWrites++
	*te = tagEntry{prev: nilTag, next: nilTag}
}

// WriteBack implements §3.4: a dirty block arrives from L2 and the map is
// recomputed. If the map is unchanged only the dirty bit is set; if it
// changed, the tag migrates to the data entry of the new map, allocating
// one if necessary. When the tag lands on an existing entry the written
// values are discarded — the write made the block similar to data already
// in the cache.
func (d *Doppelganger) WriteBack(addr memdata.Addr, payload *memdata.Block) *Effects {
	d.Stats.WriteBacks++
	d.m.writeBacks.Inc()
	eff := &d.eff
	eff.reset()
	eff.DTagReads = 1
	t := d.probeTag(addr)
	if t == nilTag {
		// Inclusivity corner: tag already evicted. Insert fresh as dirty.
		d.Stats.WritebackMisses++
		d.m.writebackMisses.Inc()
		d.insert(addr, payload, true, eff)
		return eff
	}
	eff.Hit = true
	te := &d.tags[t]
	te.lru = d.touch()

	if te.precise {
		de := d.dataOf(t)
		if d.cfg.CompressedData {
			delta := bdi.CompressedSize(payload) - len(d.data[de].comp)
			d.ensureBudget(te.mapv, delta, de, eff)
		}
		d.setPayload(de, payload)
		d.data[de].lru = d.tick
		te.dirty = true
		eff.MTagReads, eff.DDataWrites = 1, 1
		return eff
	}

	if !d.qc.Allow() {
		// The quality breaker is open: instead of regenerating a map value,
		// migrate the tag to a precise entry holding the written payload.
		d.migratePrecise(t, payload, eff)
		return eff
	}

	newMap := d.cfg.MapSpec.MapValue(payload, te.region)
	if d.inj != nil {
		newMap = d.inj.CorruptBits(faults.MapGen, newMap, d.cfg.MapSpec.M)
	}
	d.Stats.MapGens++
	d.m.mapGens.Inc()
	eff.MapGens++
	if newMap == te.mapv {
		d.Stats.SilentWrites++
		d.m.silentWrites.Inc()
		te.dirty = true
		if d.qc.Sample() {
			// Silent-write canary: the written values are discarded in favor
			// of the resident representative (§3.4), a substitution.
			rep := d.payloadOf(d.dataOf(t))
			d.qc.Observe(te.region, &rep, payload)
		}
		return eff
	}

	// The map changed: migrate the tag. Unlink first so a victim search for
	// the new map can never collide with a stale self-link.
	d.unlink(t)
	eff.MTagWrites++
	de := d.probeData(newMap, false)
	eff.MTagReads++
	if de >= 0 {
		d.Stats.Remaps++
		d.m.remaps.Inc()
		d.m.approxSubs.Inc()
		eff.MTagWrites++
		if d.qc.Sample() {
			// Remap-onto-existing canary: the written payload lands on an
			// already-resident representative, another substitution point.
			rep := d.payloadOf(de)
			d.qc.Observe(te.region, &rep, payload)
		}
	} else {
		de = d.allocData(newMap, false, payload, eff)
		d.Stats.WriteAllocs++
		d.m.writeAllocs.Inc()
	}
	te.mapv = newMap
	te.dirty = true
	d.linkHead(de, t)
	d.data[de].lru = d.tick
	return eff
}

// EvictFor implements LLC: invalidate addr's tag if present.
func (d *Doppelganger) EvictFor(addr memdata.Addr) *Effects {
	eff := &d.eff
	eff.reset()
	eff.DTagReads = 1
	if t := d.probeTag(addr); t != nilTag {
		d.evictTag(t, eff)
	}
	return eff
}

// Contains implements LLC.
func (d *Doppelganger) Contains(addr memdata.Addr) bool { return d.probeTag(addr) != nilTag }

// Snapshot implements LLC: each valid tag contributes one block whose
// payload is its representative data entry — exactly what an upper-level
// cache would observe on a hit.
func (d *Doppelganger) Snapshot() []SnapshotBlock {
	var out []SnapshotBlock
	for t := range d.tags {
		te := &d.tags[t]
		if !te.valid {
			continue
		}
		de := d.dataOf(int32(t))
		out = append(out, SnapshotBlock{Addr: te.addr, Data: d.payloadOf(de), Region: te.region})
	}
	return out
}

// TagEntries implements LLC.
func (d *Doppelganger) TagEntries() int {
	n := 0
	for i := range d.tags {
		if d.tags[i].valid {
			n++
		}
	}
	return n
}

// DataBlocks implements LLC.
func (d *Doppelganger) DataBlocks() int {
	n := 0
	for i := range d.data {
		if d.data[i].valid {
			n++
		}
	}
	return n
}

// AvgTagsPerData returns the current mean tag-list length over valid data
// entries (the paper reports 4.4 on average, §3.5).
func (d *Doppelganger) AvgTagsPerData() float64 {
	tags, entries := 0, 0
	for i := range d.data {
		if d.data[i].valid {
			entries++
			tags += int(d.data[i].count)
		}
	}
	if entries == 0 {
		return 0
	}
	return float64(tags) / float64(entries)
}
