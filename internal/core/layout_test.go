package core

import (
	"testing"

	"doppelganger/internal/approx"
)

// paperDoppelCfg is the Table 1 base configuration: 16 K tags, 4 K data
// entries, 16-way, 14-bit map space.
func paperDoppelCfg() Config {
	return Config{
		Name:       "doppelganger",
		TagEntries: 16 << 10, TagWays: 16,
		DataEntries: 4 << 10, DataWays: 16,
		MapSpec: approx.MapSpec{M: 14},
	}
}

func paperUniCfg() Config {
	return Config{
		Name:       "unidoppelganger",
		TagEntries: 32 << 10, TagWays: 16,
		DataEntries: 16 << 10, DataWays: 16,
		MapSpec: approx.MapSpec{M: 14},
		Unified: true,
	}
}

// TestTable3Baseline reproduces the Baseline LLC column of Table 3.
func TestTable3Baseline(t *testing.T) {
	l := ConventionalLayout("baseline", 2<<20, 16, 4)
	if l.TagBits != 15 {
		t.Errorf("tag bits = %d, want 15", l.TagBits)
	}
	if l.MetaBits() != 27 {
		t.Errorf("tag entry bits = %d, want 27", l.MetaBits())
	}
	if l.Entries != 32<<10 {
		t.Errorf("entries = %d", l.Entries)
	}
	if kb := l.KBytes(); kb != 2156 {
		t.Errorf("total = %v KB, want 2156 (Table 3)", kb)
	}
}

// TestTable3Precise reproduces the Precise cache column.
func TestTable3Precise(t *testing.T) {
	l := ConventionalLayout("precise", 1<<20, 16, 4)
	if l.TagBits != 16 || l.MetaBits() != 28 {
		t.Errorf("tag/entry bits = %d/%d, want 16/28", l.TagBits, l.MetaBits())
	}
	if kb := l.KBytes(); kb != 1080 {
		t.Errorf("total = %v KB, want 1080", kb)
	}
}

// TestTable3DoppelTagArray reproduces the Doppelgänger tag array column:
// 16-bit tag, 4+4 coherence/vector, 4 replacement, 2×14-bit pointers and a
// 21-bit map = 77 bits; 154 KB total.
func TestTable3DoppelTagArray(t *testing.T) {
	l := paperDoppelCfg().TagArrayLayout(4)
	if l.TagBits != 16 {
		t.Errorf("tag bits = %d, want 16", l.TagBits)
	}
	if l.TagPtrBits != 14 || l.NumTagPtrs != 2 {
		t.Errorf("tag pointers = %d×%d, want 2×14", l.NumTagPtrs, l.TagPtrBits)
	}
	if l.MapBits != 21 {
		t.Errorf("map bits = %d, want 21", l.MapBits)
	}
	if l.MetaBits() != 77 {
		t.Errorf("entry bits = %d, want 77 (Table 3)", l.MetaBits())
	}
	if kb := l.KBytes(); kb != 154 {
		t.Errorf("total = %v KB, want 154", kb)
	}
}

// TestTable3DoppelDataArray checks the data array: a 14-bit tag pointer,
// 4 replacement bits, a derived MTag width, and the 512-bit block.
func TestTable3DoppelDataArray(t *testing.T) {
	l := paperDoppelCfg().DataArrayLayout()
	if l.TagPtrBits != 14 || l.NumTagPtrs != 1 {
		t.Errorf("tag pointer = %d×%d, want 1×14", l.NumTagPtrs, l.TagPtrBits)
	}
	if l.DataBits != 512 {
		t.Errorf("data bits = %d", l.DataBits)
	}
	// The MTag stores the full 21-bit map (the set index is an XOR-fold of
	// all of it); the paper lists 20 — see DESIGN.md §6.
	if l.TagBits != 21 {
		t.Errorf("mtag bits = %d, want 21", l.TagBits)
	}
	if l.Entries != 4096 {
		t.Errorf("entries = %d", l.Entries)
	}
}

// TestTable3UniDoppelTagArray: 15-bit tag, 2×15-bit pointers, 21-bit map,
// precise bit → 79 bits per entry, 316 KB.
func TestTable3UniDoppelTagArray(t *testing.T) {
	l := paperUniCfg().TagArrayLayout(4)
	if l.TagBits != 15 || l.TagPtrBits != 15 || l.PreciseBits != 1 {
		t.Errorf("tag/ptr/precise = %d/%d/%d", l.TagBits, l.TagPtrBits, l.PreciseBits)
	}
	if l.MetaBits() != 79 {
		t.Errorf("entry bits = %d, want 79 (Table 3)", l.MetaBits())
	}
	if kb := l.KBytes(); kb != 316 {
		t.Errorf("total = %v KB, want 316", kb)
	}
}

// TestUniDataArrayDisambiguatesPrecise: the unified data array tag must be
// wide enough for 26-bit precise block numbers.
func TestUniDataArrayDisambiguatesPrecise(t *testing.T) {
	l := paperUniCfg().DataArrayLayout()
	if l.TagBits < 16 { // 26 − 10 set bits
		t.Errorf("mtag bits = %d, too narrow for precise keys", l.TagBits)
	}
	if l.PreciseBits != 1 {
		t.Error("missing precise bit")
	}
}

// TestNonPow2DataLayout: the 3/4 uniDoppelgänger data array (24 K entries,
// 1536 sets) must produce a sane layout.
func TestNonPow2DataLayout(t *testing.T) {
	c := paperUniCfg()
	c.DataEntries = 24 << 10
	l := c.DataArrayLayout()
	if l.Entries != 24<<10 {
		t.Errorf("entries = %d", l.Entries)
	}
	if l.TagBits <= 0 {
		t.Errorf("tag bits = %d", l.TagBits)
	}
}

// TestStorageReduction verifies the §5.6 claim that the split organization
// reduces total LLC storage by about 1.43× versus the baseline.
func TestStorageReduction(t *testing.T) {
	base := ConventionalLayout("baseline", 2<<20, 16, 4).KBytes()
	precise := ConventionalLayout("precise", 1<<20, 16, 4).KBytes()
	dc := paperDoppelCfg()
	dopp := dc.TagArrayLayout(4).KBytes() + dc.DataArrayLayout().KBytes()
	red := base / (precise + dopp)
	if red < 1.35 || red > 1.50 {
		t.Errorf("storage reduction = %.2fx, paper reports 1.43x", red)
	}
}
