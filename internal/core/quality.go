package core

import (
	"doppelganger/internal/memdata"
	"doppelganger/internal/quality"
)

// This file wires the online quality guard through the approximate LLC
// organizations, mirroring the AttachFaults plumbing in faults.go: the
// Doppelgänger cache carries a controller pointer unconditionally, and a nil
// controller is the zero-cost disabled path.
//
// The guard touches the cache at two kinds of points:
//
//   - Substitution sites (insert reuse-link, silent write, remap onto an
//     existing entry) and clean read hits sample canaries: the precise
//     payload and the representative that replaces it are both in hand, so
//     the comparison costs no extra memory traffic beyond what the sampled
//     fraction pays by design.
//   - Approximation decisions (insert map generation, writeback map
//     regeneration) consult the breaker: while it is open, blocks are cached
//     precisely under address-derived keys — the same mechanism
//     uniDoppelgänger uses for precise data — so the hierarchy degrades to
//     conventional LLC behaviour without invalidating anything already
//     resident.

// AttachQuality wires the quality controller into the Doppelgänger cache.
// A nil controller disables the guard.
func (d *Doppelganger) AttachQuality(qc *quality.Controller) {
	d.qc = qc
}

// AttachQuality wires the controller into the split organization's
// Doppelgänger half (the precise half never approximates).
func (s *Split) AttachQuality(qc *quality.Controller) {
	s.Doppel.AttachQuality(qc)
}

// migratePrecise converts tag t from an approximate mapping into a precise
// entry holding payload, the writeback half of graceful degradation: the tag
// leaves its shared data entry (freeing it if it was the sole member) and
// gets a private entry under its address-derived key, exactly as a precise
// uniDoppelgänger block would.
func (d *Doppelganger) migratePrecise(t int32, payload *memdata.Block, eff *Effects) {
	d.Stats.QualityBypasses++
	d.m.qualityBypasses.Inc()
	te := &d.tags[t]
	d.unlink(t)
	eff.MTagWrites++
	key := uint32(te.addr.BlockAddr()) >> memdata.OffsetBits
	de := d.probeData(key, true)
	eff.MTagReads++
	if de >= 0 {
		// A stale precise entry for this address must not survive alongside
		// the migrated tag.
		d.freeData(de, eff)
	}
	de = d.allocData(key, true, payload, eff)
	te.precise = true
	te.mapv = key
	te.dirty = true
	d.linkHead(de, t)
	d.data[de].lru = d.tick
}
