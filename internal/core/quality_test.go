package core

import (
	"math/rand"
	"testing"

	"doppelganger/internal/memdata"
	"doppelganger/internal/quality"
)

// uniformBlock builds a block with every F32 element set to v.
func uniformBlock(v float64) *memdata.Block {
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, v)
	}
	return b
}

// TestBreakerOpenReadsBypassMapTable: with the breaker open, approximate
// read misses must insert under precise address-derived keys — no map
// generations, no similarity sharing, exact data served.
func TestBreakerOpenReadsBypassMapTable(t *testing.T) {
	d, st, r := testSetup(t, smallCfg(), 1<<16)
	qc := quality.MustNew(quality.Config{Budget: 0.01, CanaryRate: 0, Cooldown: 1 << 30})
	d.AttachQuality(qc)
	qc.Observe(r, uniformBlock(100), uniformBlock(0)) // error 1 >> budget: trips
	if qc.State() != quality.Open {
		t.Fatalf("state %v after overrun, want open", qc.State())
	}

	gens := d.Stats.MapGens
	// Two similar blocks that would normally share one data entry.
	fillUniform(st, addrN(0), 42)
	fillUniform(st, addrN(1), 42.0001)
	d.Read(addrN(0))
	d.Read(addrN(1))
	check(t, d)
	if d.Stats.MapGens != gens {
		t.Errorf("map generations advanced while open: %d -> %d", gens, d.Stats.MapGens)
	}
	if d.Stats.ReuseLinks != 0 || d.DataBlocks() != 2 {
		t.Errorf("similar blocks shared under open breaker: %d links, %d data blocks",
			d.Stats.ReuseLinks, d.DataBlocks())
	}
	if d.Stats.QualityBypasses != 2 {
		t.Errorf("quality bypasses = %d, want 2", d.Stats.QualityBypasses)
	}
	// Re-reads hit and return the exact memory values, not a representative.
	data, eff := d.Read(addrN(1))
	if !eff.Hit {
		t.Fatal("precise entry missed on re-read")
	}
	if got := data.Elem(memdata.F32, 0); got != float64(float32(42.0001)) {
		t.Errorf("read %v, want the exact value", got)
	}
}

// TestBreakerOpenWriteBackMigratesPrecise: a writeback to an existing
// approximate tag while the breaker is open must migrate the tag to a
// precise entry holding the written data verbatim.
func TestBreakerOpenWriteBackMigratesPrecise(t *testing.T) {
	d, st, r := testSetup(t, smallCfg(), 1<<16)
	qc := quality.MustNew(quality.Config{Budget: 0.01, CanaryRate: 0, Cooldown: 1 << 30})
	d.AttachQuality(qc)

	fillUniform(st, addrN(0), 42)
	d.Read(addrN(0)) // approximate entry while still closed
	qc.Observe(r, uniformBlock(100), uniformBlock(0))
	if qc.State() != quality.Open {
		t.Fatal("breaker did not trip")
	}

	d.WriteBack(addrN(0), uniformBlock(43.5))
	check(t, d)
	if d.Stats.QualityBypasses == 0 {
		t.Error("writeback under open breaker not counted as bypass")
	}
	data, eff := d.Read(addrN(0))
	if !eff.Hit {
		t.Fatal("migrated entry missed")
	}
	if got := data.Elem(memdata.F32, 7); got != 43.5 {
		t.Errorf("read %v after precise migration, want the written 43.5", got)
	}
}

// TestGuardObservationOnly: a guard that cannot trip (huge budget) must be
// invisible — canary sampling only observes, so the cache's behaviour is
// bit-identical to a run with no guard at all.
func TestGuardObservationOnly(t *testing.T) {
	run := func(qc *quality.Controller) *Doppelganger {
		d, _, _ := testSetup(t, smallCfg(), 1<<20)
		d.AttachQuality(qc)
		rng := rand.New(rand.NewSource(11))
		for op := 0; op < 1500; op++ {
			addr := addrN(rng.Intn(256))
			switch rng.Intn(4) {
			case 0, 1:
				fillUniform(d.store, addr, float64(rng.Intn(20)*5))
				d.Read(addr)
			case 2:
				d.WriteBack(addr, uniformBlock(100*rng.Float64()))
			case 3:
				d.EvictFor(addr)
			}
		}
		return d
	}
	plain := run(nil)
	guarded := run(quality.MustNew(quality.Config{Seed: 3, Budget: 10, CanaryRate: 1}))
	if plain.Stats != guarded.Stats {
		t.Errorf("guarded run diverged:\nplain   %+v\nguarded %+v", plain.Stats, guarded.Stats)
	}
	if plain.TagEntries() != guarded.TagEntries() || plain.DataBlocks() != guarded.DataBlocks() {
		t.Errorf("occupancy diverged: %d/%d vs %d/%d",
			plain.TagEntries(), plain.DataBlocks(), guarded.TagEntries(), guarded.DataBlocks())
	}
}

// TestReadHitZeroAllocsNilGuard locks down the nil controller's cost on the
// read-hit path: zero allocations — the Effects is the organization's reused
// scratch and the canary hook itself contributes nothing.
func TestReadHitZeroAllocsNilGuard(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<16)
	fillUniform(st, addrN(0), 42)
	d.Read(addrN(0))
	if n := testing.AllocsPerRun(500, func() {
		_, eff := d.Read(addrN(0))
		if !eff.Hit {
			t.Fatal("expected hit")
		}
	}); n != 0 {
		t.Errorf("nil-guard read hit allocates %v allocs/op, want 0", n)
	}
}

// TestBreakerRecoveryResumesApproximation: after the cooldown and a clean
// probe window the breaker re-closes and map generations resume.
func TestBreakerRecoveryResumesApproximation(t *testing.T) {
	d, st, r := testSetup(t, smallCfg(), 1<<20)
	qc := quality.MustNew(quality.Config{Budget: 0.01, CanaryRate: 0, Cooldown: 4, ProbeSamples: 2})
	d.AttachQuality(qc)
	qc.Observe(r, uniformBlock(100), uniformBlock(0))
	if qc.State() != quality.Open {
		t.Fatal("breaker did not trip")
	}
	// Drive misses: the first few bypass (cooldown), then HalfOpen probes
	// sample every substitution event. Reads of similar blocks generate
	// reuse-link canaries with near-zero error, so the probe passes.
	for i := 0; i < 64 && qc.State() != quality.Closed; i++ {
		fillUniform(st, addrN(i), 42+float64(i%3)*0.0001)
		d.Read(addrN(i))
		check(t, d)
	}
	if qc.State() != quality.Closed {
		t.Fatalf("breaker never re-closed (state %v, stats %+v)", qc.State(), qc.Stats())
	}
	if qc.Stats().Reentries == 0 {
		t.Error("no re-entry recorded")
	}
	gens := d.Stats.MapGens
	fillUniform(st, addrN(200), 77)
	d.Read(addrN(200))
	if d.Stats.MapGens == gens {
		t.Error("map generation did not resume after re-entry")
	}
}
