package core

import (
	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/memdata"
)

// Split is the paper's primary LLC organization (§3, Table 1): a
// conventional precise cache alongside a Doppelgänger cache. ISA-identified
// approximate loads and stores are directed to the Doppelgänger side; all
// other requests go to the precise side (§4.1). In this simulator the
// routing decision comes from the workload's annotations, playing the role
// of the ISA approximation bits carried on each request.
type Split struct {
	Precise *Baseline
	Doppel  *Doppelganger
	ann     *approx.Annotations
}

// NewSplit builds the split organization over one backing store.
func NewSplit(preciseCfg cache.Config, doppelCfg Config, store *memdata.Store, ann *approx.Annotations) (*Split, error) {
	dopp, err := New(doppelCfg, store, ann)
	if err != nil {
		return nil, err
	}
	return &Split{
		Precise: NewBaseline(preciseCfg, store, ann),
		Doppel:  dopp,
		ann:     ann,
	}, nil
}

// MustNewSplit is NewSplit but panics on error.
func MustNewSplit(preciseCfg cache.Config, doppelCfg Config, store *memdata.Store, ann *approx.Annotations) *Split {
	s, err := NewSplit(preciseCfg, doppelCfg, store, ann)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Split) approximate(addr memdata.Addr) bool { return s.ann.Approximate(addr) }

// Read implements LLC.
func (s *Split) Read(addr memdata.Addr) (memdata.Block, *Effects) {
	if s.approximate(addr) {
		return s.Doppel.Read(addr)
	}
	return s.Precise.Read(addr)
}

// WriteBack implements LLC.
func (s *Split) WriteBack(addr memdata.Addr, data *memdata.Block) *Effects {
	if s.approximate(addr) {
		return s.Doppel.WriteBack(addr, data)
	}
	return s.Precise.WriteBack(addr, data)
}

// EvictFor implements LLC.
func (s *Split) EvictFor(addr memdata.Addr) *Effects {
	if s.approximate(addr) {
		return s.Doppel.EvictFor(addr)
	}
	return s.Precise.EvictFor(addr)
}

// Contains implements LLC.
func (s *Split) Contains(addr memdata.Addr) bool {
	if s.approximate(addr) {
		return s.Doppel.Contains(addr)
	}
	return s.Precise.Contains(addr)
}

// Snapshot implements LLC.
func (s *Split) Snapshot() []SnapshotBlock {
	return append(s.Precise.Snapshot(), s.Doppel.Snapshot()...)
}

// TagEntries implements LLC.
func (s *Split) TagEntries() int { return s.Precise.TagEntries() + s.Doppel.TagEntries() }

// DataBlocks implements LLC.
func (s *Split) DataBlocks() int { return s.Precise.DataBlocks() + s.Doppel.DataBlocks() }
