package core

import (
	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
)

// This file wires the fault-injection layer through the three LLC
// organizations, mirroring the AttachMetrics plumbing in metrics.go: every
// structure carries an injector pointer unconditionally, and a nil injector
// is the zero-cost disabled path.

// AttachFaults wires inj into the baseline LLC: its set-associative array
// draws against the LLC tag/data targets on hits, and blocks fetched from
// the backing store draw against the DRAM target. A nil injector disables
// injection.
func (b *Baseline) AttachFaults(inj *faults.Injector) {
	b.inj = inj
	b.arr.AttachFaults(inj, faults.LLCTag, faults.LLCData)
}

// AttachFaults wires inj into the Doppelgänger cache: hits draw against the
// tag and data arrays, map generation draws against the map path, and
// memory fetches draw against DRAM. A nil injector disables injection.
func (d *Doppelganger) AttachFaults(inj *faults.Injector) {
	d.inj = inj
}

// AttachFaults wires inj into both halves of the split organization.
func (s *Split) AttachFaults(inj *faults.Injector) {
	s.Precise.AttachFaults(inj)
	s.Doppel.AttachFaults(inj)
}

// injectHit draws faults against the tag and data entries serving a
// Doppelgänger read hit. The data draw corrupts the representative payload
// in place (every tag sharing the entry sees the flipped bit — the
// structural amplification the decoupled design implies); it is skipped in
// compressed mode, where flipping stored compressed bytes would model a
// different (decode-path) failure. The tag draw flips a stored address-tag
// bit: the entry stops answering for its true address and may alias
// another, while its addr field — the simulator's writeback ground truth —
// stays intact, so the tag→data invariant is never broken.
func (d *Doppelganger) injectHit(t, de int32) {
	if !d.cfg.CompressedData {
		d.inj.CorruptBlock(faults.LLCData, &d.data[de].data)
	}
	te := &d.tags[t]
	width := 32 - memdata.OffsetBits - int(d.tagSetBits)
	te.tag = d.inj.CorruptBits(faults.LLCTag, te.tag, width)
}
