package core

import (
	"testing"

	"doppelganger/internal/memdata"
)

// TestTagCountAwareSparesSharedEntries: under the tag-count-aware policy, a
// data entry serving many tags must survive a capacity eviction that a
// singleton entry absorbs, even when the shared entry is older (LRU-wise).
func TestTagCountAwareSparesSharedEntries(t *testing.T) {
	cfg := smallCfg()
	cfg.DataPolicy = ReplaceTagCountAware
	d, st, _ := testSetup(t, cfg, 1<<20)

	// Shared entry first (older in LRU terms): three tags on one value.
	for i := 0; i < 3; i++ {
		fillUniform(st, addrN(i), 42)
		d.Read(addrN(i))
	}
	// Then fill the data array with singletons until evictions happen; the
	// values sweep the whole declared range so every folded data set is hit.
	sharedSurvives := true
	for i := 3; i < 400; i++ {
		fillUniform(st, addrN(i%250), float64((i*37)%97)+0.25+float64(i)*1e-4)
		eff := mustRead(d, addrN(i%250))
		check(t, d)
		for _, ev := range eff.Evicted {
			for j := 0; j < 3; j++ {
				if ev.Addr == addrN(j).BlockAddr() {
					sharedSurvives = false
				}
			}
		}
	}
	if d.Stats.DataEvictions == 0 {
		t.Skip("flood caused no data evictions")
	}
	if !sharedSurvives {
		t.Error("tag-count-aware policy evicted the shared entry while singletons existed")
	}
}

// TestLRUEvictsOldSharedEntry contrasts the default policy: plain LRU will
// happily evict the old shared entry.
func TestLRUEvictsOldSharedEntry(t *testing.T) {
	d, st, _ := testSetup(t, smallCfg(), 1<<20)
	for i := 0; i < 3; i++ {
		fillUniform(st, addrN(i), 42)
		d.Read(addrN(i))
	}
	evictedShared := false
	for i := 3; i < 400; i++ {
		fillUniform(st, addrN(i%250), float64((i*37)%97)+0.25+float64(i)*1e-4)
		eff := mustRead(d, addrN(i%250))
		for _, ev := range eff.Evicted {
			for j := 0; j < 3; j++ {
				if ev.Addr == addrN(j).BlockAddr() {
					evictedShared = true
				}
			}
		}
	}
	if d.Stats.DataEvictions == 0 {
		t.Skip("flood caused no data evictions")
	}
	if !evictedShared {
		t.Error("LRU never evicted the oldest (shared) entry; suspicious")
	}
}

// TestTagCountAwareReducesBackInvalidations: on a workload with a mix of
// shared and singleton entries, the extension should cause no more tag
// invalidations than LRU.
func TestTagCountAwareReducesBackInvalidations(t *testing.T) {
	run := func(policy DataReplacement) uint64 {
		cfg := smallCfg()
		cfg.DataPolicy = policy
		d, st, _ := testSetup(t, cfg, 1<<20)
		for i := 0; i < 400; i++ {
			// Every 4th block shares a popular value class; the rest are
			// singletons.
			v := float64(i)*1.3 + 0.1
			if i%4 == 0 {
				v = float64(i % 8 * 10)
			}
			fillUniform(st, addrN(i%256), v)
			d.Read(addrN(i % 256))
		}
		return d.Stats.TagEvictions
	}
	lru := run(ReplaceLRU)
	aware := run(ReplaceTagCountAware)
	if aware > lru+lru/10 {
		t.Errorf("tag-count-aware caused more tag evictions (%d) than LRU (%d)", aware, lru)
	}
	t.Logf("tag evictions: lru=%d, tag-count-aware=%d", lru, aware)
}

func mustRead(d *Doppelganger, a memdata.Addr) *Effects {
	_, eff := d.Read(a)
	return eff
}
