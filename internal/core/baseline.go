package core

import (
	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/faults"
	"doppelganger/internal/memdata"
)

// Baseline is the conventional 2 MB inclusive LLC the paper evaluates
// against (Table 1). It also serves, at 1 MB, as the precise half of the
// split organization.
type Baseline struct {
	arr   *cache.Cache
	store *memdata.Store
	ann   *approx.Annotations // used only to label Snapshot blocks
	inj   *faults.Injector
	eff   Effects // scratch, returned by operations (valid until the next op)
}

// NewBaseline builds a conventional LLC over the given backing store.
// Annotations may be nil; they only label snapshot blocks for the storage
// analyses.
func NewBaseline(cfg cache.Config, store *memdata.Store, ann *approx.Annotations) *Baseline {
	return &Baseline{arr: cache.New(cfg), store: store, ann: ann}
}

// Array exposes the underlying set-associative array (for stats).
func (b *Baseline) Array() *cache.Cache { return b.arr }

// Read implements LLC.
func (b *Baseline) Read(addr memdata.Addr) (memdata.Block, *Effects) {
	eff := &b.eff
	eff.reset()
	eff.PTagReads = 1
	if l := b.arr.Lookup(addr); l != nil {
		eff.Hit = true
		eff.PDataReads = 1
		return l.Data, eff
	}
	// Miss: fetch from memory, install, evict as needed.
	data := *b.store.Block(addr)
	if b.inj != nil {
		b.inj.CorruptBlock(faults.DRAM, &data)
	}
	eff.MemReads = 1
	victim := b.arr.Victim(addr)
	if victim.Valid {
		eff.Evicted = append(eff.Evicted, Eviction{Addr: victim.Addr, Dirty: victim.Dirty})
		if victim.Dirty {
			b.store.WriteBlock(victim.Addr, &victim.Data)
			eff.MemWrites = 1
		}
	}
	b.arr.Install(victim, addr, &data)
	eff.PDataReads = 1 // fill write counted as a data-array access
	eff.PDataWrites = 1
	return data, eff
}

// WriteBack implements LLC: a dirty block arriving from a private L2.
func (b *Baseline) WriteBack(addr memdata.Addr, data *memdata.Block) *Effects {
	eff := &b.eff
	eff.reset()
	eff.PTagReads = 1
	if l := b.arr.Lookup(addr); l != nil {
		eff.Hit = true
		l.Data = *data
		l.Dirty = true
		eff.PDataWrites = 1
		return eff
	}
	// Non-inclusive corner (should not occur with proper back-invalidation):
	// write memory directly.
	b.store.WriteBlock(addr, data)
	eff.MemWrites = 1
	return eff
}

// EvictFor implements LLC.
func (b *Baseline) EvictFor(addr memdata.Addr) *Effects {
	eff := &b.eff
	eff.reset()
	eff.PTagReads = 1
	if old, ok := b.arr.Invalidate(addr); ok {
		eff.Evicted = append(eff.Evicted, Eviction{Addr: old.Addr, Dirty: old.Dirty})
		if old.Dirty {
			b.store.WriteBlock(old.Addr, &old.Data)
			eff.MemWrites = 1
		}
	}
	return eff
}

// Contains implements LLC.
func (b *Baseline) Contains(addr memdata.Addr) bool { return b.arr.Probe(addr) != nil }

// Snapshot implements LLC.
func (b *Baseline) Snapshot() []SnapshotBlock {
	var out []SnapshotBlock
	b.arr.ForEachValid(func(l *cache.Line) {
		out = append(out, SnapshotBlock{Addr: l.Addr, Data: l.Data, Region: b.ann.Lookup(l.Addr)})
	})
	return out
}

// TagEntries implements LLC.
func (b *Baseline) TagEntries() int { return b.arr.ValidCount() }

// DataBlocks implements LLC.
func (b *Baseline) DataBlocks() int { return b.arr.ValidCount() }
