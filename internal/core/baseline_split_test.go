package core

import (
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/cache"
	"doppelganger/internal/memdata"
)

func baselineSetup() (*Baseline, *memdata.Store) {
	st := memdata.NewStore()
	// 8 KB, 4-way: 32 sets.
	b := NewBaseline(cache.Config{Name: "b", SizeBytes: 8 << 10, Ways: 4}, st, nil)
	return b, st
}

func TestBaselineReadMissFetchesMemory(t *testing.T) {
	b, st := baselineSetup()
	st.WriteI32(0x1000, 99)
	data, eff := b.Read(0x1000)
	if eff.Hit || eff.MemReads != 1 {
		t.Fatalf("effects: %+v", eff)
	}
	if got := data.Elem(memdata.I32, 0); got != 99 {
		t.Errorf("data = %v", got)
	}
	if _, eff := b.Read(0x1000); !eff.Hit {
		t.Error("re-read missed")
	}
}

func TestBaselineWriteBackAndEvict(t *testing.T) {
	b, st := baselineSetup()
	b.Read(0x1000)
	nb := new(memdata.Block)
	nb.SetElem(memdata.I32, 0, 7)
	if eff := b.WriteBack(0x1000, nb); !eff.Hit {
		t.Fatal("writeback missed")
	}
	eff := b.EvictFor(0x1000)
	if len(eff.Evicted) != 1 || !eff.Evicted[0].Dirty || eff.MemWrites != 1 {
		t.Fatalf("eviction effects: %+v", eff)
	}
	if got := st.ReadI32(0x1000); got != 7 {
		t.Errorf("memory = %d after dirty eviction", got)
	}
}

func TestBaselineWriteBackMissGoesToMemory(t *testing.T) {
	b, st := baselineSetup()
	nb := new(memdata.Block)
	nb.SetElem(memdata.I32, 0, 5)
	eff := b.WriteBack(0x2000, nb)
	if eff.Hit || eff.MemWrites != 1 {
		t.Fatalf("effects: %+v", eff)
	}
	if st.ReadI32(0x2000) != 5 {
		t.Error("memory not updated")
	}
}

func TestBaselineCapacityEviction(t *testing.T) {
	b, _ := baselineSetup() // 32 sets × 4 ways; set stride = 32 blocks = 2 KB
	var evictions int
	for i := 0; i < 6; i++ {
		_, eff := b.Read(memdata.Addr(i * 2048)) // all land in set 0
		evictions += len(eff.Evicted)
	}
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2", evictions)
	}
	if b.TagEntries() != 4 || b.DataBlocks() != 4 {
		t.Errorf("occupancy = %d/%d", b.TagEntries(), b.DataBlocks())
	}
}

func splitSetup() (*Split, *memdata.Store, *approx.Annotations) {
	st := memdata.NewStore()
	ann := approx.MustAnnotations(approx.Region{
		Name: "ax", Start: testRegionBase, End: testRegionBase + 1<<16,
		Type: memdata.F32, Min: 0, Max: 100,
	})
	s := MustNewSplit(
		cache.Config{Name: "precise", SizeBytes: 8 << 10, Ways: 4},
		smallCfg(), st, ann)
	return s, st, ann
}

func TestSplitRouting(t *testing.T) {
	s, st, _ := splitSetup()
	fillUniform(st, addrN(0), 42)
	st.WriteI32(0x4000, 3)

	s.Read(addrN(0)) // approximate: Doppelgänger side
	s.Read(0x4000)   // precise side
	if s.Doppel.TagEntries() != 1 {
		t.Errorf("doppel tags = %d", s.Doppel.TagEntries())
	}
	if s.Precise.TagEntries() != 1 {
		t.Errorf("precise tags = %d", s.Precise.TagEntries())
	}
	if !s.Contains(addrN(0)) || !s.Contains(0x4000) || s.Contains(0x9000) {
		t.Error("Contains routing wrong")
	}
	if got := s.TagEntries(); got != 2 {
		t.Errorf("total tags = %d", got)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
}

func TestSplitWriteBackRouting(t *testing.T) {
	s, st, _ := splitSetup()
	fillUniform(st, addrN(0), 10)
	s.Read(addrN(0))
	b := new(memdata.Block)
	for i := 0; i < 16; i++ {
		b.SetElem(memdata.F32, i, 10.0001)
	}
	s.WriteBack(addrN(0), b)
	if s.Doppel.Stats.SilentWrites != 1 {
		t.Errorf("approx writeback not routed to Doppelgänger: %+v", s.Doppel.Stats)
	}
	s.Read(0x4000)
	s.WriteBack(0x4000, b)
	if got := s.Precise.Array().Stats.Hits; got != 1 {
		t.Errorf("precise writeback not routed: hits = %d, want 1", got)
	}
	s.EvictFor(addrN(0))
	s.EvictFor(0x4000)
	if s.TagEntries() != 0 {
		t.Errorf("tags after evictions = %d", s.TagEntries())
	}
}
