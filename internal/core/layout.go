package core

import (
	"math/bits"

	"doppelganger/internal/memdata"
)

// Layout captures the per-entry bit budget of one SRAM structure, following
// the field breakdown of the paper's Table 3. The energy/area model consumes
// these to size each array.
type Layout struct {
	Name    string
	Entries int

	TagBits         int // address or map tag
	CoherenceBits   int
	VectorBits      int // full-map sharer vector
	ReplacementBits int
	TagPtrBits      int // width of one tag pointer
	NumTagPtrs      int // prev+next in the tag array, head in the data array
	MapBits         int
	PreciseBits     int // uniDoppelgänger adds one bit per entry
	DataBits        int // 512 for data-bearing entries, 0 for tag-only arrays
}

// MetaBits is the metadata (tag-entry) width in bits.
func (l Layout) MetaBits() int {
	return l.TagBits + l.CoherenceBits + l.VectorBits + l.ReplacementBits +
		l.TagPtrBits*l.NumTagPtrs + l.MapBits + l.PreciseBits
}

// EntryBits is the full per-entry width including data.
func (l Layout) EntryBits() int { return l.MetaBits() + l.DataBits }

// TotalBits is the structure size in bits.
func (l Layout) TotalBits() int { return l.Entries * l.EntryBits() }

// KBytes is the structure size in kilobytes.
func (l Layout) KBytes() float64 { return float64(l.TotalBits()) / 8 / 1024 }

// log2 of a power-of-two count.
func log2(n int) int { return bits.TrailingZeros(uint(n)) }

// ConventionalLayout sizes a conventional cache (baseline LLC or the precise
// half of the split design) for a 32-bit address space and the given core
// count, reproducing the Baseline/Precise columns of Table 3.
func ConventionalLayout(name string, sizeBytes, ways, cores int) Layout {
	entries := sizeBytes / memdata.BlockSize
	sets := entries / ways
	return Layout{
		Name:            name,
		Entries:         entries,
		TagBits:         32 - memdata.OffsetBits - log2(sets),
		CoherenceBits:   4,
		VectorBits:      cores,
		ReplacementBits: 4,
		DataBits:        memdata.BlockSize * 8,
	}
}

// mapFieldBits is the stored map width: the concatenated average+range map
// for the widest element type the design supports (32-bit floats), which
// yields Table 3's 21 bits at M=14.
func (c Config) mapFieldBits() int { return c.MapSpec.TotalBits(memdata.F32) }

// TagArrayLayout sizes the Doppelgänger tag array: address tag, coherence
// state and sharer vector, replacement bits, prev/next tag pointers and the
// map field — 77 bits per entry in the paper's configuration (Table 3).
func (c Config) TagArrayLayout(cores int) Layout {
	sets := c.TagEntries / c.TagWays
	l := Layout{
		Name:            c.Name + " tag array",
		Entries:         c.TagEntries,
		TagBits:         32 - memdata.OffsetBits - log2(sets),
		CoherenceBits:   4,
		VectorBits:      cores,
		ReplacementBits: 4,
		TagPtrBits:      log2(c.TagEntries),
		NumTagPtrs:      2, // prev and next
		MapBits:         c.mapFieldBits(),
	}
	if c.Unified {
		l.PreciseBits = 1
	}
	return l
}

// DataArrayLayout sizes the approximate data array (MTag metadata plus the
// 512-bit block): map tag, replacement bits and the head tag pointer.
//
// Because the set index is an XOR-fold of the whole map (see dataSetOf),
// the MTag stores the full map value — 21 bits at M=14, one more than the
// paper's Table 3 lists (20); the paper does not specify its exact MTag
// composition, so we keep the self-consistent width and note the delta.
func (c Config) DataArrayLayout() Layout {
	tagBits := c.mapFieldBits()
	if c.Unified {
		// Must also disambiguate 26-bit precise block numbers.
		if pb := 32 - memdata.OffsetBits; pb > tagBits {
			tagBits = pb
		}
	}
	dataBits := memdata.BlockSize * 8
	if c.CompressedData {
		// The SRAM holds compressed payloads: size the data sub-array by the
		// byte budget (plus a size/scheme field per entry).
		frac := c.CompressBudget
		if frac == 0 {
			frac = 0.5
		}
		dataBits = int(float64(dataBits)*frac) + 10
	}
	l := Layout{
		Name:            c.Name + " data array",
		Entries:         c.DataEntries,
		TagBits:         tagBits,
		ReplacementBits: 4,
		TagPtrBits:      log2(c.TagEntries),
		NumTagPtrs:      1, // head of the tag list
		DataBits:        dataBits,
	}
	if c.Unified {
		l.PreciseBits = 1
	}
	return l
}
