package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

func uniCfg() Config {
	c := smallCfg()
	c.Name = "uni-test"
	c.Unified = true
	return c
}

// preciseBase is an address range outside the annotated region.
const preciseBase = 0x0800_0000

func preciseAddr(i int) memdata.Addr { return preciseBase + memdata.Addr(i*memdata.BlockSize) }

func TestUnifiedPreciseReadIsExact(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	st.WriteF32(preciseAddr(0), 123.456)
	data, eff := d.Read(preciseAddr(0))
	if eff.Hit {
		t.Fatal("first read hit")
	}
	if eff.MapGens != 0 {
		t.Errorf("precise insert computed a map (%d gens)", eff.MapGens)
	}
	if got := data.Elem(memdata.F32, 0); float32(got) != 123.456 {
		t.Errorf("precise data = %v", got)
	}
	// Re-read hits and stays exact.
	data, eff = d.Read(preciseAddr(0))
	if !eff.Hit || float32(data.Elem(memdata.F32, 0)) != 123.456 {
		t.Errorf("precise hit returned %v", data.Elem(memdata.F32, 0))
	}
	check(t, d)
}

func TestUnifiedPreciseBlocksNeverShare(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	// Two precise blocks with identical contents must still get separate
	// data entries (§3.8: precise tags cannot share data blocks).
	st.WriteF32(preciseAddr(0), 7)
	st.WriteF32(preciseAddr(1), 7)
	d.Read(preciseAddr(0))
	d.Read(preciseAddr(1))
	if d.DataBlocks() != 2 {
		t.Errorf("data blocks = %d, want 2", d.DataBlocks())
	}
	check(t, d)
}

func TestUnifiedMixedResidency(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	fillUniform(st, addrN(0), 42)
	fillUniform(st, addrN(1), 42.0001)
	st.WriteF32(preciseAddr(0), 9)
	d.Read(addrN(0))
	d.Read(addrN(1)) // shares with block 0
	d.Read(preciseAddr(0))
	if d.TagEntries() != 3 {
		t.Errorf("tags = %d", d.TagEntries())
	}
	if d.DataBlocks() != 2 {
		t.Errorf("data blocks = %d, want 2 (one shared approx + one precise)", d.DataBlocks())
	}
	check(t, d)
}

func TestUnifiedPreciseWriteUpdatesInPlace(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	st.WriteF32(preciseAddr(0), 1)
	d.Read(preciseAddr(0))
	b := new(memdata.Block)
	b.SetElem(memdata.F32, 0, 55)
	eff := d.WriteBack(preciseAddr(0), b)
	if !eff.Hit {
		t.Fatal("precise writeback missed")
	}
	data, _ := d.Read(preciseAddr(0))
	if got := data.Elem(memdata.F32, 0); got != 55 {
		t.Errorf("precise write lost: %v", got)
	}
	// Eviction writes the updated data to memory.
	d.EvictFor(preciseAddr(0))
	if got := st.ReadF32(preciseAddr(0)); got != 55 {
		t.Errorf("memory = %v after dirty precise eviction", got)
	}
	check(t, d)
}

func TestUnifiedPreciseEvictionFreesData(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	st.WriteF32(preciseAddr(0), 3)
	d.Read(preciseAddr(0))
	d.EvictFor(preciseAddr(0))
	if d.DataBlocks() != 0 || d.TagEntries() != 0 {
		t.Errorf("occupancy after precise eviction: %d/%d", d.TagEntries(), d.DataBlocks())
	}
	check(t, d)
}

// TestUnifiedApproxVsPreciseKeysDoNotCollide: a precise block whose block
// number happens to equal an approximate block's map value must not match
// that entry.
func TestUnifiedKeyDisambiguation(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	fillUniform(st, addrN(0), 0) // map value 0 (all at region min)
	d.Read(addrN(0))
	// Precise block number 0... block address 0 is precise (outside region).
	st.WriteF32(0, 77)
	d.Read(0)
	if d.DataBlocks() != 2 {
		t.Fatalf("data blocks = %d: precise key collided with approx map", d.DataBlocks())
	}
	data, eff := d.Read(0)
	if !eff.Hit || data.Elem(memdata.F32, 0) != 77 {
		t.Errorf("precise block corrupted: %v", data.Elem(memdata.F32, 0))
	}
	check(t, d)
}

// TestUnifiedRandomMixInvariants drives random precise+approximate traffic
// through the unified cache, checking invariants at each step.
func TestUnifiedRandomMixInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := memdata.NewStore()
		ann := approx.MustAnnotations(approx.Region{
			Name: "data", Start: testRegionBase, End: testRegionBase + 1<<20,
			Type: memdata.F32, Min: 0, Max: 100,
		})
		d := MustNew(uniCfg(), st, ann)
		for op := 0; op < 400; op++ {
			var addr memdata.Addr
			if rng.Intn(2) == 0 {
				addr = addrN(rng.Intn(256))
			} else {
				addr = preciseAddr(rng.Intn(256))
			}
			switch rng.Intn(4) {
			case 0, 1:
				d.Read(addr)
			case 2:
				b := new(memdata.Block)
				v := 100 * rng.Float64()
				for i := 0; i < 16; i++ {
					b.SetElem(memdata.F32, i, v)
				}
				d.WriteBack(addr, b)
			case 3:
				d.EvictFor(addr)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestUnifiedPreciseDataNeverApproximated: after arbitrary precise traffic,
// every precise block read back equals what was last written to it.
func TestUnifiedPreciseDataNeverApproximated(t *testing.T) {
	d, st, _ := testSetup(t, uniCfg(), 1<<16)
	rng := rand.New(rand.NewSource(11))
	want := map[int]float32{}
	for op := 0; op < 500; op++ {
		i := rng.Intn(64)
		if rng.Intn(2) == 0 {
			v := rng.Float32()
			b := new(memdata.Block)
			b.SetElem(memdata.F32, 0, float64(v))
			if !d.Contains(preciseAddr(i)) {
				st.WriteF32(preciseAddr(i), v)
				d.Read(preciseAddr(i))
			}
			d.WriteBack(preciseAddr(i), b)
			want[i] = v
		} else if w, ok := want[i]; ok {
			var got float32
			if d.Contains(preciseAddr(i)) {
				data, _ := d.Read(preciseAddr(i))
				got = float32(data.Elem(memdata.F32, 0))
			} else {
				got = st.ReadF32(preciseAddr(i)) // evicted: memory must hold it
			}
			if got != w {
				t.Fatalf("precise block %d: got %v, want %v (op %d)", i, got, w, op)
			}
		}
	}
	check(t, d)
}
