package core

import (
	"testing"

	"doppelganger/internal/approx"
	"doppelganger/internal/memdata"
)

// FuzzDoppelgangerOps interprets arbitrary byte strings as operation
// sequences (reads, writebacks, evictions over a mix of approximate and —
// in unified mode — precise addresses, with varied payload values) and
// checks every structural invariant after each step. This is the
// coverage-guided complement to the fixed-seed property tests.
func FuzzDoppelgangerOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, true)
	f.Add([]byte{0x10, 0x85, 0x22, 0xF1, 0x07, 0x99, 0x40, 0x41, 0x42}, false)
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 127}, true)

	f.Fuzz(func(t *testing.T, ops []byte, unified bool) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		st := memdata.NewStore()
		ann := approx.MustAnnotations(approx.Region{
			Name: "data", Start: testRegionBase, End: testRegionBase + 1<<19,
			Type: memdata.F32, Min: 0, Max: 100,
		})
		cfg := smallCfg()
		cfg.Unified = unified
		if unified {
			cfg.CompressedData = true // exercise the compressed path too
		}
		d := MustNew(cfg, st, ann)

		for i := 0; i+2 < len(ops); i += 3 {
			op, sel, val := ops[i], ops[i+1], ops[i+2]
			var addr memdata.Addr
			if unified && op&0x40 != 0 {
				addr = preciseAddr(int(sel))
			} else {
				addr = addrN(int(sel))
			}
			switch op % 3 {
			case 0:
				blk := st.Block(addr)
				for e := 0; e < 16; e++ {
					blk.SetElem(memdata.F32, e, float64(val)/255*100)
				}
				d.Read(addr)
			case 1:
				b := new(memdata.Block)
				for e := 0; e < 16; e++ {
					b.SetElem(memdata.F32, e, float64(val^byte(e))/255*100)
				}
				d.WriteBack(addr, b)
			case 2:
				d.EvictFor(addr)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%d on %v): %v", i/3, op%3, addr, err)
			}
		}
	})
}
