package core

import (
	"math/rand"
	"testing"

	"doppelganger/internal/memdata"
)

// TestNoCollisionMeansNoApproximation: when every block has a unique map
// (widely spaced values, maximal map space), the Doppelgänger cache
// degenerates into a conventional value-precise cache — every hit returns
// exactly the block's own memory data.
func TestNoCollisionMeansNoApproximation(t *testing.T) {
	cfg := smallCfg()
	cfg.MapSpec.M = 21
	d, st, _ := testSetup(t, cfg, 1<<20)
	rng := rand.New(rand.NewSource(8))
	want := map[int]float64{}
	for i := 0; i < 12; i++ { // few blocks: no capacity pressure
		v := float64(i)*8 + rng.Float64() // spaced > bin width, unique
		fillUniform(st, addrN(i), v)
		want[i] = st.Block(addrN(i)).Elem(memdata.F32, 0)
		d.Read(addrN(i))
	}
	if d.Stats.ReuseLinks != 0 {
		t.Fatalf("unexpected sharing: %d reuse links", d.Stats.ReuseLinks)
	}
	for i := 0; i < 12; i++ {
		data, eff := d.Read(addrN(i))
		if !eff.Hit {
			t.Fatalf("block %d missed", i)
		}
		if got := data.Elem(memdata.F32, 0); got != want[i] {
			t.Errorf("block %d returned %v, want its own %v", i, got, want[i])
		}
	}
	check(t, d)
}

// TestApproximationIsBounded: with the paper's map layout, the
// representative a hit returns is always within one average bin plus one
// range bin of the block's true values — a quantitative bound on the §3.7
// constructive aliasing.
func TestApproximationIsBounded(t *testing.T) {
	cfg := smallCfg() // M = 14 over [0, 100]
	d, st, _ := testSetup(t, cfg, 1<<20)
	rng := rand.New(rand.NewSource(9))
	avgBin := 100.0 / (1 << 14)
	rngBin := 100.0 / (1 << 7)
	for i := 0; i < 64; i++ {
		v := 100 * rng.Float64()
		fillUniform(st, addrN(i), v)
		d.Read(addrN(i))
		data, eff := d.Read(addrN(i))
		if !eff.Hit {
			continue
		}
		got := data.Elem(memdata.F32, 0)
		// For uniform blocks (range 0), sharing requires the same average
		// bin and range bin, so the representative's average is within one
		// avg bin and its spread within one range bin.
		if diff := absf(got - v); diff > avgBin+rngBin {
			t.Errorf("block %d: representative %v vs true %v (diff %v > bin bound)", i, got, v, diff)
		}
	}
	check(t, d)
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
