// Package dedup implements exact cache-block deduplication analysis in the
// style of last-level cache deduplication (Tian et al., ICS 2014), the
// second comparator of the Doppelgänger paper's §5.1/Fig. 8. Blocks save
// storage only when their 64-byte payloads match bit-for-bit.
package dedup

import "doppelganger/internal/memdata"

// UniqueBlocks returns the number of distinct block payloads, i.e. the
// number of data entries an exact-deduplicating cache would need.
func UniqueBlocks(blocks []*memdata.Block) int {
	seen := make(map[memdata.Block]struct{}, len(blocks))
	for _, b := range blocks {
		seen[*b] = struct{}{}
	}
	return len(seen)
}

// Savings returns the fraction of storage saved when every set of identical
// blocks shares a single data entry: 1 − unique/total. An empty input saves
// nothing.
func Savings(blocks []*memdata.Block) float64 {
	if len(blocks) == 0 {
		return 0
	}
	return 1 - float64(UniqueBlocks(blocks))/float64(len(blocks))
}

// GroupSizes returns, for each distinct payload, how many blocks share it;
// useful for characterizing redundancy distributions in tests and examples.
func GroupSizes(blocks []*memdata.Block) []int {
	counts := make(map[memdata.Block]int, len(blocks))
	for _, b := range blocks {
		counts[*b]++
	}
	sizes := make([]int, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	return sizes
}
