package dedup

import (
	"testing"
	"testing/quick"

	"doppelganger/internal/memdata"
)

func mk(fill byte) *memdata.Block {
	b := new(memdata.Block)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestUniqueBlocks(t *testing.T) {
	blocks := []*memdata.Block{mk(1), mk(1), mk(2), mk(1), mk(3)}
	if got := UniqueBlocks(blocks); got != 3 {
		t.Errorf("unique = %d, want 3", got)
	}
}

func TestSavings(t *testing.T) {
	if got := Savings(nil); got != 0 {
		t.Errorf("empty savings = %v", got)
	}
	blocks := []*memdata.Block{mk(1), mk(1), mk(1), mk(1)}
	if got := Savings(blocks); got != 0.75 {
		t.Errorf("savings = %v, want 0.75 (paper's 4-blocks example)", got)
	}
	distinct := []*memdata.Block{mk(1), mk(2), mk(3)}
	if got := Savings(distinct); got != 0 {
		t.Errorf("distinct savings = %v, want 0", got)
	}
}

func TestOneBitDifferenceDefeatsDedup(t *testing.T) {
	a, b := mk(5), mk(5)
	b[63] ^= 1
	if got := UniqueBlocks([]*memdata.Block{a, b}); got != 2 {
		t.Errorf("unique = %d; exact dedup must be bit-exact", got)
	}
}

func TestGroupSizesSumToTotal(t *testing.T) {
	f := func(fills []byte) bool {
		blocks := make([]*memdata.Block, len(fills))
		for i, fl := range fills {
			blocks[i] = mk(fl % 4) // force collisions
		}
		total := 0
		for _, s := range GroupSizes(blocks) {
			total += s
		}
		return total == len(blocks) && UniqueBlocks(blocks) == len(GroupSizes(blocks))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSavingsBounds(t *testing.T) {
	f := func(fills []byte) bool {
		if len(fills) == 0 {
			return true
		}
		blocks := make([]*memdata.Block, len(fills))
		for i, fl := range fills {
			blocks[i] = mk(fl)
		}
		s := Savings(blocks)
		return s >= 0 && s < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
