package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// TraceWriter streams Chrome-trace-format JSON (the chrome://tracing /
// Perfetto "Trace Event Format"): one JSON object per event inside a
// {"traceEvents":[...]} envelope. Timestamps are in microseconds by
// convention; the timing simulator writes core cycles, so one "µs" on the
// tracing timeline is one simulated cycle.
//
// A TraceWriter is safe for concurrent use — the sweep engine shares one
// across worker goroutines, giving each simulation its own pid lane.
// A nil *TraceWriter is a disabled sink: every method no-ops.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	events int
	err    error
	closed bool
}

// traceEvent is the wire form of one event.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTraceWriter starts a trace stream on w. Call Close to finish the JSON
// envelope; a truncated file still loads in chrome://tracing, but Close
// makes it well-formed.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{bw: bufio.NewWriter(w)}
	_, t.err = t.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return t
}

func (t *TraceWriter) emit(ev traceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.closed {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if t.events > 0 {
		t.bw.WriteByte(',')
	}
	t.bw.WriteByte('\n')
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Complete records a duration event: something that occupied [ts, ts+dur)
// on thread tid of process pid.
func (t *TraceWriter) Complete(pid, tid int, name, cat string, ts, dur float64) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid})
}

// Instant records a point event on thread tid of process pid.
func (t *TraceWriter) Instant(pid, tid int, name, cat string, ts float64) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: pid, Tid: tid})
}

// ProcessName labels a pid lane in the trace viewer (one simulation per
// pid in sweep traces).
func (t *TraceWriter) ProcessName(pid int, name string) {
	t.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// ThreadName labels a tid lane within a pid (one simulated core per tid).
func (t *TraceWriter) ThreadName(pid, tid int, name string) {
	t.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Events reports how many events have been written (0 on nil).
func (t *TraceWriter) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Close terminates the JSON envelope and flushes. Further events are
// dropped. Safe to call more than once; nil receivers report no error.
func (t *TraceWriter) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	if _, err := t.bw.WriteString("\n]}\n"); err != nil {
		t.err = err
		return err
	}
	if err := t.bw.Flush(); err != nil {
		t.err = err
		return err
	}
	return nil
}

// Err returns the first write or encoding error, if any.
func (t *TraceWriter) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
