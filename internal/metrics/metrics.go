// Package metrics is the simulator-wide observability layer: a registry of
// named counters, gauges and histograms that every simulation layer (cache
// arrays, coherence directory, DRAM, Doppelgänger core, timing simulator,
// experiment sweep) threads its event counts through.
//
// The design point is a nil-sink fast path: a nil *Registry hands out nil
// instruments, and every instrument method is a no-op on a nil receiver.
// Instruments are resolved once at attach time and held as struct fields, so
// the disabled path costs one nil check per event — zero allocations on the
// cache access hot path (locked down by testing.AllocsPerRun in
// internal/cache).
//
// Instruments with the same name share storage: attaching four per-core L1
// arrays to "cache.l1.hits" yields one counter aggregating all four, which
// is exactly the granularity the legacy funcsim/timesim counters use — the
// differential tests exploit this to prove registry totals equal the legacy
// accounting bit for bit.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are safe on
// a nil receiver (the disabled-metrics path) and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (occupancy, depth). Safe on a nil
// receiver and for concurrent use. Max tracks the high-water mark of Set.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the gauge value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add moves the gauge by delta, updating the high-water mark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.v.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket distribution. Observations count into the
// first bucket whose upper bound is >= the value; values beyond the last
// bound land in the implicit +Inf overflow bucket. Safe on a nil receiver
// and for concurrent use.
type Histogram struct {
	bounds []float64 // immutable after construction, ascending
	counts []atomic.Uint64
	over   atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total, in value units rounded to uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v + 0.5))
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the rounded sum of observations (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Kind tags a snapshot entry.
type Kind string

// The instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below Le (cumulative form is left to consumers).
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Sample is one instrument's state in a snapshot.
type Sample struct {
	Name    string   `json:"name"`
	Kind    Kind     `json:"kind"`
	Value   uint64   `json:"value,omitempty"`   // counters, histogram count
	Level   int64    `json:"level,omitempty"`   // gauges
	Max     int64    `json:"max,omitempty"`     // gauge high-water mark
	Sum     uint64   `json:"sum,omitempty"`     // histogram value sum
	Buckets []Bucket `json:"buckets,omitempty"` // histogram, overflow last (Le = +Inf encoded as -1)
}

// Registry holds named instruments. A nil *Registry is the disabled sink:
// every lookup returns a nil instrument and every method no-ops.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry builds an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns (creating once) the named counter; nil on a nil registry.
// Callers resolve instruments at attach time, never on the hot path.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating once) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating once) the named histogram with the given
// ascending bucket bounds; nil on a nil registry. Bounds are fixed by the
// first caller; later callers share the same instrument regardless of the
// bounds they pass.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value, 0 if absent or nil.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counts[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue returns the named gauge's level, 0 if absent or nil.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// Merge accumulates every instrument of o into r (summing counters and
// histogram buckets, adding gauge levels and taking the max of high-water
// marks). The sweep engine merges per-task child registries into its
// aggregate this way. No-op when either side is nil.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counts {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range o.gauges {
		dst := r.Gauge(name)
		dst.Add(g.Value())
		for {
			m, om := dst.max.Load(), g.max.Load()
			if om <= m || dst.max.CompareAndSwap(m, om) {
				break
			}
		}
	}
	for name, h := range o.hists {
		dst := r.Histogram(name, h.bounds)
		for i := range h.counts {
			if i < len(dst.counts) {
				dst.counts[i].Add(h.counts[i].Load())
			}
		}
		dst.over.Add(h.over.Load())
		dst.count.Add(h.count.Load())
		dst.sum.Add(h.sum.Load())
	}
}

// Snapshot returns every instrument's current state, sorted by name within
// kind (counters, then gauges, then histograms) for deterministic export.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for _, name := range sortedNames(r.counts) {
		out = append(out, Sample{Name: name, Kind: KindCounter, Value: r.counts[name].Value()})
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		out = append(out, Sample{Name: name, Kind: KindGauge, Level: g.Value(), Max: g.Max()})
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		s := Sample{Name: name, Kind: KindHistogram, Value: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			s.Buckets = append(s.Buckets, Bucket{Le: b, Count: h.counts[i].Load()})
		}
		if over := h.over.Load(); over > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: -1, Count: over}) // -1 encodes +Inf
		}
		out = append(out, s)
	}
	return out
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// jsonLine is the JSONL wire form: a Sample plus the task label it was
// snapshotted under ("total" for whole-run aggregates).
type jsonLine struct {
	Task string `json:"task"`
	Sample
}

// WriteJSONL writes one JSON object per instrument, labeled with task, in
// snapshot order. It is the building block of the -metrics-out flag.
func WriteJSONL(w io.Writer, task string, samples []Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range samples {
		if err := enc.Encode(jsonLine{Task: task, Sample: s}); err != nil {
			return fmt.Errorf("metrics: jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the registry's snapshot as JSONL under the given task
// label. No-op on a nil registry.
func (r *Registry) WriteJSONL(w io.Writer, task string) error {
	if r == nil {
		return nil
	}
	return WriteJSONL(w, task, r.Snapshot())
}
