package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSinkSafety drives every instrument method through a nil registry
// and nil instruments: the disabled path must be a total no-op.
func TestNilSinkSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}, "t"); err != nil {
		t.Fatal(err)
	}
	if r.CounterValue("x") != 0 || r.GaugeValue("y") != 0 {
		t.Fatal("nil registry lookups must read as zero")
	}
	r.Merge(NewRegistry())
	NewRegistry().Merge(r)

	var tw *TraceWriter
	tw.Complete(0, 0, "a", "b", 1, 2)
	tw.Instant(0, 0, "a", "b", 1)
	tw.ProcessName(0, "p")
	if tw.Events() != 0 || tw.Close() != nil || tw.Err() != nil {
		t.Fatal("nil trace writer must no-op")
	}
}

// TestSharedInstruments verifies that equal names resolve to the same
// storage, so per-core attachments aggregate.
func TestSharedInstruments(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("cache.l1.hits"), r.Counter("cache.l1.hits")
	if a != b {
		t.Fatal("same name must share a counter")
	}
	a.Add(2)
	b.Add(3)
	if got := r.CounterValue("cache.l1.hits"); got != 5 {
		t.Fatalf("aggregated value = %d, want 5", got)
	}
	if g1, g2 := r.Gauge("g"), r.Gauge("g"); g1 != g2 {
		t.Fatal("same name must share a gauge")
	}
	if h1, h2 := r.Histogram("h", []float64{1}), r.Histogram("h", []float64{9}); h1 != h2 {
		t.Fatal("same name must share a histogram")
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("occ")
	g.Add(5)
	g.Add(3)
	g.Add(-6)
	if g.Value() != 2 || g.Max() != 8 {
		t.Fatalf("gauge = (%d, max %d), want (2, max 8)", g.Value(), g.Max())
	}
	g.Set(1)
	if g.Value() != 1 || g.Max() != 8 {
		t.Fatalf("after Set: (%d, max %d), want (1, max 8)", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 108 {
		t.Fatalf("sum = %d, want 108", h.Sum())
	}
	var s Sample
	for _, smp := range r.Snapshot() {
		if smp.Name == "lat" {
			s = smp
		}
	}
	want := []Bucket{{Le: 1, Count: 2}, {Le: 4, Count: 1}, {Le: 16, Count: 1}, {Le: -1, Count: 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

// TestSnapshotDeterminism: two snapshots of the same state are identical and
// sorted by name within kind.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("z").Set(3)
	r.Histogram("m", []float64{1}).Observe(0)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if len(s1) != 4 || len(s1) != len(s2) {
		t.Fatalf("snapshot sizes %d/%d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Value != s2[i].Value {
			t.Fatalf("snapshot not deterministic at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	if s1[0].Name != "a" || s1[1].Name != "b" {
		t.Fatalf("counters not sorted: %s, %s", s1[0].Name, s1[1].Name)
	}
}

func TestMerge(t *testing.T) {
	parent, child := NewRegistry(), NewRegistry()
	parent.Counter("c").Add(10)
	child.Counter("c").Add(5)
	child.Counter("only-child").Add(7)
	child.Gauge("g").Set(4)
	child.Histogram("h", []float64{1, 2}).Observe(2)
	parent.Merge(child)
	if got := parent.CounterValue("c"); got != 15 {
		t.Fatalf("merged counter = %d, want 15", got)
	}
	if got := parent.CounterValue("only-child"); got != 7 {
		t.Fatalf("merged new counter = %d, want 7", got)
	}
	if got := parent.GaugeValue("g"); got != 4 {
		t.Fatalf("merged gauge = %d, want 4", got)
	}
	if got := parent.Histogram("h", nil).Count(); got != 1 {
		t.Fatalf("merged histogram count = %d, want 1", got)
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race this proves the instruments are data-race free.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("depth")
			h := r.Histogram("dist", []float64{10, 100})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("shared"); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("dist", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestWriteJSONL checks every line is a standalone valid JSON object with
// the task label.
func TestWriteJSONL(t *testing.T) {
	r := NewRegistry()
	r.Counter("funcsim.l1.hits").Add(42)
	r.Gauge("core.doppel.data_occupied").Set(9)
	r.Histogram("timesim.rob_occupancy", []float64{16, 80}).Observe(12)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, "jpeg/baseline"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", lines, err, sc.Text())
		}
		if obj["task"] != "jpeg/baseline" {
			t.Fatalf("line %d task = %v", lines, obj["task"])
		}
		if obj["name"] == "" || obj["kind"] == "" {
			t.Fatalf("line %d missing name/kind: %s", lines, sc.Text())
		}
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}
}

// TestChromeTrace checks the envelope is valid JSON loadable by
// chrome://tracing: a traceEvents array with our events in order.
func TestChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.ProcessName(1, "jpeg/split timing")
	tw.ThreadName(1, 0, "core 0")
	tw.Complete(1, 0, "mem", "timesim", 100, 160)
	tw.Instant(1, 2, "back-inval", "timesim", 260)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 4 {
		t.Fatalf("events = %d, want 4", tw.Events())
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("trace has %d events, want 4", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[2]
	if x.Name != "mem" || x.Ph != "X" || x.Ts != 100 || x.Dur != 160 || x.Pid != 1 || x.Tid != 0 {
		t.Fatalf("complete event mismatch: %+v", x)
	}
	// Close is idempotent and terminal.
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	tw.Instant(1, 0, "late", "x", 999)
	if !strings.HasSuffix(strings.TrimSpace(buf.String()), "]}") {
		t.Fatal("envelope not terminated")
	}
}

// TestConcurrentTraceWriter proves interleaved emitters still produce valid
// JSON (run under -race for the data-race half of the claim).
func TestConcurrentTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tw.Complete(w, i%4, "op", "t", float64(i), 1)
			}
		}()
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("concurrent trace invalid: %v", err)
	}
	if len(doc.TraceEvents) != 800 {
		t.Fatalf("events = %d, want 800", len(doc.TraceEvents))
	}
}
