# Development targets for the Doppelgänger reproduction.
#
# `race` runs the whole module under the race detector and additionally
# exercises the sweep engine and workloads at GOMAXPROCS 1 and 4, since the
# parallel experiment engine must be correct at any worker count.
# `fuzz-smoke` gives each fuzz target a short budget (Go allows one -fuzz
# pattern per package invocation, hence one line per target).

GO      ?= go
FUZZTIME ?= 30s

.PHONY: build test race fuzz-smoke vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -cpu 1,4 ./internal/sweep/... ./internal/workloads/... ./internal/timesim/...

fuzz-smoke:
	$(GO) test -fuzz=FuzzMapValue$$ -fuzztime=$(FUZZTIME) ./internal/approx
	$(GO) test -fuzz=FuzzSimilarityConsistency$$ -fuzztime=$(FUZZTIME) ./internal/approx
	$(GO) test -fuzz=FuzzRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/bdi
	$(GO) test -fuzz=FuzzDecompressRobustness$$ -fuzztime=$(FUZZTIME) ./internal/bdi
	$(GO) test -fuzz=FuzzDoppelgangerOps$$ -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzTraceRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/trace

vet:
	$(GO) vet ./...
