# Development targets for the Doppelgänger reproduction.
#
# `race` runs the whole module under the race detector and additionally
# exercises the sweep engine and workloads at GOMAXPROCS 1 and 4, since the
# parallel experiment engine must be correct at any worker count.
# `faults-smoke` proves the fault-injection layer deterministic under the
# race detector, `quality-smoke` does the same for the quality guard (breaker
# property test plus sweep determinism), and `test-interrupt` exercises the
# SIGINT/checkpoint/resume path end to end; all three are folded into `race`.
# `fuzz-smoke` gives each fuzz target a short budget (Go allows one -fuzz
# pattern per package invocation, hence one line per target).
# `bench` runs the paper-table Evaluation benchmarks with -benchmem and
# converts the output into BENCH_5.json via cmd/benchjson, joining the
# committed pre-optimization baseline (bench_baseline_5.txt) so speedup and
# allocation ratios travel with the numbers. `bench-smoke` runs one iteration
# of each Evaluation benchmark as a cheap liveness check and is folded into
# `race`.
# `audit` runs go vet always, plus staticcheck and govulncheck when they are
# installed — missing tools skip with a note instead of failing, so the
# target works in hermetic containers.

GO      ?= go
FUZZTIME ?= 30s
BENCHTIME ?= 2x
EVAL_BENCH = Table2$$|Fig2$$|Fig7$$|Fig8$$|Fig9$$|Fig10$$|Fig11$$|Fig12$$|Fig13$$|Fig14$$|Table3$$

.PHONY: build test race faults-smoke quality-smoke test-interrupt fuzz-smoke bench bench-smoke vet audit

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race: faults-smoke quality-smoke test-interrupt bench-smoke
	$(GO) test -race ./...
	$(GO) test -race -cpu 1,4 ./internal/sweep/... ./internal/workloads/... ./internal/timesim/...

bench:
	$(GO) test -run xxx -bench '$(EVAL_BENCH)' -benchmem -benchtime $(BENCHTIME) . | tee bench_current_5.txt
	$(GO) run ./cmd/benchjson -baseline bench_baseline_5.txt -note "make bench, benchtime $(BENCHTIME)" -o BENCH_5.json bench_current_5.txt

bench-smoke:
	$(GO) test -run xxx -bench '$(EVAL_BENCH)' -benchtime 1x .

faults-smoke:
	$(GO) test -race -cpu 1,4 -run 'TestFaultSweepDeterministic|TestFaultSeedChangesSites' ./internal/sweep/
	$(GO) test -race -run 'TestDeterministicSites|TestModels' ./internal/faults/

quality-smoke:
	$(GO) test -race -cpu 1,4 -run 'TestQualitySweepDeterministic|TestQualityGuard' ./internal/sweep/
	$(GO) test -race -run 'TestBreakerProperty|TestBreakerDeterminism' ./internal/quality/

test-interrupt:
	$(GO) test -run 'TestInterruptResume' ./cmd/experiments/
	$(GO) test -run 'TestGangContextCancel|TestGangKernelPanic' ./internal/funcsim/

fuzz-smoke:
	$(GO) test -fuzz=FuzzMapValue$$ -fuzztime=$(FUZZTIME) ./internal/approx
	$(GO) test -fuzz=FuzzSimilarityConsistency$$ -fuzztime=$(FUZZTIME) ./internal/approx
	$(GO) test -fuzz=FuzzRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/bdi
	$(GO) test -fuzz=FuzzDecompressRobustness$$ -fuzztime=$(FUZZTIME) ./internal/bdi
	$(GO) test -fuzz=FuzzDoppelgangerOps$$ -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzTraceRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzCheckpointParse$$ -fuzztime=$(FUZZTIME) ./internal/sweep

vet:
	$(GO) vet ./...

audit: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "audit: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "audit: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
