# Development targets for the Doppelgänger reproduction.
#
# `race` runs the whole module under the race detector and additionally
# exercises the sweep engine and workloads at GOMAXPROCS 1 and 4, since the
# parallel experiment engine must be correct at any worker count.
# `faults-smoke` proves the fault-injection layer deterministic under the
# race detector, `quality-smoke` does the same for the quality guard (breaker
# property test plus sweep determinism), and `test-interrupt` exercises the
# SIGINT/checkpoint/resume path end to end; all three are folded into `race`.
# `fuzz-smoke` gives each fuzz target a short budget (Go allows one -fuzz
# pattern per package invocation, hence one line per target).
# `audit` runs go vet always, plus staticcheck and govulncheck when they are
# installed — missing tools skip with a note instead of failing, so the
# target works in hermetic containers.

GO      ?= go
FUZZTIME ?= 30s

.PHONY: build test race faults-smoke quality-smoke test-interrupt fuzz-smoke vet audit

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race: faults-smoke quality-smoke test-interrupt
	$(GO) test -race ./...
	$(GO) test -race -cpu 1,4 ./internal/sweep/... ./internal/workloads/... ./internal/timesim/...

faults-smoke:
	$(GO) test -race -cpu 1,4 -run 'TestFaultSweepDeterministic|TestFaultSeedChangesSites' ./internal/sweep/
	$(GO) test -race -run 'TestDeterministicSites|TestModels' ./internal/faults/

quality-smoke:
	$(GO) test -race -cpu 1,4 -run 'TestQualitySweepDeterministic|TestQualityGuard' ./internal/sweep/
	$(GO) test -race -run 'TestBreakerProperty|TestBreakerDeterminism' ./internal/quality/

test-interrupt:
	$(GO) test -run 'TestInterruptResume' ./cmd/experiments/
	$(GO) test -run 'TestGangContextCancel|TestGangKernelPanic' ./internal/funcsim/

fuzz-smoke:
	$(GO) test -fuzz=FuzzMapValue$$ -fuzztime=$(FUZZTIME) ./internal/approx
	$(GO) test -fuzz=FuzzSimilarityConsistency$$ -fuzztime=$(FUZZTIME) ./internal/approx
	$(GO) test -fuzz=FuzzRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/bdi
	$(GO) test -fuzz=FuzzDecompressRobustness$$ -fuzztime=$(FUZZTIME) ./internal/bdi
	$(GO) test -fuzz=FuzzDoppelgangerOps$$ -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -fuzz=FuzzTraceRoundTrip$$ -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzCheckpointParse$$ -fuzztime=$(FUZZTIME) ./internal/sweep

vet:
	$(GO) vet ./...

audit: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "audit: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "audit: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
