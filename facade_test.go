package doppelganger

import (
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 9 {
		t.Fatalf("suite size = %d, want 9", len(names))
	}
	want := "blackscholes canneal ferret fluidanimate inversek2j jmeint jpeg kmeans swaptions"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("suite = %q", got)
	}
}

func TestTable1Configs(t *testing.T) {
	if c := BaselineLLCConfig(); c.SizeBytes != 2<<20 || c.Ways != 16 {
		t.Errorf("baseline config = %+v", c)
	}
	d := DoppelgangerConfig()
	if d.TagEntries != 16<<10 || d.DataEntries != 4<<10 || d.MapSpec.M != 14 || d.Unified {
		t.Errorf("doppelganger config = %+v", d)
	}
	u := UniDoppelgangerConfig()
	if u.TagEntries != 32<<10 || u.DataEntries != 16<<10 || !u.Unified {
		t.Errorf("unidoppelganger config = %+v", u)
	}
}

func TestRunBenchmarkBaselineIsExact(t *testing.T) {
	res, err := RunBenchmark("blackscholes", Baseline, RunOptions{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != 0 {
		t.Errorf("baseline error = %v", res.Error)
	}
	if len(res.Output) == 0 {
		t.Error("no output")
	}
}

func TestRunBenchmarkSplit(t *testing.T) {
	res, err := RunBenchmark("jpeg", SplitDoppelganger, RunOptions{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error < 0 || res.Error > 1 {
		t.Errorf("error = %v", res.Error)
	}
	if res.LLCTags == 0 || res.LLCDataBlocks == 0 {
		t.Errorf("occupancy = %d/%d", res.LLCTags, res.LLCDataBlocks)
	}
	if res.LLCTags < res.LLCDataBlocks {
		t.Errorf("more data blocks (%d) than tags (%d)", res.LLCDataBlocks, res.LLCTags)
	}
}

func TestRunBenchmarkUnknownName(t *testing.T) {
	if _, err := RunBenchmark("nope", Baseline, RunOptions{Scale: 0.05}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestHardwareFacade(t *testing.T) {
	base := BaselineHardware()
	split := SplitHardware(14, 0.25)
	if red := base.AreaMM2() / split.AreaMM2(); red < 1.4 || red > 1.7 {
		t.Errorf("area reduction = %.2f, paper 1.55", red)
	}
	uni := UnifiedHardware(14, 0.25)
	if red := base.AreaMM2() / uni.AreaMM2(); red < 2.5 || red > 3.5 {
		t.Errorf("uni area reduction = %.2f, paper 3.15", red)
	}
}

func TestEvaluationSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ev := NewEvaluation(0.05, nil)
	ev.Restrict("inversek2j")
	t2, err := ev.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 1 {
		t.Fatalf("rows = %d", len(t2.Rows))
	}
	if !strings.Contains(t2.Rows[0][1], "%") {
		t.Errorf("footprint cell = %q", t2.Rows[0][1])
	}
	f7, err := ev.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Columns) != 4 {
		t.Errorf("fig7 columns = %v", f7.Columns)
	}
	out := f7.Format()
	if !strings.Contains(out, "inversek2j") || !strings.Contains(out, "average") {
		t.Errorf("fig7 format:\n%s", out)
	}
}

func TestRunTimingFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tc, err := RunTiming("inversek2j", SplitDoppelganger, RunOptions{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if tc.BaselineCycles == 0 || tc.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if tc.NormalizedRuntime < 0.8 || tc.NormalizedRuntime > 2 {
		t.Errorf("normalized runtime = %v", tc.NormalizedRuntime)
	}
	if tc.NormalizedTraffic <= 0 {
		t.Errorf("traffic = %v", tc.NormalizedTraffic)
	}
}

func TestRunMultiprogramFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	res, err := RunMultiprogram([]string{"jpeg", "swaptions"}, UniDoppelganger, RunOptions{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output")
	}
	if res.Error < 0 || res.Error > 1 {
		t.Errorf("error = %v", res.Error)
	}
	if _, err := RunMultiprogram([]string{"nope"}, Baseline, RunOptions{Scale: 0.05}); err == nil {
		t.Error("unknown program accepted")
	}
}
